// Command queststats prints the anatomy of a source as QUEST sees it: the
// term space the forward HMM decodes over, the schema graph with its
// information-theoretic edge weights, per-attribute full-text statistics,
// and — on request — the execution plan of an arbitrary SQL query. It is
// the inspection companion to questcli: when a query maps somewhere
// unexpected, this shows the evidence QUEST was working from.
//
// The indexes section runs the dataset workload (with PruneEmpty
// validation) through a fresh engine first, so the reported secondary
// indexes and planner counters reflect what production traffic builds.
//
// Usage:
//
//	queststats [-db imdb|mondial|dblp] [-scale N] [-seed N]
//	           [-section all|terms|graph|fulltext|indexes|stats|mi] [-sql "SELECT ..."]
//
// The stats section dumps the per-table/per-column statistics snapshots
// the SQL planner estimates from (distinct counts, most common values,
// histogram bounds) plus the planner counters showing how many plans were
// join-reordered and how many scans the range/IN/MATCH index paths served.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	quest "repro"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/fulltext"
	"repro/internal/mi"
	sqlpkg "repro/internal/sql"
	"repro/internal/wrapper"
)

func main() {
	var (
		dbName  = flag.String("db", "imdb", "dataset: imdb, mondial or dblp")
		scale   = flag.Int("scale", 1, "dataset scale factor")
		seed    = flag.Int64("seed", 42, "dataset seed")
		section = flag.String("section", "all", "what to print: all, terms, graph, fulltext, indexes, stats, mi")
		sqlText = flag.String("sql", "", "explain this SQL query and exit")
	)
	flag.Parse()

	cfg := quest.DatasetConfig{Seed: *seed, Scale: *scale}
	var db *quest.Database
	switch strings.ToLower(*dbName) {
	case "imdb":
		db = quest.BuildIMDB(cfg)
	case "mondial":
		db = quest.BuildMondial(cfg)
	case "dblp":
		db = quest.BuildDBLP(cfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dbName)
		os.Exit(2)
	}

	if *sqlText != "" {
		plan, err := quest.ExplainSQL(db, *sqlText)
		if err != nil {
			fmt.Fprintf(os.Stderr, "explain: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(plan)
		return
	}

	show := func(s string) bool { return *section == "all" || *section == s }

	fmt.Printf("source %s: %d tables, %d tuples\n\n", db.Name, len(db.Schema.Tables()), db.TotalRows())

	if show("terms") {
		space := core.NewTermSpace(db.Schema)
		tbl := &eval.Table{
			Title:   fmt.Sprintf("term space — %d HMM states", space.Len()),
			Headers: []string{"kind", "count"},
		}
		counts := map[core.TermKind]int{}
		for _, t := range space.Terms {
			counts[t.Kind]++
		}
		for _, k := range []core.TermKind{core.KindTable, core.KindAttribute, core.KindDomain} {
			tbl.AddRow(k.String(), fmt.Sprint(counts[k]))
		}
		fmt.Println(tbl)
	}

	if show("graph") {
		eng := quest.Open(db, quest.Defaults())
		g := eng.Backward().Graph()
		fmt.Printf("== schema graph — %d attribute nodes, %d edges ==\n", g.Len(), g.EdgeCount())
		tbl := &eval.Table{
			Headers: []string{"edge", "kind", "weight"},
		}
		seen := map[string]bool{}
		for v := 0; v < g.Len(); v++ {
			for _, e := range g.Neighbors(v) {
				a, b := g.Name(e.From), g.Name(e.To)
				if a > b {
					a, b = b, a
				}
				key := a + "--" + b
				if seen[key] {
					continue
				}
				seen[key] = true
				tbl.AddRow(key, e.Label, fmt.Sprintf("%.3f", e.Weight))
			}
		}
		fmt.Println(tbl)
	}

	if show("fulltext") {
		ix := fulltext.BuildIndex(db)
		tbl := &eval.Table{
			Title:   "full-text statistics (setup phase)",
			Headers: []string{"attribute", "indexed-cells", "vocabulary"},
		}
		for _, ai := range ix.Attributes() {
			if ai.DocCount() == 0 {
				continue
			}
			tbl.AddRow(ai.Table+"."+ai.Column, fmt.Sprint(ai.DocCount()), fmt.Sprint(ai.VocabularySize()))
		}
		fmt.Println(tbl)
	}

	if show("indexes") {
		// Exercise the planner the way production traffic does — run the
		// dataset's workload with validation queries on — then report what
		// the planner built and which access paths it took.
		sqlpkg.ResetStats()
		opts := quest.Defaults()
		opts.PruneEmpty = true
		eng := quest.Open(db, opts)
		w := eval.NewGenerator(db, *seed+100).Generate(*dbName, eval.TemplatesFor(*dbName), 2)
		for _, q := range w.Queries {
			if ex, err := eng.Search(strings.Join(q.Keywords, " ")); err == nil && len(ex) > 0 {
				eng.Execute(ex[0])
			}
		}

		tbl := &eval.Table{
			Title:   "secondary indexes per table (after workload + PruneEmpty validation)",
			Headers: []string{"table", "rows", "indexed-columns", "index-builds"},
		}
		for _, t := range db.Tables() {
			cols := t.IndexedColumns()
			tbl.AddRow(t.Schema.Name, fmt.Sprint(t.Len()),
				strings.Join(cols, ","), fmt.Sprint(t.IndexBuildCount()))
		}
		fmt.Println(tbl)

		fmt.Println(plannerCounterTable())
	}

	if show("stats") {
		// Plan (and run) a representative workload first so the lazy
		// statistics the planner consults are the ones reported.
		sqlpkg.ResetStats()
		opts := quest.Defaults()
		opts.PruneEmpty = true
		eng := quest.Open(db, opts)
		w := eval.NewGenerator(db, *seed+100).Generate(*dbName, eval.TemplatesFor(*dbName), 2)
		for _, q := range w.Queries {
			if ex, err := eng.Search(strings.Join(q.Keywords, " ")); err == nil && len(ex) > 0 {
				eng.Execute(ex[0])
			}
		}

		tbl := &eval.Table{
			Title:   "column statistics (planner snapshots at current table versions)",
			Headers: []string{"column", "rows", "nulls", "distinct", "min..max", "buckets", "top MCVs"},
		}
		for _, t := range db.Tables() {
			for _, col := range t.Schema.Columns {
				cs, err := t.Stats(col.Name)
				if err != nil {
					continue
				}
				minMax := "-"
				if !cs.Min.IsNull() {
					minMax = cs.Min.String() + ".." + cs.Max.String()
				}
				mcvs := make([]string, 0, 3)
				for i, m := range cs.MCVs {
					if i == 3 {
						break
					}
					mcvs = append(mcvs, fmt.Sprintf("%s×%d", m.Value, m.Count))
				}
				mcvText := strings.Join(mcvs, " ")
				if mcvText == "" {
					mcvText = "-"
				}
				tbl.AddRow(
					t.Schema.Name+"."+col.Name,
					fmt.Sprint(cs.Rows),
					fmt.Sprint(cs.NullCount),
					fmt.Sprint(cs.Distinct),
					minMax,
					fmt.Sprint(len(cs.Buckets)),
					mcvText,
				)
			}
		}
		fmt.Println(tbl)
		fmt.Println(plannerCounterTable())
	}

	if show("mi") {
		src := wrapper.NewFullAccessSource(db)
		tbl := &eval.Table{
			Title:   "join-edge informativeness (instance statistics behind the Steiner weights)",
			Headers: []string{"fk-edge", "selectivity", "informativeness", "distance"},
		}
		for _, e := range db.Schema.JoinEdges() {
			sel, err := mi.JoinSelectivity(db.Table(e.FromTable), e.FromColumn, db.Table(e.ToTable), e.ToColumn)
			if err != nil {
				continue
			}
			q, err := mi.JoinInformativeness(db.Table(e.FromTable), e.FromColumn, db.Table(e.ToTable), e.ToColumn)
			if err != nil {
				continue
			}
			d, err := src.EdgeDistance(e)
			if err != nil {
				continue
			}
			tbl.AddRow(
				fmt.Sprintf("%s.%s -> %s.%s", e.FromTable, e.FromColumn, e.ToTable, e.ToColumn),
				fmt.Sprintf("%.3f", sel),
				fmt.Sprintf("%.3f", q),
				fmt.Sprintf("%.3f", d),
			)
		}
		fmt.Println(tbl)
	}
}

// plannerCounterTable renders the SQL planning layer's counters, including
// the PR 3 access paths (range/IN/MATCH) and join-reorder decisions.
func plannerCounterTable() *eval.Table {
	st := sqlpkg.Stats()
	tbl := &eval.Table{
		Title:   "planner counters (cache, access paths, join order, fast paths)",
		Headers: []string{"counter", "value"},
	}
	for _, row := range [][2]string{
		{"plans-built", fmt.Sprint(st.Plans)},
		{"plan-cache-hits", fmt.Sprint(st.PlanCacheHits)},
		{"plan-cache-misses", fmt.Sprint(st.PlanCacheMisses)},
		{"index-scans", fmt.Sprint(st.IndexScans)},
		{"range-scans", fmt.Sprint(st.RangeScans)},
		{"in-scans", fmt.Sprint(st.InScans)},
		{"match-scans", fmt.Sprint(st.MatchScans)},
		{"full-scans", fmt.Sprint(st.FullScans)},
		{"lazy-index-builds", fmt.Sprint(st.LazyIndexBuilds)},
		{"join-reorders", fmt.Sprint(st.JoinReorders)},
		{"hash-joins", fmt.Sprint(st.HashJoins)},
		{"nested-loop-joins", fmt.Sprint(st.NestedLoopJoins)},
		{"build-side-swaps", fmt.Sprint(st.BuildSideSwaps)},
		{"pushed-predicates", fmt.Sprint(st.PushedPredicates)},
		{"exists-fast-paths", fmt.Sprint(st.ExistsFastPaths)},
		{"limit-short-circuits", fmt.Sprint(st.LimitShortCircuits)},
	} {
		tbl.AddRow(row[0], row[1])
	}
	return tbl
}
