// Command queststats prints the anatomy of a source as QUEST sees it: the
// term space the forward HMM decodes over, the schema graph with its
// information-theoretic edge weights, per-attribute full-text statistics,
// and — on request — the execution plan of an arbitrary SQL query. It is
// the inspection companion to questcli: when a query maps somewhere
// unexpected, this shows the evidence QUEST was working from.
//
// The indexes section runs the dataset workload (with PruneEmpty
// validation) through a fresh engine first, so the reported secondary
// indexes and planner counters reflect what production traffic builds.
//
// Usage:
//
//	queststats [-db imdb|mondial|dblp] [-scale N] [-seed N]
//	           [-section all|terms|graph|fulltext|indexes|stats|mi|fleet|durability|serve] [-sql "SELECT ..."]
//
// The stats section dumps the per-table/per-column statistics snapshots
// the SQL planner estimates from (distinct counts, most common values,
// histogram bounds) plus the planner counters showing how many plans were
// join-reordered and how many scans the range/IN/MATCH index paths served.
//
// The fleet section stands up an in-process replica group (three copies of
// the dataset behind one replicated transport client), scripts a failure
// sequence — replicated writes, a backup crash mid-traffic, a rejoin with
// op-log replay, then a primary crash forcing a failover — and reports the
// resulting fleet topology and the client's replication counters. It is the
// inspection view for the same counters a production coordinator exposes
// through RemoteClientStats.
//
// The serve section stands up an in-process questd serving tier (the same
// serve.Server the daemon mounts) and scripts front-door traffic against
// its HTTP surface: the dataset workload as an interactive tenant, a burst
// of identical concurrent searches that coalesce into one engine call, a
// bulk tenant hammered past its token bucket into typed 429s, one SQL
// query and one malformed request — then reports the flat counter snapshot
// the /v1/stats endpoint serves.
//
// The durability section opens a shard WAL over a scratch directory, runs
// replicated writes through it (group commits, fsyncs, policy snapshots),
// restarts from the directory alone, and then drives a burst of pipelined
// appends against the recovered log — reporting the commit, snapshot and
// recovery counters a durable questshardd exposes through DurabilityStats.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	quest "repro"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/fulltext"
	"repro/internal/mi"
	"repro/internal/relational"
	sqlpkg "repro/internal/sql"
	"repro/internal/transport"
	"repro/internal/wrapper"
)

func main() {
	var (
		dbName  = flag.String("db", "imdb", "dataset: imdb, mondial or dblp")
		scale   = flag.Int("scale", 1, "dataset scale factor")
		seed    = flag.Int64("seed", 42, "dataset seed")
		section = flag.String("section", "all", "what to print: all, terms, graph, fulltext, indexes, stats, mi, fleet, durability, serve")
		sqlText = flag.String("sql", "", "explain this SQL query and exit")
	)
	flag.Parse()

	cfg := quest.DatasetConfig{Seed: *seed, Scale: *scale}
	var db *quest.Database
	switch strings.ToLower(*dbName) {
	case "imdb":
		db = quest.BuildIMDB(cfg)
	case "mondial":
		db = quest.BuildMondial(cfg)
	case "dblp":
		db = quest.BuildDBLP(cfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dbName)
		os.Exit(2)
	}

	if *sqlText != "" {
		plan, err := quest.ExplainSQL(db, *sqlText)
		if err != nil {
			fmt.Fprintf(os.Stderr, "explain: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(plan)
		return
	}

	show := func(s string) bool { return *section == "all" || *section == s }

	fmt.Printf("source %s: %d tables, %d tuples\n\n", db.Name, len(db.Schema.Tables()), db.TotalRows())

	if show("terms") {
		space := core.NewTermSpace(db.Schema)
		tbl := &eval.Table{
			Title:   fmt.Sprintf("term space — %d HMM states", space.Len()),
			Headers: []string{"kind", "count"},
		}
		counts := map[core.TermKind]int{}
		for _, t := range space.Terms {
			counts[t.Kind]++
		}
		for _, k := range []core.TermKind{core.KindTable, core.KindAttribute, core.KindDomain} {
			tbl.AddRow(k.String(), fmt.Sprint(counts[k]))
		}
		fmt.Println(tbl)
	}

	if show("graph") {
		eng := quest.Open(db, quest.Defaults())
		g := eng.Backward().Graph()
		fmt.Printf("== schema graph — %d attribute nodes, %d edges ==\n", g.Len(), g.EdgeCount())
		tbl := &eval.Table{
			Headers: []string{"edge", "kind", "weight"},
		}
		seen := map[string]bool{}
		for v := 0; v < g.Len(); v++ {
			for _, e := range g.Neighbors(v) {
				a, b := g.Name(e.From), g.Name(e.To)
				if a > b {
					a, b = b, a
				}
				key := a + "--" + b
				if seen[key] {
					continue
				}
				seen[key] = true
				tbl.AddRow(key, e.Label, fmt.Sprintf("%.3f", e.Weight))
			}
		}
		fmt.Println(tbl)
	}

	if show("fulltext") {
		ix := fulltext.BuildIndex(db)
		tbl := &eval.Table{
			Title:   "full-text statistics (setup phase)",
			Headers: []string{"attribute", "indexed-cells", "vocabulary"},
		}
		for _, ai := range ix.Attributes() {
			if ai.DocCount() == 0 {
				continue
			}
			tbl.AddRow(ai.Table+"."+ai.Column, fmt.Sprint(ai.DocCount()), fmt.Sprint(ai.VocabularySize()))
		}
		fmt.Println(tbl)
	}

	if show("indexes") {
		// Exercise the planner the way production traffic does — run the
		// dataset's workload with validation queries on — then report what
		// the planner built and which access paths it took.
		sqlpkg.ResetStats()
		opts := quest.Defaults()
		opts.PruneEmpty = true
		eng := quest.Open(db, opts)
		w := eval.NewGenerator(db, *seed+100).Generate(*dbName, eval.TemplatesFor(*dbName), 2)
		for _, q := range w.Queries {
			if ex, err := eng.Search(strings.Join(q.Keywords, " ")); err == nil && len(ex) > 0 {
				eng.Execute(ex[0])
			}
		}

		tbl := &eval.Table{
			Title:   "secondary indexes per table (after workload + PruneEmpty validation)",
			Headers: []string{"table", "rows", "indexed-columns", "index-builds"},
		}
		for _, t := range db.Tables() {
			cols := t.IndexedColumns()
			tbl.AddRow(t.Schema.Name, fmt.Sprint(t.Len()),
				strings.Join(cols, ","), fmt.Sprint(t.IndexBuildCount()))
		}
		fmt.Println(tbl)

		fmt.Println(plannerCounterTable())
	}

	if show("stats") {
		// Plan (and run) a representative workload first so the lazy
		// statistics the planner consults are the ones reported.
		sqlpkg.ResetStats()
		opts := quest.Defaults()
		opts.PruneEmpty = true
		eng := quest.Open(db, opts)
		w := eval.NewGenerator(db, *seed+100).Generate(*dbName, eval.TemplatesFor(*dbName), 2)
		for _, q := range w.Queries {
			if ex, err := eng.Search(strings.Join(q.Keywords, " ")); err == nil && len(ex) > 0 {
				eng.Execute(ex[0])
			}
		}

		tbl := &eval.Table{
			Title:   "column statistics (planner snapshots at current table versions)",
			Headers: []string{"column", "rows", "nulls", "distinct", "min..max", "buckets", "freshness", "top MCVs"},
		}
		for _, t := range db.Tables() {
			for _, col := range t.Schema.Columns {
				cs, err := t.Stats(col.Name)
				if err != nil {
					continue
				}
				minMax := "-"
				if !cs.Min.IsNull() {
					minMax = cs.Min.String() + ".." + cs.Max.String()
				}
				mcvs := make([]string, 0, 3)
				for i, m := range cs.MCVs {
					if i == 3 {
						break
					}
					mcvs = append(mcvs, fmt.Sprintf("%s×%d", m.Value, m.Count))
				}
				mcvText := strings.Join(mcvs, " ")
				if mcvText == "" {
					mcvText = "-"
				}
				freshness := cs.Freshness
				if freshness == "" {
					freshness = "-"
				}
				tbl.AddRow(
					t.Schema.Name+"."+col.Name,
					fmt.Sprint(cs.Rows),
					fmt.Sprint(cs.NullCount),
					fmt.Sprint(cs.Distinct),
					minMax,
					fmt.Sprint(len(cs.Buckets)),
					freshness,
					mcvText,
				)
			}
		}
		fmt.Println(tbl)

		// Incremental-maintenance counters: how the snapshots above were
		// produced (delta folds vs full/sampled rebuilds) and how the
		// sorted indexes absorbed writes (side-run inserts merged on read
		// vs threshold-triggered rebuilds).
		m := db.MaintenanceStats()
		mt := &eval.Table{
			Title: "incremental maintenance (instance-wide counters)",
			Headers: []string{"stats-incremental", "stats-full-rebuilds", "stats-sampled",
				"side-inserts", "side-merges", "index-rebuilds"},
		}
		mt.AddRow(
			fmt.Sprint(m.StatsIncrementalUpdates),
			fmt.Sprint(m.StatsFullRebuilds),
			fmt.Sprint(m.StatsSampledRebuilds),
			fmt.Sprint(m.SortedIndexSideInserts),
			fmt.Sprint(m.SortedIndexMerges),
			fmt.Sprint(m.SortedIndexRebuilds),
		)
		fmt.Println(mt)
		fmt.Println(plannerCounterTable())
	}

	if show("fleet") {
		if err := fleetSection(db); err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			os.Exit(1)
		}
	}

	if show("durability") {
		if err := durabilitySection(db); err != nil {
			fmt.Fprintf(os.Stderr, "durability: %v\n", err)
			os.Exit(1)
		}
	}

	if show("serve") {
		if err := serveSection(db, *dbName, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			os.Exit(1)
		}
	}

	if show("mi") {
		src := wrapper.NewFullAccessSource(db)
		tbl := &eval.Table{
			Title:   "join-edge informativeness (instance statistics behind the Steiner weights)",
			Headers: []string{"fk-edge", "selectivity", "informativeness", "distance"},
		}
		for _, e := range db.Schema.JoinEdges() {
			sel, err := mi.JoinSelectivity(db.Table(e.FromTable), e.FromColumn, db.Table(e.ToTable), e.ToColumn)
			if err != nil {
				continue
			}
			q, err := mi.JoinInformativeness(db.Table(e.FromTable), e.FromColumn, db.Table(e.ToTable), e.ToColumn)
			if err != nil {
				continue
			}
			d, err := src.EdgeDistance(e)
			if err != nil {
				continue
			}
			tbl.AddRow(
				fmt.Sprintf("%s.%s -> %s.%s", e.FromTable, e.FromColumn, e.ToTable, e.ToColumn),
				fmt.Sprintf("%.3f", sel),
				fmt.Sprintf("%.3f", q),
				fmt.Sprintf("%.3f", d),
			)
		}
		fmt.Println(tbl)
	}
}

// demoNet is the in-process network for the fleet section: every replica
// is a transport.Server reached through net.Pipe, and killing a replica
// marks it undialable and severs its live connections — the same fault
// model the conformance fault harness uses.
type demoNet struct {
	mu    sync.Mutex
	srvs  map[string]*transport.Server
	down  map[string]bool
	conns map[string][]net.Conn
}

func (n *demoNet) dial(name string) (net.Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	srv := n.srvs[name]
	if srv == nil || n.down[name] {
		return nil, fmt.Errorf("replica %s is down", name)
	}
	cc, sc := net.Pipe()
	n.conns[name] = append(n.conns[name], cc, sc)
	go srv.ServeConn(sc)
	return cc, nil
}

func (n *demoNet) kill(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[name] = true
	for _, c := range n.conns[name] {
		c.Close()
	}
	n.conns[name] = nil
}

func (n *demoNet) heal(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[name] = false
}

func (n *demoNet) killAll() {
	n.mu.Lock()
	names := make([]string, 0, len(n.srvs))
	for name := range n.srvs {
		names = append(names, name)
	}
	n.mu.Unlock()
	for _, name := range names {
		n.kill(name)
	}
}

// fleetRow synthesizes the i-th write for the fleet exercise: a row of ts
// with type-correct values and a collision-free integer key space well
// above anything the dataset generators emit.
func fleetRow(ts *quest.TableSchema, i int) quest.Row {
	row := make(quest.Row, len(ts.Columns))
	for c, col := range ts.Columns {
		switch col.Type {
		case relational.TypeInt:
			row[c] = quest.Int(int64(9_000_000 + 100*i + c))
		case relational.TypeFloat:
			row[c] = quest.Float(float64(i) + 0.5)
		case relational.TypeBool:
			row[c] = quest.Bool(i%2 == 0)
		default:
			row[c] = quest.Text(fmt.Sprintf("fleet-demo-%d-%d", i, c))
		}
	}
	return row
}

// fleetSection stands up a three-replica group over copies of db, scripts
// the failure sequence described in the package doc, and prints the
// resulting catalog and the client's replication counters.
func fleetSection(db *quest.Database) error {
	dnet := &demoNet{
		srvs:  map[string]*transport.Server{},
		down:  map[string]bool{},
		conns: map[string][]net.Conn{},
	}
	defer dnet.killAll()

	const replicas = 3
	specs := make([]transport.ReplicaSpec, replicas)
	for i := 0; i < replicas; i++ {
		copies, err := quest.PartitionDatabase(db, 1)
		if err != nil {
			return err
		}
		srv := transport.NewServer(wrapper.NewFullAccessSource(copies[0]))
		srv.Resolver = dnet.dial
		name := fmt.Sprintf("replica-%d", i)
		dnet.srvs[name] = srv
		specs[i] = transport.ReplicaSpec{Name: name, Dial: func() (net.Conn, error) { return dnet.dial(name) }}
	}
	client, err := transport.NewReplicatedClient(specs, transport.Options{
		MaxAttempts:        4,
		RetryBackoff:       time.Millisecond,
		ProbeFailThreshold: 2,
	})
	if err != nil {
		return err
	}
	defer client.Close()

	ts := db.Schema.Tables()[0]
	writes := 0
	insert := func(n int) error {
		for i := 0; i < n; i++ {
			if err := client.Insert(ts.Name, fleetRow(ts, writes)); err != nil {
				return fmt.Errorf("insert %d: %w", writes, err)
			}
			writes++
		}
		return nil
	}

	// The scripted exercise: replicated writes, a backup crash under
	// traffic, a rejoin replayed from the primary's op log, then a primary
	// crash that Insert itself fails over, and the old primary rejoining
	// as a backup.
	steps := []struct {
		what string
		run  func() error
	}{
		{"replicate 6 writes across 3 replicas", func() error { return insert(6) }},
		{"kill backup replica-1, write 4 more (demoted from rotation)", func() error {
			dnet.kill("replica-1")
			return insert(4)
		}},
		{"heal replica-1, probe (rejoins via op-log replay)", func() error {
			dnet.heal("replica-1")
			client.ProbeNow()
			return nil
		}},
		{"kill primary replica-0, write 2 more (failover mid-write)", func() error {
			dnet.kill("replica-0")
			return insert(2)
		}},
		{"heal replica-0, probe (old primary rejoins as backup)", func() error {
			dnet.heal("replica-0")
			client.ProbeNow()
			return nil
		}},
	}
	fmt.Printf("== replica fleet — %d writes into %s through a scripted failover ==\n", 12, ts.Name)
	for _, s := range steps {
		if err := s.run(); err != nil {
			return fmt.Errorf("%s: %w", s.what, err)
		}
		fmt.Printf("  * %s\n", s.what)
	}
	fmt.Println()

	fs := client.FleetStatus()
	tbl := &eval.Table{
		Title:   fmt.Sprintf("replica catalog (epoch %d, primary %s)", fs.Epoch, fs.Primary),
		Headers: []string{"replica", "role", "in-rotation", "last-seq", "suspect"},
	}
	for _, r := range fs.Replicas {
		role := "backup"
		if r.Primary {
			role = "primary"
		}
		if r.Diverged {
			role = "diverged"
		}
		tbl.AddRow(r.Name, role, fmt.Sprint(r.InRotation), fmt.Sprint(r.LastSeq), fmt.Sprint(r.Suspect))
	}
	fmt.Println(tbl)

	st := client.Stats()
	ctbl := &eval.Table{
		Title:   "replication counters (coordinator client)",
		Headers: []string{"counter", "value"},
	}
	for _, row := range [][2]string{
		{"inserts", fmt.Sprint(st.Inserts)},
		{"replication-acks", fmt.Sprint(st.ReplicationAcks)},
		{"fenced-writes", fmt.Sprint(st.FencedWrites)},
		{"probes", fmt.Sprint(st.Probes)},
		{"probe-failures", fmt.Sprint(st.ProbeFailures)},
		{"demotions", fmt.Sprint(st.Demotions)},
		{"promotions", fmt.Sprint(st.Promotions)},
		{"replays", fmt.Sprint(st.Replays)},
		{"transport-attempts", fmt.Sprint(st.Attempts)},
		{"transport-retries", fmt.Sprint(st.Retries)},
		{"dials", fmt.Sprint(st.Dials)},
	} {
		ctbl.AddRow(row[0], row[1])
	}
	fmt.Println(ctbl)
	return nil
}

// durabilitySection opens a shard WAL over a scratch directory, runs
// writes through a WAL-backed replica, restarts from the directory alone,
// then drives a pipelined append burst against the recovered log — the
// scripted tour of the durability counters (DurabilityStats) and the
// recovery surface (WALRecovery).
func durabilitySection(db *quest.Database) error {
	dir, err := os.MkdirTemp("", "queststats-wal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	copies, err := quest.PartitionDatabase(db, 1)
	if err != nil {
		return err
	}
	wopt := quest.WALOptions{BatchSize: 16, MaxWait: time.Millisecond, SnapshotEvery: 10}
	l, rec, err := quest.OpenShardWAL(dir, copies[0], wopt)
	if err != nil {
		return err
	}
	fmt.Printf("== shard durability — WAL over %s (fsync on, snapshot every %d ops) ==\n",
		dir, wopt.SnapshotEvery)
	fmt.Printf("  * fresh directory: base snapshot of %d rows written at open\n", rec.DB.TotalRows())

	// Writes ride the replicated server path: append → group commit →
	// fsync → ack, with the checkpoint policy snapshotting along the way.
	dnet := &demoNet{
		srvs:  map[string]*transport.Server{},
		down:  map[string]bool{},
		conns: map[string][]net.Conn{},
	}
	defer dnet.killAll()
	srv := transport.NewServer(wrapper.NewFullAccessSource(rec.DB))
	srv.AttachWAL(l)
	dnet.srvs["durable-0"] = srv
	client, err := transport.NewReplicatedClient([]transport.ReplicaSpec{
		{Name: "durable-0", Dial: func() (net.Conn, error) { return dnet.dial("durable-0") }},
	}, transport.Options{MaxAttempts: 3, RetryBackoff: time.Millisecond})
	if err != nil {
		l.Close()
		return err
	}
	ts := db.Schema.Tables()[0]
	const writes = 24
	for i := 0; i < writes; i++ {
		if err := client.Insert(ts.Name, fleetRow(ts, 10_000+i)); err != nil {
			client.Close()
			l.Close()
			return fmt.Errorf("insert %d: %w", i, err)
		}
	}
	client.Close()
	fmt.Printf("  * %d replicated writes acked after reaching disk\n", writes)
	fmt.Println()
	fmt.Println(walCounterTable("durability counters (live shard, server write path)", l.Stats()))

	// Restart from the directory alone: every acked write was on disk
	// before its ack, so closing the log is byte-equivalent to a crash.
	l.Close()
	empty, err := quest.NewDatabase(db.Name, db.Schema)
	if err != nil {
		return err
	}
	l2, rec2, err := quest.OpenShardWAL(dir, empty, wopt)
	if err != nil {
		return err
	}
	defer l2.Close()
	rtbl := &eval.Table{
		Title:   "recovery (restart from the WAL directory, schema-only base)",
		Headers: []string{"field", "value"},
	}
	for _, row := range [][2]string{
		{"recovered-seq", fmt.Sprint(rec2.LastSeq)},
		{"replayed-ops", fmt.Sprint(rec2.ReplayedOps)},
		{"from-snapshot", fmt.Sprint(rec2.FromSnapshot)},
		{"torn-bytes-discarded", fmt.Sprint(rec2.TornBytes)},
		{"rows-recovered", fmt.Sprint(rec2.DB.TotalRows())},
		{"elapsed", rec2.Elapsed.Round(time.Microsecond).String()},
	} {
		rtbl.AddRow(row[0], row[1])
	}
	fmt.Println(rtbl)

	// A pipelined burst against the recovered log shows group commit
	// amortizing fsyncs: many appends in flight, far fewer batches.
	const burst = 64
	seq := rec2.LastSeq
	waits := make([]func() error, 0, burst)
	for i := 0; i < burst; i++ {
		row := fleetRow(ts, 20_000+i)
		if err := rec2.DB.Insert(ts.Name, row); err != nil {
			return err
		}
		seq++
		waits = append(waits, l2.Append(seq, ts.Name, row).Wait)
	}
	for _, wait := range waits {
		if err := wait(); err != nil {
			return err
		}
	}
	fmt.Printf("  * %d pipelined appends committed on the recovered log\n\n", burst)
	fmt.Println(walCounterTable("durability counters (recovered log, pipelined burst)", l2.Stats()))
	return nil
}

// walCounterTable renders one DurabilityStats snapshot.
func walCounterTable(title string, st quest.DurabilityStats) *eval.Table {
	tbl := &eval.Table{
		Title:   title,
		Headers: []string{"counter", "value"},
	}
	avgWait := time.Duration(0)
	if st.Batches > 0 {
		avgWait = time.Duration(st.CommitWaitNs / st.Batches)
	}
	for _, row := range [][2]string{
		{"appends", fmt.Sprint(st.Appends)},
		{"group-commit-batches", fmt.Sprint(st.Batches)},
		{"max-batch", fmt.Sprint(st.BatchMax)},
		{"fsyncs", fmt.Sprint(st.Fsyncs)},
		{"avg-commit-wait", avgWait.Round(time.Microsecond).String()},
		{"bytes-appended", fmt.Sprint(st.BytesAppended)},
		{"snapshots", fmt.Sprint(st.Snapshots)},
		{"snapshot-time", time.Duration(st.SnapshotNs).Round(time.Microsecond).String()},
		{"snapshot-failures", fmt.Sprint(st.SnapshotFailures)},
		{"recovered-seq", fmt.Sprint(st.RecoveredSeq)},
		{"recovery-replayed-ops", fmt.Sprint(st.RecoveryReplayedOps)},
		{"recovery-time", time.Duration(st.RecoveryNs).Round(time.Microsecond).String()},
	} {
		tbl.AddRow(row[0], row[1])
	}
	return tbl
}

// plannerCounterTable renders the SQL planning layer's counters, including
// the PR 3 access paths (range/IN/MATCH) and join-reorder decisions.
func plannerCounterTable() *eval.Table {
	st := sqlpkg.Stats()
	tbl := &eval.Table{
		Title:   "planner counters (cache, access paths, join order, fast paths)",
		Headers: []string{"counter", "value"},
	}
	for _, row := range [][2]string{
		{"plans-built", fmt.Sprint(st.Plans)},
		{"plan-cache-hits", fmt.Sprint(st.PlanCacheHits)},
		{"plan-cache-misses", fmt.Sprint(st.PlanCacheMisses)},
		{"index-scans", fmt.Sprint(st.IndexScans)},
		{"range-scans", fmt.Sprint(st.RangeScans)},
		{"in-scans", fmt.Sprint(st.InScans)},
		{"match-scans", fmt.Sprint(st.MatchScans)},
		{"full-scans", fmt.Sprint(st.FullScans)},
		{"lazy-index-builds", fmt.Sprint(st.LazyIndexBuilds)},
		{"join-reorders", fmt.Sprint(st.JoinReorders)},
		{"hash-joins", fmt.Sprint(st.HashJoins)},
		{"nested-loop-joins", fmt.Sprint(st.NestedLoopJoins)},
		{"build-side-swaps", fmt.Sprint(st.BuildSideSwaps)},
		{"pushed-predicates", fmt.Sprint(st.PushedPredicates)},
		{"exists-fast-paths", fmt.Sprint(st.ExistsFastPaths)},
		{"limit-short-circuits", fmt.Sprint(st.LimitShortCircuits)},
	} {
		tbl.AddRow(row[0], row[1])
	}
	return tbl
}
