package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"time"

	quest "repro"
	"repro/internal/eval"
	"repro/internal/serve"
	sqlpkg "repro/internal/sql"
	"repro/internal/wrapper"
)

// probeDelaySource charges a small wall-clock delay per existence probe —
// the shape of a coordinator whose PruneEmpty validation waits on remote
// shard round trips. On a single-CPU machine a purely CPU-bound search
// runs to completion before concurrently issued requests are even
// scheduled, so no coalesce window ever opens; waiting-dominated service
// is the deployment shape whose concurrency the section demonstrates.
type probeDelaySource struct {
	*wrapper.FullAccessSource
	delay time.Duration
}

func (s *probeDelaySource) ExecuteExistsCtx(ctx context.Context, stmt *sqlpkg.SelectStmt) (bool, error) {
	t := time.NewTimer(s.delay)
	select {
	case <-t.C:
	case <-ctx.Done():
		t.Stop()
		return false, ctx.Err()
	}
	return s.FullAccessSource.ExecuteExists(stmt)
}

// serveSection mounts the questd serving tier over an in-process engine
// and scripts the traffic shapes the front door exists to manage, then
// reports the counter snapshot /v1/stats serves. The engine runs with
// PruneEmpty validation and the query cache off so every admitted search
// pays the full pipeline — the shape under which coalescing and queue
// wait are visible at all.
func serveSection(db *quest.Database, dbName string, seed int64) error {
	opts := quest.Defaults()
	opts.PruneEmpty = true
	opts.QueryCacheSize = -1
	eng := quest.OpenSource(&probeDelaySource{
		FullAccessSource: wrapper.NewFullAccessSource(db),
		delay:            time.Millisecond,
	}, opts)
	sv := serve.New(eng, serve.Options{
		TenantRate:  200,
		TenantBurst: 32,
	})

	do := func(method, target, tenant, body string) int {
		var rd *strings.Reader
		if body == "" {
			rd = strings.NewReader("")
		} else {
			rd = strings.NewReader(body)
		}
		req := httptest.NewRequest(method, target, rd)
		if tenant != "" {
			req.Header.Set(serve.TenantHeader, tenant)
		}
		if body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		rr := httptest.NewRecorder()
		sv.ServeHTTP(rr, req)
		return rr.Code
	}
	search := func(tenant, q string) int {
		return do("GET", "/v1/search?k=3&q="+url.QueryEscape(q), tenant, "")
	}

	w := eval.NewGenerator(db, seed+100).Generate(dbName, eval.TemplatesFor(dbName), 2)
	if len(w.Queries) == 0 {
		return fmt.Errorf("empty workload for %s", dbName)
	}
	queries := make([]string, 0, len(w.Queries))
	for _, q := range w.Queries {
		queries = append(queries, strings.Join(q.Keywords, " "))
	}

	fmt.Printf("== serving tier — questd's HTTP surface over an in-process engine ==\n")

	// Interactive tenant: the dataset workload, one search at a time.
	okCount := 0
	for _, q := range queries {
		if search("interactive", q) == 200 {
			okCount++
		}
	}
	fmt.Printf("  * interactive tenant: %d/%d workload searches returned 200\n", okCount, len(queries))

	// A burst of identical concurrent searches: one leader runs the
	// engine, the rest coalesce onto its in-flight result.
	const dup = 6
	var wg sync.WaitGroup
	for i := 0; i < dup; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			search("interactive", queries[0])
		}()
	}
	wg.Wait()
	fmt.Printf("  * %d identical searches issued concurrently (coalesce window)\n", dup)

	// Bulk tenant: a burst far past its token bucket; the overflow is
	// rejected with typed 429s before it ever reaches the engine.
	const burst = 48
	var admitted, limited int
	var mu sync.Mutex
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code := search("bulk", queries[i%len(queries)])
			mu.Lock()
			defer mu.Unlock()
			switch code {
			case 200:
				admitted++
			case 429:
				limited++
			}
		}(i)
	}
	wg.Wait()
	fmt.Printf("  * bulk tenant: %d-request burst -> %d admitted, %d rate-limited (429)\n", burst, admitted, limited)

	// One SQL statement through /v1/sql and one malformed request.
	ts := db.Schema.Tables()[0]
	stmt := fmt.Sprintf("SELECT %s FROM %s LIMIT 5", ts.Columns[0].Name, ts.Name)
	if code := do("POST", "/v1/sql", "interactive", fmt.Sprintf(`{"sql":%q}`, stmt)); code != 200 {
		return fmt.Errorf("POST /v1/sql %q returned %d", stmt, code)
	}
	fmt.Printf("  * POST /v1/sql %q -> 200\n", stmt)
	if code := do("GET", "/v1/search", "interactive", ""); code != 400 {
		return fmt.Errorf("search without q returned %d, want 400", code)
	}
	fmt.Printf("  * GET /v1/search without q -> typed 400\n")
	fmt.Println()

	// Read the snapshot the way an operator would: off /v1/stats itself.
	req := httptest.NewRequest("GET", "/v1/stats", nil)
	rr := httptest.NewRecorder()
	sv.ServeHTTP(rr, req)
	var st serve.Stats
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		return fmt.Errorf("decode /v1/stats: %w", err)
	}

	tbl := &eval.Table{
		Title:   "serving counters (/v1/stats snapshot)",
		Headers: []string{"counter", "value"},
	}
	for _, row := range [][2]string{
		{"requests", fmt.Sprint(st.Requests)},
		{"searches-executed", fmt.Sprint(st.Searches)},
		{"coalesced", fmt.Sprint(st.Coalesced)},
		{"sql-queries", fmt.Sprint(st.SQLQueries)},
		{"rate-limited-429", fmt.Sprint(st.RateLimited)},
		{"shed-503", fmt.Sprint(st.Shed)},
		{"deadline-exceeded-504", fmt.Sprint(st.DeadlineExceeded)},
		{"client-canceled-499", fmt.Sprint(st.ClientCanceled)},
		{"bad-requests-400", fmt.Sprint(st.BadRequests)},
		{"errors-500", fmt.Sprint(st.Errors)},
		{"rows-returned", fmt.Sprint(st.RowsReturned)},
		{"total-queue-wait", time.Duration(st.QueueWaitNs).Round(time.Microsecond).String()},
		{"total-exec-time", time.Duration(st.ExecNs).Round(time.Microsecond).String()},
	} {
		tbl.AddRow(row[0], row[1])
	}
	fmt.Println(tbl)
	return nil
}
