package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name                                       string
		shards, index, scale, snapInt, commitBatch int
		wantErr                                    string // substring; "" means valid
	}{
		{name: "defaults", shards: 1, index: 0, scale: 1, snapInt: 4096},
		{name: "last index of fleet", shards: 3, index: 2, scale: 1, snapInt: 4096},
		{name: "snapshots disabled", shards: 1, index: 0, scale: 1, snapInt: 0},
		{name: "explicit commit batch", shards: 1, index: 0, scale: 1, snapInt: 1, commitBatch: 64},

		{name: "zero shards", shards: 0, index: 0, scale: 1, snapInt: 1, wantErr: "-shards"},
		{name: "negative shards", shards: -2, index: 0, scale: 1, snapInt: 1, wantErr: "-shards"},
		{name: "negative index", shards: 2, index: -1, scale: 1, snapInt: 1, wantErr: "-index"},
		{name: "index past fleet", shards: 2, index: 2, scale: 1, snapInt: 1, wantErr: "-index"},
		{name: "zero scale", shards: 1, index: 0, scale: 0, snapInt: 1, wantErr: "-scale"},
		{name: "negative scale", shards: 1, index: 0, scale: -1, snapInt: 1, wantErr: "-scale"},
		{name: "negative snapshot interval", shards: 1, index: 0, scale: 1, snapInt: -1, wantErr: "-snapshot-interval"},
		{name: "negative commit batch", shards: 1, index: 0, scale: 1, snapInt: 1, commitBatch: -1, wantErr: "-commit-batch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.shards, tc.index, tc.scale, tc.snapInt, tc.commitBatch)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFlags = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateFlags = nil, want error naming %s", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validateFlags = %q, want it to name %s", err, tc.wantErr)
			}
		})
	}
}
