// Command questshardd serves one shard of a QUEST database over the wire
// protocol of internal/transport, turning the sharded execution layer into
// a multi-process deployment: a coordinator opened with quest.OpenRemote
// sends pushdown-fragment SQL to N questshardd processes and merges their
// length-prefixed row streams, with retries and hedged reads handled by
// the client side.
//
// Each process owns one hash partition of the dataset: -shards picks the
// partition count (which must match the coordinator's shard list), -index
// which partition this process holds. Identical -dataset/-seed/-scale
// flags on every process reproduce the same split deterministically, so a
// fleet can be started with nothing shared but the command line:
//
//	questshardd -addr :4730 -dataset imdb -shards 3 -index 0 &
//	questshardd -addr :4731 -dataset imdb -shards 3 -index 1 &
//	questshardd -addr :4732 -dataset imdb -shards 3 -index 2 &
//
// and dialed with quest.OpenRemote(schema, [][]string{{":4730"}, {":4731"},
// {":4732"}}, ...). Several processes with the same -index behind one
// shard's address list form a replica group: the coordinator elects one
// primary per group (writes route there and replicate synchronously to
// the backups, who are dialed by the very addresses in the shard list),
// health-probes every member, fails over to a backup when the primary
// dies, and replays rejoining replicas from the primary's op log —
// -repl-timeout and -max-oplog tune that path. Reads rotate across the
// group, and hedged reads get a second target.
//
// With -wal-dir the shard is durable: every replicated write is appended
// to a group-committed write-ahead log in that directory before it is
// acked, and periodic snapshots bound the log. A crashed process
// restarted with the same -wal-dir recovers its data and its replication
// sequence from disk (a torn final record — a crash mid group-commit —
// is discarded cleanly), resumes where it left off, and rejoins its
// replica group with the missed tail replayed from the primary and zero
// duplicate applies. -fsync, -commit-batch, -commit-wait and
// -snapshot-interval tune the commit and checkpoint policy. On a fresh
// directory the generated partition is snapshotted at startup; on
// restart the recovered snapshot supersedes the generated rows, so the
// writes the process accepted are never lost to a rebuild.
//
// The served backend is a full-access wrapper over the partition: fragment
// execution uses the shard-local planner and indexes, existence probes use
// the streaming existence mode, and the statistics/relevance faces
// (ColumnStatistics, AttributeScore, EdgeDistance) answer from shard-local
// evidence for the coordinator to merge.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	quest "repro"
	"repro/internal/shard"
	"repro/internal/transport"
	"repro/internal/wal"
	"repro/internal/wrapper"
)

// validateFlags rejects flag combinations that would build a nonsense
// shard rather than letting them surface later as a confusing partition
// or WAL failure. -snapshot-interval 0 is legal: it is documented to
// disable periodic snapshots (wal.Options.SnapshotEvery), so only
// negative values are refused.
func validateFlags(shards, index, scale, snapInterval, commitBatch int) error {
	if shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", shards)
	}
	if index < 0 || index >= shards {
		return fmt.Errorf("-index %d out of range for %d shards (want 0..%d)", index, shards, shards-1)
	}
	if scale < 1 {
		return fmt.Errorf("-scale must be >= 1, got %d", scale)
	}
	if snapInterval < 0 {
		return fmt.Errorf("-snapshot-interval must be >= 0 (0 disables periodic snapshots), got %d", snapInterval)
	}
	if commitBatch < 0 {
		return fmt.Errorf("-commit-batch must be >= 0 (0 selects the default), got %d", commitBatch)
	}
	return nil
}

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:4730", "listen address")
		dataset = flag.String("dataset", "imdb", "dataset served: imdb, mondial or dblp")
		seed    = flag.Int64("seed", 42, "dataset seed (must match the coordinator's fleet)")
		scale   = flag.Int("scale", 1, "dataset scale")
		shards  = flag.Int("shards", 1, "total hash partitions in the fleet")
		index   = flag.Int("index", 0, "which partition this process serves (0-based)")
		batch   = flag.Int("batch", transport.DefaultBatchRows, "rows per response frame")
		replTO  = flag.Duration("repl-timeout", transport.DefaultReplTimeout,
			"deadline for one synchronous replicate round trip to a backup")
		maxOplog = flag.Int("max-oplog", transport.DefaultMaxOpLog,
			"replicated ops retained in memory for replay-on-rejoin")
		walDir = flag.String("wal-dir", "",
			"durability directory: group-committed WAL + snapshots; restart with the same directory to recover")
		fsync = flag.Bool("fsync", true,
			"fsync each group commit (with -wal-dir); false trades crash durability for latency")
		snapInterval = flag.Int("snapshot-interval", 4096,
			"ops between snapshots that truncate the WAL (with -wal-dir); 0 disables periodic snapshots")
		commitBatch = flag.Int("commit-batch", 0,
			"max appends folded into one group commit (with -wal-dir); 0 selects the default")
		commitWait = flag.Duration("commit-wait", 0,
			"how long a group commit lingers for more appends (with -wal-dir); 0 never delays a lone writer")
	)
	flag.Parse()

	cfg := quest.DatasetConfig{Seed: *seed, Scale: *scale}
	var db *quest.Database
	switch *dataset {
	case "imdb":
		db = quest.BuildIMDB(cfg)
	case "mondial":
		db = quest.BuildMondial(cfg)
	case "dblp":
		db = quest.BuildDBLP(cfg)
	default:
		fmt.Fprintf(os.Stderr, "questshardd: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	if err := validateFlags(*shards, *index, *scale, *snapInterval, *commitBatch); err != nil {
		fmt.Fprintf(os.Stderr, "questshardd: %v\n", err)
		os.Exit(2)
	}
	if *shards > 1 {
		parts, err := shard.Partition(db, *shards)
		if err != nil {
			fmt.Fprintf(os.Stderr, "questshardd: partition: %v\n", err)
			os.Exit(1)
		}
		db = parts[*index]
	}

	var shardWAL *wal.Log
	if *walDir != "" {
		l, rec, err := wal.Open(*walDir, db, wal.Options{
			BatchSize:     *commitBatch,
			MaxWait:       *commitWait,
			NoFsync:       !*fsync,
			SnapshotEvery: *snapInterval,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "questshardd: wal: %v\n", err)
			os.Exit(1)
		}
		shardWAL, db = l, rec.DB
		fmt.Printf("questshardd: wal %s recovered seq %d (%d ops replayed, snapshot=%v, torn=%d bytes) in %v\n",
			*walDir, rec.LastSeq, rec.ReplayedOps, rec.FromSnapshot, rec.TornBytes, rec.Elapsed.Round(time.Millisecond))
	}

	src := wrapper.NewFullAccessSource(db)
	srv := transport.NewServer(src)
	srv.BatchRows = *batch
	srv.ReplTimeout = *replTO
	srv.MaxOpLog = *maxOplog
	if shardWAL != nil {
		srv.AttachWAL(shardWAL) // resumes replication at the recovered sequence
		defer shardWAL.Close()
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "questshardd: listen: %v\n", err)
		os.Exit(1)
	}
	rows := 0
	for _, ts := range db.Schema.Tables() {
		rows += db.Table(ts.Name).Len()
	}
	fmt.Printf("questshardd: serving %s shard %d/%d (%d rows) on %s\n",
		*dataset, *index, *shards, rows, l.Addr())
	if err := srv.Serve(l); err != nil {
		fmt.Fprintf(os.Stderr, "questshardd: serve: %v\n", err)
		os.Exit(1)
	}
}
