// Command questshardd serves one shard of a QUEST database over the wire
// protocol of internal/transport, turning the sharded execution layer into
// a multi-process deployment: a coordinator opened with quest.OpenRemote
// sends pushdown-fragment SQL to N questshardd processes and merges their
// length-prefixed row streams, with retries and hedged reads handled by
// the client side.
//
// Each process owns one hash partition of the dataset: -shards picks the
// partition count (which must match the coordinator's shard list), -index
// which partition this process holds. Identical -dataset/-seed/-scale
// flags on every process reproduce the same split deterministically, so a
// fleet can be started with nothing shared but the command line:
//
//	questshardd -addr :4730 -dataset imdb -shards 3 -index 0 &
//	questshardd -addr :4731 -dataset imdb -shards 3 -index 1 &
//	questshardd -addr :4732 -dataset imdb -shards 3 -index 2 &
//
// and dialed with quest.OpenRemote(schema, [][]string{{":4730"}, {":4731"},
// {":4732"}}, ...). Several processes with the same -index behind one
// shard's address list form a replica group: the coordinator elects one
// primary per group (writes route there and replicate synchronously to
// the backups, who are dialed by the very addresses in the shard list),
// health-probes every member, fails over to a backup when the primary
// dies, and replays rejoining replicas from the primary's op log —
// -repl-timeout and -max-oplog tune that path. Reads rotate across the
// group, and hedged reads get a second target.
//
// The served backend is a full-access wrapper over the partition: fragment
// execution uses the shard-local planner and indexes, existence probes use
// the streaming existence mode, and the statistics/relevance faces
// (ColumnStatistics, AttributeScore, EdgeDistance) answer from shard-local
// evidence for the coordinator to merge.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	quest "repro"
	"repro/internal/shard"
	"repro/internal/transport"
	"repro/internal/wrapper"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:4730", "listen address")
		dataset = flag.String("dataset", "imdb", "dataset served: imdb, mondial or dblp")
		seed    = flag.Int64("seed", 42, "dataset seed (must match the coordinator's fleet)")
		scale   = flag.Int("scale", 1, "dataset scale")
		shards  = flag.Int("shards", 1, "total hash partitions in the fleet")
		index   = flag.Int("index", 0, "which partition this process serves (0-based)")
		batch   = flag.Int("batch", transport.DefaultBatchRows, "rows per response frame")
		replTO  = flag.Duration("repl-timeout", transport.DefaultReplTimeout,
			"deadline for one synchronous replicate round trip to a backup")
		maxOplog = flag.Int("max-oplog", transport.DefaultMaxOpLog,
			"replicated ops retained in memory for replay-on-rejoin")
	)
	flag.Parse()

	cfg := quest.DatasetConfig{Seed: *seed, Scale: *scale}
	var db *quest.Database
	switch *dataset {
	case "imdb":
		db = quest.BuildIMDB(cfg)
	case "mondial":
		db = quest.BuildMondial(cfg)
	case "dblp":
		db = quest.BuildDBLP(cfg)
	default:
		fmt.Fprintf(os.Stderr, "questshardd: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	if *shards < 1 || *index < 0 || *index >= *shards {
		fmt.Fprintf(os.Stderr, "questshardd: index %d out of range for %d shards\n", *index, *shards)
		os.Exit(2)
	}
	if *shards > 1 {
		parts, err := shard.Partition(db, *shards)
		if err != nil {
			fmt.Fprintf(os.Stderr, "questshardd: partition: %v\n", err)
			os.Exit(1)
		}
		db = parts[*index]
	}

	src := wrapper.NewFullAccessSource(db)
	srv := transport.NewServer(src)
	srv.BatchRows = *batch
	srv.ReplTimeout = *replTO
	srv.MaxOpLog = *maxOplog
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "questshardd: listen: %v\n", err)
		os.Exit(1)
	}
	rows := 0
	for _, ts := range db.Schema.Tables() {
		rows += db.Table(ts.Name).Len()
	}
	fmt.Printf("questshardd: serving %s shard %d/%d (%d rows) on %s\n",
		*dataset, *index, *shards, rows, l.Addr())
	if err := srv.Serve(l); err != nil {
		fmt.Fprintf(os.Stderr, "questshardd: serve: %v\n", err)
		os.Exit(1)
	}
}
