// Command questcli is the interactive demonstration front-end: pick a
// dataset, type keyword queries, browse ranked SQL explanations, execute
// them and see the involved database portion as an ASCII graph — the
// terminal analogue of the paper's GUI (Figure 2).
//
// Usage:
//
//	questcli [-db imdb|mondial|dblp] [-scale N] [-k N] [-hidden]
//	         [-ocap F] [-ocf F] [-oc F] [-oi F] [-q "keywords"]
//
// With -q the query runs once and the process exits (scripting mode);
// otherwise an interactive prompt starts.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	quest "repro"
)

func main() {
	var (
		dbName = flag.String("db", "imdb", "dataset: imdb, mondial or dblp")
		scale  = flag.Int("scale", 1, "dataset scale factor")
		seed   = flag.Int64("seed", 42, "dataset seed")
		k      = flag.Int("k", 5, "number of explanations")
		hidden = flag.Bool("hidden", false, "access the database as a hidden (Deep Web) source")
		ocap   = flag.Float64("ocap", 0.2, "DS ignorance of the a-priori mode")
		ocf    = flag.Float64("ocf", 0.8, "DS ignorance of the feedback mode")
		oc     = flag.Float64("oc", 0.3, "DS ignorance of the forward approach")
		oi     = flag.Float64("oi", 0.3, "DS ignorance of the backward approach")
		oneQ   = flag.String("q", "", "run a single query and exit")
		maxRow = flag.Int("rows", 8, "max result tuples to print per explanation")
	)
	flag.Parse()

	cfg := quest.DatasetConfig{Seed: *seed, Scale: *scale}
	var db *quest.Database
	switch strings.ToLower(*dbName) {
	case "imdb":
		db = quest.BuildIMDB(cfg)
	case "mondial":
		db = quest.BuildMondial(cfg)
	case "dblp":
		db = quest.BuildDBLP(cfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dbName)
		os.Exit(2)
	}

	opts := quest.Defaults()
	opts.K = *k
	opts.Uncertainty = quest.Uncertainty{OCap: *ocap, OCf: *ocf, OC: *oc, OI: *oi}

	var eng *quest.Engine
	if *hidden {
		opts.UseLike = true
		eng = quest.OpenHidden(db, quest.DefaultThesaurus(), opts)
		fmt.Printf("opened %s as a HIDDEN source (metadata-only wrapper)\n", db.Name)
	} else {
		eng = quest.Open(db, opts)
		fmt.Printf("opened %s with full access (%d tables, %d tuples)\n",
			db.Name, len(db.Schema.Tables()), db.TotalRows())
	}

	// lastResults supports the "ok N" feedback command: validating an
	// explanation trains the feedback HMM, and with AutoAdapt the DS
	// uncertainties shift toward the feedback mode as validations accrue.
	var lastResults []*quest.Explanation
	eng.AutoAdapt(true)

	run := func(query string) {
		results, err := eng.Search(query)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return
		}
		if len(results) == 0 {
			fmt.Println("no explanations found (keywords match nothing)")
			return
		}
		lastResults = results
		for i, ex := range results {
			fmt.Printf("\n#%d  belief=%.4f\n", i+1, ex.Belief)
			fmt.Printf("  mapping : %s\n", ex.Config)
			fmt.Printf("  sql     : %s\n", ex.SQL)
			res, err := eng.Execute(ex)
			if err != nil {
				fmt.Printf("  exec err: %v\n", err)
				continue
			}
			fmt.Printf("  tuples  : %d\n", len(res.Rows))
			if len(res.Rows) > 0 {
				shown := res
				if len(res.Rows) > *maxRow {
					shown = &quest.Result{Columns: res.Columns, Rows: res.Rows[:*maxRow]}
				}
				for _, line := range strings.Split(strings.TrimRight(shown.String(), "\n"), "\n") {
					fmt.Printf("    %s\n", line)
				}
				if len(res.Rows) > *maxRow {
					fmt.Printf("    ... %d more\n", len(res.Rows)-*maxRow)
				}
			}
		}
		fmt.Printf("\ninvolved database portion (top explanation):\n")
		for _, line := range strings.Split(strings.TrimRight(quest.RenderExplanation(results[0]), "\n"), "\n") {
			fmt.Printf("  %s\n", line)
		}
	}

	if *oneQ != "" {
		run(*oneQ)
		return
	}

	fmt.Println(`type keyword queries ("quit" to exit, "schema" to list tables, "ok N" to validate explanation N, "explain N" for its execution plan):`)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("quest> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == "quit" || line == "exit":
			return
		case line == "schema":
			fmt.Print(db.Schema.DDL())
		case strings.HasPrefix(line, "explain "):
			n := 0
			if _, err := fmt.Sscanf(line, "explain %d", &n); err != nil || n < 1 || n > len(lastResults) {
				fmt.Printf("usage: explain N  (1..%d, after a query)\n", len(lastResults))
				continue
			}
			plan, err := quest.ExplainSQL(db, lastResults[n-1].SQL)
			if err != nil {
				fmt.Printf("explain error: %v\n", err)
				continue
			}
			fmt.Print(plan)
		case strings.HasPrefix(line, "ok "):
			n := 0
			if _, err := fmt.Sscanf(line, "ok %d", &n); err != nil || n < 1 || n > len(lastResults) {
				fmt.Printf("usage: ok N  (1..%d, after a query)\n", len(lastResults))
				continue
			}
			eng.AddFeedback([]*quest.Configuration{lastResults[n-1].Config})
			u := eng.Options().Uncertainty
			fmt.Printf("validated #%d (%s); %d validations so far, OCap=%.2f OCf=%.2f\n",
				n, lastResults[n-1].Config, eng.Forward().FeedbackCount(), u.OCap, u.OCf)
		default:
			run(line)
		}
	}
}
