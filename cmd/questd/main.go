// Command questd is QUEST's front-door serving daemon: an HTTP/JSON
// keyword-search service (internal/serve) over any of the three
// deployment shapes. By default it builds a dataset in process and
// serves a single-process engine; -shards N > 1 splits the same dataset
// into N in-process hash partitions behind the sharded executor; -remote
// dials a questshardd fleet instead, so this process is a stateless
// coordinator + front door:
//
//	questd -addr :8080 -dataset imdb -scale 2
//	questd -addr :8080 -dataset imdb -shards 4
//	questd -addr :8080 -dataset imdb -remote ':4730,:4731;:4732,:4733' -hash-routing
//
// The -remote list is one group per shard, groups separated by ';',
// replicas of one shard separated by ',' — the same topology
// quest.OpenRemote takes. -hash-routing declares the fleet was started
// with matching -shards flags (PK partition pruning).
//
// See internal/serve for the HTTP API: /v1/search, /v1/sql, /v1/stats,
// /healthz, the X-Quest-Tenant / X-Quest-Deadline-Ms headers and typed
// error codes. The admission knobs (-rate, -burst, -max-queue,
// -max-concurrent, deadlines, -no-coalesce) map one-to-one onto
// serve.Options.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	quest "repro"
	"repro/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		dataset = flag.String("dataset", "imdb", "dataset served: imdb, mondial or dblp")
		seed    = flag.Int64("seed", 42, "dataset seed (with -remote, must match the fleet)")
		scale   = flag.Int("scale", 1, "dataset scale")
		shards  = flag.Int("shards", 1, "in-process hash partitions (>1 selects the sharded executor)")
		remote  = flag.String("remote", "",
			"questshardd fleet to dial instead of in-process data: shard groups separated by ';', replica addresses by ','")
		hashRouting = flag.Bool("hash-routing", false,
			"with -remote: fleet holds hash partitions with matching -shards flags (enables PK partition pruning)")
		k     = flag.Int("k", 10, "explanations returned per search")
		prune = flag.Bool("prune", false, "validate candidate explanations and drop empty-result ones")

		rate = flag.Float64("rate", 0,
			"per-tenant admitted requests per second (0 selects the default, negative disables rate limiting)")
		burst    = flag.Int("burst", 0, "per-tenant burst capacity (0 selects 2x rate)")
		maxQueue = flag.Int("max-queue", 0,
			"admitted requests allowed to wait beyond the executing ones before shedding (0 selects the default, negative disables shedding)")
		maxConcurrent = flag.Int("max-concurrent", 0, "searches executing at once (0 selects GOMAXPROCS)")
		defDeadline   = flag.Duration("default-deadline", 0, "deadline for requests without a deadline header (0 selects 5s)")
		maxDeadline   = flag.Duration("max-deadline", 0, "upper clamp on client-requested deadlines (0 selects 30s)")
		noCoalesce    = flag.Bool("no-coalesce", false, "disable singleflight coalescing of identical concurrent searches")
		respCache     = flag.Int("response-cache", 0,
			"response cache entries, invalidated by per-table versions (0 disables)")
	)
	flag.Parse()

	cfg := quest.DatasetConfig{Seed: *seed, Scale: *scale}
	var db *quest.Database
	switch *dataset {
	case "imdb":
		db = quest.BuildIMDB(cfg)
	case "mondial":
		db = quest.BuildMondial(cfg)
	case "dblp":
		db = quest.BuildDBLP(cfg)
	default:
		fmt.Fprintf(os.Stderr, "questd: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	opts := quest.Defaults()
	opts.K = *k
	opts.PruneEmpty = *prune

	var (
		eng   *quest.Engine
		err   error
		shape string
	)
	switch {
	case *remote != "":
		groups := parseShardGroups(*remote)
		if len(groups) == 0 {
			fmt.Fprintln(os.Stderr, "questd: -remote lists no shard addresses")
			os.Exit(2)
		}
		ropt := quest.RemoteOptions{AssumeHashRouting: *hashRouting}
		eng, err = quest.OpenRemote(db.Schema, *dataset, groups, ropt, opts)
		shape = fmt.Sprintf("remote fleet of %d shard groups", len(groups))
	case *shards > 1:
		eng, err = quest.OpenSharded(db, *shards, opts)
		shape = fmt.Sprintf("%d in-process partitions", *shards)
	case *shards < 1:
		fmt.Fprintf(os.Stderr, "questd: -shards must be >= 1, got %d\n", *shards)
		os.Exit(2)
	default:
		eng = quest.Open(db, opts)
		shape = "single process"
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "questd: open: %v\n", err)
		os.Exit(1)
	}

	srv := serve.New(eng, serve.Options{
		DefaultDeadline: *defDeadline,
		MaxDeadline:     *maxDeadline,
		MaxConcurrent:   *maxConcurrent,
		MaxQueue:        *maxQueue,
		TenantRate:      *rate,
		TenantBurst:     *burst,
		DisableCoalesce: *noCoalesce,

		ResponseCacheSize: *respCache,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "questd: listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("questd: serving %s (%s) on http://%s\n", *dataset, shape, l.Addr())
	hs := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	if err := hs.Serve(l); err != nil {
		fmt.Fprintf(os.Stderr, "questd: serve: %v\n", err)
		os.Exit(1)
	}
}

// parseShardGroups splits ':4730,:4731;:4732' into per-shard replica
// address groups, dropping empty entries so trailing separators are
// harmless.
func parseShardGroups(s string) [][]string {
	var groups [][]string
	for _, g := range strings.Split(s, ";") {
		var addrs []string
		for _, a := range strings.Split(g, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) > 0 {
			groups = append(groups, addrs)
		}
	}
	return groups
}
