package main

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	quest "repro"
	"repro/internal/eval"
	"repro/internal/serve"
	sqlpkg "repro/internal/sql"
	"repro/internal/wrapper"
)

// e16Serving: the serving-tier overload scorecard. Unlike every earlier
// latency experiment, the load generator here is open-loop: arrivals
// follow a Poisson process at a fixed rate whether or not earlier
// requests have finished, the way real front-door traffic behaves. A
// closed-loop generator (issue, wait, issue) can never push a server past
// its capacity — each stalled response throttles the generator — so it
// structurally cannot see what overload does to the tail. Latency is
// measured from each request's *scheduled* arrival, not from when the
// client goroutine got around to sending it, so coordinated omission
// doesn't flatter the percentiles.
//
// E16a estimates the server's closed-loop capacity (the denominator for
// the load factors). E16b then drives 1x, 1.5x and 2x that rate at the
// HTTP surface of a questd-shaped server — MaxConcurrent pinned to 2,
// query cache and coalescing disabled so every admitted request pays the
// full pipeline — once with load shedding (small admission queue, typed
// 503s past it) and once without (unbounded queue). The point the table
// makes: past capacity, the unbounded queue's admitted p99 grows with the
// length of the run (every arrival waits behind an ever-longer line),
// while the shedding server holds its admitted tail near the 1x tail and
// pays for it in 503s — which is the trade a front door wants.
func e16Serving() {
	db := quest.BuildIMDB(quest.DatasetConfig{Seed: *seed, Scale: 1})
	opts := quest.Defaults()
	opts.QueryCacheSize = -1 // every search pays the full pipeline
	opts.PruneEmpty = true   // and validates candidates, questd's -prune shape
	// The engine runs over a source whose existence probes cost wall-clock
	// time but no CPU — the deployment shape questd actually fronts, a
	// coordinator whose validation work is dominated by remote shard round
	// trips. On this single-CPU machine a CPU-bound workload can't show
	// admission control doing its job: past capacity the generator, the
	// accept loop and the handlers all starve together, so requests queue
	// in the kernel before the admission check ever sees them. With
	// waiting-dominated service the CPU stays unsaturated at every tested
	// load and overload manifests exactly where the serving tier manages
	// it: in the execution-slot queue.
	eng := quest.OpenSource(&slowExistsSource{
		FullAccessSource: wrapper.NewFullAccessSource(db),
		delay:            4 * time.Millisecond,
	}, opts)

	w := workloadFor(db, "imdb")
	queries := make([]string, 0, len(w.Queries))
	for _, q := range w.Queries {
		queries = append(queries, strings.Join(q.Keywords, " "))
	}
	if len(queries) == 0 {
		panic("e16: empty workload")
	}

	const concurrency = 2

	// startServer boots a questd-shaped HTTP server on a loopback port.
	// maxQueue < 0 is the no-shedding configuration.
	startServer := func(maxQueue int) (*serve.Server, *http.Server, string) {
		sv := serve.New(eng, serve.Options{
			MaxConcurrent:   concurrency,
			MaxQueue:        maxQueue,
			TenantRate:      -1, // admission rate limiting off: E16 studies shedding
			DisableCoalesce: true,
			DefaultDeadline: 60 * time.Second,
			MaxDeadline:     120 * time.Second,
		})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		hs := &http.Server{Handler: sv}
		go hs.Serve(l)
		return sv, hs, "http://" + l.Addr().String()
	}

	// Idle-pool limits sized so the open-loop bursts reuse connections:
	// a cold dial per request on this machine would cost more than the
	// pipeline itself and the measured queue would be TCP setup, not the
	// server's admission queue.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        2048,
		MaxIdleConnsPerHost: 1024,
	}}
	get := func(base, q string) (int, error) {
		req, err := http.NewRequest(http.MethodGet, base+"/v1/search?q="+strings.ReplaceAll(q, " ", "+"), nil)
		if err != nil {
			return 0, err
		}
		req.Header.Set(serve.DeadlineHeader, "60000")
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	// E16a: closed-loop capacity estimate — `concurrency` workers in
	// lockstep with the execution slots, zero queueing. This is the best
	// sustained throughput the engine can give this server; the open-loop
	// scenarios express their arrival rates as multiples of it.
	_, hs, base := startServer(-1)
	warm, measured := 2*len(queries), 120
	for i := 0; i < warm; i++ {
		if code, err := get(base, queries[i%len(queries)]); err != nil || code != http.StatusOK {
			panic(fmt.Sprintf("e16 warmup: code %d err %v", code, err))
		}
	}
	var wg sync.WaitGroup
	var next int64
	var mu sync.Mutex
	start := time.Now()
	for wkr := 0; wkr < concurrency; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= int64(measured) {
					return
				}
				if _, err := get(base, queries[int(i)%len(queries)]); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	capacity := float64(measured) / elapsed.Seconds()
	hs.Close()

	tblA := &eval.Table{
		Title:   "E16a — closed-loop capacity estimate (2 workers, cache and coalescing off)",
		Headers: []string{"requests", "elapsed-ms", "mean-service-ms", "est-capacity-rps"},
	}
	tblA.AddRow(
		fmt.Sprint(measured),
		fmt.Sprintf("%.1f", float64(elapsed.Milliseconds())),
		fmt.Sprintf("%.2f", elapsed.Seconds()/float64(measured)*float64(concurrency)*1000),
		fmt.Sprintf("%.1f", capacity),
	)
	emit(tblA)

	// E16b: open-loop overload sweep. Scale the arrival count so a run is
	// a fixed multiple of capacity-seconds regardless of how fast this
	// machine is.
	arrivals := int(capacity * 3)
	if arrivals < 120 {
		arrivals = 120
	}
	if arrivals > 600 {
		arrivals = 600
	}

	tblB := &eval.Table{
		Title:   "E16b — open-loop overload: admitted-request latency vs Poisson arrival rate, with and without load shedding",
		Headers: []string{"load", "shedding", "arrivals", "admitted", "shed-503", "p50-ms", "p99-ms", "p999-ms"},
	}
	rng := rand.New(rand.NewSource(*seed + 1600))

	// One long-lived server per configuration: every scenario against the
	// same host reuses the warmed connection pool, and a discard burst up
	// front pays the cold costs (dials, heap growth, GC ramp) outside the
	// measured windows. Per-scenario shed counts come from counter deltas.
	svShed, hsShed, baseShed := startServer(8)
	svNo, hsNo, baseNo := startServer(-1)
	defer hsShed.Close()
	defer hsNo.Close()
	for _, base := range []string{baseShed, baseNo} {
		openLoop(rng, base, get, queries, 1.5*capacity, arrivals/2)
	}

	for _, factor := range []float64{1.0, 1.5, 2.0} {
		for _, shedding := range []bool{true, false} {
			sv, base, mode := svShed, baseShed, "on"
			if !shedding {
				sv, base, mode = svNo, baseNo, "off"
			}
			before := sv.Stats().Shed
			admitted, shed, other := openLoop(rng, base, get, queries, factor*capacity, arrivals)
			if got := int(sv.Stats().Shed - before); got != shed {
				panic(fmt.Sprintf("e16: shed count mismatch: stats %d vs observed %d", got, shed))
			}
			if other > 0 {
				panic(fmt.Sprintf("e16: %d requests failed with unexpected statuses", other))
			}
			sort.Slice(admitted, func(i, j int) bool { return admitted[i] < admitted[j] })
			tblB.AddRow(
				fmt.Sprintf("%.1fx", factor),
				mode,
				fmt.Sprint(arrivals),
				fmt.Sprint(len(admitted)),
				fmt.Sprint(shed),
				fmt.Sprintf("%.1f", ms(pctl(admitted, 50))),
				fmt.Sprintf("%.1f", ms(pctl(admitted, 99))),
				fmt.Sprintf("%.1f", ms(pctl(admitted, 99.9))),
			)
		}
	}
	emit(tblB)
}

// slowExistsSource charges a fixed wall-clock delay per existence probe,
// honoring cancellation — a stand-in for the shard round trips a remote
// coordinator pays during PruneEmpty validation.
type slowExistsSource struct {
	*wrapper.FullAccessSource
	delay time.Duration
}

func (s *slowExistsSource) ExecuteExistsCtx(ctx context.Context, stmt *sqlpkg.SelectStmt) (bool, error) {
	t := time.NewTimer(s.delay)
	select {
	case <-t.C:
	case <-ctx.Done():
		t.Stop()
		return false, ctx.Err()
	}
	return s.FullAccessSource.ExecuteExists(stmt)
}

// openLoop fires n requests with Poisson (exponential inter-arrival)
// spacing at rate req/s, never waiting for responses. Each request's
// latency runs from its scheduled arrival instant; a generator running
// late inflates the recorded latency rather than hiding it.
func openLoop(rng *rand.Rand, base string, get func(base, q string) (int, error),
	queries []string, rate float64, n int) (admitted []time.Duration, shed, other int) {
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	start := time.Now()
	offset := time.Duration(0)
	for i := 0; i < n; i++ {
		offset += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		scheduled := start.Add(offset)
		if d := time.Until(scheduled); d > 0 {
			time.Sleep(d)
		}
		q := queries[i%len(queries)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, err := get(base, q)
			lat := time.Since(scheduled)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil && code == http.StatusOK:
				admitted = append(admitted, lat)
			case err == nil && code == http.StatusServiceUnavailable:
				shed++
			default:
				other++
			}
		}()
	}
	wg.Wait()
	return admitted, shed, other
}

func pctl(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted)) * p / 100)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
