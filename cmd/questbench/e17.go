package main

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	quest "repro"
	"repro/internal/eval"
	"repro/internal/relational"
	"repro/internal/serve"
)

// e17Mixed: the mixed read/write scorecard. Every earlier experiment
// treats population and querying as separate phases; E17 interleaves
// them the way a served instance actually runs — an open-loop Poisson
// stream where a fraction of arrivals are row inserts and the rest are
// SQL reads whose plans are costed from column statistics and whose
// range predicates run off sorted indexes. Each insert bumps its table's
// version, so every post-write read re-plans (the plan cache key carries
// per-table versions) and re-consults statistics.
//
// The comparison is the maintenance strategy on that hot path:
//
//   - rebuild: incremental maintenance off — a post-write read pays a
//     from-scratch statistics build per consulted column and a full
//     sorted-index rebuild per range scan;
//   - incremental: deltas fold into the last statistics snapshot within
//     the staleness budget, and inserts land in a sorted side-run merged
//     on read.
//
// Both modes run the identical questd-shaped server — response cache on,
// invalidated by the same per-table versions — at the same arrival rate
// (1x the closed-loop read capacity), for a 90/10 and a 50/50 read/write
// mix. Half the read shapes never touch the written table, pinning the
// other tentpole claim: writes to movie leave person responses cache-hot
// instead of flushing a global epoch.
func e17Mixed() {
	const scale = 20 // ~6000 movies: big enough that a from-scratch rebuild costs real time
	db := quest.BuildIMDB(quest.DatasetConfig{Seed: *seed, Scale: scale})
	eng := quest.Open(db, quest.Defaults())

	// Read shapes: range predicates over movie (the written table — these
	// re-plan and re-consult statistics after every insert) and over
	// person (never written — these stay plan- and response-cached).
	var reads []string
	for y := 1960; y < 2000; y += 2 {
		reads = append(reads,
			fmt.Sprintf("SELECT COUNT(*) AS n FROM movie WHERE production_year >= %d AND rating >= %.1f", y, 3+float64(y%5)),
			fmt.Sprintf("SELECT COUNT(*) AS n FROM person WHERE birth_year >= %d AND birth_year < %d", y, y+25),
		)
	}

	startServer := func(cacheSize int) (*serve.Server, *http.Server, string) {
		sv := serve.New(eng, serve.Options{
			MaxConcurrent:     2,
			MaxQueue:          -1, // E17 studies maintenance cost, not shedding
			TenantRate:        -1,
			ResponseCacheSize: cacheSize,
			DefaultDeadline:   60 * time.Second,
			MaxDeadline:       120 * time.Second,
		})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		hs := &http.Server{Handler: sv}
		go hs.Serve(l)
		return sv, hs, "http://" + l.Addr().String()
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        2048,
		MaxIdleConnsPerHost: 1024,
	}}
	post := func(base, path, body string) int {
		req, err := http.NewRequest(http.MethodPost, base+path, strings.NewReader(body))
		if err != nil {
			panic(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(serve.DeadlineHeader, "60000")
		resp, err := client.Do(req)
		if err != nil {
			panic(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	readReq := func(base string, i int) {
		q := reads[i%len(reads)]
		if code := post(base, "/v1/sql", `{"sql": "`+q+`"}`); code != http.StatusOK {
			panic(fmt.Sprintf("e17 read: status %d", code))
		}
	}
	// Insert PKs start far above the generated id range and never repeat
	// across scenarios (nextID is shared), so every write lands.
	nextID := 1_000_000
	var idMu sync.Mutex
	writeReq := func(base string) {
		idMu.Lock()
		id := nextID
		nextID++
		idMu.Unlock()
		body := fmt.Sprintf(`{"table": "movie", "rows": [[%d, "Benchmark Movie %d", %d, "drama", %.1f]]}`,
			id, id, 1960+id%60, 1+float64(id%90)/10)
		if code := post(base, "/v1/insert", body); code != http.StatusOK {
			panic(fmt.Sprintf("e17 write: status %d", code))
		}
	}

	// Closed-loop read capacity with the response cache off: every
	// measured read pays planning and execution, so the estimate is the
	// engine's sustainable uncached read rate. The mixed scenarios run
	// with the cache on at this rate — cache hits then buy headroom that
	// the maintenance strategy either preserves (incremental) or burns on
	// rebuilds (baseline).
	relational.SetIncrementalMaintenance(true)
	_, hs, base := startServer(0)
	for i := 0; i < len(reads); i++ {
		readReq(base, i)
	}
	const measured = 300
	var wg sync.WaitGroup
	var next int64
	var mu sync.Mutex
	start := time.Now()
	for wkr := 0; wkr < 2; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= int64(measured) {
					return
				}
				readReq(base, int(i))
			}
		}()
	}
	wg.Wait()
	capacity := float64(measured) / time.Since(start).Seconds()
	hs.Close()

	tblA := &eval.Table{
		Title:   "E17a — closed-loop read capacity (2 workers, response cache off)",
		Headers: []string{"reads", "est-capacity-rps"},
	}
	tblA.AddRow(fmt.Sprint(measured), fmt.Sprintf("%.1f", capacity))
	emit(tblA)

	arrivals := int(capacity * 4)
	if arrivals < 200 {
		arrivals = 200
	}
	if arrivals > 1000 {
		arrivals = 1000
	}

	tblB := &eval.Table{
		Title: "E17b — mixed read/write at 1x read capacity: incremental maintenance vs rebuild-per-write",
		Headers: []string{"mix", "maintenance", "reads", "writes",
			"read-p50-ms", "read-p99-ms", "write-p99-ms",
			"full-rebuilds", "incr-updates", "side-merges", "index-rebuilds",
			"cache-hits", "cache-inval"},
	}
	rng := rand.New(rand.NewSource(*seed + 1700))

	for _, writeFrac := range []float64{0.10, 0.50} {
		for _, incremental := range []bool{false, true} {
			relational.SetIncrementalMaintenance(incremental)
			mode := "rebuild"
			if incremental {
				mode = "incremental"
			}
			sv, hs, base := startServer(1024)
			// Warm the connection pool and the caches outside the window.
			for i := 0; i < len(reads); i++ {
				readReq(base, i)
			}
			maintBefore := db.MaintenanceStats()
			statsBefore := sv.Stats()

			readLat, writeLat := openLoopMixed(rng, base, capacity, arrivals, writeFrac, readReq, writeReq)

			maint := db.MaintenanceStats()
			maint.StatsFullRebuilds -= maintBefore.StatsFullRebuilds
			maint.StatsIncrementalUpdates -= maintBefore.StatsIncrementalUpdates
			maint.SortedIndexMerges -= maintBefore.SortedIndexMerges
			maint.SortedIndexRebuilds -= maintBefore.SortedIndexRebuilds
			st := sv.Stats()
			hs.Close()

			sort.Slice(readLat, func(i, j int) bool { return readLat[i] < readLat[j] })
			sort.Slice(writeLat, func(i, j int) bool { return writeLat[i] < writeLat[j] })
			tblB.AddRow(
				fmt.Sprintf("%.0f/%.0f", (1-writeFrac)*100, writeFrac*100),
				mode,
				fmt.Sprint(len(readLat)),
				fmt.Sprint(len(writeLat)),
				fmt.Sprintf("%.1f", ms(pctl(readLat, 50))),
				fmt.Sprintf("%.1f", ms(pctl(readLat, 99))),
				fmt.Sprintf("%.1f", ms(pctl(writeLat, 99))),
				fmt.Sprint(maint.StatsFullRebuilds),
				fmt.Sprint(maint.StatsIncrementalUpdates),
				fmt.Sprint(maint.SortedIndexMerges),
				fmt.Sprint(maint.SortedIndexRebuilds),
				fmt.Sprint(st.ResponseCacheHits-statsBefore.ResponseCacheHits),
				fmt.Sprint(st.ResponseCacheInvalidations-statsBefore.ResponseCacheInvalidations),
			)
		}
	}
	relational.SetIncrementalMaintenance(true)
	emit(tblB)
}

// openLoopMixed fires n Poisson arrivals at rate req/s; each arrival is a
// write with probability writeFrac, a read otherwise. Like openLoop,
// latency runs from the scheduled arrival instant, so generator lag
// inflates rather than hides queueing.
func openLoopMixed(rng *rand.Rand, base string, rate float64, n int, writeFrac float64,
	read func(base string, i int), write func(base string)) (readLat, writeLat []time.Duration) {
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	start := time.Now()
	offset := time.Duration(0)
	for i := 0; i < n; i++ {
		offset += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		scheduled := start.Add(offset)
		if d := time.Until(scheduled); d > 0 {
			time.Sleep(d)
		}
		isWrite := rng.Float64() < writeFrac
		idx := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if isWrite {
				write(base)
			} else {
				read(base, idx)
			}
			lat := time.Since(scheduled)
			mu.Lock()
			defer mu.Unlock()
			if isWrite {
				writeLat = append(writeLat, lat)
			} else {
				readLat = append(readLat, lat)
			}
		}()
	}
	wg.Wait()
	return readLat, writeLat
}
