// Command questbench runs the full experiment suite (E1–E8 of DESIGN.md §3
// plus the E9 executor/planner scorecard, the E10 statistics/join-order
// scorecard, the E11 sharded-execution scorecard, the E12 remote
// transport / hedged-read scorecard, the E13 streaming/columnar
// scorecard, the E14 replication/failover scorecard, the E15 shard
// durability scorecard and the E16 serving-tier overload scorecard) and
// prints the tables recorded in EXPERIMENTS.md.
// Each experiment is a deterministic function of the seed, so re-running
// reproduces the report.
//
// With -json the same tables are also written as a machine-readable
// BENCH_*.json snapshot (one object per table: title, headers, rows, plus
// run metadata), so successive PRs can diff the perf/quality trajectory
// mechanically instead of parsing report text.
//
// Usage:
//
//	questbench [-exp all|e1..e17] [-seed N] [-n N] [-json BENCH_42.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	quest "repro"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/fulltext"
	"repro/internal/relational"
	shardpkg "repro/internal/shard"
	sqlpkg "repro/internal/sql"
	"repro/internal/transport"
	"repro/internal/wrapper"
)

var (
	seed     = flag.Int64("seed", 42, "dataset and workload seed")
	nPer     = flag.Int("n", 4, "queries per workload template")
	jsonPath = flag.String("json", "", "write a machine-readable BENCH_*.json snapshot to this path")
)

// snapshotTable is the JSON form of one experiment table.
type snapshotTable struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// snapshot is the whole BENCH_*.json payload. It deliberately carries no
// timestamp: apart from the latency columns (real measurements that vary
// run to run), every field is a deterministic function of seed and code,
// so a diff between two snapshots shows only behavior changes and timing
// movement — never clock noise from the file itself.
type snapshot struct {
	Tool       string          `json:"tool"`
	Seed       int64           `json:"seed"`
	QueriesPer int             `json:"queries_per_template"`
	Tables     []snapshotTable `json:"tables"`
}

var collected []snapshotTable

// emit prints a table and records it for the JSON snapshot.
func emit(tbl *eval.Table) {
	fmt.Println(tbl)
	collected = append(collected, snapshotTable{Title: tbl.Title, Headers: tbl.Headers, Rows: tbl.Rows})
}

func writeSnapshot(path string) {
	s := snapshot{
		Tool:       "questbench",
		Seed:       *seed,
		QueriesPer: *nPer,
		Tables:     collected,
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "marshal snapshot: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "write snapshot: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d tables)\n", path, len(s.Tables))
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, e1..e17)")
	flag.Parse()

	runners := map[string]func(){
		"e1":  e1Scalability,
		"e2":  e2Disagreement,
		"e3":  e3Baselines,
		"e4":  e4Uncertainty,
		"e5":  e5FeedbackVolume,
		"e6":  e6DeepWeb,
		"e7":  e7Visualization,
		"e8":  e8Ablations,
		"e9":  e9Planner,
		"e10": e10Statistics,
		"e11": e11Sharded,
		"e12": e12Remote,
		"e13": e13Streaming,
		"e14": e14Failover,
		"e15": e15Durability,
		"e16": e16Serving,
		"e17": e17Mixed,
	}
	if *exp == "all" {
		for _, name := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15", "e16", "e17"} {
			runners[name]()
		}
	} else {
		r, ok := runners[strings.ToLower(*exp)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		r()
	}
	if *jsonPath != "" {
		writeSnapshot(*jsonPath)
	}
}

func buildAll() map[string]*quest.Database {
	cfg := quest.DatasetConfig{Seed: *seed, Scale: 1}
	return map[string]*quest.Database{
		"imdb":    quest.BuildIMDB(cfg),
		"mondial": quest.BuildMondial(cfg),
		"dblp":    quest.BuildDBLP(cfg),
	}
}

func workloadFor(db *quest.Database, name string) *eval.Workload {
	return eval.NewGenerator(db, *seed+100).Generate(name, eval.TemplatesFor(name), *nPer)
}

// e1Scalability: end-to-end latency and graph sizes vs instance scale.
func e1Scalability() {
	tbl := &eval.Table{
		Title:   "E1 — scalability: latency and graph sizes vs IMDB instance size (demo msg 1)",
		Headers: []string{"scale", "tuples", "schema-nodes", "schema-edges", "data-nodes", "data-edges", "avg-search-ms", "S@3"},
	}
	for _, scale := range []int{1, 2, 4, 8, 16} {
		db := quest.BuildIMDB(quest.DatasetConfig{Seed: *seed, Scale: scale})
		eng := quest.Open(db, quest.Defaults())
		dg, err := baseline.NewDataGraph(db)
		if err != nil {
			panic(err)
		}
		w := eval.NewGenerator(db, *seed+100).Generate("imdb", eval.IMDBTemplates()[:3], *nPer)
		start := time.Now()
		js := eval.RunEngine(eng, w)
		elapsed := time.Since(start)
		m := eval.Aggregate(js)
		g := eng.Backward().Graph()
		tbl.AddRow(
			fmt.Sprint(scale),
			fmt.Sprint(db.TotalRows()),
			fmt.Sprint(g.Len()),
			fmt.Sprint(g.EdgeCount()),
			fmt.Sprint(dg.NodeCount()),
			fmt.Sprint(dg.EdgeCount()),
			fmt.Sprintf("%.1f", float64(elapsed.Milliseconds())/float64(len(w.Queries))),
			eval.F(m.SuccessAt3),
		)
	}
	emit(tbl)
}

// e2Disagreement: rank overlap between operating modes and approaches.
func e2Disagreement() {
	tbl := &eval.Table{
		Title:   "E2 — module disagreement on identical queries (demo msg 2)",
		Headers: []string{"dataset", "pair", "top1-agreement", "jaccard@10"},
	}
	for _, name := range []string{"imdb", "mondial", "dblp"} {
		db := buildAll()[name]
		eng := quest.Open(db, quest.Defaults())
		w := workloadFor(db, name)
		train, test := eval.Split(w)
		eng.AddFeedback(eval.FeedbackFor(train, len(train.Queries)))

		agreeAF, jacAF, n := 0.0, 0.0, 0
		agreeAC, jacAC := 0.0, 0.0
		for _, q := range test.Queries {
			ap := eng.Forward().TopKApriori(q.Keywords, 10)
			fb := eng.Forward().TopKFeedback(q.Keywords, 10)
			comb, err := eng.Configurations(q.Keywords)
			if err != nil || len(ap) == 0 || len(fb) == 0 || len(comb) == 0 {
				continue
			}
			n++
			if ap[0].ID() == fb[0].ID() {
				agreeAF++
			}
			if ap[0].ID() == comb[0].ID() {
				agreeAC++
			}
			jacAF += jaccard(ids(ap), ids(fb))
			jacAC += jaccard(ids(ap), ids(comb))
		}
		if n == 0 {
			continue
		}
		tbl.AddRow(name, "apriori-vs-feedback",
			eval.F(agreeAF/float64(n)), eval.F(jacAF/float64(n)))
		tbl.AddRow(name, "apriori-vs-combined",
			eval.F(agreeAC/float64(n)), eval.F(jacAC/float64(n)))
	}
	emit(tbl)
}

func ids(cs []*core.Configuration) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.ID()
	}
	return out
}

func jaccard(a, b []string) float64 {
	set := map[string]bool{}
	for _, x := range a {
		set[x] = true
	}
	inter, union := 0, len(set)
	for _, x := range b {
		if set[x] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// e3Baselines: QUEST vs BANKS-style vs DISCOVER-style on all datasets.
func e3Baselines() {
	tbl := &eval.Table{
		Title:   "E3 — QUEST (schema Steiner) vs instance-level baselines (demo msg 3)",
		Headers: []string{"dataset", "system", "S@1", "S@3", "MRR", "avg-ms", "graph-nodes"},
	}
	for _, name := range []string{"imdb", "mondial", "dblp"} {
		db := buildAll()[name]
		w := workloadFor(db, name)

		// QUEST.
		eng := quest.Open(db, quest.Defaults())
		start := time.Now()
		js := eval.RunEngine(eng, w)
		qms := float64(time.Since(start).Milliseconds()) / float64(len(w.Queries))
		m := eval.Aggregate(js)
		tbl.AddRow(name, "QUEST", eval.F(m.SuccessAt1), eval.F(m.SuccessAt3), eval.F(m.MRR),
			fmt.Sprintf("%.1f", qms), fmt.Sprint(eng.Backward().Graph().Len()))

		// BANKS-style.
		dg, err := baseline.NewDataGraph(db)
		if err != nil {
			panic(err)
		}
		ix := fulltext.BuildIndex(db)
		start = time.Now()
		var bjs []eval.Judgement
		for _, q := range w.Queries {
			answers, err := dg.Search(ix, q.Keywords, 10)
			if err != nil {
				bjs = append(bjs, eval.Judgement{Query: q})
				continue
			}
			sets := make([][]string, len(answers))
			for i, a := range answers {
				sets[i] = a.Tables()
			}
			bjs = append(bjs, eval.JudgeTables(q, sets))
		}
		bms := float64(time.Since(start).Milliseconds()) / float64(len(w.Queries))
		m = eval.Aggregate(bjs)
		tbl.AddRow(name, "BANKS-style", eval.F(m.SuccessAt1), eval.F(m.SuccessAt3), eval.F(m.MRR),
			fmt.Sprintf("%.1f", bms), fmt.Sprint(dg.NodeCount()))

		// DISCOVER-style.
		d := baseline.NewDiscover(db, ix)
		start = time.Now()
		var djs []eval.Judgement
		for _, q := range w.Queries {
			cns, err := d.TopK(q.Keywords, 10, 5)
			if err != nil {
				djs = append(djs, eval.Judgement{Query: q})
				continue
			}
			sets := make([][]string, len(cns))
			for i, cn := range cns {
				sets[i] = cn.Tables
			}
			djs = append(djs, eval.JudgeTables(q, sets))
		}
		dms := float64(time.Since(start).Milliseconds()) / float64(len(w.Queries))
		m = eval.Aggregate(djs)
		tbl.AddRow(name, "DISCOVER-style", eval.F(m.SuccessAt1), eval.F(m.SuccessAt3), eval.F(m.MRR),
			fmt.Sprintf("%.1f", dms), "-")
	}
	emit(tbl)
}

// e4Uncertainty: grid sweep over (OCap, OCf) and (OC, OI).
func e4Uncertainty() {
	db := quest.BuildIMDB(quest.DatasetConfig{Seed: *seed, Scale: 1})
	w := workloadFor(db, "imdb")
	train, test := eval.Split(w)

	tbl := &eval.Table{
		Title:   "E4a — forward-mode uncertainty sweep (OCap vs OCf), cold and warm (demo msg 4)",
		Headers: []string{"OCap", "OCf", "feedback-queries", "cfg@1", "cfgMRR", "MRR"},
	}
	for _, nfb := range []int{0, len(train.Queries)} {
		for _, p := range [][2]float64{{0.1, 0.9}, {0.3, 0.7}, {0.5, 0.5}, {0.7, 0.3}, {0.9, 0.1}} {
			opts := quest.Defaults()
			opts.Uncertainty.OCap = p[0]
			opts.Uncertainty.OCf = p[1]
			eng := quest.Open(db, opts)
			if nfb > 0 {
				eng.AddFeedback(eval.FeedbackFor(train, nfb))
			}
			m := eval.Aggregate(eval.RunEngine(eng, test))
			tbl.AddRow(eval.F(p[0]), eval.F(p[1]), fmt.Sprint(nfb),
				eval.F(m.ConfigAt1), eval.F(m.ConfigMRR), eval.F(m.MRR))
		}
	}
	emit(tbl)

	tbl2 := &eval.Table{
		Title:   "E4b — forward/backward uncertainty sweep (OC vs OI)",
		Headers: []string{"OC", "OI", "S@1", "S@3", "MRR"},
	}
	for _, p := range [][2]float64{{0.05, 0.9}, {0.3, 0.6}, {0.3, 0.3}, {0.6, 0.3}, {0.9, 0.05}} {
		opts := quest.Defaults()
		opts.Uncertainty.OC = p[0]
		opts.Uncertainty.OI = p[1]
		eng := quest.Open(db, opts)
		m := eval.Aggregate(eval.RunEngine(eng, test))
		tbl2.AddRow(eval.F(p[0]), eval.F(p[1]), eval.F(m.SuccessAt1), eval.F(m.SuccessAt3), eval.F(m.MRR))
	}
	emit(tbl2)
}

// e5FeedbackVolume: accuracy vs number of validated searches.
func e5FeedbackVolume() {
	db := quest.BuildIMDB(quest.DatasetConfig{Seed: *seed, Scale: 1})
	w := eval.NewGenerator(db, *seed+100).Generate("imdb", eval.IMDBTemplates(), *nPer+4)
	train, test := eval.Split(w)

	tbl := &eval.Table{
		Title:   "E5 — accuracy vs training volume: a-priori / feedback / DS-combined (§1 claim)",
		Headers: []string{"mode", "feedback-queries", "cfg@1", "cfgMRR", "MRR"},
	}
	volumes := []int{0, 2, 4, 8, len(train.Queries)}
	for _, mode := range []string{"apriori", "feedback", "combined", "combined-adaptive"} {
		for _, nfb := range volumes {
			if mode == "apriori" && nfb != 0 {
				continue
			}
			opts := quest.Defaults()
			switch mode {
			case "apriori":
				opts.DisableFeedback = true
			case "feedback":
				opts.DisableApriori = true
			}
			eng := quest.Open(db, opts)
			if mode == "combined-adaptive" {
				eng.AutoAdapt(true)
			}
			if nfb > 0 {
				eng.AddFeedback(eval.FeedbackFor(train, nfb))
			}
			m := eval.Aggregate(eval.RunEngine(eng, test))
			tbl.AddRow(mode, fmt.Sprint(nfb), eval.F(m.ConfigAt1), eval.F(m.ConfigMRR), eval.F(m.MRR))
		}
	}
	emit(tbl)
}

// e6DeepWeb: metadata-only wrapper vs full access on identical workloads.
func e6DeepWeb() {
	tbl := &eval.Table{
		Title:   "E6 — hidden source (metadata wrapper) vs full access",
		Headers: []string{"dataset", "access", "S@1", "S@3", "MRR"},
	}
	for _, name := range []string{"imdb", "mondial", "dblp"} {
		db := buildAll()[name]
		w := workloadFor(db, name)

		eng := quest.Open(db, quest.Defaults())
		m := eval.Aggregate(eval.RunEngine(eng, w))
		tbl.AddRow(name, "full", eval.F(m.SuccessAt1), eval.F(m.SuccessAt3), eval.F(m.MRR))

		opts := quest.Defaults()
		opts.UseLike = true
		hidden := quest.OpenHidden(db, quest.DefaultThesaurus(), opts)
		m = eval.Aggregate(eval.RunEngine(hidden, w))
		tbl.AddRow(name, "metadata-only", eval.F(m.SuccessAt1), eval.F(m.SuccessAt3), eval.F(m.MRR))
	}
	emit(tbl)
}

// e7Visualization: demonstrate the result-graph rendering (demo msg 5).
func e7Visualization() {
	fmt.Println("== E7 — coupled tuple list + database-portion graph (demo msg 5) ==")
	db := quest.BuildIMDB(quest.DatasetConfig{Seed: *seed, Scale: 1})
	eng := quest.Open(db, quest.Defaults())
	results, err := eng.Search("spielberg drama")
	if err != nil || len(results) == 0 {
		fmt.Println("no results to visualize")
		return
	}
	var joined *quest.Explanation
	for _, ex := range results {
		if len(ex.Interpretation.Tables()) >= 3 {
			joined = ex
			break
		}
	}
	if joined == nil {
		joined = results[0]
	}
	fmt.Printf("query: \"spielberg drama\"  belief=%.4f\nsql: %s\n\n", joined.Belief, joined.SQL)
	res, err := eng.Execute(joined)
	if err == nil {
		max := 5
		if len(res.Rows) < max {
			max = len(res.Rows)
		}
		fmt.Println(&quest.Result{Columns: res.Columns, Rows: res.Rows[:max]})
	}
	fmt.Println(quest.RenderExplanation(joined))
}

// e8Ablations: Steiner pruning on/off and MI weights on/off.
func e8Ablations() {
	tbl := &eval.Table{
		Title:   "E8a — Steiner sub-tree pruning ablation (mondial, 3-keyword query)",
		Headers: []string{"dedup", "explanations", "distinct-table-sets", "avg-ms"},
	}
	db := quest.BuildMondial(quest.DatasetConfig{Seed: *seed, Scale: 1})
	for _, dedup := range []bool{true, false} {
		opts := quest.Defaults()
		opts.Backward.Dedup = dedup
		eng := quest.Open(db, opts)
		start := time.Now()
		const reps = 5
		var ex []*quest.Explanation
		var err error
		for i := 0; i < reps; i++ {
			ex, err = eng.Search("italy city river")
			if err != nil {
				panic(err)
			}
		}
		ms := float64(time.Since(start).Milliseconds()) / reps
		sets := map[string]bool{}
		for _, e := range ex {
			sets[strings.Join(e.Interpretation.Tables(), "+")] = true
		}
		tbl.AddRow(fmt.Sprint(dedup), fmt.Sprint(len(ex)), fmt.Sprint(len(sets)), fmt.Sprintf("%.1f", ms))
	}
	emit(tbl)

	tbl2 := &eval.Table{
		Title:   "E8b — MI edge-weight ablation (imdb; award is the sparse decoy join path)",
		Headers: []string{"mi-weights", "S@3", "MRR", "empty-top1-rate"},
	}
	imdb := quest.BuildIMDB(quest.DatasetConfig{Seed: *seed, Scale: 1})
	w := eval.NewGenerator(imdb, *seed+100).Generate("imdb", eval.IMDBTemplates(), *nPer)
	for _, mi := range []bool{true, false} {
		opts := quest.Defaults()
		opts.Backward.UseMIWeights = mi
		eng := quest.Open(imdb, opts)
		m := eval.Aggregate(eval.RunEngine(eng, w))
		empty, n := 0, 0
		for _, q := range w.Queries {
			ex, err := eng.Search(strings.Join(q.Keywords, " "))
			if err != nil || len(ex) == 0 {
				continue
			}
			n++
			res, err := eng.Execute(ex[0])
			if err != nil || len(res.Rows) == 0 {
				empty++
			}
		}
		rate := 0.0
		if n > 0 {
			rate = float64(empty) / float64(n)
		}
		tbl2.AddRow(fmt.Sprint(mi), eval.F(m.SuccessAt3), eval.F(m.MRR), eval.F(rate))
	}
	emit(tbl2)

	// A-priori heuristic weight ablation: flatten the transition rules.
	// The probe queries anchor on the attribute keyword "title" followed by
	// a token that occurs BOTH inside movie titles and inside person names
	// (the generators plant surnames in titles for exactly this reason).
	// The intended reading is "title <token>" = a movie whose title
	// contains the token; the attribute→own-domain transition rule is what
	// encodes that reading, so uniform transitions should lose it whenever
	// the token's emission is stronger on person.name.
	ix := fulltext.BuildIndex(imdb)
	titleIdx := ix.Attribute("movie", "title")
	nameIdx := ix.Attribute("person", "name")
	wProbe := &eval.Workload{Name: "imdb-ambiguous-probe"}
	for _, tok := range titleIdx.Terms() {
		if len(wProbe.Queries) >= 12 {
			break
		}
		if len(tok) < 3 || len(titleIdx.Rows(tok)) == 0 || len(nameIdx.Rows(tok)) == 0 {
			continue
		}
		kws := []string{"title", tok}
		wProbe.Queries = append(wProbe.Queries, &eval.Query{
			Keywords: kws,
			GoldConfig: &core.Configuration{
				Keywords: kws,
				Terms: []core.Term{
					{Kind: core.KindAttribute, Table: "movie", Column: "title"},
					{Kind: core.KindDomain, Table: "movie", Column: "title"},
				},
			},
			GoldTables: []string{"movie"},
			Label:      "title-anchored-ambiguous",
		})
	}
	tbl3 := &eval.Table{
		Title:   "E8c — a-priori heuristic-rule ablation (imdb, title-anchored ambiguous tokens)",
		Headers: []string{"transitions", "cfg@1", "cfgMRR"},
	}
	for _, flat := range []bool{false, true} {
		opts := quest.Defaults()
		opts.DisableFeedback = true
		eng := quest.Open(imdb, opts)
		if flat {
			eng.Forward().SetAprioriWeights(core.AprioriWeights{
				AttrToOwnDomain: 1, SameTable: 1, FKAdjacent: 1, Generalization: 1, Base: 1,
			})
		}
		// Judge the forward module directly: rank of the gold configuration
		// among the decoded configurations (isolated from the backward
		// module and the DS combination).
		at1, mrr, n := 0.0, 0.0, 0
		for _, q := range wProbe.Queries {
			configs, err := eng.Configurations(q.Keywords)
			if err != nil || len(configs) == 0 {
				continue
			}
			n++
			for rank, c := range configs {
				if c.ID() == q.GoldConfig.ID() {
					if rank == 0 {
						at1++
					}
					mrr += 1 / float64(rank+1)
					break
				}
			}
		}
		if n > 0 {
			at1 /= float64(n)
			mrr /= float64(n)
		}
		label := "heuristic-rules"
		if flat {
			label = "uniform"
		}
		tbl3.AddRow(label, eval.F(at1), eval.F(mrr))
	}
	emit(tbl3)
}

// e9Planner: the PR 2 executor scorecard. One table times indexed
// selection and pushed-down joins against the retained full-scan
// interpreter; a second shows that existence-only validation (the
// PruneEmpty path) stays near-flat while materializing execution scales
// with the instance.
func e9Planner() {
	timeQuery := func(run func() error, reps int) float64 {
		start := time.Now()
		for i := 0; i < reps; i++ {
			if err := run(); err != nil {
				panic(err)
			}
		}
		return float64(time.Since(start).Microseconds()) / float64(reps)
	}

	tbl := &eval.Table{
		Title:   "E9a — planner vs full-scan interpreter (imdb)",
		Headers: []string{"query", "scale", "planned-us", "full-scan-us", "speedup", "access"},
	}
	cases := []struct {
		name, src string
		scale     int
		reps      int
	}{
		{"pk-point", "SELECT title FROM movie WHERE movie_id = 100", 16, 50},
		{"fk-equality", "SELECT cast_id FROM cast_info WHERE movie_id = 100", 16, 50},
		{"pushdown-join", `SELECT DISTINCT person.name, movie.title FROM person
			JOIN cast_info ON cast_info.person_id = person.person_id
			JOIN movie ON movie.movie_id = cast_info.movie_id
			WHERE movie.genre MATCH 'drama'`, 4, 10},
	}
	for _, c := range cases {
		db := quest.BuildIMDB(quest.DatasetConfig{Seed: *seed, Scale: c.scale})
		stmt, err := quest.ParseSQL(c.src)
		if err != nil {
			panic(err)
		}
		// Warm the plan cache and lazy indexes so the steady state is measured.
		if _, err := sqlpkg.Execute(db, stmt); err != nil {
			panic(err)
		}
		planned := timeQuery(func() error { _, err := sqlpkg.Execute(db, stmt); return err }, c.reps)
		full := timeQuery(func() error { _, err := sqlpkg.ExecuteFullScan(db, stmt); return err }, c.reps)
		qp, err := sqlpkg.Plan(db, stmt)
		if err != nil {
			panic(err)
		}
		tbl.AddRow(c.name, fmt.Sprint(c.scale),
			fmt.Sprintf("%.1f", planned), fmt.Sprintf("%.1f", full),
			fmt.Sprintf("%.1fx", full/planned), qp.Scans[len(qp.Scans)-1].Access)
	}
	emit(tbl)

	tbl2 := &eval.Table{
		Title:   "E9b — existence-only validation (PruneEmpty path) vs materializing execution",
		Headers: []string{"scale", "result-rows", "exists-us", "materialize-us", "speedup"},
	}
	const joinAll = `SELECT person.name, movie.title FROM person
		JOIN cast_info ON cast_info.person_id = person.person_id
		JOIN movie ON movie.movie_id = cast_info.movie_id`
	for _, scale := range []int{1, 4, 16} {
		db := quest.BuildIMDB(quest.DatasetConfig{Seed: *seed, Scale: scale})
		stmt, err := quest.ParseSQL(joinAll)
		if err != nil {
			panic(err)
		}
		res, err := sqlpkg.Execute(db, stmt)
		if err != nil {
			panic(err)
		}
		reps := 10
		ex := timeQuery(func() error { _, err := sqlpkg.Exists(db, stmt); return err }, reps)
		mat := timeQuery(func() error { _, err := sqlpkg.Execute(db, stmt); return err }, reps)
		tbl2.AddRow(fmt.Sprint(scale), fmt.Sprint(len(res.Rows)),
			fmt.Sprintf("%.1f", ex), fmt.Sprintf("%.1f", mat), fmt.Sprintf("%.1fx", mat/ex))
	}
	emit(tbl2)
}

// e10Statistics: the PR 3 statistics/join-order scorecard. A skewed
// ≥3-table join (fact table written first, selective predicate on the last
// dimension) is timed under the statistics-driven join-order search vs the
// PR 2 written-order plan, and range/IN/MATCH predicates are timed through
// their index access paths vs the full-scan interpreter. Every pairing is
// also checked for identical row counts, so the table doubles as an
// equivalence smoke test.
func e10Statistics() {
	db := quest.BuildIMDB(quest.DatasetConfig{Seed: *seed, Scale: 16})

	timeQuery := func(run func() error, reps int) float64 {
		start := time.Now()
		for i := 0; i < reps; i++ {
			if err := run(); err != nil {
				panic(err)
			}
		}
		return float64(time.Since(start).Microseconds()) / float64(reps)
	}

	tbl := &eval.Table{
		Title:   "E10 — statistics-driven planning vs written-order / full-scan baselines (imdb scale 16)",
		Headers: []string{"case", "rows", "stats-us", "baseline-us", "speedup", "plan"},
	}

	// Skewed 3-way join, fact table first: the join-order search must start
	// from the selective dimension instead.
	const skewed = `SELECT person.name, movie.title FROM cast_info
		JOIN movie ON movie.movie_id = cast_info.movie_id
		JOIN person ON person.person_id = cast_info.person_id
		WHERE person.person_id = 33`
	stmt, err := quest.ParseSQL(skewed)
	if err != nil {
		panic(err)
	}
	res, err := sqlpkg.Execute(db, stmt)
	if err != nil {
		panic(err)
	}
	reordered := timeQuery(func() error { _, err := sqlpkg.Execute(db, stmt); return err }, 30)
	sqlpkg.SetJoinReorder(false)
	wres, err := sqlpkg.Execute(db, stmt) // warm the written-order plan
	if err != nil {
		panic(err)
	}
	if len(wres.Rows) != len(res.Rows) {
		panic(fmt.Sprintf("E10 row divergence: reordered %d vs written %d", len(res.Rows), len(wres.Rows)))
	}
	written := timeQuery(func() error { _, err := sqlpkg.Execute(db, stmt); return err }, 30)
	sqlpkg.SetJoinReorder(true)
	qp, err := sqlpkg.Plan(db, stmt)
	if err != nil {
		panic(err)
	}
	tbl.AddRow("join-reorder (3-table, skewed)", fmt.Sprint(len(res.Rows)),
		fmt.Sprintf("%.1f", reordered), fmt.Sprintf("%.1f", written),
		fmt.Sprintf("%.1fx", written/reordered), strings.Join(qp.JoinOrder, "→"))

	// Index access paths vs the retained full-scan interpreter.
	for _, c := range []struct {
		name, src string
		reps      int
	}{
		{"range-scan (BETWEEN)", "SELECT title FROM movie WHERE production_year BETWEEN 1972 AND 1972", 50},
		{"in-list (unioned postings)", "SELECT title FROM movie WHERE movie_id IN (100, 2000, 4000, 4400)", 50},
		{"match-postings", "SELECT title FROM movie WHERE title MATCH 'winter'", 50},
	} {
		stmt, err := quest.ParseSQL(c.src)
		if err != nil {
			panic(err)
		}
		res, err := sqlpkg.Execute(db, stmt) // warm plan, stats, indexes
		if err != nil {
			panic(err)
		}
		ref, err := sqlpkg.ExecuteFullScan(db, stmt)
		if err != nil {
			panic(err)
		}
		if len(ref.Rows) != len(res.Rows) {
			panic(fmt.Sprintf("E10 row divergence for %s: planned %d vs reference %d", c.name, len(res.Rows), len(ref.Rows)))
		}
		planned := timeQuery(func() error { _, err := sqlpkg.Execute(db, stmt); return err }, c.reps)
		full := timeQuery(func() error { _, err := sqlpkg.ExecuteFullScan(db, stmt); return err }, c.reps)
		qp, err := sqlpkg.Plan(db, stmt)
		if err != nil {
			panic(err)
		}
		tbl.AddRow(c.name, fmt.Sprint(len(res.Rows)),
			fmt.Sprintf("%.1f", planned), fmt.Sprintf("%.1f", full),
			fmt.Sprintf("%.1fx", full/planned), qp.Scans[0].Access)
	}
	emit(tbl)
}

// e11Sharded: the PR 4 sharded-execution scorecard. E11a runs a join
// workload — the PruneEmpty validation shape — through ShardedSource at
// increasing shard counts, in pushdown mode (predicates execute on the
// shards, only qualifying rows ship) and in the ship-rows-to-coordinator
// ablation (SetPushdown(false)): the rows-shipped column is the bandwidth
// story, the latency columns the wall-clock one, and the exists column
// shows validation scaling with shard parallelism. E11b shows PK partition
// pruning: a point lookup touches exactly one shard no matter how many
// exist.
func e11Sharded() {
	db := quest.BuildIMDB(quest.DatasetConfig{Seed: *seed, Scale: 8})

	timeQuery := func(run func() error, reps int) float64 {
		start := time.Now()
		for i := 0; i < reps; i++ {
			if err := run(); err != nil {
				panic(err)
			}
		}
		return float64(time.Since(start).Microseconds()) / float64(reps)
	}

	const joinQ = `SELECT person.name, movie.title FROM person
		JOIN cast_info ON cast_info.person_id = person.person_id
		JOIN movie ON movie.movie_id = cast_info.movie_id
		WHERE movie.genre MATCH 'drama' AND cast_info.role = 'director'`
	stmt, err := quest.ParseSQL(joinQ)
	if err != nil {
		panic(err)
	}
	tbl := &eval.Table{
		Title:   "E11a — sharded join workload: pushdown vs ship-rows-to-coordinator (imdb scale 8)",
		Headers: []string{"shards", "mode", "rows", "exec-us", "exists-us", "rows-shipped", "ship-ratio"},
	}
	var refRows int
	for _, n := range []int{1, 2, 4, 8} {
		parts, err := shardpkg.Partition(db, n)
		if err != nil {
			panic(err)
		}
		src, err := shardpkg.New(db.Name, parts, shardpkg.Options{})
		if err != nil {
			panic(err)
		}
		type mode struct {
			name     string
			pushdown bool
		}
		shipped := map[string]uint64{}
		for _, m := range []mode{{"pushdown", true}, {"ship-rows", false}} {
			src.SetPushdown(m.pushdown)
			res, err := src.Execute(stmt) // warm shard plans and indexes
			if err != nil {
				panic(err)
			}
			if refRows == 0 {
				refRows = len(res.Rows)
			}
			if len(res.Rows) != refRows {
				panic(fmt.Sprintf("E11 row divergence at %d shards (%s): %d vs %d",
					n, m.name, len(res.Rows), refRows))
			}
			reps := 5
			exec := timeQuery(func() error { _, err := src.Execute(stmt); return err }, reps)
			exists := timeQuery(func() error { _, err := src.ExecuteExists(stmt); return err }, reps)
			src.ResetStats()
			if _, err := src.Execute(stmt); err != nil {
				panic(err)
			}
			st := src.Stats()
			shipped[m.name] = st.RowsShipped
			ratio := "-"
			if m.name == "ship-rows" && shipped["pushdown"] > 0 {
				ratio = fmt.Sprintf("%.1fx", float64(shipped["ship-rows"])/float64(shipped["pushdown"]))
			}
			tbl.AddRow(fmt.Sprint(n), m.name, fmt.Sprint(refRows),
				fmt.Sprintf("%.1f", exec), fmt.Sprintf("%.1f", exists),
				fmt.Sprint(st.RowsShipped), ratio)
		}
	}
	emit(tbl)

	tbl2 := &eval.Table{
		Title:   "E11b — PK partition pruning: point lookups touch one shard",
		Headers: []string{"shards", "fragment-queries", "pruned-probes", "point-us"},
	}
	point, err := quest.ParseSQL("SELECT title FROM movie WHERE movie_id = 100")
	if err != nil {
		panic(err)
	}
	for _, n := range []int{1, 4, 8} {
		parts, err := shardpkg.Partition(db, n)
		if err != nil {
			panic(err)
		}
		src, err := shardpkg.New(db.Name, parts, shardpkg.Options{})
		if err != nil {
			panic(err)
		}
		if _, err := src.Execute(point); err != nil { // warm
			panic(err)
		}
		us := timeQuery(func() error { _, err := src.Execute(point); return err }, 50)
		src.ResetStats()
		if _, err := src.Execute(point); err != nil {
			panic(err)
		}
		st := src.Stats()
		tbl2.AddRow(fmt.Sprint(n), fmt.Sprint(st.FragmentQueries),
			fmt.Sprint(st.PrunedProbes), fmt.Sprintf("%.1f", us))
	}
	emit(tbl2)
}

// flakyBackend injects server-side latency on every Nth Execute — the
// slow-shard model behind E12b's tail-latency measurement.
type flakyBackend struct {
	wrapper.SourceExecutor
	n     atomic.Uint64
	every uint64
	delay time.Duration
}

func (b *flakyBackend) Execute(stmt *sqlpkg.SelectStmt) (*sqlpkg.Result, error) {
	if b.n.Add(1)%b.every == 0 {
		time.Sleep(b.delay)
	}
	return b.SourceExecutor.Execute(stmt)
}

// e12Remote: the PR 5 network-transport scorecard. E12a reruns the E11
// join workload plus a grouped aggregate with every shard behind the wire
// protocol (loopback transport: frames, row codec, pooled connections) —
// the delta against the in-process rows is the transport tax, and the
// agg-rows-shipped column shows partial-aggregate pushdown collapsing the
// aggregate's gather bandwidth. E12b runs a point-lookup workload against
// a fleet whose primary replicas stall every 25th execution by 8ms:
// hedged reads race the clean replica after the adaptive latency quantile
// and cut the p99 while leaving the p50 alone, with zero goroutines
// leaked once the sources close.
func e12Remote() {
	db := quest.BuildIMDB(quest.DatasetConfig{Seed: *seed, Scale: 8})

	timeQuery := func(run func() error, reps int) float64 {
		start := time.Now()
		for i := 0; i < reps; i++ {
			if err := run(); err != nil {
				panic(err)
			}
		}
		return float64(time.Since(start).Microseconds()) / float64(reps)
	}

	const joinQ = `SELECT person.name, movie.title FROM person
		JOIN cast_info ON cast_info.person_id = person.person_id
		JOIN movie ON movie.movie_id = cast_info.movie_id
		WHERE movie.genre MATCH 'drama' AND cast_info.role = 'director'`
	const aggQ = `SELECT genre, COUNT(*), MIN(production_year), MAX(production_year)
		FROM movie GROUP BY genre`
	joinStmt, err := quest.ParseSQL(joinQ)
	if err != nil {
		panic(err)
	}
	aggStmt, err := quest.ParseSQL(aggQ)
	if err != nil {
		panic(err)
	}

	tbl := &eval.Table{
		Title:   "E12a — remote vs in-process pushdown (loopback wire protocol, imdb scale 8)",
		Headers: []string{"shards", "mode", "join-us", "agg-us", "agg-rows-shipped", "agg-partials"},
	}
	for _, n := range []int{4, 8} {
		type mode struct {
			name string
			src  *shardpkg.ShardedSource
		}
		parts, err := shardpkg.Partition(db, n)
		if err != nil {
			panic(err)
		}
		local, err := shardpkg.New(db.Name, parts, shardpkg.Options{})
		if err != nil {
			panic(err)
		}
		rparts, err := shardpkg.Partition(db, n)
		if err != nil {
			panic(err)
		}
		backends := make([]shardpkg.Backend, n)
		for i, p := range rparts {
			c, err := transport.NewLoopbackClient(wrapper.NewFullAccessSource(p), transport.Options{})
			if err != nil {
				panic(err)
			}
			backends[i] = c
		}
		remote := shardpkg.NewFromBackends(db.Name, db.Schema, backends,
			shardpkg.Options{AssumeHashRouting: true})
		for _, m := range []mode{{"in-process", local}, {"remote", remote}} {
			if _, err := m.src.Execute(joinStmt); err != nil { // warm shard plans
				panic(err)
			}
			joinUs := timeQuery(func() error { _, err := m.src.Execute(joinStmt); return err }, 5)
			aggUs := timeQuery(func() error { _, err := m.src.Execute(aggStmt); return err }, 10)
			m.src.ResetStats()
			if _, err := m.src.Execute(aggStmt); err != nil {
				panic(err)
			}
			st := m.src.Stats()
			tbl.AddRow(fmt.Sprint(n), m.name,
				fmt.Sprintf("%.1f", joinUs), fmt.Sprintf("%.1f", aggUs),
				fmt.Sprint(st.RowsShipped), fmt.Sprint(st.AggPushdownQueries))
		}
		remote.Close()
	}
	emit(tbl)

	// E12b: hedged vs unhedged tail latency against flaky primaries.
	tbl2 := &eval.Table{
		Title:   "E12b — hedged reads vs slow shard: point-lookup tail latency (8ms stall every 25th primary execute)",
		Headers: []string{"mode", "queries", "p50-us", "p99-us", "hedges", "hedge-wins", "retries", "leaked-goroutines"},
	}
	const (
		shards  = 4
		queries = 10000
	)
	points := make([]*sqlpkg.SelectStmt, 16)
	for i := range points {
		stmt, err := quest.ParseSQL(fmt.Sprintf("SELECT title FROM movie WHERE movie_id = %d", 50+i*37))
		if err != nil {
			panic(err)
		}
		points[i] = stmt
	}
	for _, hedge := range []bool{false, true} {
		name := "unhedged"
		if hedge {
			name = "hedged"
		}
		baseline := runtime.NumGoroutine()
		parts, err := shardpkg.Partition(db, shards)
		if err != nil {
			panic(err)
		}
		clients := make([]*transport.Client, shards)
		backends := make([]shardpkg.Backend, shards)
		for i, p := range parts {
			src := wrapper.NewFullAccessSource(p)
			primary := transport.NewServer(&flakyBackend{
				SourceExecutor: src, every: 25, delay: 8 * time.Millisecond,
			})
			replica := transport.NewServer(src)
			c, err := transport.NewClient(
				[]transport.Dialer{transport.LoopbackDialer(primary), transport.LoopbackDialer(replica)},
				transport.Options{Hedge: hedge},
			)
			if err != nil {
				panic(err)
			}
			clients[i] = c
			backends[i] = c
		}
		fleet := shardpkg.NewFromBackends(db.Name, db.Schema, backends,
			shardpkg.Options{AssumeHashRouting: true})
		if _, err := fleet.Execute(points[0]); err != nil { // warm
			panic(err)
		}
		lat := make([]time.Duration, 0, queries)
		for i := 0; i < queries; i++ {
			start := time.Now()
			if _, err := fleet.Execute(points[i%len(points)]); err != nil {
				panic(err)
			}
			lat = append(lat, time.Since(start))
		}
		var st transport.ClientStats
		for _, c := range clients {
			s := c.Stats()
			st.Hedges += s.Hedges
			st.HedgeWins += s.HedgeWins
			st.Retries += s.Retries
		}
		fleet.Close()
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		leaked := runtime.NumGoroutine() - baseline
		if leaked < 0 {
			leaked = 0
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		pct := func(q float64) float64 {
			i := int(q * float64(len(lat)))
			if i >= len(lat) {
				i = len(lat) - 1
			}
			return float64(lat[i].Microseconds())
		}
		tbl2.AddRow(name, fmt.Sprint(queries),
			fmt.Sprintf("%.0f", pct(0.50)), fmt.Sprintf("%.0f", pct(0.99)),
			fmt.Sprint(st.Hedges), fmt.Sprint(st.HedgeWins), fmt.Sprint(st.Retries),
			fmt.Sprint(leaked))
	}
	emit(tbl2)
}

// materializedBackend hides a backend's streaming face so the transport
// server falls back to Execute — the "old server" shape E13b compares the
// streaming sink against.
type materializedBackend struct {
	wrapper.SourceExecutor
}

// e13Streaming: the PR 6 streaming/columnar scorecard. E13a reruns the
// E11-style join workload plus a no-LIMIT full-table scan with every
// shard behind the wire, once pinned to protocol v1 (plain row frames)
// and once at v2 (columnar frames with dictionary/RLE encodings chosen
// from column statistics): identical rows either way, fewer bytes on the
// wire under v2. E13b sends the full-table fragment through a streaming
// server and an Execute-only server and reports each side's buffer
// high-water mark — the streaming sink holds at most one batch no matter
// how large the result, the materialized fallback holds all of it.
func e13Streaming() {
	db := quest.BuildIMDB(quest.DatasetConfig{Seed: *seed, Scale: 8})

	const joinQ = `SELECT person.name, movie.title FROM person
		JOIN cast_info ON cast_info.person_id = person.person_id
		JOIN movie ON movie.movie_id = cast_info.movie_id
		WHERE movie.genre MATCH 'drama' AND cast_info.role = 'director'`
	const scanQ = `SELECT * FROM movie`
	joinStmt, err := quest.ParseSQL(joinQ)
	if err != nil {
		panic(err)
	}
	scanStmt, err := quest.ParseSQL(scanQ)
	if err != nil {
		panic(err)
	}

	tbl := &eval.Table{
		Title:   "E13a — columnar vs row frames: gather bytes on the wire (loopback remote, imdb scale 8)",
		Headers: []string{"shards", "protocol", "join-us", "scan-us", "wire-bytes", "row-frames", "col-frames", "bytes-vs-v1"},
	}
	for _, n := range []int{4, 8} {
		var v1Bytes uint64
		for _, proto := range []int{transport.ProtocolV1, transport.ProtocolV2} {
			parts, err := shardpkg.Partition(db, n)
			if err != nil {
				panic(err)
			}
			clients := make([]*transport.Client, n)
			backends := make([]shardpkg.Backend, n)
			for i, p := range parts {
				c, err := transport.NewLoopbackClient(wrapper.NewFullAccessSource(p),
					transport.Options{Protocol: proto})
				if err != nil {
					panic(err)
				}
				clients[i] = c
				backends[i] = c
			}
			remote := shardpkg.NewFromBackends(db.Name, db.Schema, backends,
				shardpkg.Options{AssumeHashRouting: true})
			// Both protocols run the exact same query count (warm-up
			// included), so the summed byte counters compare like for like.
			if _, err := remote.Execute(joinStmt); err != nil {
				panic(err)
			}
			if _, err := remote.Execute(scanStmt); err != nil {
				panic(err)
			}
			var joinUs, scanUs float64
			for _, run := range []struct {
				stmt *sqlpkg.SelectStmt
				reps int
				us   *float64
			}{{joinStmt, 5, &joinUs}, {scanStmt, 5, &scanUs}} {
				start := time.Now()
				for i := 0; i < run.reps; i++ {
					if _, err := remote.Execute(run.stmt); err != nil {
						panic(err)
					}
				}
				*run.us = float64(time.Since(start).Microseconds()) / float64(run.reps)
			}
			var st transport.ClientStats
			for _, c := range clients {
				s := c.Stats()
				st.BytesReceived += s.BytesReceived
				st.RowFrames += s.RowFrames
				st.ColumnarFrames += s.ColumnarFrames
			}
			remote.Close()
			name, ratio := "v1 rows", "1.00x"
			if proto == transport.ProtocolV2 {
				name = "v2 columnar"
				ratio = fmt.Sprintf("%.2fx", float64(st.BytesReceived)/float64(v1Bytes))
			} else {
				v1Bytes = st.BytesReceived
			}
			tbl.AddRow(fmt.Sprint(n), name,
				fmt.Sprintf("%.1f", joinUs), fmt.Sprintf("%.1f", scanUs),
				fmt.Sprint(st.BytesReceived), fmt.Sprint(st.RowFrames),
				fmt.Sprint(st.ColumnarFrames), ratio)
		}
	}
	emit(tbl)

	// E13b: server-side buffering on the no-LIMIT full-table fragment.
	src := wrapper.NewFullAccessSource(db)
	res, err := src.Execute(scanStmt)
	if err != nil {
		panic(err)
	}
	resultBytes := 0
	for _, r := range res.Rows {
		resultBytes += sqlpkg.EncodedRowSize(r)
	}
	tbl2 := &eval.Table{
		Title:   "E13b — server buffer high-water on a no-LIMIT full-table fragment (imdb scale 8)",
		Headers: []string{"server", "result-rows", "result-bytes", "buffer-high-water", "hw/result"},
	}
	for _, m := range []struct {
		name    string
		backend wrapper.SourceExecutor
	}{
		{"streaming", src},
		{"materialized", &materializedBackend{SourceExecutor: src}},
	} {
		srv := transport.NewServer(m.backend)
		c, err := transport.NewClient(
			[]transport.Dialer{transport.LoopbackDialer(srv)}, transport.Options{})
		if err != nil {
			panic(err)
		}
		if _, err := c.Execute(scanStmt); err != nil {
			panic(err)
		}
		c.Close()
		hw := srv.BufferHighWater()
		tbl2.AddRow(m.name, fmt.Sprint(len(res.Rows)), fmt.Sprint(resultBytes),
			fmt.Sprint(hw), fmt.Sprintf("%.3f", float64(hw)/float64(resultBytes)))
	}
	emit(tbl2)
}

// replGroup is E14's fault-injectable replica group: servers reached
// through net.Pipe, where killing a replica makes it undialable and
// severs its live connections — the same model the conformance fault
// harness uses.
type replGroup struct {
	mu    sync.Mutex
	srvs  map[string]*transport.Server
	down  map[string]bool
	conns map[string][]net.Conn
}

func (g *replGroup) dial(name string) (net.Conn, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	srv := g.srvs[name]
	if srv == nil || g.down[name] {
		return nil, fmt.Errorf("replica %s is down", name)
	}
	cc, sc := net.Pipe()
	g.conns[name] = append(g.conns[name], cc, sc)
	go srv.ServeConn(sc)
	return cc, nil
}

func (g *replGroup) kill(name string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.down[name] = true
	for _, c := range g.conns[name] {
		c.Close()
	}
	g.conns[name] = nil
}

func (g *replGroup) killAll() {
	g.mu.Lock()
	names := make([]string, 0, len(g.srvs))
	for name := range g.srvs {
		names = append(names, name)
	}
	g.mu.Unlock()
	for _, name := range names {
		g.kill(name)
	}
}

// newReplGroup builds one shard group of n replicas, each a server over
// its own copy of db, and a replicated client over them.
func newReplGroup(db *quest.Database, n int, opt transport.Options) (*replGroup, *transport.Client) {
	g := &replGroup{
		srvs:  map[string]*transport.Server{},
		down:  map[string]bool{},
		conns: map[string][]net.Conn{},
	}
	specs := make([]transport.ReplicaSpec, n)
	for i := 0; i < n; i++ {
		copies, err := shardpkg.Partition(db, 1)
		if err != nil {
			panic(err)
		}
		srv := transport.NewServer(wrapper.NewFullAccessSource(copies[0]))
		srv.Resolver = g.dial
		name := fmt.Sprintf("replica-%d", i)
		g.srvs[name] = srv
		specs[i] = transport.ReplicaSpec{Name: name, Dial: func() (net.Conn, error) { return g.dial(name) }}
	}
	c, err := transport.NewReplicatedClient(specs, opt)
	if err != nil {
		panic(err)
	}
	return g, c
}

// benchRow synthesizes the i-th replicated write: a movie row with a key
// space far above the dataset generator's.
func benchRow(ts *quest.TableSchema, i int) quest.Row {
	row := make(quest.Row, len(ts.Columns))
	for c, col := range ts.Columns {
		switch col.Type {
		case relational.TypeInt:
			row[c] = quest.Int(int64(9_000_000 + 100*i + c))
		case relational.TypeFloat:
			row[c] = quest.Float(float64(i) + 0.5)
		case relational.TypeBool:
			row[c] = quest.Bool(i%2 == 0)
		default:
			row[c] = quest.Text(fmt.Sprintf("bench-%d-%d", i, c))
		}
	}
	return row
}

// e14Failover: the PR 7 replication/failover scorecard. E14a times the
// synchronous replicated write path as backups are added to the group —
// each backup adds one in-line replicate round trip, so the latency
// deltas are the price of the durability. E14b kills the primary and
// times recovery two ways: write-driven (the next Insert itself detects
// the dead primary, demotes it and promotes the freshest backup — the
// recovery time IS that insert's latency) and probe-driven (a background
// prober detects the death with no write traffic; recovery is the time
// until the catalog shows a new primary). Both modes then run a
// point-lookup burst against the degraded group and report query
// failures, which must be zero: reads rotate around the dead replica.
func e14Failover() {
	db := quest.BuildIMDB(quest.DatasetConfig{Seed: *seed, Scale: 1})
	ts := db.Schema.Table("movie")
	if ts == nil {
		panic("e14: no movie table")
	}

	tbl := &eval.Table{
		Title:   "E14a — replicated write latency vs backup count (imdb scale 1, synchronous fan-out)",
		Headers: []string{"backups", "writes", "avg-us", "p99-us", "repl-acks", "epoch"},
	}
	const writes = 300
	for _, replicas := range []int{1, 2, 3} {
		g, c := newReplGroup(db, replicas, transport.Options{
			MaxAttempts:  4,
			RetryBackoff: time.Millisecond,
		})
		if err := c.Insert(ts.Name, benchRow(ts, 0)); err != nil { // configure + warm
			panic(err)
		}
		lat := make([]time.Duration, 0, writes)
		for i := 1; i <= writes; i++ {
			start := time.Now()
			if err := c.Insert(ts.Name, benchRow(ts, i)); err != nil {
				panic(err)
			}
			lat = append(lat, time.Since(start))
		}
		st := c.Stats()
		fs := c.FleetStatus()
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		avg := time.Duration(0)
		for _, d := range lat {
			avg += d
		}
		avg /= time.Duration(len(lat))
		p99 := lat[len(lat)*99/100]
		tbl.AddRow(fmt.Sprint(replicas-1), fmt.Sprint(writes),
			fmt.Sprintf("%.1f", float64(avg.Microseconds())),
			fmt.Sprintf("%.1f", float64(p99.Microseconds())),
			fmt.Sprint(st.ReplicationAcks), fmt.Sprint(fs.Epoch))
		c.Close()
		g.killAll()
	}
	emit(tbl)

	tbl2 := &eval.Table{
		Title:   "E14b — kill-primary recovery (3 replicas): failover time and reads through the outage",
		Headers: []string{"mode", "writes-before", "recovery-ms", "demotions", "promotions", "probe-failures", "queries", "query-failures"},
	}
	point, err := quest.ParseSQL("SELECT title FROM movie WHERE movie_id = 100")
	if err != nil {
		panic(err)
	}
	for _, mode := range []string{"write-driven", "probe-driven"} {
		opt := transport.Options{
			MaxAttempts:        6,
			RetryBackoff:       time.Millisecond,
			ProbeFailThreshold: 2,
		}
		if mode == "probe-driven" {
			opt.ProbeInterval = 2 * time.Millisecond
		}
		g, c := newReplGroup(db, 3, opt)
		const before = 20
		for i := 0; i < before; i++ {
			if err := c.Insert(ts.Name, benchRow(ts, i)); err != nil {
				panic(err)
			}
		}
		oldPrimary := c.FleetStatus().Primary
		g.kill(oldPrimary)
		start := time.Now()
		var recovery time.Duration
		if mode == "write-driven" {
			if err := c.Insert(ts.Name, benchRow(ts, before)); err != nil {
				panic(err)
			}
			recovery = time.Since(start)
		} else {
			deadline := time.Now().Add(10 * time.Second)
			for c.FleetStatus().Primary == oldPrimary && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			recovery = time.Since(start)
			if err := c.Insert(ts.Name, benchRow(ts, before)); err != nil {
				panic(err)
			}
		}
		const queries = 500
		failures := 0
		for i := 0; i < queries; i++ {
			if _, err := c.Execute(point); err != nil {
				failures++
			}
		}
		st := c.Stats()
		tbl2.AddRow(mode, fmt.Sprint(before),
			fmt.Sprintf("%.2f", float64(recovery.Microseconds())/1000),
			fmt.Sprint(st.Demotions), fmt.Sprint(st.Promotions),
			fmt.Sprint(st.ProbeFailures), fmt.Sprint(queries), fmt.Sprint(failures))
		c.Close()
		g.killAll()
	}
	emit(tbl2)
}

// e15Durability: the PR 8 shard-durability scorecard. E15a sweeps the
// group-commit grid — batch size, linger, fsync on/off — with eight
// concurrent appenders mirroring the server's write discipline (sequence
// assignment and submission under one mutex, durability awaited outside
// it), showing fsyncs amortize across writers while per-append commit
// latency stays bounded. E15b times a snapshot checkpoint against each
// dataset, the cost the SnapshotEvery policy pays to truncate the log.
// E15c measures cold recovery — reopen a directory with a schema-only
// base — as the replayed log tail grows, the restart-time cost of
// checkpointing rarely.
func e15Durability() {
	db := quest.BuildIMDB(quest.DatasetConfig{Seed: *seed, Scale: 1})
	ts := db.Schema.Table("movie")
	if ts == nil {
		panic("e15: no movie table")
	}

	tbl := &eval.Table{
		Title:   "E15a — group commit grid: 8 writers, 2000 appends (imdb movie rows)",
		Headers: []string{"fsync", "batch", "wait", "batches", "ops/batch", "fsyncs", "avg-commit-us", "p99-commit-us", "appends/sec"},
	}
	const total, writers = 2000, 8
	for _, c := range []struct {
		fsync bool
		batch int
		wait  time.Duration
	}{
		{true, 1, 0}, {true, 16, 0}, {true, 64, 200 * time.Microsecond},
		{false, 1, 0}, {false, 16, 0}, {false, 64, 200 * time.Microsecond},
	} {
		dir, err := os.MkdirTemp("", "questbench-e15a-*")
		if err != nil {
			panic(err)
		}
		// Empty base: E15a measures the commit path, not replay.
		base, err := quest.NewDatabase(db.Name, db.Schema)
		if err != nil {
			panic(err)
		}
		l, _, err := quest.OpenShardWAL(dir, base, quest.WALOptions{
			BatchSize: c.batch, MaxWait: c.wait, NoFsync: !c.fsync,
		})
		if err != nil {
			panic(err)
		}
		var (
			mu   sync.Mutex
			seqv uint64
			next int64 = -1
			wg   sync.WaitGroup
		)
		lat := make([]time.Duration, total)
		start := time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1))
					if i >= total {
						return
					}
					row := benchRow(ts, i)
					t0 := time.Now()
					mu.Lock()
					seqv++
					cm := l.Append(seqv, ts.Name, row)
					mu.Unlock()
					if err := cm.Wait(); err != nil {
						panic(err)
					}
					lat[i] = time.Since(t0)
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		st := l.Stats()
		l.Close()
		os.RemoveAll(dir)
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		avg := time.Duration(0)
		for _, d := range lat {
			avg += d
		}
		avg /= time.Duration(len(lat))
		tbl.AddRow(fmt.Sprint(c.fsync), fmt.Sprint(c.batch), c.wait.String(),
			fmt.Sprint(st.Batches),
			fmt.Sprintf("%.1f", float64(st.Appends)/float64(st.Batches)),
			fmt.Sprint(st.Fsyncs),
			fmt.Sprintf("%.1f", float64(avg.Microseconds())),
			fmt.Sprintf("%.1f", float64(lat[total*99/100].Microseconds())),
			fmt.Sprintf("%.0f", float64(total)/elapsed.Seconds()))
	}
	emit(tbl)

	tbl2 := &eval.Table{
		Title:   "E15b — snapshot checkpoint cost per dataset (write temp + fsync + rename + truncate)",
		Headers: []string{"dataset", "rows", "snapshot-ms", "snapshot-bytes"},
	}
	for _, d := range []struct {
		name  string
		build func() *quest.Database
	}{
		{"mondial", func() *quest.Database { return quest.BuildMondial(quest.DatasetConfig{Seed: *seed, Scale: 1}) }},
		{"imdb", func() *quest.Database { return quest.BuildIMDB(quest.DatasetConfig{Seed: *seed, Scale: 1}) }},
		{"dblp", func() *quest.Database { return quest.BuildDBLP(quest.DatasetConfig{Seed: *seed, Scale: 1}) }},
	} {
		db2 := d.build()
		copies, err := shardpkg.Partition(db2, 1)
		if err != nil {
			panic(err)
		}
		dir, err := os.MkdirTemp("", "questbench-e15b-*")
		if err != nil {
			panic(err)
		}
		l, _, err := quest.OpenShardWAL(dir, copies[0], quest.WALOptions{})
		if err != nil {
			panic(err)
		}
		const rounds = 3
		start := time.Now()
		for i := 0; i < rounds; i++ {
			if err := l.Checkpoint(); err != nil {
				panic(err)
			}
		}
		per := time.Since(start) / rounds
		fi, err := os.Stat(dir + "/snapshot")
		if err != nil {
			panic(err)
		}
		l.Close()
		os.RemoveAll(dir)
		tbl2.AddRow(d.name, fmt.Sprint(db2.TotalRows()),
			fmt.Sprintf("%.2f", float64(per.Microseconds())/1000), fmt.Sprint(fi.Size()))
	}
	emit(tbl2)

	tbl3 := &eval.Table{
		Title:   "E15c — cold recovery vs log length (imdb base snapshot + replayed tail)",
		Headers: []string{"log-ops", "replayed", "recovery-ms", "rows-recovered"},
	}
	for _, logOps := range []int{100, 1000, 5000} {
		copies, err := shardpkg.Partition(db, 1)
		if err != nil {
			panic(err)
		}
		dir, err := os.MkdirTemp("", "questbench-e15c-*")
		if err != nil {
			panic(err)
		}
		wopt := quest.WALOptions{NoFsync: true}
		l, rec, err := quest.OpenShardWAL(dir, copies[0], wopt)
		if err != nil {
			panic(err)
		}
		waits := make([]func() error, 0, 128)
		for i := 0; i < logOps; i++ {
			row := benchRow(ts, i)
			if err := rec.DB.Insert(ts.Name, row); err != nil {
				panic(err)
			}
			waits = append(waits, l.Append(uint64(i+1), ts.Name, row).Wait)
			if len(waits) == cap(waits) || i == logOps-1 {
				for _, wait := range waits {
					if err := wait(); err != nil {
						panic(err)
					}
				}
				waits = waits[:0]
			}
		}
		l.Close()
		empty, err := quest.NewDatabase(db.Name, db.Schema)
		if err != nil {
			panic(err)
		}
		l2, rec2, err := quest.OpenShardWAL(dir, empty, wopt)
		if err != nil {
			panic(err)
		}
		rows := rec2.DB.TotalRows()
		l2.Close()
		os.RemoveAll(dir)
		tbl3.AddRow(fmt.Sprint(logOps), fmt.Sprint(rec2.ReplayedOps),
			fmt.Sprintf("%.2f", float64(rec2.Elapsed.Microseconds())/1000), fmt.Sprint(rows))
	}
	emit(tbl3)
}
