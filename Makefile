# Build/test/bench entry points. `make ci` is the gate every change must
# pass; `make bench` + `make snapshot` track the perf trajectory.

GO       ?= go
PKGS     ?= ./...
BENCH    ?= .
SEED     ?= 42
SNAPSHOT ?= BENCH_pr2.json

.PHONY: all build test race vet bench snapshot ci clean

all: build

build:
	$(GO) build $(PKGS)

test:
	$(GO) test $(PKGS)

race:
	$(GO) test -race $(PKGS)

vet:
	$(GO) vet $(PKGS)

# Component + experiment benchmarks with allocation stats.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem .

# Machine-readable experiment snapshot via questbench: all experiment
# tables including the E9 executor/planner and prune-path benchmarks.
# Committed as BENCH_pr2.json so the perf trajectory is diffable per PR;
# override SNAPSHOT to write elsewhere.
snapshot:
	$(GO) run ./cmd/questbench -seed $(SEED) -json $(SNAPSHOT)

ci: build vet test race

clean:
	rm -f BENCH_*.json
