# Build/test/bench entry points. `make ci` is the gate every change must
# pass; `make bench` + `make snapshot` track the perf trajectory.

GO       ?= go
PKGS     ?= ./...
BENCH    ?= .
SEED     ?= 42
SNAPSHOT ?= BENCH_pr10.json

.PHONY: all build test race vet bench bench-smoke fuzz-smoke serve-smoke conformance conformance-remote conformance-faults conformance-durability snapshot ci clean

all: build

build:
	$(GO) build $(PKGS)

test:
	$(GO) test $(PKGS)

race:
	$(GO) test -race $(PKGS)

vet:
	$(GO) vet $(PKGS)

# Component + experiment benchmarks with allocation stats.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem .

# One-iteration pass over every component benchmark: CI runs this so
# benchmark code cannot rot between perf PRs.
bench-smoke:
	$(GO) test -run '^$$' -bench Component -benchtime 1x $(PKGS)

# Short fuzz pass over the columnar frame decoder: malformed dictionary /
# RLE payloads must surface as typed protocol errors, never a panic.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzColumnarDecode -fuzztime 10s ./internal/transport

# Serving-tier smoke: questd's HTTP surface against an in-process engine
# under an open-loop burst — a rate-limited tenant must draw typed 429s
# with Retry-After while an interactive tenant stays unaffected, and the
# /v1/stats counters must reconcile with what the client observed.
serve-smoke:
	$(GO) test -race -count=1 -run TestServeSmoke ./internal/serve

# Cross-backend conformance: the differential suite holds ShardedSource
# (at 1, 3 and 7 shards, with concurrent queries and interleaved inserts)
# and every registered backend kind — the loopback-wire "remote" kind
# included — to FullAccessSource's semantics, under the race detector.
conformance:
	$(GO) test -race -count=1 -run Conformance ./internal/conformance

# Remote-transport conformance and fault injection: every query shape
# against shards behind the wire protocol (loopback and TCP) at 1/3/7
# shards, the goroutine-leak bound, and the transport package's
# dropped-connection / slow-shard-hedge / malformed-frame tests.
conformance-remote:
	$(GO) test -race -count=1 -run 'ConformanceRemote|RemoteNoGoroutineLeak' ./internal/conformance
	$(GO) test -race -count=1 ./internal/transport

# Fault-injection conformance: replicated shard groups with replicas
# killed mid-batch, partitioned, restarted and rejoined, held
# byte-identical to FullAccessSource at 1/3/7 shards; plus the
# probe-window failover bound and the goroutine-leak sweep with faults
# active. All under the race detector.
conformance-faults:
	$(GO) test -race -count=1 -run 'ConformanceFaults|FaultFailoverWithinProbeWindow|FaultNoGoroutineLeak' ./internal/conformance

# Durability conformance: WAL-backed replicated shard groups at 1/3/7
# shards with a backup, the primary, and a whole shard group killed
# mid-insert-batch and restarted from their WAL directories alone —
# recovery, duplicate-free rejoin and every degraded topology held
# byte-identical to FullAccessSource; plus the wal package's
# torn-write/corruption codec tests. All under the race detector.
conformance-durability:
	$(GO) test -race -count=1 -run ConformanceDurability ./internal/conformance
	$(GO) test -race -count=1 ./internal/wal

# Machine-readable experiment snapshot via questbench: all experiment
# tables including the E9 executor/planner, prune-path, E10
# statistics/join-order, E11 sharded-execution, E12 remote-transport/
# hedged-read, E13 streaming/columnar, E14 replication/failover and E15
# shard-durability benchmarks and the E16 open-loop serving-tier overload
# sweep. Committed as BENCH_pr10.json so the perf trajectory is diffable
# per PR; override SNAPSHOT to write elsewhere.
snapshot:
	$(GO) run ./cmd/questbench -seed $(SEED) -json $(SNAPSHOT)

ci: build vet test race conformance conformance-remote conformance-faults conformance-durability bench-smoke fuzz-smoke serve-smoke

clean:
	rm -f BENCH_*.json
