# Build/test/bench entry points. `make ci` is the gate every change must
# pass; `make bench` + `make snapshot` track the perf trajectory.

GO       ?= go
PKGS     ?= ./...
BENCH    ?= .
SEED     ?= 42
SNAPSHOT ?= BENCH_pr3.json

.PHONY: all build test race vet bench bench-smoke snapshot ci clean

all: build

build:
	$(GO) build $(PKGS)

test:
	$(GO) test $(PKGS)

race:
	$(GO) test -race $(PKGS)

vet:
	$(GO) vet $(PKGS)

# Component + experiment benchmarks with allocation stats.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem .

# One-iteration pass over every component benchmark: CI runs this so
# benchmark code cannot rot between perf PRs.
bench-smoke:
	$(GO) test -run '^$$' -bench Component -benchtime 1x $(PKGS)

# Machine-readable experiment snapshot via questbench: all experiment
# tables including the E9 executor/planner, prune-path and E10
# statistics/join-order benchmarks. Committed as BENCH_pr3.json so the
# perf trajectory is diffable per PR; override SNAPSHOT to write
# elsewhere.
snapshot:
	$(GO) run ./cmd/questbench -seed $(SEED) -json $(SNAPSHOT)

ci: build vet test race bench-smoke

clean:
	rm -f BENCH_*.json
