package quest_test

import (
	"net"
	"testing"

	quest "repro"
	"repro/internal/transport"
	"repro/internal/wrapper"
)

// TestOpenRemoteEndToEnd stands up a questshardd-shaped fleet — one TCP
// transport server per hash partition — and runs the public remote engine
// against the in-process sharded engine over the same partitioning. The
// two coordinators merge identical shard evidence (relevance maxima,
// mean edge distances, merged statistics), so searches must rank the same
// explanations and executing them must return the same tuples: the
// process boundary is invisible to results.
func TestOpenRemoteEndToEnd(t *testing.T) {
	const shards = 3
	build := func() *quest.Database {
		return quest.BuildIMDB(quest.DatasetConfig{Seed: 42, Scale: 1})
	}
	opts := quest.Defaults()
	opts.PruneEmpty = true

	local, err := quest.OpenSharded(build(), shards, opts)
	if err != nil {
		t.Fatal(err)
	}

	// The remote fleet: partition an identical instance, serve each shard
	// on its own listener, dial the fleet through the public API.
	db := build()
	parts, err := quest.PartitionDatabase(db, shards)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([][]string, shards)
	for i, p := range parts {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go transport.NewServer(wrapper.NewFullAccessSource(p)).Serve(l)
		addrs[i] = []string{l.Addr().String()}
	}
	remote, err := quest.OpenRemote(db.Schema, db.Name, addrs,
		quest.RemoteOptions{AssumeHashRouting: true}, opts)
	if err != nil {
		t.Fatal(err)
	}
	src, ok := remote.Source().(*quest.ShardedSource)
	if !ok {
		t.Fatalf("remote engine source = %T", remote.Source())
	}
	defer src.Close()
	if src.ShardCount() != shards {
		t.Fatalf("ShardCount = %d, want %d", src.ShardCount(), shards)
	}

	for _, query := range []string{"spielberg drama", "scorsese thriller"} {
		lx, err := local.Search(query)
		if err != nil {
			t.Fatalf("local search %q: %v", query, err)
		}
		rx, err := remote.Search(query)
		if err != nil {
			t.Fatalf("remote search %q: %v", query, err)
		}
		if len(rx) == 0 || len(lx) != len(rx) {
			t.Fatalf("%q: %d remote explanations vs %d local", query, len(rx), len(lx))
		}
		for i := range lx {
			if lx[i].SQL != rx[i].SQL {
				t.Fatalf("%q: explanation %d diverges:\n  local  %s\n  remote %s", query, i, lx[i].SQL, rx[i].SQL)
			}
		}
		lres, err := local.Execute(lx[0])
		if err != nil {
			t.Fatalf("local execute: %v", err)
		}
		rres, err := remote.Execute(rx[0])
		if err != nil {
			t.Fatalf("remote execute: %v", err)
		}
		if len(lres.Rows) != len(rres.Rows) {
			t.Fatalf("%q: %d remote rows vs %d local for %s", query, len(rres.Rows), len(lres.Rows), lx[0].SQL)
		}
	}

	// Statistics flow over the wire as merged summaries.
	lcs, err := local.ColumnStatistics("movie", "production_year")
	if err != nil {
		t.Fatal(err)
	}
	rcs, err := remote.ColumnStatistics("movie", "production_year")
	if err != nil {
		t.Fatal(err)
	}
	if lcs.Rows != rcs.Rows || lcs.Distinct != rcs.Distinct || lcs.NullCount != rcs.NullCount {
		t.Errorf("remote statistics diverge: %+v vs %+v", rcs, lcs)
	}
}
