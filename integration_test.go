package quest_test

import (
	"strings"
	"testing"

	quest "repro"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/ontology"
	"repro/internal/relational"
	"repro/internal/wrapper"
)

// TestFullPipelineAllDatasets runs a real workload through the complete
// pipeline on every dataset and checks (a) every generated SQL executes,
// (b) quality stays above a floor, (c) results are deterministic.
func TestFullPipelineAllDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	cfg := quest.DatasetConfig{Seed: 42, Scale: 1}
	cases := []struct {
		name      string
		db        *quest.Database
		templates []eval.Template
		floorMRR  float64
	}{
		{"imdb", quest.BuildIMDB(cfg), eval.IMDBTemplates(), 0.45},
		{"mondial", quest.BuildMondial(cfg), eval.MondialTemplates(), 0.45},
		{"dblp", quest.BuildDBLP(cfg), eval.DBLPTemplates(), 0.45},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := quest.Open(tc.db, quest.Defaults())
			w := eval.NewGenerator(tc.db, 142).Generate(tc.name, tc.templates, 3)
			if len(w.Queries) == 0 {
				t.Fatal("empty workload")
			}
			var js []eval.Judgement
			for _, q := range w.Queries {
				ex, err := eng.Search(strings.Join(q.Keywords, " "))
				if err != nil {
					t.Fatalf("query %v: %v", q.Keywords, err)
				}
				for _, e := range ex {
					if _, err := eng.Execute(e); err != nil {
						t.Fatalf("query %v: generated SQL failed: %v\n%s", q.Keywords, err, e.SQL)
					}
				}
				js = append(js, eval.Judge(q, ex))
			}
			m := eval.Aggregate(js)
			if m.MRR < tc.floorMRR {
				t.Fatalf("quality collapsed: %s", m)
			}

			// Determinism: repeating one query gives identical output.
			q := w.Queries[0]
			r1, err := eng.Search(strings.Join(q.Keywords, " "))
			if err != nil {
				t.Fatal(err)
			}
			r2, err := eng.Search(strings.Join(q.Keywords, " "))
			if err != nil {
				t.Fatal(err)
			}
			if len(r1) != len(r2) {
				t.Fatalf("nondeterministic result count: %d vs %d", len(r1), len(r2))
			}
			for i := range r1 {
				if r1[i].SQL != r2[i].SQL || r1[i].Belief != r2[i].Belief {
					t.Fatalf("nondeterministic rank %d", i)
				}
			}
		})
	}
}

// TestEmptyDatabase: an engine over an empty instance must not panic and
// must return no value-keyword explanations while schema keywords still
// resolve.
func TestEmptyDatabase(t *testing.T) {
	db := relational.MustNewDatabase("empty", mustIMDBSchema(t))
	eng := quest.Open(db, quest.Defaults())
	results, err := eng.Search("spielberg drama")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("value keywords on an empty instance returned %d explanations", len(results))
	}
	// Pure schema keywords still work (the forward module maps them from
	// names/annotations, the backward module from the schema graph).
	results, err = eng.Search("film")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("schema keyword must resolve without data")
	}
	if _, err := eng.Execute(results[0]); err != nil {
		t.Fatalf("executing on the empty instance: %v", err)
	}
}

func mustIMDBSchema(t *testing.T) *relational.Schema {
	t.Helper()
	db := quest.BuildIMDB(quest.DatasetConfig{Seed: 1, Scale: 1})
	return db.Schema
}

// TestDisconnectedSchema: keywords landing in tables with no join path must
// not produce cross-table explanations and must not error.
func TestDisconnectedSchema(t *testing.T) {
	s := relational.NewSchema()
	for _, name := range []string{"apples", "oranges"} {
		if err := s.AddTable(&relational.TableSchema{
			Name: name,
			Columns: []relational.Column{
				{Name: name + "_id", Type: relational.TypeInt, NotNull: true},
				{Name: "label", Type: relational.TypeString},
			},
			PrimaryKey: name + "_id",
		}); err != nil {
			t.Fatal(err)
		}
	}
	db := relational.MustNewDatabase("fruit", s)
	db.Table("apples").MustInsert(relational.Row{relational.Int(1), relational.String_("fuji crisp")})
	db.Table("oranges").MustInsert(relational.Row{relational.Int(1), relational.String_("valencia sweet")})

	eng := quest.Open(db, quest.Defaults())
	results, err := eng.Search("fuji valencia")
	if err != nil {
		t.Fatal(err)
	}
	for _, ex := range results {
		if len(ex.Interpretation.Tables()) > 1 {
			t.Fatalf("impossible cross-table explanation: %v", ex.Interpretation.Tables())
		}
	}
}

// TestSingleKeywordSingleTable covers the smallest possible pipeline.
func TestSingleKeywordSingleTable(t *testing.T) {
	s := relational.NewSchema()
	if err := s.AddTable(&relational.TableSchema{
		Name: "memo",
		Columns: []relational.Column{
			{Name: "memo_id", Type: relational.TypeInt, NotNull: true},
			{Name: "text", Type: relational.TypeString},
		},
		PrimaryKey: "memo_id",
	}); err != nil {
		t.Fatal(err)
	}
	db := relational.MustNewDatabase("memos", s)
	db.Table("memo").MustInsert(relational.Row{relational.Int(1), relational.String_("remember the milk")})
	eng := quest.Open(db, quest.Defaults())
	results, err := eng.Search("milk")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no explanation for a direct hit")
	}
	res, err := eng.Execute(results[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
}

// TestRetrainEMOnQueryLog: unlabeled keyword logs refine the feedback HMM
// without validated configurations (the EM path of the feedback mode).
func TestRetrainEMOnQueryLog(t *testing.T) {
	db := quest.BuildIMDB(quest.DatasetConfig{Seed: 42, Scale: 1})
	opts := core.DefaultOptions()
	opts.Thesaurus = ontology.DefaultThesaurus()
	eng := core.NewEngine(wrapper.NewFullAccessSource(db), opts)
	log := [][]string{
		{"smith", "drama"},
		{"jones", "thriller"},
		{"kurosawa", "comedy"},
		{"smith", "western"},
	}
	iters := eng.Forward().RetrainEM(log, 10)
	if iters == 0 {
		t.Fatal("EM did not run on the query log")
	}
	if !eng.Forward().HasFeedback() {
		t.Fatal("EM training must mark the feedback mode trained")
	}
	configs := eng.Forward().TopKFeedback([]string{"smith", "drama"}, 3)
	if len(configs) == 0 {
		t.Fatal("feedback decode empty after EM")
	}
}

// TestConflictingFeedback: contradictory validated searches must not break
// combination (DS handles conflict by renormalization).
func TestConflictingFeedback(t *testing.T) {
	db := quest.BuildIMDB(quest.DatasetConfig{Seed: 42, Scale: 1})
	eng := quest.Open(db, quest.Defaults())
	kws := []string{"smith", "drama"}
	a := &quest.Configuration{
		Keywords: kws,
		Terms: []quest.Term{
			{Kind: quest.KindDomain, Table: "person", Column: "name"},
			{Kind: quest.KindDomain, Table: "movie", Column: "genre"},
		},
	}
	b := &quest.Configuration{
		Keywords: kws,
		Terms: []quest.Term{
			{Kind: quest.KindDomain, Table: "movie", Column: "title"},
			{Kind: quest.KindDomain, Table: "movie", Column: "genre"},
		},
	}
	var batch []*quest.Configuration
	for i := 0; i < 10; i++ {
		batch = append(batch, a, b)
	}
	eng.AddFeedback(batch)
	results, err := eng.Search("smith drama")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("conflicting feedback wiped the results")
	}
}

// TestCSVWorkflow: build a custom database from CSV and search it through
// the public API (the downstream-user path end to end).
func TestCSVWorkflow(t *testing.T) {
	s := quest.NewSchema()
	if err := s.AddTable(&quest.TableSchema{
		Name: "track",
		Columns: []quest.Column{
			{Name: "track_id", Type: relational.TypeInt, NotNull: true},
			{Name: "title", Type: relational.TypeString},
			{Name: "artist", Type: relational.TypeString},
		},
		PrimaryKey: "track_id",
	}); err != nil {
		t.Fatal(err)
	}
	db, err := quest.NewDatabase("music", s)
	if err != nil {
		t.Fatal(err)
	}
	csvData := "track_id,title,artist\n1,midnight train,ella brown\n2,river song,tom waits\n3,midnight sun,ella brown\n"
	n, err := db.LoadCSV("track", strings.NewReader(csvData))
	if err != nil || n != 3 {
		t.Fatalf("LoadCSV = %d, %v", n, err)
	}
	eng := quest.Open(db, quest.Defaults())
	results, err := eng.Search("midnight ella")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results on CSV-loaded data")
	}
	res, err := eng.Execute(results[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("top explanation returned nothing")
	}
}
