// Package quest is the public API of the QUEST reproduction: a keyword
// search system for relational data that translates keyword queries into
// ranked SQL queries by combining a Hidden-Markov-Model forward step,
// a schema-level Steiner-tree backward step, and Dempster–Shafer evidence
// combination (Bergamaschi et al., PVLDB 6(12), 2013).
//
// # Quickstart
//
//	db := quest.BuildIMDB(quest.DatasetConfig{Seed: 42, Scale: 1})
//	eng := quest.Open(db, quest.Defaults())
//	results, err := eng.Search("scorsese thriller")
//	for _, ex := range results {
//	    fmt.Println(ex.Belief, ex.SQL)
//	    rows, _ := eng.Execute(ex)
//	    fmt.Println(rows)
//	}
//
// The package re-exports the pieces a downstream user needs: engine
// construction over owned databases (full access) or hidden sources
// (metadata-only wrapper), feedback training, uncertainty tuning, dataset
// generators and the relational engine types required to define custom
// schemas.
//
// # Performance
//
// Engine is safe for concurrent use: any number of goroutines may call
// Search while others train feedback or tune uncertainties. The fan-out
// points of Algorithm 1 — per-terminal-set Steiner decoding and candidate
// SQL validation under PruneEmpty — run across a bounded worker pool sized
// by Options.Parallelism (default runtime.GOMAXPROCS(0)) and shared by all
// concurrent calls; result order is identical to the sequential path, so
// parallelism is purely a latency knob. Validation queries call into the
// source, so they only fan out when the source declares Execute
// concurrency-safe (built-in sources do) or Parallelism explicitly opts
// in.
//
// Generated SQL runs through a statistics-driven cost-based planner
// (internal/sql): equality and IN predicates route through secondary hash
// indexes, range predicates through sorted secondary indexes, MATCH
// through full-text postings, single-table predicates are pushed below
// joins, multi-joins are reordered by a Selinger-style search over
// per-column statistics (distinct counts, histograms, most-common
// values — collected lazily per table version), hash joins build on the
// estimated-smaller side, and PruneEmpty validation queries execute in
// existence-only mode that stops at the first surviving tuple. ExplainSQL
// and ExplainAnalyzeSQL (and Result.Plan) expose the chosen plan with
// estimated vs actual cardinalities.
//
// Two engine-level caches serve repeat work. A query cache
// (Options.QueryCacheSize) maps a search's tokenized keywords to its final
// ranked explanations, and the backward module memoizes Steiner
// decodings per terminal set (Options.Backward.CacheSize); both are
// mutex-sharded LRUs safe under concurrent traffic.
//
// Cache staleness is managed with an epoch counter rather than explicit
// invalidation: every query-cache key embeds the engine's current epoch,
// and every state change that could alter rankings — AddFeedback,
// AddNegativeFeedback, SetUncertainty, AutoAdapt — bumps it, making all
// earlier entries unreachable (they age out of the LRU naturally). The
// Steiner memo never goes stale because the schema graph is immutable
// after setup. Mutating the forward module directly (for example
// Engine.Forward().RetrainEM) bypasses the engine's bookkeeping; call
// Engine.InvalidateCaches afterwards.
package quest

import (
	"errors"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/ontology"
	"repro/internal/relational"
	"repro/internal/shard"
	"repro/internal/sql"
	"repro/internal/transport"
	"repro/internal/wal"
	"repro/internal/wrapper"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Engine is the assembled QUEST system over one source.
	Engine = core.Engine
	// Options configures an Engine.
	Options = core.Options
	// Uncertainty holds the four Dempster–Shafer ignorance degrees
	// (OCap, OCf, OC, OI) of Algorithm 1.
	Uncertainty = core.Uncertainty
	// Explanation is one ranked result: configuration + join path +
	// belief + SQL.
	Explanation = core.Explanation
	// Configuration maps each keyword to a database term.
	Configuration = core.Configuration
	// Term is a database term (table, attribute, or attribute domain).
	Term = core.Term
	// Interpretation is a join path over the schema graph.
	Interpretation = core.Interpretation

	// Database is a populated in-memory relational database.
	Database = relational.Database
	// Schema describes tables, columns and keys.
	Schema = relational.Schema
	// TableSchema describes one table.
	TableSchema = relational.TableSchema
	// Column describes one attribute, with optional annotations and value
	// pattern used by the metadata wrapper.
	Column = relational.Column
	// ForeignKey declares a referential link.
	ForeignKey = relational.ForeignKey
	// Row is one tuple.
	Row = relational.Row
	// Value is one typed cell.
	Value = relational.Value

	// Source abstracts data-source access (full or metadata-only).
	Source = wrapper.Source
	// ShardedSource executes over N hash-partitioned backends with
	// predicate pushdown, partition pruning and scatter-gather merge.
	ShardedSource = shard.ShardedSource
	// ShardStats snapshots a sharded source's coordinator counters.
	ShardStats = shard.Stats
	// ShardBackend is the per-shard executor contract a ShardedSource
	// coordinates (local sources and remote transport clients alike).
	ShardBackend = shard.Backend
	// RemoteClient executes against one remote shard (a questshardd
	// process) with connection pooling, retries and hedged reads. Clients
	// over a replica group additionally carry the fleet surface: Insert
	// (the replicated write path), FleetStatus, ProbeNow.
	RemoteClient = transport.Client
	// RemoteClientStats snapshots a remote client's transport counters:
	// the read path (attempts, retries, hedges, hedge wins, dials, bytes)
	// and the replication path (inserts, replication acks, fenced writes,
	// probes, probe failures, demotions, promotions, replays).
	RemoteClientStats = transport.ClientStats
	// FleetStatus snapshots a replicated client's replica catalog: the
	// fenced epoch, the elected primary, and each replica's rotation
	// membership and applied sequence.
	FleetStatus = transport.FleetStatus
	// ShardWAL is a shard server's durability layer: a group-committed
	// write-ahead log plus periodic snapshots over one directory. Attach
	// one to a served shard with RemoteServer-side questshardd -wal-dir,
	// or open directly with OpenShardWAL for embedded deployments.
	ShardWAL = wal.Log
	// WALOptions tunes the durability layer: group-commit batch size and
	// linger, fsync policy, snapshot cadence.
	WALOptions = wal.Options
	// WALRecovery reports what OpenShardWAL reconstructed from disk: the
	// recovered database, the resume sequence, replayed op count, and
	// whether a torn tail was discarded.
	WALRecovery = wal.Recovery
	// DurabilityStats snapshots a shard WAL's counters (appends, batches,
	// fsyncs, commit wait, snapshots, recovery) — the durable-write
	// companion to RemoteClientStats.
	DurabilityStats = wal.Stats
	// ReplicaStatus is one replica's row in a FleetStatus.
	ReplicaStatus = transport.ReplicaStatus
	// TransportOptions tunes the remote transport: retry policy, pool
	// size, timeouts, hedged-read arming.
	TransportOptions = transport.Options
	// Result is a materialized SQL result.
	Result = sql.Result
	// SQLQueryPlan is the introspectable execution plan attached to every
	// Result: access paths, join order, estimated vs actual cardinalities.
	SQLQueryPlan = sql.QueryPlan
	// SQLPlannerStats snapshots the planning layer's counters.
	SQLPlannerStats = sql.PlannerStats
	// ColumnStats is a per-column statistics snapshot (distinct count,
	// min/max, null fraction, histogram, most-common values).
	ColumnStats = relational.ColumnStats

	// Thesaurus is the ontology used for semantic matching.
	Thesaurus = ontology.Thesaurus

	// DatasetConfig sizes the built-in dataset generators.
	DatasetConfig = datasets.Config
)

// Term kinds.
const (
	KindTable     = core.KindTable
	KindAttribute = core.KindAttribute
	KindDomain    = core.KindDomain
)

// Value constructors, re-exported for schema/population code.
var (
	// Int builds an integer value.
	Int = relational.Int
	// Float builds a float value.
	Float = relational.Float
	// Text builds a string value.
	Text = relational.String_
	// Bool builds a boolean value.
	Bool = relational.Bool
	// Null builds the NULL value.
	Null = relational.Null
)

// Defaults returns the standard engine options: k=10, cold-start
// uncertainties (a-priori trusted, feedback distrusted), MI-weighted
// schema graph with sub-tree pruning, and the built-in thesaurus.
func Defaults() Options {
	o := core.DefaultOptions()
	o.Thesaurus = ontology.DefaultThesaurus()
	return o
}

// AdaptUncertainty re-derives the forward-mode ignorance degrees from the
// number of accumulated validated searches (the paper's adaptation rule:
// trust feedback more as it accumulates). Engines can do this automatically
// via Engine.AutoAdapt(true).
func AdaptUncertainty(u Uncertainty, feedbackCount int) Uncertainty {
	return core.AdaptUncertainty(u, feedbackCount)
}

// Open wraps an owned database with full access (full-text indexes are
// built here — the paper's setup phase) and assembles the engine.
func Open(db *Database, opts Options) *Engine {
	return core.NewEngine(wrapper.NewFullAccessSource(db), opts)
}

// OpenSource assembles the engine over any Source implementation, e.g. a
// metadata-only wrapper for Deep Web sources.
func OpenSource(src Source, opts Options) *Engine {
	return core.NewEngine(src, opts)
}

// OpenHidden wraps a database as a hidden source: QUEST sees only schema
// metadata (annotations, value patterns, types) and executes SQL through an
// opaque endpoint, as with a web form. Quality relies on the enriched
// schema and the ontology rather than full-text statistics.
func OpenHidden(db *Database, thes *Thesaurus, opts Options) *Engine {
	return core.NewEngine(wrapper.HiddenSourceFor(db, thes), opts)
}

// OpenSharded hash-partitions the database into n shards and assembles the
// engine over the sharded execution layer: generated SQL is split into
// pushdown fragments executed where the rows live (each shard plans its
// fragment with its own local indexes and statistics), existence
// validations fan out per shard and short-circuit on the first witness,
// and Engine.ColumnStatistics reports whole-data summaries merged from the
// shards instead of shipped rows. The engine behaves like Open
// semantically; only the execution topology changes. The database's rows
// are copied into the shards — treat the returned engine's source as the
// owner from here on.
func OpenSharded(db *Database, n int, opts Options) (*Engine, error) {
	parts, err := shard.Partition(db, n)
	if err != nil {
		return nil, err
	}
	src, err := shard.New(db.Name, parts, shard.Options{Workers: opts.Parallelism})
	if err != nil {
		return nil, err
	}
	return core.NewEngine(src, opts), nil
}

// PartitionDatabase hash-partitions a database into n databases over the
// same schema (PK hash routing; round-robin for keyless tables), the raw
// material for a custom sharded deployment.
func PartitionDatabase(db *Database, n int) ([]*Database, error) {
	return shard.Partition(db, n)
}

// errNoShards rejects an empty remote topology.
var errNoShards = errors.New("quest: no remote shards given")

// ErrReadOnlyTopology is returned (wrapped — test with errors.Is) by
// ShardedSource.Insert when the topology has no write surface: a backend
// without an insert path, or a remote fleet whose servers predate the
// replicated-write protocol.
var ErrReadOnlyTopology = shard.ErrReadOnlyTopology

// ErrWALCorrupt is matched (errors.Is) by OpenShardWAL errors that mean
// the log or snapshot holds damage beyond a torn final record — a CRC
// mismatch, an impossible length, or an unreplayable op mid-log.
// Recovery never silently skips such damage.
var ErrWALCorrupt = wal.ErrCorrupt

// OpenShardWAL opens (or creates) a shard durability directory and
// recovers its state: the latest valid snapshot is loaded, the log tail
// replayed on top of it, and a torn final record — a crash mid
// group-commit — discarded cleanly. base supplies the schema (and, for a
// brand-new directory, the initial data, which is immediately
// snapshotted so the directory is self-contained). The recovered
// database is in Recovery.DB; attach the log to a transport server so
// every replicated write is group-committed to disk before it is acked.
func OpenShardWAL(dir string, base *Database, opt WALOptions) (*ShardWAL, *WALRecovery, error) {
	return wal.Open(dir, base, opt)
}

// RemoteOptions configures a coordinator over remote shards.
type RemoteOptions struct {
	// Transport tunes every shard client: retry policy, connection pool
	// size, timeouts, hedged reads (Transport.Hedge arms racing a second
	// replica when a shard exceeds its recent latency quantile), and
	// fleet health probing (Transport.ProbeInterval starts a background
	// prober per shard group; Transport.ProbeFailThreshold failures
	// demote a replica, promoting a backup when it was the primary).
	Transport TransportOptions
	// AssumeHashRouting declares the remote shards hold partitions
	// produced by PartitionDatabase with the same shard count (questshardd
	// started with matching -shards flags), enabling PK partition pruning.
	// Leave false for shards with unknown row placement.
	AssumeHashRouting bool
	// Workers bounds the coordinator's in-flight shard requests per query;
	// 0 selects GOMAXPROCS.
	Workers int
}

// DialShards connects a sharded coordinator source to remote shard
// servers (questshardd). shardAddrs[i] lists the address of shard i's
// server, plus any replicas of it: hedged reads race the replica list,
// and each group gets a replica catalog — writes (ShardedSource.Insert)
// route to an elected, epoch-fenced primary that replicates to its
// backups synchronously, health probes demote dead replicas and fail
// over the primary, and rejoining replicas are replayed from the
// primary's op log. The returned source implements the full wrapper
// surface: generated SQL ships as pushdown fragments, rows stream back
// in length-prefixed frames, statistics and relevance evidence are
// merged shard summaries. Close it to release the pooled connections
// and stop the probers.
func DialShards(schema *Schema, name string, shardAddrs [][]string, ropt RemoteOptions) (*ShardedSource, error) {
	if len(shardAddrs) == 0 {
		return nil, errNoShards
	}
	backends := make([]shard.Backend, len(shardAddrs))
	for i, addrs := range shardAddrs {
		c, err := transport.Dial(addrs, ropt.Transport)
		if err != nil {
			return nil, err
		}
		backends[i] = c
	}
	return shard.NewFromBackends(name, schema, backends, shard.Options{
		Workers:           ropt.Workers,
		AssumeHashRouting: ropt.AssumeHashRouting,
	}), nil
}

// OpenRemote assembles the engine over remote shards: a network-
// transparent variant of OpenSharded where each shard lives in its own
// process behind questshardd. The schema must describe the partitioned
// database (the dataset builders and NewSchema produce it); everything
// else — fragment execution, existence fan-out, statistics merge — runs
// over the wire.
func OpenRemote(schema *Schema, name string, shardAddrs [][]string, ropt RemoteOptions, opts Options) (*Engine, error) {
	src, err := DialShards(schema, name, shardAddrs, ropt)
	if err != nil {
		return nil, err
	}
	return core.NewEngine(src, opts), nil
}

// OpenBackend assembles the engine over a registered execution backend
// kind ("full", "sharded", or anything registered through
// wrapper.RegisterBackend). Every registered kind is held to the same
// differential contract by the internal/conformance suite.
func OpenBackend(kind string, db *Database, opts Options) (*Engine, error) {
	src, err := wrapper.OpenBackend(kind, db)
	if err != nil {
		return nil, err
	}
	return core.NewEngine(src, opts), nil
}

// NewSchema returns an empty schema for custom databases.
func NewSchema() *Schema { return relational.NewSchema() }

// NewDatabase creates a database with empty tables for the schema.
func NewDatabase(name string, schema *Schema) (*Database, error) {
	return relational.NewDatabase(name, schema)
}

// DefaultThesaurus returns the built-in ontology covering the three demo
// domains plus generic database vocabulary.
func DefaultThesaurus() *Thesaurus { return ontology.DefaultThesaurus() }

// BuildIMDB generates the synthetic IMDB-like database (simple star schema,
// many rows; scalable).
func BuildIMDB(cfg DatasetConfig) *Database { return datasets.IMDB(cfg) }

// BuildMondial generates the synthetic Mondial-like database (complex
// schema, few rows).
func BuildMondial(cfg DatasetConfig) *Database { return datasets.Mondial(cfg) }

// BuildDBLP generates the synthetic DBLP-like database (large instance,
// non-trivial schema; scalable).
func BuildDBLP(cfg DatasetConfig) *Database { return datasets.DBLP(cfg) }

// Tokenize splits a raw query string into keywords, honoring double-quoted
// phrases.
func Tokenize(query string) []string { return core.Tokenize(query) }

// RenderExplanation draws the database portion touched by an explanation as
// an ASCII graph (the demo GUI's result visualization).
func RenderExplanation(ex *Explanation) string { return core.RenderTree(ex) }

// ParseSQL parses a statement of the supported SELECT dialect.
func ParseSQL(src string) (*sql.SelectStmt, error) { return sql.Parse(src) }

// RunSQL parses and executes a query against an owned database.
func RunSQL(db *Database, src string) (*Result, error) { return sql.Run(db, src) }

// ExplainSQL renders the execution plan the engine would use for a query.
func ExplainSQL(db *Database, src string) (string, error) { return sql.ExplainQuery(db, src) }

// ExplainAnalyzeSQL executes a query and renders its plan with the
// observed cardinality next to each estimate.
func ExplainAnalyzeSQL(db *Database, src string) (string, error) {
	stmt, err := sql.Parse(src)
	if err != nil {
		return "", err
	}
	return sql.ExplainAnalyze(db, stmt)
}

// PlannerStats snapshots the SQL planning layer's process-wide counters
// (access paths taken, join reorders applied, cache behavior).
func PlannerStats() SQLPlannerStats { return sql.Stats() }
