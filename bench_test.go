// Benchmarks regenerating the paper's evaluation, one set per experiment
// row of DESIGN.md §3 / EXPERIMENTS.md. Quality numbers are attached via
// b.ReportMetric so `go test -bench` output doubles as the experiment
// record; cmd/questbench prints the same tables in report form.
package quest_test

import (
	"fmt"
	"strings"
	"testing"

	quest "repro"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/eval"
	"repro/internal/fulltext"
	"repro/internal/relational"
	"repro/internal/shard"
	"repro/internal/sql"
	"repro/internal/transport"
	"repro/internal/wrapper"
)

func engineFor(db *quest.Database) *quest.Engine {
	return quest.Open(db, quest.Defaults())
}

// ---------------------------------------------------------------------------
// E1 — schema-based keyword→SQL on growing instances (demo message 1).
// Latency of the full pipeline as the IMDB instance scales; the schema
// graph stays constant while the data graph grows.

func benchmarkE1Scale(b *testing.B, scale int) {
	db := datasets.IMDB(datasets.Config{Seed: 42, Scale: scale})
	eng := engineFor(db)
	g := eval.NewGenerator(db, 7)
	w := g.Generate("imdb", eval.IMDBTemplates()[:3], 3)
	if len(w.Queries) == 0 {
		b.Fatal("empty workload")
	}
	b.ReportMetric(float64(db.TotalRows()), "tuples")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := w.Queries[i%len(w.Queries)]
		if _, err := eng.Search(strings.Join(q.Keywords, " ")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1_SearchIMDB_Scale1(b *testing.B)  { benchmarkE1Scale(b, 1) }
func BenchmarkE1_SearchIMDB_Scale4(b *testing.B)  { benchmarkE1Scale(b, 4) }
func BenchmarkE1_SearchIMDB_Scale16(b *testing.B) { benchmarkE1Scale(b, 16) }

// BenchmarkE1_GraphSizes records schema-graph vs data-graph size: the
// structural scalability argument (schema graph constant, data graph
// linear in the instance).
func BenchmarkE1_GraphSizes(b *testing.B) {
	for _, scale := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("scale%d", scale), func(b *testing.B) {
			db := datasets.IMDB(datasets.Config{Seed: 42, Scale: scale})
			eng := engineFor(db)
			var dgNodes int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dg, err := baseline.NewDataGraph(db)
				if err != nil {
					b.Fatal(err)
				}
				dgNodes = dg.NodeCount()
			}
			b.ReportMetric(float64(eng.Backward().Graph().Len()), "schema-nodes")
			b.ReportMetric(float64(dgNodes), "data-nodes")
		})
	}
}

// BenchmarkE1_StageBreakdown separates forward, backward and combine cost.
func BenchmarkE1_StageBreakdown(b *testing.B) {
	db := datasets.IMDB(datasets.Config{Seed: 42, Scale: 4})
	eng := engineFor(db)
	keywords := []string{"smith", "drama"}
	b.Run("forward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Configurations(keywords); err != nil {
				b.Fatal(err)
			}
		}
	})
	configs, err := eng.Configurations(keywords)
	if err != nil || len(configs) == 0 {
		b.Fatalf("no configurations: %v", err)
	}
	b.Run("backward", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Interpretations(configs); err != nil {
				b.Fatal(err)
			}
		}
	})
	interps, err := eng.Interpretations(configs)
	if err != nil || len(interps) == 0 {
		b.Fatalf("no interpretations: %v", err)
	}
	b.Run("combine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Explain(configs, interps); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// E2 — module disagreement (demo message 2): the a-priori mode, feedback
// mode and final combination produce measurably different rankings.

func BenchmarkE2_ModuleDisagreement(b *testing.B) {
	db := datasets.IMDB(datasets.Config{Seed: 42, Scale: 1})
	eng := engineFor(db)
	g := eval.NewGenerator(db, 7)
	w := g.Generate("imdb", eval.IMDBTemplates(), 3)
	train, test := eval.Split(w)
	eng.AddFeedback(eval.FeedbackFor(train, len(train.Queries)))

	var agree1, jaccard float64
	n := 0
	measure := func() {
		agree1, jaccard = 0, 0
		n = 0
		for _, q := range test.Queries {
			ap := eng.Forward().TopKApriori(q.Keywords, 10)
			fb := eng.Forward().TopKFeedback(q.Keywords, 10)
			if len(ap) == 0 || len(fb) == 0 {
				continue
			}
			n++
			if ap[0].ID() == fb[0].ID() {
				agree1++
			}
			jaccard += jaccardIDs(ap, fb)
		}
		if n > 0 {
			agree1 /= float64(n)
			jaccard /= float64(n)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		measure()
	}
	b.ReportMetric(agree1, "top1-agreement")
	b.ReportMetric(jaccard, "jaccard@10")
}

func jaccardIDs(a, b []*core.Configuration) float64 {
	as := map[string]bool{}
	for _, c := range a {
		as[c.ID()] = true
	}
	inter, union := 0, len(as)
	for _, c := range b {
		if as[c.ID()] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// ---------------------------------------------------------------------------
// E3 — schema-level Steiner vs instance-level baselines (demo message 3).

func benchmarkE3System(b *testing.B, dbName string, system string) {
	cfg := datasets.Config{Seed: 42, Scale: 1}
	var db *quest.Database
	var templates []eval.Template
	switch dbName {
	case "imdb":
		db, templates = datasets.IMDB(cfg), eval.IMDBTemplates()
	case "mondial":
		db, templates = datasets.Mondial(cfg), eval.MondialTemplates()
	case "dblp":
		db, templates = datasets.DBLP(cfg), eval.DBLPTemplates()
	}
	g := eval.NewGenerator(db, 7)
	w := g.Generate(dbName, templates, 3)
	if len(w.Queries) == 0 {
		b.Fatal("empty workload")
	}

	var judge func(q *eval.Query) eval.Judgement
	switch system {
	case "quest":
		eng := engineFor(db)
		judge = func(q *eval.Query) eval.Judgement {
			ex, err := eng.Search(strings.Join(q.Keywords, " "))
			if err != nil {
				return eval.Judgement{Query: q}
			}
			return eval.Judge(q, ex)
		}
	case "banks":
		dg, err := baseline.NewDataGraph(db)
		if err != nil {
			b.Fatal(err)
		}
		ix := fulltext.BuildIndex(db)
		judge = func(q *eval.Query) eval.Judgement {
			answers, err := dg.Search(ix, q.Keywords, 10)
			if err != nil {
				return eval.Judgement{Query: q}
			}
			sets := make([][]string, len(answers))
			for i, a := range answers {
				sets[i] = a.Tables()
			}
			return eval.JudgeTables(q, sets)
		}
	case "discover":
		ix := fulltext.BuildIndex(db)
		d := baseline.NewDiscover(db, ix)
		judge = func(q *eval.Query) eval.Judgement {
			cns, err := d.TopK(q.Keywords, 10, 5)
			if err != nil {
				return eval.Judgement{Query: q}
			}
			sets := make([][]string, len(cns))
			for i, cn := range cns {
				sets[i] = cn.Tables
			}
			return eval.JudgeTables(q, sets)
		}
	}

	var m eval.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		js := make([]eval.Judgement, 0, len(w.Queries))
		for _, q := range w.Queries {
			js = append(js, judge(q))
		}
		m = eval.Aggregate(js)
	}
	b.ReportMetric(m.SuccessAt1, "S@1")
	b.ReportMetric(m.SuccessAt3, "S@3")
	b.ReportMetric(m.MRR, "MRR")
}

func BenchmarkE3_IMDB_QUEST(b *testing.B)       { benchmarkE3System(b, "imdb", "quest") }
func BenchmarkE3_IMDB_BANKS(b *testing.B)       { benchmarkE3System(b, "imdb", "banks") }
func BenchmarkE3_IMDB_DISCOVER(b *testing.B)    { benchmarkE3System(b, "imdb", "discover") }
func BenchmarkE3_Mondial_QUEST(b *testing.B)    { benchmarkE3System(b, "mondial", "quest") }
func BenchmarkE3_Mondial_BANKS(b *testing.B)    { benchmarkE3System(b, "mondial", "banks") }
func BenchmarkE3_Mondial_DISCOVER(b *testing.B) { benchmarkE3System(b, "mondial", "discover") }
func BenchmarkE3_DBLP_QUEST(b *testing.B)       { benchmarkE3System(b, "dblp", "quest") }
func BenchmarkE3_DBLP_BANKS(b *testing.B)       { benchmarkE3System(b, "dblp", "banks") }
func BenchmarkE3_DBLP_DISCOVER(b *testing.B)    { benchmarkE3System(b, "dblp", "discover") }

// ---------------------------------------------------------------------------
// E4 — DS uncertainty adaptation (demo message 4): sweep (OCap, OCf).

func BenchmarkE4_UncertaintySweep(b *testing.B) {
	db := datasets.IMDB(datasets.Config{Seed: 42, Scale: 1})
	g := eval.NewGenerator(db, 7)
	w := g.Generate("imdb", eval.IMDBTemplates(), 4)
	train, test := eval.Split(w)

	for _, setting := range []struct {
		name      string
		ocap, ocf float64
		nFeedback int
	}{
		{"trust-apriori-cold", 0.1, 0.9, 0},
		{"trust-feedback-cold", 0.9, 0.1, 0},
		{"trust-apriori-warm", 0.1, 0.9, 12},
		{"trust-feedback-warm", 0.9, 0.1, 12},
	} {
		b.Run(setting.name, func(b *testing.B) {
			opts := quest.Defaults()
			opts.Uncertainty.OCap = setting.ocap
			opts.Uncertainty.OCf = setting.ocf
			eng := quest.Open(db, opts)
			if setting.nFeedback > 0 {
				eng.AddFeedback(eval.FeedbackFor(train, setting.nFeedback))
			}
			var m eval.Metrics
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m = eval.Aggregate(eval.RunEngine(eng, test))
			}
			b.ReportMetric(m.SuccessAt1, "S@1")
			b.ReportMetric(m.MRR, "MRR")
		})
	}
}

// ---------------------------------------------------------------------------
// E5 — few training data (claim from §1): accuracy vs feedback volume for
// a-priori only, feedback only, and DS-combined.

func BenchmarkE5_FeedbackVolume(b *testing.B) {
	db := datasets.IMDB(datasets.Config{Seed: 42, Scale: 1})
	g := eval.NewGenerator(db, 7)
	w := g.Generate("imdb", eval.IMDBTemplates(), 4)
	train, test := eval.Split(w)

	for _, mode := range []string{"apriori", "feedback", "combined"} {
		for _, nfb := range []int{0, 4, 12} {
			if mode == "apriori" && nfb > 0 {
				continue
			}
			b.Run(fmt.Sprintf("%s-fb%d", mode, nfb), func(b *testing.B) {
				opts := quest.Defaults()
				switch mode {
				case "apriori":
					opts.DisableFeedback = true
				case "feedback":
					opts.DisableApriori = true
				}
				eng := quest.Open(db, opts)
				if nfb > 0 {
					eng.AddFeedback(eval.FeedbackFor(train, nfb))
				}
				var m eval.Metrics
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m = eval.Aggregate(eval.RunEngine(eng, test))
				}
				b.ReportMetric(m.ConfigMRR, "cfgMRR")
				b.ReportMetric(m.MRR, "MRR")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// E6 — Deep Web: metadata-only wrapper vs full access.

func BenchmarkE6_HiddenVsFull(b *testing.B) {
	db := datasets.IMDB(datasets.Config{Seed: 42, Scale: 1})
	g := eval.NewGenerator(db, 7)
	w := g.Generate("imdb", eval.IMDBTemplates()[:4], 3)

	b.Run("full-access", func(b *testing.B) {
		eng := quest.Open(db, quest.Defaults())
		var m eval.Metrics
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m = eval.Aggregate(eval.RunEngine(eng, w))
		}
		b.ReportMetric(m.SuccessAt3, "S@3")
		b.ReportMetric(m.MRR, "MRR")
	})
	b.Run("metadata-only", func(b *testing.B) {
		opts := quest.Defaults()
		opts.UseLike = true
		eng := quest.OpenHidden(db, quest.DefaultThesaurus(), opts)
		var m eval.Metrics
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m = eval.Aggregate(eval.RunEngine(eng, w))
		}
		b.ReportMetric(m.SuccessAt3, "S@3")
		b.ReportMetric(m.MRR, "MRR")
	})
}

// ---------------------------------------------------------------------------
// E8 — ablations: Steiner sub-tree pruning and MI edge weights.

func BenchmarkE8_SteinerPruning(b *testing.B) {
	db := datasets.Mondial(datasets.Config{Seed: 42, Scale: 1})
	for _, dedup := range []bool{true, false} {
		name := "dedup-on"
		if !dedup {
			name = "dedup-off"
		}
		b.Run(name, func(b *testing.B) {
			opts := quest.Defaults()
			opts.Backward.Dedup = dedup
			eng := quest.Open(db, opts)
			var count int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ex, err := eng.Search("italy city river")
				if err != nil {
					b.Fatal(err)
				}
				count = len(ex)
			}
			b.ReportMetric(float64(count), "explanations")
		})
	}
}

func BenchmarkE8_MIWeights(b *testing.B) {
	db := datasets.IMDB(datasets.Config{Seed: 42, Scale: 1})
	g := eval.NewGenerator(db, 7)
	w := g.Generate("imdb", eval.IMDBTemplates()[:4], 3)
	for _, mi := range []bool{true, false} {
		name := "mi-on"
		if !mi {
			name = "mi-off"
		}
		b.Run(name, func(b *testing.B) {
			opts := quest.Defaults()
			opts.Backward.UseMIWeights = mi
			eng := quest.Open(db, opts)
			var emptyRate float64
			var m eval.Metrics
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				js := eval.RunEngine(eng, w)
				m = eval.Aggregate(js)
				emptyRate = emptyTopRate(eng, w)
			}
			b.ReportMetric(m.MRR, "MRR")
			b.ReportMetric(emptyRate, "empty-top1")
		})
	}
}

// emptyTopRate measures how often the top explanation's SQL returns no
// tuples — the failure mode MI weighting is meant to reduce.
func emptyTopRate(eng *quest.Engine, w *eval.Workload) float64 {
	empty, n := 0, 0
	for _, q := range w.Queries {
		ex, err := eng.Search(strings.Join(q.Keywords, " "))
		if err != nil || len(ex) == 0 {
			continue
		}
		n++
		res, err := eng.Execute(ex[0])
		if err != nil || len(res.Rows) == 0 {
			empty++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(empty) / float64(n)
}

// ---------------------------------------------------------------------------
// Component micro-benchmarks (engine building blocks).

func BenchmarkComponent_FullTextIndexBuild(b *testing.B) {
	db := datasets.IMDB(datasets.Config{Seed: 42, Scale: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fulltext.BuildIndex(db)
	}
}

func BenchmarkComponent_ListViterbiK10(b *testing.B) {
	db := datasets.IMDB(datasets.Config{Seed: 42, Scale: 1})
	eng := engineFor(db)
	kws := []string{"smith", "drama", "2008"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Forward().TopKApriori(kws, 10)
	}
}

func BenchmarkComponent_SteinerTopK(b *testing.B) {
	db := datasets.Mondial(datasets.Config{Seed: 42, Scale: 1})
	eng := engineFor(db)
	c := &core.Configuration{
		Keywords: []string{"a", "b", "c"},
		Terms: []core.Term{
			{Kind: core.KindDomain, Table: "city", Column: "name"},
			{Kind: core.KindDomain, Table: "river", Column: "name"},
			{Kind: core.KindDomain, Table: "organization", Column: "name"},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Backward().TopK(c, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComponent_SQLExecutorJoin(b *testing.B) {
	db := datasets.IMDB(datasets.Config{Seed: 42, Scale: 4})
	src := wrapper.NewFullAccessSource(db)
	stmt, err := quest.ParseSQL(`SELECT DISTINCT person.name, movie.title FROM person
		JOIN cast_info ON cast_info.person_id = person.person_id
		JOIN movie ON movie.movie_id = cast_info.movie_id
		WHERE movie.genre MATCH 'drama'`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := src.Execute(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

// shardedSourceFor partitions a fresh IMDB instance and opens the sharded
// execution layer over it.
func shardedSourceFor(b *testing.B, shards int) *quest.ShardedSource {
	b.Helper()
	db := datasets.IMDB(datasets.Config{Seed: 42, Scale: 4})
	parts, err := quest.PartitionDatabase(db, shards)
	if err != nil {
		b.Fatal(err)
	}
	src, err := shard.New(db.Name, parts, shard.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return src
}

// BenchmarkComponent_ShardedJoinGather measures the scatter-gather join
// path: pushed-down fragments on 4 shards, coordinator join/finish.
// Compare against BenchmarkComponent_SQLExecutorJoin (same statement,
// single node).
func BenchmarkComponent_ShardedJoinGather(b *testing.B) {
	src := shardedSourceFor(b, 4)
	stmt, err := quest.ParseSQL(`SELECT DISTINCT person.name, movie.title FROM person
		JOIN cast_info ON cast_info.person_id = person.person_id
		JOIN movie ON movie.movie_id = cast_info.movie_id
		WHERE movie.genre MATCH 'drama'`)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := src.Execute(stmt); err != nil { // warm shard plans/indexes
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := src.Execute(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComponent_ShardedExists measures the validation shape over the
// sharded layer: a join existence probe that gathers pushed-down fragments
// and stops at the coordinator's first witness row.
func BenchmarkComponent_ShardedExists(b *testing.B) {
	src := shardedSourceFor(b, 4)
	stmt, err := quest.ParseSQL(`SELECT person.name FROM person
		JOIN cast_info ON cast_info.person_id = person.person_id
		JOIN movie ON movie.movie_id = cast_info.movie_id
		WHERE movie.genre MATCH 'drama'`)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := src.ExecuteExists(stmt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := src.ExecuteExists(stmt)
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			b.Fatal("probe lost its witness rows")
		}
	}
}

// BenchmarkComponent_ShardedPointLookup measures a PK point query through
// partition pruning: one fragment query against one of four shards.
func BenchmarkComponent_ShardedPointLookup(b *testing.B) {
	src := shardedSourceFor(b, 4)
	stmt, err := quest.ParseSQL("SELECT title FROM movie WHERE movie_id = 100")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := src.Execute(stmt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := src.Execute(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComponent_RemoteGather measures the full wire path of the
// gather: pushed-down join fragments on 4 loopback shards, frames decoded
// at the coordinator. The v1/v2 pair isolates the columnar codec's cost
// and allocation profile against plain row frames on identical results.
func BenchmarkComponent_RemoteGather(b *testing.B) {
	stmt, err := quest.ParseSQL(`SELECT DISTINCT person.name, movie.title FROM person
		JOIN cast_info ON cast_info.person_id = person.person_id
		JOIN movie ON movie.movie_id = cast_info.movie_id
		WHERE movie.genre MATCH 'drama'`)
	if err != nil {
		b.Fatal(err)
	}
	for _, proto := range []struct {
		name string
		ver  int
	}{{"v1-rows", transport.ProtocolV1}, {"v2-columnar", transport.ProtocolV2}} {
		b.Run(proto.name, func(b *testing.B) {
			db := datasets.IMDB(datasets.Config{Seed: 42, Scale: 4})
			parts, err := quest.PartitionDatabase(db, 4)
			if err != nil {
				b.Fatal(err)
			}
			backends := make([]shard.Backend, len(parts))
			for i, p := range parts {
				c, err := transport.NewLoopbackClient(wrapper.NewFullAccessSource(p),
					transport.Options{Protocol: proto.ver})
				if err != nil {
					b.Fatal(err)
				}
				backends[i] = c
			}
			src := shard.NewFromBackends(db.Name, db.Schema, backends,
				shard.Options{AssumeHashRouting: true})
			defer src.Close()
			if _, err := src.Execute(stmt); err != nil { // warm shard plans
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := src.Execute(stmt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Concurrency and caching benchmarks (the perf-PR scorecard): warm vs cold
// query cache, sequential vs parallel backward fan-out, and whole-engine
// parallel throughput over a shared engine.

// benchQueries returns a deterministic workload of keyword strings.
func benchQueries(db *quest.Database, n int) []string {
	g := eval.NewGenerator(db, 7)
	w := g.Generate("imdb", eval.IMDBTemplates(), 3)
	out := make([]string, 0, n)
	for i := 0; len(out) < n; i++ {
		q := w.Queries[i%len(w.Queries)]
		out = append(out, strings.Join(q.Keywords, " "))
	}
	return out
}

func BenchmarkComponent_SearchColdCache(b *testing.B) {
	db := datasets.IMDB(datasets.Config{Seed: 42, Scale: 1})
	opts := quest.Defaults()
	opts.QueryCacheSize = -1     // every Search runs the full pipeline
	opts.Backward.CacheSize = -1 // ...including a real Steiner decode
	eng := quest.Open(db, opts)
	qs := benchQueries(db, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Search(qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComponent_SearchWarmCache(b *testing.B) {
	db := datasets.IMDB(datasets.Config{Seed: 42, Scale: 1})
	eng := quest.Open(db, quest.Defaults())
	qs := benchQueries(db, 8)
	for _, q := range qs { // warm the cache
		if _, err := eng.Search(q); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Search(qs[i%len(qs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComponent_ParallelSearchThroughput drives one shared engine from
// GOMAXPROCS goroutines (b.RunParallel), the "heavy traffic" serving shape.
// The query mix cycles per goroutine so both cache hits and full pipeline
// runs occur.
func BenchmarkComponent_ParallelSearchThroughput(b *testing.B) {
	db := datasets.IMDB(datasets.Config{Seed: 42, Scale: 1})
	eng := quest.Open(db, quest.Defaults())
	qs := benchQueries(db, 16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := eng.Search(qs[i%len(qs)]); err != nil {
				// b.Fatal must not run on a RunParallel worker goroutine.
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkComponent_ParallelSearchThroughputColdCache is the same shape
// with the query cache disabled: it isolates the concurrency win (shared
// engine, parallel pipelines) from the caching win.
func BenchmarkComponent_ParallelSearchThroughputColdCache(b *testing.B) {
	db := datasets.IMDB(datasets.Config{Seed: 42, Scale: 1})
	opts := quest.Defaults()
	opts.QueryCacheSize = -1
	opts.Backward.CacheSize = -1
	eng := quest.Open(db, opts)
	qs := benchQueries(db, 16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := eng.Search(qs[i%len(qs)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkComponent_Interpretations compares the sequential and parallel
// backward fan-out on identical configurations (Steiner memo disabled so
// each TopK really decodes).
func BenchmarkComponent_Interpretations(b *testing.B) {
	db := datasets.Mondial(datasets.Config{Seed: 42, Scale: 1})
	for _, par := range []int{1, 0} { // 0 = GOMAXPROCS
		name := "sequential"
		if par == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			opts := quest.Defaults()
			opts.Parallelism = par
			opts.Backward.CacheSize = -1
			eng := quest.Open(db, opts)
			configs, err := eng.Configurations([]string{"italy", "city", "river"})
			if err != nil || len(configs) == 0 {
				b.Fatalf("no configurations: %v", err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Interpretations(configs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkComponent_SteinerTopKMemoized measures the backward module's
// memo hit path (same terminal set decoded repeatedly).
func BenchmarkComponent_SteinerTopKMemoized(b *testing.B) {
	db := datasets.Mondial(datasets.Config{Seed: 42, Scale: 1})
	eng := engineFor(db)
	c := &core.Configuration{
		Keywords: []string{"a", "b", "c"},
		Terms: []core.Term{
			{Kind: core.KindDomain, Table: "city", Column: "name"},
			{Kind: core.KindDomain, Table: "river", Column: "name"},
			{Kind: core.KindDomain, Table: "organization", Column: "name"},
		},
	}
	if _, err := eng.Backward().TopK(c, 10); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Backward().TopK(c, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComponent_Tokenize measures the zero-allocation tokenizer fast
// path on representative cell text.
func BenchmarkComponent_Tokenize(b *testing.B) {
	inputs := []string{
		"the dark night returns 2008",
		"alice kurosawa",
		"a fairly long movie title with many lowercase ascii tokens in it",
	}
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		fulltext.TokenizeEach(inputs[i%len(inputs)], func(string) { n++ })
	}
	_ = n
}

// ---------------------------------------------------------------------------
// Planner benchmarks (PR 2 scorecard): indexed selection and pushed-down
// joins vs the retained full-scan interpreter, and the existence-only
// validation path vs materializing execution as results grow.

func mustParseSQL(b *testing.B, src string) *sql.SelectStmt {
	b.Helper()
	stmt, err := quest.ParseSQL(src)
	if err != nil {
		b.Fatal(err)
	}
	return stmt
}

// BenchmarkComponent_SQLIndexedSelection: point equality on the primary
// key — the planner probes the hash index, the reference interprets the
// predicate over a full scan.
func BenchmarkComponent_SQLIndexedSelection(b *testing.B) {
	db := datasets.IMDB(datasets.Config{Seed: 42, Scale: 16})
	stmt := mustParseSQL(b, "SELECT title FROM movie WHERE movie_id = 100")
	b.Run("planned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sql.Execute(db, stmt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sql.ExecuteFullScan(db, stmt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkComponent_SQLJoinPushdown: a three-way join whose single-table
// MATCH predicate the planner evaluates below the joins, against the
// reference that joins everything first and filters last.
func BenchmarkComponent_SQLJoinPushdown(b *testing.B) {
	db := datasets.IMDB(datasets.Config{Seed: 42, Scale: 4})
	stmt := mustParseSQL(b, `SELECT DISTINCT person.name, movie.title FROM person
		JOIN cast_info ON cast_info.person_id = person.person_id
		JOIN movie ON movie.movie_id = cast_info.movie_id
		WHERE movie.genre MATCH 'drama'`)
	b.Run("planned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sql.Execute(db, stmt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sql.ExecuteFullScan(db, stmt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkComponent_PruneValidationExists is the PruneEmpty cost model:
// a validation query only needs to know whether any tuple survives. The
// existence path must stay flat as the instance (and the result) grows,
// while materializing execution scales with it.
func BenchmarkComponent_PruneValidationExists(b *testing.B) {
	const src = `SELECT person.name, movie.title FROM person
		JOIN cast_info ON cast_info.person_id = person.person_id
		JOIN movie ON movie.movie_id = cast_info.movie_id`
	for _, scale := range []int{1, 4, 16} {
		db := datasets.IMDB(datasets.Config{Seed: 42, Scale: scale})
		stmt := mustParseSQL(b, src)
		b.Run(fmt.Sprintf("exists-scale%d", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ok, err := sql.Exists(db, stmt)
				if err != nil || !ok {
					b.Fatalf("exists = %v, %v", ok, err)
				}
			}
		})
		b.Run(fmt.Sprintf("materialize-scale%d", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sql.Execute(db, stmt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkComponent_FulltextRows measures the sorted-merge posting
// intersection behind multi-token keyword→row mapping (zero map
// allocations; one slice for the result).
func BenchmarkComponent_FulltextRows(b *testing.B) {
	db := datasets.IMDB(datasets.Config{Seed: 42, Scale: 4})
	ix := fulltext.BuildIndex(db)
	ai := ix.Attribute("movie", "title")
	// Pick the two most frequent title tokens for a worst-case merge.
	terms := ai.Terms()
	if len(terms) < 2 {
		b.Fatal("tiny vocabulary")
	}
	best, second := "", ""
	bn, sn := 0, 0
	for _, t := range terms {
		n := len(ai.Rows(t))
		if n > bn {
			second, sn = best, bn
			best, bn = t, n
		} else if n > sn {
			second, sn = t, n
		}
	}
	kw := best + " " + second
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := ai.Rows(kw); len(rows) == 0 && i == 0 {
			b.Logf("empty intersection for %q", kw)
		}
	}
}

// ---------------------------------------------------------------------------
// Statistics/join-order benchmarks (PR 3 scorecard): the Selinger reorder
// vs the written-order plan on a skewed 3-way join, and the sorted-index /
// IN-union / MATCH-posting access paths vs the full-scan interpreter.

// BenchmarkComponent_SQLJoinReorder: fact table written first, selective
// predicate on the last dimension — the written order joins ~33k rows
// before filtering, the statistics-driven order starts from one person.
func BenchmarkComponent_SQLJoinReorder(b *testing.B) {
	db := datasets.IMDB(datasets.Config{Seed: 42, Scale: 16})
	stmt := mustParseSQL(b, `SELECT person.name, movie.title FROM cast_info
		JOIN movie ON movie.movie_id = cast_info.movie_id
		JOIN person ON person.person_id = cast_info.person_id
		WHERE person.person_id = 33`)
	b.Run("reordered", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sql.Execute(db, stmt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("written-order", func(b *testing.B) {
		sql.SetJoinReorder(false)
		defer sql.SetJoinReorder(true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sql.Execute(db, stmt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkComponent_SQLRangeScan: BETWEEN through the sorted secondary
// index vs the interpreter's per-row comparison over a full scan.
func BenchmarkComponent_SQLRangeScan(b *testing.B) {
	db := datasets.IMDB(datasets.Config{Seed: 42, Scale: 16})
	stmt := mustParseSQL(b, "SELECT title FROM movie WHERE production_year BETWEEN 1972 AND 1972")
	b.Run("planned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sql.Execute(db, stmt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sql.ExecuteFullScan(db, stmt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkComponent_SQLInList: IN over PK literals served by unioned hash
// postings vs the interpreter's per-row list membership test.
func BenchmarkComponent_SQLInList(b *testing.B) {
	db := datasets.IMDB(datasets.Config{Seed: 42, Scale: 16})
	stmt := mustParseSQL(b, "SELECT title FROM movie WHERE movie_id IN (100, 2000, 4000, 4400)")
	b.Run("planned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sql.Execute(db, stmt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sql.ExecuteFullScan(db, stmt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkComponent_MatchPostings: `title MATCH 'kw'` through
// fulltext.AttributeIndex.Rows (scan only the posting rows) vs tokenizing
// every cell of a full scan.
func BenchmarkComponent_MatchPostings(b *testing.B) {
	db := datasets.IMDB(datasets.Config{Seed: 42, Scale: 16})
	stmt := mustParseSQL(b, "SELECT title FROM movie WHERE title MATCH 'winter'")
	b.Run("planned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sql.Execute(db, stmt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sql.ExecuteFullScan(db, stmt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkComponent_MixedReadWrite: the write-then-read unit E17 drives
// over HTTP, without the serving tier — one insert into movie followed by
// a range read whose plan must re-consult that table's statistics and
// whose scan must see the new row in the sorted index. The incremental
// sub-benchmark folds the insert into the statistics delta and the
// index side-run; the rebuild sub-benchmark pays a from-scratch
// statistics build and index sort per iteration.
func BenchmarkComponent_MixedReadWrite(b *testing.B) {
	read := mustParseSQL(b, "SELECT COUNT(*) AS n FROM movie WHERE production_year >= 1980 AND rating >= 5.0")
	run := func(b *testing.B, incremental bool) {
		defer relational.SetIncrementalMaintenance(relational.SetIncrementalMaintenance(incremental))
		db := datasets.IMDB(datasets.Config{Seed: 42, Scale: 20})
		src := wrapper.NewFullAccessSource(db)
		if _, err := src.Execute(read); err != nil { // warm stats and indexes
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := int64(1_000_000 + i)
			row := quest.Row{
				relational.Int(id),
				relational.String_(fmt.Sprintf("Benchmark Movie %d", id)),
				relational.Int(1960 + id%60),
				relational.String_("drama"),
				relational.Float(5.0),
			}
			if err := src.Insert("movie", row); err != nil {
				b.Fatal(err)
			}
			if _, err := src.Execute(read); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("incremental", func(b *testing.B) { run(b, true) })
	b.Run("rebuild", func(b *testing.B) { run(b, false) })
}
