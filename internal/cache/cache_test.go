package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New[string, int](64)
	if _, ok := c.Get("a"); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v; want 1, true", v, ok)
	}
	c.Put("a", 3)
	if v, _ := c.Get("a"); v != 3 {
		t.Fatalf("Put did not overwrite: got %d", v)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after Purge = %d, want 0", c.Len())
	}
}

func TestEvictionLRUOrder(t *testing.T) {
	// Capacity below the shard threshold forces a single shard, making the
	// global recency order exact and testable.
	c := New[int, int](3)
	if len(c.shards) != 1 {
		t.Fatalf("capacity 3 should use 1 shard, got %d", len(c.shards))
	}
	for i := 0; i < 3; i++ {
		c.Put(i, i)
	}
	c.Get(0) // refresh 0: eviction order is now 1, 2, 0
	c.Put(3, 3)
	if _, ok := c.Get(1); ok {
		t.Fatal("1 should have been evicted as LRU")
	}
	for _, k := range []int{0, 2, 3} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("key %d missing", k)
		}
	}
}

func TestNilCacheAlwaysMisses(t *testing.T) {
	var c *LRU[string, int]
	c.Put("a", 1) // must not panic
	if _, ok := c.Get("a"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if c.Len() != 0 {
		t.Fatal("nil cache has nonzero length")
	}
	c.Purge() // must not panic
	if New[string, int](0) != nil || New[string, int](-1) != nil {
		t.Fatal("non-positive capacity should yield a nil cache")
	}
}

// TestSmallCapacityRetainsWorkingSet pins the shard-scaling rule: a small
// cache must hold a working set of minPerShard keys even if every key
// hashes to the same shard (the pre-scaling layout gave capacity-16 caches
// 16 single-entry shards, where two colliding keys evicted each other).
func TestSmallCapacityRetainsWorkingSet(t *testing.T) {
	c := New[int, int](16)
	for i := 0; i < minPerShard; i++ {
		c.Put(i, i)
	}
	for round := 0; round < 100; round++ {
		for i := 0; i < minPerShard; i++ {
			if _, ok := c.Get(i); !ok {
				t.Fatalf("key %d evicted from a 16-entry cache holding %d keys (round %d)", i, minPerShard, round)
			}
		}
	}
}

func TestCapacityBound(t *testing.T) {
	const capacity = 128
	c := New[int, int](capacity)
	for i := 0; i < 10*capacity; i++ {
		c.Put(i, i)
	}
	// Per-shard rounding may admit up to shards-1 extra entries.
	if n := c.Len(); n > capacity+defaultShards {
		t.Fatalf("Len = %d, exceeds capacity bound %d", n, capacity+defaultShards)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[string, int](256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%100)
				c.Put(k, g*1000+i)
				if v, ok := c.Get(k); ok && v < 0 {
					t.Error("corrupted value")
				}
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < 100; i++ {
		c.Get(fmt.Sprintf("k%d", i))
	}
}
