// Package cache provides a generic, mutex-sharded LRU cache used by the
// engine's hot paths: the query→explanations cache, the memoized Steiner
// TopK results and the forward module's emission vectors.
//
// The cache is safe for concurrent use. Keys are partitioned across a
// power-of-two number of shards by hash, so concurrent readers and writers
// on different shards never contend on the same mutex; within a shard a
// plain mutex guards a map plus an intrusive doubly-linked recency list.
// Eviction is per shard (each shard holds capacity/shards entries), which
// approximates global LRU closely enough for the skewed access patterns the
// engine sees while keeping every operation O(1) and lock-local.
package cache

import (
	"hash/maphash"
	"sync"
)

const defaultShards = 16

// LRU is a sharded least-recently-used cache from K to V.
type LRU[K comparable, V any] struct {
	shards []shard[K, V]
	mask   uint64
	seed   maphash.Seed
}

type shard[K comparable, V any] struct {
	mu       sync.Mutex
	entries  map[K]*entry[K, V]
	head     *entry[K, V] // most recently used
	tail     *entry[K, V] // least recently used
	capacity int
}

type entry[K comparable, V any] struct {
	key        K
	value      V
	prev, next *entry[K, V]
}

// minPerShard is the smallest useful shard capacity: below it, two hot
// keys colliding on one shard would evict each other on every Put.
const minPerShard = 4

// New returns an LRU holding up to capacity entries (rounded up so every
// shard holds at least minPerShard). A capacity <= 0 yields a nil cache;
// the nil *LRU is valid and behaves as an always-miss cache, so callers can
// disable caching without branching.
func New[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity <= 0 {
		return nil
	}
	// Halve the shard count (power of two, for the index mask) until every
	// shard holds a useful minimum — small caches get fewer shards rather
	// than thrashing ones.
	n := defaultShards
	for n > 1 && capacity/n < minPerShard {
		n /= 2
	}
	perShard := (capacity + n - 1) / n
	c := &LRU[K, V]{
		shards: make([]shard[K, V], n),
		mask:   uint64(n - 1),
		seed:   maphash.MakeSeed(),
	}
	for i := range c.shards {
		c.shards[i].capacity = perShard
		c.shards[i].entries = make(map[K]*entry[K, V], perShard)
	}
	return c
}

func (c *LRU[K, V]) shardFor(k K) *shard[K, V] {
	return &c.shards[maphash.Comparable(c.seed, k)&c.mask]
}

// Get returns the cached value and whether it was present, refreshing the
// entry's recency.
func (c *LRU[K, V]) Get(k K) (V, bool) {
	if c == nil {
		var zero V
		return zero, false
	}
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok {
		var zero V
		return zero, false
	}
	s.moveToFront(e)
	return e.value, true
}

// Put inserts or refreshes a value, evicting the shard's least recently
// used entry when the shard is full.
func (c *LRU[K, V]) Put(k K, v V) {
	if c == nil {
		return
	}
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[k]; ok {
		e.value = v
		s.moveToFront(e)
		return
	}
	e := &entry[K, V]{key: k, value: v}
	s.entries[k] = e
	s.pushFront(e)
	if len(s.entries) > s.capacity {
		lru := s.tail
		s.unlink(lru)
		delete(s.entries, lru.key)
	}
}

// Len returns the number of cached entries across all shards.
func (c *LRU[K, V]) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Purge drops every entry.
func (c *LRU[K, V]) Purge() {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.entries = make(map[K]*entry[K, V], s.capacity)
		s.head, s.tail = nil, nil
		s.mu.Unlock()
	}
}

func (s *shard[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard[K, V]) moveToFront(e *entry[K, V]) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
