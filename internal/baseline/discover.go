package baseline

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fulltext"
	"repro/internal/relational"
	"repro/internal/sql"
)

// CandidateNetwork is a DISCOVER-style join expression: a connected set of
// tuple sets (tables with keyword conditions) joined along foreign keys.
type CandidateNetwork struct {
	// Tables in join order; Conditions[i] lists the keywords constraining
	// table i ("free" tuple sets have no conditions).
	Tables     []string
	Conditions map[string][]string // table -> keywords
	Joins      []relational.JoinEdge
	// Size is the number of tuple sets (smaller = better, per DISCOVER's
	// ranking).
	Size int
}

// SQL renders the network as an executable statement over the engine.
func (cn *CandidateNetwork) SQL(schema *relational.Schema) (*sql.SelectStmt, error) {
	if len(cn.Tables) == 0 {
		return nil, fmt.Errorf("baseline: empty candidate network")
	}
	stmt := &sql.SelectStmt{Limit: -1, Distinct: true}
	stmt.From = sql.TableRef{Table: cn.Tables[0]}
	joined := map[string]bool{strings.ToLower(cn.Tables[0]): true}
	remaining := append([]relational.JoinEdge(nil), cn.Joins...)
	for len(remaining) > 0 {
		progress := false
		var next []relational.JoinEdge
		for _, e := range remaining {
			ft, tt := strings.ToLower(e.FromTable), strings.ToLower(e.ToTable)
			switch {
			case joined[ft] && !joined[tt]:
				stmt.Joins = append(stmt.Joins, joinOn(e.ToTable, e.ToColumn, e.FromTable, e.FromColumn))
				joined[tt] = true
				progress = true
			case joined[tt] && !joined[ft]:
				stmt.Joins = append(stmt.Joins, joinOn(e.FromTable, e.FromColumn, e.ToTable, e.ToColumn))
				joined[ft] = true
				progress = true
			case joined[ft] && joined[tt]:
				progress = true
			default:
				next = append(next, e)
			}
		}
		if !progress {
			return nil, fmt.Errorf("baseline: disconnected candidate network")
		}
		remaining = next
	}
	// WHERE: every condition keyword must match some text column of its
	// table; DISCOVER uses per-table "tuple sets" from the master index —
	// we approximate with an OR over the table's string columns.
	var where sql.Expr
	for _, tbl := range cn.Tables {
		for _, kw := range cn.Conditions[strings.ToLower(tbl)] {
			var pred sql.Expr
			ts := schema.Table(tbl)
			if ts == nil {
				return nil, fmt.Errorf("baseline: unknown table %s", tbl)
			}
			for _, col := range ts.Columns {
				if col.Type != relational.TypeString {
					continue
				}
				m := &sql.BinaryExpr{
					Op:    sql.OpMatch,
					Left:  &sql.ColumnRef{Table: ts.Name, Column: col.Name},
					Right: &sql.Literal{Value: relational.String_(kw)},
				}
				if pred == nil {
					pred = m
				} else {
					pred = &sql.BinaryExpr{Op: sql.OpOr, Left: pred, Right: m}
				}
			}
			if pred == nil {
				return nil, fmt.Errorf("baseline: table %s has no text column for %q", tbl, kw)
			}
			if where == nil {
				where = pred
			} else {
				where = &sql.BinaryExpr{Op: sql.OpAnd, Left: where, Right: pred}
			}
		}
	}
	stmt.Where = where
	// Project PK + first text column of each conditioned table.
	for _, tbl := range cn.Tables {
		ts := schema.Table(tbl)
		if ts.PrimaryKey != "" {
			stmt.Items = append(stmt.Items, sql.SelectItem{
				Expr: &sql.ColumnRef{Table: ts.Name, Column: ts.PrimaryKey}})
		}
		for _, col := range ts.Columns {
			if col.Type == relational.TypeString {
				stmt.Items = append(stmt.Items, sql.SelectItem{
					Expr: &sql.ColumnRef{Table: ts.Name, Column: col.Name}})
				break
			}
		}
	}
	if len(stmt.Items) == 0 {
		stmt.Items = []sql.SelectItem{{Star: true}}
	}
	return stmt, nil
}

func joinOn(newTable, newCol, boundTable, boundCol string) sql.JoinClause {
	return sql.JoinClause{
		Table: sql.TableRef{Table: newTable},
		On: &sql.BinaryExpr{
			Op:    sql.OpEq,
			Left:  &sql.ColumnRef{Table: newTable, Column: newCol},
			Right: &sql.ColumnRef{Table: boundTable, Column: boundCol},
		},
	}
}

// Discover enumerates candidate networks up to maxSize tuple sets for the
// keyword query: (1) find the tables whose text matches each keyword via
// the master index, (2) grow connected table sets over the schema's FK
// edges until every keyword is covered, (3) rank by network size.
type Discover struct {
	db    *relational.Database
	index *fulltext.Index
}

// NewDiscover returns the comparator over an indexed database.
func NewDiscover(db *relational.Database, index *fulltext.Index) *Discover {
	return &Discover{db: db, index: index}
}

// TopK enumerates up to k candidate networks covering all keywords, ordered
// by size then lexicographically.
func (d *Discover) TopK(keywords []string, k, maxSize int) ([]*CandidateNetwork, error) {
	if len(keywords) == 0 || k <= 0 {
		return nil, nil
	}
	if maxSize <= 0 {
		maxSize = 5
	}
	// Keyword -> tables whose text contains it.
	kwTables := make([][]string, len(keywords))
	for i, kw := range keywords {
		set := map[string]bool{}
		for _, hit := range d.index.SearchAll(kw) {
			set[strings.ToLower(hit.Table)] = true
		}
		if len(set) == 0 {
			return nil, nil
		}
		for t := range set {
			kwTables[i] = append(kwTables[i], t)
		}
		sort.Strings(kwTables[i])
	}

	// Schema adjacency.
	edges := d.db.Schema.JoinEdges()
	adj := map[string][]relational.JoinEdge{}
	for _, e := range edges {
		adj[strings.ToLower(e.FromTable)] = append(adj[strings.ToLower(e.FromTable)], e)
		adj[strings.ToLower(e.ToTable)] = append(adj[strings.ToLower(e.ToTable)], e)
	}

	// Enumerate assignments keyword->table, then connect the assigned
	// tables with a BFS tree over the schema graph.
	var results []*CandidateNetwork
	seen := map[string]bool{}
	var assign func(i int, chosen []string)
	assign = func(i int, chosen []string) {
		if len(results) >= k*4 { // enumerate extra, trim after ranking
			return
		}
		if i == len(keywords) {
			cn := d.connect(chosen, keywords, adj, maxSize)
			if cn == nil {
				return
			}
			key := cnKey(cn)
			if !seen[key] {
				seen[key] = true
				results = append(results, cn)
			}
			return
		}
		for _, t := range kwTables[i] {
			assign(i+1, append(chosen, t))
		}
	}
	assign(0, nil)

	sort.SliceStable(results, func(a, b int) bool {
		if results[a].Size != results[b].Size {
			return results[a].Size < results[b].Size
		}
		return cnKey(results[a]) < cnKey(results[b])
	})
	if len(results) > k {
		results = results[:k]
	}
	return results, nil
}

// connect grows a minimal connected table set containing all chosen tables
// (BFS from the first table through schema edges); nil if impossible
// within maxSize.
func (d *Discover) connect(chosen, keywords []string, adj map[string][]relational.JoinEdge, maxSize int) *CandidateNetwork {
	need := map[string]bool{}
	for _, t := range chosen {
		need[t] = true
	}
	start := chosen[0]
	// BFS tree from start until all needed tables reached.
	type crumb struct {
		table string
		via   relational.JoinEdge
		from  string
	}
	visited := map[string]crumb{start: {table: start}}
	queue := []string{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur] {
			other := strings.ToLower(e.ToTable)
			if other == cur {
				other = strings.ToLower(e.FromTable)
			}
			if _, ok := visited[other]; ok {
				continue
			}
			visited[other] = crumb{table: other, via: e, from: cur}
			queue = append(queue, other)
		}
	}
	tables := map[string]bool{}
	var joins []relational.JoinEdge
	for t := range need {
		c, ok := visited[t]
		if !ok {
			return nil
		}
		for c.table != start {
			if !tables[c.table] {
				tables[c.table] = true
				joins = append(joins, c.via)
			}
			c = visited[c.from]
		}
	}
	tables[start] = true
	if len(tables) > maxSize {
		return nil
	}
	var tlist []string
	for t := range tables {
		tlist = append(tlist, t)
	}
	sort.Strings(tlist)
	// Deterministic join order.
	sort.Slice(joins, func(i, j int) bool {
		a, b := joins[i], joins[j]
		ka := a.FromTable + a.FromColumn + a.ToTable + a.ToColumn
		kb := b.FromTable + b.FromColumn + b.ToTable + b.ToColumn
		return ka < kb
	})
	cond := map[string][]string{}
	for i, kw := range keywords {
		t := chosen[i]
		cond[t] = append(cond[t], kw)
	}
	return &CandidateNetwork{
		Tables:     tlist,
		Conditions: cond,
		Joins:      joins,
		Size:       len(tlist),
	}
}

func cnKey(cn *CandidateNetwork) string {
	var parts []string
	parts = append(parts, strings.Join(cn.Tables, "+"))
	var ct []string
	for t, kws := range cn.Conditions {
		ct = append(ct, t+":"+strings.Join(kws, ","))
	}
	sort.Strings(ct)
	parts = append(parts, ct...)
	return strings.Join(parts, "|")
}
