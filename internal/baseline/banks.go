// Package baseline implements the two classic comparator families QUEST is
// positioned against (paper §1): a graph-based system operating on the
// *instance* — a BANKS-style data graph whose nodes are tuples and whose
// edges are tuple-level foreign-key links, searched with a bidirectional
// Steiner-style expansion — and a schema-based system in the DISCOVER
// lineage that enumerates candidate networks of tuple sets.
//
// Experiment E3 runs these against QUEST's schema-level Steiner approach to
// reproduce the demonstration's third message: schema graphs are orders of
// magnitude smaller than data graphs while remaining effective.
package baseline

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"

	"repro/internal/fulltext"
	"repro/internal/relational"
)

// TupleID identifies one tuple of the database.
type TupleID struct {
	Table string
	Row   int
}

// String implements fmt.Stringer.
func (t TupleID) String() string { return fmt.Sprintf("%s#%d", t.Table, t.Row) }

// DataGraph is the BANKS-style instance graph: one node per tuple, one
// undirected edge per tuple-level FK reference.
type DataGraph struct {
	db *relational.Database

	nodes []TupleID
	index map[TupleID]int
	adj   [][]int
}

// NewDataGraph materializes the data graph of a database. Cost is linear in
// tuples + references — this is exactly the scalability burden the paper's
// schema-level approach avoids.
func NewDataGraph(db *relational.Database) (*DataGraph, error) {
	g := &DataGraph{db: db, index: make(map[TupleID]int)}
	for _, ts := range db.Schema.Tables() {
		t := db.Table(ts.Name)
		for i := 0; i < t.Len(); i++ {
			id := TupleID{Table: strings.ToLower(ts.Name), Row: i}
			g.index[id] = len(g.nodes)
			g.nodes = append(g.nodes, id)
			g.adj = append(g.adj, nil)
		}
	}
	for _, ts := range db.Schema.Tables() {
		t := db.Table(ts.Name)
		for _, fk := range ts.ForeignKeys {
			ord := ts.ColumnIndex(fk.Column)
			ref := db.Table(fk.RefTable)
			refIdx, err := ref.EnsureIndex(fk.RefColumn)
			if err != nil {
				return nil, err
			}
			for ri, row := range t.Rows() {
				v := row[ord]
				if v.IsNull() {
					continue
				}
				from := g.index[TupleID{Table: strings.ToLower(ts.Name), Row: ri}]
				for _, rr := range refIdx[v.Key()] {
					to := g.index[TupleID{Table: strings.ToLower(fk.RefTable), Row: rr}]
					g.adj[from] = append(g.adj[from], to)
					g.adj[to] = append(g.adj[to], from)
				}
			}
		}
	}
	return g, nil
}

// NodeCount returns the number of tuple nodes.
func (g *DataGraph) NodeCount() int { return len(g.nodes) }

// EdgeCount returns the number of undirected edges.
func (g *DataGraph) EdgeCount() int {
	n := 0
	for _, a := range g.adj {
		n += len(a)
	}
	return n / 2
}

// Answer is one result tree of the BANKS search: a connected set of tuples
// covering all keywords, scored by inverse tree size (smaller = better, the
// classic proximity metric).
type Answer struct {
	Tuples []TupleID
	Score  float64
}

// bfsState is a frontier entry of the multi-source expansion.
type bfsState struct {
	node   int
	origin int // keyword index the expansion started from
	dist   int
	seq    int
}

type bfsHeap []bfsState

func (h bfsHeap) Len() int { return len(h) }
func (h bfsHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].seq < h[j].seq
}
func (h bfsHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *bfsHeap) Push(x interface{}) { *h = append(*h, x.(bfsState)) }
func (h *bfsHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Search runs the BANKS-style backward expanding search: every tuple
// containing a keyword seeds an expansion; when some node has been reached
// from every keyword group, the union of the connecting paths is an answer
// tree. Returns up to k answers ordered by increasing size.
func (g *DataGraph) Search(index *fulltext.Index, keywords []string, k int) ([]Answer, error) {
	if len(keywords) == 0 || k <= 0 {
		return nil, nil
	}
	// Seed groups: tuples matching each keyword.
	groups := make([][]int, len(keywords))
	for ki, kw := range keywords {
		seen := map[int]bool{}
		for _, ai := range index.Attributes() {
			rows := ai.Rows(kw)
			for _, r := range rows {
				id := TupleID{Table: strings.ToLower(ai.Table), Row: r}
				if n, ok := g.index[id]; ok && !seen[n] {
					seen[n] = true
					groups[ki] = append(groups[ki], n)
				}
			}
		}
		if len(groups[ki]) == 0 {
			return nil, nil // a keyword with no tuple hit has no answer
		}
		sort.Ints(groups[ki])
	}

	// dist[ki][node], parent[ki][node] for path reconstruction.
	dist := make([]map[int]int, len(keywords))
	parent := make([]map[int]int, len(keywords))
	h := &bfsHeap{}
	seq := 0
	for ki, grp := range groups {
		dist[ki] = make(map[int]int)
		parent[ki] = make(map[int]int)
		for _, n := range grp {
			dist[ki][n] = 0
			parent[ki][n] = -1
			seq++
			heap.Push(h, bfsState{node: n, origin: ki, dist: 0, seq: seq})
		}
	}

	var answers []Answer
	emitted := make(map[string]bool)
	budget := g.NodeCount() * len(keywords) * 4
	for h.Len() > 0 && len(answers) < k && budget > 0 {
		budget--
		st := heap.Pop(h).(bfsState)
		if d, ok := dist[st.origin][st.node]; !ok || d < st.dist {
			continue
		}
		// Root check: reached from all groups?
		complete := true
		total := 0
		for ki := range keywords {
			d, ok := dist[ki][st.node]
			if !ok {
				complete = false
				break
			}
			total += d
		}
		if complete {
			ans := g.buildAnswer(st.node, dist, parent, len(keywords))
			key := answerKey(ans)
			if !emitted[key] {
				emitted[key] = true
				ans.Score = 1 / float64(1+total)
				answers = append(answers, ans)
				if len(answers) >= k {
					break
				}
			}
		}
		for _, nb := range g.adj[st.node] {
			nd := st.dist + 1
			if d, ok := dist[st.origin][nb]; ok && d <= nd {
				continue
			}
			dist[st.origin][nb] = nd
			parent[st.origin][nb] = st.node
			seq++
			heap.Push(h, bfsState{node: nb, origin: st.origin, dist: nd, seq: seq})
		}
	}
	sort.SliceStable(answers, func(i, j int) bool { return answers[i].Score > answers[j].Score })
	return answers, nil
}

func (g *DataGraph) buildAnswer(root int, dist []map[int]int, parent []map[int]int, nk int) Answer {
	set := map[int]bool{root: true}
	for ki := 0; ki < nk; ki++ {
		n := root
		for n != -1 {
			set[n] = true
			p, ok := parent[ki][n]
			if !ok {
				break
			}
			n = p
		}
	}
	nodes := make([]int, 0, len(set))
	for n := range set {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	tuples := make([]TupleID, len(nodes))
	for i, n := range nodes {
		tuples[i] = g.nodes[n]
	}
	return Answer{Tuples: tuples}
}

func answerKey(a Answer) string {
	parts := make([]string, len(a.Tuples))
	for i, t := range a.Tuples {
		parts[i] = t.String()
	}
	return strings.Join(parts, ",")
}

// Tables returns the sorted distinct tables of the answer's tuples —
// comparable to a QUEST explanation's table set for quality scoring.
func (a Answer) Tables() []string {
	set := map[string]bool{}
	for _, t := range a.Tuples {
		set[t.Table] = true
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
