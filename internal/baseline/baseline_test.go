package baseline

import (
	"strings"
	"testing"

	"repro/internal/fulltext"
	"repro/internal/relational"
	"repro/internal/sql"
)

func fixtureDB(t testing.TB) *relational.Database {
	t.Helper()
	s := relational.NewSchema()
	add := func(ts *relational.TableSchema) {
		if err := s.AddTable(ts); err != nil {
			t.Fatal(err)
		}
	}
	add(&relational.TableSchema{
		Name: "movie",
		Columns: []relational.Column{
			{Name: "movie_id", Type: relational.TypeInt, NotNull: true},
			{Name: "title", Type: relational.TypeString},
			{Name: "genre", Type: relational.TypeString},
		},
		PrimaryKey: "movie_id",
	})
	add(&relational.TableSchema{
		Name: "person",
		Columns: []relational.Column{
			{Name: "person_id", Type: relational.TypeInt, NotNull: true},
			{Name: "name", Type: relational.TypeString},
		},
		PrimaryKey: "person_id",
	})
	add(&relational.TableSchema{
		Name: "cast_info",
		Columns: []relational.Column{
			{Name: "cast_id", Type: relational.TypeInt, NotNull: true},
			{Name: "movie_id", Type: relational.TypeInt, NotNull: true},
			{Name: "person_id", Type: relational.TypeInt, NotNull: true},
		},
		PrimaryKey: "cast_id",
		ForeignKeys: []relational.ForeignKey{
			{Column: "movie_id", RefTable: "movie", RefColumn: "movie_id"},
			{Column: "person_id", RefTable: "person", RefColumn: "person_id"},
		},
	})
	db := relational.MustNewDatabase("m", s)
	I, S := relational.Int, relational.String_
	for _, r := range []relational.Row{
		{I(1), S("the dark night"), S("thriller")},
		{I(2), S("silent river"), S("drama")},
	} {
		if err := db.Insert("movie", r); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []relational.Row{
		{I(1), S("alice spielberg")},
		{I(2), S("bob jones")},
	} {
		if err := db.Insert("person", r); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []relational.Row{
		{I(1), I(1), I(1)},
		{I(2), I(2), I(1)},
		{I(3), I(2), I(2)},
	} {
		if err := db.Insert("cast_info", r); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestDataGraphConstruction(t *testing.T) {
	db := fixtureDB(t)
	g, err := NewDataGraph(db)
	if err != nil {
		t.Fatal(err)
	}
	// 2 movies + 2 people + 3 cast rows = 7 nodes.
	if g.NodeCount() != 7 {
		t.Fatalf("nodes = %d, want 7", g.NodeCount())
	}
	// Each cast row links to 1 movie and 1 person: 6 edges.
	if g.EdgeCount() != 6 {
		t.Fatalf("edges = %d, want 6", g.EdgeCount())
	}
}

func TestDataGraphMuchLargerThanSchemaGraph(t *testing.T) {
	// The paper's scalability argument: the data graph grows with the
	// instance while the schema graph stays fixed. 7 tuples already exceed
	// the 3 tables here; real ratios are shown in experiment E1.
	db := fixtureDB(t)
	g, err := NewDataGraph(db)
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeCount() <= len(db.Schema.Tables()) {
		t.Fatal("data graph must exceed table count")
	}
}

func TestBANKSSearchFindsConnectingTree(t *testing.T) {
	db := fixtureDB(t)
	g, err := NewDataGraph(db)
	if err != nil {
		t.Fatal(err)
	}
	ix := fulltext.BuildIndex(db)
	answers, err := g.Search(ix, []string{"spielberg", "drama"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("no answers")
	}
	top := answers[0]
	tables := top.Tables()
	// Must connect person (spielberg) to movie (drama) through cast_info.
	want := []string{"cast_info", "movie", "person"}
	if len(tables) != 3 {
		t.Fatalf("tables = %v, want %v", tables, want)
	}
	for i := range want {
		if tables[i] != want[i] {
			t.Fatalf("tables = %v, want %v", tables, want)
		}
	}
	for i := 1; i < len(answers); i++ {
		if answers[i].Score > answers[i-1].Score+1e-12 {
			t.Fatal("answers must be sorted by descending score")
		}
	}
}

func TestBANKSSearchSingleKeyword(t *testing.T) {
	db := fixtureDB(t)
	g, _ := NewDataGraph(db)
	ix := fulltext.BuildIndex(db)
	answers, err := g.Search(ix, []string{"drama"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("single keyword must return the matching tuples")
	}
	if len(answers[0].Tuples) != 1 {
		t.Fatalf("single-keyword answer = %v", answers[0].Tuples)
	}
}

func TestBANKSSearchNoHit(t *testing.T) {
	db := fixtureDB(t)
	g, _ := NewDataGraph(db)
	ix := fulltext.BuildIndex(db)
	answers, err := g.Search(ix, []string{"zzzz"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 0 {
		t.Fatalf("impossible keyword returned %d answers", len(answers))
	}
	// k=0 and empty keywords.
	if a, _ := g.Search(ix, nil, 3); a != nil {
		t.Fatal("empty keywords must return nil")
	}
	if a, _ := g.Search(ix, []string{"drama"}, 0); a != nil {
		t.Fatal("k=0 must return nil")
	}
}

func TestDiscoverEnumeratesNetworks(t *testing.T) {
	db := fixtureDB(t)
	ix := fulltext.BuildIndex(db)
	d := NewDiscover(db, ix)
	cns, err := d.TopK([]string{"spielberg", "drama"}, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cns) == 0 {
		t.Fatal("no candidate networks")
	}
	// Smallest network must come first.
	for i := 1; i < len(cns); i++ {
		if cns[i].Size < cns[i-1].Size {
			t.Fatal("networks must be ordered by size")
		}
	}
	// The person+cast+movie network must exist.
	found := false
	for _, cn := range cns {
		key := strings.Join(cn.Tables, "+")
		if key == "cast_info+movie+person" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected 3-table network, got %v", cns)
	}
}

func TestDiscoverNetworksExecute(t *testing.T) {
	db := fixtureDB(t)
	ix := fulltext.BuildIndex(db)
	d := NewDiscover(db, ix)
	cns, err := d.TopK([]string{"spielberg", "drama"}, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	anyRows := false
	for _, cn := range cns {
		stmt, err := cn.SQL(db.Schema)
		if err != nil {
			t.Fatalf("network %v: %v", cn.Tables, err)
		}
		res, err := sql.Execute(db, stmt)
		if err != nil {
			t.Fatalf("network SQL failed: %v\n%s", err, stmt.SQL())
		}
		if len(res.Rows) > 0 {
			anyRows = true
		}
	}
	if !anyRows {
		t.Fatal("no candidate network returned tuples (spielberg acted in a drama)")
	}
}

func TestDiscoverNoHitKeyword(t *testing.T) {
	db := fixtureDB(t)
	ix := fulltext.BuildIndex(db)
	d := NewDiscover(db, ix)
	cns, err := d.TopK([]string{"zzzz", "drama"}, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cns) != 0 {
		t.Fatalf("networks for impossible keyword: %v", cns)
	}
}

func TestDiscoverMaxSizeBound(t *testing.T) {
	db := fixtureDB(t)
	ix := fulltext.BuildIndex(db)
	d := NewDiscover(db, ix)
	cns, err := d.TopK([]string{"spielberg", "drama"}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, cn := range cns {
		if cn.Size > 1 {
			t.Fatalf("network exceeds maxSize: %v", cn.Tables)
		}
	}
}

func TestTupleIDString(t *testing.T) {
	id := TupleID{Table: "movie", Row: 3}
	if id.String() != "movie#3" {
		t.Fatalf("String() = %q", id.String())
	}
}
