package fulltext

import "math"

// exactSum accumulates float64 values with full precision (Shewchuk's
// error-free transformation, as used by Python's math.fsum): Add maintains
// a list of non-overlapping partials whose mathematical sum is exactly the
// sum of everything added, and Total rounds that exact sum once. The
// result is the float64 nearest the true sum, so it does not depend on the
// order values were added — which is what lets BuildIndex sum raw scores
// straight off a map without sorting the vocabulary first while staying
// bit-identical across runs.
//
// The zero value is an empty sum. Inputs must be finite (the index only
// sums finite TF-IDF weights); intermediate overflow is not handled.
type exactSum struct {
	partials []float64
}

// Add folds x into the running sum exactly.
func (s *exactSum) Add(x float64) {
	i := 0
	for _, y := range s.partials {
		if math.Abs(x) < math.Abs(y) {
			x, y = y, x
		}
		hi := x + y
		lo := y - (hi - x)
		if lo != 0 {
			s.partials[i] = lo
			i++
		}
		x = hi
	}
	s.partials = append(s.partials[:i], x)
}

// Total returns the correctly rounded sum of everything added so far.
// The partials are summed from largest to smallest magnitude; when the
// first inexact addition is a round-to-even halfway case, the sign of the
// next partial decides the direction, exactly as in CPython's fsum.
func (s *exactSum) Total() float64 {
	p := s.partials
	n := len(p)
	if n == 0 {
		return 0
	}
	n--
	total := p[n]
	for n > 0 {
		n--
		x := total
		y := p[n]
		total = x + y
		yr := total - x
		lo := y - yr
		if lo != 0 {
			// Inexact: total is within half an ulp of the true sum. On an
			// exact halfway case, nudge toward the remaining partials'
			// side (they all share lo's sign ordering by construction).
			if n > 0 && ((lo < 0) == (p[n-1] < 0)) {
				y = lo * 2
				x = total + y
				if y == x-total {
					total = x
				}
			}
			break
		}
	}
	return total
}
