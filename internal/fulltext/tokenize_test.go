package fulltext

import (
	"reflect"
	"testing"
)

// TestTokenizeFastPathMatchesSlowPath pins the ASCII fast path to the
// Unicode reference tokenizer for inputs spanning every branch: pure
// lower-case, upper-case, digits, separators, non-ASCII at token start and
// mid-token.
func TestTokenizeFastPathMatchesSlowPath(t *testing.T) {
	cases := []string{
		"",
		"   ",
		"hello",
		"hello world",
		"Hello World",
		"UPPER lower MiXeD",
		"the dark night 2008",
		"comma,separated;stuff!",
		"trailing space ",
		" leading",
		"a",
		"1994",
		"café crème",      // non-ASCII inside tokens
		"naïve approach",  // non-ASCII mid-token after ASCII start
		"ASCII then café", // fast path handing over to slow path
		"ÉCOLE",           // upper-case non-ASCII
		"日本語 text",        // non-Latin script
		"x²y",             // superscript is not a letter/digit per unicode
		"don't stop",      // apostrophe splits
		"a-b_c.d",         // punctuation separators
	}
	for _, s := range cases {
		var slow []string
		tokenizeRunes(s, func(tok string) { slow = append(slow, tok) })
		fast := Tokenize(s)
		if !reflect.DeepEqual(fast, slow) {
			t.Errorf("Tokenize(%q) = %v, slow path = %v", s, fast, slow)
		}
	}
}

// TestTokenizeFastPathZeroAlloc asserts the lower-case ASCII path allocates
// only the closure bookkeeping, never per-token copies.
func TestTokenizeFastPathZeroAlloc(t *testing.T) {
	s := "silent river drama 1994"
	n := 0
	allocs := testing.AllocsPerRun(100, func() {
		n = 0
		TokenizeEach(s, func(tok string) { n++ })
	})
	if n != 4 {
		t.Fatalf("token count = %d, want 4", n)
	}
	if allocs > 0 {
		t.Errorf("TokenizeEach allocated %.1f times per run on lower-case ASCII; want 0", allocs)
	}
}

func TestTermsCachedAndInvalidated(t *testing.T) {
	ai := &AttributeIndex{Table: "t", Column: "c", postings: map[string]*Posting{}}
	ai.addToken("beta", 0)
	ai.addToken("alpha", 0)
	got := ai.Terms()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("Terms = %v, want [alpha beta]", got)
	}
	// Cached: same backing array on a second call.
	again := ai.Terms()
	if &again[0] != &got[0] {
		t.Error("Terms rebuilt despite unchanged vocabulary")
	}
	// New term invalidates.
	ai.addToken("gamma", 1)
	after := ai.Terms()
	if len(after) != 3 || after[2] != "gamma" {
		t.Fatalf("Terms after mutation = %v, want [alpha beta gamma]", after)
	}
	// Repeat occurrences of a known term must NOT invalidate.
	before := ai.Terms()
	ai.addToken("gamma", 2)
	if &ai.Terms()[0] != &before[0] {
		t.Error("Terms rebuilt on a non-vocabulary mutation")
	}
}

func TestAddTokenRowOrdinalsDeduped(t *testing.T) {
	ai := &AttributeIndex{Table: "t", Column: "c", postings: map[string]*Posting{}}
	ai.addToken("dup", 3)
	ai.addToken("dup", 3)
	ai.addToken("dup", 7)
	p := ai.postings["dup"]
	if p.TermFreq != 3 {
		t.Fatalf("TermFreq = %d, want 3", p.TermFreq)
	}
	if len(p.RowOrdinals) != 2 || p.RowOrdinals[0] != 3 || p.RowOrdinals[1] != 7 {
		t.Fatalf("RowOrdinals = %v, want [3 7]", p.RowOrdinals)
	}
}
