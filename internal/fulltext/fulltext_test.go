package fulltext

import (
	"math"
	"testing"

	"repro/internal/relational"
)

func indexedDB(t *testing.T) (*relational.Database, *Index) {
	t.Helper()
	s := relational.NewSchema()
	if err := s.AddTable(&relational.TableSchema{
		Name: "movie",
		Columns: []relational.Column{
			{Name: "movie_id", Type: relational.TypeInt, NotNull: true},
			{Name: "title", Type: relational.TypeString},
			{Name: "year", Type: relational.TypeInt},
		},
		PrimaryKey: "movie_id",
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTable(&relational.TableSchema{
		Name: "person",
		Columns: []relational.Column{
			{Name: "person_id", Type: relational.TypeInt, NotNull: true},
			{Name: "name", Type: relational.TypeString},
		},
		PrimaryKey: "person_id",
	}); err != nil {
		t.Fatal(err)
	}
	db := relational.MustNewDatabase("t", s)
	I, S := relational.Int, relational.String_
	rows := []relational.Row{
		{I(1), S("the dark night"), I(2008)},
		{I(2), S("dark river"), I(1994)},
		{I(3), S("silent night"), I(1994)},
		{I(4), S("golden dream"), relational.Null()},
	}
	for _, r := range rows {
		if err := db.Insert("movie", r); err != nil {
			t.Fatal(err)
		}
	}
	people := []relational.Row{
		{I(1), S("alice dark")},
		{I(2), S("bob night")},
	}
	for _, r := range people {
		if err := db.Insert("person", r); err != nil {
			t.Fatal(err)
		}
	}
	return db, BuildIndex(db)
}

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"The Dark-Night", []string{"the", "dark", "night"}},
		{"  ", nil},
		{"1994", []string{"1994"}},
		{"a,b;c", []string{"a", "b", "c"}},
	}
	for _, tt := range tests {
		got := Tokenize(tt.in)
		if len(got) != len(tt.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("Tokenize(%q)[%d] = %q, want %q", tt.in, i, got[i], tt.want[i])
			}
		}
	}
}

func TestScorePositiveForPresentTerms(t *testing.T) {
	_, ix := indexedDB(t)
	if s := ix.Score("movie", "title", "dark"); s <= 0 {
		t.Fatalf("Score(movie.title, dark) = %v, want > 0", s)
	}
	if s := ix.Score("movie", "title", "zzz"); s != 0 {
		t.Fatalf("Score of absent term = %v, want 0", s)
	}
	if s := ix.Score("nope", "title", "dark"); s != 0 {
		t.Fatalf("Score on unknown attribute = %v, want 0", s)
	}
}

func TestScoreNumericColumnsViaRendering(t *testing.T) {
	_, ix := indexedDB(t)
	if s := ix.Score("movie", "year", "1994"); s <= 0 {
		t.Fatalf("year 1994 must be findable, got %v", s)
	}
}

func TestPerAttributeNormalization(t *testing.T) {
	_, ix := indexedDB(t)
	// Sum of scores over the attribute's vocabulary must be ~1 (the
	// paper's setup-phase coefficient).
	ai := ix.Attribute("movie", "title")
	total := 0.0
	for _, term := range ai.Terms() {
		total += ai.Score(term)
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("vocabulary scores sum to %v, want 1", total)
	}
}

func TestSelectiveTermScoresHigherThanCommon(t *testing.T) {
	_, ix := indexedDB(t)
	ai := ix.Attribute("movie", "title")
	// "golden" appears once; "dark" twice, "night" twice. The rarer term
	// must have at least as high an idf-driven score per occurrence.
	golden := ai.Score("golden")
	dark := ai.Score("dark")
	if golden <= 0 || dark <= 0 {
		t.Fatal("both terms must score positive")
	}
	if golden < dark*0.5 {
		t.Fatalf("selective term crushed: golden=%v dark=%v", golden, dark)
	}
}

func TestMultiTokenConjunctive(t *testing.T) {
	_, ix := indexedDB(t)
	ai := ix.Attribute("movie", "title")
	if s := ai.Score("dark night"); s <= 0 {
		t.Fatalf("conjunctive score = %v", s)
	}
	if s := ai.Score("dark zzz"); s != 0 {
		t.Fatalf("partially absent multi-token must be 0, got %v", s)
	}
	if s := ai.Score(""); s != 0 {
		t.Fatalf("empty keyword = %v", s)
	}
}

func TestRows(t *testing.T) {
	_, ix := indexedDB(t)
	ai := ix.Attribute("movie", "title")
	rows := ai.Rows("dark")
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 1 {
		t.Fatalf("Rows(dark) = %v, want [0 1]", rows)
	}
	rows = ai.Rows("dark night")
	if len(rows) != 1 || rows[0] != 0 {
		t.Fatalf("Rows(dark night) = %v, want [0]", rows)
	}
	if got := ai.Rows("zzz"); got != nil {
		t.Fatalf("Rows(zzz) = %v", got)
	}
}

func TestSearchAllOrderingAndDeterminism(t *testing.T) {
	_, ix := indexedDB(t)
	hits1 := ix.SearchAll("dark")
	hits2 := ix.SearchAll("dark")
	if len(hits1) == 0 {
		t.Fatal("no hits")
	}
	// movie.title (2 occurrences) and person.name (1) both contain "dark".
	foundTitle, foundName := false, false
	for _, h := range hits1 {
		if h.Table == "movie" && h.Column == "title" {
			foundTitle = true
		}
		if h.Table == "person" && h.Column == "name" {
			foundName = true
		}
	}
	if !foundTitle || !foundName {
		t.Fatalf("hits = %+v", hits1)
	}
	for i := range hits1 {
		if hits1[i] != hits2[i] {
			t.Fatal("SearchAll must be deterministic")
		}
	}
	for i := 1; i < len(hits1); i++ {
		if hits1[i].Score > hits1[i-1].Score {
			t.Fatal("SearchAll must be sorted by descending score")
		}
	}
}

func TestDocCountSkipsNulls(t *testing.T) {
	_, ix := indexedDB(t)
	ai := ix.Attribute("movie", "year")
	if ai.DocCount() != 3 {
		t.Fatalf("DocCount = %d, want 3 (one NULL year)", ai.DocCount())
	}
}

func TestAttributesEnumeration(t *testing.T) {
	_, ix := indexedDB(t)
	attrs := ix.Attributes()
	if len(attrs) != 5 {
		t.Fatalf("attributes = %d, want 5", len(attrs))
	}
	if attrs[0].Table != "movie" || attrs[0].Column != "movie_id" {
		t.Fatalf("first attribute = %s.%s, want schema order", attrs[0].Table, attrs[0].Column)
	}
}

func TestEmptyDatabase(t *testing.T) {
	s := relational.NewSchema()
	if err := s.AddTable(&relational.TableSchema{
		Name:    "empty",
		Columns: []relational.Column{{Name: "x", Type: relational.TypeString}},
	}); err != nil {
		t.Fatal(err)
	}
	db := relational.MustNewDatabase("e", s)
	ix := BuildIndex(db)
	if s := ix.Score("empty", "x", "anything"); s != 0 {
		t.Fatalf("empty index score = %v", s)
	}
	ai := ix.Attribute("empty", "x")
	if ai.VocabularySize() != 0 || ai.DocCount() != 0 {
		t.Fatal("empty attribute index must be empty")
	}
}
