// Package fulltext implements per-attribute inverted indexes with TF-IDF
// relevance scoring over the relational engine.
//
// This is the "search function over full text indexes provided by the DBMS"
// that the paper's forward module calls to obtain, for a keyword and a
// database attribute, a relevance value it then normalizes into an HMM
// emission probability. The setup phase computes one normalization
// coefficient per attribute so that, per attribute, scores sum to at most 1
// across the vocabulary — exactly the paper's "coefficient (different for
// each attribute) computed in the setup phase".
package fulltext

import (
	"math"
	"sort"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/relational"
)

// Posting records the occurrences of one term inside one attribute.
type Posting struct {
	RowOrdinals []int // rows of the owning table that contain the term
	TermFreq    int   // total occurrences across those rows
}

// AttributeIndex is the inverted index of a single (table, column) pair.
type AttributeIndex struct {
	Table  string
	Column string

	postings map[string]*Posting
	docCount int     // rows with a non-NULL value
	totalLen int     // total token count
	normCoef float64 // setup-phase normalization coefficient

	// terms caches the sorted vocabulary; addToken invalidates it whenever
	// a new term enters the index.
	terms []string
}

// DocCount returns the number of indexed (non-NULL) cells.
func (ai *AttributeIndex) DocCount() int { return ai.docCount }

// VocabularySize returns the number of distinct terms.
func (ai *AttributeIndex) VocabularySize() int { return len(ai.postings) }

// Terms returns the sorted vocabulary (deterministic iteration helper).
// The slice is cached between calls and rebuilt only after the vocabulary
// changes; callers must treat it as read-only.
func (ai *AttributeIndex) Terms() []string {
	if ai.terms == nil {
		out := make([]string, 0, len(ai.postings))
		for t := range ai.postings {
			out = append(out, t)
		}
		sort.Strings(out)
		ai.terms = out
	}
	return ai.terms
}

// addToken records one occurrence of tok on row ri. RowOrdinals stays
// sorted and deduplicated because BuildIndex feeds rows in order; the last
// recorded ordinal therefore tells whether ri is already present.
func (ai *AttributeIndex) addToken(tok string, ri int) {
	p := ai.postings[tok]
	if p == nil {
		p = &Posting{}
		ai.postings[tok] = p
		ai.terms = nil // vocabulary changed: invalidate the sorted cache
	}
	p.TermFreq++
	if n := len(p.RowOrdinals); n == 0 || p.RowOrdinals[n-1] != ri {
		p.RowOrdinals = append(p.RowOrdinals, ri)
	}
}

// Index is the database-wide full-text index: one AttributeIndex per text
// (or textual-rendering) column.
type Index struct {
	attrs map[string]*AttributeIndex // key: lower(table) + "." + lower(column)
	order []string
}

// Tokenize lower-cases and splits text into alphanumeric tokens. It is the
// single tokenizer shared with the SQL MATCH operator semantics.
func Tokenize(s string) []string {
	var out []string
	TokenizeEach(s, func(tok string) { out = append(out, tok) })
	return out
}

// TokenizeEach streams the tokens of s to fn without materializing a slice.
// It is the zero-allocation fast path behind Tokenize, index construction
// and relevance scoring (which feeds the forward module's HMM emissions):
// for runs of ASCII that are already lower-case, the emitted token is a
// substring of s and no bytes are copied. Inputs containing upper-case
// ASCII pay one strings.ToLower per token; inputs containing non-ASCII
// runes fall back to the rune-by-rune tokenizer from their first non-ASCII
// byte onward.
func TokenizeEach(s string, fn func(string)) {
	i := 0
	for i < len(s) {
		c := s[i]
		if c >= utf8.RuneSelf {
			tokenizeRunes(s[i:], fn)
			return
		}
		if !isASCIIAlnum(c) {
			i++
			continue
		}
		// Token start: scan the maximal ASCII alphanumeric run.
		j := i
		hasUpper := false
		for j < len(s) {
			cj := s[j]
			if cj >= utf8.RuneSelf {
				// Non-ASCII continues this token: re-tokenize from the
				// token's start with full Unicode semantics.
				tokenizeRunes(s[i:], fn)
				return
			}
			if !isASCIIAlnum(cj) {
				break
			}
			if 'A' <= cj && cj <= 'Z' {
				hasUpper = true
			}
			j++
		}
		if hasUpper {
			fn(strings.ToLower(s[i:j]))
		} else {
			fn(s[i:j])
		}
		i = j
	}
}

func isASCIIAlnum(c byte) bool {
	return 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9'
}

// tokenizeRunes is the Unicode-correct slow path of TokenizeEach.
func tokenizeRunes(s string, fn func(string)) {
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			fn(cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
}

// BuildIndex scans every table of the database and indexes every column.
// Non-string columns are indexed through their textual rendering, so
// keywords like "1994" can hit integer year attributes (the paper maps
// keywords to attribute domains regardless of type).
func BuildIndex(db *relational.Database) *Index {
	ix := &Index{attrs: make(map[string]*AttributeIndex)}
	for _, ts := range db.Schema.Tables() {
		t := db.Table(ts.Name)
		for ci, col := range ts.Columns {
			ai := IndexAttribute(t, ci)
			key := attrKey(ts.Name, col.Name)
			ix.attrs[key] = ai
			ix.order = append(ix.order, key)
		}
	}
	return ix
}

// IndexAttribute builds the inverted index of a single column (by ordinal)
// of a populated table. It is the unit of work behind BuildIndex, exported
// so consumers that need postings for one attribute only — the SQL
// planner's MATCH access path — can build it lazily instead of indexing the
// whole database.
func IndexAttribute(t *relational.Table, ord int) *AttributeIndex {
	ai := &AttributeIndex{
		Table:    t.Schema.Name,
		Column:   t.Schema.Columns[ord].Name,
		postings: make(map[string]*Posting),
	}
	for ri, row := range t.Rows() {
		v := row[ord]
		if v.IsNull() {
			continue
		}
		n := 0
		TokenizeEach(v.AsString(), func(tok string) {
			n++
			ai.addToken(tok, ri)
		})
		if n > 0 {
			ai.docCount++
			ai.totalLen += n
		}
	}
	ai.computeNorm()
	return ai
}

func attrKey(table, column string) string {
	return strings.ToLower(table) + "." + strings.ToLower(column)
}

// computeNorm derives the per-attribute normalization coefficient: the sum
// of raw scores over the vocabulary, so that normalized scores form a
// sub-probability distribution per attribute. The sum runs straight off
// the postings map through an exact accumulator (exactSum), whose result
// is the correctly rounded true sum and therefore independent of map
// iteration order — bit-identical across runs without forcing the
// Terms() sort per attribute during BuildIndex.
func (ai *AttributeIndex) computeNorm() {
	var sum exactSum
	for term := range ai.postings {
		sum.Add(ai.rawScore(term))
	}
	ai.normCoef = sum.Total()
}

// rawScore is a TF-IDF style weight of term inside the attribute: term
// frequency damped by log, scaled by how selective the term is among the
// attribute's rows.
func (ai *AttributeIndex) rawScore(term string) float64 {
	p := ai.postings[term]
	if p == nil || ai.docCount == 0 {
		return 0
	}
	tf := 1 + math.Log(float64(p.TermFreq))
	idf := math.Log(1 + float64(ai.docCount)/float64(len(p.RowOrdinals)))
	return tf * idf
}

// Score returns the normalized relevance of keyword for the attribute; the
// values for a fixed attribute sum to at most 1 over all keywords. Multi-token
// keywords score as the product of per-token scores (conjunctive semantics).
func (ix *Index) Score(table, column, keyword string) float64 {
	ai := ix.attrs[attrKey(table, column)]
	if ai == nil {
		return 0
	}
	return ai.Score(keyword)
}

// Score is the per-attribute normalized relevance of keyword. This is the
// hot inner loop of emission-vector construction (one call per attribute
// per keyword), so it streams tokens instead of allocating a slice.
func (ai *AttributeIndex) Score(keyword string) float64 {
	if ai.normCoef == 0 {
		return 0
	}
	score := 1.0
	n := 0
	zero := false
	TokenizeEach(keyword, func(t string) {
		n++
		if zero {
			return
		}
		s := ai.rawScore(t) / ai.normCoef
		if s == 0 {
			zero = true
			return
		}
		score *= s
	})
	if n == 0 || zero {
		return 0
	}
	return score
}

// Rows returns the row ordinals of the attribute's table whose cell
// contains every token of the keyword. Postings are kept sorted by
// construction, so the multi-token conjunction is a sorted-slice merge:
// one allocation for the result (a copy of the smallest posting list, then
// intersected in place), no maps, no final sort.
func (ai *AttributeIndex) Rows(keyword string) []int {
	var lists [][]int
	missing := false
	TokenizeEach(keyword, func(t string) {
		if missing {
			return
		}
		p := ai.postings[t]
		if p == nil {
			missing = true
			return
		}
		lists = append(lists, p.RowOrdinals)
	})
	if missing || len(lists) == 0 {
		return nil
	}
	// Start from the smallest list: the intersection can never be larger,
	// and every merge after the first only shrinks the candidate set.
	smallest := 0
	for i, l := range lists {
		if len(l) < len(lists[smallest]) {
			smallest = i
		}
	}
	out := append([]int(nil), lists[smallest]...)
	for i, l := range lists {
		if i == smallest {
			continue
		}
		out = intersectSorted(out, l)
		if len(out) == 0 {
			return nil
		}
	}
	return out
}

// intersectSorted intersects two ascending slices, writing the result into
// a's prefix (the write index never passes the read index).
func intersectSorted(a, b []int) []int {
	k, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			a[k] = a[i]
			k++
			i++
			j++
		}
	}
	return a[:k]
}

// Attribute returns the index of one (table, column) pair, or nil.
func (ix *Index) Attribute(table, column string) *AttributeIndex {
	return ix.attrs[attrKey(table, column)]
}

// Attributes returns all attribute indexes in schema order.
func (ix *Index) Attributes() []*AttributeIndex {
	out := make([]*AttributeIndex, 0, len(ix.order))
	for _, k := range ix.order {
		out = append(out, ix.attrs[k])
	}
	return out
}

// AttrScore pairs an attribute with a relevance score.
type AttrScore struct {
	Table  string
	Column string
	Score  float64
}

// SearchAll scores a keyword against every indexed attribute and returns
// the non-zero hits sorted by descending score (ties broken by name so the
// result is deterministic).
func (ix *Index) SearchAll(keyword string) []AttrScore {
	var out []AttrScore
	for _, k := range ix.order {
		ai := ix.attrs[k]
		if s := ai.Score(keyword); s > 0 {
			out = append(out, AttrScore{Table: ai.Table, Column: ai.Column, Score: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Column < out[j].Column
	})
	return out
}
