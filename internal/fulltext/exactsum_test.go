package fulltext

import (
	"math"
	"math/rand"
	"testing"
)

// TestExactSumOrderIndependent is the property computeNorm relies on: the
// rounded sum must be bit-identical for every permutation of the inputs,
// which is what lets it iterate the postings map (randomized order) rather
// than the sorted vocabulary.
func TestExactSumOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	values := make([]float64, 200)
	for i := range values {
		// Wildly mixed magnitudes, like TF-IDF weights are not — if the
		// sum is order-stable here, score sums are trivially stable.
		values[i] = rng.Float64() * math.Pow(10, float64(rng.Intn(30)-15))
	}
	ref := math.NaN()
	for trial := 0; trial < 50; trial++ {
		rng.Shuffle(len(values), func(i, j int) { values[i], values[j] = values[j], values[i] })
		var s exactSum
		for _, v := range values {
			s.Add(v)
		}
		got := s.Total()
		if trial == 0 {
			ref = got
			continue
		}
		if math.Float64bits(got) != math.Float64bits(ref) {
			t.Fatalf("trial %d: sum %x differs from reference %x", trial,
				math.Float64bits(got), math.Float64bits(ref))
		}
	}
}

// TestExactSumAccuracy checks exactness on sums a naive accumulator gets
// wrong.
func TestExactSumAccuracy(t *testing.T) {
	var s exactSum
	for i := 0; i < 10; i++ {
		s.Add(0.1)
	}
	if got := s.Total(); got != 1.0 {
		t.Errorf("sum of ten 0.1 = %v, want exactly 1.0", got)
	}

	s = exactSum{}
	for _, v := range []float64{1, 1e100, 1, -1e100} {
		s.Add(v)
	}
	if got := s.Total(); got != 2.0 {
		t.Errorf("1 + 1e100 + 1 - 1e100 = %v, want exactly 2.0", got)
	}

	s = exactSum{}
	if got := s.Total(); got != 0 {
		t.Errorf("empty sum = %v, want 0", got)
	}
}

// TestRowsSortedMerge pins the merge-based intersection to the seed
// semantics: sorted output, conjunctive multi-token matching, nil on any
// unknown token, duplicate tokens harmless.
func TestRowsSortedMerge(t *testing.T) {
	ai := &AttributeIndex{postings: map[string]*Posting{
		"dark":  {RowOrdinals: []int{0, 2, 5, 9}},
		"river": {RowOrdinals: []int{2, 3, 5, 7}},
		"night": {RowOrdinals: []int{0}},
	}}
	cases := []struct {
		kw   string
		want []int
	}{
		{"dark", []int{0, 2, 5, 9}},
		{"dark river", []int{2, 5}},
		{"river dark", []int{2, 5}},
		{"dark dark", []int{0, 2, 5, 9}},
		{"dark night", []int{0}},
		{"dark river night", nil},
		{"dark missing", nil},
		{"", nil},
	}
	for _, c := range cases {
		got := ai.Rows(c.kw)
		if len(got) != len(c.want) {
			t.Errorf("Rows(%q) = %v, want %v", c.kw, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Rows(%q) = %v, want %v", c.kw, got, c.want)
				break
			}
		}
	}
	// The intersection must not corrupt the shared postings.
	if p := ai.postings["dark"]; len(p.RowOrdinals) != 4 || p.RowOrdinals[0] != 0 {
		t.Errorf("postings mutated: %v", p.RowOrdinals)
	}
}
