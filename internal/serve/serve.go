// Package serve is QUEST's front-door serving tier: an HTTP/JSON keyword
// search service over a core.Engine, carrying the production-traffic
// toolkit the engine itself stays agnostic of. It works identically over
// every deployment shape — a single-process engine, in-process hash
// partitions (quest.OpenSharded) or a remote shard fleet
// (quest.OpenRemote) — because it only speaks to core.Engine.
//
// Endpoints:
//
//	GET  /healthz    liveness ("ok")
//	GET  /v1/stats   per-request counters (Stats, JSON)
//	GET  /v1/search  ?q=keywords [&k=N] [&execute=1] [&limit=N]
//	POST /v1/search  same parameters as a form body
//	POST /v1/sql     {"sql": "SELECT ..."} or sql=... form body
//	POST /v1/insert  {"table": ..., "rows": [[...], ...]} row appends
//
// Request headers:
//
//	X-Quest-Tenant       admission-control identity; "default" when absent
//	X-Quest-Deadline-Ms  per-request deadline in milliseconds, clamped to
//	                     Options.MaxDeadline (DefaultDeadline when absent)
//
// The deadline becomes a context.Context that propagates through
// engine search, PruneEmpty validation, the shard scatter-gather and the
// remote transport, so a request that gives up (client disconnect
// included — the server folds the connection context in) stops paying
// for shard work promptly.
//
// Admission control is a per-tenant token bucket (Options.TenantRate /
// TenantBurst): an empty bucket answers 429 with a Retry-After estimating
// when one token refills. Load shedding bounds the admitted requests in
// flight at MaxConcurrent + MaxQueue; past that the server answers 503
// with Retry-After rather than building an unbounded queue — the open-loop
// overload experiment (questbench E16) pins what that buys p99 under
// past-capacity arrival rates. Identical concurrent keyword searches
// coalesce into one engine call (singleflight) layered on the engine's
// own query cache, so a thundering herd on a cold key runs the pipeline
// once.
//
// Options.ResponseCacheSize (off by default) adds a response cache in
// front of the execution path: whole payloads keyed by the
// tenant-visible request shape and invalidated by per-table versions,
// never by TTL — an insert into one table evicts exactly the responses
// that read it and keeps every other table's responses servable. See
// respCache for the validation contract.
//
// Every typed failure is a JSON body {"error": code, "message": ...} with
// code one of bad_request, rate_limited, overloaded, deadline_exceeded,
// canceled, internal.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/relational"
	"repro/internal/sql"
)

// Request headers understood by the server.
const (
	TenantHeader   = "X-Quest-Tenant"
	DeadlineHeader = "X-Quest-Deadline-Ms"
)

// DefaultTenant is the admission identity of requests without a tenant
// header.
const DefaultTenant = "default"

// StatusClientClosedRequest is the non-standard (nginx-convention) status
// code reported when the client went away before its response was ready.
// The client never sees it — it is gone — but the access side of the
// counters distinguishes "we timed out" from "they hung up".
const StatusClientClosedRequest = 499

// Options tunes a Server. The zero value selects the documented defaults.
type Options struct {
	// DefaultDeadline applies to requests without a deadline header.
	// Default 5s.
	DefaultDeadline time.Duration
	// MaxDeadline clamps the per-request deadline header — a client
	// cannot opt out of deadlines, only shorten them. Default 30s.
	MaxDeadline time.Duration
	// MaxConcurrent bounds the searches/SQL executions running at once.
	// 0 selects runtime.GOMAXPROCS(0).
	MaxConcurrent int
	// MaxQueue bounds how many admitted requests may wait for an
	// execution slot beyond the MaxConcurrent running ones; an arrival
	// past MaxConcurrent+MaxQueue is shed with a typed 503. 0 selects 64;
	// negative disables shedding (unbounded queue — the E16 no-shedding
	// baseline).
	MaxQueue int
	// TenantRate is each tenant's token-bucket refill rate in requests
	// per second. 0 selects 50; negative disables rate limiting.
	TenantRate float64
	// TenantBurst is the bucket capacity (requests that may land at
	// once). 0 selects max(1, 2*TenantRate).
	TenantBurst int
	// DisableCoalesce turns off singleflight coalescing of identical
	// concurrent keyword searches (ablation knob; E16 disables it so the
	// load generator measures uncoalesced engine capacity).
	DisableCoalesce bool
	// ResponseCacheSize caps the response cache (entries). 0 — the
	// default — disables it: response caching changes what a request
	// costs, so it is opt-in rather than silently inflating capacity
	// estimates (E16 measures the uncached path). Entries are
	// invalidated by per-table versions, so the cache is only effective
	// over engines whose source exposes wrapper.TableVersioner;
	// responses from sources without the face are never cached.
	ResponseCacheSize int
}

func (o Options) withDefaults() Options {
	if o.DefaultDeadline <= 0 {
		o.DefaultDeadline = 5 * time.Second
	}
	if o.MaxDeadline <= 0 {
		o.MaxDeadline = 30 * time.Second
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if o.MaxQueue == 0 {
		o.MaxQueue = 64
	}
	if o.TenantRate == 0 {
		o.TenantRate = 50
	}
	if o.TenantBurst <= 0 {
		b := int(2 * o.TenantRate)
		if b < 1 {
			b = 1
		}
		o.TenantBurst = b
	}
	return o
}

// Stats snapshots the server's per-request counters — plain uint64
// fields read atomically, the same flat shape as transport.ClientStats,
// exposed on /v1/stats and by queststats -section serve.
type Stats struct {
	Requests   uint64 // HTTP requests received across all endpoints
	Searches   uint64 // keyword searches executed (coalesce leaders)
	SQLQueries uint64 // /v1/sql statements executed
	Inserts    uint64 // /v1/insert requests executed
	Coalesced  uint64 // searches served by another request's in-flight result

	RateLimited      uint64 // 429s: tenant bucket empty
	Shed             uint64 // 503s: admitted-load bound exceeded
	DeadlineExceeded uint64 // 504s: request deadline fired
	ClientCanceled   uint64 // 499s: client went away mid-request
	BadRequests      uint64 // 400s
	Errors           uint64 // 500s

	RowsReturned uint64 // data rows written into responses
	RowsInserted uint64 // data rows appended via /v1/insert
	QueueWaitNs  uint64 // total ns admitted requests waited for a slot
	ExecNs       uint64 // total ns spent executing searches and SQL

	// Response-cache outcomes; all zero when the cache is disabled.
	// An invalidation is a probe that found its entry but a dependency
	// table's version moved — the stale entry is overwritten when the
	// re-executed response is stored.
	ResponseCacheHits          uint64
	ResponseCacheMisses        uint64
	ResponseCacheInvalidations uint64
}

type counters struct {
	requests, searches, sqlQueries, coalesced atomic.Uint64
	rateLimited, shed, deadlineExceeded       atomic.Uint64
	clientCanceled, badRequests, errors       atomic.Uint64
	rowsReturned, queueWaitNs, execNs         atomic.Uint64
	inserts, rowsInserted                     atomic.Uint64
}

// tenantBucket is one tenant's token bucket; the server's tenant map is
// guarded by tmu, and each bucket is only touched under it.
type tenantBucket struct {
	tokens float64
	last   time.Time
}

// flightCall is one in-flight coalesced search: followers wait on done
// and share res/err.
type flightCall struct {
	done chan struct{}
	res  *searchPayload
	err  error
}

// Server is the HTTP serving tier over one engine. It implements
// http.Handler; Close is not needed (the server holds no goroutines —
// lifecycle belongs to the http.Server around it).
type Server struct {
	eng *core.Engine
	opt Options
	mux *http.ServeMux

	// inflight counts admitted requests (queued + executing); sem holds
	// the MaxConcurrent execution slots.
	inflight atomic.Int64
	sem      chan struct{}

	tmu     sync.Mutex
	tenants map[string]*tenantBucket

	fmu    sync.Mutex
	flight map[string]*flightCall

	// rcache is the per-table-version response cache; nil when
	// Options.ResponseCacheSize is 0.
	rcache *respCache

	c counters
}

// New builds a Server over an engine.
func New(eng *core.Engine, opt Options) *Server {
	s := &Server{
		eng:     eng,
		opt:     opt.withDefaults(),
		tenants: map[string]*tenantBucket{},
		flight:  map[string]*flightCall{},
	}
	s.sem = make(chan struct{}, s.opt.MaxConcurrent)
	s.rcache = newRespCache(s.opt.ResponseCacheSize)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/search", s.handleSearch)
	s.mux.HandleFunc("/v1/sql", s.handleSQL)
	s.mux.HandleFunc("/v1/insert", s.handleInsert)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Requests:   s.c.requests.Load(),
		Searches:   s.c.searches.Load(),
		SQLQueries: s.c.sqlQueries.Load(),
		Inserts:    s.c.inserts.Load(),
		Coalesced:  s.c.coalesced.Load(),

		RateLimited:      s.c.rateLimited.Load(),
		Shed:             s.c.shed.Load(),
		DeadlineExceeded: s.c.deadlineExceeded.Load(),
		ClientCanceled:   s.c.clientCanceled.Load(),
		BadRequests:      s.c.badRequests.Load(),
		Errors:           s.c.errors.Load(),

		RowsReturned: s.c.rowsReturned.Load(),
		RowsInserted: s.c.rowsInserted.Load(),
		QueueWaitNs:  s.c.queueWaitNs.Load(),
		ExecNs:       s.c.execNs.Load(),
	}
	if s.rcache != nil {
		st.ResponseCacheHits = s.rcache.hits.Load()
		st.ResponseCacheMisses = s.rcache.misses.Load()
		st.ResponseCacheInvalidations = s.rcache.invalidations.Load()
	}
	return st
}

// ---- typed error responses ----

type errorBody struct {
	Error   string `json:"error"`
	Message string `json:"message,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (s *Server) failBadRequest(w http.ResponseWriter, msg string) {
	s.c.badRequests.Add(1)
	writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad_request", Message: msg})
}

// failCtx maps a context error to its typed response: deadline_exceeded
// when the server-imposed deadline fired, canceled when the client went
// away first.
func (s *Server) failCtx(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.c.deadlineExceeded.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: "deadline_exceeded", Message: "request deadline exceeded"})
		return
	}
	s.c.clientCanceled.Add(1)
	writeJSON(w, StatusClientClosedRequest, errorBody{Error: "canceled", Message: "client closed request"})
}

// ---- admission ----

func tenantOf(r *http.Request) string {
	if t := r.Header.Get(TenantHeader); t != "" {
		return t
	}
	return DefaultTenant
}

// takeToken debits one token from the tenant's bucket, reporting how long
// until a token refills when it cannot. Tenants materialize lazily with a
// full bucket. The map is never evicted — tenant identities are an
// operator-controlled set, not attacker-controlled input, and one bucket
// is two words.
func (s *Server) takeToken(tenant string) (time.Duration, bool) {
	rate, burst := s.opt.TenantRate, float64(s.opt.TenantBurst)
	if rate < 0 {
		return 0, true
	}
	now := time.Now()
	s.tmu.Lock()
	defer s.tmu.Unlock()
	b := s.tenants[tenant]
	if b == nil {
		b = &tenantBucket{tokens: burst, last: now}
		s.tenants[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * rate
	if b.tokens > burst {
		b.tokens = burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	wait := time.Duration((1 - b.tokens) / rate * float64(time.Second))
	return wait, false
}

func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// admit runs the admission pipeline shared by search and SQL: tenant
// token bucket, then the admitted-load bound. On success the caller owns
// one inflight slot and must call the returned release.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	wait, allowed := s.takeToken(tenantOf(r))
	if !allowed {
		s.c.rateLimited.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(wait))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "rate_limited",
			Message: fmt.Sprintf("tenant %q over its request rate", tenantOf(r))})
		return nil, false
	}
	if s.opt.MaxQueue >= 0 {
		limit := int64(s.opt.MaxConcurrent + s.opt.MaxQueue)
		if s.inflight.Add(1) > limit {
			s.inflight.Add(-1)
			s.c.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "overloaded",
				Message: fmt.Sprintf("server at its admitted-load bound (%d)", limit)})
			return nil, false
		}
	} else {
		s.inflight.Add(1)
	}
	return func() { s.inflight.Add(-1) }, true
}

// requestContext derives the request's execution context: the connection
// context (client disconnect cancels it) bounded by the header deadline
// clamped to MaxDeadline.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.opt.DefaultDeadline
	if h := r.Header.Get(DeadlineHeader); h != "" {
		ms, err := strconv.ParseInt(h, 10, 64)
		if err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("bad %s header %q: want a positive integer of milliseconds", DeadlineHeader, h)
		}
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.opt.MaxDeadline {
		d = s.opt.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// acquireSlot waits for an execution slot or the context, whichever comes
// first, feeding the queue-wait counter.
func (s *Server) acquireSlot(ctx context.Context) (func(), error) {
	enq := time.Now()
	select {
	case s.sem <- struct{}{}:
		s.c.queueWaitNs.Add(uint64(time.Since(enq)))
		return func() { <-s.sem }, nil
	case <-ctx.Done():
		s.c.queueWaitNs.Add(uint64(time.Since(enq)))
		return nil, ctx.Err()
	}
}

// ---- handlers ----

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.c.requests.Add(1)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.c.requests.Add(1)
	writeJSON(w, http.StatusOK, s.Stats())
}

// searchPayload is /v1/search's response body.
type searchPayload struct {
	Query        string            `json:"query"`
	Keywords     []string          `json:"keywords"`
	Explanations []explanationJSON `json:"explanations"`
	Coalesced    bool              `json:"coalesced,omitempty"`
	Cached       bool              `json:"cached,omitempty"`
	ElapsedMs    float64           `json:"elapsed_ms"`
}

type explanationJSON struct {
	Rank    int      `json:"rank"`
	Belief  float64  `json:"belief"`
	SQL     string   `json:"sql"`
	Columns []string `json:"columns,omitempty"`
	Rows    [][]any  `json:"rows,omitempty"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	s.c.requests.Add(1)
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		w.Header().Set("Allow", "GET, POST")
		s.failBadRequest(w, "use GET or POST")
		return
	}
	q := strings.TrimSpace(r.FormValue("q"))
	if q == "" {
		s.failBadRequest(w, "missing q parameter (keyword query)")
		return
	}
	k, err := formInt(r, "k", 0)
	if err != nil {
		s.failBadRequest(w, err.Error())
		return
	}
	limit, err := formInt(r, "limit", 100)
	if err != nil {
		s.failBadRequest(w, err.Error())
		return
	}
	execute := formBool(r, "execute")

	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()

	// Response-cache probe: after admission (cached responses still
	// spend the tenant's tokens) but before the execution slot — a hit
	// costs no engine work at all. A keyword search can read any table,
	// so entries depend on every table; versions are snapshotted before
	// execution so a mid-flight write invalidates the stored entry.
	ckey := "search\x00" + q + "\x00" + strconv.Itoa(k) + "\x00" +
		strconv.FormatBool(execute) + "\x00" + strconv.Itoa(limit)
	if hit, ok := s.rcache.get(ckey, s.eng.TableVersion); ok {
		cp := *hit.(*searchPayload)
		cp.Cached = true
		writeJSON(w, http.StatusOK, &cp)
		return
	}
	deps := s.eng.TableVersions()

	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		s.failBadRequest(w, err.Error())
		return
	}
	defer cancel()

	res, coalesced, err := s.searchCoalesced(ctx, q, k, execute, limit)
	if err != nil {
		if ctx.Err() != nil {
			s.failCtx(w, ctx.Err())
			return
		}
		s.c.errors.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "internal", Message: err.Error()})
		return
	}
	// Cache the leader's payload (not the per-request Coalesced copy) so
	// later hits don't inherit this request's delivery flags.
	s.rcache.put(ckey, res, deps)
	if coalesced {
		s.c.coalesced.Add(1)
		cp := *res
		cp.Coalesced = true
		res = &cp
	}
	for _, ex := range res.Explanations {
		s.c.rowsReturned.Add(uint64(len(ex.Rows)))
	}
	writeJSON(w, http.StatusOK, res)
}

// coalesceKey identifies a search result shape exactly: the tokenized
// keywords plus every response-shaping parameter.
func coalesceKey(keywords []string, k int, execute bool, limit int) string {
	return strings.Join(keywords, "\x1f") + "\x00" + strconv.Itoa(k) + "\x00" +
		strconv.FormatBool(execute) + "\x00" + strconv.Itoa(limit)
}

// searchCoalesced collapses identical concurrent searches into one
// engine call. The leader runs under its own request context; when the
// leader is cancelled mid-flight its waiters do not inherit the failure —
// each waiter whose own context is still live retries the loop and the
// first one in becomes the new leader.
func (s *Server) searchCoalesced(ctx context.Context, q string, k int, execute bool, limit int) (*searchPayload, bool, error) {
	keywords := core.Tokenize(q)
	if len(keywords) == 0 {
		return nil, false, fmt.Errorf("query %q has no keywords", q)
	}
	if s.opt.DisableCoalesce {
		res, err := s.runSearch(ctx, q, keywords, k, execute, limit)
		return res, false, err
	}
	key := coalesceKey(keywords, k, execute, limit)
	for {
		s.fmu.Lock()
		if c := s.flight[key]; c != nil {
			s.fmu.Unlock()
			select {
			case <-c.done:
				if c.err != nil && isCtxErr(c.err) && ctx.Err() == nil {
					// The leader's client gave up; this waiter is still
					// live — take over.
					continue
				}
				return c.res, true, c.err
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		c := &flightCall{done: make(chan struct{})}
		s.flight[key] = c
		s.fmu.Unlock()
		c.res, c.err = s.runSearch(ctx, q, keywords, k, execute, limit)
		s.fmu.Lock()
		delete(s.flight, key)
		s.fmu.Unlock()
		close(c.done)
		return c.res, false, c.err
	}
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// runSearch waits for an execution slot, runs the engine pipeline and —
// when asked — executes the top-ranked explanation's SQL for its tuples.
func (s *Server) runSearch(ctx context.Context, q string, keywords []string, k int, execute bool, limit int) (*searchPayload, error) {
	releaseSlot, err := s.acquireSlot(ctx)
	if err != nil {
		return nil, err
	}
	defer releaseSlot()
	started := time.Now()
	defer func() { s.c.execNs.Add(uint64(time.Since(started))) }()
	s.c.searches.Add(1)
	exps, err := s.eng.SearchCtx(ctx, q)
	if err != nil {
		return nil, err
	}
	if k > 0 && k < len(exps) {
		exps = exps[:k]
	}
	out := &searchPayload{Query: q, Keywords: keywords, Explanations: make([]explanationJSON, 0, len(exps))}
	for i, ex := range exps {
		ej := explanationJSON{Rank: i + 1, Belief: ex.Belief, SQL: ex.SQL}
		if execute && i == 0 {
			res, err := s.eng.ExecuteCtx(ctx, ex)
			if err != nil {
				return nil, err
			}
			ej.Columns = res.Columns
			ej.Rows = encodeRows(res.Rows, limit)
		}
		out.Explanations = append(out.Explanations, ej)
	}
	out.ElapsedMs = float64(time.Since(started)) / float64(time.Millisecond)
	return out, nil
}

// sqlPayload is /v1/sql's response body.
type sqlPayload struct {
	Columns   []string `json:"columns"`
	Rows      [][]any  `json:"rows"`
	RowCount  int      `json:"row_count"`
	Cached    bool     `json:"cached,omitempty"`
	ElapsedMs float64  `json:"elapsed_ms"`
}

func (s *Server) handleSQL(w http.ResponseWriter, r *http.Request) {
	s.c.requests.Add(1)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		s.failBadRequest(w, "use POST")
		return
	}
	query, err := sqlOf(r)
	if err != nil {
		s.failBadRequest(w, err.Error())
		return
	}
	limit, err := formInt(r, "limit", 1000)
	if err != nil {
		s.failBadRequest(w, err.Error())
		return
	}

	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()

	// Response-cache probe (see handleSearch). SQL entries depend only
	// on the tables the plan scanned, so writes to unrelated tables
	// never invalidate them; the full version snapshot is taken before
	// execution and narrowed after the plan is known.
	ckey := "sql\x00" + query + "\x00" + strconv.Itoa(limit)
	if hit, ok := s.rcache.get(ckey, s.eng.TableVersion); ok {
		cp := *hit.(*sqlPayload)
		cp.Cached = true
		writeJSON(w, http.StatusOK, &cp)
		return
	}
	versions := s.eng.TableVersions()

	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		s.failBadRequest(w, err.Error())
		return
	}
	defer cancel()
	releaseSlot, err := s.acquireSlot(ctx)
	if err != nil {
		s.failCtx(w, err)
		return
	}
	defer releaseSlot()

	started := time.Now()
	s.c.sqlQueries.Add(1)
	res, err := s.eng.RunSQL(ctx, query)
	s.c.execNs.Add(uint64(time.Since(started)))
	if err != nil {
		if ctx.Err() != nil {
			s.failCtx(w, ctx.Err())
			return
		}
		// A parse or execution rejection is the client's statement, not a
		// server fault.
		s.failBadRequest(w, err.Error())
		return
	}
	rows := encodeRows(res.Rows, limit)
	s.c.rowsReturned.Add(uint64(len(rows)))
	payload := &sqlPayload{
		Columns:   res.Columns,
		Rows:      rows,
		RowCount:  len(res.Rows),
		ElapsedMs: float64(time.Since(started)) / float64(time.Millisecond),
	}
	s.rcache.put(ckey, payload, scanDeps(res.Plan, versions))
	writeJSON(w, http.StatusOK, payload)
}

// scanDeps narrows a pre-execution version snapshot to the tables the
// executed plan actually scanned. Nil when the plan (or snapshot) is
// unavailable — the entry is then not cached.
func scanDeps(qp *sql.QueryPlan, versions map[string]uint64) map[string]uint64 {
	if qp == nil || len(versions) == 0 {
		return nil
	}
	deps := make(map[string]uint64, len(qp.Scans))
	for _, sp := range qp.Scans {
		name := strings.ToLower(sp.Table)
		v, ok := versions[name]
		if !ok {
			return nil
		}
		deps[name] = v
	}
	return deps
}

// insertPayload is /v1/insert's response body.
type insertPayload struct {
	Table     string  `json:"table"`
	Inserted  int     `json:"inserted"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

// handleInsert appends rows through the engine's write face — the
// serving tier's half of the mixed read/write hot path. Each insert
// bumps the written table's version, which is what invalidates exactly
// the response-cache (and engine/plan cache) entries that read it;
// nothing here flushes any cache explicitly.
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	s.c.requests.Add(1)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		s.failBadRequest(w, "use POST")
		return
	}
	var body struct {
		Table string  `json:"table"`
		Rows  [][]any `json:"rows"`
	}
	dec := json.NewDecoder(r.Body)
	// Numbers arrive as json.Number so integer keys survive without a
	// float64 round-trip.
	dec.UseNumber()
	if err := dec.Decode(&body); err != nil {
		s.failBadRequest(w, fmt.Sprintf("bad JSON body: %v", err))
		return
	}
	if strings.TrimSpace(body.Table) == "" {
		s.failBadRequest(w, `missing "table" field`)
		return
	}
	if len(body.Rows) == 0 {
		s.failBadRequest(w, `missing "rows" field`)
		return
	}

	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel, err := s.requestContext(r)
	if err != nil {
		s.failBadRequest(w, err.Error())
		return
	}
	defer cancel()
	// Writes take an execution slot like queries: they contend for the
	// same table locks, so admitting unbounded writers would starve the
	// read path the slots exist to protect.
	releaseSlot, err := s.acquireSlot(ctx)
	if err != nil {
		s.failCtx(w, err)
		return
	}
	defer releaseSlot()

	started := time.Now()
	s.c.inserts.Add(1)
	inserted := 0
	for i, raw := range body.Rows {
		row, err := decodeInsertRow(raw)
		if err == nil {
			err = s.eng.Insert(body.Table, row)
		}
		if err != nil {
			s.c.execNs.Add(uint64(time.Since(started)))
			s.c.rowsInserted.Add(uint64(inserted))
			// Earlier rows of the batch stay inserted; the error names
			// the row that failed so the client can resume after it.
			s.failBadRequest(w, fmt.Sprintf("row %d: %v (%d rows inserted before the failure)", i, err, inserted))
			return
		}
		inserted++
	}
	s.c.execNs.Add(uint64(time.Since(started)))
	s.c.rowsInserted.Add(uint64(inserted))
	writeJSON(w, http.StatusOK, insertPayload{
		Table:     body.Table,
		Inserted:  inserted,
		ElapsedMs: float64(time.Since(started)) / float64(time.Millisecond),
	})
}

// decodeInsertRow maps JSON-native values onto relational ones: null,
// bool, string, and json.Number (integer when it parses exactly, float
// otherwise). Nested arrays/objects are rejected.
func decodeInsertRow(raw []any) (relational.Row, error) {
	row := make(relational.Row, len(raw))
	for j, v := range raw {
		switch x := v.(type) {
		case nil:
			row[j] = relational.Null()
		case bool:
			row[j] = relational.Bool(x)
		case string:
			row[j] = relational.String_(x)
		case json.Number:
			if n, err := strconv.ParseInt(string(x), 10, 64); err == nil {
				row[j] = relational.Int(n)
			} else {
				f, err := x.Float64()
				if err != nil {
					return nil, fmt.Errorf("column %d: bad number %q", j, x)
				}
				row[j] = relational.Float(f)
			}
		default:
			return nil, fmt.Errorf("column %d: unsupported JSON value %T (want null, bool, string or number)", j, v)
		}
	}
	return row, nil
}

// sqlOf extracts the statement from a JSON body ({"sql": ...}) or a form
// field.
func sqlOf(r *http.Request) (string, error) {
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		var body struct {
			SQL string `json:"sql"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			return "", fmt.Errorf("bad JSON body: %v", err)
		}
		if strings.TrimSpace(body.SQL) == "" {
			return "", fmt.Errorf(`missing "sql" field`)
		}
		return body.SQL, nil
	}
	q := strings.TrimSpace(r.FormValue("sql"))
	if q == "" {
		return "", fmt.Errorf("missing sql parameter")
	}
	return q, nil
}

// ---- small helpers ----

func formInt(r *http.Request, name string, def int) (int, error) {
	v := r.FormValue(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad %s parameter %q: want a non-negative integer", name, v)
	}
	return n, nil
}

func formBool(r *http.Request, name string) bool {
	switch strings.ToLower(r.FormValue(name)) {
	case "1", "true", "yes":
		return true
	}
	return false
}

// encodeRows renders result rows as JSON-native values (limit caps the
// rendered rows; 0 means none, negative means all).
func encodeRows(rows []relational.Row, limit int) [][]any {
	if limit >= 0 && limit < len(rows) {
		rows = rows[:limit]
	}
	out := make([][]any, len(rows))
	for i, row := range rows {
		vals := make([]any, len(row))
		for j, v := range row {
			vals[j] = encodeValue(v)
		}
		out[i] = vals
	}
	return out
}

func encodeValue(v relational.Value) any {
	switch v.Type() {
	case relational.TypeNull:
		return nil
	case relational.TypeInt:
		return v.AsInt()
	case relational.TypeFloat:
		return v.AsFloat()
	case relational.TypeBool:
		return v.AsBool()
	default:
		return v.AsString()
	}
}
