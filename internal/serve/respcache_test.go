package serve_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	quest "repro"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/wrapper"
)

// newCachingServer builds a serve.Server with the response cache on over
// a plain full-access source (which exposes wrapper.TableVersioner, so
// entries are cachable and version-invalidated).
func newCachingServer(t *testing.T) *serve.Server {
	t.Helper()
	db := quest.BuildIMDB(quest.DatasetConfig{Seed: 42, Scale: 1})
	src := wrapper.NewFullAccessSource(db)
	opts := quest.Defaults()
	eng := core.NewEngine(src, opts)
	return serve.New(eng, serve.Options{
		TenantRate:        -1,
		ResponseCacheSize: 64,
	})
}

func postJSON(s *serve.Server, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func decodeSQL(t *testing.T, w *httptest.ResponseRecorder) (rowCount int, cached bool) {
	t.Helper()
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var body struct {
		RowCount int     `json:"row_count"`
		Cached   bool    `json:"cached"`
		Rows     [][]any `json:"rows"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	return body.RowCount, body.Cached
}

// countMovies runs the count query and returns the counted value plus the
// cached marker.
func countMovies(t *testing.T, s *serve.Server) (int64, bool) {
	t.Helper()
	w := postJSON(s, "/v1/sql", `{"sql": "SELECT COUNT(*) AS n FROM movie"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var body struct {
		Rows   [][]any `json:"rows"`
		Cached bool    `json:"cached"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Rows) != 1 || len(body.Rows[0]) != 1 {
		t.Fatalf("want one count cell, got %v", body.Rows)
	}
	n, ok := body.Rows[0][0].(float64)
	if !ok {
		t.Fatalf("count cell %v is not a number", body.Rows[0][0])
	}
	return int64(n), body.Cached
}

// TestResponseCacheSQLInvalidation is the response cache's core contract:
// a repeat of the same statement is served from cache, a write to the
// scanned table invalidates exactly that entry, and writes to unrelated
// tables leave it servable.
func TestResponseCacheSQLInvalidation(t *testing.T) {
	s := newCachingServer(t)

	n0, cached := countMovies(t, s)
	if cached {
		t.Fatal("first request must miss the response cache")
	}
	_, cached = countMovies(t, s)
	if !cached {
		t.Fatal("repeat request must hit the response cache")
	}

	// A write to the scanned table invalidates the entry; the next read
	// sees the new row, not the cached count.
	w := postJSON(s, "/v1/insert", `{"table": "movie", "rows": [[9001, "Cache Buster", 2025, "drama", 7.5]]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("insert status %d: %s", w.Code, w.Body.String())
	}
	n1, cached := countMovies(t, s)
	if cached {
		t.Fatal("post-insert request must not be served from cache")
	}
	if n1 != n0+1 {
		t.Fatalf("count after insert = %d, want %d", n1, n0+1)
	}

	// Warm the entry again, then write to an UNRELATED table: the movie
	// count entry must stay servable — that is the point of per-table
	// versions over a global epoch.
	if _, cached := countMovies(t, s); !cached {
		t.Fatal("rewarmed entry must hit")
	}
	w = postJSON(s, "/v1/insert", `{"table": "person", "rows": [[9001, "New Person", 1990, "f"]]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("insert status %d: %s", w.Code, w.Body.String())
	}
	if _, cached := countMovies(t, s); !cached {
		t.Fatal("write to person must not invalidate the movie count entry")
	}

	st := s.Stats()
	if st.ResponseCacheHits < 3 || st.ResponseCacheMisses < 1 || st.ResponseCacheInvalidations < 1 {
		t.Fatalf("counters hits=%d misses=%d invalidations=%d, want >=3/>=1/>=1",
			st.ResponseCacheHits, st.ResponseCacheMisses, st.ResponseCacheInvalidations)
	}
	if st.Inserts != 2 || st.RowsInserted != 2 {
		t.Fatalf("insert counters = %d/%d, want 2/2", st.Inserts, st.RowsInserted)
	}
}

// TestResponseCacheSearch covers the keyword endpoint: the second
// identical request is a cache hit marked cached, and any insert
// invalidates search entries (they depend on every table).
func TestResponseCacheSearch(t *testing.T) {
	s := newCachingServer(t)

	w := doSearch(s, testQuery, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var first struct {
		Cached       bool  `json:"cached"`
		Explanations []any `json:"explanations"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first search must miss")
	}

	w = doSearch(s, testQuery, nil)
	var second struct {
		Cached       bool  `json:"cached"`
		Explanations []any `json:"explanations"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("repeat search must be served from the response cache")
	}
	if len(second.Explanations) != len(first.Explanations) {
		t.Fatalf("cached search returned %d explanations, want %d", len(second.Explanations), len(first.Explanations))
	}

	w = postJSON(s, "/v1/insert", `{"table": "movie", "rows": [[9002, "Another Movie", 2025, "comedy", 6.5]]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("insert status %d: %s", w.Code, w.Body.String())
	}
	w = doSearch(s, testQuery, nil)
	var third struct {
		Cached bool `json:"cached"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &third); err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Fatal("search after a write must re-execute")
	}
}

// TestInsertEndpointErrors pins the write endpoint's typed failures:
// unknown table, malformed values, and mid-batch failures that report how
// many rows landed before the bad one.
func TestInsertEndpointErrors(t *testing.T) {
	s := newCachingServer(t)

	w := postJSON(s, "/v1/insert", `{"table": "nope", "rows": [[1]]}`)
	if w.Code != http.StatusBadRequest || errorCode(t, w) != "bad_request" {
		t.Fatalf("unknown table: status %d body %s", w.Code, w.Body.String())
	}

	w = postJSON(s, "/v1/insert", `{"table": "movie", "rows": [[9003, ["nested"], 2025, "drama", 1.0]]}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("nested value: status %d body %s", w.Code, w.Body.String())
	}

	w = postJSON(s, "/v1/insert", `{"rows": [[1]]}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("missing table: status %d body %s", w.Code, w.Body.String())
	}
	w = postJSON(s, "/v1/insert", `{"table": "movie"}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("missing rows: status %d body %s", w.Code, w.Body.String())
	}

	// A duplicate primary key mid-batch: the first row lands, the second
	// fails, and the error says so.
	w = postJSON(s, "/v1/insert",
		`{"table": "movie", "rows": [[9004, "First", 2025, "drama", 5.0], [9004, "Dup", 2025, "drama", 5.0]]}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("dup pk: status %d body %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "1 rows inserted before the failure") {
		t.Fatalf("dup pk error should report partial progress: %s", w.Body.String())
	}
}
