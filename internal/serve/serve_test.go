package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	quest "repro"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/sql"
	"repro/internal/wrapper"
)

// gateSource wraps the full-access source so tests can hold every
// PruneEmpty existence probe at a gate: a search admitted by the server
// then blocks inside the engine until the test releases it (or its
// context fires), which is how the overload, deadline and coalescing
// paths are made deterministic.
type gateSource struct {
	*wrapper.FullAccessSource
	mu      sync.Mutex
	block   chan struct{} // non-nil: probes wait here
	entered chan struct{} // one signal per probe that reached the gate
}

func (g *gateSource) ExecuteExistsCtx(ctx context.Context, stmt *sql.SelectStmt) (bool, error) {
	g.mu.Lock()
	block := g.block
	g.mu.Unlock()
	if block != nil {
		select {
		case g.entered <- struct{}{}:
		default:
		}
		select {
		case <-block:
		case <-ctx.Done():
			return false, ctx.Err()
		}
	}
	return g.FullAccessSource.ExecuteExists(stmt)
}

func (g *gateSource) close() {
	g.mu.Lock()
	if g.block != nil {
		close(g.block)
		g.block = nil
	}
	g.mu.Unlock()
}

// newGateServer builds a serve.Server whose engine validates candidates
// through the gate. The query cache is off so every request exercises the
// full admission + execution path.
func newGateServer(t *testing.T, blocked bool, o serve.Options) (*serve.Server, *gateSource) {
	t.Helper()
	db := quest.BuildIMDB(quest.DatasetConfig{Seed: 42, Scale: 1})
	g := &gateSource{
		FullAccessSource: wrapper.NewFullAccessSource(db),
		entered:          make(chan struct{}, 64),
	}
	if blocked {
		g.block = make(chan struct{})
	}
	opts := quest.Defaults()
	opts.PruneEmpty = true
	opts.QueryCacheSize = -1
	eng := core.NewEngine(g, opts)
	return serve.New(eng, o), g
}

const testQuery = "spielberg drama"

func doSearch(s *serve.Server, q string, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, "/v1/search?q="+strings.ReplaceAll(q, " ", "+"), nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func errorCode(t *testing.T, w *httptest.ResponseRecorder) string {
	t.Helper()
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("response %q is not a typed error body: %v", w.Body.String(), err)
	}
	return body.Error
}

func TestSearchSQLStatsHealthz(t *testing.T) {
	s, _ := newGateServer(t, false, serve.Options{})

	req := httptest.NewRequest(http.MethodGet, "/v1/search?q=spielberg+drama&execute=1&k=3", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("search: code %d body %s", w.Code, w.Body.String())
	}
	var res struct {
		Keywords     []string `json:"keywords"`
		Explanations []struct {
			Rank   int     `json:"rank"`
			Belief float64 `json:"belief"`
			SQL    string  `json:"sql"`
			Rows   [][]any `json:"rows"`
		} `json:"explanations"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatalf("decode search: %v", err)
	}
	if len(res.Keywords) != 2 || len(res.Explanations) == 0 {
		t.Fatalf("unexpected payload: %+v", res)
	}
	if len(res.Explanations) > 3 {
		t.Fatalf("k=3 returned %d explanations", len(res.Explanations))
	}
	if res.Explanations[0].SQL == "" {
		t.Fatal("top explanation has no SQL")
	}

	body := strings.NewReader(`{"sql": "SELECT title FROM movie WHERE production_year BETWEEN 1972 AND 1990"}`)
	sreq := httptest.NewRequest(http.MethodPost, "/v1/sql", body)
	sreq.Header.Set("Content-Type", "application/json")
	sw := httptest.NewRecorder()
	s.ServeHTTP(sw, sreq)
	if sw.Code != http.StatusOK {
		t.Fatalf("sql: code %d body %s", sw.Code, sw.Body.String())
	}
	var sqlRes struct {
		Columns  []string `json:"columns"`
		RowCount int      `json:"row_count"`
	}
	if err := json.Unmarshal(sw.Body.Bytes(), &sqlRes); err != nil {
		t.Fatalf("decode sql: %v", err)
	}
	if len(sqlRes.Columns) != 1 || sqlRes.RowCount == 0 {
		t.Fatalf("unexpected sql payload: %+v", sqlRes)
	}

	hw := httptest.NewRecorder()
	s.ServeHTTP(hw, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if hw.Code != http.StatusOK || !strings.Contains(hw.Body.String(), "ok") {
		t.Fatalf("healthz: code %d body %q", hw.Code, hw.Body.String())
	}

	stw := httptest.NewRecorder()
	s.ServeHTTP(stw, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	var st serve.Stats
	if err := json.Unmarshal(stw.Body.Bytes(), &st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if st.Searches != 1 || st.SQLQueries != 1 || st.RowsReturned == 0 {
		t.Fatalf("stats don't reflect the traffic: %+v", st)
	}
}

func TestTypedBadRequests(t *testing.T) {
	s, _ := newGateServer(t, false, serve.Options{})
	cases := []struct {
		name string
		req  *http.Request
	}{
		{"missing q", httptest.NewRequest(http.MethodGet, "/v1/search", nil)},
		{"bad k", httptest.NewRequest(http.MethodGet, "/v1/search?q=x&k=zebra", nil)},
		{"bad deadline header", func() *http.Request {
			r := httptest.NewRequest(http.MethodGet, "/v1/search?q=spielberg", nil)
			r.Header.Set(serve.DeadlineHeader, "soon")
			return r
		}()},
		{"sql wrong method", httptest.NewRequest(http.MethodGet, "/v1/sql?sql=SELECT", nil)},
		{"sql missing statement", httptest.NewRequest(http.MethodPost, "/v1/sql", nil)},
		{"sql parse error", httptest.NewRequest(http.MethodPost, "/v1/sql",
			strings.NewReader("sql=FROBNICATE+ALL+THE+THINGS"))},
	}
	cases[5].req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := httptest.NewRecorder()
			s.ServeHTTP(w, tc.req)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("code %d body %s, want 400", w.Code, w.Body.String())
			}
			if code := errorCode(t, w); code != "bad_request" {
				t.Fatalf("error code %q, want bad_request", code)
			}
		})
	}
	if st := s.Stats(); st.BadRequests != uint64(len(cases)) {
		t.Fatalf("BadRequests = %d, want %d", st.BadRequests, len(cases))
	}
}

func TestRateLimitTyped(t *testing.T) {
	s, _ := newGateServer(t, false, serve.Options{TenantRate: 0.5, TenantBurst: 1})

	if w := doSearch(s, testQuery, map[string]string{serve.TenantHeader: "miner"}); w.Code != http.StatusOK {
		t.Fatalf("first request: code %d body %s", w.Code, w.Body.String())
	}
	w := doSearch(s, testQuery, map[string]string{serve.TenantHeader: "miner"})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("second request: code %d, want 429", w.Code)
	}
	if code := errorCode(t, w); code != "rate_limited" {
		t.Fatalf("error code %q, want rate_limited", code)
	}
	if ra := w.Header().Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want a positive estimate", ra)
	}
	// One tenant's empty bucket must not starve another's.
	if w := doSearch(s, testQuery, map[string]string{serve.TenantHeader: "analyst"}); w.Code != http.StatusOK {
		t.Fatalf("other tenant: code %d body %s", w.Code, w.Body.String())
	}
	if st := s.Stats(); st.RateLimited != 1 {
		t.Fatalf("RateLimited = %d, want 1", st.RateLimited)
	}
}

func TestOverloadShedsTyped(t *testing.T) {
	// One execution slot plus one admitted waiter: the third concurrent
	// request is past MaxConcurrent+MaxQueue and must shed.
	s, g := newGateServer(t, true, serve.Options{MaxConcurrent: 1, MaxQueue: 1, TenantRate: -1, DisableCoalesce: true})

	first := make(chan *httptest.ResponseRecorder, 1)
	go func() { first <- doSearch(s, testQuery, nil) }()
	<-g.entered // the first search is inside the engine, holding the slot

	second := make(chan *httptest.ResponseRecorder, 1)
	go func() { second <- doSearch(s, "spielberg thriller", nil) }()
	waitFor(t, func() bool { return s.Stats().Requests >= 2 })
	// Give the second request time to enter the slot queue.
	time.Sleep(50 * time.Millisecond)

	w := doSearch(s, "lucas action", nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("third request: code %d body %s, want 503", w.Code, w.Body.String())
	}
	if code := errorCode(t, w); code != "overloaded" {
		t.Fatalf("error code %q, want overloaded", code)
	}
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Fatal("503 without Retry-After")
	}

	g.close()
	if w := <-first; w.Code != http.StatusOK {
		t.Fatalf("gated request after release: code %d body %s", w.Code, w.Body.String())
	}
	if w := <-second; w.Code != http.StatusOK {
		t.Fatalf("queued request after release: code %d body %s", w.Code, w.Body.String())
	}
	if st := s.Stats(); st.Shed != 1 {
		t.Fatalf("Shed = %d, want 1", st.Shed)
	}
}

func TestDeadlineTyped(t *testing.T) {
	s, g := newGateServer(t, true, serve.Options{TenantRate: -1})
	defer g.close()

	start := time.Now()
	w := doSearch(s, testQuery, map[string]string{serve.DeadlineHeader: "50"})
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("deadline response took %v, want prompt", elapsed)
	}
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("code %d body %s, want 504", w.Code, w.Body.String())
	}
	if code := errorCode(t, w); code != "deadline_exceeded" {
		t.Fatalf("error code %q, want deadline_exceeded", code)
	}
	if st := s.Stats(); st.DeadlineExceeded != 1 {
		t.Fatalf("DeadlineExceeded = %d, want 1", st.DeadlineExceeded)
	}
}

func TestCoalescing(t *testing.T) {
	const n = 5
	s, g := newGateServer(t, true, serve.Options{TenantRate: -1, MaxConcurrent: 2})

	results := make(chan *httptest.ResponseRecorder, n)
	for i := 0; i < n; i++ {
		go func() { results <- doSearch(s, testQuery, nil) }()
	}
	<-g.entered // a leader holds the gate inside the engine
	// Wait until all n handlers have at least entered the request path,
	// then a beat more so the followers reach the singleflight table.
	waitFor(t, func() bool { return s.Stats().Requests >= n })
	time.Sleep(100 * time.Millisecond)
	g.close()

	coalesced := 0
	for i := 0; i < n; i++ {
		w := <-results
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: code %d body %s", i, w.Code, w.Body.String())
		}
		var res struct {
			Coalesced bool `json:"coalesced"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if res.Coalesced {
			coalesced++
		}
	}
	st := s.Stats()
	if st.Searches+st.Coalesced != n {
		t.Fatalf("Searches %d + Coalesced %d != %d requests", st.Searches, st.Coalesced, n)
	}
	if st.Searches != 1 || st.Coalesced != n-1 {
		t.Fatalf("Searches = %d, Coalesced = %d; want 1 engine run serving %d followers", st.Searches, st.Coalesced, n-1)
	}
	if uint64(coalesced) != st.Coalesced {
		t.Fatalf("%d responses marked coalesced, stats say %d", coalesced, st.Coalesced)
	}
}

// TestServeSmoke is the `make serve-smoke` entry point: boot the server
// on a real listener, fire a short open-loop burst from a tenant whose
// bucket cannot sustain it, and check the shed traffic is typed while an
// interactive tenant rides through untouched.
func TestServeSmoke(t *testing.T) {
	s, _ := newGateServer(t, false, serve.Options{
		TenantRate:  2,
		TenantBurst: 3,
		MaxQueue:    8,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s}
	go hs.Serve(l)
	defer hs.Close()
	base := "http://" + l.Addr().String()

	get := func(tenant, q string) (*http.Response, error) {
		req, err := http.NewRequest(http.MethodGet, base+"/v1/search?q="+strings.ReplaceAll(q, " ", "+"), nil)
		if err != nil {
			return nil, err
		}
		req.Header.Set(serve.TenantHeader, tenant)
		return http.DefaultClient.Do(req)
	}

	// Open-loop burst: 12 requests at ~100/s from a bucket refilling at 2/s
	// with burst 3 — most of it must come back as typed 429s.
	const burst = 12
	var wg sync.WaitGroup
	codes := make(chan int, burst)
	bodies := make(chan string, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := get("bulk", testQuery)
			if err != nil {
				t.Errorf("burst request: %v", err)
				return
			}
			defer resp.Body.Close()
			var body struct {
				Error string `json:"error"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&body)
			codes <- resp.StatusCode
			bodies <- body.Error
		}()
		time.Sleep(10 * time.Millisecond)
	}
	wg.Wait()
	close(codes)
	close(bodies)

	var ok200, limited int
	for code := range codes {
		switch code {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			limited++
		default:
			t.Fatalf("unexpected status %d in burst", code)
		}
	}
	for e := range bodies {
		if e != "" && e != "rate_limited" {
			t.Fatalf("unexpected error code %q in burst", e)
		}
	}
	if limited == 0 {
		t.Fatal("burst of 12 at 100/s against a 2/s bucket saw zero 429s")
	}
	if ok200 == 0 {
		t.Fatal("burst admitted nothing; the bucket's burst capacity should pass a few")
	}

	// The interactive tenant is unaffected by the bulk tenant's debt.
	resp, err := get("interactive", testQuery)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("interactive tenant: code %d", resp.StatusCode)
	}

	st := s.Stats()
	if int(st.RateLimited) != limited {
		t.Fatalf("RateLimited = %d, burst observed %d", st.RateLimited, limited)
	}
	if st.Requests != burst+1 {
		t.Fatalf("Requests = %d, want %d", st.Requests, burst+1)
	}
}

// TestClientDisconnectCancels pins the serving tier's half of deadline
// propagation: a client that goes away mid-search cancels the engine call
// and is accounted as a 499, not an error.
func TestClientDisconnectCancels(t *testing.T) {
	s, g := newGateServer(t, true, serve.Options{TenantRate: -1})
	defer g.close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s}
	go hs.Serve(l)
	defer hs.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("http://%s/v1/search?q=spielberg+drama", l.Addr()), nil)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errCh <- err
	}()
	<-g.entered // the search is blocked inside the engine
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("canceled request returned a response")
	}
	waitFor(t, func() bool { return s.Stats().ClientCanceled == 1 })
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
