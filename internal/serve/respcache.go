package serve

import (
	"sync/atomic"

	"repro/internal/cache"
)

// respCache is the serving tier's response cache: whole JSON payloads
// keyed by the tenant-visible request shape (endpoint plus every
// response-shaping parameter), validated against per-table versions
// instead of a TTL. Each entry stores the version of every table the
// response depends on, snapshotted BEFORE the request executed — a write
// that lands mid-execution therefore makes the stored entry validate
// stale rather than serving a response that half-saw it. A probe whose
// entry carries a mismatched version counts an invalidation and falls
// through to execution, which overwrites the entry in place (the LRU has
// no delete; overwrite-on-refill is the eviction).
//
// The cache layers above the engine's query cache and the planner's
// plan cache deliberately: those save recomputation, this one saves the
// whole execute-and-encode path, and all three invalidate by the same
// per-table version counters, so an insert into one table leaves
// responses over every other table servable.
type respCache struct {
	lru *cache.LRU[string, *respEntry]

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
}

// respEntry is one cached response: the encoded payload and the table
// versions it was computed against.
type respEntry struct {
	payload any
	deps    map[string]uint64
}

func newRespCache(size int) *respCache {
	if size <= 0 {
		return nil
	}
	return &respCache{lru: cache.New[string, *respEntry](size)}
}

// get probes the cache; current reports each dependency's live version.
// A nil receiver (cache disabled) always misses without counting.
func (rc *respCache) get(key string, current func(table string) (uint64, bool)) (any, bool) {
	if rc == nil {
		return nil, false
	}
	e, ok := rc.lru.Get(key)
	if !ok {
		rc.misses.Add(1)
		return nil, false
	}
	for tbl, ver := range e.deps {
		v, ok := current(tbl)
		if !ok || v != ver {
			rc.invalidations.Add(1)
			return nil, false
		}
	}
	rc.hits.Add(1)
	return e.payload, true
}

// put stores a response. Entries without dependencies are refused: a
// source that exposes no per-table versions gives the cache nothing to
// invalidate on, so caching would serve stale data forever.
func (rc *respCache) put(key string, payload any, deps map[string]uint64) {
	if rc == nil || len(deps) == 0 {
		return
	}
	rc.lru.Put(key, &respEntry{payload: payload, deps: deps})
}
