// Package ds implements the Dempster–Shafer theory of evidence as used by
// the QUEST combiner: mass functions over a frame of discernment, an
// explicit ignorance mass on the universe, normalization, and Dempster's
// rule of combination.
//
// QUEST only ever assigns positive mass to singleton hypotheses plus the
// universe Θ (the "degree of uncertainty" parameter O of each source), which
// keeps combination quadratic in the number of hypotheses while still
// exhibiting the full DS behaviour: conflict renormalization and
// ignorance-weighted blending of sources.
package ds

import (
	"fmt"
	"math"
	"sort"
)

// Mass is a body of evidence: masses on singleton hypotheses (keyed by
// string id) plus a mass on the universe Θ representing ignorance.
type Mass struct {
	singletons map[string]float64
	theta      float64
}

// NewMass returns an empty body of evidence with full ignorance (Θ = 1).
func NewMass() *Mass {
	return &Mass{singletons: make(map[string]float64), theta: 1}
}

// AddEvidence accumulates (unnormalized) weight on one hypothesis. Negative
// weights are rejected.
func (m *Mass) AddEvidence(hypothesis string, weight float64) error {
	if weight < 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		return fmt.Errorf("ds: invalid evidence weight %v for %q", weight, hypothesis)
	}
	m.singletons[hypothesis] += weight
	return nil
}

// SetIgnorance fixes the universe mass O in [0,1] and rescales the singleton
// masses so the body is normalized: singletons sum to (1−O), Θ gets O.
// A body with no singleton evidence becomes pure ignorance regardless of O.
//
// This is the paper's `setUncertainty` + `normalize` pair from Algorithm 1.
// Summation runs in sorted-hypothesis order: float addition is not
// associative, and map-ordered sums would make combined beliefs — and hence
// tie-breaks in rankings — vary between runs.
func (m *Mass) SetIgnorance(o float64) error {
	if o < 0 || o > 1 || math.IsNaN(o) {
		return fmt.Errorf("ds: ignorance %v out of [0,1]", o)
	}
	total := 0.0
	for _, h := range sortedKeys(m.singletons) {
		total += m.singletons[h]
	}
	if total == 0 {
		m.theta = 1
		return nil
	}
	scale := (1 - o) / total
	for h := range m.singletons {
		m.singletons[h] *= scale
	}
	m.theta = o
	return nil
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Theta returns the current universe (ignorance) mass.
func (m *Mass) Theta() float64 { return m.theta }

// Mass returns the mass committed to a singleton hypothesis.
func (m *Mass) Mass(hypothesis string) float64 { return m.singletons[hypothesis] }

// Hypotheses returns the singleton hypotheses with positive mass, sorted.
func (m *Mass) Hypotheses() []string {
	out := make([]string, 0, len(m.singletons))
	for h, w := range m.singletons {
		if w > 0 {
			out = append(out, h)
		}
	}
	sort.Strings(out)
	return out
}

// Total returns the full mass (singletons + Θ); 1 after SetIgnorance.
func (m *Mass) Total() float64 {
	t := m.theta
	for _, w := range m.singletons {
		t += w
	}
	return t
}

// Clone deep-copies the body of evidence.
func (m *Mass) Clone() *Mass {
	c := NewMass()
	c.theta = m.theta
	for h, w := range m.singletons {
		c.singletons[h] = w
	}
	return c
}

// Combine applies Dempster's rule of combination to two bodies of evidence
// whose focal elements are singletons plus Θ:
//
//	m(A) ∝ m1(A)·m2(A) + m1(A)·m2(Θ) + m1(Θ)·m2(A)   for singleton A
//	m(Θ) ∝ m1(Θ)·m2(Θ)
//
// normalized by 1−K where K = Σ_{A≠B} m1(A)·m2(B) is the conflict. Returns
// an error when the two bodies are in total conflict (K = 1).
func Combine(m1, m2 *Mass) (*Mass, error) {
	out := NewMass()
	norm := 1 - Conflict(m1, m2)
	if norm <= 1e-15 {
		return nil, fmt.Errorf("ds: total conflict between bodies of evidence")
	}
	hyps := make(map[string]bool)
	for h := range m1.singletons {
		hyps[h] = true
	}
	for h := range m2.singletons {
		hyps[h] = true
	}
	for h := range hyps {
		w := m1.singletons[h]*m2.singletons[h] +
			m1.singletons[h]*m2.theta +
			m1.theta*m2.singletons[h]
		if w > 0 {
			out.singletons[h] = w / norm
		}
	}
	out.theta = m1.theta * m2.theta / norm
	return out, nil
}

// Conflict returns K, the mass of disagreement between the two bodies,
// accumulated in sorted order so the float sum is reproducible.
func Conflict(m1, m2 *Mass) float64 {
	k1 := sortedKeys(m1.singletons)
	k2 := sortedKeys(m2.singletons)
	k := 0.0
	for _, h1 := range k1 {
		w1 := m1.singletons[h1]
		for _, h2 := range k2 {
			if h1 != h2 {
				k += w1 * m2.singletons[h2]
			}
		}
	}
	return k
}

// Belief of a singleton hypothesis equals its mass (no proper subsets).
func (m *Mass) Belief(hypothesis string) float64 { return m.singletons[hypothesis] }

// Plausibility of a singleton hypothesis is mass + Θ (Θ is the only
// superset with positive mass).
func (m *Mass) Plausibility(hypothesis string) float64 {
	return m.singletons[hypothesis] + m.theta
}

// Ranked is one hypothesis with its combined belief.
type Ranked struct {
	Hypothesis string
	Belief     float64
}

// Ranking returns hypotheses sorted by descending belief, ties broken by
// hypothesis id for determinism.
func (m *Mass) Ranking() []Ranked {
	out := make([]Ranked, 0, len(m.singletons))
	for h, w := range m.singletons {
		if w > 0 {
			out = append(out, Ranked{Hypothesis: h, Belief: w})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Belief != out[j].Belief {
			return out[i].Belief > out[j].Belief
		}
		return out[i].Hypothesis < out[j].Hypothesis
	})
	return out
}

// Evidence is a scored hypothesis contributed by one source.
type Evidence struct {
	Hypothesis string
	Score      float64
}

// FromScores builds a normalized body of evidence from a score list and an
// ignorance degree — the `CombinerDST` inner loop of Algorithm 1.
func FromScores(evidence []Evidence, ignorance float64) (*Mass, error) {
	m := NewMass()
	for _, e := range evidence {
		if err := m.AddEvidence(e.Hypothesis, e.Score); err != nil {
			return nil, err
		}
	}
	if err := m.SetIgnorance(ignorance); err != nil {
		return nil, err
	}
	return m, nil
}

// CombineScores is the full CombinerDST of Algorithm 1: normalize each
// source with its own ignorance, then apply Dempster's rule.
func CombineScores(src1 []Evidence, o1 float64, src2 []Evidence, o2 float64) ([]Ranked, error) {
	m1, err := FromScores(src1, o1)
	if err != nil {
		return nil, err
	}
	m2, err := FromScores(src2, o2)
	if err != nil {
		return nil, err
	}
	c, err := Combine(m1, m2)
	if err != nil {
		return nil, err
	}
	return c.Ranking(), nil
}
