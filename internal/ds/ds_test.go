package ds

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustMass(t *testing.T, ev []Evidence, o float64) *Mass {
	t.Helper()
	m, err := FromScores(ev, o)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestAddEvidenceValidation(t *testing.T) {
	m := NewMass()
	if err := m.AddEvidence("a", -1); err == nil {
		t.Error("negative weight must fail")
	}
	if err := m.AddEvidence("a", math.NaN()); err == nil {
		t.Error("NaN weight must fail")
	}
	if err := m.AddEvidence("a", math.Inf(1)); err == nil {
		t.Error("Inf weight must fail")
	}
	if err := m.AddEvidence("a", 2); err != nil {
		t.Errorf("valid weight failed: %v", err)
	}
}

func TestSetIgnoranceNormalizes(t *testing.T) {
	m := NewMass()
	_ = m.AddEvidence("a", 3)
	_ = m.AddEvidence("b", 1)
	if err := m.SetIgnorance(0.2); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Total()-1) > 1e-12 {
		t.Fatalf("total = %v, want 1", m.Total())
	}
	if math.Abs(m.Theta()-0.2) > 1e-12 {
		t.Fatalf("theta = %v", m.Theta())
	}
	if math.Abs(m.Mass("a")-0.6) > 1e-12 || math.Abs(m.Mass("b")-0.2) > 1e-12 {
		t.Fatalf("masses = %v, %v", m.Mass("a"), m.Mass("b"))
	}
}

func TestSetIgnoranceBounds(t *testing.T) {
	m := NewMass()
	_ = m.AddEvidence("a", 1)
	for _, o := range []float64{-0.1, 1.1, math.NaN()} {
		if err := m.SetIgnorance(o); err == nil {
			t.Errorf("SetIgnorance(%v) must fail", o)
		}
	}
}

func TestSetIgnoranceEmptyBodyBecomesVacuous(t *testing.T) {
	m := NewMass()
	if err := m.SetIgnorance(0.3); err != nil {
		t.Fatal(err)
	}
	if m.Theta() != 1 {
		t.Fatalf("empty body must be vacuous, theta = %v", m.Theta())
	}
}

func TestCombineVacuousIsNeutral(t *testing.T) {
	m := mustMass(t, []Evidence{{"a", 2}, {"b", 1}}, 0.25)
	vac := NewMass() // full ignorance
	c, err := Combine(m, vac)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []string{"a", "b"} {
		if math.Abs(c.Mass(h)-m.Mass(h)) > 1e-12 {
			t.Fatalf("vacuous combination changed mass of %s: %v -> %v", h, m.Mass(h), c.Mass(h))
		}
	}
	if math.Abs(c.Theta()-m.Theta()) > 1e-12 {
		t.Fatalf("theta changed: %v -> %v", m.Theta(), c.Theta())
	}
}

func TestCombineCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		ev1 := []Evidence{{"a", r.Float64()}, {"b", r.Float64()}, {"c", r.Float64()}}
		ev2 := []Evidence{{"b", r.Float64()}, {"c", r.Float64()}, {"d", r.Float64()}}
		m1 := mustMass(t, ev1, 0.1+0.5*r.Float64())
		m2 := mustMass(t, ev2, 0.1+0.5*r.Float64())
		c12, err1 := Combine(m1, m2)
		c21, err2 := Combine(m2, m1)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		for _, h := range []string{"a", "b", "c", "d"} {
			if math.Abs(c12.Mass(h)-c21.Mass(h)) > 1e-9 {
				t.Fatalf("not commutative on %s: %v vs %v", h, c12.Mass(h), c21.Mass(h))
			}
		}
	}
}

func TestCombineNormalized(t *testing.T) {
	m1 := mustMass(t, []Evidence{{"a", 1}, {"b", 2}}, 0.3)
	m2 := mustMass(t, []Evidence{{"a", 2}, {"c", 1}}, 0.4)
	c, err := Combine(m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Total()-1) > 1e-9 {
		t.Fatalf("combined total = %v, want 1", c.Total())
	}
}

func TestCombineReinforcesAgreement(t *testing.T) {
	// Two sources both favoring "a" must yield higher belief in "a" than
	// either source alone (relative to the competitor).
	m1 := mustMass(t, []Evidence{{"a", 3}, {"b", 1}}, 0.2)
	m2 := mustMass(t, []Evidence{{"a", 3}, {"b", 1}}, 0.2)
	c, err := Combine(m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	ratioBefore := m1.Mass("a") / m1.Mass("b")
	ratioAfter := c.Mass("a") / c.Mass("b")
	if ratioAfter <= ratioBefore {
		t.Fatalf("agreement must sharpen the ratio: %v -> %v", ratioBefore, ratioAfter)
	}
}

func TestCombineTotalConflict(t *testing.T) {
	m1 := mustMass(t, []Evidence{{"a", 1}}, 0)
	m2 := mustMass(t, []Evidence{{"b", 1}}, 0)
	if _, err := Combine(m1, m2); err == nil {
		t.Fatal("total conflict must error")
	}
	// With ignorance, combination succeeds.
	m1 = mustMass(t, []Evidence{{"a", 1}}, 0.1)
	m2 = mustMass(t, []Evidence{{"b", 1}}, 0.1)
	c, err := Combine(m1, m2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Mass("a") <= 0 || c.Mass("b") <= 0 {
		t.Fatal("both hypotheses must retain mass")
	}
}

func TestConflictMeasure(t *testing.T) {
	m1 := mustMass(t, []Evidence{{"a", 1}}, 0)
	m2 := mustMass(t, []Evidence{{"b", 1}}, 0)
	if k := Conflict(m1, m2); math.Abs(k-1) > 1e-12 {
		t.Fatalf("conflict = %v, want 1", k)
	}
	m3 := mustMass(t, []Evidence{{"a", 1}}, 0)
	if k := Conflict(m1, m3); k != 0 {
		t.Fatalf("conflict = %v, want 0", k)
	}
}

func TestIgnoranceShiftsInfluence(t *testing.T) {
	// The QUEST adaptation knob: raising one source's ignorance must shift
	// the combined ranking toward the other source.
	src1 := []Evidence{{"a", 3}, {"b", 1}} // favors a
	src2 := []Evidence{{"a", 1}, {"b", 3}} // favors b

	lowTrust1, err := CombineScores(src1, 0.9, src2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	highTrust1, err := CombineScores(src1, 0.1, src2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if lowTrust1[0].Hypothesis != "b" {
		t.Fatalf("distrusting src1 must rank b first, got %v", lowTrust1)
	}
	if highTrust1[0].Hypothesis != "a" {
		t.Fatalf("trusting src1 must rank a first, got %v", highTrust1)
	}
}

func TestBeliefPlausibility(t *testing.T) {
	m := mustMass(t, []Evidence{{"a", 1}, {"b", 1}}, 0.5)
	if m.Belief("a") != m.Mass("a") {
		t.Fatal("singleton belief = mass")
	}
	want := m.Mass("a") + m.Theta()
	if math.Abs(m.Plausibility("a")-want) > 1e-12 {
		t.Fatalf("plausibility = %v, want %v", m.Plausibility("a"), want)
	}
	if m.Plausibility("a") < m.Belief("a") {
		t.Fatal("plausibility >= belief must hold")
	}
}

func TestRankingDeterministic(t *testing.T) {
	m := mustMass(t, []Evidence{{"b", 1}, {"a", 1}, {"c", 2}}, 0.2)
	r := m.Ranking()
	if r[0].Hypothesis != "c" {
		t.Fatalf("ranking = %v", r)
	}
	// Ties broken lexicographically.
	if r[1].Hypothesis != "a" || r[2].Hypothesis != "b" {
		t.Fatalf("tie break wrong: %v", r)
	}
}

func TestHypothesesSorted(t *testing.T) {
	m := mustMass(t, []Evidence{{"z", 1}, {"a", 1}, {"m", 1}}, 0)
	h := m.Hypotheses()
	if len(h) != 3 || h[0] != "a" || h[1] != "m" || h[2] != "z" {
		t.Fatalf("hypotheses = %v", h)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := mustMass(t, []Evidence{{"a", 1}}, 0.3)
	c := m.Clone()
	_ = c.AddEvidence("b", 5)
	if m.Mass("b") != 0 {
		t.Fatal("Clone must not share state")
	}
}

func TestCombinePreservesTotalMassProperty(t *testing.T) {
	f := func(w1, w2, w3, w4 uint8) bool {
		ev1 := []Evidence{{"a", float64(w1%50) + 1}, {"b", float64(w2%50) + 1}}
		ev2 := []Evidence{{"a", float64(w3%50) + 1}, {"b", float64(w4%50) + 1}}
		m1, err := FromScores(ev1, 0.25)
		if err != nil {
			return false
		}
		m2, err := FromScores(ev2, 0.25)
		if err != nil {
			return false
		}
		c, err := Combine(m1, m2)
		if err != nil {
			return false
		}
		return math.Abs(c.Total()-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCombineScoresEndToEnd(t *testing.T) {
	ranked, err := CombineScores(
		[]Evidence{{"x", 2}, {"y", 1}}, 0.3,
		[]Evidence{{"x", 1}, {"z", 1}}, 0.3,
	)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Hypothesis != "x" {
		t.Fatalf("x supported by both sources must win: %v", ranked)
	}
	total := 0.0
	for _, r := range ranked {
		total += r.Belief
	}
	if total > 1+1e-9 {
		t.Fatalf("beliefs sum to %v > 1", total)
	}
}
