package wrapper

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/relational"
)

// BackendFactory builds a Source over an owned database. Factories are how
// execution backends (single-node full access, hash-sharded, future remote
// wrappers) plug into the system without the consumer naming a concrete
// type: the conformance harness iterates every registered kind and holds
// each to the same differential contract, and quest.OpenBackend selects one
// by name. A factory may reorganize the data it is handed (the sharded
// backend partitions the rows into per-shard databases); callers must treat
// the database as owned by the returned source afterwards.
type BackendFactory func(db *relational.Database) (Source, error)

var (
	backendMu sync.RWMutex
	backends  = map[string]BackendFactory{}
)

// RegisterBackend makes a backend kind available to OpenBackend under the
// given name. Registration happens in package init functions (the shard
// package registers "sharded"); re-registering a name replaces the factory.
func RegisterBackend(kind string, f BackendFactory) {
	backendMu.Lock()
	defer backendMu.Unlock()
	backends[kind] = f
}

// OpenBackend builds the named backend kind over the database.
func OpenBackend(kind string, db *relational.Database) (Source, error) {
	backendMu.RLock()
	f, ok := backends[kind]
	backendMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("wrapper: unknown backend kind %q (registered: %v)", kind, BackendKinds())
	}
	return f(db)
}

// BackendKinds returns the registered backend names, sorted.
func BackendKinds() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	out := make([]string, 0, len(backends))
	for k := range backends {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func init() {
	RegisterBackend("full", func(db *relational.Database) (Source, error) {
		return NewFullAccessSource(db), nil
	})
}
