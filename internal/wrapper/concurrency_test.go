package wrapper

import (
	"sync"
	"testing"
)

// TestEdgeDistanceConcurrent exercises the documented concurrency safety of
// FullAccessSource: many goroutines requesting uncached edge statistics at
// once (which lazily builds column indexes underneath). Run under -race.
func TestEdgeDistanceConcurrent(t *testing.T) {
	src := NewFullAccessSource(fixtureDB(t))
	edges := src.Schema().JoinEdges()
	if len(edges) == 0 {
		t.Fatal("fixture has no join edges")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				for _, e := range edges {
					if _, err := src.EdgeDistance(e); err != nil {
						t.Errorf("EdgeDistance(%v): %v", e, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	// Cached and fresh values must agree.
	for _, e := range edges {
		d1, err := src.EdgeDistance(e)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := NewFullAccessSource(src.Database()).EdgeDistance(e)
		if err != nil {
			t.Fatal(err)
		}
		if d1 != d2 {
			t.Fatalf("edge %v: cached %g != fresh %g", e, d1, d2)
		}
	}
}
