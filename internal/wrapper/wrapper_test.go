package wrapper

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/ontology"
	"repro/internal/relational"
	"repro/internal/sql"
)

func fixtureDB(t *testing.T) *relational.Database {
	t.Helper()
	s := relational.NewSchema()
	add := func(ts *relational.TableSchema) {
		t.Helper()
		if err := s.AddTable(ts); err != nil {
			t.Fatal(err)
		}
	}
	add(&relational.TableSchema{
		Name: "movie",
		Columns: []relational.Column{
			{Name: "movie_id", Type: relational.TypeInt, NotNull: true},
			{Name: "title", Type: relational.TypeString,
				Annotations: []string{"film", "name"}},
			{Name: "year", Type: relational.TypeInt,
				Annotations: []string{"released"}, Pattern: `(19|20)\d\d`},
			{Name: "genre", Type: relational.TypeString,
				Annotations: []string{"category"}, Pattern: `drama|comedy|thriller|horror`},
		},
		PrimaryKey: "movie_id",
	})
	add(&relational.TableSchema{
		Name: "cast_info",
		Columns: []relational.Column{
			{Name: "cast_id", Type: relational.TypeInt, NotNull: true},
			{Name: "movie_id", Type: relational.TypeInt, NotNull: true},
			{Name: "person", Type: relational.TypeString,
				Annotations: []string{"actor"}},
		},
		PrimaryKey: "cast_id",
		ForeignKeys: []relational.ForeignKey{
			{Column: "movie_id", RefTable: "movie", RefColumn: "movie_id"},
		},
	})
	db := relational.MustNewDatabase("movies", s)
	I, S := relational.Int, relational.String_
	for _, r := range []relational.Row{
		{I(1), S("the dark night"), I(2008), S("thriller")},
		{I(2), S("silent river"), I(1994), S("drama")},
		{I(3), S("dark river"), I(2001), S("drama")},
	} {
		if err := db.Insert("movie", r); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []relational.Row{
		{I(1), I(1), S("alice smith")},
		{I(2), I(2), S("bob jones")},
	} {
		if err := db.Insert("cast_info", r); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestFullAccessSourceBasics(t *testing.T) {
	db := fixtureDB(t)
	src := NewFullAccessSource(db)
	if src.Name() != "movies" {
		t.Errorf("Name() = %q", src.Name())
	}
	if !src.HasInstanceAccess() {
		t.Error("full access source must report instance access")
	}
	if src.Schema() != db.Schema {
		t.Error("Schema() must return the database schema")
	}
}

func TestFullAccessAttributeScore(t *testing.T) {
	src := NewFullAccessSource(fixtureDB(t))
	if s := src.AttributeScore("movie", "title", "dark"); s <= 0 {
		t.Errorf("score(movie.title, dark) = %v", s)
	}
	if s := src.AttributeScore("movie", "title", "nonexistent"); s != 0 {
		t.Errorf("score of absent keyword = %v", s)
	}
	if s := src.AttributeScore("cast_info", "person", "smith"); s <= 0 {
		t.Errorf("score(cast_info.person, smith) = %v", s)
	}
}

func TestFullAccessEdgeDistance(t *testing.T) {
	src := NewFullAccessSource(fixtureDB(t))
	edge := relational.JoinEdge{
		FromTable: "cast_info", FromColumn: "movie_id",
		ToTable: "movie", ToColumn: "movie_id",
	}
	d1, err := src.EdgeDistance(edge)
	if err != nil {
		t.Fatal(err)
	}
	if d1 < 0 || d1 > 1 {
		t.Fatalf("distance = %v out of [0,1]", d1)
	}
	// Cached second call must agree.
	d2, err := src.EdgeDistance(edge)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("cache mismatch: %v vs %v", d1, d2)
	}
	// Intra-table edge.
	intra := relational.JoinEdge{
		FromTable: "movie", FromColumn: "movie_id",
		ToTable: "movie", ToColumn: "genre",
	}
	if _, err := src.EdgeDistance(intra); err != nil {
		t.Fatal(err)
	}
}

func TestFullAccessExecute(t *testing.T) {
	src := NewFullAccessSource(fixtureDB(t))
	stmt, err := sql.Parse("SELECT title FROM movie WHERE genre = 'drama' ORDER BY title")
	if err != nil {
		t.Fatal(err)
	}
	res, err := src.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestMetadataSourcePatternGate(t *testing.T) {
	db := fixtureDB(t)
	src := NewMetadataSource("hidden", db.Schema, ontology.DefaultThesaurus(), nil)
	// Year column has a pattern: keywords violating it must score 0.
	if s := src.AttributeScore("movie", "year", "banana"); s != 0 {
		t.Errorf("pattern-violating keyword scored %v", s)
	}
	if s := src.AttributeScore("movie", "year", "1994"); s <= 0 {
		t.Errorf("pattern-matching year scored %v", s)
	}
	// Genre pattern accepts only listed genres.
	if s := src.AttributeScore("movie", "genre", "drama"); s <= 0 {
		t.Errorf("drama should be admissible in genre, got %v", s)
	}
	if s := src.AttributeScore("movie", "genre", "1994"); s != 0 {
		t.Errorf("1994 in genre scored %v", s)
	}
}

func TestMetadataSourceTypeCompatibility(t *testing.T) {
	db := fixtureDB(t)
	src := NewMetadataSource("hidden", db.Schema, nil, nil)
	// Non-numeric keyword against a numeric pattern-less column: movie_id.
	if s := src.AttributeScore("movie", "movie_id", "dark"); s != 0 {
		t.Errorf("text keyword on INT column scored %v", s)
	}
	// Numeric keyword on INT column without pattern is plausible.
	if s := src.AttributeScore("movie", "movie_id", "7"); s <= 0 {
		t.Errorf("numeric keyword on INT column scored %v", s)
	}
	// Free text column weakly accepts any text keyword.
	if s := src.AttributeScore("movie", "title", "anything"); s <= 0 {
		t.Errorf("free text column must weakly accept, got %v", s)
	}
}

func TestMetadataSourceOntologyEvidence(t *testing.T) {
	db := fixtureDB(t)
	thes := ontology.DefaultThesaurus()
	src := NewMetadataSource("hidden", db.Schema, thes, nil)
	// "actor" is an annotation of cast_info.person.
	withAnn := src.AttributeScore("cast_info", "person", "actor")
	plain := src.AttributeScore("movie", "title", "actor")
	if withAnn <= plain {
		t.Errorf("annotated attribute must outrank plain text: %v <= %v", withAnn, plain)
	}
	// Synonym via thesaurus: "star" ~ "actor".
	if s := src.AttributeScore("cast_info", "person", "star"); s <= plain {
		t.Errorf("synonym evidence missing: %v", s)
	}
}

func TestMetadataSourceUnknownAttr(t *testing.T) {
	db := fixtureDB(t)
	src := NewMetadataSource("hidden", db.Schema, nil, nil)
	if s := src.AttributeScore("nope", "x", "kw"); s != 0 {
		t.Errorf("unknown table scored %v", s)
	}
	if s := src.AttributeScore("movie", "nope", "kw"); s != 0 {
		t.Errorf("unknown column scored %v", s)
	}
}

func TestMetadataSourceNoInstanceAccess(t *testing.T) {
	db := fixtureDB(t)
	src := NewMetadataSource("hidden", db.Schema, nil, nil)
	if src.HasInstanceAccess() {
		t.Error("metadata source must not report instance access")
	}
	_, err := src.EdgeDistance(relational.JoinEdge{})
	if !errors.Is(err, ErrNoInstanceAccess) {
		t.Errorf("EdgeDistance error = %v, want ErrNoInstanceAccess", err)
	}
}

func TestMetadataSourceExecuteWithoutEndpoint(t *testing.T) {
	db := fixtureDB(t)
	src := NewMetadataSource("hidden", db.Schema, nil, nil)
	stmt, _ := sql.Parse("SELECT title FROM movie")
	if _, err := src.Execute(stmt); err == nil || !strings.Contains(err.Error(), "endpoint") {
		t.Fatalf("execute without endpoint = %v", err)
	}
}

func TestHiddenSourceForExecutesThroughEndpoint(t *testing.T) {
	db := fixtureDB(t)
	src := HiddenSourceFor(db, ontology.DefaultThesaurus())
	if src.HasInstanceAccess() {
		t.Error("hidden source must not have instance access")
	}
	stmt, _ := sql.Parse("SELECT COUNT(*) FROM movie")
	res, err := src.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 3 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	if !strings.Contains(src.Name(), "hidden") {
		t.Errorf("name = %q", src.Name())
	}
}

func TestSourceInterfaceCompliance(t *testing.T) {
	var _ Source = (*FullAccessSource)(nil)
	var _ Source = (*MetadataSource)(nil)
}
