// Package wrapper isolates QUEST from how a data source is accessed, the
// role of the paper's wrapper module: QUEST itself only consumes schema
// metadata, keyword→attribute relevance scores, optional instance
// statistics, and a SQL execution service.
//
// Two implementations are provided. FullAccessSource owns the database and
// answers relevance queries from full-text indexes and statistics from the
// instance — the "owned database" scenario. MetadataSource sees only the
// enriched schema (annotations, value patterns, data types) plus an
// ontology, and executes SQL through an opaque endpoint function — the
// hidden-source / Deep Web scenario, where QUEST still works but with
// coarser evidence.
package wrapper

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/fulltext"
	"repro/internal/mi"
	"repro/internal/ontology"
	"repro/internal/relational"
	"repro/internal/sql"
)

// ErrNoInstanceAccess is returned by instance-statistics methods of sources
// that cannot see the data.
var ErrNoInstanceAccess = errors.New("wrapper: source has no instance access")

// ConcurrentExecutor is an optional marker interface for sources whose
// Execute method is safe to invoke from multiple goroutines at once. The
// engine only parallelizes validation queries (PruneEmpty) by default over
// sources that report true; other sources get sequential execution unless
// the engine's Parallelism option explicitly opts in.
type ConcurrentExecutor interface {
	ExecutesConcurrently() bool
}

// ExistsExecutor is an optional interface for sources that can answer
// "does this query return any tuple?" without materializing the result.
// The engine's PruneEmpty validation asks exactly that question once per
// candidate configuration, so the answer's cost should not scale with the
// result size. Sources that do not implement it are served by the
// ExecuteExists helper through a LIMIT 1 probe on their Execute method.
type ExistsExecutor interface {
	ExecuteExists(stmt *sql.SelectStmt) (bool, error)
}

// SourceExecutor generalizes ExistsExecutor to the full execution surface a
// query coordinator needs from a backend: materializing execution plus the
// existence-only mode. It is the per-shard contract of the sharded
// execution layer (internal/shard) — anything that can run a SELECT and
// answer an emptiness probe can hold a partition of the data.
// FullAccessSource implements it over the in-memory engine.
type SourceExecutor interface {
	Execute(stmt *sql.SelectStmt) (*sql.Result, error)
	ExistsExecutor
}

// RowSink receives a streamed result's rows. Push is called once per row,
// in stream order; Reset discards everything delivered so far and restarts
// the stream from the top — the hook that lets a transport retry a failed
// attempt mid-stream without duplicating rows at the consumer. A Push
// error aborts the stream and propagates to the ExecuteStream caller.
type RowSink interface {
	Reset()
	Push(row relational.Row) error
}

// ColumnSink is an optional RowSink face for sinks that want the column
// header before the first row. When a streaming executor knows the header
// up front it calls StartColumns exactly once, before any Push (and again
// after each Reset that replays the stream). A StartColumns error aborts
// the stream like a Push error.
type ColumnSink interface {
	StartColumns(cols []string) error
}

// BatchSink is an optional RowSink face for sinks that accept rows a batch
// at a time — the columnar transport client hands a whole decoded frame
// over in one call instead of re-looping per row. Semantics are identical
// to calling Push for each row in order; the sink must not retain the
// slice.
type BatchSink interface {
	PushBatch(rows []relational.Row) error
}

// StreamExecutor is the streaming face of a backend: rows are delivered to
// the sink as they arrive instead of materializing the whole result first,
// so a coordinator can start merging while a shard is still sending. The
// returned slice is the result's column header. Implementations may call
// sink.Reset and replay from the beginning (retries); consumers must treat
// the row set as final only when ExecuteStream returns nil.
type StreamExecutor interface {
	ExecuteStream(stmt *sql.SelectStmt, sink RowSink) ([]string, error)
}

// RowBuffer is the trivial materializing RowSink: it accumulates pushed
// rows in memory. It is the sink both the sharded coordinator (gathering
// a fragment) and the transport client (materializing Execute from
// ExecuteStream) use; one type, one Reset semantics.
type RowBuffer struct {
	Rows []relational.Row
}

// Reset implements RowSink.
func (b *RowBuffer) Reset() { b.Rows = b.Rows[:0] }

// Push implements RowSink.
func (b *RowBuffer) Push(r relational.Row) error {
	b.Rows = append(b.Rows, r)
	return nil
}

// PushBatch implements BatchSink.
func (b *RowBuffer) PushBatch(rows []relational.Row) error {
	b.Rows = append(b.Rows, rows...)
	return nil
}

// ContextExecutor is the optional context-aware face of Execute: sources
// that can abandon work when the caller gives up (remote transport
// clients closing the in-flight connection, coordinators cancelling their
// fan-out) implement it, and ExecuteContext dispatches through it. The
// contract mirrors the standard library's: on cancellation or an expired
// deadline the call returns promptly with the context's error (test with
// errors.Is against context.Canceled / context.DeadlineExceeded).
type ContextExecutor interface {
	ExecuteCtx(ctx context.Context, stmt *sql.SelectStmt) (*sql.Result, error)
}

// ContextExistsExecutor is the context-aware face of ExecuteExists.
type ContextExistsExecutor interface {
	ExecuteExistsCtx(ctx context.Context, stmt *sql.SelectStmt) (bool, error)
}

// ContextStreamExecutor is the context-aware face of ExecuteStream.
type ContextStreamExecutor interface {
	ExecuteStreamCtx(ctx context.Context, stmt *sql.SelectStmt, sink RowSink) ([]string, error)
}

// ExecuteContext runs a statement under a caller context, using the
// deepest cancellation support the source offers: its ContextExecutor
// face when present, a plain Execute otherwise (checked-at-entry only —
// an in-process source that has started executing cannot be interrupted,
// it just finishes and the result is discarded by the caller).
func ExecuteContext(ctx context.Context, src Source, stmt *sql.SelectStmt) (*sql.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if ce, ok := src.(ContextExecutor); ok {
		return ce.ExecuteCtx(ctx, stmt)
	}
	return src.Execute(stmt)
}

// ExecuteExistsContext is ExecuteExists under a caller context, with the
// same dispatch rule as ExecuteContext.
func ExecuteExistsContext(ctx context.Context, src Source, stmt *sql.SelectStmt) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if ce, ok := src.(ContextExistsExecutor); ok {
		return ce.ExecuteExistsCtx(ctx, stmt)
	}
	return ExecuteExists(src, stmt)
}

// StatisticsProvider is the instance-statistics face of a source: per-column
// distribution snapshots the SQL planner (and a sharding coordinator
// merging shard statistics) estimates from. Sources without instance access
// do not implement it.
type StatisticsProvider interface {
	ColumnStatistics(table, column string) (*relational.ColumnStats, error)
}

// Inserter is the write face of a backend: population-phase row inserts.
// Like relational.Table.Insert, implementations need not tolerate Insert
// racing queries on the same data — callers (the sharded coordinator, the
// transport server's replication path) serialize writes and quiesce reads
// around them. Backends without it are read-only to coordinators.
// (FullAccessSource goes further and serializes internally with a
// read/write lock, so the serving tier can interleave inserts with
// queries.)
type Inserter interface {
	Insert(table string, row relational.Row) error
}

// TableVersioner is the cache-invalidation face of a source: it reports a
// table's mutation counter so consumers (the engine's query cache, the
// serving tier's response cache) can validate cached entries per table
// instead of flushing everything on any write. The second return is false
// for unknown tables. Implementations must be cheap and safe to call
// concurrently with Insert — FullAccessSource reads the atomic
// relational.Table version.
type TableVersioner interface {
	TableVersion(table string) (uint64, bool)
}

// ExecuteExists reports whether the statement yields at least one tuple on
// the source, using the cheapest available path: the source's own
// existence mode when it implements ExistsExecutor, otherwise a LIMIT 1
// probe through Execute (ORDER BY is dropped — ordering cannot change
// emptiness — so pass-through endpoints do not pay a sort).
func ExecuteExists(src Source, stmt *sql.SelectStmt) (bool, error) {
	if ee, ok := src.(ExistsExecutor); ok {
		return ee.ExecuteExists(stmt)
	}
	if stmt.Limit == 0 {
		return false, nil
	}
	// Clone rather than mutate: the caller's statement may be cached (the
	// engine re-executes explanation statements across searches) and must
	// come back exactly as it went in, clause slices included.
	probe := stmt.Clone()
	probe.OrderBy = nil
	probe.Limit = 1
	res, err := src.Execute(probe)
	if err != nil {
		return false, err
	}
	return len(res.Rows) > 0, nil
}

// Source is the contract between QUEST and a data source.
type Source interface {
	// Name identifies the source in diagnostics.
	Name() string
	// Schema returns the source's (possibly enriched) schema.
	Schema() *relational.Schema
	// AttributeScore returns the normalized relevance of keyword for the
	// values of table.column, in [0,1]. This is the paper's "function that,
	// given a keyword and the database attributes, ranks the attribute
	// values on the basis of their importance".
	AttributeScore(table, column, keyword string) float64
	// HasInstanceAccess reports whether EdgeDistance uses real statistics.
	HasInstanceAccess() bool
	// EdgeDistance returns the mutual-information distance in [0,1] for a
	// PK/FK edge (or intra-table PK-attribute edge when both columns are in
	// the same table). Metadata-only sources return ErrNoInstanceAccess.
	EdgeDistance(e relational.JoinEdge) (float64, error)
	// Execute runs a SELECT and returns its materialized result.
	Execute(stmt *sql.SelectStmt) (*sql.Result, error)
}

// FullAccessSource exposes an owned relational database with full-text
// indexes built in the setup phase. It is safe for concurrent use,
// including mixed read/write traffic: the full-text index is read-only
// after setup, the statistics cache is mutex-guarded, and dataMu
// serializes Insert against the row-reading faces (Execute, ExecuteExists,
// ExecuteStream, ColumnStatistics, EdgeDistance) so the executor never
// scans a table mid-append.
type FullAccessSource struct {
	db    *relational.Database
	index *fulltext.Index

	// dataMu is held shared by every row-reading face and exclusively by
	// Insert. Reads still run concurrently with each other (the engine's
	// PruneEmpty fan-out depends on that); only writes are exclusive.
	dataMu sync.RWMutex

	edgeMu    sync.Mutex
	edgeCache map[string]float64
}

// NewFullAccessSource indexes the database (setup phase) and returns the
// source.
func NewFullAccessSource(db *relational.Database) *FullAccessSource {
	return &FullAccessSource{
		db:        db,
		index:     fulltext.BuildIndex(db),
		edgeCache: make(map[string]float64),
	}
}

// Name implements Source.
func (s *FullAccessSource) Name() string { return s.db.Name }

// Schema implements Source.
func (s *FullAccessSource) Schema() *relational.Schema { return s.db.Schema }

// Database exposes the underlying database (used by baselines and tests).
func (s *FullAccessSource) Database() *relational.Database { return s.db }

// Index exposes the full-text index (used by baselines).
func (s *FullAccessSource) Index() *fulltext.Index { return s.index }

// AttributeScore implements Source via the full-text index.
func (s *FullAccessSource) AttributeScore(table, column, keyword string) float64 {
	return s.index.Score(table, column, keyword)
}

// HasInstanceAccess implements Source.
func (s *FullAccessSource) HasInstanceAccess() bool { return true }

// EdgeDistance implements Source with information-theoretic statistics
// computed over the instance; results are cached (the backward module asks
// repeatedly during graph construction).
//
// Intra-table edges (PK↔attribute of one table) use the normalized MI
// distance between the two columns. Cross-table FK edges use
// 1 − JoinInformativeness, so dense well-covered joins are cheap and sparse
// link tables expensive — the signal that keeps Steiner trees on join paths
// that lead to actual tuples.
func (s *FullAccessSource) EdgeDistance(e relational.JoinEdge) (float64, error) {
	key := e.FromTable + "." + e.FromColumn + ">" + e.ToTable + "." + e.ToColumn
	s.edgeMu.Lock()
	d, ok := s.edgeCache[key]
	s.edgeMu.Unlock()
	if ok {
		return d, nil
	}
	s.dataMu.RLock()
	defer s.dataMu.RUnlock()
	if strings.EqualFold(e.FromTable, e.ToTable) {
		ps, err := mi.IntraTable(s.db.Table(e.FromTable), e.FromColumn, e.ToColumn)
		if err != nil {
			return 1, err
		}
		d = ps.NormalizedDistance()
	} else {
		q, err := mi.JoinInformativeness(s.db.Table(e.FromTable), e.FromColumn,
			s.db.Table(e.ToTable), e.ToColumn)
		if err != nil {
			return 1, err
		}
		d = 1 - q
	}
	s.edgeMu.Lock()
	s.edgeCache[key] = d
	s.edgeMu.Unlock()
	return d, nil
}

// ColumnStatistics returns the backend's statistics snapshot for one
// column (distinct count, min/max, null fraction, histogram, most common
// values), building it lazily at the current table version. This is the
// instance-statistics face of the wrapper: metadata-only sources cannot
// provide it (ErrNoInstanceAccess), mirroring EdgeDistance.
func (s *FullAccessSource) ColumnStatistics(table, column string) (*relational.ColumnStats, error) {
	s.dataMu.RLock()
	defer s.dataMu.RUnlock()
	t := s.db.Table(table)
	if t == nil {
		return nil, fmt.Errorf("wrapper: unknown table %s", table)
	}
	return t.Stats(column)
}

// Insert implements Inserter directly on the owned database, excluding
// every row-reading face for the duration (dataMu) so the serving tier
// can interleave writes with queries. The table's indexes and statistics
// track the mutation incrementally (see relational/maintain.go), but the
// full-text relevance index is built once at setup and does not fold new
// rows in, exactly like the owned-shards sharded source.
func (s *FullAccessSource) Insert(table string, row relational.Row) error {
	s.dataMu.Lock()
	defer s.dataMu.Unlock()
	return s.db.Insert(table, row)
}

// TableVersion implements TableVersioner on the owned database's atomic
// per-table mutation counters; callers key caches on it.
func (s *FullAccessSource) TableVersion(table string) (uint64, bool) {
	t := s.db.Table(table)
	if t == nil {
		return 0, false
	}
	return t.Version(), true
}

// Execute implements Source directly on the engine.
func (s *FullAccessSource) Execute(stmt *sql.SelectStmt) (*sql.Result, error) {
	s.dataMu.RLock()
	defer s.dataMu.RUnlock()
	return sql.Execute(s.db, stmt)
}

// ExecuteExists implements ExistsExecutor through the engine's streaming
// existence mode: the query stops at its first surviving tuple.
func (s *FullAccessSource) ExecuteExists(stmt *sql.SelectStmt) (bool, error) {
	s.dataMu.RLock()
	defer s.dataMu.RUnlock()
	return sql.Exists(s.db, stmt)
}

// ExecuteStream implements StreamExecutor directly on the engine's
// streaming executor: order-insensitive statements flow row by row with
// O(1) working memory, others fall back to materialized execution and
// replay. The sink's ColumnSink face, when present, receives the header
// before the first row.
func (s *FullAccessSource) ExecuteStream(stmt *sql.SelectStmt, sink RowSink) ([]string, error) {
	s.dataMu.RLock()
	defer s.dataMu.RUnlock()
	sink.Reset()
	var cols []string
	err := sql.ExecuteStream(s.db, stmt,
		func(c []string) error {
			cols = c
			if cs, ok := sink.(ColumnSink); ok {
				return cs.StartColumns(c)
			}
			return nil
		},
		sink.Push)
	if err != nil {
		return nil, err
	}
	return cols, nil
}

// ExecutesConcurrently implements ConcurrentExecutor: the in-memory SQL
// executor only reads the (post-population) database.
//
// FullAccessSource deliberately does NOT implement the Context* execution
// faces: the in-memory executor cannot be interrupted mid-plan, so they
// could only repeat the entry check ExecuteContext/ExecuteExistsContext
// already perform — and their presence would be promoted through types
// that embed FullAccessSource and override only Execute/ExecuteExists
// (test doubles, decorators), silently routing context-aware callers
// around the override.
func (s *FullAccessSource) ExecutesConcurrently() bool { return true }

// Endpoint executes SQL on behalf of a hidden source: the only way a
// MetadataSource can touch data, mirroring a web form or service endpoint.
// The engine invokes the endpoint sequentially unless the source was marked
// concurrency-safe (SetConcurrentSafe, before engine construction) — mark
// it safe to let PruneEmpty validation fan out.
type Endpoint func(stmt *sql.SelectStmt) (*sql.Result, error)

// MetadataSource sees only schema metadata and an ontology. Keyword
// relevance is guessed from column name similarity, annotations, value
// patterns (regular expressions of admissible values) and data-type
// compatibility — the paper's enriched-schema wrapper for Deep Web sources.
type MetadataSource struct {
	name     string
	schema   *relational.Schema
	thes     *ontology.Thesaurus
	endpoint Endpoint
	// concurrentSafe declares the endpoint tolerates concurrent calls;
	// false (the default) keeps the engine's validation queries sequential.
	concurrentSafe bool
}

// SetConcurrentSafe declares whether the endpoint may be invoked from
// multiple goroutines at once. Leave false (the default) for endpoints
// with shared mutable state; built-in wrappers over the in-memory engine
// set it true. The engine reads the flag once at construction, so call
// this before building an engine over the source — later calls have no
// effect on existing engines.
func (s *MetadataSource) SetConcurrentSafe(on bool) { s.concurrentSafe = on }

// ExecutesConcurrently implements ConcurrentExecutor.
func (s *MetadataSource) ExecutesConcurrently() bool { return s.concurrentSafe }

// NewMetadataSource builds a metadata-only source. The endpoint may be nil,
// in which case Execute fails (pure planning mode).
func NewMetadataSource(name string, schema *relational.Schema, thes *ontology.Thesaurus, endpoint Endpoint) *MetadataSource {
	if thes == nil {
		thes = ontology.NewThesaurus()
	}
	// Compile value patterns now: AttributeScore may be called from many
	// goroutines at once, and lazy compilation inside MatchesPattern would
	// race.
	schema.CompilePatterns()
	return &MetadataSource{name: name, schema: schema, thes: thes, endpoint: endpoint}
}

// Name implements Source.
func (s *MetadataSource) Name() string { return s.name }

// Schema implements Source.
func (s *MetadataSource) Schema() *relational.Schema { return s.schema }

// HasInstanceAccess implements Source.
func (s *MetadataSource) HasInstanceAccess() bool { return false }

// EdgeDistance implements Source: no instance, no statistics.
func (s *MetadataSource) EdgeDistance(relational.JoinEdge) (float64, error) {
	return 1, ErrNoInstanceAccess
}

// AttributeScore implements Source from metadata only. The score combines:
//   - value-pattern admissibility (a keyword that cannot match the column's
//     regular expression scores 0 on the value dimension),
//   - data-type compatibility (numeric keywords fit numeric columns),
//   - ontology relatedness and name similarity between the keyword and the
//     column name or its annotations (a keyword "thriller" is admissible in
//     a column annotated "genre").
func (s *MetadataSource) AttributeScore(table, column, keyword string) float64 {
	ts := s.schema.Table(table)
	if ts == nil {
		return 0
	}
	col := ts.Column(column)
	if col == nil {
		return 0
	}
	score := 0.0

	// Pattern admissibility: a matching pattern is strong evidence that the
	// keyword is a value of this attribute.
	if col.Pattern != "" {
		if col.MatchesPattern(keyword) {
			score = 0.8
		} else {
			return 0
		}
	}

	// Type compatibility.
	if isNumericKeyword(keyword) {
		if col.Type == relational.TypeInt || col.Type == relational.TypeFloat {
			if score < 0.5 {
				score = 0.5
			}
		} else if col.Pattern == "" {
			// Numeric keyword against an unconstrained text column: weak.
			score = maxf(score, 0.1)
		}
	} else if col.Type == relational.TypeInt || col.Type == relational.TypeFloat {
		// Non-numeric keyword cannot be a value of a numeric column.
		if col.Pattern == "" {
			return 0
		}
	}

	// Ontology / annotation evidence: the keyword names the kind of thing
	// the column stores.
	best := 0.0
	for _, ann := range col.Annotations {
		if r := s.thes.Related(keyword, ann); r > best {
			best = r
		}
		if n := ontology.NameSimilarity(keyword, ann); n > best {
			best = n * 0.8
		}
	}
	if r := s.thes.Related(keyword, col.Name); r > best {
		best = r
	}
	score = maxf(score, best*0.6)

	// Unconstrained free-text columns accept any non-numeric keyword weakly:
	// the wrapper cannot rule them out.
	if score == 0 && col.Type == relational.TypeString && col.Pattern == "" && !isNumericKeyword(keyword) {
		score = 0.05
	}
	return score
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func isNumericKeyword(k string) bool {
	k = strings.TrimSpace(k)
	if k == "" {
		return false
	}
	if _, err := strconv.ParseFloat(k, 64); err == nil {
		return true
	}
	return false
}

// Execute implements Source through the endpoint.
func (s *MetadataSource) Execute(stmt *sql.SelectStmt) (*sql.Result, error) {
	if s.endpoint == nil {
		return nil, fmt.Errorf("wrapper: source %s has no execution endpoint", s.name)
	}
	return s.endpoint(stmt)
}

// HiddenSourceFor wraps an owned database as if it were a Deep Web source:
// QUEST sees only the schema (with whatever annotations it carries) and may
// execute queries through the endpoint, but cannot index or scan the data.
// Used by the deep-web example and experiment E6.
func HiddenSourceFor(db *relational.Database, thes *ontology.Thesaurus) *MetadataSource {
	s := NewMetadataSource(db.Name+"-hidden", db.Schema, thes,
		func(stmt *sql.SelectStmt) (*sql.Result, error) {
			return sql.Execute(db, stmt)
		})
	s.SetConcurrentSafe(true) // endpoint is the read-only in-memory executor
	return s
}
