package wrapper

import (
	"testing"

	"repro/internal/ontology"
	"repro/internal/relational"
	"repro/internal/sql"
)

// TestExecuteExistsDoesNotMutateStatement pins the fallback probe's clone
// semantics: a source without an existence mode is probed through a LIMIT 1
// rewrite, and the caller's statement — which the engine caches and reuses
// across searches — must come back exactly as it went in, so a later
// Execute of the same statement still honors its ORDER BY and LIMIT.
func TestExecuteExistsDoesNotMutateStatement(t *testing.T) {
	db := fixtureDB(t)
	// MetadataSource does not implement ExistsExecutor, so ExecuteExists
	// takes the fallback path under test.
	src := NewMetadataSource("hidden", db.Schema, ontology.NewThesaurus(),
		func(stmt *sql.SelectStmt) (*sql.Result, error) { return sql.Execute(db, stmt) })
	if _, ok := interface{}(src).(ExistsExecutor); ok {
		t.Fatal("MetadataSource grew an existence mode; this test no longer covers the fallback")
	}

	stmt, err := sql.Parse("SELECT title FROM movie ORDER BY year DESC LIMIT 2 OFFSET 1")
	if err != nil {
		t.Fatal(err)
	}
	before := stmt.SQL()
	run := func() *sql.Result {
		t.Helper()
		res, err := src.Execute(stmt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run()

	ok, err := ExecuteExists(src, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("ExecuteExists = false for a non-empty result")
	}
	if after := stmt.SQL(); after != before {
		t.Fatalf("ExecuteExists mutated the statement:\n before %s\n after  %s", before, after)
	}
	if len(stmt.OrderBy) != 1 || stmt.Limit != 2 || stmt.Offset != 1 {
		t.Fatalf("clause fields changed: order-by=%d limit=%d offset=%d",
			len(stmt.OrderBy), stmt.Limit, stmt.Offset)
	}

	// Reuse across Execute/Exists: the second execution must reproduce the
	// first, row for row.
	second := run()
	if len(first.Rows) != len(second.Rows) {
		t.Fatalf("re-executed statement returned %d rows, want %d", len(second.Rows), len(first.Rows))
	}
	for i := range first.Rows {
		for j := range first.Rows[i] {
			if relational.Compare(first.Rows[i][j], second.Rows[i][j]) != 0 {
				t.Fatalf("row %d diverged after ExecuteExists: %v vs %v", i, second.Rows[i], first.Rows[i])
			}
		}
	}
}

// TestBackendRegistry covers the backend factory registry: the built-in
// "full" kind opens a FullAccessSource, unknown kinds fail with the
// registered list, and kinds enumerate sorted.
func TestBackendRegistry(t *testing.T) {
	db := fixtureDB(t)
	src, err := OpenBackend("full", db)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.(*FullAccessSource); !ok {
		t.Fatalf("OpenBackend(full) = %T, want *FullAccessSource", src)
	}
	if _, ok := src.(SourceExecutor); !ok {
		t.Fatal("full backend does not satisfy SourceExecutor")
	}
	if _, ok := src.(StatisticsProvider); !ok {
		t.Fatal("full backend does not satisfy StatisticsProvider")
	}
	if _, err := OpenBackend("no-such-backend", db); err == nil {
		t.Fatal("OpenBackend accepted an unknown kind")
	}
	kinds := BackendKinds()
	found := false
	for _, k := range kinds {
		if k == "full" {
			found = true
		}
	}
	if !found {
		t.Fatalf("BackendKinds() = %v, missing full", kinds)
	}
}
