package ontology

import (
	"testing"
	"testing/quick"
)

func TestStemTable(t *testing.T) {
	tests := []struct{ in, want string }{
		{"cities", "city"},
		{"running", "runn"},
		{"directed", "direct"},
		{"actors", "actor"},
		{"writers", "writer"},
		{"classes", "class"},
		{"boss", "boss"},   // ss must not strip
		{"cat", "cat"},     // too short to strip
		{"a", "a"},         //
		{"Title", "title"}, // lower-cased
	}
	for _, tt := range tests {
		if got := Stem(tt.in); got != tt.want {
			t.Errorf("Stem(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestStemAlignsSingularPlural(t *testing.T) {
	pairs := [][2]string{
		{"movie", "movies"},
		{"city", "cities"},
		{"country", "countries"},
		{"actor", "actors"},
		{"paper", "papers"},
		{"river", "rivers"},
	}
	for _, p := range pairs {
		if Stem(p[0]) != Stem(p[1]) {
			t.Errorf("Stem(%q)=%q != Stem(%q)=%q", p[0], Stem(p[0]), p[1], Stem(p[1]))
		}
	}
}

func TestStemIdempotent(t *testing.T) {
	words := []string{
		"movies", "cities", "running", "directed", "actors", "papers",
		"countries", "organizations", "rivers", "searching", "indexes",
	}
	for _, w := range words {
		once := Stem(w)
		if twice := Stem(once); twice != once {
			t.Errorf("Stem not idempotent on %q: %q -> %q", w, once, twice)
		}
	}
}

func TestLevenshtein(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
		{"a", "b", 1},
	}
	for _, tt := range tests {
		if got := Levenshtein(tt.a, tt.b); got != tt.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	symmetric := func(a, b string) bool {
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error("symmetry:", err)
	}
	identity := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(identity, nil); err != nil {
		t.Error("identity:", err)
	}
}

func TestSimilarityBounds(t *testing.T) {
	pairs := [][2]string{
		{"title", "title"}, {"movie", "film"}, {"", ""}, {"a", ""},
		{"population", "popul"}, {"abc", "xyz"}, {"year", "years"},
	}
	for _, p := range pairs {
		for name, fn := range map[string]func(a, b string) float64{
			"LevenshteinSim": LevenshteinSim,
			"Jaro":           Jaro,
			"JaroWinkler":    JaroWinkler,
			"TrigramSim":     TrigramSim,
		} {
			got := fn(p[0], p[1])
			if got < 0 || got > 1 {
				t.Errorf("%s(%q, %q) = %v out of [0,1]", name, p[0], p[1], got)
			}
		}
	}
}

func TestSimilarityIdentity(t *testing.T) {
	for _, w := range []string{"title", "movie", "x", "population"} {
		if JaroWinkler(w, w) != 1 {
			t.Errorf("JaroWinkler(%q, %q) != 1", w, w)
		}
		if TrigramSim(w, w) != 1 {
			t.Errorf("TrigramSim(%q, %q) != 1", w, w)
		}
		if LevenshteinSim(w, w) != 1 {
			t.Errorf("LevenshteinSim(%q, %q) != 1", w, w)
		}
	}
}

func TestJaroKnownValues(t *testing.T) {
	// Classic example: MARTHA/MARHTA = 0.944…
	got := Jaro("martha", "marhta")
	if got < 0.943 || got > 0.945 {
		t.Errorf("Jaro(martha, marhta) = %v, want ~0.944", got)
	}
	if Jaro("abc", "xyz") != 0 {
		t.Errorf("disjoint strings must score 0")
	}
	if Jaro("", "abc") != 0 {
		t.Errorf("empty vs non-empty must be 0")
	}
	if Jaro("", "") != 1 {
		t.Errorf("two empties must be 1")
	}
}

func TestJaroWinklerPrefixBoost(t *testing.T) {
	plain := Jaro("prefix", "prefixx")
	boosted := JaroWinkler("prefix", "prefixx")
	if boosted <= plain {
		t.Errorf("shared prefix must boost: %v <= %v", boosted, plain)
	}
}

func TestNameSimilarityHandlesUnderscores(t *testing.T) {
	if s := NameSimilarity("name", "first_name"); s < 0.9 {
		t.Errorf("keyword matching one part of a compound name scored %v", s)
	}
	if s := NameSimilarity("production", "production_year"); s < 0.9 {
		t.Errorf("production vs production_year = %v", s)
	}
	if s := NameSimilarity("titles", "title"); s < 0.9 {
		t.Errorf("plural keyword must match singular column: %v", s)
	}
}

func TestThesaurusSynonyms(t *testing.T) {
	th := NewThesaurus()
	th.AddSynonyms("movie", "film", "picture")
	syn := th.Synonyms("movie")
	if len(syn) != 2 || syn[0] != "film" || syn[1] != "picture" {
		t.Fatalf("Synonyms(movie) = %v", syn)
	}
	// Symmetric.
	if got := th.Synonyms("film"); len(got) != 2 {
		t.Fatalf("Synonyms(film) = %v", got)
	}
	// Case-insensitive.
	if th.Related("MOVIE", "Film") != 0.9 {
		t.Fatal("synonym relation must be case-insensitive")
	}
}

func TestThesaurusHypernyms(t *testing.T) {
	th := NewThesaurus()
	th.AddHypernym("actor", "person")
	th.AddHypernym("director", "person")
	if got := th.Hypernyms("actor"); len(got) != 1 || got[0] != "person" {
		t.Fatalf("Hypernyms(actor) = %v", got)
	}
	if th.Related("actor", "person") != 0.7 {
		t.Fatalf("direct hypernym = %v, want 0.7", th.Related("actor", "person"))
	}
	if th.Related("actor", "director") != 0.5 {
		t.Fatalf("shared hypernym = %v, want 0.5", th.Related("actor", "director"))
	}
}

func TestRelatedHierarchy(t *testing.T) {
	th := DefaultThesaurus()
	if th.Related("movie", "movie") != 1 {
		t.Error("identity must be 1")
	}
	if th.Related("movies", "movie") != 1 {
		t.Error("stem equality must be 1")
	}
	if th.Related("movie", "film") != 0.9 {
		t.Error("synonym must be 0.9")
	}
	if th.Related("quantum", "cheese") != 0 {
		t.Error("unrelated must be 0")
	}
}

func TestDefaultThesaurusCoverage(t *testing.T) {
	th := DefaultThesaurus()
	// One relation from each demo domain.
	for _, pair := range [][2]string{
		{"actor", "star"}, {"paper", "article"}, {"country", "nation"},
		{"city", "town"}, {"venue", "conference"},
	} {
		if th.Related(pair[0], pair[1]) < 0.9 {
			t.Errorf("Related(%q, %q) = %v, want synonym strength", pair[0], pair[1], th.Related(pair[0], pair[1]))
		}
	}
}

func TestTrigramSimShortStrings(t *testing.T) {
	// Very short strings still produce padded trigrams.
	if TrigramSim("a", "a") != 1 {
		t.Error("single-char identity must be 1")
	}
	if TrigramSim("ab", "cd") != 0 {
		t.Error("disjoint short strings must be 0")
	}
}
