// Package ontology provides the lexical/semantic matching toolkit the QUEST
// wrapper and forward module use when full-text access is unavailable or
// insufficient: a small thesaurus (synonyms, hypernyms), a light stemmer,
// and string similarity measures (Levenshtein, Jaro–Winkler, trigram).
//
// The paper's wrapper "exploits regular expressions, schema annotations,
// database metadata and external ontologies" to map keywords onto
// attributes of hidden (Deep Web) sources; this package is the external
// ontology plus the similarity machinery, while regex/annotation handling
// lives with the schema (relational.Column) and the wrapper.
package ontology

import (
	"sort"
	"strings"
)

// Thesaurus holds symmetric synonym sets and directed hypernym (is-a)
// links over lower-cased terms.
type Thesaurus struct {
	synonyms  map[string]map[string]bool
	hypernyms map[string]map[string]bool // term -> its broader terms
}

// NewThesaurus returns an empty thesaurus.
func NewThesaurus() *Thesaurus {
	return &Thesaurus{
		synonyms:  make(map[string]map[string]bool),
		hypernyms: make(map[string]map[string]bool),
	}
}

// AddSynonyms declares all given terms mutually synonymous.
func (t *Thesaurus) AddSynonyms(terms ...string) {
	norm := make([]string, 0, len(terms))
	for _, x := range terms {
		norm = append(norm, strings.ToLower(strings.TrimSpace(x)))
	}
	for _, a := range norm {
		if t.synonyms[a] == nil {
			t.synonyms[a] = make(map[string]bool)
		}
		for _, b := range norm {
			if a != b {
				t.synonyms[a][b] = true
			}
		}
	}
}

// AddHypernym declares that term is-a broader.
func (t *Thesaurus) AddHypernym(term, broader string) {
	term = strings.ToLower(strings.TrimSpace(term))
	broader = strings.ToLower(strings.TrimSpace(broader))
	if t.hypernyms[term] == nil {
		t.hypernyms[term] = make(map[string]bool)
	}
	t.hypernyms[term][broader] = true
}

// Synonyms returns the sorted synonyms of term (excluding the term itself).
func (t *Thesaurus) Synonyms(term string) []string {
	set := t.synonyms[strings.ToLower(term)]
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Hypernyms returns the sorted direct hypernyms of term.
func (t *Thesaurus) Hypernyms(term string) []string {
	set := t.hypernyms[strings.ToLower(term)]
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Related reports the semantic relatedness of two terms in [0,1]:
// 1 for equality (after stemming), 0.9 for synonyms, 0.7 for a direct
// hypernym link either way, 0.5 for sharing a hypernym, else 0.
func (t *Thesaurus) Related(a, b string) float64 {
	a = strings.ToLower(strings.TrimSpace(a))
	b = strings.ToLower(strings.TrimSpace(b))
	if a == b || Stem(a) == Stem(b) {
		return 1
	}
	if t.synonyms[a][b] || t.synonyms[b][a] {
		return 0.9
	}
	if t.hypernyms[a][b] || t.hypernyms[b][a] {
		return 0.7
	}
	for h := range t.hypernyms[a] {
		if t.hypernyms[b][h] {
			return 0.5
		}
	}
	return 0
}

// Stem applies a conservative suffix-stripping stemmer (a light cousin of
// Porter's step-1): plural and common verbal/adjectival suffixes are
// removed when the remaining stem stays ≥3 characters, and a final
// "ie"→"y" normalization aligns singular/plural pairs like movie/movies
// (both → "movy") and city/cities (both → "city"). Idempotent.
func Stem(w string) string {
	w = strings.ToLower(w)
	if len(w) <= 3 {
		return w
	}
	type rule struct{ suffix, repl string }
	rules := []rule{
		{"sses", "ss"},
		{"ies", "y"},
		{"ments", "ment"},
		{"ings", ""},
		{"ing", ""},
		{"edly", ""},
		{"ed", ""},
		{"ers", "er"},
		{"es", ""},
		{"s", ""},
	}
	out := w
	for _, r := range rules {
		if strings.HasSuffix(w, r.suffix) {
			stem := w[:len(w)-len(r.suffix)] + r.repl
			if len(stem) >= 3 {
				// Avoid stripping "ss" (e.g. "boss" -> "bos").
				if r.suffix == "s" && strings.HasSuffix(w, "ss") {
					break
				}
				out = stem
				break
			}
		}
	}
	if strings.HasSuffix(out, "ie") && len(out) > 3 {
		out = out[:len(out)-2] + "y"
	}
	return out
}

// Levenshtein returns the edit distance between two strings (unit costs).
func Levenshtein(a, b string) int {
	ar, br := []rune(a), []rune(b)
	if len(ar) == 0 {
		return len(br)
	}
	if len(br) == 0 {
		return len(ar)
	}
	prev := make([]int, len(br)+1)
	cur := make([]int, len(br)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ar); i++ {
		cur[0] = i
		for j := 1; j <= len(br); j++ {
			cost := 1
			if ar[i-1] == br[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(br)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// LevenshteinSim maps edit distance to a similarity in [0,1].
func LevenshteinSim(a, b string) float64 {
	if a == "" && b == "" {
		return 1
	}
	d := Levenshtein(a, b)
	m := len([]rune(a))
	if n := len([]rune(b)); n > m {
		m = n
	}
	return 1 - float64(d)/float64(m)
}

// Jaro returns the Jaro similarity of two strings in [0,1].
func Jaro(a, b string) float64 {
	ar, br := []rune(a), []rune(b)
	la, lb := len(ar), len(br)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	amatch := make([]bool, la)
	bmatch := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if bmatch[j] || ar[i] != br[j] {
				continue
			}
			amatch[i] = true
			bmatch[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !amatch[i] {
			continue
		}
		for !bmatch[j] {
			j++
		}
		if ar[i] != br[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(transpositions)/2)/m) / 3
}

// JaroWinkler boosts Jaro similarity for shared prefixes (p=0.1, max 4).
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	ar, br := []rune(a), []rune(b)
	for prefix < len(ar) && prefix < len(br) && prefix < 4 && ar[prefix] == br[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// TrigramSim returns the Jaccard similarity of the character trigram sets
// of the two strings (padded), in [0,1].
func TrigramSim(a, b string) float64 {
	ta, tb := trigrams(a), trigrams(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	inter := 0
	for g := range ta {
		if tb[g] {
			inter++
		}
	}
	union := len(ta) + len(tb) - inter
	return float64(inter) / float64(union)
}

func trigrams(s string) map[string]bool {
	s = "  " + strings.ToLower(s) + " "
	out := make(map[string]bool)
	r := []rune(s)
	for i := 0; i+3 <= len(r); i++ {
		out[string(r[i:i+3])] = true
	}
	return out
}

// NameSimilarity is the composite measure QUEST uses to match a keyword
// against a schema term name: the max of Jaro–Winkler and trigram
// similarity computed on stemmed, underscore-split forms. Multi-word names
// take the best word alignment.
func NameSimilarity(keyword, name string) float64 {
	kw := Stem(strings.ToLower(keyword))
	best := 0.0
	for _, part := range splitName(name) {
		p := Stem(part)
		s := JaroWinkler(kw, p)
		if ts := TrigramSim(kw, p); ts > s {
			s = ts
		}
		if s > best {
			best = s
		}
	}
	// Whole-name comparison too ("firstname" vs "first_name").
	whole := strings.ToLower(strings.ReplaceAll(name, "_", ""))
	if s := JaroWinkler(kw, whole); s > best {
		best = s
	}
	return best
}

func splitName(name string) []string {
	name = strings.ToLower(name)
	fields := strings.FieldsFunc(name, func(r rune) bool {
		return r == '_' || r == ' ' || r == '-' || r == '.'
	})
	if len(fields) == 0 {
		return []string{name}
	}
	return fields
}

// DefaultThesaurus builds the small built-in ontology covering the three
// demo domains (movies, bibliography, geography) plus generic database
// vocabulary. Downstream users supply their own or extend this one.
func DefaultThesaurus() *Thesaurus {
	t := NewThesaurus()
	// Movie domain.
	t.AddSynonyms("movie", "film", "picture")
	t.AddSynonyms("actor", "performer", "star", "cast")
	t.AddSynonyms("director", "filmmaker")
	t.AddSynonyms("genre", "category", "kind")
	t.AddSynonyms("title", "name")
	t.AddSynonyms("year", "date")
	t.AddHypernym("actor", "person")
	t.AddHypernym("director", "person")
	t.AddHypernym("movie", "work")
	// Bibliography domain.
	t.AddSynonyms("paper", "article", "publication")
	t.AddSynonyms("author", "writer")
	t.AddSynonyms("venue", "conference", "journal")
	t.AddHypernym("author", "person")
	t.AddHypernym("paper", "work")
	t.AddHypernym("conference", "venue")
	// Geography domain.
	t.AddSynonyms("country", "nation", "state")
	t.AddSynonyms("city", "town", "municipality")
	t.AddSynonyms("river", "stream")
	t.AddSynonyms("population", "inhabitants")
	t.AddSynonyms("capital", "seat")
	t.AddHypernym("city", "place")
	t.AddHypernym("country", "place")
	t.AddHypernym("river", "water")
	t.AddHypernym("lake", "water")
	// Generic.
	t.AddSynonyms("id", "identifier", "key")
	t.AddSynonyms("name", "label")
	return t
}
