package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"math"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relational"
	"repro/internal/sql"
	"repro/internal/wal"
	"repro/internal/wrapper"
)

// DefaultBatchRows is how many rows a server packs into one frameRows
// before flushing, so large results stream instead of arriving as one
// frame and small ones do not pay per-row syscalls.
const DefaultBatchRows = 256

// BatchByteCap is the encoded-size cut for a row batch: a batch flushes
// once it crosses this many bytes even before reaching the row-count cut.
// It is deliberately far below DefaultMaxFrame so that a client with a
// smaller configured frame cap (Options.MaxFrame, bounding coordinator
// memory) can still read default-configured servers — clients should not
// set MaxFrame below this value plus their widest row.
const BatchByteCap = 256 << 10

// scorer is the optional relevance face of a backend (mirrors the
// unexported interface in internal/shard): full-access backends answer
// keyword relevance and join-edge statistics, pure executors do not.
type scorer interface {
	AttributeScore(table, column, keyword string) float64
	EdgeDistance(e relational.JoinEdge) (float64, error)
}

// Server serves one backend over the wire protocol. The zero limits mean
// defaults; a Server is safe for concurrent use when its backend is (the
// sharded coordinator requires that of every Backend anyway). When the
// backend exposes a write face (wrapper.Inserter) the server also speaks
// the protocol-v3 replication frames: direct inserts as a primary,
// sequenced applies as a backup, role configuration and op-log replay —
// see replication.go.
type Server struct {
	backend wrapper.SourceExecutor
	stats   wrapper.StatisticsProvider // nil when the backend has none
	score   scorer                     // nil when the backend has none
	ins     wrapper.Inserter           // nil when the backend is read-only

	// MaxFrame caps accepted request frames (DefaultMaxFrame when 0).
	MaxFrame int
	// BatchRows is the row-batch size per frameRows (DefaultBatchRows when 0).
	BatchRows int
	// Resolver dials a replication peer by the name the coordinator
	// configured (nil means the name is a TCP address). Tests inject
	// loopback registries with per-link fault switches through it.
	Resolver func(name string) (net.Conn, error)
	// ReplTimeout bounds one synchronous replicate round trip to a backup
	// (DefaultReplTimeout when 0).
	ReplTimeout time.Duration
	// MaxOpLog bounds the retained replay log (DefaultMaxOpLog when 0).
	MaxOpLog int

	replMu sync.Mutex
	repl   replState
	// wal, when attached, makes the write path durable: every applied op
	// is appended before the ack and the ack waits for its group-commit
	// batch to reach disk (see AttachWAL).
	wal *wal.Log

	// inflight is held (read side) by every request handler while it
	// executes, so Quiesce can fence population-phase writes off
	// straggling reads (a killed connection's handler may still be
	// mid-execute after the client gave up on it). An RWMutex rather than
	// a WaitGroup because requests keep arriving while Quiesce drains —
	// probes, replication traffic — and WaitGroup forbids Add concurrent
	// with Wait; here late arrivals just block until the barrier lifts.
	inflight sync.RWMutex

	// bufHighWater tracks the most result bytes any single query held
	// buffered server-side before a flush — the memory-bound evidence for
	// the streaming path. A streaming query plateaus around one batch; a
	// materialized fallback records the whole encoded result.
	bufHighWater atomic.Int64
}

// BufferHighWater reports the largest number of result bytes a single
// query has held buffered since the last reset.
func (s *Server) BufferHighWater() int64 { return s.bufHighWater.Load() }

// ResetBufferHighWater clears the gauge (benchmark harnesses measure one
// workload at a time).
func (s *Server) ResetBufferHighWater() { s.bufHighWater.Store(0) }

func (s *Server) noteBuffered(n int) {
	for {
		cur := s.bufHighWater.Load()
		if int64(n) <= cur || s.bufHighWater.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// NewServer wraps a backend, discovering its optional statistics and
// relevance faces by type assertion — a *wrapper.FullAccessSource exposes
// all of them, a bare executor only the query surface.
func NewServer(backend wrapper.SourceExecutor) *Server {
	s := &Server{backend: backend}
	if sp, ok := backend.(wrapper.StatisticsProvider); ok {
		s.stats = sp
	}
	if sc, ok := backend.(scorer); ok {
		s.score = sc
	}
	if in, ok := backend.(wrapper.Inserter); ok {
		s.ins = in
	}
	return s
}

// AttachWAL arms the durable write path: every apply (direct insert or
// replicated op) is appended to l before its ack, and the ack waits for
// the op's group-commit batch to reach disk. Attaching also seeds the
// replication state from the log's recovered sequence — the restart
// contract RecoverReplicaState describes, derived automatically from
// the WAL instead of handed in by the operator — so a restarted replica
// resumes exactly where its directory left off and fleet replay skips
// everything it already holds. Attach before the server accepts
// connections; the backend must be the database the log recovered.
func (s *Server) AttachWAL(l *wal.Log) {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	s.wal = l
	if seq := l.LastSeq(); seq > s.repl.lastSeq {
		s.repl.lastSeq = seq
	}
}

// WALStats snapshots the attached log's durability counters; ok is
// false for a memory-only server.
func (s *Server) WALStats() (st wal.Stats, ok bool) {
	s.replMu.Lock()
	l := s.wal
	s.replMu.Unlock()
	if l == nil {
		return wal.Stats{}, false
	}
	return l.Stats(), true
}

// Quiesce blocks until every request handler currently executing has
// returned. Population-phase discipline for a fleet: a client-side abort
// (killed connection, abandoned hedge) can leave a server handler
// mid-execute after the coordinator moved on, and a write racing that
// straggler would violate the engine's population-phase contract.
// Requests arriving while Quiesce drains (probes, replication) block at
// the barrier and proceed once it lifts; it remains the caller's job not
// to issue new *writes* across a quiesce, exactly as with
// relational.Database.Insert.
func (s *Server) Quiesce() {
	s.inflight.Lock()
	//lint:ignore SA2001 the critical section is the barrier itself:
	// acquiring the write lock proves every handler's read lock drained.
	s.inflight.Unlock()
}

// Serve accepts connections until the listener closes, serving each on its
// own goroutine. It returns the listener's accept error (net.ErrClosed
// after a clean Close).
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.ServeConn(conn)
	}
}

// ServeConn runs the request loop on one connection until the peer hangs
// up or violates the protocol, then closes it. Requests on a connection
// are strictly sequential, matching the client's request/response
// discipline.
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	maxFrame := s.MaxFrame
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	br := bufio.NewReader(conn)
	ver := ProtocolV1 // no hello yet: the original row-frame protocol
	for {
		typ, payload, err := readFrame(br, maxFrame)
		if err != nil {
			return // disconnect or corrupt stream: drop the connection
		}
		if typ == frameHello {
			// Version negotiation: grant the requested version clamped to
			// what this server speaks. The granted version sticks to the
			// connection; a client that never says hello stays on v1.
			if len(payload) != 1 || payload[0] == 0 {
				if err := writeError(conn, &ProtocolError{Detail: "bad hello payload"}); err != nil {
					return
				}
				continue
			}
			v := int(payload[0])
			if v > ProtocolLatest {
				v = ProtocolLatest
			}
			ver = v
			if err := writeFrame(conn, frameHelloAck, []byte{byte(v)}); err != nil {
				return
			}
			continue
		}
		s.inflight.RLock()
		err = s.handle(conn, typ, payload, ver)
		s.inflight.RUnlock()
		if err != nil {
			return // write-side failure: peer is gone
		}
	}
}

// handle dispatches one request. A returned error means the connection is
// unusable (write failed); backend-level rejections are answered in-band
// with frameError and keep the connection alive.
func (s *Server) handle(conn net.Conn, typ byte, payload []byte, ver int) error {
	switch typ {
	case framePing:
		return writeFrame(conn, framePong, nil)
	case frameQuery:
		return s.handleQuery(conn, payload, ver)
	case frameExists:
		stmt, err := sql.Parse(string(payload))
		if err != nil {
			return writeError(conn, err)
		}
		ok, err := s.backend.ExecuteExists(stmt)
		if err != nil {
			return writeError(conn, err)
		}
		b := byte(0)
		if ok {
			b = 1
		}
		return writeFrame(conn, frameBool, []byte{b})
	case frameStats:
		args, _, err := sql.DecodeColumns(payload)
		if err != nil || len(args) != 2 {
			return writeError(conn, &ProtocolError{Detail: "bad stats request"})
		}
		if s.stats == nil {
			return writeErrorKind(conn, errKindNoInstance, wrapper.ErrNoInstanceAccess.Error())
		}
		cs, err := s.stats.ColumnStatistics(args[0], args[1])
		if err != nil {
			if errors.Is(err, wrapper.ErrNoInstanceAccess) {
				return writeErrorKind(conn, errKindNoInstance, err.Error())
			}
			return writeError(conn, err)
		}
		return writeFrame(conn, frameStatsRes, sql.AppendColumnStats(nil, cs))
	case frameScore:
		args, _, err := sql.DecodeColumns(payload)
		if err != nil || len(args) != 3 {
			return writeError(conn, &ProtocolError{Detail: "bad score request"})
		}
		v := 0.0
		if s.score != nil {
			v = s.score.AttributeScore(args[0], args[1], args[2])
		}
		return writeFloat(conn, v)
	case frameEdge:
		args, _, err := sql.DecodeColumns(payload)
		if err != nil || len(args) != 4 {
			return writeError(conn, &ProtocolError{Detail: "bad edge request"})
		}
		if s.score == nil {
			return writeErrorKind(conn, errKindNoInstance, wrapper.ErrNoInstanceAccess.Error())
		}
		d, err := s.score.EdgeDistance(relational.JoinEdge{
			FromTable: args[0], FromColumn: args[1], ToTable: args[2], ToColumn: args[3],
		})
		if err != nil {
			if errors.Is(err, wrapper.ErrNoInstanceAccess) {
				return writeErrorKind(conn, errKindNoInstance, err.Error())
			}
			return writeError(conn, err)
		}
		return writeFloat(conn, d)
	case frameInsert, frameReplicate, frameConfigure, frameStatus, frameOps:
		// Replication frames are honored only on a connection that
		// negotiated v3; on older connections they fall through to the
		// unknown-frame answer below, exactly like any pre-v3 server —
		// a mixed-version fleet degrades to read-only, never to garbage.
		if ver >= ProtocolV3 {
			return s.handleRepl(conn, typ, payload)
		}
	}
	// Unknown request type: the peer speaks a different protocol. Answer
	// in-band once, then let the caller keep the loop; a client that sent
	// garbage will fail decoding anyway.
	return writeError(conn, &ProtocolError{Detail: "unknown request frame"})
}

// handleQuery executes a statement and streams the result: header frame,
// row batches, end frame. Rejections surface as a frameError in place of
// the header. When the backend exposes its streaming face the result
// flows through it — the server never buffers more than one batch — and
// only Execute-only backends pay full materialization. A failure after
// frames have been written cannot be retracted: it is relayed as a
// mid-stream frameError and the connection is dropped (the client treats
// it as final).
func (s *Server) handleQuery(conn net.Conn, payload []byte, ver int) error {
	stmt, err := sql.Parse(string(payload))
	if err != nil {
		return writeError(conn, err)
	}
	sink := &frameSink{
		conn:    conn,
		srv:     s,
		ver:     ver,
		stmt:    stmt,
		batch:   s.batchRows(),
		byteCap: s.batchByteCap(),
	}
	if se, ok := s.backend.(wrapper.StreamExecutor); ok {
		cols, err := se.ExecuteStream(stmt, sink)
		if err != nil {
			var we *sinkWriteError
			if errors.As(err, &we) {
				return we.err // the connection itself failed
			}
			if sink.wroteAny {
				// Frames are out; the error cannot replace the header.
				// Relay it mid-stream and drop the connection.
				writeError(conn, err)
				return errMidStreamAbort
			}
			return writeError(conn, err)
		}
		sink.setCols(cols)
		return sink.finish()
	}
	res, err := s.backend.Execute(stmt)
	if err != nil {
		return writeError(conn, err)
	}
	// Materialized fallback: the whole result was resident at once; the
	// gauge records it so the contrast with the streaming path is visible.
	total := 0
	for _, r := range res.Rows {
		total += sql.EncodedRowSize(r)
	}
	s.noteBuffered(total)
	sink.setCols(res.Columns)
	for _, r := range res.Rows {
		if err := sink.Push(r); err != nil {
			return unwrapSinkWrite(err)
		}
	}
	return sink.finish()
}

func (s *Server) batchRows() int {
	if s.BatchRows > 0 {
		return s.BatchRows
	}
	return DefaultBatchRows
}

// batchByteCap is the encoded-size cut for a row batch. Wide rows must
// never accumulate past the peer's frame cap, or every replica would
// deterministically send an unreadable frame and the query could never
// succeed. The cut is a fixed conservative threshold — NOT this server's
// own MaxFrame, which the client never sees — so a coordinator with a
// smaller configured cap still reads every frame; it only needs to accept
// BatchByteCap plus one row.
func (s *Server) batchByteCap() int {
	byteCap := BatchByteCap
	if s.MaxFrame > 0 && s.MaxFrame/4 < byteCap {
		byteCap = s.MaxFrame / 4
	}
	return byteCap
}

// encodingHints looks up per-column distinct counts for the statement's
// projection, feeding the columnar encoder's dictionary veto. Hints are
// best-effort: only single-table statements resolve (a joined projection's
// provenance is not tracked here), and any lookup failure degrades to the
// unhinted encoder, never to an error.
func (s *Server) encodingHints(stmt *sql.SelectStmt, cols []string) []sql.EncodingHint {
	if s.stats == nil || len(stmt.Joins) > 0 {
		return nil
	}
	star := len(stmt.Items) == 1 && stmt.Items[0].Star
	hints := make([]sql.EncodingHint, len(cols))
	for i, name := range cols {
		col := ""
		if star {
			// Star projections emit qualified "table.column" names.
			if j := strings.IndexByte(name, '.'); j >= 0 {
				col = name[j+1:]
			}
		} else if i < len(stmt.Items) {
			if cr, ok := stmt.Items[i].Expr.(*sql.ColumnRef); ok {
				col = cr.Column
			}
		}
		if col == "" {
			continue
		}
		if cs, err := s.stats.ColumnStatistics(stmt.From.Table, col); err == nil {
			hints[i] = sql.EncodingHint{Distinct: cs.Distinct, HasStats: true}
		}
	}
	return hints
}

func writeFloat(conn net.Conn, v float64) error {
	return writeFrame(conn, frameFloat, binary.BigEndian.AppendUint64(nil, math.Float64bits(v)))
}

func writeError(conn net.Conn, err error) error {
	return writeErrorKind(conn, errKindQuery, err.Error())
}

func writeErrorKind(conn net.Conn, kind byte, msg string) error {
	payload := append([]byte{kind}, msg...)
	return writeFrame(conn, frameError, payload)
}
