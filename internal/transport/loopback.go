package transport

import (
	"net"

	"repro/internal/wrapper"
)

// LoopbackDialer serves every dialed connection from srv over an
// in-process net.Pipe: same frames, same codec, no sockets. It is the
// degenerate transport that keeps single-process deployments on the exact
// code path remote shards use — the conformance suite runs the full wire
// protocol through it at every shard count — and each pipe's server
// goroutine exits when its connection closes, so a loopback client leaks
// nothing beyond its pooled connections.
func LoopbackDialer(srv *Server) Dialer {
	return func() (net.Conn, error) {
		cl, sv := net.Pipe()
		go srv.ServeConn(sv)
		return cl, nil
	}
}

// NewLoopbackClient wraps a backend in a Server and returns a Client
// dialing it in-process — a remote executor whose "network" is a pipe.
func NewLoopbackClient(backend wrapper.SourceExecutor, opt Options) (*Client, error) {
	return NewClient([]Dialer{LoopbackDialer(NewServer(backend))}, opt)
}
