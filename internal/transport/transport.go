// Package transport is the network execution transport of the sharded
// layer: it carries the pushdown-fragment contract of internal/sql across
// a process boundary. A Server exposes any wrapper.SourceExecutor (plus
// its optional statistics and relevance faces) over a byte stream; a
// Client implements the same interfaces over one or more replica
// endpoints, with connection pooling, per-operation retry with backoff,
// and hedged reads that race a second replica when the first is slow. An
// in-process loopback dialer (net.Pipe straight into a Server) makes
// local execution the degenerate case of the same protocol — the
// coordinator in internal/shard addresses local and remote shards through
// one Backend interface either way.
//
// # Protocol
//
// The protocol is strict request/response over a persistent connection:
// the client writes one request frame, the server answers with one
// response frame — or, for queries, a response stream (header, row
// batches, end) — and only then may the client send the next request.
// There is no pipelining; concurrency comes from pooling connections.
//
// Every frame is length-prefixed:
//
//	uint32 big-endian payload length | 1 frame-type byte | payload
//
// Payloads use the row codec of internal/sql (AppendValue/AppendRow and
// friends). Queries travel as their canonical SQL text — the fragment
// contract's serialized form — so any engine that parses the dialect can
// serve a shard. Rows stream back in batches, letting the coordinator
// start merging before the shard finishes. A frame whose declared length
// exceeds the negotiated maximum, whose type is unknown in context, or
// whose payload does not decode is a *ProtocolError (wrapping
// ErrMalformedFrame where applicable): typed, immediate, never a hang.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/relational"
	"repro/internal/sql"
)

// Request frame types (client → server).
const (
	frameQuery  byte = 0x01 // payload: SQL text; response: columns/rows/end stream
	frameExists byte = 0x02 // payload: SQL text; response: bool
	frameStats  byte = 0x03 // payload: table, column strings; response: stats
	frameScore  byte = 0x04 // payload: table, column, keyword strings; response: float
	frameEdge   byte = 0x05 // payload: fromTable, fromCol, toTable, toCol; response: float
	framePing   byte = 0x06 // payload: empty; response: pong
	frameHello  byte = 0x07 // payload: 1 byte requested version; response: helloAck

	// Replication requests, protocol v3 (see replication.go). frameInsert
	// and frameReplicate carry a row plus the coordinator's epoch so a
	// stale primary is fenced instead of silently diverging.
	frameInsert    byte = 0x08 // uvarint epoch, table, row; response: insertAck
	frameReplicate byte = 0x09 // uvarint epoch, uvarint seq, table, row; response: insertAck
	frameConfigure byte = 0x0a // uvarint epoch, role byte, backup names; response: statusRes
	frameStatus    byte = 0x0b // payload: empty; response: statusRes
	frameOps       byte = 0x0c // uvarint afterSeq, uvarint max; response: opsRes
)

// Response frame types (server → client).
const (
	frameColumns  byte = 0x10 // result header: encoded column names
	frameRows     byte = 0x11 // row batch: uvarint row count + encoded rows
	frameEnd      byte = 0x12 // end of stream: uvarint total row count
	frameBool     byte = 0x13 // one byte, 0 or 1
	frameFloat    byte = 0x14 // 8-byte big-endian IEEE 754 bits
	frameStatsRes byte = 0x15 // encoded relational.ColumnStats
	frameError    byte = 0x16 // 1 error-kind byte + message string
	framePong     byte = 0x17 // payload: empty
	frameHelloAck byte = 0x18 // 1 byte granted version
	frameRowsCol  byte = 0x19 // columnar row batch (sql.AppendColumnarBatch payload), v2 only

	// Replication responses, protocol v3.
	frameInsertAck byte = 0x1a // uvarint epoch, uvarint seq, per-backup name+ok list
	frameStatusRes byte = 0x1b // uvarint epoch, role byte, uvarint lastSeq
	frameOpsRes    byte = 0x1c // uvarint count, then (uvarint seq, table, row) entries
)

// Protocol versions, negotiated per connection by frameHello. Version 1 is
// the original row-frame protocol and needs no handshake — a connection
// that never says hello is a v1 connection, which is exactly how pre-hello
// clients behave. Version 2 adds columnar row batches (frameRowsCol); a v2
// server may still interleave plain frameRows in the same stream (a batch
// the encoder cannot improve, a stray wide row), so v2 is a superset, not
// a replacement. Servers clamp the requested version to what they speak;
// old servers answer the unknown hello with an in-band frameError, which
// clients take as "v1" — both directions degrade without breaking.
// Version 3 adds the replicated-write frames (insert, replicate,
// configure, status, ops): a server only honors them on a connection
// that negotiated v3, so pre-v3 servers answer them with the in-band
// unknown-frame error and the fleet layer surfaces ErrReadOnly instead
// of corrupting an old shard.
const (
	ProtocolV1     = 1
	ProtocolV2     = 2
	ProtocolV3     = 3
	ProtocolLatest = ProtocolV3
)

// Error kinds carried by frameError. Query-level rejections are part of
// the result (the reference executor would reject too) and are never
// retried; transport-level failures are. The replication kinds (fenced,
// lagging, read-only) are catalog signals the fleet layer acts on — a
// fenced write refreshes the replica catalog and retries at the new
// primary, a lagging replica is pulled from the read rotation until
// replay catches it up.
const (
	errKindQuery      byte = 0 // backend rejected the request
	errKindNoInstance byte = 1 // maps back to wrapper.ErrNoInstanceAccess
	errKindFenced     byte = 2 // write carried a stale epoch, or target is not primary
	errKindLagging    byte = 3 // replica is behind the primary's op sequence
	errKindReadOnly   byte = 4 // backend accepts no writes
)

// DefaultMaxFrame bounds a frame payload. Row batches are cut well below
// it; the cap exists so a corrupt or hostile length prefix cannot force a
// multi-gigabyte allocation.
const DefaultMaxFrame = 16 << 20

// frameHeaderSize is the wire size of the length prefix plus type byte.
const frameHeaderSize = 5

// ErrMalformedFrame tags protocol corruption: a frame that is truncated,
// over-long, of an unknown type, or whose payload does not decode.
// Clients treat it like any transport failure — close the connection and
// retry elsewhere — and surface it (wrapped in a ProtocolError) when
// retries are exhausted.
var ErrMalformedFrame = errors.New("transport: malformed frame")

// ProtocolError describes a protocol violation. It wraps ErrMalformedFrame
// so callers can test with errors.Is without string matching.
type ProtocolError struct {
	Detail string
}

// Error implements error.
func (e *ProtocolError) Error() string { return "transport: protocol error: " + e.Detail }

// Unwrap makes errors.Is(err, ErrMalformedFrame) true.
func (e *ProtocolError) Unwrap() error { return ErrMalformedFrame }

// RemoteError is a backend-side rejection relayed over the wire: the
// remote executor refused the statement (unknown column, unsupported
// clause, statistics for a missing table...). It mirrors the error the
// reference executor would return locally, so error-disposition parity
// holds across the transport — and it is never retried, because every
// replica would reject the same way.
type RemoteError struct {
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string { return "transport: remote: " + e.Msg }

// ErrFenced marks a write rejected by the epoch fence: the request carried
// a stale epoch, or reached a replica that is no longer (or not yet) the
// primary. The fleet layer refreshes its catalog and retries at the
// current primary; a stale coordinator can never make a demoted replica
// diverge.
var ErrFenced = errors.New("transport: write fenced")

// ErrLagging marks a replicate or op-log request a replica cannot serve
// in sequence: the replica is behind (a gap in the op stream) or the
// primary has trimmed the requested range. The fleet layer keeps such a
// replica out of the read rotation and replays it from the primary's op
// log.
var ErrLagging = errors.New("transport: replica lagging")

// ErrReadOnly marks a write addressed at something that cannot accept it:
// a backend without an insert face, a replica speaking a pre-v3 protocol,
// or a client built without a replica catalog (NewClient instead of
// NewReplicatedClient).
var ErrReadOnly = errors.New("transport: backend is read-only")

// decodeColumnarFrame decodes a frameRowsCol payload as the client does:
// any malformation — truncated dictionary, out-of-range index, runs that
// do not tile the batch, trailing bytes — comes back as a *ProtocolError
// (wrapping ErrMalformedFrame), never a panic and never a hang. The fuzz
// target FuzzColumnarDecode pins that contract.
func decodeColumnarFrame(payload []byte) ([]relational.Row, error) {
	rows, err := sql.DecodeColumnarRows(payload)
	if err != nil {
		return nil, &ProtocolError{Detail: err.Error()}
	}
	return rows, nil
}

// writeFrame writes one frame as a single Write call.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	buf[4] = typ
	copy(buf[frameHeaderSize:], payload)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame, enforcing the payload cap.
func readFrame(r io.Reader, maxFrame int) (byte, []byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > uint32(maxFrame) {
		return 0, nil, &ProtocolError{Detail: fmt.Sprintf("frame length %d exceeds cap %d", n, maxFrame)}
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, &ProtocolError{Detail: fmt.Sprintf("truncated frame payload: %v", err)}
	}
	return hdr[4], payload, nil
}
