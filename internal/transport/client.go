package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relational"
	"repro/internal/sql"
	"repro/internal/wrapper"
)

// Options tunes a Client. The zero value selects the documented defaults.
type Options struct {
	// MaxAttempts is the total number of attempts per operation, the first
	// one included. Default 3. Only transport-level failures are retried;
	// a backend rejection (RemoteError) returns immediately because every
	// replica would reject the same way.
	MaxAttempts int
	// RetryBackoff is slept before the first retry and doubles per retry.
	// Default 5ms.
	RetryBackoff time.Duration
	// RequestTimeout bounds one attempt: connection deadline for the
	// request write and every response frame read. Default 30s.
	RequestTimeout time.Duration
	// DialTimeout bounds TCP connection establishment (Dial). Default 5s.
	DialTimeout time.Duration
	// PoolSize is how many idle connections are kept per replica. Default 2.
	PoolSize int
	// MaxFrame caps accepted response frames (a memory bound against
	// corrupt or hostile length prefixes). Default DefaultMaxFrame. Do
	// not set it below the server's BatchByteCap plus one encoded row, or
	// legitimate row batches become unreadable.
	MaxFrame int
	// Protocol is the highest protocol version to request per connection
	// (default ProtocolLatest). Each fresh connection negotiates with a
	// hello frame and the server grants min(requested, spoken); a pre-hello
	// server answers with an in-band error, which the client takes as v1.
	// Set to ProtocolV1 to pin the legacy row-frame protocol (the hello is
	// skipped entirely).
	Protocol int

	// Hedge enables hedged reads: when an attempt's first response frame
	// has not arrived within the hedge delay, a second attempt races it on
	// the next replica (or a fresh connection to the same replica when
	// there is only one). The first response wins; the loser's connection
	// is closed so the abandoned attempt unwinds promptly and leaks no
	// goroutine.
	Hedge bool
	// HedgeQuantile picks the delay from the recent time-to-first-response
	// distribution (default 0.9: hedge the slowest ~10%).
	HedgeQuantile float64
	// HedgeMinSamples is how many latency samples must accumulate before
	// hedging arms (default 16) — hedging off a cold distribution would
	// just double the load.
	HedgeMinSamples int
	// HedgeMinDelay/HedgeMaxDelay clamp the adaptive delay. Defaults 1ms
	// and 100ms.
	HedgeMinDelay time.Duration
	HedgeMaxDelay time.Duration
	// HedgeFixedDelay, when positive, bypasses the adaptive quantile and
	// hedges after exactly this long (tests, operators with known SLOs).
	HedgeFixedDelay time.Duration

	// ProbeInterval, when positive on a replicated client
	// (NewReplicatedClient), starts a background prober that round-trips a
	// status frame per replica each tick: consecutive failures past
	// ProbeFailThreshold demote the replica (promoting a backup when it
	// was the primary), and recovered replicas are replayed back into the
	// read rotation. Zero leaves health transitions to the write path and
	// explicit ProbeNow calls.
	ProbeInterval time.Duration
	// ProbeFailThreshold is how many consecutive probe (or write) failures
	// demote a replica. Default 3.
	ProbeFailThreshold int
}

func (o Options) withDefaults() Options {
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 5 * time.Millisecond
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 2
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = DefaultMaxFrame
	}
	if o.Protocol <= 0 || o.Protocol > ProtocolLatest {
		o.Protocol = ProtocolLatest
	}
	if o.HedgeQuantile <= 0 || o.HedgeQuantile >= 1 {
		o.HedgeQuantile = 0.9
	}
	if o.HedgeMinSamples <= 0 {
		o.HedgeMinSamples = 16
	}
	if o.HedgeMinDelay <= 0 {
		o.HedgeMinDelay = time.Millisecond
	}
	if o.HedgeMaxDelay <= 0 {
		o.HedgeMaxDelay = 100 * time.Millisecond
	}
	if o.ProbeFailThreshold <= 0 {
		o.ProbeFailThreshold = 3
	}
	return o
}

// Dialer opens one connection to a replica.
type Dialer func() (net.Conn, error)

// ClientStats snapshots a client's counters. The fleet block is zero on
// clients built without a replica catalog (NewClient / Dial with no
// names): only NewReplicatedClient runs the write path and the prober.
type ClientStats struct {
	Operations uint64 // top-level calls (Execute, ExecuteExists, ...)
	Attempts   uint64 // exchanges started, hedges included
	Retries    uint64 // attempts after a transport failure
	Hedges     uint64 // secondary attempts launched by the hedge timer
	HedgeWins  uint64 // operations won by the hedged attempt
	Dials      uint64 // connections established (pool misses)

	BytesReceived  uint64 // response bytes read, frame headers included
	RowFrames      uint64 // plain row-batch frames decoded
	ColumnarFrames uint64 // columnar row-batch frames decoded

	Inserts         uint64 // replicated writes issued (Insert calls)
	ReplicationAcks uint64 // positive per-backup acks inside insert acks
	FencedWrites    uint64 // writes rejected by the epoch fence and re-routed
	Probes          uint64 // status round trips issued by probes
	ProbeFailures   uint64 // status round trips that failed
	Demotions       uint64 // replicas pulled from rotation at the failure threshold
	Promotions      uint64 // backups promoted to primary
	Replays         uint64 // rejoins that replayed ops from the primary's log
}

// ErrClientClosed is returned by operations on a closed client.
var ErrClientClosed = errors.New("transport: client closed")

// errLostRace marks a hedged attempt that completed after the other
// attempt had already won; it is internal bookkeeping, never surfaced.
var errLostRace = errors.New("transport: lost hedge race")

// Client is the remote SourceExecutor: it implements the full per-shard
// backend contract of internal/shard (materializing and streaming
// execution, existence probes, column statistics, keyword relevance and
// join-edge statistics) over one or more replica endpoints of the same
// shard. It is safe for concurrent use; concurrency maps to pooled
// connections.
type Client struct {
	opt    Options
	pools  []*connPool
	names  []string // replica names (catalog identity); nil without a catalog
	all    []int    // every replica index: the rotation fallback
	lat    latencyTracker
	next   atomic.Uint32
	closed atomic.Bool
	fleet  *fleetState // nil on clients built without a replica catalog

	ops, attempts, retries          atomic.Uint64
	hedges, hedgeWins, dials        atomic.Uint64
	bytesRecv, rowFrames, colFrames atomic.Uint64
	inserts, replAcks, fencedW      atomic.Uint64
	probesN, probeFails             atomic.Uint64
	demotions, promotions, replays  atomic.Uint64
}

// readFrameCounted reads one response frame and feeds the received-bytes
// counter (header included) — the measurement behind the columnar wire
// savings in the benchmark suite.
func (c *Client) readFrameCounted(r *bufio.Reader) (byte, []byte, error) {
	typ, payload, err := readFrame(r, c.opt.MaxFrame)
	if err == nil {
		c.bytesRecv.Add(uint64(frameHeaderSize + len(payload)))
	}
	return typ, payload, err
}

// NewClient builds a client over one dialer per replica.
func NewClient(dialers []Dialer, opt Options) (*Client, error) {
	if len(dialers) == 0 {
		return nil, fmt.Errorf("transport: no replica dialers")
	}
	c := &Client{opt: opt.withDefaults()}
	for i, d := range dialers {
		c.pools = append(c.pools, &connPool{
			dial:      d,
			idle:      make(chan *pooledConn, c.opt.PoolSize),
			closed:    &c.closed,
			dials:     &c.dials,
			handshake: c.handshake,
		})
		c.all = append(c.all, i)
	}
	return c, nil
}

// handshake negotiates the protocol version on a freshly dialed
// connection. Requesting v1 skips the hello entirely — a v1 connection is
// indistinguishable from a pre-hello client. A server that does not know
// the hello frame answers it in-band with frameError and keeps the
// connection; the client takes that as "v1 spoken here" and the
// connection stays usable, so new clients work against old servers.
func (c *Client) handshake(pc *pooledConn) error {
	want := c.opt.Protocol
	if want <= ProtocolV1 {
		pc.version = ProtocolV1
		return nil
	}
	pc.conn.SetDeadline(time.Now().Add(c.opt.RequestTimeout))
	defer pc.conn.SetDeadline(time.Time{})
	if err := writeFrame(pc.conn, frameHello, []byte{byte(want)}); err != nil {
		return err
	}
	typ, payload, err := c.readFrameCounted(pc.br)
	if err != nil {
		return err
	}
	switch typ {
	case frameHelloAck:
		if len(payload) != 1 || payload[0] == 0 || int(payload[0]) > want {
			return &ProtocolError{Detail: "bad hello ack"}
		}
		pc.version = int(payload[0])
		return nil
	case frameError:
		pc.version = ProtocolV1
		return nil
	}
	return &ProtocolError{Detail: fmt.Sprintf("unexpected frame 0x%02x in hello handshake", typ)}
}

// Dial builds a replicated client over TCP replica addresses. Each
// address is also the replica's catalog name, which is what lets a
// primary resolve and dial its backups with the server's default
// resolver.
func Dial(addrs []string, opt Options) (*Client, error) {
	opt = opt.withDefaults()
	specs := make([]ReplicaSpec, len(addrs))
	for i, addr := range addrs {
		addr := addr
		timeout := opt.DialTimeout
		specs[i] = ReplicaSpec{
			Name: addr,
			Dial: func() (net.Conn, error) {
				return net.DialTimeout("tcp", addr, timeout)
			},
		}
	}
	return NewReplicatedClient(specs, opt)
}

// Close marks the client closed and closes every idle pooled connection.
// In-flight operations finish (or fail) on their own connections, which
// are closed instead of pooled afterwards.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	if c.fleet != nil {
		c.fleet.stopProber()
	}
	for _, p := range c.pools {
		p.drainClose()
	}
	return nil
}

// Stats snapshots the client counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Operations:     c.ops.Load(),
		Attempts:       c.attempts.Load(),
		Retries:        c.retries.Load(),
		Hedges:         c.hedges.Load(),
		HedgeWins:      c.hedgeWins.Load(),
		Dials:          c.dials.Load(),
		BytesReceived:  c.bytesRecv.Load(),
		RowFrames:      c.rowFrames.Load(),
		ColumnarFrames: c.colFrames.Load(),

		Inserts:         c.inserts.Load(),
		ReplicationAcks: c.replAcks.Load(),
		FencedWrites:    c.fencedW.Load(),
		Probes:          c.probesN.Load(),
		ProbeFailures:   c.probeFails.Load(),
		Demotions:       c.demotions.Load(),
		Promotions:      c.promotions.Load(),
		Replays:         c.replays.Load(),
	}
}

// Replicas returns the replica count (diagnostics).
func (c *Client) Replicas() int { return len(c.pools) }

// ExecutesConcurrently implements wrapper.ConcurrentExecutor: operations
// map onto per-connection exchanges, any number of which may be in flight.
func (c *Client) ExecutesConcurrently() bool { return true }

// Ping round-trips an empty frame (health checks, tests).
func (c *Client) Ping() error {
	_, err := c.call(framePing, nil, framePong)
	return err
}

// Execute implements wrapper.SourceExecutor by materializing the row
// stream. Retries and hedging are handled below; the returned result is
// always a complete, single-attempt stream.
func (c *Client) Execute(stmt *sql.SelectStmt) (*sql.Result, error) {
	return c.ExecuteCtx(context.Background(), stmt)
}

// ExecuteCtx implements wrapper.ContextExecutor: Execute bounded by a
// caller context. Cancellation (or an expired deadline) closes the
// in-flight attempt's connection, so the call unwinds promptly instead of
// riding out RequestTimeout, and the context error is returned.
func (c *Client) ExecuteCtx(ctx context.Context, stmt *sql.SelectStmt) (*sql.Result, error) {
	var sink wrapper.RowBuffer
	cols, err := c.ExecuteStreamCtx(ctx, stmt, &sink)
	if err != nil {
		return nil, err
	}
	return &sql.Result{Columns: cols, Rows: sink.Rows}, nil
}

// ExecuteStream implements wrapper.StreamExecutor: rows are pushed to the
// sink as row-batch frames arrive, so a coordinator can merge while the
// shard is still sending. A transport failure mid-stream resets the sink
// and replays the statement on the next attempt — the sink sees each
// aborted prefix retracted, never a duplicated row.
func (c *Client) ExecuteStream(stmt *sql.SelectStmt, sink wrapper.RowSink) ([]string, error) {
	return c.ExecuteStreamCtx(context.Background(), stmt, sink)
}

// ExecuteStreamCtx implements wrapper.ContextStreamExecutor: ExecuteStream
// bounded by a caller context (see ExecuteCtx for the cancellation
// mechanics).
func (c *Client) ExecuteStreamCtx(ctx context.Context, stmt *sql.SelectStmt, sink wrapper.RowSink) ([]string, error) {
	var cols []string
	err := c.do(ctx, frameQuery, []byte(stmt.SQL()), func(e *exchange) error {
		sink.Reset()
		if e.typ != frameColumns {
			return &ProtocolError{Detail: fmt.Sprintf("unexpected frame 0x%02x in place of result header", e.typ)}
		}
		cs, _, err := sql.DecodeColumns(e.payload)
		if err != nil {
			// Undecodable payload in a well-framed response is protocol
			// corruption like any other: typed, retried elsewhere.
			return &ProtocolError{Detail: err.Error()}
		}
		cols = cs
		total := uint64(0)
		for {
			e.pc.conn.SetReadDeadline(time.Now().Add(c.opt.RequestTimeout))
			typ, payload, err := c.readFrameCounted(e.pc.br)
			if err != nil {
				return err
			}
			switch typ {
			case frameRows:
				c.rowFrames.Add(1)
				n, sz := binary.Uvarint(payload)
				if sz <= 0 {
					return &ProtocolError{Detail: "bad row batch header"}
				}
				off := sz
				for i := uint64(0); i < n; i++ {
					row, rsz, err := sql.DecodeRow(payload[off:])
					if err != nil {
						return &ProtocolError{Detail: err.Error()}
					}
					off += rsz
					if perr := sink.Push(row); perr != nil {
						return &sinkAbort{err: perr}
					}
					total++
				}
			case frameRowsCol:
				if e.pc.version < ProtocolV2 {
					return &ProtocolError{Detail: "columnar frame on a v1 connection"}
				}
				rows, err := decodeColumnarFrame(payload)
				if err != nil {
					return err
				}
				c.colFrames.Add(1)
				if bs, ok := sink.(wrapper.BatchSink); ok {
					if perr := bs.PushBatch(rows); perr != nil {
						return &sinkAbort{err: perr}
					}
				} else {
					for _, row := range rows {
						if perr := sink.Push(row); perr != nil {
							return &sinkAbort{err: perr}
						}
					}
				}
				total += uint64(len(rows))
			case frameError:
				// A mid-stream error is the server relaying a backend
				// failure it discovered after frames went out. The failure
				// is deterministic — every replica would fail the same way
				// after the same prefix — so it rides the sinkAbort path:
				// final, never retried, surfaced as-is.
				return &sinkAbort{err: decodeRemoteError(payload)}
			case frameEnd:
				n, sz := binary.Uvarint(payload)
				if sz <= 0 || n != total {
					return &ProtocolError{Detail: fmt.Sprintf("stream count mismatch: end says %d, received %d", n, total)}
				}
				return nil
			default:
				return &ProtocolError{Detail: fmt.Sprintf("unexpected frame 0x%02x inside row stream", typ)}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return cols, nil
}

// ExecuteExists implements wrapper.ExistsExecutor remotely: the backend's
// own existence mode answers, so the probe's cost does not scale with the
// result size on either side of the wire.
func (c *Client) ExecuteExists(stmt *sql.SelectStmt) (bool, error) {
	return c.ExecuteExistsCtx(context.Background(), stmt)
}

// ExecuteExistsCtx implements wrapper.ContextExistsExecutor: ExecuteExists
// bounded by a caller context (see ExecuteCtx for the cancellation
// mechanics).
func (c *Client) ExecuteExistsCtx(ctx context.Context, stmt *sql.SelectStmt) (bool, error) {
	payload, err := c.callCtx(ctx, frameExists, []byte(stmt.SQL()), frameBool)
	if err != nil {
		return false, err
	}
	if len(payload) != 1 {
		return false, &ProtocolError{Detail: "bad bool payload"}
	}
	return payload[0] == 1, nil
}

// ColumnStatistics implements wrapper.StatisticsProvider over the wire:
// shards ship statistics summaries, never rows. Decoding happens inside
// the retry loop, so a corrupt snapshot payload is a protocol error that
// gets retried on another connection like any other transport fault.
func (c *Client) ColumnStatistics(table, column string) (*relational.ColumnStats, error) {
	var out *relational.ColumnStats
	err := c.do(context.Background(), frameStats, sql.AppendColumns(nil, []string{table, column}), func(e *exchange) error {
		if e.typ != frameStatsRes {
			return &ProtocolError{Detail: fmt.Sprintf("unexpected frame 0x%02x, want 0x%02x", e.typ, frameStatsRes)}
		}
		cs, _, err := sql.DecodeColumnStats(e.payload)
		if err != nil {
			return &ProtocolError{Detail: err.Error()}
		}
		out = cs
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AttributeScore relays keyword relevance from the remote backend's
// full-text evidence; a shard that cannot answer contributes zero, the
// neutral element of the coordinator's max-merge.
func (c *Client) AttributeScore(table, column, keyword string) float64 {
	payload, err := c.call(frameScore, sql.AppendColumns(nil, []string{table, column, keyword}), frameFloat)
	if err != nil || len(payload) != 8 {
		return 0
	}
	return math.Float64frombits(binary.BigEndian.Uint64(payload))
}

// EdgeDistance relays the remote backend's mutual-information distance.
func (c *Client) EdgeDistance(e relational.JoinEdge) (float64, error) {
	payload, err := c.call(frameEdge,
		sql.AppendColumns(nil, []string{e.FromTable, e.FromColumn, e.ToTable, e.ToColumn}), frameFloat)
	if err != nil {
		return 1, err
	}
	if len(payload) != 8 {
		return 1, &ProtocolError{Detail: "bad float payload"}
	}
	return math.Float64frombits(binary.BigEndian.Uint64(payload)), nil
}

// ---- operation core: retry loop, hedged start, single-frame calls ----

// call runs a single-frame request/response operation.
func (c *Client) call(reqType byte, req []byte, wantType byte) ([]byte, error) {
	return c.callCtx(context.Background(), reqType, req, wantType)
}

// callCtx is call bounded by a caller context.
func (c *Client) callCtx(ctx context.Context, reqType byte, req []byte, wantType byte) ([]byte, error) {
	var out []byte
	err := c.do(ctx, reqType, req, func(e *exchange) error {
		if e.typ != wantType {
			return &ProtocolError{Detail: fmt.Sprintf("unexpected frame 0x%02x, want 0x%02x", e.typ, wantType)}
		}
		out = e.payload
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// sinkAbort marks a consumer-side abort (the sink rejected a row): the
// operation must not be retried and the consumer's error surfaces as-is.
type sinkAbort struct{ err error }

func (s *sinkAbort) Error() string { return s.err.Error() }
func (s *sinkAbort) Unwrap() error { return s.err }

// readTargets returns the replica indexes reads may use this moment: the
// fleet's published rotation (healthy, caught-up replicas) when one
// exists and is non-empty, every replica otherwise — a fully degraded
// fleet still tries everything rather than refusing reads outright.
func (c *Client) readTargets() []int {
	if c.fleet != nil {
		if rot := c.fleet.rotation.Load(); rot != nil && len(*rot) > 0 {
			return *rot
		}
	}
	return c.all
}

// do runs one operation: hedged start, response handling, retry with
// backoff across replicas on transport failures. handle reads the rest of
// the response from e.pc; do owns the connection's fate (pool on success,
// close on failure). Replica choice walks the current read rotation —
// demoted and lagging replicas are skipped until the fleet layer readmits
// them — and transport failures feed the rotation's failure counts, so
// reads accelerate demotion instead of waiting out the probe interval.
//
// ctx bounds the whole operation, backoff sleeps included: cancellation
// closes the in-flight attempt's connection (the same mechanism a hedge
// winner uses on the loser), which unblocks any pending read immediately,
// and the context's error is returned instead of the induced read error.
func (c *Client) do(ctx context.Context, reqType byte, req []byte, handle func(e *exchange) error) error {
	if c.closed.Load() {
		return ErrClientClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	c.ops.Add(1)
	start := int(c.next.Add(1) - 1)
	backoff := c.opt.RetryBackoff
	var lastErr error
	for attempt := 0; attempt < c.opt.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
			backoff *= 2
		}
		if c.closed.Load() {
			return ErrClientClosed
		}
		rot := c.readTargets()
		replica := rot[(start+attempt)%len(rot)]
		e, hedged, err := c.startHedged(ctx, rot, (start+attempt)%len(rot), reqType, req)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			lastErr = err
			c.noteReadFailure(replica)
			continue
		}
		// Only un-hedged completions feed the latency tracker: a hedged
		// win's time-to-first-frame measures the fast replica, and folding
		// it in would collapse the quantile toward the hedge floor — every
		// hedge making the next one more likely, until healthy traffic
		// runs at double load.
		if !hedged {
			c.lat.record(e.firstFrame)
		}
		if e.typ == frameError {
			// In-band rejection: connection is clean, error is final.
			e.pc.release()
			return decodeRemoteError(e.payload)
		}
		// While handle reads the rest of the response, a context fire must
		// unblock it: closing the connection fails the pending read.
		stop := context.AfterFunc(ctx, e.pc.close)
		herr := handle(e)
		if herr != nil {
			stop()
			e.pc.close()
			var sa *sinkAbort
			if errors.As(herr, &sa) {
				return sa.err
			}
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			lastErr = herr
			c.noteReadFailure(replica)
			continue
		}
		if !stop() {
			// The context fired after handle finished: the response is
			// complete (return it), but the connection may have been closed
			// mid-pooling and cannot be reused.
			e.pc.close()
			return nil
		}
		e.pc.release()
		return nil
	}
	return lastErr
}

func decodeRemoteError(payload []byte) error {
	if len(payload) == 0 {
		return &ProtocolError{Detail: "empty error frame"}
	}
	kind, msg := payload[0], string(payload[1:])
	switch kind {
	case errKindNoInstance:
		return wrapper.ErrNoInstanceAccess
	case errKindFenced:
		return fmt.Errorf("%w: %s", ErrFenced, msg)
	case errKindLagging:
		return fmt.Errorf("%w: %s", ErrLagging, msg)
	case errKindReadOnly:
		return fmt.Errorf("%w: %s", ErrReadOnly, msg)
	}
	return &RemoteError{Msg: msg}
}

// exchange is one in-flight attempt that has received its first response
// frame. The rest of the response (row streams) is read from pc by the
// operation's handler.
type exchange struct {
	pc         *pooledConn
	typ        byte
	payload    []byte
	firstFrame time.Duration // request write → first response frame
}

// startExchange acquires a connection to the replica, sends the request
// and reads the first response frame. The attempt's connection is
// published to slot (when non-nil) as soon as it is acquired, so a
// concurrent winner can cancel this attempt by closing it. A context fire
// during the request write or the first-frame read closes the connection
// the same way.
func (c *Client) startExchange(ctx context.Context, replica int, reqType byte, req []byte, slot *atomic.Pointer[pooledConn]) (*exchange, error) {
	pc, err := c.pools[replica].get()
	if err != nil {
		return nil, err
	}
	if slot != nil {
		slot.Store(pc)
	}
	stop := context.AfterFunc(ctx, pc.close)
	pc.conn.SetDeadline(time.Now().Add(c.opt.RequestTimeout))
	startT := time.Now()
	if err := writeFrame(pc.conn, reqType, req); err != nil {
		stop()
		pc.close()
		return nil, err
	}
	typ, payload, err := c.readFrameCounted(pc.br)
	if err != nil {
		stop()
		pc.close()
		return nil, err
	}
	if !stop() {
		// The context fired between the frame landing and this check: the
		// connection is (being) closed and the exchange cannot continue.
		pc.close()
		return nil, ctx.Err()
	}
	return &exchange{pc: pc, typ: typ, payload: payload, firstFrame: time.Since(startT)}, nil
}

// startHedged races the attempt against a delayed second attempt on the
// next replica in the read rotation. The first attempt to deliver a
// response frame wins; the loser's connection is closed immediately
// (canceling its server-side read promptly) and its goroutine unwinds
// through the buffered results channel — nothing blocks, nothing leaks.
// hedged reports whether the secondary attempt was launched (regardless
// of which attempt won).
func (c *Client) startHedged(ctx context.Context, rot []int, pos int, reqType byte, req []byte) (e *exchange, hedged bool, err error) {
	c.attempts.Add(1)
	replica := rot[pos%len(rot)]
	delay, armed := c.hedgeDelay()
	if !armed {
		e, err = c.startExchange(ctx, replica, reqType, req, nil)
		return e, false, err
	}
	type hres struct {
		slot int
		e    *exchange
		err  error
	}
	var claimed atomic.Bool
	var conns [2]atomic.Pointer[pooledConn]
	resc := make(chan hres, 2)
	run := func(slot, rep int) {
		e, err := c.startExchange(ctx, rep, reqType, req, &conns[slot])
		if err != nil {
			resc <- hres{slot: slot, err: err}
			return
		}
		if claimed.CompareAndSwap(false, true) {
			resc <- hres{slot: slot, e: e}
			return
		}
		// The other attempt already won; this connection is mid-response
		// and cannot be pooled.
		e.pc.close()
		resc <- hres{slot: slot, err: errLostRace}
	}
	go run(0, replica)
	timer := time.NewTimer(delay)
	defer timer.Stop()
	launched, finished := 1, 0
	var firstErr error
	for {
		select {
		case r := <-resc:
			finished++
			if r.e != nil {
				if r.slot == 1 {
					c.hedgeWins.Add(1)
				}
				// Cancel the in-flight loser, if any: closing its
				// connection unblocks its read immediately.
				if launched == 2 {
					other := conns[1-r.slot].Load()
					if other != nil {
						other.close()
					}
				}
				return r.e, launched == 2, nil
			}
			if firstErr == nil && !errors.Is(r.err, errLostRace) {
				firstErr = r.err
			}
			if finished == launched {
				if firstErr == nil {
					firstErr = errLostRace // unreachable: a loser implies a winner returned
				}
				return nil, launched == 2, firstErr
			}
		case <-timer.C:
			if launched == 1 {
				c.hedges.Add(1)
				c.attempts.Add(1)
				launched = 2
				go run(1, rot[(pos+1)%len(rot)])
			}
		}
	}
}

// hedgeDelay returns the delay before launching a hedge and whether
// hedging should arm at all. armed is false when hedging is disabled or
// the latency distribution is still cold (fewer than HedgeMinSamples
// completions recorded) — callers must take the single-attempt path then,
// never hand the sentinel to a timer: a non-positive duration would fire
// it immediately and hedge every request at double load. When armed, the
// returned delay is always positive (clamped to [HedgeMinDelay,
// HedgeMaxDelay], or the positive HedgeFixedDelay).
func (c *Client) hedgeDelay() (time.Duration, bool) {
	if !c.opt.Hedge {
		return 0, false
	}
	if c.opt.HedgeFixedDelay > 0 {
		return c.opt.HedgeFixedDelay, true
	}
	d, ok := c.lat.quantile(c.opt.HedgeQuantile, c.opt.HedgeMinSamples)
	if !ok {
		return 0, false
	}
	if d < c.opt.HedgeMinDelay {
		d = c.opt.HedgeMinDelay
	}
	if d > c.opt.HedgeMaxDelay {
		d = c.opt.HedgeMaxDelay
	}
	return d, true
}

// ---- connection pool ----

type pooledConn struct {
	conn    net.Conn
	br      *bufio.Reader
	pool    *connPool
	version int // negotiated protocol version (sticky per connection)
}

// release returns the connection to its pool (protocol state clean: the
// full response was consumed).
func (pc *pooledConn) release() { pc.pool.put(pc) }

// close discards the connection (mid-response, failed, or lost a hedge
// race). Safe to call concurrently with an in-flight read — that is the
// cancellation mechanism.
func (pc *pooledConn) close() { pc.conn.Close() }

type connPool struct {
	dial      Dialer
	idle      chan *pooledConn
	closed    *atomic.Bool
	dials     *atomic.Uint64
	handshake func(*pooledConn) error
}

func (p *connPool) get() (*pooledConn, error) {
	if p.closed.Load() {
		return nil, ErrClientClosed
	}
	select {
	case pc := <-p.idle:
		return pc, nil
	default:
	}
	conn, err := p.dial()
	if err != nil {
		return nil, err
	}
	p.dials.Add(1)
	pc := &pooledConn{conn: conn, br: bufio.NewReader(conn), pool: p}
	if p.handshake != nil {
		// Negotiate once per connection; the granted version rides along
		// through the pool for every later exchange.
		if err := p.handshake(pc); err != nil {
			pc.conn.Close()
			return nil, err
		}
	}
	return pc, nil
}

func (p *connPool) put(pc *pooledConn) {
	if p.closed.Load() {
		pc.conn.Close()
		return
	}
	pc.conn.SetDeadline(time.Time{})
	select {
	case p.idle <- pc:
		// Close() may have swapped the flag and drained between the check
		// above and this insert; re-checking after the insert closes the
		// race — one side is guaranteed to see the connection.
		if p.closed.Load() {
			p.drainClose()
		}
	default:
		pc.conn.Close()
	}
}

func (p *connPool) drainClose() {
	for {
		select {
		case pc := <-p.idle:
			pc.conn.Close()
		default:
			return
		}
	}
}

// ---- latency tracking for the hedge delay ----

const latencyWindow = 128

// latencyTracker keeps a ring of recent time-to-first-response samples
// and answers quantile queries over them.
type latencyTracker struct {
	mu  sync.Mutex
	buf [latencyWindow]time.Duration
	n   int // samples stored (caps at latencyWindow)
	idx int // next write position
}

func (t *latencyTracker) record(d time.Duration) {
	t.mu.Lock()
	t.buf[t.idx] = d
	t.idx = (t.idx + 1) % latencyWindow
	if t.n < latencyWindow {
		t.n++
	}
	t.mu.Unlock()
}

func (t *latencyTracker) quantile(q float64, minSamples int) (time.Duration, bool) {
	t.mu.Lock()
	if t.n < minSamples {
		t.mu.Unlock()
		return 0, false
	}
	samples := make([]time.Duration, t.n)
	copy(samples, t.buf[:t.n])
	t.mu.Unlock()
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	i := int(q * float64(len(samples)))
	if i >= len(samples) {
		i = len(samples) - 1
	}
	return samples[i], true
}
