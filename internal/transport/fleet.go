package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relational"
)

// ReplicaSpec names one replica of a shard group. The name is the
// replica's catalog identity: it is what the coordinator hands the
// primary in frameConfigure, and what the primary's resolver dials to
// replicate — for TCP fleets the name is the replica's address, which is
// exactly what Dial uses.
type ReplicaSpec struct {
	Name string
	Dial Dialer
}

// replicaMeta is the coordinator's view of one replica.
type replicaMeta struct {
	up       bool   // in the read rotation
	suspect  int    // consecutive probe/write failures
	lastSeq  uint64 // last op sequence the replica reported or acked
	diverged bool   // applied ops the current primary never saw; fenced out
}

// fleetState is a replicated client's catalog: who is primary at which
// epoch, which replicas are in the read rotation, and how far each has
// applied. The mutex serializes every catalog transition — writes,
// probes, promotion, replay — and is deliberately held across the network
// round trips those transitions make: replicated writes are
// population-phase operations, and serializing them client-side is what
// makes "replay until caught up" an exact fence rather than a race. The
// read path never takes the mutex: it consumes the atomically published
// rotation, and feeds failures back through a TryLock that skips rather
// than stalls.
type fleetState struct {
	mu         sync.Mutex
	epoch      uint64
	primary    int
	configured bool
	rep        []replicaMeta
	rotation   atomic.Pointer[[]int]

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

func (f *fleetState) stopProber() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.wg.Wait()
}

// NewReplicatedClient builds a client over named replicas of one shard
// group, enabling the replicated-write path (Insert), health probing and
// failover on top of the read surface every client has. Reads start with
// every replica in rotation; the catalog configures itself (choosing a
// primary, fencing an epoch) on the first write or probe.
//
// Specs repeating a name (the same address fat-fingered twice in a shard
// group) collapse to their first occurrence before the catalog is built.
// A duplicate entering rotation twice would race the same process against
// itself on retries and hedged reads, double-count it in replication
// acks, and let one dead process demote "two" replicas.
func NewReplicatedClient(specs []ReplicaSpec, opt Options) (*Client, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("transport: no replicas")
	}
	uniq := make([]ReplicaSpec, 0, len(specs))
	seen := make(map[string]bool, len(specs))
	for _, sp := range specs {
		if seen[sp.Name] {
			continue
		}
		seen[sp.Name] = true
		uniq = append(uniq, sp)
	}
	specs = uniq
	dialers := make([]Dialer, len(specs))
	names := make([]string, len(specs))
	for i, sp := range specs {
		dialers[i] = sp.Dial
		names[i] = sp.Name
	}
	c, err := NewClient(dialers, opt)
	if err != nil {
		return nil, err
	}
	c.names = names
	f := &fleetState{stop: make(chan struct{})}
	f.rep = make([]replicaMeta, len(specs))
	for i := range f.rep {
		f.rep[i].up = true
	}
	rot := append([]int(nil), c.all...)
	f.rotation.Store(&rot)
	c.fleet = f
	if c.opt.ProbeInterval > 0 {
		f.wg.Add(1)
		go c.prober()
	}
	return c, nil
}

// ReplicaStatus is one replica's row in a FleetStatus.
type ReplicaStatus struct {
	Name       string
	Primary    bool
	InRotation bool
	LastSeq    uint64
	Suspect    int
	Diverged   bool
}

// FleetStatus snapshots the replica catalog (diagnostics, tests,
// queststats -section fleet).
type FleetStatus struct {
	Configured bool
	Epoch      uint64
	Primary    string
	Replicas   []ReplicaStatus
}

// FleetStatus reports the catalog. On clients without one (NewClient,
// NewLoopbackClient) it returns the zero status.
func (c *Client) FleetStatus() FleetStatus {
	f := c.fleet
	if f == nil {
		return FleetStatus{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FleetStatus{Configured: f.configured, Epoch: f.epoch}
	if f.configured {
		st.Primary = c.names[f.primary]
	}
	for i, r := range f.rep {
		st.Replicas = append(st.Replicas, ReplicaStatus{
			Name:       c.names[i],
			Primary:    f.configured && i == f.primary,
			InRotation: r.up,
			LastSeq:    r.lastSeq,
			Suspect:    r.suspect,
			Diverged:   r.diverged,
		})
	}
	return st
}

// Insert is the replicated write path: route the row to the shard group's
// primary with the current epoch, let the primary apply + fan out to its
// backups, and reconcile the catalog from the ack (backups that missed
// the op leave the read rotation until replay). A fenced rejection —
// the fleet moved on from the epoch this client knew — refreshes the
// catalog and retries; a transport failure counts against the primary
// and promotes a backup at the failure threshold, so writes survive a
// dead primary without waiting for the prober. Like every population
// write in this codebase, Insert must not race queries on the same data;
// concurrent Insert calls are safe (the catalog serializes them).
func (c *Client) Insert(table string, row relational.Row) error {
	if c.closed.Load() {
		return ErrClientClosed
	}
	f := c.fleet
	if f == nil {
		return fmt.Errorf("transport: client has no replica catalog (use NewReplicatedClient): %w", ErrReadOnly)
	}
	c.ops.Add(1)
	c.inserts.Add(1)
	f.mu.Lock()
	defer f.mu.Unlock()
	backoff := c.opt.RetryBackoff
	var lastErr error
	for attempt := 0; attempt < c.opt.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			time.Sleep(backoff)
			backoff *= 2
		}
		if c.closed.Load() {
			return ErrClientClosed
		}
		if err := c.ensureConfiguredLocked(); err != nil {
			if errors.Is(err, ErrReadOnly) {
				// The fleet speaks a protocol without replication frames;
				// retrying cannot change that.
				return err
			}
			lastErr = err
			continue
		}
		primary := f.primary
		payload, err := c.exchangeRepl(primary, frameInsert,
			encodeInsertReq(f.epoch, table, row), frameInsertAck)
		if err != nil {
			switch {
			case errors.Is(err, ErrFenced):
				// The fleet moved past our epoch: somebody else configured a
				// newer regime, or this replica is not the primary we think
				// it is. Refresh from replica statuses and re-fence.
				c.fencedW.Add(1)
				c.statusAllLocked()
				f.configured = false
				lastErr = err
				continue
			case isRemoteFinal(err):
				return err // the backend itself rejected the row: final
			default:
				// Transport failure at the primary: count it and promote a
				// backup at the threshold, then retry at the new primary.
				lastErr = err
				f.rep[primary].suspect++
				if f.rep[primary].suspect >= c.opt.ProbeFailThreshold {
					c.demoteLocked(primary)
				}
				continue
			}
		}
		_, seq, acks, err := decodeInsertAck(payload)
		if err != nil {
			lastErr = err
			continue
		}
		f.rep[primary].lastSeq = seq
		f.rep[primary].suspect = 0
		for _, a := range acks {
			i := c.replicaIndex(a.name)
			if i < 0 {
				continue
			}
			if a.ok {
				c.replAcks.Add(1)
				f.rep[i].lastSeq = seq
			} else {
				// The backup missed the op: it is behind the primary now and
				// must not serve reads until replay catches it up.
				c.demoteLocked(i)
			}
		}
		return nil
	}
	return lastErr
}

// isRemoteFinal reports whether a replication-exchange error is a
// deterministic backend rejection (retrying elsewhere cannot help).
func isRemoteFinal(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) || errors.Is(err, ErrReadOnly) || errors.Is(err, ErrLagging)
}

// ProbeNow runs one probe round synchronously: status every replica,
// demote past the failure threshold (promoting a backup when the primary
// died), and replay recovered replicas back into the rotation. The
// background prober calls exactly this; tests and benchmarks drive it
// directly for determinism.
func (c *Client) ProbeNow() {
	f := c.fleet
	if f == nil || c.closed.Load() {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	c.probeOnceLocked()
}

func (c *Client) prober() {
	f := c.fleet
	defer f.wg.Done()
	t := time.NewTicker(c.opt.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			c.ProbeNow()
		}
	}
}

// noteReadFailure feeds a read-path transport failure into the replica's
// failure count. It only arms when the prober is configured — demotion
// without a prober would shrink the rotation with nothing to readmit
// recovered replicas — and backs off (TryLock) when the catalog is busy
// with a transition, so reads never stall behind a replay.
func (c *Client) noteReadFailure(replica int) {
	f := c.fleet
	if f == nil || c.opt.ProbeInterval <= 0 {
		return
	}
	if !f.mu.TryLock() {
		return
	}
	defer f.mu.Unlock()
	f.rep[replica].suspect++
	if f.rep[replica].suspect >= c.opt.ProbeFailThreshold {
		c.demoteLocked(replica)
	}
}

// ---- catalog transitions (all require f.mu) ----

// publishRotationLocked snapshots the up replicas for the lock-free read
// path.
func (c *Client) publishRotationLocked() {
	f := c.fleet
	rot := make([]int, 0, len(f.rep))
	for i, r := range f.rep {
		if r.up {
			rot = append(rot, i)
		}
	}
	f.rotation.Store(&rot)
}

// demoteLocked pulls a replica from the read rotation; when it was the
// primary of a configured fleet, a live backup is promoted in its place.
func (c *Client) demoteLocked(i int) {
	f := c.fleet
	if f.rep[i].up {
		f.rep[i].up = false
		c.demotions.Add(1)
		c.publishRotationLocked()
	}
	if f.configured && f.primary == i {
		c.promoteLocked()
	}
}

// promoteLocked elects a new primary after the old one was demoted: the
// in-rotation replica with the most applied ops wins (freshest copy —
// promoting a stale one would orphan acked writes), the epoch advances so
// the demoted primary is fenced the moment it resurfaces, and the
// surviving backups are re-pointed at the winner. With nobody left to
// promote the fleet drops to unconfigured; the next write or probe
// re-elects from whatever is reachable then.
func (c *Client) promoteLocked() {
	f := c.fleet
	for {
		cand, best := -1, uint64(0)
		for i, r := range f.rep {
			if !r.up || r.diverged {
				continue
			}
			if cand < 0 || r.lastSeq > best {
				cand, best = i, r.lastSeq
			}
		}
		if cand < 0 {
			f.configured = false
			return
		}
		f.epoch++
		members := c.backupNamesLocked(cand)
		lastSeq, err := c.configureReplica(cand, f.epoch, RolePrimary, members)
		if err != nil {
			c.probeFails.Add(1)
			f.rep[cand].up = false
			c.demotions.Add(1)
			c.publishRotationLocked()
			continue
		}
		f.primary = cand
		f.rep[cand].lastSeq = lastSeq
		f.rep[cand].suspect = 0
		f.configured = true
		c.promotions.Add(1)
		for i, r := range f.rep {
			if i == cand || !r.up {
				continue
			}
			if _, err := c.configureReplica(i, f.epoch, RoleBackup, nil); err != nil {
				f.rep[i].suspect++
				f.rep[i].up = false
				c.demotions.Add(1)
			}
		}
		c.publishRotationLocked()
		return
	}
}

// backupNamesLocked lists the in-rotation replicas other than the primary
// — the membership a primary fans writes out to.
func (c *Client) backupNamesLocked(primary int) []string {
	f := c.fleet
	var names []string
	for i, r := range f.rep {
		if i != primary && r.up && !r.diverged {
			names = append(names, c.names[i])
		}
	}
	return names
}

// ensureConfiguredLocked fences the fleet into a configured regime:
// advance the epoch, elect the reachable replica with the most applied
// ops as primary, enroll the replicas that match its sequence as backups,
// and hand the primary its membership. Replicas that are reachable but
// behind stay out of rotation for the prober's replay path to catch up.
func (c *Client) ensureConfiguredLocked() error {
	f := c.fleet
	if f.configured {
		return nil
	}
	f.epoch++
	// Election order: most-applied first, index as tiebreak. lastSeq here
	// is the catalog's latest knowledge (statusAllLocked refreshes it on
	// the fence path); at first configuration everything is zero and the
	// order is simply replica order.
	order := append([]int(nil), c.all...)
	for x := 1; x < len(order); x++ {
		for y := x; y > 0 && f.rep[order[y]].lastSeq > f.rep[order[y-1]].lastSeq; y-- {
			order[y], order[y-1] = order[y-1], order[y]
		}
	}
	primary := -1
	var lastErr error
	for _, i := range order {
		if f.rep[i].diverged {
			continue
		}
		lastSeq, err := c.configureReplica(i, f.epoch, RolePrimary, nil)
		if err != nil {
			lastErr = err
			f.rep[i].suspect++
			if f.rep[i].up {
				f.rep[i].up = false
				c.demotions.Add(1)
			}
			continue
		}
		primary = i
		f.rep[i].lastSeq = lastSeq
		f.rep[i].suspect = 0
		f.rep[i].up = true
		break
	}
	if primary < 0 {
		c.publishRotationLocked()
		return fmt.Errorf("transport: no reachable replica to configure as primary: %w", lastErr)
	}
	var members []string
	for _, i := range order {
		if i == primary || f.rep[i].diverged {
			continue
		}
		lastSeq, err := c.configureReplica(i, f.epoch, RoleBackup, nil)
		if err != nil {
			f.rep[i].suspect++
			if f.rep[i].up {
				f.rep[i].up = false
				c.demotions.Add(1)
			}
			continue
		}
		f.rep[i].lastSeq = lastSeq
		f.rep[i].suspect = 0
		if lastSeq == f.rep[primary].lastSeq {
			members = append(members, c.names[i])
			f.rep[i].up = true
		} else {
			// Reachable but behind (or ahead: restarted from an older copy
			// while the primary kept writing). Keep it out until the rejoin
			// path reconciles it.
			f.rep[i].up = false
		}
	}
	if _, err := c.configureReplica(primary, f.epoch, RolePrimary, members); err != nil {
		return err
	}
	f.primary = primary
	f.configured = true
	c.publishRotationLocked()
	return nil
}

// statusAllLocked refreshes the catalog's epoch and per-replica sequence
// knowledge from a status round — the recovery step after a fenced write.
func (c *Client) statusAllLocked() {
	f := c.fleet
	for i := range f.rep {
		st, err := c.statusReplica(i)
		if err != nil {
			c.probeFails.Add(1)
			f.rep[i].suspect++
			continue
		}
		f.rep[i].suspect = 0
		f.rep[i].lastSeq = st.lastSeq
		if st.epoch > f.epoch {
			f.epoch = st.epoch
		}
	}
}

// probeOnceLocked is one probe round over every replica.
func (c *Client) probeOnceLocked() {
	f := c.fleet
	for i := range f.rep {
		st, err := c.statusReplica(i)
		if err != nil {
			c.probeFails.Add(1)
			f.rep[i].suspect++
			if f.rep[i].suspect >= c.opt.ProbeFailThreshold && f.rep[i].up {
				c.demoteLocked(i)
			}
			continue
		}
		f.rep[i].suspect = 0
		f.rep[i].lastSeq = st.lastSeq
		if st.epoch > f.epoch {
			f.epoch = st.epoch
		}
		if !f.configured {
			continue
		}
		if i == f.primary {
			if !f.rep[i].up {
				f.rep[i].up = true
				c.publishRotationLocked()
			}
			continue
		}
		switch {
		case !f.rep[i].up && !f.rep[i].diverged:
			// Reachable again: replay it back into the rotation.
			if err := c.rejoinLocked(i); err == nil {
				f.rep[i].up = true
				c.publishRotationLocked()
			}
		case f.rep[i].up && f.rep[i].lastSeq != f.rep[f.primary].lastSeq:
			// In rotation but out of sync — a missed ack the write path did
			// not see. Out it goes; the next round replays it.
			c.demoteLocked(i)
		}
	}
}

// rejoinLocked catches a recovered replica up from the primary's op log
// and re-enrolls it in the primary's membership. The catalog mutex is
// held throughout, so no write can advance the primary mid-replay — when
// this returns nil the replica's sequence equals the primary's exactly.
// A replica that applied ops the primary never saw (a stale primary that
// kept writing) has diverged: it is fenced out of the rotation for good
// rather than served with conflicting data. That holds for WAL-backed
// replicas too — recovery faithfully restores the diverged history, so
// the fence is the only safe answer; repair means discarding the
// replica's WAL directory and rebuilding it from the current primary.
func (c *Client) rejoinLocked(i int) error {
	f := c.fleet
	lastSeq, err := c.configureReplica(i, f.epoch, RoleBackup, nil)
	if err != nil {
		f.rep[i].suspect++
		return err
	}
	pseq := f.rep[f.primary].lastSeq
	if lastSeq > pseq {
		f.rep[i].diverged = true
		return fmt.Errorf("transport: replica %s diverged (seq %d past primary's %d)", c.names[i], lastSeq, pseq)
	}
	replayed := false
	for lastSeq < pseq {
		ops, err := c.fetchOps(f.primary, lastSeq, 512)
		if err != nil || len(ops) == 0 {
			if err == nil {
				err = fmt.Errorf("transport: primary served no ops past seq %d", lastSeq)
			}
			return err
		}
		for _, op := range ops {
			payload := encodeReplicateReq(f.epoch, op.seq, op.table, op.row)
			if _, err := c.exchangeRepl(i, frameReplicate, payload, frameInsertAck); err != nil {
				return err
			}
			lastSeq = op.seq
		}
		replayed = true
	}
	f.rep[i].lastSeq = lastSeq
	f.rep[i].suspect = 0
	if replayed {
		c.replays.Add(1)
	}
	// Re-enroll: the primary's membership regains the replica (same epoch
	// — membership changes are not promotions).
	members := append(c.backupNamesLocked(f.primary), c.names[i])
	_, err = c.configureReplica(f.primary, f.epoch, RolePrimary, members)
	return err
}

// ---- replication exchanges ----

func (c *Client) replicaIndex(name string) int {
	for i, n := range c.names {
		if n == name {
			return i
		}
	}
	return -1
}

// exchangeRepl runs one replication request/response on a specific
// replica (no rotation, no hedging — the catalog chose the target).
// Transport failures retry just far enough to drain dead idle
// connections from the pool plus one fresh dial — a replica that died
// and recovered leaves exactly PoolSize corpses behind, and a probe must
// see through them to the live server. A connection that negotiated
// below v3 cannot carry replication frames; that surfaces as
// ErrReadOnly, the "old shard in the fleet" signal.
func (c *Client) exchangeRepl(replica int, reqType byte, req []byte, wantType byte) ([]byte, error) {
	var e *exchange
	var err error
	for attempt := 0; attempt <= c.opt.PoolSize; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
		}
		c.attempts.Add(1)
		e, err = c.startExchange(context.Background(), replica, reqType, req, nil)
		if err == nil {
			break
		}
	}
	if err != nil {
		return nil, err
	}
	if e.pc.version < ProtocolV3 {
		e.pc.release()
		return nil, fmt.Errorf("transport: replica %d speaks protocol v%d: %w", replica, e.pc.version, ErrReadOnly)
	}
	if e.typ == frameError {
		e.pc.release()
		return nil, decodeRemoteError(e.payload)
	}
	if e.typ != wantType {
		e.pc.close()
		return nil, &ProtocolError{Detail: fmt.Sprintf("unexpected frame 0x%02x, want 0x%02x", e.typ, wantType)}
	}
	e.pc.release()
	return e.payload, nil
}

func (c *Client) statusReplica(i int) (replicaWireStatus, error) {
	c.probesN.Add(1)
	payload, err := c.exchangeRepl(i, frameStatus, nil, frameStatusRes)
	if err != nil {
		return replicaWireStatus{}, err
	}
	return decodeStatusRes(payload)
}

func (c *Client) configureReplica(i int, epoch uint64, role byte, backups []string) (lastSeq uint64, err error) {
	payload, err := c.exchangeRepl(i, frameConfigure, encodeConfigureReq(epoch, role, backups), frameStatusRes)
	if err != nil {
		return 0, err
	}
	st, err := decodeStatusRes(payload)
	if err != nil {
		return 0, err
	}
	return st.lastSeq, nil
}

func (c *Client) fetchOps(primary int, afterSeq uint64, max uint64) ([]opEntry, error) {
	payload, err := c.exchangeRepl(primary, frameOps, encodeOpsReq(afterSeq, max), frameOpsRes)
	if err != nil {
		return nil, err
	}
	return decodeOpsRes(payload)
}
