package transport

import (
	"encoding/binary"
	"errors"
	"net"

	"repro/internal/relational"
	"repro/internal/sql"
)

// errMidStreamAbort signals that frames had already been written when the
// backend failed: the stream can be neither completed nor retracted, so
// the server relays the error in-band and drops the connection.
var errMidStreamAbort = errors.New("transport: stream aborted mid-flight")

// sinkWriteError wraps a connection write failure raised inside a sink
// callback, so handleQuery can tell "the peer is gone" (drop silently)
// from "the backend failed" (answer in-band).
type sinkWriteError struct{ err error }

func (e *sinkWriteError) Error() string { return e.err.Error() }
func (e *sinkWriteError) Unwrap() error { return e.err }

// unwrapSinkWrite strips the sinkWriteError wrapper for return paths that
// hand the raw connection error back to the request loop.
func unwrapSinkWrite(err error) error {
	var we *sinkWriteError
	if errors.As(err, &we) {
		return we.err
	}
	return err
}

// frameSink adapts one query's response stream to wrapper.RowSink: rows
// accumulate into at most one batch (cut by row count and by encoded
// size) and flush the moment a cut is reached, so the server's working
// memory for a query is one batch, never the result. On a v2 connection a
// flushed batch goes out as a columnar frameRowsCol when the columnar
// encoding actually undercuts the row form, as plain frameRows otherwise —
// mixing the two in one stream is legal. The column header is written
// lazily with the first flush, which keeps a Reset before any write (a
// streaming backend replaying a retry) free; a Reset after frames have
// been written marks the sink broken, because written frames cannot be
// retracted, and the stream is then aborted in-band.
//
// The sink requires its ColumnSink face to be honored: a Push before
// StartColumns is an error, since no frame may precede the header.
type frameSink struct {
	conn    net.Conn
	srv     *Server
	ver     int
	stmt    *sql.SelectStmt
	batch   int
	byteCap int

	cols     []string
	hints    []sql.EncodingHint
	hintsSet bool

	rows     []relational.Row // current batch, in arrival order
	rowBytes int              // encoded size of the current batch
	total    uint64           // rows delivered, flushed batches included
	wroteAny bool             // any frame written (header included)
	broken   bool             // Reset after a write: stream unsalvageable
}

// Reset implements wrapper.RowSink.
func (k *frameSink) Reset() {
	if k.wroteAny {
		k.broken = true
		return
	}
	k.rows, k.rowBytes, k.total = k.rows[:0], 0, 0
}

// StartColumns implements wrapper.ColumnSink.
func (k *frameSink) StartColumns(cols []string) error {
	k.setCols(cols)
	return nil
}

// setCols records the header once; later calls (a replay after a free
// Reset delivers the same header) are no-ops.
func (k *frameSink) setCols(cols []string) {
	if k.cols == nil {
		k.cols = cols
	}
}

// Push implements wrapper.RowSink.
func (k *frameSink) Push(row relational.Row) error {
	if k.broken {
		return errMidStreamAbort
	}
	if k.cols == nil {
		return errors.New("transport: stream executor pushed a row before the column header")
	}
	k.rows = append(k.rows, row)
	k.rowBytes += sql.EncodedRowSize(row)
	k.total++
	if len(k.rows) >= k.batch || k.rowBytes >= k.byteCap {
		return k.flush()
	}
	return nil
}

func (k *frameSink) flush() error {
	if len(k.rows) == 0 {
		return nil
	}
	k.srv.noteBuffered(k.rowBytes)
	if err := k.writeHeader(); err != nil {
		return err
	}
	typ, payload := frameRows, []byte(nil)
	if k.ver >= ProtocolV2 {
		typ, payload = k.encodeColumnar()
	} else {
		payload = k.encodeRows()
	}
	k.rows, k.rowBytes = k.rows[:0], 0
	if err := writeFrame(k.conn, typ, payload); err != nil {
		return &sinkWriteError{err: err}
	}
	return nil
}

// encodeColumnar encodes the current batch as a columnar frame, falling
// back to the row form when the batch does not fit the columnar caps, is
// ragged, or simply encodes no smaller — the size check means a v2 stream
// never ships a frame worse than its v1 equivalent.
func (k *frameSink) encodeColumnar() (byte, []byte) {
	n, ncols := len(k.rows), len(k.cols)
	if n > sql.MaxColumnarRows || ncols == 0 || ncols > sql.MaxColumnarCols {
		return frameRows, k.encodeRows()
	}
	for _, r := range k.rows {
		if len(r) != ncols {
			return frameRows, k.encodeRows()
		}
	}
	if !k.hintsSet {
		k.hints = k.srv.encodingHints(k.stmt, k.cols)
		k.hintsSet = true
	}
	vecs := make([][]relational.Value, ncols)
	cells := make([]relational.Value, n*ncols)
	for c := range vecs {
		vec := cells[c*n : (c+1)*n : (c+1)*n]
		for i, r := range k.rows {
			vec[i] = r[c]
		}
		vecs[c] = vec
	}
	payload := sql.AppendColumnarBatch(nil, n, vecs, k.hints)
	if len(payload) >= k.rowBytes+binary.MaxVarintLen64 {
		return frameRows, k.encodeRows()
	}
	return frameRowsCol, payload
}

func (k *frameSink) encodeRows() []byte {
	payload := binary.AppendUvarint(make([]byte, 0, k.rowBytes+binary.MaxVarintLen64), uint64(len(k.rows)))
	for _, r := range k.rows {
		payload = sql.AppendRow(payload, r)
	}
	return payload
}

func (k *frameSink) writeHeader() error {
	if k.wroteAny {
		return nil
	}
	k.wroteAny = true
	if err := writeFrame(k.conn, frameColumns, sql.AppendColumns(nil, k.cols)); err != nil {
		return &sinkWriteError{err: err}
	}
	return nil
}

// finish flushes the remainder and closes the stream with the end frame.
// A non-nil return means the connection must drop.
func (k *frameSink) finish() error {
	if k.broken {
		writeError(k.conn, errMidStreamAbort)
		return errMidStreamAbort
	}
	if err := k.flush(); err != nil {
		return unwrapSinkWrite(err)
	}
	if err := k.writeHeader(); err != nil {
		return unwrapSinkWrite(err)
	}
	return writeFrame(k.conn, frameEnd, binary.AppendUvarint(nil, k.total))
}
