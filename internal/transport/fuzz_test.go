package transport

import (
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/relational"
	"repro/internal/sql"
)

// FuzzColumnarDecode throws arbitrary bytes at the columnar frame decoder
// — the surface a hostile or corrupt shard reaches first on a v2
// connection. The contract under fuzz: every rejection is a typed
// *ProtocolError wrapping ErrMalformedFrame (so callers never have to
// string-match), every acceptance yields rows that re-encode, and nothing
// panics, hangs, or over-allocates past the decoder's caps.
func FuzzColumnarDecode(f *testing.F) {
	// Seed with well-formed batches of each encoding so mutation starts
	// from deep inside the format, plus the malformation families the unit
	// suite pins.
	genres := []string{"noir", "drama", "comedy"}
	var dictish, rleish, mixed [][]relational.Value
	n := 64
	dcol := make([]relational.Value, n)
	rcol := make([]relational.Value, n)
	mcol := make([]relational.Value, n)
	for i := 0; i < n; i++ {
		dcol[i] = relational.String_(genres[i%len(genres)])
		rcol[i] = relational.Int(int64(i / 16))
		switch i % 4 {
		case 0:
			mcol[i] = relational.Null()
		case 1:
			mcol[i] = relational.Float(float64(i) / 2)
		case 2:
			mcol[i] = relational.Bool(i%8 == 2)
		default:
			mcol[i] = relational.String_("x")
		}
	}
	dictish = [][]relational.Value{dcol}
	rleish = [][]relational.Value{rcol}
	mixed = [][]relational.Value{dcol, rcol, mcol}
	f.Add(sql.AppendColumnarBatch(nil, n, dictish, nil))
	f.Add(sql.AppendColumnarBatch(nil, n, rleish, nil))
	f.Add(sql.AppendColumnarBatch(nil, n, mixed, nil))
	valid := sql.AppendColumnarBatch(nil, n, mixed, nil)
	f.Add(valid[:len(valid)/2])                     // truncated mid-column
	f.Add(append(valid[:len(valid):len(valid)], 0)) // trailing byte
	f.Add([]byte{})
	f.Add(binary.AppendUvarint(binary.AppendUvarint(nil, uint64(sql.MaxColumnarRows)), uint64(sql.MaxColumnarCols)))
	f.Add(append(binary.AppendUvarint(binary.AppendUvarint(nil, 4), 1), sql.ColEncDict, 1, 0, 5, 5, 5, 5))
	f.Add(append(binary.AppendUvarint(binary.AppendUvarint(nil, 4), 1), sql.ColEncRLE, 1, 200, 0))

	f.Fuzz(func(t *testing.T, payload []byte) {
		rows, err := decodeColumnarFrame(payload)
		if err != nil {
			var pe *ProtocolError
			if !errors.As(err, &pe) {
				t.Fatalf("decode error is %T (%v), want *ProtocolError", err, err)
			}
			if !errors.Is(err, ErrMalformedFrame) {
				t.Fatalf("decode error %v does not wrap ErrMalformedFrame", err)
			}
			if rows != nil {
				t.Fatal("rows returned alongside an error")
			}
			return
		}
		// Accepted payloads must describe a batch the encoder could have
		// produced: every row re-encodes through the row codec.
		if len(rows) > sql.MaxColumnarRows {
			t.Fatalf("decoder exceeded its row cap: %d", len(rows))
		}
		for _, r := range rows {
			if len(r) > sql.MaxColumnarCols {
				t.Fatalf("decoder exceeded its column cap: %d", len(r))
			}
			_ = sql.AppendRow(nil, r)
		}
	})
}
