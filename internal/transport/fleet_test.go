package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"

	"repro/internal/relational"
	"repro/internal/wrapper"
)

// replNet is an in-process network of named replica servers with
// deterministic fault injection: links can be killed (dial refused,
// established connections severed) and restored, and a replica can be
// replaced wholesale to model a process restart. Both the coordinator's
// dialers and every server's backup resolver route through it, so a kill
// partitions the replica from the entire fleet at once.
type replNet struct {
	mu    sync.Mutex
	srvs  map[string]*Server
	down  map[string]bool
	conns map[string][]net.Conn
}

func newReplNet() *replNet {
	return &replNet{srvs: map[string]*Server{}, down: map[string]bool{}, conns: map[string][]net.Conn{}}
}

func (n *replNet) add(name string, srv *Server) {
	srv.Resolver = n.dial
	n.mu.Lock()
	n.srvs[name] = srv
	n.mu.Unlock()
}

func (n *replNet) dial(name string) (net.Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	srv := n.srvs[name]
	if srv == nil || n.down[name] {
		return nil, fmt.Errorf("replnet: %s is unreachable", name)
	}
	cc, sc := net.Pipe()
	n.conns[name] = append(n.conns[name], cc, sc)
	go srv.ServeConn(sc)
	return cc, nil
}

func (n *replNet) dialer(name string) Dialer {
	return func() (net.Conn, error) { return n.dial(name) }
}

// kill severs the replica from the network: no new connections, every
// established one (coordinator pool, primary replication links) closed.
func (n *replNet) kill(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[name] = true
	for _, c := range n.conns[name] {
		c.Close()
	}
	n.conns[name] = nil
}

// restore heals the replica's link; server state is whatever it was.
func (n *replNet) restore(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[name] = false
}

// restart models a process restart: a brand-new server (the caller built
// it over the replica's retained storage) takes over the name.
func (n *replNet) restart(name string, srv *Server) {
	n.add(name, srv)
	n.restore(name)
}

func (n *replNet) killAll() {
	n.mu.Lock()
	names := make([]string, 0, len(n.srvs))
	for name := range n.srvs {
		names = append(names, name)
	}
	n.mu.Unlock()
	for _, name := range names {
		n.kill(name)
	}
}

// copyDB clones a database — each replica of a test fleet owns its copy.
func copyDB(t testing.TB, db *relational.Database, name string) *relational.Database {
	t.Helper()
	out, err := relational.NewDatabase(name, db.Schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range db.Schema.Tables() {
		for _, row := range db.Table(ts.Name).Rows() {
			if err := out.Insert(ts.Name, row.Clone()); err != nil {
				t.Fatal(err)
			}
		}
	}
	return out
}

// testFleet is R replicas of one shard group over a shared fault net.
type testFleet struct {
	net  *replNet
	dbs  []*relational.Database
	srvs []*Server
	cl   *Client
}

func newTestFleet(t *testing.T, r int, opt Options) *testFleet {
	t.Helper()
	base := testDB(t)
	f := &testFleet{net: newReplNet()}
	specs := make([]ReplicaSpec, r)
	for i := 0; i < r; i++ {
		name := fmt.Sprintf("r%d", i)
		db := copyDB(t, base, name)
		srv := NewServer(wrapper.NewFullAccessSource(db))
		f.net.add(name, srv)
		f.dbs = append(f.dbs, db)
		f.srvs = append(f.srvs, srv)
		specs[i] = ReplicaSpec{Name: name, Dial: f.net.dialer(name)}
	}
	cl, err := NewReplicatedClient(specs, opt)
	if err != nil {
		t.Fatal(err)
	}
	f.cl = cl
	t.Cleanup(func() {
		cl.Close()
		f.net.killAll()
	})
	return f
}

func movieRow(id int64) relational.Row {
	return relational.Row{
		relational.Int(id),
		relational.String_(fmt.Sprintf("late movie %d", id)),
		relational.Int(2013),
	}
}

func movieCount(db *relational.Database) int {
	return len(db.Table("movie").Rows())
}

// TestReplicatedInsertFanOut: a write through the fleet client lands on
// every replica synchronously, and the catalog tracks the op sequence.
func TestReplicatedInsertFanOut(t *testing.T) {
	f := newTestFleet(t, 3, Options{RetryBackoff: 1})
	const n = 10
	for i := 0; i < n; i++ {
		if err := f.cl.Insert("movie", movieRow(int64(1000+i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, srv := range f.srvs {
		srv.Quiesce()
	}
	for i, db := range f.dbs {
		if got := movieCount(db); got != 500+n {
			t.Fatalf("replica %d has %d movie rows, want %d", i, got, 500+n)
		}
	}
	st := f.cl.FleetStatus()
	if !st.Configured || st.Epoch != 1 {
		t.Fatalf("fleet not configured at epoch 1: %+v", st)
	}
	for _, r := range st.Replicas {
		if !r.InRotation || r.LastSeq != n {
			t.Fatalf("replica %s: rotation=%v lastSeq=%d, want in rotation at seq %d", r.Name, r.InRotation, r.LastSeq, n)
		}
	}
	cs := f.cl.Stats()
	if cs.Inserts != n || cs.ReplicationAcks != 2*n {
		t.Fatalf("Inserts=%d ReplicationAcks=%d, want %d and %d", cs.Inserts, cs.ReplicationAcks, n, 2*n)
	}
	// Reads keep working against the replicated fleet.
	res, err := f.cl.Execute(mustParse(t, "SELECT COUNT(*) FROM movie"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Key() != relational.Int(500+n).Key() {
		t.Fatalf("count after inserts = %v", res.Rows[0][0])
	}
}

// TestEpochFencing pins the server-side fence: direct writes work on an
// unconfigured (standalone) server, a backup refuses direct writes, and a
// primary refuses epochs other than its own.
func TestEpochFencing(t *testing.T) {
	db := copyDB(t, testDB(t), "solo")
	srv := NewServer(wrapper.NewFullAccessSource(db))
	c, err := NewReplicatedClient(
		[]ReplicaSpec{{Name: "solo", Dial: LoopbackDialer(srv)}}, Options{RetryBackoff: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Standalone: epoch 0, never configured, direct write accepted.
	if _, err := c.exchangeRepl(0, frameInsert, encodeInsertReq(0, "movie", movieRow(2000)), frameInsertAck); err != nil {
		t.Fatalf("standalone write: %v", err)
	}
	// Configure as backup at epoch 5: direct writes now fenced.
	if _, err := c.configureReplica(0, 5, RoleBackup, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.exchangeRepl(0, frameInsert, encodeInsertReq(5, "movie", movieRow(2001)), frameInsertAck); !errors.Is(err, ErrFenced) {
		t.Fatalf("write to backup = %v, want ErrFenced", err)
	}
	// Promote to primary at epoch 6: the old epoch is fenced, the new one
	// writes, and a stale configure cannot roll the fleet back.
	if _, err := c.configureReplica(0, 6, RolePrimary, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.exchangeRepl(0, frameInsert, encodeInsertReq(5, "movie", movieRow(2002)), frameInsertAck); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-epoch write = %v, want ErrFenced", err)
	}
	if _, err := c.exchangeRepl(0, frameInsert, encodeInsertReq(6, "movie", movieRow(2003)), frameInsertAck); err != nil {
		t.Fatalf("current-epoch write: %v", err)
	}
	if _, err := c.configureReplica(0, 4, RoleBackup, nil); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale configure = %v, want ErrFenced", err)
	}
	if epoch, role, lastSeq := srv.ReplicationStatus(); epoch != 6 || role != RolePrimary || lastSeq != 2 {
		t.Fatalf("status = epoch %d role %d seq %d", epoch, role, lastSeq)
	}
}

// TestBackupFailureDemotesAndRejoinReplays: killing a backup mid-stream
// of writes pulls it from rotation via the insert ack; healing the link
// lets the prober replay the missed ops and readmit it.
func TestBackupFailureDemotesAndRejoinReplays(t *testing.T) {
	f := newTestFleet(t, 2, Options{RetryBackoff: 1})
	for i := 0; i < 5; i++ {
		if err := f.cl.Insert("movie", movieRow(int64(1000+i))); err != nil {
			t.Fatal(err)
		}
	}
	f.net.kill("r1")
	for i := 5; i < 10; i++ {
		if err := f.cl.Insert("movie", movieRow(int64(1000+i))); err != nil {
			t.Fatal(err)
		}
	}
	st := f.cl.FleetStatus()
	if st.Replicas[1].InRotation {
		t.Fatal("dead backup still in rotation")
	}
	if got := f.cl.Stats().Demotions; got == 0 {
		t.Fatal("no demotion counted")
	}
	// Reads still flow — from the primary alone.
	if _, err := f.cl.Execute(mustParse(t, "SELECT COUNT(*) FROM movie")); err != nil {
		t.Fatalf("read in degraded topology: %v", err)
	}

	f.net.restore("r1")
	f.cl.ProbeNow()
	st = f.cl.FleetStatus()
	if !st.Replicas[1].InRotation || st.Replicas[1].LastSeq != 10 {
		t.Fatalf("rejoined replica: %+v", st.Replicas[1])
	}
	if got := f.cl.Stats().Replays; got != 1 {
		t.Fatalf("Replays = %d, want 1", got)
	}
	f.srvs[1].Quiesce()
	if a, b := movieCount(f.dbs[0]), movieCount(f.dbs[1]); a != b || a != 510 {
		t.Fatalf("replica divergence after replay: %d vs %d", a, b)
	}
	// The rejoined backup is back in the primary's membership: the next
	// write reaches it synchronously.
	if err := f.cl.Insert("movie", movieRow(1100)); err != nil {
		t.Fatal(err)
	}
	f.srvs[1].Quiesce()
	if got := movieCount(f.dbs[1]); got != 511 {
		t.Fatalf("post-rejoin write missed the backup: %d rows", got)
	}
}

// TestPrimaryFailurePromotesFreshestBackup: killing the primary promotes
// the live backup with the highest applied sequence at a bumped epoch,
// writes keep succeeding, and both the old primary and a stale backup
// replay their way back in.
func TestPrimaryFailurePromotesFreshestBackup(t *testing.T) {
	f := newTestFleet(t, 3, Options{RetryBackoff: 1, MaxAttempts: 6})
	for i := 0; i < 3; i++ {
		if err := f.cl.Insert("movie", movieRow(int64(1000+i))); err != nil {
			t.Fatal(err)
		}
	}
	f.net.kill("r2") // r2 stops at seq 3
	if err := f.cl.Insert("movie", movieRow(1003)); err != nil {
		t.Fatal(err) // seq 4: r1 acks, r2 reported down
	}
	f.net.kill("r0") // primary dies
	if err := f.cl.Insert("movie", movieRow(1004)); err != nil {
		t.Fatalf("write across primary failure: %v", err)
	}
	st := f.cl.FleetStatus()
	if st.Primary != "r1" || st.Epoch != 2 {
		t.Fatalf("promotion chose %s at epoch %d, want r1 at 2", st.Primary, st.Epoch)
	}
	cs := f.cl.Stats()
	if cs.Promotions != 1 {
		t.Fatalf("Promotions = %d, want 1", cs.Promotions)
	}

	// Both casualties heal: the stale backup and the deposed primary each
	// rejoin via replay, then take replicated writes again.
	f.net.restore("r2")
	f.net.restore("r0")
	f.cl.ProbeNow()
	st = f.cl.FleetStatus()
	for _, r := range st.Replicas {
		if !r.InRotation || r.LastSeq != 5 {
			t.Fatalf("replica %s after heal: %+v", r.Name, r)
		}
	}
	if epoch, role, _ := f.srvs[0].ReplicationStatus(); epoch != 2 || role != RoleBackup {
		t.Fatalf("deposed primary: epoch %d role %d, want backup at 2", epoch, role)
	}
	if err := f.cl.Insert("movie", movieRow(1005)); err != nil {
		t.Fatal(err)
	}
	for _, srv := range f.srvs {
		srv.Quiesce()
	}
	for i, db := range f.dbs {
		if got := movieCount(db); got != 506 {
			t.Fatalf("replica %d has %d rows, want 506", i, got)
		}
	}
}

// TestRestartRecoversAndRejoins models a process restart over retained
// storage: a fresh server takes over the replica's database, recovers its
// applied sequence (the durability layer's job, seeded explicitly here),
// and the rejoin replays exactly the ops it missed — no duplicates, no
// gaps.
func TestRestartRecoversAndRejoins(t *testing.T) {
	f := newTestFleet(t, 2, Options{RetryBackoff: 1})
	for i := 0; i < 4; i++ {
		if err := f.cl.Insert("movie", movieRow(int64(1000+i))); err != nil {
			t.Fatal(err)
		}
	}
	f.net.kill("r1")
	_, _, seqAtCrash := f.srvs[1].ReplicationStatus()
	for i := 4; i < 8; i++ {
		if err := f.cl.Insert("movie", movieRow(int64(1000+i))); err != nil {
			t.Fatal(err)
		}
	}
	// Restart: new server, same database, recovered sequence.
	srv2 := NewServer(wrapper.NewFullAccessSource(f.dbs[1]))
	srv2.RecoverReplicaState(seqAtCrash)
	f.srvs[1] = srv2
	f.net.restart("r1", srv2)
	f.cl.ProbeNow()

	st := f.cl.FleetStatus()
	if !st.Replicas[1].InRotation || st.Replicas[1].LastSeq != 8 {
		t.Fatalf("restarted replica: %+v", st.Replicas[1])
	}
	srv2.Quiesce()
	if a, b := movieCount(f.dbs[0]), movieCount(f.dbs[1]); a != b || a != 508 {
		t.Fatalf("restart replay wrong: %d vs %d rows, want 508", a, b)
	}
}

// TestInsertV1PinnedReadOnly: a fleet whose connections negotiated v1 has
// no replication frames; Insert surfaces the typed ErrReadOnly.
func TestInsertV1PinnedReadOnly(t *testing.T) {
	db := copyDB(t, testDB(t), "v1")
	srv := NewServer(wrapper.NewFullAccessSource(db))
	c, err := NewReplicatedClient(
		[]ReplicaSpec{{Name: "v1", Dial: LoopbackDialer(srv)}},
		Options{Protocol: ProtocolV1, MaxAttempts: 2, RetryBackoff: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Insert("movie", movieRow(9000)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Insert on v1 fleet = %v, want ErrReadOnly", err)
	}
	// Reads are unaffected.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestDuplicateReplicaSpecsCollapse: a shard group listing the same
// replica address twice (a copy-pasted fleet config) must collapse to
// one catalog entry before the fleet is built. Without the dedupe the
// duplicate enters the read rotation and the replication fan-out twice:
// a single write replicates to the same process twice (the second apply
// rejects the duplicate primary key), and one dead process demotes "two"
// replicas' worth of rotation.
func TestDuplicateReplicaSpecsCollapse(t *testing.T) {
	base := testDB(t)
	net := newReplNet()
	names := []string{"r0", "r1"}
	dbs := make([]*relational.Database, len(names))
	for i, name := range names {
		dbs[i] = copyDB(t, base, name)
		net.add(name, NewServer(wrapper.NewFullAccessSource(dbs[i])))
	}
	specs := []ReplicaSpec{
		{Name: "r0", Dial: net.dialer("r0")},
		{Name: "r0", Dial: net.dialer("r0")}, // fat-fingered duplicate
		{Name: "r1", Dial: net.dialer("r1")},
		{Name: "r0", Dial: net.dialer("r0")}, // and again
	}
	c, err := NewReplicatedClient(specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		c.Close()
		net.killAll()
	}()

	if got := c.Replicas(); got != len(names) {
		t.Fatalf("Replicas() = %d, want %d unique", got, len(names))
	}
	st := c.FleetStatus()
	seen := map[string]bool{}
	for _, r := range st.Replicas {
		if seen[r.Name] {
			t.Fatalf("replica %q appears twice in the catalog: %+v", r.Name, st.Replicas)
		}
		seen[r.Name] = true
	}
	for _, name := range names {
		if !seen[name] {
			t.Fatalf("replica %q missing from the catalog: %+v", name, st.Replicas)
		}
	}

	// A write through the deduped fleet lands exactly once per process.
	if err := c.Insert("movie", movieRow(7700)); err != nil {
		t.Fatal(err)
	}
	for i, db := range dbs {
		if got, want := movieCount(db), movieCount(base)+1; got != want {
			t.Fatalf("replica %s: %d movies after insert, want %d", names[i], got, want)
		}
	}
}
