package transport

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/relational"
	"repro/internal/sql"
	"repro/internal/wrapper"
)

func testDB(t testing.TB) *relational.Database {
	t.Helper()
	s := relational.NewSchema()
	if err := s.AddTable(&relational.TableSchema{
		Name: "movie",
		Columns: []relational.Column{
			{Name: "movie_id", Type: relational.TypeInt, NotNull: true},
			{Name: "title", Type: relational.TypeString, NotNull: true},
			{Name: "year", Type: relational.TypeInt},
		},
		PrimaryKey: "movie_id",
	}); err != nil {
		t.Fatal(err)
	}
	db := relational.MustNewDatabase("transport", s)
	words := []string{"dark", "river", "storm", "night"}
	for i := 1; i <= 500; i++ {
		year := relational.Value(relational.Int(int64(1960 + i%60)))
		if i%11 == 0 {
			year = relational.Null()
		}
		if err := db.Insert("movie", relational.Row{
			relational.Int(int64(i)),
			relational.String_(fmt.Sprintf("%s %s %d", words[i%4], words[(i/4)%4], i)),
			year,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func mustParse(t testing.TB, q string) *sql.SelectStmt {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}

func sameResult(t *testing.T, got, want *sql.Result) {
	t.Helper()
	if len(got.Columns) != len(want.Columns) {
		t.Fatalf("columns %v vs %v", got.Columns, want.Columns)
	}
	for i := range want.Columns {
		if got.Columns[i] != want.Columns[i] {
			t.Fatalf("column %d: %q vs %q", i, got.Columns[i], want.Columns[i])
		}
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("row count %d vs %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			g, w := got.Rows[i][j], want.Rows[i][j]
			if g.Type() != w.Type() || g.Key() != w.Key() {
				t.Fatalf("row %d cell %d: %v (%v) vs %v (%v)", i, j, g, g.Type(), w, w.Type())
			}
		}
	}
}

// TestLoopbackRoundTrip drives every request type through the full wire
// path (frames, codec, server dispatch) against the reference source.
func TestLoopbackRoundTrip(t *testing.T) {
	db := testDB(t)
	src := wrapper.NewFullAccessSource(db)
	c, err := NewLoopbackClient(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	for _, q := range []string{
		"SELECT * FROM movie WHERE movie_id = 17",
		"SELECT title FROM movie WHERE year > 1990 ORDER BY movie_id",
		"SELECT title, year FROM movie WHERE title MATCH 'dark' ORDER BY movie_id LIMIT 10",
		"SELECT COUNT(*), MIN(year), MAX(year) FROM movie",
		"SELECT title FROM movie WHERE movie_id = -4",
	} {
		stmt := mustParse(t, q)
		want, err := src.Execute(stmt)
		if err != nil {
			t.Fatalf("%s: reference: %v", q, err)
		}
		got, err := c.Execute(stmt)
		if err != nil {
			t.Fatalf("%s: remote: %v", q, err)
		}
		sameResult(t, got, want)

		wex, _ := src.ExecuteExists(stmt)
		gex, err := c.ExecuteExists(stmt)
		if err != nil {
			t.Fatalf("%s: remote exists: %v", q, err)
		}
		if gex != wex {
			t.Errorf("%s: exists %v, want %v", q, gex, wex)
		}
	}

	// Error parity: a statement the reference rejects must come back as a
	// RemoteError — and must not burn retries (every replica would reject).
	if _, err := c.Execute(mustParse(t, "SELECT nosuch FROM movie")); err == nil {
		t.Error("bad statement accepted")
	} else {
		var re *RemoteError
		if !errors.As(err, &re) {
			t.Errorf("bad statement returned %T (%v), want RemoteError", err, err)
		}
	}
	if st := c.Stats(); st.Retries != 0 {
		t.Errorf("query rejection consumed %d retries", st.Retries)
	}

	// Statistics round-trip: the snapshot must estimate like the original.
	want, err := src.ColumnStatistics("movie", "year")
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ColumnStatistics("movie", "year")
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != want.Rows || got.Distinct != want.Distinct || got.NullCount != want.NullCount {
		t.Errorf("stats diverge: got %+v want %+v", got, want)
	}
	if _, err := c.ColumnStatistics("movie", "nosuch"); err == nil {
		t.Error("unknown column statistics accepted")
	}

	// Relevance faces relay the backend's evidence.
	if g, w := c.AttributeScore("movie", "title", "dark"), src.AttributeScore("movie", "title", "dark"); g != w {
		t.Errorf("AttributeScore %v, want %v", g, w)
	}
	e := relational.JoinEdge{FromTable: "movie", FromColumn: "movie_id", ToTable: "movie", ToColumn: "year"}
	gd, gerr := c.EdgeDistance(e)
	wd, werr := src.EdgeDistance(e)
	if (gerr != nil) != (werr != nil) || (gerr == nil && gd != wd) {
		t.Errorf("EdgeDistance %v/%v, want %v/%v", gd, gerr, wd, werr)
	}
}

// TestTCPRoundTrip runs the same protocol over real sockets.
func TestTCPRoundTrip(t *testing.T) {
	db := testDB(t)
	src := wrapper.NewFullAccessSource(db)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go NewServer(src).Serve(l)

	c, err := Dial([]string{l.Addr().String()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stmt := mustParse(t, "SELECT title FROM movie WHERE year BETWEEN 1970 AND 1980 ORDER BY movie_id")
	want, _ := src.Execute(stmt)
	got, err := c.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, got, want)
}

// limitConn drops the connection after a byte budget has been read —
// models a peer dying mid-stream.
type limitConn struct {
	net.Conn
	mu        sync.Mutex
	remaining int
}

func (c *limitConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	rem := c.remaining
	c.mu.Unlock()
	if rem <= 0 {
		c.Conn.Close()
		return 0, errors.New("injected mid-stream drop")
	}
	if len(p) > rem {
		p = p[:rem]
	}
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.remaining -= n
	c.mu.Unlock()
	return n, err
}

// countingSink records rows and Reset calls.
type countingSink struct {
	rows   []relational.Row
	resets int
}

func (s *countingSink) Reset()                      { s.resets++; s.rows = s.rows[:0] }
func (s *countingSink) Push(r relational.Row) error { s.rows = append(s.rows, r); return nil }

// TestRetryAfterMidStreamDrop injects a connection that dies partway
// through the row stream on the first replica; the client must reset the
// sink and replay on the surviving replica, delivering the complete result
// exactly once.
func TestRetryAfterMidStreamDrop(t *testing.T) {
	db := testDB(t)
	src := wrapper.NewFullAccessSource(db)
	srv := NewServer(src)
	srv.BatchRows = 16 // many frames per result so the drop lands mid-stream

	flaky := func() (net.Conn, error) {
		cl, sv := net.Pipe()
		go srv.ServeConn(sv)
		// Enough for the request, the header and a few row batches; dies
		// before the stream completes.
		return &limitConn{Conn: cl, remaining: 700}, nil
	}
	healthy := LoopbackDialer(srv)
	c, err := NewClient([]Dialer{flaky, healthy}, Options{RetryBackoff: time.Millisecond, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	stmt := mustParse(t, "SELECT title, year FROM movie ORDER BY movie_id")
	want, _ := src.Execute(stmt)
	// Operations round-robin their starting replica; run a few so at least
	// one starts on the flaky replica regardless of internal counters.
	sawRetry := false
	for i := 0; i < 2; i++ {
		sink := &countingSink{}
		cols, err := c.ExecuteStream(stmt, sink)
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if len(cols) != 2 || len(sink.rows) != len(want.Rows) {
			t.Fatalf("op %d: got %d rows, want %d", i, len(sink.rows), len(want.Rows))
		}
		if sink.resets > 1 {
			sawRetry = true
			for j := range want.Rows {
				if sink.rows[j][0].Key() != want.Rows[j][0].Key() {
					t.Fatalf("op %d row %d diverges after retry", i, j)
				}
			}
		}
	}
	if !sawRetry {
		t.Fatal("no operation hit the flaky replica mid-stream")
	}
	if st := c.Stats(); st.Retries == 0 {
		t.Errorf("expected retries, stats: %+v", st)
	}
}

// delayBackend injects server-side latency.
type delayBackend struct {
	wrapper.SourceExecutor
	delay time.Duration
}

func (b *delayBackend) Execute(stmt *sql.SelectStmt) (*sql.Result, error) {
	time.Sleep(b.delay)
	return b.SourceExecutor.Execute(stmt)
}

// TestHedgedReadWinsOverSlowReplica races a fast secondary against a slow
// primary: the call must return at hedge speed, count a hedge win, and
// the abandoned attempt must unwind without leaking a goroutine.
func TestHedgedReadWinsOverSlowReplica(t *testing.T) {
	db := testDB(t)
	src := wrapper.NewFullAccessSource(db)
	baseline := runtime.NumGoroutine()
	slow := NewServer(&delayBackend{SourceExecutor: src, delay: 300 * time.Millisecond})
	fast := NewServer(src)
	c, err := NewClient(
		[]Dialer{LoopbackDialer(slow), LoopbackDialer(fast)},
		Options{Hedge: true, HedgeFixedDelay: 5 * time.Millisecond, MaxAttempts: 1},
	)
	if err != nil {
		t.Fatal(err)
	}

	stmt := mustParse(t, "SELECT title FROM movie WHERE movie_id = 42")
	start := time.Now()
	res, err := c.Execute(stmt) // starts on replica 0: the slow one
	if err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 150*time.Millisecond {
		t.Errorf("hedged read took %v, slow-replica latency leaked through", took)
	}
	if len(res.Rows) != 1 {
		t.Errorf("got %d rows, want 1", len(res.Rows))
	}
	st := c.Stats()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Errorf("hedge not exercised: %+v", st)
	}
	// After Close, the losing attempt's goroutine and the pooled loopback
	// connections' server goroutines must all drain back to the pre-client
	// baseline — the abandoned hedge unwinds when its connection closes or
	// its server-side delay ends.
	c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline {
		t.Errorf("%d goroutines leaked by abandoned hedge", g-baseline)
	}
}

// TestMalformedFrameTypedError pins the failure mode for protocol
// corruption: a typed error (errors.Is ErrMalformedFrame), delivered
// promptly — never a hang, never a panic.
func TestMalformedFrameTypedError(t *testing.T) {
	// A "server" that answers every request with a frame whose declared
	// length is absurd.
	garbage := func() (net.Conn, error) {
		cl, sv := net.Pipe()
		go func() {
			defer sv.Close()
			buf := make([]byte, 512)
			if _, err := sv.Read(buf); err != nil {
				return
			}
			sv.Write([]byte{0xff, 0xff, 0xff, 0xff, frameColumns})
		}()
		return cl, nil
	}
	c, err := NewClient([]Dialer{garbage}, Options{
		MaxAttempts: 2, RetryBackoff: time.Millisecond, RequestTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.Execute(mustParse(t, "SELECT title FROM movie"))
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrMalformedFrame) {
			t.Errorf("got %v, want ErrMalformedFrame", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("malformed frame hung the client")
	}

	// Corruption inside the row stream: valid header, then junk frame type.
	db := testDB(t)
	src := wrapper.NewFullAccessSource(db)
	midstream := func() (net.Conn, error) {
		cl, sv := net.Pipe()
		go func() {
			defer sv.Close()
			buf := make([]byte, 4096)
			if _, err := sv.Read(buf); err != nil {
				return
			}
			res, _ := src.Execute(mustParse(t, "SELECT title FROM movie LIMIT 3"))
			writeFrame(sv, frameColumns, sql.AppendColumns(nil, res.Columns))
			writeFrame(sv, 0x7e, []byte("junk"))
		}()
		return cl, nil
	}
	c2, err := NewClient([]Dialer{midstream}, Options{
		MaxAttempts: 2, RetryBackoff: time.Millisecond, RequestTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Execute(mustParse(t, "SELECT title FROM movie")); err == nil {
		t.Error("mid-stream junk frame accepted")
	} else {
		var pe *ProtocolError
		if !errors.As(err, &pe) {
			t.Errorf("mid-stream junk returned %T (%v), want ProtocolError", err, err)
		}
	}
}

// TestWideRowsByteBoundedBatches pins the server's batch cut: rows wide
// enough that a count-only batch would blow past the frame cap must still
// stream — the server flushes early on encoded size, so the result
// arrives no matter how small the negotiated cap is relative to the rows.
func TestWideRowsByteBoundedBatches(t *testing.T) {
	s := relational.NewSchema()
	if err := s.AddTable(&relational.TableSchema{
		Name: "blob",
		Columns: []relational.Column{
			{Name: "id", Type: relational.TypeInt, NotNull: true},
			{Name: "body", Type: relational.TypeString},
		},
		PrimaryKey: "id",
	}); err != nil {
		t.Fatal(err)
	}
	db := relational.MustNewDatabase("blob", s)
	wide := strings.Repeat("x", 1024)
	for i := 1; i <= 300; i++ {
		if err := db.Insert("blob", relational.Row{relational.Int(int64(i)), relational.String_(wide)}); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(wrapper.NewFullAccessSource(db))
	srv.MaxFrame = 8 << 10 // 256 wide rows per count-cut batch would be ~256KB
	c, err := NewClient([]Dialer{LoopbackDialer(srv)}, Options{MaxFrame: 8 << 10, MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Execute(mustParse(t, "SELECT * FROM blob"))
	if err != nil {
		t.Fatalf("wide rows failed under small frame cap: %v", err)
	}
	if len(res.Rows) != 300 {
		t.Errorf("got %d rows, want 300", len(res.Rows))
	}
}

// TestConcurrentClientNoLeak hammers one client from many goroutines and
// checks the process returns to its goroutine baseline after Close — the
// transport's steady state is pooled connections, nothing else.
func TestConcurrentClientNoLeak(t *testing.T) {
	db := testDB(t)
	src := wrapper.NewFullAccessSource(db)
	before := runtime.NumGoroutine()
	c, err := NewLoopbackClient(src, Options{PoolSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	queries := []*sql.SelectStmt{
		mustParse(t, "SELECT title FROM movie WHERE movie_id = 7"),
		mustParse(t, "SELECT title FROM movie WHERE year > 2000 ORDER BY movie_id"),
		mustParse(t, "SELECT COUNT(*) FROM movie"),
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				stmt := queries[(w+i)%len(queries)]
				if _, err := c.Execute(stmt); err != nil {
					t.Errorf("execute: %v", err)
					return
				}
				if _, err := c.ExecuteExists(stmt); err != nil {
					t.Errorf("exists: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("%d goroutines leaked after close", g-before)
	}
	if _, err := c.Execute(queries[0]); !errors.Is(err, ErrClientClosed) {
		t.Errorf("closed client returned %v, want ErrClientClosed", err)
	}
}

// gateBackend parks every Execute until `need` of them are in flight at
// once — operations that reached the server hold their connections, so
// the rest of the client's concurrency can only proceed on fresh dials.
type gateBackend struct {
	wrapper.SourceExecutor
	arrivals atomic.Int32
	need     int32
	release  chan struct{}
	once     sync.Once
}

func (b *gateBackend) Execute(stmt *sql.SelectStmt) (*sql.Result, error) {
	if b.arrivals.Add(1) >= b.need {
		b.once.Do(func() { close(b.release) })
	}
	<-b.release
	return b.SourceExecutor.Execute(stmt)
}

// TestRetryBackoffUnderPoolExhaustion covers the client's behavior when a
// replica's connections cannot be had: dials that fail are retried with
// exponential backoff until the attempt budget runs out, and a pool
// under more concurrency than it can hold keeps every operation moving on
// fresh dials instead of deadlocking on the idle channel.
func TestRetryBackoffUnderPoolExhaustion(t *testing.T) {
	db := testDB(t)
	gate := &gateBackend{
		SourceExecutor: wrapper.NewFullAccessSource(db),
		need:           4,
		release:        make(chan struct{}),
	}
	srv := NewServer(gate)

	// Phase 1: the endpoint refuses the first two dials. The operation must
	// survive on its third attempt, and the backoff sleeps (2ms, then 4ms)
	// put a floor under the elapsed time.
	var failsLeft atomic.Int32
	failsLeft.Store(2)
	gated := func() (net.Conn, error) {
		if failsLeft.Add(-1) >= 0 {
			return nil, errors.New("injected dial failure")
		}
		return LoopbackDialer(srv)()
	}
	c, err := NewClient([]Dialer{gated}, Options{
		MaxAttempts: 4, RetryBackoff: 2 * time.Millisecond, PoolSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping across dial failures: %v", err)
	}
	if took := time.Since(start); took < 6*time.Millisecond {
		t.Errorf("retries took %v, backoff (2ms+4ms) not applied", took)
	}
	st := c.Stats()
	if st.Retries != 2 {
		t.Errorf("Retries = %d, want 2", st.Retries)
	}

	// Phase 2: exhaust the pool. One idle slot, 16 concurrent operations,
	// and a server gate that parks executes until 4 are in flight at once
	// — operations beyond the pooled connection must dial fresh and
	// complete; none may block forever on a slot.
	stmt := mustParse(t, "SELECT title FROM movie WHERE movie_id = 7")
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Execute(stmt); err != nil {
				errs <- err
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("operations deadlocked under pool exhaustion")
	}
	close(errs)
	for err := range errs {
		t.Errorf("concurrent execute: %v", err)
	}
	if got := c.Stats().Dials; got < 4 {
		t.Errorf("Dials = %d; exhausted pool should have forced fresh dials", got)
	}
	c.Close()
}

// TestHedgedReadRacesReplicaDyingMidFrame points the primary attempt at a
// replica that is both slow and doomed to die partway through its row
// stream. The hedge must win on the healthy replica with a complete
// result, and the dying loser's attempt must unwind without leaking a
// goroutine.
func TestHedgedReadRacesReplicaDyingMidFrame(t *testing.T) {
	db := testDB(t)
	src := wrapper.NewFullAccessSource(db)
	baseline := runtime.NumGoroutine()

	dying := NewServer(&delayBackend{SourceExecutor: src, delay: 50 * time.Millisecond})
	dying.BatchRows = 16 // many frames, so the byte budget cuts mid-stream
	doomed := func() (net.Conn, error) {
		cl, sv := net.Pipe()
		go dying.ServeConn(sv)
		return &limitConn{Conn: cl, remaining: 700}, nil
	}
	healthy := NewServer(src)
	c, err := NewClient([]Dialer{doomed, LoopbackDialer(healthy)}, Options{
		Hedge: true, HedgeFixedDelay: 5 * time.Millisecond,
		MaxAttempts: 2, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	stmt := mustParse(t, "SELECT title, year FROM movie ORDER BY movie_id")
	want, _ := src.Execute(stmt)
	res, err := c.Execute(stmt) // starts on replica 0: slow, dies mid-frame
	if err != nil {
		t.Fatalf("hedged execute: %v", err)
	}
	sameResult(t, res, want)
	st := c.Stats()
	if st.Hedges == 0 {
		t.Errorf("hedge never launched: %+v", st)
	}
	if st.HedgeWins == 0 {
		t.Errorf("healthy replica should have won the race: %+v", st)
	}
	c.Close()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline {
		t.Errorf("%d goroutines leaked by the dying loser", g-baseline)
	}
}
