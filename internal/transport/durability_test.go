package transport

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/relational"
	"repro/internal/wal"
	"repro/internal/wrapper"
)

// walFleet is a testFleet whose replicas are WAL-backed: every server
// has a log over its own directory, so a "restart" rebuilds the replica
// from disk alone.
type walFleet struct {
	*testFleet
	dirs   []string
	logs   []*wal.Log
	schema *relational.Schema
}

func newWALFleet(t *testing.T, r int, opt Options, wopt wal.Options) *walFleet {
	t.Helper()
	base := testDB(t)
	wf := &walFleet{testFleet: &testFleet{net: newReplNet()}, schema: base.Schema}
	specs := make([]ReplicaSpec, r)
	for i := 0; i < r; i++ {
		name := fmt.Sprintf("r%d", i)
		dir := t.TempDir()
		l, rec, err := wal.Open(dir, copyDB(t, base, name), wopt)
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(wrapper.NewFullAccessSource(rec.DB))
		srv.AttachWAL(l)
		wf.net.add(name, srv)
		wf.dbs = append(wf.dbs, rec.DB)
		wf.srvs = append(wf.srvs, srv)
		wf.dirs = append(wf.dirs, dir)
		wf.logs = append(wf.logs, l)
		specs[i] = ReplicaSpec{Name: name, Dial: wf.net.dialer(name)}
	}
	cl, err := NewReplicatedClient(specs, opt)
	if err != nil {
		t.Fatal(err)
	}
	wf.cl = cl
	t.Cleanup(func() {
		cl.Close()
		wf.net.killAll()
		for _, l := range wf.logs {
			l.Close()
		}
	})
	return wf
}

// restartFromWAL rebuilds replica i purely from its directory: the old
// log is closed (the "crash"), and the new server gets a schema-only
// base — everything else must come off disk. No RecoverReplicaState:
// AttachWAL derives the sequence from recovery.
func (wf *walFleet) restartFromWAL(t *testing.T, i int, wopt wal.Options) *wal.Recovery {
	t.Helper()
	wf.logs[i].Close()
	empty, err := relational.NewDatabase(wf.dbs[i].Name, wf.schema)
	if err != nil {
		t.Fatal(err)
	}
	l, rec, err := wal.Open(wf.dirs[i], empty, wopt)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(wrapper.NewFullAccessSource(rec.DB))
	srv.AttachWAL(l)
	wf.dbs[i] = rec.DB
	wf.srvs[i] = srv
	wf.logs[i] = l
	wf.net.restart(fmt.Sprintf("r%d", i), srv)
	return rec
}

// TestWALRestartRecoversAndRejoins is TestRestartRecoversAndRejoins
// with real retained storage: the replica recovers from its WAL
// directory, resumes at the recovered sequence automatically, and
// rejoin replays exactly the missed ops — zero duplicate applies (a
// duplicate would hit the movie PK and knock the replica out of
// rotation).
func TestWALRestartRecoversAndRejoins(t *testing.T) {
	wopt := wal.Options{NoFsync: true}
	wf := newWALFleet(t, 2, Options{RetryBackoff: 1}, wopt)
	for i := 0; i < 4; i++ {
		if err := wf.cl.Insert("movie", movieRow(int64(1000+i))); err != nil {
			t.Fatal(err)
		}
	}
	wf.net.kill("r1")
	for i := 4; i < 8; i++ {
		if err := wf.cl.Insert("movie", movieRow(int64(1000+i))); err != nil {
			t.Fatal(err)
		}
	}

	rec := wf.restartFromWAL(t, 1, wopt)
	if !rec.FromSnapshot {
		t.Fatal("restart did not load the snapshot")
	}
	if rec.LastSeq != 4 || rec.ReplayedOps != 4 {
		t.Fatalf("recovery = %+v, want LastSeq 4 ReplayedOps 4", rec)
	}
	if got := movieCount(wf.dbs[1]); got != 504 {
		t.Fatalf("recovered rows = %d, want 504", got)
	}
	// AttachWAL seeded the sequence: the server reports it before any
	// fleet contact.
	if _, _, lastSeq := wf.srvs[1].ReplicationStatus(); lastSeq != 4 {
		t.Fatalf("recovered server lastSeq = %d, want 4", lastSeq)
	}

	wf.cl.ProbeNow()
	st := wf.cl.FleetStatus()
	if !st.Replicas[1].InRotation || st.Replicas[1].LastSeq != 8 {
		t.Fatalf("restarted replica: %+v", st.Replicas[1])
	}
	wf.srvs[1].Quiesce()
	if a, b := movieCount(wf.dbs[0]), movieCount(wf.dbs[1]); a != b || a != 508 {
		t.Fatalf("restart replay wrong: %d vs %d rows, want 508", a, b)
	}
	// The replayed ops were logged too: another restart recovers them
	// without the fleet's help.
	rec2 := wf.restartFromWAL(t, 1, wopt)
	if rec2.LastSeq != 8 {
		t.Fatalf("second recovery LastSeq = %d, want 8", rec2.LastSeq)
	}
	if got := movieCount(wf.dbs[1]); got != 508 {
		t.Fatalf("second recovery rows = %d, want 508", got)
	}
}

// TestWALDivergedBackupStaysFenced is the regression for automatic
// recovery seeding: a restarted backup whose WAL holds ops the primary
// never saw (a deposed primary that kept acking) must stay fenced out —
// recovery faithfully restoring the diverged history is exactly why the
// fence, not replay, has to win.
func TestWALDivergedBackupStaysFenced(t *testing.T) {
	wopt := wal.Options{NoFsync: true}
	wf := newWALFleet(t, 2, Options{RetryBackoff: 1}, wopt)
	for i := 0; i < 3; i++ {
		if err := wf.cl.Insert("movie", movieRow(int64(1000+i))); err != nil {
			t.Fatal(err)
		}
	}
	wf.net.kill("r1")

	// Behind the fleet's back, r1's WAL grows past the primary's
	// history: ops 4 and 5 that r0 never saw.
	wf.logs[1].Close()
	empty := relational.MustNewDatabase("r1", wf.schema)
	l, rec, err := wal.Open(wf.dirs[1], empty, wopt)
	if err != nil {
		t.Fatal(err)
	}
	if rec.LastSeq != 3 {
		t.Fatalf("recovered seq = %d, want 3", rec.LastSeq)
	}
	for seq := uint64(4); seq <= 5; seq++ {
		row := movieRow(int64(8000 + seq))
		if err := rec.DB.Insert("movie", row); err != nil {
			t.Fatal(err)
		}
		if err := l.Append(seq, "movie", row).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Restart from the diverged directory. Recovery resumes at seq 5;
	// the primary is at 3.
	rec2 := wf.restartFromWAL(t, 1, wopt)
	if rec2.LastSeq != 5 {
		t.Fatalf("diverged recovery seq = %d, want 5", rec2.LastSeq)
	}
	// First probe notices the restarted replica is out of sync and
	// demotes it; the second attempts the rejoin that must fence it.
	wf.cl.ProbeNow()
	wf.cl.ProbeNow()
	st := wf.cl.FleetStatus()
	if !st.Replicas[1].Diverged || st.Replicas[1].InRotation {
		t.Fatalf("diverged replica not fenced: %+v", st.Replicas[1])
	}
	// The fence is permanent: more writes and probes never readmit it.
	if err := wf.cl.Insert("movie", movieRow(1100)); err != nil {
		t.Fatal(err)
	}
	wf.cl.ProbeNow()
	if st := wf.cl.FleetStatus(); st.Replicas[1].InRotation {
		t.Fatal("diverged replica re-entered rotation")
	}
	wf.srvs[1].Quiesce()
	if got := movieCount(wf.dbs[1]); got != 505 {
		t.Fatalf("fenced replica mutated: %d rows, want 505", got)
	}
}

// TestWALServerCheckpointPolicy drives enough writes through a
// WAL-backed fleet to trip SnapshotEvery on the server's apply path and
// checks the log truncation actually happened.
func TestWALServerCheckpointPolicy(t *testing.T) {
	wopt := wal.Options{NoFsync: true, SnapshotEvery: 5}
	wf := newWALFleet(t, 2, Options{RetryBackoff: 1}, wopt)
	for i := 0; i < 12; i++ {
		if err := wf.cl.Insert("movie", movieRow(int64(1000+i))); err != nil {
			t.Fatal(err)
		}
	}
	for i, srv := range wf.srvs {
		st, ok := srv.WALStats()
		if !ok {
			t.Fatalf("replica %d reports no WAL", i)
		}
		// Open-time base snapshot + at least two policy checkpoints.
		if st.Snapshots < 3 || st.SnapshotFailures != 0 {
			t.Fatalf("replica %d snapshots = %+v", i, st)
		}
		if st.Appends != 12 {
			t.Fatalf("replica %d appends = %d, want 12", i, st.Appends)
		}
	}
	// Recovery after checkpoints: snapshot carries most of the history,
	// the log only the tail.
	rec := wf.restartFromWAL(t, 1, wopt)
	if rec.LastSeq != 12 || rec.ReplayedOps > 5 {
		t.Fatalf("recovery = %+v, want LastSeq 12 with a short log tail", rec)
	}
	if got := movieCount(wf.dbs[1]); got != 512 {
		t.Fatalf("recovered rows = %d, want 512", got)
	}
	// The memory-only server answers ok=false.
	plain := NewServer(wrapper.NewFullAccessSource(testDB(t)))
	if _, ok := plain.WALStats(); ok {
		t.Fatal("memory-only server claims WAL stats")
	}
}

// TestWALAckAfterDurable pins the ordering contract: by the time Insert
// returns, the op is on disk — a reopen of the directory (no fleet, no
// replay) already holds it.
func TestWALAckAfterDurable(t *testing.T) {
	wopt := wal.Options{NoFsync: true}
	wf := newWALFleet(t, 1, Options{RetryBackoff: 1}, wopt)
	if err := wf.cl.Insert("movie", movieRow(4242)); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash immediately after the ack: no Close flush —
	// read the directory as it sits. The record must already be there.
	raw, err := os.ReadFile(filepath.Join(wf.dirs[0], "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("acked insert not in the log")
	}
	// Recover from a byte-for-byte copy of the live directory (the live
	// log stays open — a real crash would just abandon it).
	cp := t.TempDir()
	for _, name := range []string{"wal.log", "snapshot"} {
		b, err := os.ReadFile(filepath.Join(wf.dirs[0], name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(cp, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	l3, rec3, err := wal.Open(cp, relational.MustNewDatabase("r0", wf.schema), wopt)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if rec3.LastSeq != 1 {
		t.Fatalf("copied-dir recovery seq = %d, want 1", rec3.LastSeq)
	}
	if got := movieCount(rec3.DB); got != 501 {
		t.Fatalf("copied-dir rows = %d, want 501", got)
	}
}
