package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"repro/internal/relational"
	"repro/internal/sql"
	"repro/internal/wal"
)

// Replica roles, as carried by frameConfigure and frameStatusRes. A server
// starts unconfigured (RoleNone) and accepts direct writes like a
// standalone single node; the first frameConfigure from a coordinator
// moves it into the primary/backup regime and arms the epoch fence.
const (
	RoleNone    byte = 0 // never configured: standalone, accepts direct writes
	RolePrimary byte = 1 // applies writes locally, fans them out to backups
	RoleBackup  byte = 2 // applies replicated ops in sequence, rejects direct writes
)

// DefaultMaxOpLog bounds the in-memory op log a server retains for
// replay-on-rejoin. A replica that fell further behind than the retained
// window cannot catch up from the log and is answered errKindLagging
// ("op log trimmed") — the coordinator keeps it out of the read rotation.
// The internal/wal subsystem retains every op durably on disk, but
// replay-on-rejoin is still served from this in-memory window.
const DefaultMaxOpLog = 1 << 16

// DefaultReplTimeout bounds one synchronous replicate round trip from a
// primary to a backup. A backup that cannot ack within it is marked down
// for the epoch and reported !ok in the insert ack, so the coordinator
// learns immediately which replicas hold the row.
const DefaultReplTimeout = 2 * time.Second

// opEntry is one replicated insert in the primary's in-memory op log.
type opEntry struct {
	seq   uint64
	table string
	row   relational.Row
}

// backupLink is a primary's persistent replication connection to one
// backup. Links dial lazily through the server's resolver and die for the
// epoch on the first failed round trip — the coordinator's rejoin flow
// (re-configure + replay) is what brings a backup back, so the primary
// never retries into a replica whose state it cannot know.
type backupLink struct {
	name string
	conn net.Conn
	br   *bufio.Reader
	down bool
}

// replState is a server's replication-role state. One mutex serializes
// every write-path mutation — direct inserts, replicated applies,
// reconfiguration — which is also what makes the underlying database's
// population-phase Insert safe here: a server never applies two writes
// concurrently. The op log and lastSeq survive role changes, so a backup
// promoted to primary serves replay from everything it has applied.
type replState struct {
	epoch   uint64
	role    byte
	lastSeq uint64
	log     []opEntry
	backups []*backupLink
}

// ReplicationStatus reports the server's current epoch, role and last
// applied op sequence (diagnostics, tests, queststats).
func (s *Server) ReplicationStatus() (epoch uint64, role byte, lastSeq uint64) {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	return s.repl.epoch, s.repl.role, s.repl.lastSeq
}

// RecoverReplicaState seeds a fresh server's applied-op sequence, the way
// a restart recovers it after reloading retained storage: a replica that
// comes back holding its data but a zero sequence would be replayed the
// whole op log on top of rows it already has. A WAL-backed server never
// calls this — AttachWAL derives the sequence from recovery itself; it
// remains for callers with their own persistence (and for tests that
// model retained storage without a WAL directory).
func (s *Server) RecoverReplicaState(lastSeq uint64) {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	s.repl.lastSeq = lastSeq
}

// handleRepl dispatches one protocol-v3 replication frame. The caller
// (Server.handle) has already gated on the negotiated version.
func (s *Server) handleRepl(conn net.Conn, typ byte, payload []byte) error {
	switch typ {
	case frameInsert:
		return s.handleInsert(conn, payload)
	case frameReplicate:
		return s.handleReplicate(conn, payload)
	case frameConfigure:
		return s.handleConfigure(conn, payload)
	case frameStatus:
		return s.handleStatus(conn)
	case frameOps:
		return s.handleOps(conn, payload)
	}
	return writeError(conn, &ProtocolError{Detail: "unknown replication frame"})
}

// handleInsert is the primary write path: apply locally, assign the next
// op sequence, append to the op log (and submit to the WAL when one is
// attached), synchronously replicate to every live backup, and ack with
// the epoch plus the per-backup outcome. Writes carrying a stale epoch —
// or arriving at a backup — are fenced, never applied: promotion bumps
// the epoch, so a coordinator that missed a failover cannot make the old
// primary diverge.
//
// The durability wait happens after replMu is released: the WAL append
// is submitted in sequence order under the lock, but the fsync it joins
// is awaited outside it, so concurrent writers share one group commit
// instead of serializing fsyncs behind the mutex. The ack still follows
// durability — a crash between apply and flush loses only unacked ops,
// which recovery's torn-tail truncation drops as a unit.
func (s *Server) handleInsert(conn net.Conn, payload []byte) error {
	epoch, table, row, err := decodeInsertReq(payload)
	if err != nil {
		return writeError(conn, err)
	}
	if s.ins == nil {
		return writeErrorKind(conn, errKindReadOnly, "backend accepts no writes")
	}
	s.replMu.Lock()
	if s.repl.role == RoleBackup {
		epoch := s.repl.epoch
		s.replMu.Unlock()
		return writeErrorKind(conn, errKindFenced,
			fmt.Sprintf("not primary (epoch %d)", epoch))
	}
	if epoch != s.repl.epoch {
		cur := s.repl.epoch
		s.replMu.Unlock()
		return writeErrorKind(conn, errKindFenced,
			fmt.Sprintf("stale epoch %d, current %d", epoch, cur))
	}
	if err := s.ins.Insert(table, row); err != nil {
		s.replMu.Unlock()
		return writeError(conn, err)
	}
	s.repl.lastSeq++
	seq := s.repl.lastSeq
	s.appendOpLocked(seq, table, row)
	commit := s.walAppendLocked(seq, table, row)
	acks := make([]backupAck, len(s.repl.backups))
	for i, b := range s.repl.backups {
		acks[i] = backupAck{name: b.name, ok: s.replicateTo(b, epoch, seq, table, row)}
	}
	ackEpoch := s.repl.epoch
	s.replMu.Unlock()
	if commit != nil {
		if err := commit.Wait(); err != nil {
			return writeError(conn, err)
		}
	}
	return writeFrame(conn, frameInsertAck, encodeInsertAck(ackEpoch, seq, acks))
}

// walAppendLocked submits one applied op to the WAL (nil without one)
// and runs the snapshot policy. Caller holds replMu — the order appends
// enter the flusher is the order sequences were assigned. A checkpoint
// failure is counted but does not fail the write: the snapshot is an
// optimization, the log already holds the op.
func (s *Server) walAppendLocked(seq uint64, table string, row relational.Row) *wal.Commit {
	if s.wal == nil {
		return nil
	}
	commit := s.wal.Append(seq, table, row)
	if s.wal.ShouldCheckpoint() {
		s.wal.Checkpoint() // failures land in Stats().SnapshotFailures
	}
	return commit
}

// handleReplicate is the backup apply path. Ops apply strictly in
// sequence: a duplicate (seq already applied) acks idempotently so the
// coordinator's replay can overlap a primary's own fan-out without double
// inserts, and a gap is refused as lagging — the replica needs replay,
// not this op. An op from a newer epoch adopts that epoch (the configure
// may still be in flight); one from an older epoch is fenced. With a WAL
// attached the apply is logged before the ack, durability awaited
// outside replMu exactly like the primary path.
func (s *Server) handleReplicate(conn net.Conn, payload []byte) error {
	epoch, seq, table, row, err := decodeReplicateReq(payload)
	if err != nil {
		return writeError(conn, err)
	}
	if s.ins == nil {
		return writeErrorKind(conn, errKindReadOnly, "backend accepts no writes")
	}
	s.replMu.Lock()
	if epoch < s.repl.epoch {
		cur := s.repl.epoch
		s.replMu.Unlock()
		return writeErrorKind(conn, errKindFenced,
			fmt.Sprintf("stale epoch %d, current %d", epoch, cur))
	}
	if epoch > s.repl.epoch {
		s.repl.epoch = epoch
		s.repl.role = RoleBackup
		s.closeBackupsLocked()
	}
	if seq <= s.repl.lastSeq {
		// Already applied (and, with a WAL, already durable): ack
		// idempotently without re-inserting — this is what makes
		// replay-on-rejoin duplicate-free when it overlaps a recovered
		// replica's own history.
		ackEpoch, ackSeq := s.repl.epoch, s.repl.lastSeq
		s.replMu.Unlock()
		return writeFrame(conn, frameInsertAck, encodeInsertAck(ackEpoch, ackSeq, nil))
	}
	if seq != s.repl.lastSeq+1 {
		cur := s.repl.lastSeq
		s.replMu.Unlock()
		return writeErrorKind(conn, errKindLagging,
			fmt.Sprintf("replica at seq %d, got %d", cur, seq))
	}
	if err := s.ins.Insert(table, row); err != nil {
		s.replMu.Unlock()
		return writeError(conn, err)
	}
	s.repl.lastSeq = seq
	s.appendOpLocked(seq, table, row)
	commit := s.walAppendLocked(seq, table, row)
	ackEpoch := s.repl.epoch
	s.replMu.Unlock()
	if commit != nil {
		if err := commit.Wait(); err != nil {
			return writeError(conn, err)
		}
	}
	return writeFrame(conn, frameInsertAck, encodeInsertAck(ackEpoch, seq, nil))
}

// handleConfigure installs a role at an epoch. Only equal-or-newer epochs
// are accepted (a stale coordinator cannot reconfigure a fleet that moved
// on); an equal epoch may still change membership — that is how a
// rejoined replica re-enters the primary's backup list without a
// promotion. The response is the server's status, so the coordinator
// learns lastSeq in the same round trip.
func (s *Server) handleConfigure(conn net.Conn, payload []byte) error {
	epoch, role, backups, err := decodeConfigureReq(payload)
	if err != nil {
		return writeError(conn, err)
	}
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if epoch < s.repl.epoch {
		return writeErrorKind(conn, errKindFenced,
			fmt.Sprintf("stale epoch %d, current %d", epoch, s.repl.epoch))
	}
	s.repl.epoch = epoch
	s.repl.role = role
	s.closeBackupsLocked()
	if role == RolePrimary {
		for _, name := range backups {
			s.repl.backups = append(s.repl.backups, &backupLink{name: name})
		}
	}
	return writeFrame(conn, frameStatusRes, encodeStatusRes(s.repl.epoch, s.repl.role, s.repl.lastSeq))
}

// handleStatus answers the coordinator's health probe: epoch, role, and
// the last applied op sequence — everything the prober needs to spot a
// lagging or diverged replica in one tiny frame.
func (s *Server) handleStatus(conn net.Conn) error {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	return writeFrame(conn, frameStatusRes, encodeStatusRes(s.repl.epoch, s.repl.role, s.repl.lastSeq))
}

// handleOps serves a slice of the op log for replay-on-rejoin: every
// retained op with seq > afterSeq, up to max per request (the coordinator
// loops). A range already trimmed from the log answers errKindLagging —
// the replica cannot be caught up from memory.
func (s *Server) handleOps(conn net.Conn, payload []byte) error {
	afterSeq, max, err := decodeOpsReq(payload)
	if err != nil {
		return writeError(conn, err)
	}
	if max == 0 || max > 1024 {
		max = 1024
	}
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if afterSeq < s.repl.lastSeq {
		trimmedTo := s.repl.lastSeq
		if len(s.repl.log) > 0 {
			trimmedTo = s.repl.log[0].seq - 1
		}
		if afterSeq < trimmedTo {
			return writeErrorKind(conn, errKindLagging,
				fmt.Sprintf("op log trimmed to seq %d, want after %d", trimmedTo, afterSeq))
		}
	}
	var ops []opEntry
	for _, op := range s.repl.log {
		if op.seq <= afterSeq {
			continue
		}
		ops = append(ops, op)
		if uint64(len(ops)) >= max {
			break
		}
	}
	return writeFrame(conn, frameOpsRes, encodeOpsRes(ops))
}

// appendOpLocked records one applied op, trimming the log's head past the
// retention bound.
func (s *Server) appendOpLocked(seq uint64, table string, row relational.Row) {
	s.repl.log = append(s.repl.log, opEntry{seq: seq, table: table, row: row})
	bound := s.MaxOpLog
	if bound <= 0 {
		bound = DefaultMaxOpLog
	}
	if len(s.repl.log) > bound {
		s.repl.log = append([]opEntry(nil), s.repl.log[len(s.repl.log)-bound:]...)
	}
}

func (s *Server) closeBackupsLocked() {
	for _, b := range s.repl.backups {
		if b.conn != nil {
			b.conn.Close()
		}
	}
	s.repl.backups = nil
}

// replicateTo pushes one op to a backup synchronously, dialing the link
// lazily and retrying once on a fresh connection (a pooled link may have
// died idle). Any harder failure marks the link down for the epoch: the
// primary stops trying, the insert ack reports !ok, and the coordinator's
// replay-on-rejoin is the only road back.
func (s *Server) replicateTo(b *backupLink, epoch, seq uint64, table string, row relational.Row) bool {
	if b.down {
		return false
	}
	payload := encodeReplicateReq(epoch, seq, table, row)
	for attempt := 0; attempt < 2; attempt++ {
		if b.conn == nil && !s.dialBackup(b) {
			break
		}
		if s.sendReplicate(b, payload) {
			return true
		}
		b.conn.Close()
		b.conn, b.br = nil, nil
	}
	b.down = true
	return false
}

// dialBackup resolves and dials one backup link, then negotiates v3 — a
// backup that cannot speak the replication frames is as unusable as an
// unreachable one.
func (s *Server) dialBackup(b *backupLink) bool {
	resolve := s.Resolver
	if resolve == nil {
		timeout := s.ReplTimeout
		if timeout <= 0 {
			timeout = DefaultReplTimeout
		}
		resolve = func(name string) (net.Conn, error) {
			return net.DialTimeout("tcp", name, timeout)
		}
	}
	conn, err := resolve(b.name)
	if err != nil {
		return false
	}
	br := bufio.NewReader(conn)
	conn.SetDeadline(time.Now().Add(s.replTimeout()))
	if err := writeFrame(conn, frameHello, []byte{byte(ProtocolV3)}); err != nil {
		conn.Close()
		return false
	}
	typ, payload, err := readFrame(br, s.maxFrame())
	if err != nil || typ != frameHelloAck || len(payload) != 1 || int(payload[0]) < ProtocolV3 {
		conn.Close()
		return false
	}
	conn.SetDeadline(time.Time{})
	b.conn, b.br = conn, br
	return true
}

// sendReplicate runs one replicate round trip on an established link.
// Only a positive ack counts: an in-band error (fenced by a newer epoch,
// lagging) means this primary must not keep pushing blind.
func (s *Server) sendReplicate(b *backupLink, payload []byte) bool {
	b.conn.SetDeadline(time.Now().Add(s.replTimeout()))
	defer b.conn.SetDeadline(time.Time{})
	if err := writeFrame(b.conn, frameReplicate, payload); err != nil {
		return false
	}
	typ, _, err := readFrame(b.br, s.maxFrame())
	return err == nil && typ == frameInsertAck
}

func (s *Server) replTimeout() time.Duration {
	if s.ReplTimeout > 0 {
		return s.ReplTimeout
	}
	return DefaultReplTimeout
}

func (s *Server) maxFrame() int {
	if s.MaxFrame > 0 {
		return s.MaxFrame
	}
	return DefaultMaxFrame
}

// ---- replication frame payload codecs ----

// backupAck is one backup's outcome inside an insert ack.
type backupAck struct {
	name string
	ok   bool
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func decodeString(buf []byte) (string, int, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || uint64(len(buf)-sz) < n {
		return "", 0, &ProtocolError{Detail: "bad string field"}
	}
	return string(buf[sz : sz+int(n)]), sz + int(n), nil
}

func encodeInsertReq(epoch uint64, table string, row relational.Row) []byte {
	buf := binary.AppendUvarint(nil, epoch)
	buf = appendString(buf, table)
	return sql.AppendRow(buf, row)
}

func decodeInsertReq(payload []byte) (epoch uint64, table string, row relational.Row, err error) {
	epoch, sz := binary.Uvarint(payload)
	if sz <= 0 {
		return 0, "", nil, &ProtocolError{Detail: "bad insert request"}
	}
	payload = payload[sz:]
	table, sz, err = decodeString(payload)
	if err != nil {
		return 0, "", nil, err
	}
	row, _, err = sql.DecodeRow(payload[sz:])
	if err != nil {
		return 0, "", nil, &ProtocolError{Detail: err.Error()}
	}
	return epoch, table, row, nil
}

func encodeReplicateReq(epoch, seq uint64, table string, row relational.Row) []byte {
	buf := binary.AppendUvarint(nil, epoch)
	buf = binary.AppendUvarint(buf, seq)
	buf = appendString(buf, table)
	return sql.AppendRow(buf, row)
}

func decodeReplicateReq(payload []byte) (epoch, seq uint64, table string, row relational.Row, err error) {
	epoch, sz := binary.Uvarint(payload)
	if sz <= 0 {
		return 0, 0, "", nil, &ProtocolError{Detail: "bad replicate request"}
	}
	payload = payload[sz:]
	seq, sz = binary.Uvarint(payload)
	if sz <= 0 {
		return 0, 0, "", nil, &ProtocolError{Detail: "bad replicate request"}
	}
	payload = payload[sz:]
	table, sz, err = decodeString(payload)
	if err != nil {
		return 0, 0, "", nil, err
	}
	row, _, err = sql.DecodeRow(payload[sz:])
	if err != nil {
		return 0, 0, "", nil, &ProtocolError{Detail: err.Error()}
	}
	return epoch, seq, table, row, nil
}

func encodeConfigureReq(epoch uint64, role byte, backups []string) []byte {
	buf := binary.AppendUvarint(nil, epoch)
	buf = append(buf, role)
	buf = binary.AppendUvarint(buf, uint64(len(backups)))
	for _, name := range backups {
		buf = appendString(buf, name)
	}
	return buf
}

func decodeConfigureReq(payload []byte) (epoch uint64, role byte, backups []string, err error) {
	epoch, sz := binary.Uvarint(payload)
	if sz <= 0 || len(payload) < sz+1 {
		return 0, 0, nil, &ProtocolError{Detail: "bad configure request"}
	}
	role = payload[sz]
	if role != RolePrimary && role != RoleBackup {
		return 0, 0, nil, &ProtocolError{Detail: "bad configure role"}
	}
	payload = payload[sz+1:]
	n, sz := binary.Uvarint(payload)
	if sz <= 0 || n > uint64(len(payload)) {
		return 0, 0, nil, &ProtocolError{Detail: "bad configure request"}
	}
	payload = payload[sz:]
	for i := uint64(0); i < n; i++ {
		name, nsz, err := decodeString(payload)
		if err != nil {
			return 0, 0, nil, err
		}
		backups = append(backups, name)
		payload = payload[nsz:]
	}
	return epoch, role, backups, nil
}

func encodeInsertAck(epoch, seq uint64, acks []backupAck) []byte {
	buf := binary.AppendUvarint(nil, epoch)
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(len(acks)))
	for _, a := range acks {
		buf = appendString(buf, a.name)
		ok := byte(0)
		if a.ok {
			ok = 1
		}
		buf = append(buf, ok)
	}
	return buf
}

func decodeInsertAck(payload []byte) (epoch, seq uint64, acks []backupAck, err error) {
	epoch, sz := binary.Uvarint(payload)
	if sz <= 0 {
		return 0, 0, nil, &ProtocolError{Detail: "bad insert ack"}
	}
	payload = payload[sz:]
	seq, sz = binary.Uvarint(payload)
	if sz <= 0 {
		return 0, 0, nil, &ProtocolError{Detail: "bad insert ack"}
	}
	payload = payload[sz:]
	n, sz := binary.Uvarint(payload)
	if sz <= 0 || n > uint64(len(payload)) {
		return 0, 0, nil, &ProtocolError{Detail: "bad insert ack"}
	}
	payload = payload[sz:]
	for i := uint64(0); i < n; i++ {
		name, nsz, err := decodeString(payload)
		if err != nil {
			return 0, 0, nil, err
		}
		payload = payload[nsz:]
		if len(payload) < 1 {
			return 0, 0, nil, &ProtocolError{Detail: "bad insert ack"}
		}
		acks = append(acks, backupAck{name: name, ok: payload[0] == 1})
		payload = payload[1:]
	}
	return epoch, seq, acks, nil
}

func encodeStatusRes(epoch uint64, role byte, lastSeq uint64) []byte {
	buf := binary.AppendUvarint(nil, epoch)
	buf = append(buf, role)
	return binary.AppendUvarint(buf, lastSeq)
}

type replicaWireStatus struct {
	epoch   uint64
	role    byte
	lastSeq uint64
}

func decodeStatusRes(payload []byte) (replicaWireStatus, error) {
	var st replicaWireStatus
	epoch, sz := binary.Uvarint(payload)
	if sz <= 0 || len(payload) < sz+1 {
		return st, &ProtocolError{Detail: "bad status response"}
	}
	st.epoch = epoch
	st.role = payload[sz]
	lastSeq, sz2 := binary.Uvarint(payload[sz+1:])
	if sz2 <= 0 {
		return st, &ProtocolError{Detail: "bad status response"}
	}
	st.lastSeq = lastSeq
	return st, nil
}

func encodeOpsReq(afterSeq, max uint64) []byte {
	buf := binary.AppendUvarint(nil, afterSeq)
	return binary.AppendUvarint(buf, max)
}

func decodeOpsReq(payload []byte) (afterSeq, max uint64, err error) {
	afterSeq, sz := binary.Uvarint(payload)
	if sz <= 0 {
		return 0, 0, &ProtocolError{Detail: "bad ops request"}
	}
	max, sz = binary.Uvarint(payload[sz:])
	if sz <= 0 {
		return 0, 0, &ProtocolError{Detail: "bad ops request"}
	}
	return afterSeq, max, nil
}

func encodeOpsRes(ops []opEntry) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(ops)))
	for _, op := range ops {
		buf = binary.AppendUvarint(buf, op.seq)
		buf = appendString(buf, op.table)
		buf = sql.AppendRow(buf, op.row)
	}
	return buf
}

func decodeOpsRes(payload []byte) ([]opEntry, error) {
	n, sz := binary.Uvarint(payload)
	if sz <= 0 || n > uint64(len(payload)) {
		return nil, &ProtocolError{Detail: "bad ops response"}
	}
	payload = payload[sz:]
	var ops []opEntry
	for i := uint64(0); i < n; i++ {
		seq, sz := binary.Uvarint(payload)
		if sz <= 0 {
			return nil, &ProtocolError{Detail: "bad ops response"}
		}
		payload = payload[sz:]
		table, tsz, err := decodeString(payload)
		if err != nil {
			return nil, err
		}
		payload = payload[tsz:]
		row, rsz, err := sql.DecodeRow(payload)
		if err != nil {
			return nil, &ProtocolError{Detail: err.Error()}
		}
		payload = payload[rsz:]
		ops = append(ops, opEntry{seq: seq, table: table, row: row})
	}
	return ops, nil
}
