package transport

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sql"
	"repro/internal/wrapper"
)

// tunableDelayBackend injects adjustable server-side latency.
type tunableDelayBackend struct {
	wrapper.SourceExecutor
	delayNs atomic.Int64
}

func (b *tunableDelayBackend) Execute(stmt *sql.SelectStmt) (*sql.Result, error) {
	time.Sleep(time.Duration(b.delayNs.Load()))
	return b.SourceExecutor.Execute(stmt)
}

// TestColdDistributionNeverHedges pins the hedge-arming contract: until
// the latency distribution holds HedgeMinSamples observations, adaptive
// hedging must not launch secondary attempts — hedgeDelay reports "not
// armed" and the caller takes the single-attempt path. The regression
// this guards: the unarmed state was once a -1 sentinel duration, and a
// caller handing that to a timer would fire it immediately, hedging
// every cold request at double load. Half the cold requests here land on
// a replica slow enough that any armed timer would have fired.
func TestColdDistributionNeverHedges(t *testing.T) {
	db := testDB(t)
	src := wrapper.NewFullAccessSource(db)
	baseline := runtime.NumGoroutine()
	slowBackend := &tunableDelayBackend{SourceExecutor: src}
	slowBackend.delayNs.Store(int64(10 * time.Millisecond))
	slow := NewServer(slowBackend)
	fast := NewServer(src)
	const minSamples = 8
	c, err := NewClient(
		[]Dialer{LoopbackDialer(slow), LoopbackDialer(fast)},
		Options{Hedge: true, HedgeMinSamples: minSamples},
	)
	if err != nil {
		t.Fatal(err)
	}

	stmt := mustParse(t, "SELECT title FROM movie WHERE movie_id = 42")
	run := func(i int) {
		t.Helper()
		res, err := c.Execute(stmt)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("request %d: %d rows, want 1", i, len(res.Rows))
		}
	}
	for i := 0; i < minSamples-1; i++ {
		run(i)
	}
	if st := c.Stats(); st.Hedges != 0 {
		t.Fatalf("cold distribution launched %d hedges before %d samples accumulated", st.Hedges, minSamples)
	}

	// One more request reaches the sample floor. Then stall the slow
	// replica far past the now-armed adaptive delay (the ~10ms quantile of
	// the cold samples): the next read starts there — the rotation walks
	// request-count order — so a hedge must launch and win on the fast
	// replica. This half proves arming really was sample-gated, not off.
	run(minSamples - 1)
	slowBackend.delayNs.Store(int64(500 * time.Millisecond))
	start := time.Now()
	run(minSamples)
	if took := time.Since(start); took > 400*time.Millisecond {
		t.Errorf("armed read took %v; the hedge should have cut the stalled replica short", took)
	}
	if st := c.Stats(); st.Hedges == 0 {
		t.Fatalf("distribution armed (%d samples) but no hedge launched: %+v", minSamples, st)
	}

	c.Close()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
