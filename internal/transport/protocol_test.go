package transport

import (
	"bufio"
	"net"
	"testing"

	"repro/internal/sql"
	"repro/internal/wrapper"
)

// materializedOnly hides the backend's streaming face, forcing the server
// onto the Execute fallback (the embedded interface carries only the
// SourceExecutor methods).
type materializedOnly struct {
	wrapper.SourceExecutor
}

// TestProtocolNegotiation covers the version matrix: a v2 client against a
// v2 server ships columnar frames; pinning Protocol 1 keeps the stream on
// plain row frames; and a pre-hello server (simulated: answers the hello
// with an in-band error and keeps the connection, exactly what the old
// request loop did with an unknown frame) degrades the client to v1 with
// identical results.
func TestProtocolNegotiation(t *testing.T) {
	db := testDB(t)
	src := wrapper.NewFullAccessSource(db)
	srv := NewServer(src)
	stmt := mustParse(t, "SELECT title, year FROM movie ORDER BY year")
	want, err := src.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}

	run := func(t *testing.T, c *Client) ClientStats {
		t.Helper()
		defer c.Close()
		got, err := c.Execute(stmt)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, got, want)
		return c.Stats()
	}

	t.Run("v2", func(t *testing.T) {
		c, err := NewLoopbackClient(src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		st := run(t, c)
		if st.ColumnarFrames == 0 {
			t.Errorf("v2 connection shipped no columnar frames: %+v", st)
		}
	})
	t.Run("pinned v1", func(t *testing.T) {
		c, err := NewLoopbackClient(src, Options{Protocol: ProtocolV1})
		if err != nil {
			t.Fatal(err)
		}
		st := run(t, c)
		if st.ColumnarFrames != 0 {
			t.Errorf("pinned-v1 connection received columnar frames: %+v", st)
		}
		if st.RowFrames == 0 {
			t.Errorf("pinned-v1 connection decoded no row frames: %+v", st)
		}
	})
	t.Run("legacy server", func(t *testing.T) {
		legacy := func() (net.Conn, error) {
			cl, sv := net.Pipe()
			go func() {
				defer sv.Close()
				br := bufio.NewReader(sv)
				for {
					typ, payload, err := readFrame(br, DefaultMaxFrame)
					if err != nil {
						return
					}
					if typ == frameHello {
						if writeError(sv, &ProtocolError{Detail: "unknown request frame"}) != nil {
							return
						}
						continue
					}
					if srv.handle(sv, typ, payload, ProtocolV1) != nil {
						return
					}
				}
			}()
			return cl, nil
		}
		c, err := NewClient([]Dialer{legacy}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		st := run(t, c)
		if st.ColumnarFrames != 0 {
			t.Errorf("legacy server somehow produced columnar frames: %+v", st)
		}
	})
}

// TestServerBufferHighWaterBounded is the memory-bound evidence for the
// tentpole: a no-LIMIT full-table query through a streaming backend holds
// at most one batch server-side, while the same query against an
// Execute-only backend records the whole materialized result.
func TestServerBufferHighWaterBounded(t *testing.T) {
	db := testDB(t)
	src := wrapper.NewFullAccessSource(db)
	stmt := mustParse(t, "SELECT * FROM movie")

	res, err := src.Execute(stmt)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range res.Rows {
		total += sql.EncodedRowSize(r)
	}

	streaming := NewServer(src)
	c, err := NewClient([]Dialer{LoopbackDialer(streaming)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute(stmt); err != nil {
		t.Fatal(err)
	}
	c.Close()
	hw := streaming.BufferHighWater()
	// One batch plus the row that crossed the cut, never the result.
	bound := int64(streaming.batchByteCap() + 4096)
	if hw == 0 || hw > bound {
		t.Errorf("streaming high-water %d, want (0, %d]", hw, bound)
	}
	if hw >= int64(total) {
		t.Errorf("streaming high-water %d not below materialized size %d", hw, total)
	}

	mat := NewServer(&materializedOnly{SourceExecutor: src})
	c2, err := NewClient([]Dialer{LoopbackDialer(mat)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Execute(stmt); err != nil {
		t.Fatal(err)
	}
	c2.Close()
	if hw := mat.BufferHighWater(); hw < int64(total) {
		t.Errorf("materialized high-water %d, want >= %d", hw, total)
	}

	mat.ResetBufferHighWater()
	if mat.BufferHighWater() != 0 {
		t.Error("reset did not clear the gauge")
	}
}
