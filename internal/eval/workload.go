// Package eval provides the experiment harness: keyword-query workloads
// with gold-standard answers sampled from the database instance, quality
// metrics (Success@k, MRR, precision), and table formatting for the
// EXPERIMENTS.md reports.
//
// Workloads replace the human participants of the paper's demonstration:
// each query is generated from actual tuples, so the intended configuration
// (which keyword is a value of which attribute) and the intended table set
// (which join path the user "meant") are known by construction.
package eval

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/fulltext"
	"repro/internal/relational"
)

// Query is one workload entry: the keyword query plus its gold standard.
type Query struct {
	// Keywords the simulated user types.
	Keywords []string
	// GoldConfig maps each keyword to the intended database term.
	GoldConfig *core.Configuration
	// GoldTables is the sorted set of tables the intended SQL joins.
	GoldTables []string
	// Label names the query template for reporting.
	Label string
}

// String renders the query.
func (q *Query) String() string { return strings.Join(q.Keywords, " ") }

// Workload is a reproducible set of queries over one database.
type Workload struct {
	Name    string
	Queries []*Query
}

// Generator samples workload queries from a populated database.
type Generator struct {
	db  *relational.Database
	r   *rand.Rand
	idx *fulltext.Index
}

// NewGenerator seeds a workload generator.
func NewGenerator(db *relational.Database, seed int64) *Generator {
	return &Generator{db: db, r: rand.New(rand.NewSource(seed)), idx: fulltext.BuildIndex(db)}
}

// valueToken picks a random informative token from a random row of the
// given column: tokens that appear in at most maxDF rows of the column, so
// the keyword is selective enough to identify intent. A maxDF of 0 scales
// the cutoff with the table size (token pools are finite, so absolute
// selectivity thresholds starve on large instances).
func (g *Generator) valueToken(table, column string, maxDF int) (string, bool) {
	t := g.db.Table(table)
	if t == nil || t.Len() == 0 {
		return "", false
	}
	if maxDF <= 0 {
		maxDF = 8
		if scaled := t.Len() / 25; scaled > maxDF {
			maxDF = scaled
		}
	}
	ai := g.idx.Attribute(table, column)
	if ai == nil {
		return "", false
	}
	ord := t.Schema.ColumnIndex(column)
	for attempt := 0; attempt < 50; attempt++ {
		row := t.Row(g.r.Intn(t.Len()))
		v := row[ord]
		if v.IsNull() {
			continue
		}
		toks := fulltext.Tokenize(v.AsString())
		if len(toks) == 0 {
			continue
		}
		tok := toks[g.r.Intn(len(toks))]
		if len(tok) < 3 {
			continue
		}
		if len(ai.Rows(tok)) <= maxDF {
			return tok, true
		}
	}
	return "", false
}

// Template describes one query shape: value keywords drawn from attributes
// (joined through the listed tables).
type Template struct {
	Label string
	// Attrs lists (table, column) pairs; one selective value token is
	// sampled from each.
	Attrs [][2]string
	// Tables is the intended join scope (gold).
	Tables []string
	// SchemaTerms optionally appends schema keywords mapped to
	// attribute/table terms (e.g. the literal word "title").
	SchemaTerms []core.Term
}

// Generate builds n queries per template (skipping samples where no
// selective token could be found).
func (g *Generator) Generate(name string, templates []Template, nPerTemplate int) *Workload {
	w := &Workload{Name: name}
	for _, tpl := range templates {
		for i := 0; i < nPerTemplate; i++ {
			q := g.instantiate(tpl)
			if q != nil {
				w.Queries = append(w.Queries, q)
			}
		}
	}
	return w
}

func (g *Generator) instantiate(tpl Template) *Query {
	var keywords []string
	var terms []core.Term
	for _, a := range tpl.Attrs {
		tok, ok := g.valueToken(a[0], a[1], 0)
		if !ok {
			return nil
		}
		keywords = append(keywords, tok)
		terms = append(terms, core.Term{Kind: core.KindDomain, Table: a[0], Column: a[1]})
	}
	for _, st := range tpl.SchemaTerms {
		switch st.Kind {
		case core.KindTable:
			keywords = append(keywords, strings.ToLower(st.Table))
		default:
			keywords = append(keywords, strings.ToLower(st.Column))
		}
		terms = append(terms, st)
	}
	gold := append([]string(nil), tpl.Tables...)
	for i := range gold {
		gold[i] = strings.ToLower(gold[i])
	}
	sort.Strings(gold)
	return &Query{
		Keywords: keywords,
		GoldConfig: &core.Configuration{
			Keywords: keywords,
			Terms:    terms,
		},
		GoldTables: gold,
		Label:      tpl.Label,
	}
}

// TemplatesFor maps a dataset name to its workload templates (imdb,
// mondial; everything else gets the DBLP shapes). Single home for the
// mapping questbench and queststats share.
func TemplatesFor(name string) []Template {
	switch strings.ToLower(name) {
	case "imdb":
		return IMDBTemplates()
	case "mondial":
		return MondialTemplates()
	default:
		return DBLPTemplates()
	}
}

// IMDBTemplates returns the movie-domain query shapes used across
// experiments: single-table lookups, star joins, and schema-keyword mixes.
func IMDBTemplates() []Template {
	return []Template{
		{
			Label:  "movie-title",
			Attrs:  [][2]string{{"movie", "title"}},
			Tables: []string{"movie"},
		},
		{
			Label:  "person-name",
			Attrs:  [][2]string{{"person", "name"}},
			Tables: []string{"person"},
		},
		{
			Label:  "movie-person",
			Attrs:  [][2]string{{"movie", "title"}, {"person", "name"}},
			Tables: []string{"movie", "cast_info", "person"},
		},
		{
			Label:  "movie-genre-person",
			Attrs:  [][2]string{{"movie", "genre"}, {"person", "name"}},
			Tables: []string{"movie", "cast_info", "person"},
		},
		{
			Label:  "movie-company",
			Attrs:  [][2]string{{"movie", "title"}, {"company", "name"}},
			Tables: []string{"movie", "movie_company", "company"},
		},
		{
			Label:       "title-schema-kw",
			Attrs:       [][2]string{{"person", "name"}},
			Tables:      []string{"movie", "cast_info", "person"},
			SchemaTerms: []core.Term{{Kind: core.KindTable, Table: "movie"}},
		},
	}
}

// MondialTemplates returns the geography-domain query shapes.
func MondialTemplates() []Template {
	return []Template{
		{
			Label:  "country",
			Attrs:  [][2]string{{"country", "name"}},
			Tables: []string{"country"},
		},
		{
			Label:  "city-country",
			Attrs:  [][2]string{{"city", "name"}, {"country", "name"}},
			Tables: []string{"city", "country"},
		},
		{
			Label:  "river-country",
			Attrs:  [][2]string{{"river", "name"}, {"country", "name"}},
			Tables: []string{"river", "geo_river", "country"},
		},
		{
			Label:  "org-country",
			Attrs:  [][2]string{{"organization", "abbreviation"}, {"country", "name"}},
			Tables: []string{"organization", "is_member", "country"},
		},
		{
			Label:       "population-schema-kw",
			Attrs:       [][2]string{{"country", "name"}},
			Tables:      []string{"country"},
			SchemaTerms: []core.Term{{Kind: core.KindAttribute, Table: "country", Column: "population"}},
		},
	}
}

// DBLPTemplates returns the bibliography-domain query shapes.
func DBLPTemplates() []Template {
	return []Template{
		{
			Label:  "paper-title",
			Attrs:  [][2]string{{"paper", "title"}},
			Tables: []string{"paper"},
		},
		{
			Label:  "author-paper",
			Attrs:  [][2]string{{"author", "name"}, {"paper", "title"}},
			Tables: []string{"author", "authored", "paper"},
		},
		{
			Label:  "paper-venue",
			Attrs:  [][2]string{{"paper", "title"}, {"venue", "name"}},
			Tables: []string{"paper", "venue"},
		},
		{
			Label:  "author-venue",
			Attrs:  [][2]string{{"author", "name"}, {"venue", "name"}},
			Tables: []string{"author", "authored", "paper", "venue"},
		},
		{
			Label:       "year-schema-kw",
			Attrs:       [][2]string{{"author", "name"}},
			Tables:      []string{"author", "authored", "paper"},
			SchemaTerms: []core.Term{{Kind: core.KindAttribute, Table: "paper", Column: "year"}},
		},
	}
}

// FeedbackFor converts a workload's gold configurations into validated
// searches for feedback training (experiments E4/E5 sweep the count).
func FeedbackFor(w *Workload, n int) []*core.Configuration {
	if n > len(w.Queries) {
		n = len(w.Queries)
	}
	out := make([]*core.Configuration, 0, n)
	for _, q := range w.Queries[:n] {
		out = append(out, q.GoldConfig)
	}
	return out
}

// Split partitions a workload into train and test halves deterministically
// (even indexes train, odd test) so feedback never trains on the test set.
func Split(w *Workload) (train, test *Workload) {
	train = &Workload{Name: w.Name + "-train"}
	test = &Workload{Name: w.Name + "-test"}
	for i, q := range w.Queries {
		if i%2 == 0 {
			train.Queries = append(train.Queries, q)
		} else {
			test.Queries = append(test.Queries, q)
		}
	}
	return train, test
}

// Describe summarizes the workload for logs.
func (w *Workload) Describe() string {
	counts := map[string]int{}
	for _, q := range w.Queries {
		counts[q.Label]++
	}
	var labels []string
	for l := range counts {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var b strings.Builder
	fmt.Fprintf(&b, "workload %s: %d queries (", w.Name, len(w.Queries))
	for i, l := range labels {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s×%d", l, counts[l])
	}
	b.WriteString(")")
	return b.String()
}
