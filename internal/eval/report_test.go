package eval

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tbl := &Table{Headers: []string{"a", "bb"}}
	tbl.AddRow("xxxx", "y")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3 (header, rule, row)", len(lines))
	}
	// Column 2 must start at the same offset in header and row.
	hIdx := strings.Index(lines[0], "bb")
	rIdx := strings.Index(lines[2], "y")
	if hIdx != rIdx {
		t.Fatalf("misaligned: header col2 at %d, row col2 at %d\n%s", hIdx, rIdx, out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tbl := &Table{Headers: []string{"h"}}
	tbl.AddRow("v")
	if strings.Contains(tbl.String(), "==") {
		t.Fatal("untitled table must not render a title rule")
	}
}

func TestF(t *testing.T) {
	if F(0.5) != "0.500" {
		t.Fatalf("F(0.5) = %q", F(0.5))
	}
	if F(0) != "0.000" {
		t.Fatalf("F(0) = %q", F(0))
	}
}

func TestJudgementHit(t *testing.T) {
	if (Judgement{TablesRank: 0}).Hit() {
		t.Fatal("rank 0 must not be a hit")
	}
	if !(Judgement{TablesRank: 5}).Hit() {
		t.Fatal("rank 5 must be a hit")
	}
}

func TestSameTablesNormalization(t *testing.T) {
	if !sameTables([]string{"B", "a"}, []string{"A", "b"}) {
		t.Fatal("case/order-insensitive comparison broken")
	}
	if sameTables([]string{"a"}, []string{"a", "b"}) {
		t.Fatal("different sizes must differ")
	}
	if sameTables([]string{"a", "c"}, []string{"a", "b"}) {
		t.Fatal("different members must differ")
	}
}
