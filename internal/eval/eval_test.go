package eval

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/ontology"
	"repro/internal/wrapper"
)

func TestGeneratorProducesQueriesWithGold(t *testing.T) {
	db := datasets.IMDB(datasets.DefaultConfig())
	g := NewGenerator(db, 7)
	w := g.Generate("imdb", IMDBTemplates(), 3)
	if len(w.Queries) == 0 {
		t.Fatal("empty workload")
	}
	for _, q := range w.Queries {
		if len(q.Keywords) == 0 {
			t.Fatal("query without keywords")
		}
		if q.GoldConfig == nil || len(q.GoldConfig.Terms) != len(q.Keywords) {
			t.Fatalf("query %v: bad gold config", q)
		}
		if len(q.GoldTables) == 0 {
			t.Fatalf("query %v: no gold tables", q)
		}
		// Gold tables must be sorted lower-case.
		for i := 1; i < len(q.GoldTables); i++ {
			if q.GoldTables[i-1] > q.GoldTables[i] {
				t.Fatalf("gold tables unsorted: %v", q.GoldTables)
			}
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	db := datasets.IMDB(datasets.DefaultConfig())
	w1 := NewGenerator(db, 7).Generate("a", IMDBTemplates(), 2)
	w2 := NewGenerator(db, 7).Generate("a", IMDBTemplates(), 2)
	if len(w1.Queries) != len(w2.Queries) {
		t.Fatalf("lengths differ: %d vs %d", len(w1.Queries), len(w2.Queries))
	}
	for i := range w1.Queries {
		if w1.Queries[i].String() != w2.Queries[i].String() {
			t.Fatalf("query %d differs: %q vs %q", i, w1.Queries[i], w2.Queries[i])
		}
	}
}

func TestValueTokensAreSelective(t *testing.T) {
	db := datasets.IMDB(datasets.DefaultConfig())
	g := NewGenerator(db, 3)
	for i := 0; i < 10; i++ {
		tok, ok := g.valueToken("movie", "title", 8)
		if !ok {
			continue
		}
		ai := g.idx.Attribute("movie", "title")
		if len(ai.Rows(tok)) > 8 {
			t.Fatalf("token %q occurs in %d rows > 8", tok, len(ai.Rows(tok)))
		}
	}
}

func TestJudgeRanks(t *testing.T) {
	q := &Query{
		Keywords: []string{"a", "b"},
		GoldConfig: &core.Configuration{
			Keywords: []string{"a", "b"},
			Terms: []core.Term{
				{Kind: core.KindDomain, Table: "t1", Column: "x"},
				{Kind: core.KindDomain, Table: "t2", Column: "y"},
			},
		},
		GoldTables: []string{"t1", "t2"},
	}
	// Build judgement from table sets only.
	j := JudgeTables(q, [][]string{
		{"t1"},
		{"t2", "t1"}, // matches gold (order-insensitive)
		{"t1", "t2", "t3"},
	})
	if j.TablesRank != 2 {
		t.Fatalf("TablesRank = %d, want 2", j.TablesRank)
	}
	if !j.Hit() {
		t.Fatal("Hit() must be true")
	}
	j = JudgeTables(q, [][]string{{"t3"}})
	if j.TablesRank != 0 || j.Hit() {
		t.Fatal("miss must yield rank 0")
	}
}

func TestAggregateMetrics(t *testing.T) {
	js := []Judgement{
		{TablesRank: 1, ConfigRank: 1},
		{TablesRank: 3, ConfigRank: 2},
		{TablesRank: 0, ConfigRank: 0},
		{TablesRank: 7, ConfigRank: 1},
	}
	m := Aggregate(js)
	if m.N != 4 {
		t.Fatalf("N = %d", m.N)
	}
	if math.Abs(m.SuccessAt1-0.25) > 1e-12 {
		t.Errorf("S@1 = %v", m.SuccessAt1)
	}
	if math.Abs(m.SuccessAt3-0.5) > 1e-12 {
		t.Errorf("S@3 = %v", m.SuccessAt3)
	}
	if math.Abs(m.SuccessAt10-0.75) > 1e-12 {
		t.Errorf("S@10 = %v", m.SuccessAt10)
	}
	wantMRR := (1.0 + 1.0/3 + 0 + 1.0/7) / 4
	if math.Abs(m.MRR-wantMRR) > 1e-12 {
		t.Errorf("MRR = %v, want %v", m.MRR, wantMRR)
	}
	if math.Abs(m.ConfigAt1-0.5) > 1e-12 {
		t.Errorf("cfg@1 = %v", m.ConfigAt1)
	}
}

func TestAggregateEmpty(t *testing.T) {
	m := Aggregate(nil)
	if m.N != 0 || m.MRR != 0 {
		t.Fatalf("empty aggregate = %+v", m)
	}
}

func TestSplitPartitions(t *testing.T) {
	w := &Workload{Name: "w"}
	for i := 0; i < 7; i++ {
		w.Queries = append(w.Queries, &Query{Keywords: []string{string(rune('a' + i))}})
	}
	train, test := Split(w)
	if len(train.Queries) != 4 || len(test.Queries) != 3 {
		t.Fatalf("split = %d/%d", len(train.Queries), len(test.Queries))
	}
}

func TestFeedbackFor(t *testing.T) {
	w := &Workload{}
	for i := 0; i < 5; i++ {
		w.Queries = append(w.Queries, &Query{
			GoldConfig: &core.Configuration{Keywords: []string{"k"}},
		})
	}
	fb := FeedbackFor(w, 3)
	if len(fb) != 3 {
		t.Fatalf("feedback = %d", len(fb))
	}
	fb = FeedbackFor(w, 99)
	if len(fb) != 5 {
		t.Fatalf("clamped feedback = %d", len(fb))
	}
}

func TestRunEngineEndToEndOnWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	db := datasets.IMDB(datasets.DefaultConfig())
	opts := core.DefaultOptions()
	opts.Thesaurus = ontology.DefaultThesaurus()
	eng := core.NewEngine(wrapper.NewFullAccessSource(db), opts)
	g := NewGenerator(db, 11)
	w := g.Generate("imdb", IMDBTemplates()[:3], 4)
	js := RunEngine(eng, w)
	if len(js) != len(w.Queries) {
		t.Fatalf("judgements = %d, want %d", len(js), len(w.Queries))
	}
	m := Aggregate(js)
	// QUEST must attain the gold table set in the top-10 for a majority of
	// the simple workloads — the demo's headline behaviour.
	if m.SuccessAt10 < 0.5 {
		t.Fatalf("S@10 = %v < 0.5 — pipeline quality collapsed (%s)", m.SuccessAt10, m)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Headers: []string{"col", "value"},
	}
	tbl.AddRow("a", "1")
	tbl.AddRow("long-name", "2")
	out := tbl.String()
	for _, frag := range []string{"== demo ==", "col", "long-name"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table missing %q:\n%s", frag, out)
		}
	}
}

func TestWorkloadDescribe(t *testing.T) {
	db := datasets.IMDB(datasets.DefaultConfig())
	w := NewGenerator(db, 7).Generate("imdb", IMDBTemplates()[:2], 2)
	desc := w.Describe()
	if !strings.Contains(desc, "imdb") || !strings.Contains(desc, "queries") {
		t.Errorf("describe = %q", desc)
	}
}

func TestMondialAndDBLPTemplatesInstantiate(t *testing.T) {
	mondial := datasets.Mondial(datasets.DefaultConfig())
	w := NewGenerator(mondial, 13).Generate("mondial", MondialTemplates(), 2)
	if len(w.Queries) == 0 {
		t.Fatal("mondial workload empty")
	}
	dblp := datasets.DBLP(datasets.DefaultConfig())
	w2 := NewGenerator(dblp, 17).Generate("dblp", DBLPTemplates(), 2)
	if len(w2.Queries) == 0 {
		t.Fatal("dblp workload empty")
	}
}
