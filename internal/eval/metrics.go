package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// Judgement is the per-query outcome of running an engine on a workload
// query: the ranks (1-based) at which the gold configuration and the gold
// table set were attained, 0 when missed.
type Judgement struct {
	Query      *Query
	ConfigRank int // rank of the gold configuration among explanations
	TablesRank int // rank of the first explanation joining exactly the gold tables
	Returned   int // number of explanations returned
}

// Hit reports whether the gold table set appeared anywhere.
func (j Judgement) Hit() bool { return j.TablesRank > 0 }

// Judge compares one ranked explanation list against a query's gold
// standard.
func Judge(q *Query, explanations []*core.Explanation) Judgement {
	j := Judgement{Query: q, Returned: len(explanations)}
	goldCfg := q.GoldConfig.ID()
	for i, ex := range explanations {
		rank := i + 1
		if j.ConfigRank == 0 && ex.Config.ID() == goldCfg {
			j.ConfigRank = rank
		}
		if j.TablesRank == 0 && sameTables(ex.Interpretation.Tables(), q.GoldTables) {
			j.TablesRank = rank
		}
		if j.ConfigRank > 0 && j.TablesRank > 0 {
			break
		}
	}
	return j
}

// JudgeTables scores a ranked list of table sets (for baselines that return
// tuple trees or candidate networks instead of explanations).
func JudgeTables(q *Query, tableSets [][]string) Judgement {
	j := Judgement{Query: q, Returned: len(tableSets)}
	for i, ts := range tableSets {
		if sameTables(ts, q.GoldTables) {
			j.TablesRank = i + 1
			break
		}
	}
	return j
}

func sameTables(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	an := append([]string(nil), a...)
	bn := append([]string(nil), b...)
	for i := range an {
		an[i] = strings.ToLower(an[i])
	}
	for i := range bn {
		bn[i] = strings.ToLower(bn[i])
	}
	sort.Strings(an)
	sort.Strings(bn)
	for i := range an {
		if an[i] != bn[i] {
			return false
		}
	}
	return true
}

// Metrics aggregates judgements into the numbers the experiment tables
// report.
type Metrics struct {
	N int
	// SuccessAt1/3/10 count queries whose gold table set appeared within
	// that rank, as fractions of N.
	SuccessAt1  float64
	SuccessAt3  float64
	SuccessAt10 float64
	// MRR is the mean reciprocal rank of the gold table set.
	MRR float64
	// ConfigAt1 and ConfigMRR score the forward step in isolation (gold
	// configuration attainment).
	ConfigAt1 float64
	ConfigMRR float64
}

// Aggregate computes Metrics over a set of judgements.
func Aggregate(js []Judgement) Metrics {
	m := Metrics{N: len(js)}
	if m.N == 0 {
		return m
	}
	for _, j := range js {
		if j.TablesRank == 1 {
			m.SuccessAt1++
		}
		if j.TablesRank >= 1 && j.TablesRank <= 3 {
			m.SuccessAt3++
		}
		if j.TablesRank >= 1 && j.TablesRank <= 10 {
			m.SuccessAt10++
		}
		if j.TablesRank > 0 {
			m.MRR += 1 / float64(j.TablesRank)
		}
		if j.ConfigRank == 1 {
			m.ConfigAt1++
		}
		if j.ConfigRank > 0 {
			m.ConfigMRR += 1 / float64(j.ConfigRank)
		}
	}
	n := float64(m.N)
	m.SuccessAt1 /= n
	m.SuccessAt3 /= n
	m.SuccessAt10 /= n
	m.MRR /= n
	m.ConfigAt1 /= n
	m.ConfigMRR /= n
	return m
}

// String renders the metrics in one line.
func (m Metrics) String() string {
	return fmt.Sprintf("n=%d S@1=%.3f S@3=%.3f S@10=%.3f MRR=%.3f cfg@1=%.3f cfgMRR=%.3f",
		m.N, m.SuccessAt1, m.SuccessAt3, m.SuccessAt10, m.MRR, m.ConfigAt1, m.ConfigMRR)
}

// RunEngine evaluates an engine over a workload, returning the judgements.
func RunEngine(e *core.Engine, w *Workload) []Judgement {
	js := make([]Judgement, 0, len(w.Queries))
	for _, q := range w.Queries {
		ex, err := e.Search(strings.Join(q.Keywords, " "))
		if err != nil {
			js = append(js, Judgement{Query: q})
			continue
		}
		js = append(js, Judge(q, ex))
	}
	return js
}

// Table builds aligned text tables for experiment output.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	for i, h := range t.Headers {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], h)
	}
	b.WriteString("\n")
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// F formats a float for table cells.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }
