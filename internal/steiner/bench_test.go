package steiner

import "testing"

// grid builds a 4x4 grid graph with diagonal shortcuts.
func benchGraph() *Graph {
	g := NewGraph()
	name := func(r, c int) string { return string(rune('a'+r)) + string(rune('0'+c)) }
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if c+1 < 4 {
				g.AddEdge(name(r, c), name(r, c+1), 1.0+float64(r)*0.1, "fk")
			}
			if r+1 < 4 {
				g.AddEdge(name(r, c), name(r+1, c), 1.0+float64(c)*0.1, "fk")
			}
		}
	}
	return g
}

func BenchmarkSteinerTopKCold(b *testing.B) {
	g := benchGraph()
	terms := []string{"a0", "d3", "a3", "d0"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.TopK(terms, 10, Options{Dedup: true}); err != nil {
			b.Fatal(err)
		}
	}
}
