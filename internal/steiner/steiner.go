// Package steiner implements weighted graphs and top-k minimum-cost
// connected tree (group Steiner tree) discovery.
//
// The algorithm is the dynamic-programming approach of Ding et al. (DPBF,
// ICDE'07) generalized to enumerate trees in increasing cost order: states
// T(v, S) — best trees rooted at vertex v covering terminal subset S — are
// expanded best-first through edge growth and subset merge, and complete
// trees (S = all terminals) are emitted as they surface. Following the
// paper's extension, emitted trees that are sub-trees (edge subsets) of
// previously emitted trees — or vice versa duplicates — can be filtered out
// by the caller via the Dedup option.
//
// QUEST runs this over a graph of the database *schema* (attribute nodes,
// PK-attribute and PK-FK edges), which is why exact DP is affordable: the
// graph has tens of nodes, not millions of tuples.
package steiner

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"strconv"
)

// Graph is a mutable undirected weighted multigraph with string-labeled
// vertices.
type Graph struct {
	names []string
	index map[string]int
	adj   [][]Edge
}

// Edge is one endpoint's view of an undirected edge.
type Edge struct {
	From   int
	To     int
	Weight float64
	Label  string // e.g. "fk" or "intra"; carried into trees
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{index: make(map[string]int)}
}

// AddVertex ensures a vertex exists and returns its id.
func (g *Graph) AddVertex(name string) int {
	if id, ok := g.index[name]; ok {
		return id
	}
	id := len(g.names)
	g.names = append(g.names, name)
	g.index[name] = id
	g.adj = append(g.adj, nil)
	return id
}

// Vertex returns the id of a vertex, or -1.
func (g *Graph) Vertex(name string) int {
	if id, ok := g.index[name]; ok {
		return id
	}
	return -1
}

// Name returns the label of vertex id.
func (g *Graph) Name(id int) string { return g.names[id] }

// Len returns the number of vertices.
func (g *Graph) Len() int { return len(g.names) }

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, es := range g.adj {
		n += len(es)
	}
	return n / 2
}

// AddEdge inserts an undirected edge. Negative weights are clamped to 0.
func (g *Graph) AddEdge(from, to string, weight float64, label string) {
	if weight < 0 {
		weight = 0
	}
	f, t := g.AddVertex(from), g.AddVertex(to)
	if f == t {
		return
	}
	g.adj[f] = append(g.adj[f], Edge{From: f, To: t, Weight: weight, Label: label})
	g.adj[t] = append(g.adj[t], Edge{From: t, To: f, Weight: weight, Label: label})
}

// Neighbors returns the edges incident to v.
func (g *Graph) Neighbors(v int) []Edge { return g.adj[v] }

// Tree is a connected subtree of a graph with its total edge cost.
type Tree struct {
	Root  int
	Edges []Edge // canonical: From < To, sorted
	Cost  float64

	// sig memoizes Signature. It is computed once per tree: TopK fills it
	// before a tree is emitted (and therefore before the tree can be shared
	// across goroutines); trees built by hand compute it lazily on first
	// use, which is safe as long as the first Signature call happens before
	// the tree is published to other goroutines.
	sig string
}

// Vertices returns the sorted vertex ids covered by the tree (root included
// even for single-vertex trees).
func (t *Tree) Vertices() []int {
	set := map[int]bool{t.Root: true}
	for _, e := range t.Edges {
		set[e.From] = true
		set[e.To] = true
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Signature is a canonical string identifying the tree's edge set. The
// result is memoized on the tree (the edge set is immutable once built), so
// repeated calls — dedup checks, interpretation IDs, cache keys — pay the
// formatting cost only once.
func (t *Tree) Signature() string {
	if t.sig == "" && len(t.Edges) > 0 {
		buf := make([]byte, 0, 8*len(t.Edges))
		for i, e := range t.Edges {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = strconv.AppendInt(buf, int64(e.From), 10)
			buf = append(buf, '-')
			buf = strconv.AppendInt(buf, int64(e.To), 10)
		}
		t.sig = string(buf)
	}
	return t.sig
}

// ContainsAll reports whether the tree covers every given vertex.
func (t *Tree) ContainsAll(vs []int) bool {
	set := map[int]bool{t.Root: true}
	for _, e := range t.Edges {
		set[e.From] = true
		set[e.To] = true
	}
	for _, v := range vs {
		if !set[v] {
			return false
		}
	}
	return true
}

// IsSubtreeOf reports whether t's edge set is a subset of other's.
func (t *Tree) IsSubtreeOf(other *Tree) bool {
	if len(t.Edges) > len(other.Edges) {
		return false
	}
	set := make(map[uint64]bool, len(other.Edges))
	for _, e := range other.Edges {
		set[edgeKey(e)] = true
	}
	for _, e := range t.Edges {
		if !set[edgeKey(e)] {
			return false
		}
	}
	return true
}

// edgeKey packs an undirected edge into one uint64 (vertex ids are dense
// small ints), replacing the fmt.Sprintf string keys that dominated the
// merge/dedup profile.
func edgeKey(e Edge) uint64 {
	f, t := e.From, e.To
	if f > t {
		f, t = t, f
	}
	return uint64(uint32(f))<<32 | uint64(uint32(t))
}

// Options tunes TopK.
type Options struct {
	// Dedup drops trees that are sub-trees of previously emitted trees and
	// exact duplicates (the paper's "mechanism for efficiently discarding
	// Steiner Trees that are sub-trees of others previously computed").
	Dedup bool
	// MaxExpansions bounds DP state expansions (0 = default 1<<20).
	MaxExpansions int
}

// dpState identifies a DP entry: best tree rooted at v covering terminal
// subset mask.
type dpState struct {
	v    int
	mask uint32
}

type dpEntry struct {
	cost  float64
	tree  *Tree
	state dpState
	// seq breaks heap ties deterministically.
	seq int
}

type dpHeap []*dpEntry

func (h dpHeap) Len() int { return len(h) }
func (h dpHeap) Less(i, j int) bool {
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	return h[i].seq < h[j].seq
}
func (h dpHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *dpHeap) Push(x interface{}) { *h = append(*h, x.(*dpEntry)) }
func (h *dpHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// TopK returns up to k minimum-cost trees connecting all terminal vertices,
// in nondecreasing cost order. Terminals may repeat; unknown vertices cause
// an error. With a single terminal the result is the trivial one-vertex
// tree.
func (g *Graph) TopK(terminals []string, k int, opt Options) ([]*Tree, error) {
	if k <= 0 {
		return nil, nil
	}
	ids := make([]int, 0, len(terminals))
	seen := make(map[int]bool)
	for _, name := range terminals {
		id := g.Vertex(name)
		if id < 0 {
			return nil, fmt.Errorf("steiner: unknown vertex %q", name)
		}
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	if len(ids) == 0 {
		return nil, nil
	}
	if len(ids) > 30 {
		return nil, fmt.Errorf("steiner: too many terminals (%d > 30)", len(ids))
	}
	maxExp := opt.MaxExpansions
	if maxExp <= 0 {
		maxExp = 1 << 20
	}

	termMask := make(map[int]uint32, len(ids))
	for i, id := range ids {
		termMask[id] = 1 << uint(i)
	}
	full := uint32(1)<<uint(len(ids)) - 1

	// popped[state] = number of times the state has been popped; we allow up
	// to k pops per state to enumerate k-best trees (Eppstein-style
	// relaxation of DPBF).
	popped := make(map[dpState]int)
	// entries[state] = trees already popped for the state, used to extend
	// merges; entryOrder fixes the iteration order (map iteration is
	// randomized and would leak into heap tie-breaks, making results
	// nondeterministic across runs).
	entries := make(map[dpState][]*Tree)
	var entryOrder []dpState

	h := &dpHeap{}
	seq := 0
	push := func(st dpState, tr *Tree) {
		seq++
		heap.Push(h, &dpEntry{cost: tr.Cost, tree: tr, state: st, seq: seq})
	}

	for _, id := range ids {
		push(dpState{v: id, mask: termMask[id]}, &Tree{Root: id})
	}

	var results []*Tree
	emittedSig := make(map[string]bool)
	expansions := 0
	for h.Len() > 0 && len(results) < k && expansions < maxExp {
		e := heap.Pop(h).(*dpEntry)
		st := e.state
		if popped[st] >= k {
			continue
		}
		popped[st]++
		if len(entries[st]) == 0 {
			entryOrder = append(entryOrder, st)
		}
		entries[st] = append(entries[st], e.tree)
		expansions++

		if st.mask == full {
			// The same edge set can surface under several roots; results are
			// always distinct trees. Dedup additionally drops sub-tree
			// dominated results (the paper's pruning).
			sig := e.tree.Signature()
			if emittedSig[sig] {
				continue
			}
			if opt.Dedup && isDominated(e.tree, results) {
				continue
			}
			emittedSig[sig] = true
			results = append(results, e.tree)
			continue
		}

		// Edge growth: extend the tree by one incident edge, re-rooting at
		// the new vertex.
		for _, edge := range g.adj[st.v] {
			nm := st.mask | termMask[edge.To]
			nt := extendTree(e.tree, edge)
			push(dpState{v: edge.To, mask: nm}, nt)
		}

		// Tree merge: combine with previously popped trees rooted at the
		// same vertex covering a disjoint terminal subset.
		for _, other := range entryOrder {
			if other.v != st.v || other.mask&st.mask != 0 {
				continue
			}
			for _, ot := range entries[other] {
				mt, ok := mergeTrees(e.tree, ot)
				if !ok {
					continue
				}
				push(dpState{v: st.v, mask: st.mask | other.mask}, mt)
			}
		}
	}
	return results, nil
}

func isDominated(t *Tree, emitted []*Tree) bool {
	for _, p := range emitted {
		if t.IsSubtreeOf(p) || p.IsSubtreeOf(t) {
			return true
		}
		if t.Signature() == p.Signature() {
			return true
		}
	}
	return false
}

func extendTree(t *Tree, e Edge) *Tree {
	ne := canonEdge(e)
	// Reject if the edge is already present (cycle via same edge).
	for _, x := range t.Edges {
		if x.From == ne.From && x.To == ne.To {
			// Re-rooting without adding the edge again.
			return &Tree{Root: e.To, Edges: t.Edges, Cost: t.Cost}
		}
	}
	edges := make([]Edge, 0, len(t.Edges)+1)
	edges = append(edges, t.Edges...)
	edges = append(edges, ne)
	sortEdges(edges)
	return &Tree{Root: e.To, Edges: edges, Cost: t.Cost + e.Weight}
}

// mergeTrees unions two trees rooted at the same vertex; fails when their
// edge sets overlap or the union would contain a cycle.
func mergeTrees(a, b *Tree) (*Tree, bool) {
	set := make(map[uint64]bool, len(a.Edges))
	for _, e := range a.Edges {
		set[edgeKey(e)] = true
	}
	edges := make([]Edge, 0, len(a.Edges)+len(b.Edges))
	edges = append(edges, a.Edges...)
	cost := a.Cost
	for _, e := range b.Edges {
		if set[edgeKey(e)] {
			return nil, false
		}
		edges = append(edges, e)
		cost += e.Weight
	}
	// Cycle check: |V| must equal |E| + 1 for a tree.
	verts := map[int]bool{a.Root: true}
	for _, e := range edges {
		verts[e.From] = true
		verts[e.To] = true
	}
	if len(verts) != len(edges)+1 {
		return nil, false
	}
	sortEdges(edges)
	return &Tree{Root: a.Root, Edges: edges, Cost: cost}, true
}

func canonEdge(e Edge) Edge {
	if e.From > e.To {
		e.From, e.To = e.To, e.From
	}
	return e
}

func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		return es[i].To < es[j].To
	})
}

// BruteForceBest exhaustively finds the minimum-cost connected subtree
// covering the terminals by enumerating edge subsets. Exponential; exists
// only to cross-check TopK in tests on small graphs.
func (g *Graph) BruteForceBest(terminals []string) (*Tree, bool) {
	ids := make([]int, 0, len(terminals))
	seen := map[int]bool{}
	for _, n := range terminals {
		id := g.Vertex(n)
		if id < 0 {
			return nil, false
		}
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return nil, false
	}
	if len(ids) == 1 {
		return &Tree{Root: ids[0]}, true
	}
	var all []Edge
	for v := range g.adj {
		for _, e := range g.adj[v] {
			if e.From < e.To {
				all = append(all, e)
			}
		}
	}
	if len(all) > 22 {
		panic("steiner: BruteForceBest called on a graph too large to enumerate")
	}
	best := (*Tree)(nil)
	bestCost := math.Inf(1)
	for mask := 0; mask < 1<<uint(len(all)); mask++ {
		var edges []Edge
		cost := 0.0
		for i, e := range all {
			if mask&(1<<uint(i)) != 0 {
				edges = append(edges, e)
				cost += e.Weight
			}
		}
		if cost >= bestCost {
			continue
		}
		t := &Tree{Root: ids[0], Edges: edges, Cost: cost}
		if !t.ContainsAll(ids) {
			continue
		}
		// Connectivity + acyclicity.
		verts := map[int]bool{ids[0]: true}
		for _, e := range edges {
			verts[e.From] = true
			verts[e.To] = true
		}
		if len(verts) != len(edges)+1 {
			continue
		}
		if !connected(edges, ids[0], verts) {
			continue
		}
		bestCost = cost
		sortEdges(edges)
		best = t
	}
	return best, best != nil
}

func connected(edges []Edge, start int, verts map[int]bool) bool {
	adj := map[int][]int{}
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	visited := map[int]bool{start: true}
	stack := []int{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, n := range adj[v] {
			if !visited[n] {
				visited[n] = true
				stack = append(stack, n)
			}
		}
	}
	return len(visited) == len(verts)
}
