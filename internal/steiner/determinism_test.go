package steiner

import (
	"math/rand"
	"testing"
)

// TestTopKDeterministic: repeated runs over the same graph must return the
// same trees in the same order — heap tie-breaking and merge iteration must
// not depend on map order (a regression test for a real bug: map-ordered
// merge iteration leaked into heap sequence numbers).
func TestTopKDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(r, 7, 5)
		terms := []string{"a", "d", "g"}
		first, err := g.TopK(terms, 8, Options{Dedup: true})
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			again, err := g.TopK(terms, 8, Options{Dedup: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(again) != len(first) {
				t.Fatalf("trial %d rep %d: %d trees vs %d", trial, rep, len(again), len(first))
			}
			for i := range first {
				if first[i].Signature() != again[i].Signature() || first[i].Cost != again[i].Cost {
					t.Fatalf("trial %d rep %d: tree %d differs:\n%s (%v)\n%s (%v)",
						trial, rep, i, first[i].Signature(), first[i].Cost,
						again[i].Signature(), again[i].Cost)
				}
			}
		}
	}
}

// TestTopKFreshGraphDeterministic: rebuilding the same graph from scratch
// (fresh maps, fresh vertex ids) must also reproduce results.
func TestTopKFreshGraphDeterministic(t *testing.T) {
	build := func() *Graph {
		r := rand.New(rand.NewSource(99))
		return randomGraph(r, 8, 6)
	}
	g1, g2 := build(), build()
	t1, err := g1.TopK([]string{"a", "e", "h"}, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := g2.TopK([]string{"a", "e", "h"}, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != len(t2) {
		t.Fatalf("tree counts differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i].Signature() != t2[i].Signature() {
			t.Fatalf("tree %d differs across graph rebuilds", i)
		}
	}
}

// TestMaxExpansionsBounds: a tiny expansion budget must terminate early
// without error (possibly with fewer results).
func TestMaxExpansionsBounds(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	g := randomGraph(r, 8, 8)
	full, err := g.TopK([]string{"a", "h"}, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	limited, err := g.TopK([]string{"a", "h"}, 5, Options{MaxExpansions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) > len(full) {
		t.Fatal("budget cannot create more results")
	}
}
