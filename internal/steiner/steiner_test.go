package steiner

import (
	"math"
	"math/rand"
	"testing"
)

// pathGraph builds a—b—c—d—e with unit weights.
func pathGraph() *Graph {
	g := NewGraph()
	g.AddEdge("a", "b", 1, "e")
	g.AddEdge("b", "c", 1, "e")
	g.AddEdge("c", "d", 1, "e")
	g.AddEdge("d", "e", 1, "e")
	return g
}

// diamondGraph has two routes between a and d: a-b-d (cost 2) and a-c-d
// (cost 3).
func diamondGraph() *Graph {
	g := NewGraph()
	g.AddEdge("a", "b", 1, "e")
	g.AddEdge("b", "d", 1, "e")
	g.AddEdge("a", "c", 1, "e")
	g.AddEdge("c", "d", 2, "e")
	return g
}

func TestGraphBasics(t *testing.T) {
	g := pathGraph()
	if g.Len() != 5 {
		t.Fatalf("Len() = %d, want 5", g.Len())
	}
	if g.EdgeCount() != 4 {
		t.Fatalf("EdgeCount() = %d, want 4", g.EdgeCount())
	}
	if g.Vertex("a") < 0 || g.Vertex("zz") != -1 {
		t.Fatal("vertex lookup broken")
	}
	if g.Name(g.Vertex("c")) != "c" {
		t.Fatal("Name round trip broken")
	}
	// Duplicate AddVertex must not grow the graph.
	id := g.AddVertex("a")
	if id != g.Vertex("a") || g.Len() != 5 {
		t.Fatal("AddVertex must be idempotent")
	}
	// Self loops are dropped.
	g.AddEdge("a", "a", 1, "e")
	if g.EdgeCount() != 4 {
		t.Fatal("self loop must be ignored")
	}
}

func TestTopKShortestPathBetweenTwoTerminals(t *testing.T) {
	g := diamondGraph()
	trees, err := g.TopK([]string{"a", "d"}, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 2 {
		t.Fatalf("got %d trees, want 2", len(trees))
	}
	if trees[0].Cost != 2 {
		t.Fatalf("best cost = %v, want 2 (a-b-d)", trees[0].Cost)
	}
	if trees[1].Cost != 3 {
		t.Fatalf("second cost = %v, want 3 (a-c-d)", trees[1].Cost)
	}
	if !trees[0].ContainsAll([]int{g.Vertex("a"), g.Vertex("d")}) {
		t.Fatal("tree must contain terminals")
	}
}

func TestTopKSingleTerminal(t *testing.T) {
	g := pathGraph()
	trees, err := g.TopK([]string{"c"}, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) == 0 {
		t.Fatal("single terminal must yield the trivial tree")
	}
	if trees[0].Cost != 0 || len(trees[0].Edges) != 0 {
		t.Fatalf("trivial tree = %+v", trees[0])
	}
	if trees[0].Root != g.Vertex("c") {
		t.Fatal("trivial tree rooted wrong")
	}
}

func TestTopKThreeTerminalsStar(t *testing.T) {
	// Star: hub h connects x, y, z; terminals x,y,z -> tree must include hub.
	g := NewGraph()
	g.AddEdge("x", "h", 1, "e")
	g.AddEdge("y", "h", 1, "e")
	g.AddEdge("z", "h", 1, "e")
	trees, err := g.TopK([]string{"x", "y", "z"}, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 1 || trees[0].Cost != 3 {
		t.Fatalf("trees = %+v", trees)
	}
	verts := trees[0].Vertices()
	if len(verts) != 4 {
		t.Fatalf("tree must include the Steiner point: %v", verts)
	}
}

func TestTopKUnknownTerminal(t *testing.T) {
	g := pathGraph()
	if _, err := g.TopK([]string{"a", "nope"}, 1, Options{}); err == nil {
		t.Fatal("unknown terminal must error")
	}
}

func TestTopKDisconnected(t *testing.T) {
	g := pathGraph()
	g.AddVertex("island")
	trees, err := g.TopK([]string{"a", "island"}, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 0 {
		t.Fatalf("disconnected terminals must yield no tree, got %d", len(trees))
	}
}

func TestTopKZeroOrNegativeK(t *testing.T) {
	g := pathGraph()
	for _, k := range []int{0, -3} {
		trees, err := g.TopK([]string{"a", "b"}, k, Options{})
		if err != nil || trees != nil {
			t.Fatalf("k=%d: trees=%v err=%v", k, trees, err)
		}
	}
}

func TestTopKDuplicateTerminals(t *testing.T) {
	g := pathGraph()
	trees, err := g.TopK([]string{"a", "a", "c", "c"}, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 1 || trees[0].Cost != 2 {
		t.Fatalf("trees = %+v", trees)
	}
}

func TestTopKCostsNondecreasing(t *testing.T) {
	g := diamondGraph()
	g.AddEdge("b", "c", 0.5, "e")
	trees, err := g.TopK([]string{"a", "d"}, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(trees); i++ {
		if trees[i].Cost < trees[i-1].Cost-1e-12 {
			t.Fatalf("costs decrease at %d: %v < %v", i, trees[i].Cost, trees[i-1].Cost)
		}
	}
}

func TestDedupDropsSubtrees(t *testing.T) {
	// With Dedup, a tree that is a subtree of an earlier (cheaper) result
	// must not be emitted. Construct: terminals {a}; any bigger tree
	// containing the trivial answer is dominated. Use two terminals with
	// shared prefix paths instead.
	g := NewGraph()
	g.AddEdge("a", "b", 1, "e")
	g.AddEdge("b", "c", 1, "e")
	g.AddEdge("a", "c", 2.5, "e") // alternative route
	withDedup, err := g.TopK([]string{"a", "c"}, 5, Options{Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := g.TopK([]string{"a", "c"}, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(withDedup) > len(without) {
		t.Fatal("dedup cannot increase result count")
	}
	// No result may be a subtree of an earlier one.
	for i := range withDedup {
		for j := 0; j < i; j++ {
			if withDedup[i].IsSubtreeOf(withDedup[j]) || withDedup[j].IsSubtreeOf(withDedup[i]) {
				t.Fatalf("result %d and %d are nested", i, j)
			}
		}
	}
}

func TestIsSubtreeOf(t *testing.T) {
	g := pathGraph()
	t1, _ := g.TopK([]string{"a", "b"}, 1, Options{})
	t2, _ := g.TopK([]string{"a", "c"}, 1, Options{})
	if !t1[0].IsSubtreeOf(t2[0]) {
		t.Fatal("a-b is a subtree of a-b-c")
	}
	if t2[0].IsSubtreeOf(t1[0]) {
		t.Fatal("a-b-c is not a subtree of a-b")
	}
	if !t1[0].IsSubtreeOf(t1[0]) {
		t.Fatal("a tree is a subtree of itself")
	}
}

func TestSignatureCanonical(t *testing.T) {
	g := diamondGraph()
	ts, _ := g.TopK([]string{"a", "d"}, 2, Options{})
	if ts[0].Signature() == ts[1].Signature() {
		t.Fatal("different trees must have different signatures")
	}
}

func randomGraph(r *rand.Rand, n, extraEdges int) *Graph {
	g := NewGraph()
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('a' + i))
		g.AddVertex(names[i])
	}
	// Spanning chain keeps it connected.
	for i := 1; i < n; i++ {
		w := float64(1+r.Intn(9)) / 2
		g.AddEdge(names[i-1], names[i], w, "e")
	}
	for e := 0; e < extraEdges; e++ {
		i, j := r.Intn(n), r.Intn(n)
		if i == j {
			continue
		}
		w := float64(1+r.Intn(9)) / 2
		g.AddEdge(names[i], names[j], w, "e")
	}
	return g
}

func TestTopKOptimalAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 4 + r.Intn(3)
		g := randomGraph(r, n, r.Intn(3))
		if g.EdgeCount() > 12 {
			continue
		}
		nt := 2 + r.Intn(2)
		terms := map[string]bool{}
		for len(terms) < nt {
			terms[string(rune('a'+r.Intn(n)))] = true
		}
		var list []string
		for v := range terms {
			list = append(list, v)
		}
		want, ok := g.BruteForceBest(list)
		got, err := g.TopK(list, 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			if len(got) != 0 {
				t.Fatalf("trial %d: TopK found tree, brute force none", trial)
			}
			continue
		}
		if len(got) == 0 {
			t.Fatalf("trial %d: TopK found nothing, brute force cost %v", trial, want.Cost)
		}
		if math.Abs(got[0].Cost-want.Cost) > 1e-9 {
			t.Fatalf("trial %d: TopK cost %v, optimal %v", trial, got[0].Cost, want.Cost)
		}
	}
}

func TestTreesAreValidTrees(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(r, 6, 4)
		trees, err := g.TopK([]string{"a", "d", "f"}, 6, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range trees {
			verts := tr.Vertices()
			if len(verts) != len(tr.Edges)+1 {
				t.Fatalf("trial %d: not a tree: %d vertices, %d edges", trial, len(verts), len(tr.Edges))
			}
			sum := 0.0
			for _, e := range tr.Edges {
				sum += e.Weight
			}
			if math.Abs(sum-tr.Cost) > 1e-9 {
				t.Fatalf("trial %d: cost %v != edge sum %v", trial, tr.Cost, sum)
			}
		}
	}
}

func TestNegativeWeightClamped(t *testing.T) {
	g := NewGraph()
	g.AddEdge("a", "b", -5, "e")
	trees, err := g.TopK([]string{"a", "b"}, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if trees[0].Cost != 0 {
		t.Fatalf("negative weight must clamp to 0, cost = %v", trees[0].Cost)
	}
}

func TestTooManyTerminals(t *testing.T) {
	g := NewGraph()
	var terms []string
	for i := 0; i < 32; i++ {
		name := string(rune('A' + i))
		g.AddVertex(name)
		terms = append(terms, name)
	}
	if _, err := g.TopK(terms, 1, Options{}); err == nil {
		t.Fatal("more than 30 terminals must error")
	}
}
