package steiner

import (
	"sync"
	"testing"
)

func TestSignatureMemoized(t *testing.T) {
	tr := &Tree{
		Root: 0,
		Edges: []Edge{
			{From: 0, To: 2},
			{From: 2, To: 5},
		},
	}
	want := "0-2,2-5"
	if got := tr.Signature(); got != want {
		t.Fatalf("Signature = %q, want %q", got, want)
	}
	if tr.sig != want {
		t.Fatalf("signature not memoized: sig = %q", tr.sig)
	}
	if got := tr.Signature(); got != want {
		t.Fatalf("second Signature = %q, want %q", got, want)
	}
}

func TestSignatureEmptyTree(t *testing.T) {
	tr := &Tree{Root: 3}
	if got := tr.Signature(); got != "" {
		t.Fatalf("empty-tree Signature = %q, want empty", got)
	}
}

// TestTopKEmittedTreesHaveSignatures ensures trees returned by TopK carry a
// precomputed signature, so sharing them across goroutines (the backward
// module's memo) never triggers a lazy write.
func TestTopKEmittedTreesHaveSignatures(t *testing.T) {
	g := NewGraph()
	g.AddEdge("a", "b", 1, "fk")
	g.AddEdge("b", "c", 1, "fk")
	g.AddEdge("a", "c", 3, "fk")
	trees, err := g.TopK([]string{"a", "c"}, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) == 0 {
		t.Fatal("no trees")
	}
	for i, tr := range trees {
		if len(tr.Edges) > 0 && tr.sig == "" {
			t.Fatalf("tree %d emitted without a precomputed signature", i)
		}
	}
	// Concurrent reads of the memoized signature must agree.
	var wg sync.WaitGroup
	want := trees[0].Signature()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := trees[0].Signature(); got != want {
				t.Errorf("concurrent Signature = %q, want %q", got, want)
			}
		}()
	}
	wg.Wait()
}

func TestEdgeKeyCanonical(t *testing.T) {
	a := edgeKey(Edge{From: 3, To: 9})
	b := edgeKey(Edge{From: 9, To: 3})
	if a != b {
		t.Fatalf("edgeKey not direction-invariant: %d vs %d", a, b)
	}
	c := edgeKey(Edge{From: 3, To: 10})
	if a == c {
		t.Fatal("distinct edges collide")
	}
}
