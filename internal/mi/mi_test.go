package mi

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/relational"
)

// pairTable builds a two-column table from (x, y) string pairs.
func pairTable(t *testing.T, pairs [][2]string) *relational.Table {
	t.Helper()
	ts := &relational.TableSchema{
		Name: "obs",
		Columns: []relational.Column{
			{Name: "id", Type: relational.TypeInt, NotNull: true},
			{Name: "x", Type: relational.TypeString},
			{Name: "y", Type: relational.TypeString},
		},
		PrimaryKey: "id",
	}
	tab := relational.NewTable(ts)
	for i, p := range pairs {
		var x, y relational.Value
		if p[0] != "" {
			x = relational.String_(p[0])
		}
		if p[1] != "" {
			y = relational.String_(p[1])
		}
		tab.MustInsert(relational.Row{relational.Int(int64(i + 1)), x, y})
	}
	return tab
}

func TestEntropyUniform(t *testing.T) {
	tab := pairTable(t, [][2]string{{"a", ""}, {"b", ""}, {"c", ""}, {"d", ""}})
	h, err := Entropy(tab, "x", false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-math.Log(4)) > 1e-12 {
		t.Fatalf("H = %v, want ln 4", h)
	}
}

func TestEntropyConstantIsZero(t *testing.T) {
	tab := pairTable(t, [][2]string{{"a", ""}, {"a", ""}, {"a", ""}})
	h, err := Entropy(tab, "x", false)
	if err != nil {
		t.Fatal(err)
	}
	if h != 0 {
		t.Fatalf("H of constant = %v, want 0", h)
	}
}

func TestEntropyNullHandling(t *testing.T) {
	tab := pairTable(t, [][2]string{{"a", ""}, {"", ""}, {"b", ""}})
	hEx, err := Entropy(tab, "x", false)
	if err != nil {
		t.Fatal(err)
	}
	hIn, err := Entropy(tab, "x", true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hEx-math.Log(2)) > 1e-12 {
		t.Fatalf("H excluding NULLs = %v, want ln 2", hEx)
	}
	if math.Abs(hIn-math.Log(3)) > 1e-12 {
		t.Fatalf("H including NULLs = %v, want ln 3", hIn)
	}
}

func TestEntropyUnknownColumn(t *testing.T) {
	tab := pairTable(t, [][2]string{{"a", ""}})
	if _, err := Entropy(tab, "nope", false); err == nil {
		t.Fatal("unknown column must error")
	}
}

func TestIntraTableDeterministicDependence(t *testing.T) {
	// y = f(x) deterministically: MI = H(X) = H(Y), distance = 0.
	tab := pairTable(t, [][2]string{
		{"a", "1"}, {"a", "1"}, {"b", "2"}, {"b", "2"}, {"c", "3"}, {"c", "3"},
	})
	ps, err := IntraTable(tab, "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ps.MI-ps.HX) > 1e-12 || math.Abs(ps.MI-ps.HY) > 1e-12 {
		t.Fatalf("deterministic: MI=%v HX=%v HY=%v", ps.MI, ps.HX, ps.HY)
	}
	if d := ps.NormalizedDistance(); math.Abs(d) > 1e-12 {
		t.Fatalf("distance = %v, want 0", d)
	}
}

func TestIntraTableIndependence(t *testing.T) {
	// x and y independent uniform: MI = 0, distance = 1.
	var pairs [][2]string
	for _, x := range []string{"a", "b"} {
		for _, y := range []string{"1", "2"} {
			pairs = append(pairs, [2]string{x, y})
		}
	}
	tab := pairTable(t, pairs)
	ps, err := IntraTable(tab, "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ps.MI) > 1e-12 {
		t.Fatalf("independent MI = %v, want 0", ps.MI)
	}
	if d := ps.NormalizedDistance(); math.Abs(d-1) > 1e-12 {
		t.Fatalf("distance = %v, want 1", d)
	}
}

func TestMISymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	xs := []string{"a", "b", "c"}
	ys := []string{"1", "2"}
	for trial := 0; trial < 20; trial++ {
		var pairs [][2]string
		for i := 0; i < 30; i++ {
			pairs = append(pairs, [2]string{xs[r.Intn(len(xs))], ys[r.Intn(len(ys))]})
		}
		tab := pairTable(t, pairs)
		ab, err := IntraTable(tab, "x", "y")
		if err != nil {
			t.Fatal(err)
		}
		ba, err := IntraTable(tab, "y", "x")
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ab.MI-ba.MI) > 1e-9 {
			t.Fatalf("MI not symmetric: %v vs %v", ab.MI, ba.MI)
		}
		if ab.MI < 0 {
			t.Fatalf("MI negative: %v", ab.MI)
		}
		if ab.MI > math.Min(ab.HX, ab.HY)+1e-9 {
			t.Fatalf("MI exceeds min entropy: %v > min(%v, %v)", ab.MI, ab.HX, ab.HY)
		}
	}
}

func TestNormalizedDistanceBounds(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	xs := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 20; trial++ {
		var pairs [][2]string
		for i := 0; i < 25; i++ {
			pairs = append(pairs, [2]string{xs[r.Intn(len(xs))], xs[r.Intn(len(xs))]})
		}
		tab := pairTable(t, pairs)
		ps, err := IntraTable(tab, "x", "y")
		if err != nil {
			t.Fatal(err)
		}
		d := ps.NormalizedDistance()
		if d < 0 || d > 1 {
			t.Fatalf("distance out of [0,1]: %v", d)
		}
	}
}

func TestNormalizedDistanceDegenerate(t *testing.T) {
	if d := (PairStats{}).NormalizedDistance(); d != 1 {
		t.Fatalf("empty stats distance = %v, want 1", d)
	}
	// Single constant pair: HXY = 0.
	tab := pairTable(t, [][2]string{{"a", "1"}, {"a", "1"}})
	ps, err := IntraTable(tab, "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if d := ps.NormalizedDistance(); d != 1 {
		t.Fatalf("zero-entropy distance = %v, want 1", d)
	}
}

// fkFixture builds parent/child tables with a controllable join shape.
func fkFixture(t *testing.T, childFKs []int64) (*relational.Table, *relational.Table) {
	t.Helper()
	parent := relational.NewTable(&relational.TableSchema{
		Name: "parent",
		Columns: []relational.Column{
			{Name: "id", Type: relational.TypeInt, NotNull: true},
			{Name: "label", Type: relational.TypeString},
		},
		PrimaryKey: "id",
	})
	for i := 1; i <= 4; i++ {
		parent.MustInsert(relational.Row{relational.Int(int64(i)), relational.String_(string(rune('a' + i)))})
	}
	child := relational.NewTable(&relational.TableSchema{
		Name: "child",
		Columns: []relational.Column{
			{Name: "id", Type: relational.TypeInt, NotNull: true},
			{Name: "pid", Type: relational.TypeInt},
		},
		PrimaryKey: "id",
	})
	for i, fk := range childFKs {
		var v relational.Value
		if fk > 0 {
			v = relational.Int(fk)
		}
		child.MustInsert(relational.Row{relational.Int(int64(i + 1)), v})
	}
	return parent, child
}

func TestJoinPairBalancedJoin(t *testing.T) {
	parent, child := fkFixture(t, []int64{1, 2, 3, 4, 1, 2, 3, 4})
	ps, err := JoinPair(child, "pid", parent, "id", "id")
	if err != nil {
		t.Fatal(err)
	}
	// FK value determines referenced PK exactly: distance 0.
	if d := ps.NormalizedDistance(); math.Abs(d) > 1e-12 {
		t.Fatalf("balanced join distance = %v, want 0", d)
	}
	if ps.Count != 8 {
		t.Fatalf("count = %d, want 8", ps.Count)
	}
}

func TestJoinPairSkewedVsBalancedEntropy(t *testing.T) {
	parent, balanced := fkFixture(t, []int64{1, 2, 3, 4, 1, 2, 3, 4})
	_, skewed := fkFixture(t, []int64{1, 1, 1, 1, 1, 1, 1, 2})
	psB, err := JoinPair(balanced, "pid", parent, "id", "id")
	if err != nil {
		t.Fatal(err)
	}
	psS, err := JoinPair(skewed, "pid", parent, "id", "id")
	if err != nil {
		t.Fatal(err)
	}
	if psS.HX >= psB.HX {
		t.Fatalf("skewed join must carry less entropy: %v vs %v", psS.HX, psB.HX)
	}
}

func TestJoinPairWithNullsAndDangling(t *testing.T) {
	parent, child := fkFixture(t, []int64{1, 0, 2}) // 0 encodes NULL
	ps, err := JoinPair(child, "pid", parent, "id", "id")
	if err != nil {
		t.Fatal(err)
	}
	if ps.Count != 2 {
		t.Fatalf("NULL FK must be skipped: count = %d", ps.Count)
	}
}

func TestJoinPairUnknownColumns(t *testing.T) {
	parent, child := fkFixture(t, []int64{1})
	if _, err := JoinPair(child, "nope", parent, "id", "id"); err == nil {
		t.Fatal("unknown FK column must error")
	}
	if _, err := JoinPair(child, "pid", parent, "id", "nope"); err == nil {
		t.Fatal("unknown attr column must error")
	}
}

func TestJoinInformativenessDenseVsSparse(t *testing.T) {
	// Dense balanced junction: every parent reached uniformly.
	parent, dense := fkFixture(t, []int64{1, 2, 3, 4, 1, 2, 3, 4})
	// Sparse link: every row joins but only one parent is ever reached.
	_, sparse := fkFixture(t, []int64{1, 1, 1, 1})
	qd, err := JoinInformativeness(dense, "pid", parent, "id")
	if err != nil {
		t.Fatal(err)
	}
	qs, err := JoinInformativeness(sparse, "pid", parent, "id")
	if err != nil {
		t.Fatal(err)
	}
	if qd <= qs {
		t.Fatalf("dense join must be more informative: dense=%v sparse=%v", qd, qs)
	}
	if qd < 0.9 {
		t.Fatalf("balanced full-coverage join should approach 1, got %v", qd)
	}
	if qs > 0.1 {
		t.Fatalf("single-parent join should approach 0, got %v", qs)
	}
}

func TestJoinInformativenessBounds(t *testing.T) {
	parent, child := fkFixture(t, []int64{1, 0, 3, 2})
	q, err := JoinInformativeness(child, "pid", parent, "id")
	if err != nil {
		t.Fatal(err)
	}
	if q < 0 || q > 1 {
		t.Fatalf("informativeness out of [0,1]: %v", q)
	}
	// Empty child table.
	_, empty := fkFixture(t, nil)
	q, err = JoinInformativeness(empty, "pid", parent, "id")
	if err != nil {
		t.Fatal(err)
	}
	if q != 0 {
		t.Fatalf("empty child informativeness = %v, want 0", q)
	}
}

func TestJoinInformativenessTinyParent(t *testing.T) {
	// A single-row parent carries no distribution: informativeness equals
	// selectivity.
	parent := relational.NewTable(&relational.TableSchema{
		Name: "parent",
		Columns: []relational.Column{
			{Name: "id", Type: relational.TypeInt, NotNull: true},
		},
		PrimaryKey: "id",
	})
	parent.MustInsert(relational.Row{relational.Int(1)})
	child := relational.NewTable(&relational.TableSchema{
		Name: "child",
		Columns: []relational.Column{
			{Name: "id", Type: relational.TypeInt, NotNull: true},
			{Name: "pid", Type: relational.TypeInt},
		},
		PrimaryKey: "id",
	})
	child.MustInsert(relational.Row{relational.Int(1), relational.Int(1)})
	child.MustInsert(relational.Row{relational.Int(2), relational.Null()})
	q, err := JoinInformativeness(child, "pid", parent, "id")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q-0.5) > 1e-12 {
		t.Fatalf("tiny-parent informativeness = %v, want selectivity 0.5", q)
	}
}

func TestJoinSelectivity(t *testing.T) {
	parent, child := fkFixture(t, []int64{1, 2, 0, 0})
	s, err := JoinSelectivity(child, "pid", parent, "id")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("selectivity = %v, want 0.5", s)
	}
	// Empty child.
	_, empty := fkFixture(t, nil)
	s, err = JoinSelectivity(empty, "pid", parent, "id")
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Fatalf("empty selectivity = %v", s)
	}
}
