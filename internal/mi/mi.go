// Package mi computes entropy and mutual-information statistics over the
// database instance. The QUEST backward module uses an MI-based distance to
// weight the edges of the schema graph (following the database
// summarization measure of Yang, Procopiuc & Srivastava, PVLDB 2011), so
// the Steiner tree search prefers join paths that are informative — i.e.
// likely to connect actual tuples — even though the search itself never
// touches the instance.
package mi

import (
	"math"
	"sort"

	"repro/internal/relational"
)

// Entropy returns the Shannon entropy (nats) of the empirical distribution
// of the given column. NULLs form their own category only if includeNulls.
func Entropy(t *relational.Table, column string, includeNulls bool) (float64, error) {
	ord := t.Schema.ColumnIndex(column)
	if ord < 0 {
		return 0, errUnknownColumn(t, column)
	}
	counts := make(map[string]int)
	total := 0
	for _, row := range t.Rows() {
		v := row[ord]
		if v.IsNull() && !includeNulls {
			continue
		}
		counts[v.Key()]++
		total++
	}
	return entropyOf(counts, total), nil
}

// entropyOf sums in sorted-key order: float addition is order-sensitive and
// these entropies feed Steiner edge weights, which must be reproducible.
func entropyOf(counts map[string]int, total int) float64 {
	if total == 0 {
		return 0
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := 0.0
	for _, k := range keys {
		p := float64(counts[k]) / float64(total)
		h -= p * math.Log(p)
	}
	return h
}

func errUnknownColumn(t *relational.Table, column string) error {
	return &UnknownColumnError{Table: t.Schema.Name, Column: column}
}

// UnknownColumnError reports a column that does not exist.
type UnknownColumnError struct {
	Table  string
	Column string
}

func (e *UnknownColumnError) Error() string {
	return "mi: unknown column " + e.Table + "." + e.Column
}

// PairStats holds the entropies and mutual information of a pair of
// discrete variables.
type PairStats struct {
	HX    float64 // entropy of X
	HY    float64 // entropy of Y
	HXY   float64 // joint entropy
	MI    float64 // mutual information I(X;Y) = HX + HY − HXY
	Count int     // joint observations
}

// NormalizedDistance maps the pair statistics to a distance in [0,1]:
// 1 − I(X;Y)/H(X,Y), the normalized information distance variant used for
// edge weights. Independent variables give distance 1; deterministic
// dependence gives distance 0. Degenerate pairs (no data or zero joint
// entropy) return 1 — an uninformative join should look expensive.
func (ps PairStats) NormalizedDistance() float64 {
	if ps.Count == 0 || ps.HXY <= 0 {
		return 1
	}
	d := 1 - ps.MI/ps.HXY
	if d < 0 {
		return 0
	}
	if d > 1 {
		return 1
	}
	return d
}

// IntraTable computes pair statistics between two columns of the same table
// (row-aligned observations). NULLs in either column drop the observation.
func IntraTable(t *relational.Table, colX, colY string) (PairStats, error) {
	ox := t.Schema.ColumnIndex(colX)
	if ox < 0 {
		return PairStats{}, errUnknownColumn(t, colX)
	}
	oy := t.Schema.ColumnIndex(colY)
	if oy < 0 {
		return PairStats{}, errUnknownColumn(t, colY)
	}
	var obs [][2]string
	for _, row := range t.Rows() {
		x, y := row[ox], row[oy]
		if x.IsNull() || y.IsNull() {
			continue
		}
		obs = append(obs, [2]string{x.Key(), y.Key()})
	}
	return fromObservations(obs), nil
}

// JoinPair computes pair statistics across a PK/FK join: for every row of
// the FK-owning table with a non-NULL FK value that resolves, it pairs the
// FK value (X) with a designated attribute of the referenced row (Y). When
// attrY is the referenced PK itself this measures the informativeness of
// the join edge; skew and dangling potential show up as reduced MI.
func JoinPair(fkTable *relational.Table, fkColumn string, refTable *relational.Table, refColumn, attrY string) (PairStats, error) {
	ofk := fkTable.Schema.ColumnIndex(fkColumn)
	if ofk < 0 {
		return PairStats{}, errUnknownColumn(fkTable, fkColumn)
	}
	oy := refTable.Schema.ColumnIndex(attrY)
	if oy < 0 {
		return PairStats{}, errUnknownColumn(refTable, attrY)
	}
	refIdx, err := refTable.EnsureIndex(refColumn)
	if err != nil {
		return PairStats{}, err
	}
	var obs [][2]string
	for _, row := range fkTable.Rows() {
		v := row[ofk]
		if v.IsNull() {
			continue
		}
		for _, ri := range refIdx[v.Key()] {
			y := refTable.Row(ri)[oy]
			if y.IsNull() {
				continue
			}
			obs = append(obs, [2]string{v.Key(), y.Key()})
		}
	}
	return fromObservations(obs), nil
}

func fromObservations(obs [][2]string) PairStats {
	if len(obs) == 0 {
		return PairStats{}
	}
	cx := make(map[string]int)
	cy := make(map[string]int)
	cxy := make(map[string]int)
	for _, o := range obs {
		cx[o[0]]++
		cy[o[1]]++
		cxy[o[0]+"\x1f"+o[1]]++
	}
	n := len(obs)
	ps := PairStats{
		HX:    entropyOf(cx, n),
		HY:    entropyOf(cy, n),
		HXY:   entropyOf(cxy, n),
		Count: n,
	}
	ps.MI = ps.HX + ps.HY - ps.HXY
	if ps.MI < 0 { // numerical guard
		ps.MI = 0
	}
	return ps
}

// JoinInformativeness scores a PK/FK edge in [0,1] by how much information
// the join carries about the referenced table: the entropy of the FK-value
// distribution normalized by the maximum possible (log of the referenced
// table's size), scaled by the fraction of child rows that actually join.
//
// A dense, balanced junction (every parent reachable, every child row
// joining) scores ≈1; a sparse link table touching a handful of parents
// scores near 0 even when all its rows join. This is the instance statistic
// the backward module turns into an edge distance (1 − informativeness), so
// Steiner trees prefer join paths that reach real data — the paper's
// mutual-information-based weighting in the spirit of Yang et al.'s summary
// graphs.
func JoinInformativeness(fkTable *relational.Table, fkColumn string, refTable *relational.Table, refColumn string) (float64, error) {
	sel, err := JoinSelectivity(fkTable, fkColumn, refTable, refColumn)
	if err != nil {
		return 0, err
	}
	if refTable.Len() <= 1 {
		// A single-row (or empty) parent carries no information; the edge
		// is as informative as its selectivity.
		return sel, nil
	}
	h, err := Entropy(fkTable, fkColumn, false)
	if err != nil {
		return 0, err
	}
	hmax := math.Log(float64(refTable.Len()))
	cov := h / hmax
	if cov > 1 {
		cov = 1
	}
	return sel * cov, nil
}

// JoinSelectivity estimates the fraction of FK-table rows that successfully
// join: |{rows with resolving non-NULL FK}| / |rows|. Used as a secondary
// signal when weighting edges and in tests.
func JoinSelectivity(fkTable *relational.Table, fkColumn string, refTable *relational.Table, refColumn string) (float64, error) {
	ofk := fkTable.Schema.ColumnIndex(fkColumn)
	if ofk < 0 {
		return 0, errUnknownColumn(fkTable, fkColumn)
	}
	refIdx, err := refTable.EnsureIndex(refColumn)
	if err != nil {
		return 0, err
	}
	if fkTable.Len() == 0 {
		return 0, nil
	}
	hits := 0
	for _, row := range fkTable.Rows() {
		v := row[ofk]
		if v.IsNull() {
			continue
		}
		if len(refIdx[v.Key()]) > 0 {
			hits++
		}
	}
	return float64(hits) / float64(fkTable.Len()), nil
}
