package sql

import (
	"testing"

	"repro/internal/relational"
)

// TestHashValueKeyCompatibility pins the uint64 hash keys to the equality
// semantics the old string keys encoded: integral floats hash like ints,
// NULLs collapse, and type tags keep 1, "1" and true apart.
func TestHashValueKeyCompatibility(t *testing.T) {
	I, F, S, B := relational.Int, relational.Float, relational.String_, relational.Bool
	equal := [][2]relational.Value{
		{I(3), F(3.0)}, // numeric join compatibility
		{relational.Null(), relational.Null()},
		{S("abc"), S("abc")},
		{B(true), B(true)},
		{F(2.5), F(2.5)},
	}
	for _, pair := range equal {
		ha := hashValues([]relational.Value{pair[0]})
		hb := hashValues([]relational.Value{pair[1]})
		if ha != hb {
			t.Errorf("hash(%v) != hash(%v) but values are key-equal", pair[0], pair[1])
		}
		if !valuesEqual([]relational.Value{pair[0]}, []relational.Value{pair[1]}) {
			t.Errorf("valuesEqual(%v, %v) = false, want true", pair[0], pair[1])
		}
	}
	distinct := [][2]relational.Value{
		{I(1), S("1")},
		{I(1), B(true)},
		{S("true"), B(true)},
		{F(2.5), S("2.5")},
		{I(0), relational.Null()},
	}
	for _, pair := range distinct {
		if valuesEqual([]relational.Value{pair[0]}, []relational.Value{pair[1]}) {
			t.Errorf("valuesEqual(%v, %v) = true, want false", pair[0], pair[1])
		}
	}
}

// TestJoinIntFloatCompatibility joins an INT key against a FLOAT key with
// integral values — the coercion case the hash encoding must preserve.
func TestJoinIntFloatCompatibility(t *testing.T) {
	s := relational.NewSchema()
	for _, ts := range []*relational.TableSchema{
		{
			Name: "a",
			Columns: []relational.Column{
				{Name: "id", Type: relational.TypeInt, NotNull: true},
				{Name: "tag", Type: relational.TypeString},
			},
			PrimaryKey: "id",
		},
		{
			Name: "b",
			Columns: []relational.Column{
				{Name: "ref", Type: relational.TypeFloat, NotNull: true},
				{Name: "val", Type: relational.TypeString},
			},
		},
	} {
		if err := s.AddTable(ts); err != nil {
			t.Fatal(err)
		}
	}
	db := relational.MustNewDatabase("hk", s)
	I, F, S := relational.Int, relational.Float, relational.String_
	for _, r := range []relational.Row{{I(1), S("one")}, {I(2), S("two")}, {I(3), S("three")}} {
		if err := db.Insert("a", r); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []relational.Row{{F(1.0), S("x")}, {F(2.0), S("y")}, {F(2.5), S("z")}} {
		if err := db.Insert("b", r); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Run(db, "SELECT a.tag, b.val FROM a JOIN b ON a.id = b.ref")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("join returned %d rows, want 2 (int 1,2 matching float 1.0,2.0): %v", len(res.Rows), res.Rows)
	}
}

// TestGroupByNullsCollapse ensures NULL group keys still land in one group
// under the hash-keyed grouping, matching SQL GROUP BY semantics.
func TestGroupByNullsCollapse(t *testing.T) {
	db := testDB(t)
	res, err := Run(db, "SELECT year, COUNT(*) AS n FROM movie GROUP BY year ORDER BY n DESC, year")
	if err != nil {
		t.Fatal(err)
	}
	// The fixture has one NULL-year movie; add two more. All three must
	// collapse into the same group without creating new groups.
	if err := db.Insert("movie", relational.Row{relational.Int(100), relational.String_("null year a"), relational.Null(), relational.Null()}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("movie", relational.Row{relational.Int(101), relational.String_("null year b"), relational.Null(), relational.Null()}); err != nil {
		t.Fatal(err)
	}
	res2, err := Run(db, "SELECT year, COUNT(*) AS n FROM movie GROUP BY year")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != len(res.Rows) {
		t.Fatalf("NULL years split into extra groups: before %d groups, after %d", len(res.Rows), len(res2.Rows))
	}
	foundNull := false
	for _, r := range res2.Rows {
		if r[0].IsNull() {
			if n := r[1].AsInt(); n != 3 {
				t.Fatalf("NULL group count = %d, want 3", n)
			}
			foundNull = true
		}
	}
	if !foundNull {
		t.Fatal("no NULL group in result")
	}
}
