package sql

import (
	"repro/internal/relational"
)

// ExecuteStream runs a SELECT and delivers its result incrementally: start
// is called exactly once with the column header before any row, then emit
// once per result row, in result order. For statements whose tail is
// order-insensitive (no aggregation, DISTINCT or ORDER BY) the rows flow
// straight out of the planned pipeline with O(1) working memory — OFFSET
// and LIMIT are applied inline and a satisfied LIMIT stops the pipeline
// through the usual short-circuit. Statements that need the whole row set
// first (a sort, a group) fall back to materialized execution and replay
// the finished result, trading the memory bound for unchanged semantics.
//
// Error parity with Execute is exact either way: the same rows are
// projected in the same order (including the rows an OFFSET skips and the
// one row a LIMIT 0 still probes), so the first error Execute would
// surface is the first error ExecuteStream surfaces. An error from start
// or emit aborts the pipeline and is returned as-is.
func ExecuteStream(db *relational.Database, stmt *SelectStmt, start func(cols []string) error, emit func(row relational.Row) error) error {
	if len(stmt.GroupBy) > 0 || anyAgg(stmt) || stmt.Distinct || len(stmt.OrderBy) > 0 {
		res, err := Execute(db, stmt)
		if err != nil {
			return err
		}
		if err := start(res.Columns); err != nil {
			return err
		}
		for _, r := range res.Rows {
			if err := emit(r); err != nil {
				return err
			}
		}
		return nil
	}

	p, err := planSelect(db, stmt)
	if err != nil {
		return err
	}
	fullRel := &relation{cols: p.outCols}
	if err := start(projectionColumns(fullRel, stmt)); err != nil {
		return err
	}
	// Mirror Execute's short-circuit exactly: the pipeline stops once
	// OFFSET+LIMIT rows survived, and — like materialize, which appends
	// before checking — the stopping row is still projected, so a
	// projection error on it surfaces here too.
	cap := -1
	if stmt.Limit >= 0 {
		cap = stmt.Offset + stmt.Limit
	}
	seen, stopped := 0, false
	err = p.run(db, nil, func(row relational.Row) error {
		proj, perr := projectRow(fullRel, row, stmt)
		if perr != nil {
			return perr
		}
		seen++
		if seen > stmt.Offset && (cap < 0 || seen <= cap) {
			if eerr := emit(proj); eerr != nil {
				return eerr
			}
		}
		if cap >= 0 && seen >= cap {
			stopped = true
			return errStopIteration
		}
		return nil
	})
	if err != nil {
		return err
	}
	if stopped {
		counters.limitShort.Add(1)
	}
	return nil
}
