package sql

import (
	"fmt"
	"strings"

	"repro/internal/relational"
)

// eval evaluates a scalar (non-aggregate) expression against one row of the
// working relation.
func eval(rel *relation, row relational.Row, e Expr) (relational.Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Value, nil
	case *ColumnRef:
		i, err := rel.resolve(x)
		if err != nil {
			return relational.Null(), err
		}
		return row[i], nil
	case *NotExpr:
		v, err := eval(rel, row, x.Inner)
		if err != nil {
			return relational.Null(), err
		}
		if v.IsNull() {
			return relational.Null(), nil
		}
		return relational.Bool(!v.AsBool()), nil
	case *IsNullExpr:
		v, err := eval(rel, row, x.Inner)
		if err != nil {
			return relational.Null(), err
		}
		return relational.Bool(v.IsNull() != x.Negate), nil
	case *InExpr:
		v, err := eval(rel, row, x.Inner)
		if err != nil {
			return relational.Null(), err
		}
		if v.IsNull() {
			return relational.Null(), nil
		}
		sawNull := false
		for _, item := range x.List {
			iv, err := eval(rel, row, item)
			if err != nil {
				return relational.Null(), err
			}
			if iv.IsNull() {
				sawNull = true
				continue
			}
			if relational.Equal(v, iv) {
				return relational.Bool(true), nil
			}
		}
		if sawNull {
			// x IN (..., NULL) is UNKNOWN when no listed value matched.
			return relational.Null(), nil
		}
		return relational.Bool(false), nil
	case *BinaryExpr:
		return evalBinary(rel, row, x)
	case *AggExpr:
		return relational.Null(), fmt.Errorf("sql: aggregate %s outside GROUP BY context", x.SQL())
	}
	return relational.Null(), fmt.Errorf("sql: cannot evaluate %T", e)
}

func evalBinary(rel *relation, row relational.Row, x *BinaryExpr) (relational.Value, error) {
	// Short-circuit logical operators.
	switch x.Op {
	case OpAnd:
		l, err := eval(rel, row, x.Left)
		if err != nil {
			return relational.Null(), err
		}
		if !l.IsNull() && !l.AsBool() {
			return relational.Bool(false), nil
		}
		r, err := eval(rel, row, x.Right)
		if err != nil {
			return relational.Null(), err
		}
		if !r.IsNull() && !r.AsBool() {
			return relational.Bool(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return relational.Null(), nil
		}
		return relational.Bool(true), nil
	case OpOr:
		l, err := eval(rel, row, x.Left)
		if err != nil {
			return relational.Null(), err
		}
		if !l.IsNull() && l.AsBool() {
			return relational.Bool(true), nil
		}
		r, err := eval(rel, row, x.Right)
		if err != nil {
			return relational.Null(), err
		}
		if !r.IsNull() && r.AsBool() {
			return relational.Bool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return relational.Null(), nil
		}
		return relational.Bool(false), nil
	}

	l, err := eval(rel, row, x.Left)
	if err != nil {
		return relational.Null(), err
	}
	r, err := eval(rel, row, x.Right)
	if err != nil {
		return relational.Null(), err
	}
	if l.IsNull() || r.IsNull() {
		return relational.Null(), nil
	}

	switch x.Op {
	case OpEq:
		return relational.Bool(relational.Compare(l, r) == 0), nil
	case OpNe:
		return relational.Bool(relational.Compare(l, r) != 0), nil
	case OpLt:
		return relational.Bool(relational.Compare(l, r) < 0), nil
	case OpLe:
		return relational.Bool(relational.Compare(l, r) <= 0), nil
	case OpGt:
		return relational.Bool(relational.Compare(l, r) > 0), nil
	case OpGe:
		return relational.Bool(relational.Compare(l, r) >= 0), nil
	case OpAdd, OpSub, OpMul, OpDiv:
		return evalArith(x.Op, l, r)
	case OpLike:
		return relational.Bool(likeMatch(l.AsString(), r.AsString())), nil
	case OpMatch:
		return relational.Bool(MatchText(l.AsString(), r.AsString())), nil
	}
	return relational.Null(), fmt.Errorf("sql: unsupported binary operator %d", x.Op)
}

func evalArith(op BinaryOp, l, r relational.Value) (relational.Value, error) {
	if l.Type() == relational.TypeString || r.Type() == relational.TypeString {
		if op == OpAdd {
			return relational.String_(l.AsString() + r.AsString()), nil
		}
		return relational.Null(), fmt.Errorf("sql: arithmetic on strings")
	}
	useFloat := l.Type() == relational.TypeFloat || r.Type() == relational.TypeFloat || op == OpDiv
	if useFloat {
		lf, rf := l.AsFloat(), r.AsFloat()
		switch op {
		case OpAdd:
			return relational.Float(lf + rf), nil
		case OpSub:
			return relational.Float(lf - rf), nil
		case OpMul:
			return relational.Float(lf * rf), nil
		case OpDiv:
			if rf == 0 {
				return relational.Null(), nil
			}
			return relational.Float(lf / rf), nil
		}
	}
	li, ri := l.AsInt(), r.AsInt()
	switch op {
	case OpAdd:
		return relational.Int(li + ri), nil
	case OpSub:
		return relational.Int(li - ri), nil
	case OpMul:
		return relational.Int(li * ri), nil
	}
	return relational.Null(), fmt.Errorf("sql: unsupported arithmetic")
}

// likeMatch implements SQL LIKE with % and _ wildcards, case-insensitively
// (QUEST generates LIKE predicates from user keywords, where
// case-insensitivity is the useful behaviour; documented dialect choice).
func likeMatch(s, pattern string) bool {
	return likeRec(strings.ToLower(s), strings.ToLower(pattern))
}

func likeRec(s, p string) bool {
	// Iterative matching with backtracking on '%'.
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star = pi
			match = si
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// MatchText implements the MATCH operator: every token of the query must
// appear as a token of the text (case-insensitive containment). This is the
// engine-level analogue of the full-text search function the paper assumes
// the DBMS provides.
func MatchText(text, query string) bool {
	qt := FoldTokens(query)
	if len(qt) == 0 {
		return false
	}
	tt := FoldTokens(text)
	set := make(map[string]bool, len(tt))
	for _, t := range tt {
		set[t] = true
	}
	for _, q := range qt {
		if !set[q] {
			return false
		}
	}
	return true
}

// evalAggregate evaluates an expression that may contain aggregate calls
// over a group. Non-aggregate sub-expressions are evaluated on the group's
// first row (the usual behaviour for grouped columns).
func evalAggregate(rel *relation, g *group, e Expr) (relational.Value, error) {
	switch x := e.(type) {
	case *AggExpr:
		return computeAgg(rel, g, x)
	case *BinaryExpr:
		if !containsAgg(x) {
			return evalOnFirst(rel, g, e)
		}
		l, err := evalAggregate(rel, g, x.Left)
		if err != nil {
			return relational.Null(), err
		}
		r, err := evalAggregate(rel, g, x.Right)
		if err != nil {
			return relational.Null(), err
		}
		tmp := &relation{}
		return evalBinary(tmp, nil, &BinaryExpr{
			Op:    x.Op,
			Left:  &Literal{Value: l},
			Right: &Literal{Value: r},
		})
	case *NotExpr:
		v, err := evalAggregate(rel, g, x.Inner)
		if err != nil {
			return relational.Null(), err
		}
		if v.IsNull() {
			return relational.Null(), nil
		}
		return relational.Bool(!v.AsBool()), nil
	default:
		return evalOnFirst(rel, g, e)
	}
}

func evalOnFirst(rel *relation, g *group, e Expr) (relational.Value, error) {
	if len(g.rows) == 0 {
		return relational.Null(), nil
	}
	return eval(rel, g.rows[0], e)
}

func computeAgg(rel *relation, g *group, a *AggExpr) (relational.Value, error) {
	if a.Star {
		return relational.Int(int64(len(g.rows))), nil
	}
	var (
		count int64
		sum   float64
		mn    relational.Value
		mx    relational.Value
		isInt = true
	)
	for _, row := range g.rows {
		v, err := eval(rel, row, a.Arg)
		if err != nil {
			return relational.Null(), err
		}
		if v.IsNull() {
			continue
		}
		count++
		if v.Type() == relational.TypeFloat {
			isInt = false
		}
		sum += v.AsFloat()
		if mn.IsNull() || relational.Compare(v, mn) < 0 {
			mn = v
		}
		if mx.IsNull() || relational.Compare(v, mx) > 0 {
			mx = v
		}
	}
	switch a.Func {
	case AggCount:
		return relational.Int(count), nil
	case AggSum:
		if count == 0 {
			return relational.Null(), nil
		}
		if isInt {
			return relational.Int(int64(sum)), nil
		}
		return relational.Float(sum), nil
	case AggAvg:
		if count == 0 {
			return relational.Null(), nil
		}
		return relational.Float(sum / float64(count)), nil
	case AggMin:
		return mn, nil
	case AggMax:
		return mx, nil
	}
	return relational.Null(), fmt.Errorf("sql: unknown aggregate")
}
