package sql

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/relational"
)

// LazyIndexThreshold is the table size above which the planner builds an
// on-demand equality index for a non-key column instead of scanning: below
// it a filtered scan is cheaper than the build, above it the build
// amortizes after a single query. Declared key columns (PK, FK and
// FK-referenced) always qualify for index access regardless of size.
const LazyIndexThreshold = 256

// Access-path labels used in ScanPlan.Access.
const (
	AccessFullScan = "full-scan"
	AccessIndexEq  = "index-eq"
)

// Join-strategy labels used in JoinPlan.Strategy.
const (
	StrategyHash       = "hash"
	StrategyNestedLoop = "nested-loop"
)

// ScanPlan describes how one base table is read: its access path, the
// predicates pushed down below the joins, and the planner's cardinality
// estimate.
type ScanPlan struct {
	Table   string
	Binding string
	Access  string // AccessFullScan or AccessIndexEq
	// IndexColumn and Lookup describe the index probe (AccessIndexEq only).
	IndexColumn string
	Lookup      string
	// Pushed holds the SQL text of the single-table WHERE conjuncts
	// evaluated during the scan, below every join.
	Pushed  []string
	EstRows int
}

// JoinPlan describes one join step over the accumulated left relation.
type JoinPlan struct {
	Table    string
	Binding  string
	Strategy string // StrategyHash or StrategyNestedLoop
	// BuildLeft is set when the hash join builds on the (estimated
	// smaller) accumulated left side and probes with the right table,
	// instead of the default build-right.
	BuildLeft bool
	Outer     bool
	Keys      []string // equi-join key pairs ("l = r")
	Residual  []string // non-equi ON conjuncts re-checked per candidate
	Filter    []string // WHERE conjuncts placed directly after this join
	EstRows   int
}

// QueryPlan is the introspectable execution plan of a SELECT: which access
// path each table uses, how joins run, and where each WHERE conjunct was
// placed. Tests and benchmarks assert against it; Explain renders it.
type QueryPlan struct {
	Scans []ScanPlan
	Joins []JoinPlan
	// Filter holds WHERE conjuncts that could not be placed below or
	// between joins (aggregates, unresolvable references) and run over the
	// final joined relation.
	Filter []string
}

// PlannerStats is a snapshot of the package-wide planner counters, the
// operator-facing view of what the planning layer is doing (surfaced by
// cmd/queststats).
type PlannerStats struct {
	Plans              uint64 // plans constructed (cache misses included)
	PlanCacheHits      uint64
	PlanCacheMisses    uint64
	IndexScans         uint64 // scans routed through an equality index
	FullScans          uint64
	LazyIndexBuilds    uint64 // index builds the planner itself triggered
	HashJoins          uint64
	NestedLoopJoins    uint64
	BuildSideSwaps     uint64 // hash joins that built on the left side
	PushedPredicates   uint64 // WHERE conjuncts pushed below a join
	ExistsFastPaths    uint64 // Exists calls served by the streaming path
	LimitShortCircuits uint64 // Execute calls that stopped at LIMIT early
}

type plannerCounters struct {
	plans, cacheHits, cacheMisses      atomic.Uint64
	indexScans, fullScans, lazyBuilds  atomic.Uint64
	hashJoins, nestedLoops, buildSwaps atomic.Uint64
	pushed, existsFast, limitShort     atomic.Uint64
}

var counters plannerCounters

// Stats returns the current planner counters.
func Stats() PlannerStats {
	return PlannerStats{
		Plans:              counters.plans.Load(),
		PlanCacheHits:      counters.cacheHits.Load(),
		PlanCacheMisses:    counters.cacheMisses.Load(),
		IndexScans:         counters.indexScans.Load(),
		FullScans:          counters.fullScans.Load(),
		LazyIndexBuilds:    counters.lazyBuilds.Load(),
		HashJoins:          counters.hashJoins.Load(),
		NestedLoopJoins:    counters.nestedLoops.Load(),
		BuildSideSwaps:     counters.buildSwaps.Load(),
		PushedPredicates:   counters.pushed.Load(),
		ExistsFastPaths:    counters.existsFast.Load(),
		LimitShortCircuits: counters.limitShort.Load(),
	}
}

// ResetStats zeroes the planner counters (tests and benchmarks).
func ResetStats() { counters = plannerCounters{} }

// planCache memoizes plans across Execute/Exists calls. The key embeds the
// database identity, its data version (any Insert changes the version, so
// cached index probes can never serve stale ordinals) and the canonical
// SQL text; the engine re-executes cached explanations on every search, so
// plan reuse is the common case.
var planCache = cache.New[string, *plannedQuery](512)

// scanNode is the planned read of one base table. It deliberately stores
// no *relational.Table: cached plans must not pin a database's row data
// (the plan cache outlives short-lived databases), so executions re-bind
// tables by name (plannedQuery.bind). The captured probe ordinals are
// plain ints and stay valid for the (database ID, data version) the plan
// was keyed under.
type scanNode struct {
	tr   TableRef
	cols []boundCol // this table's bound columns only
	// pushed predicates are evaluated against cols during the scan.
	pushed []Expr
	// idxOrd/idxCol/idxVal select the equality-index probe; idxOrd < 0
	// means full scan.
	idxOrd int
	idxCol string
	idxVal relational.Value
	// ords are the probe results captured at plan time (shared, read-only).
	ords []int
	est  int
}

// joinStep is one planned join of the accumulated left relation with a
// base-table scan.
type joinStep struct {
	right    *scanNode
	jc       JoinClause
	lk, rk   []int  // equi-key ordinals (accumulated-left / right-local)
	residual []Expr // non-equi ON conjuncts
	where    []Expr // WHERE conjuncts placed right after this join
	// buildLeft materializes the accumulated left side and probes with the
	// right scan (inner hash joins whose left side is estimated smaller).
	buildLeft bool
	outCols   []boundCol // accumulated columns after this join
	est       int
}

// plannedQuery is an executable plan: a base scan, join steps, and the
// residual top-level filter. It is immutable after planning — every
// execution keeps its own state — so one plan can serve concurrent
// Execute/Exists calls (the engine's parallel validation relies on this).
type plannedQuery struct {
	base        *scanNode
	steps       []*joinStep
	outCols     []boundCol
	finalFilter []Expr
	plan        *QueryPlan
}

// errStopIteration is the internal sentinel the streaming executor uses to
// unwind once a row limit (LIMIT short-circuit, Exists) is satisfied.
var errStopIteration = errors.New("sql: stop iteration")

// Plan returns the execution plan the executor would use for the
// statement, without running it.
func Plan(db *relational.Database, stmt *SelectStmt) (*QueryPlan, error) {
	p, err := planSelect(db, stmt)
	if err != nil {
		return nil, err
	}
	return p.plan, nil
}

// planSelect builds (or retrieves from the plan cache) the execution plan
// for a statement. The key is the canonical SQL text (re-rendered per call
// — statements carry no cache slot, and the text is what makes the key
// independent of pointer identity and mutation) prefixed with the database
// identity and data version.
func planSelect(db *relational.Database, stmt *SelectStmt) (*plannedQuery, error) {
	var kb strings.Builder
	kb.WriteString(strconv.FormatUint(db.ID(), 10))
	kb.WriteByte(0)
	kb.WriteString(strconv.FormatUint(db.DataVersion(), 10))
	kb.WriteByte(0)
	kb.WriteString(stmt.SQL())
	key := kb.String()
	if p, ok := planCache.Get(key); ok {
		counters.cacheHits.Add(1)
		return p, nil
	}
	counters.cacheMisses.Add(1)
	p, err := buildPlan(db, stmt)
	if err != nil {
		return nil, err
	}
	planCache.Put(key, p)
	return p, nil
}

func newScanNode(db *relational.Database, tr TableRef) (*scanNode, *relational.Table, error) {
	t := db.Table(tr.Table)
	if t == nil {
		return nil, nil, fmt.Errorf("sql: unknown table %s", tr.Table)
	}
	binding := strings.ToLower(tr.Binding())
	n := &scanNode{tr: tr, idxOrd: -1, est: t.Len()}
	for _, c := range t.Schema.Columns {
		n.cols = append(n.cols, boundCol{
			binding: binding,
			name:    strings.ToLower(c.Name),
			display: tr.Binding() + "." + c.Name,
		})
	}
	return n, t, nil
}

// collectRefs appends every column reference inside e to out.
func collectRefs(e Expr, out *[]*ColumnRef) {
	switch x := e.(type) {
	case *ColumnRef:
		*out = append(*out, x)
	case *BinaryExpr:
		collectRefs(x.Left, out)
		collectRefs(x.Right, out)
	case *NotExpr:
		collectRefs(x.Inner, out)
	case *IsNullExpr:
		collectRefs(x.Inner, out)
	case *InExpr:
		collectRefs(x.Inner, out)
		for _, i := range x.List {
			collectRefs(i, out)
		}
	case *AggExpr:
		if x.Arg != nil {
			collectRefs(x.Arg, out)
		}
	}
}

func buildPlan(db *relational.Database, stmt *SelectStmt) (*plannedQuery, error) {
	counters.plans.Add(1)
	base, baseTable, err := newScanNode(db, stmt.From)
	if err != nil {
		return nil, err
	}
	nodes := []*scanNode{base}
	tables := []*relational.Table{baseTable}
	p := &plannedQuery{base: base}
	outCols := append([]boundCol{}, base.cols...)
	// nodeStart[i] is the ordinal in outCols where nodes[i]'s columns
	// begin; nodeStep[i] is the join-step index that introduced nodes[i]
	// (-1 for the base table).
	nodeStart := []int{0}
	nodeStep := []int{-1}
	for si, jc := range stmt.Joins {
		right, rightTable, err := newScanNode(db, jc.Table)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, right)
		tables = append(tables, rightTable)
		nodeStart = append(nodeStart, len(outCols))
		nodeStep = append(nodeStep, si)
		outCols = append(outCols, right.cols...)
		p.steps = append(p.steps, &joinStep{right: right, jc: jc})
	}
	p.outCols = outCols
	full := &relation{cols: outCols}

	// ownerNode maps a resolved column ordinal to the scan node owning it.
	ownerNode := func(ord int) int {
		for i := len(nodeStart) - 1; i >= 0; i-- {
			if ord >= nodeStart[i] {
				return i
			}
		}
		return 0
	}

	// Split the WHERE conjunction and place each conjunct as low as
	// legality allows: single-table conjuncts go below the joins into the
	// owning scan (unless that table is null-extended by a LEFT join —
	// pushing below would resurrect rows the predicate must remove),
	// multi-table conjuncts go right after the earliest join that sees all
	// their tables, and everything else (aggregates, references that do
	// not resolve) stays in the final filter so errors surface exactly
	// where the un-planned interpreter would raise them: per joined row.
	if stmt.Where != nil {
		for _, c := range splitAnd(stmt.Where) {
			p.placeConjunct(c, full, ownerNode, nodes, nodeStep)
		}
	}

	// Access-path selection per scan: route one equality predicate through
	// a hash index when the column is index-worthy.
	for i, n := range nodes {
		if err := n.chooseAccess(tables[i], db.Schema.KeyColumns(n.tr.Table)); err != nil {
			return nil, err
		}
	}

	// Join planning: equi-key detection against the accumulated relation,
	// then build-side selection by estimated cardinality.
	accum := &relation{cols: append([]boundCol{}, base.cols...)}
	leftEst := base.est
	for _, st := range p.steps {
		rightRel := &relation{cols: st.right.cols}
		st.lk, st.rk, st.residual = equiJoinKeys(accum, rightRel, st.jc.On)
		accum = &relation{cols: append(append([]boundCol{}, accum.cols...), st.right.cols...)}
		st.outCols = accum.cols
		if len(st.lk) > 0 {
			// Build on the estimated-smaller side. LEFT joins must probe
			// from the left to track unmatched left rows, so they always
			// build right.
			st.buildLeft = !st.jc.Left && leftEst < st.right.est
			if leftEst > st.right.est {
				st.est = leftEst
			} else {
				st.est = st.right.est
			}
		} else {
			st.est = leftEst * st.right.est
			if st.est < leftEst { // overflow guard
				st.est = leftEst
			}
		}
		if st.jc.Left && st.est < leftEst {
			st.est = leftEst // outer join preserves every left row
		}
		leftEst = st.est
	}

	p.plan = p.describe()
	return p, nil
}

// placeConjunct assigns one WHERE conjunct to its lowest legal position.
func (p *plannedQuery) placeConjunct(c Expr, full *relation, ownerNode func(int) int,
	nodes []*scanNode, nodeStep []int) {
	if containsAgg(c) {
		p.finalFilter = append(p.finalFilter, c)
		return
	}
	var refs []*ColumnRef
	collectRefs(c, &refs)
	involved := make(map[int]bool)
	for _, r := range refs {
		ord, err := full.resolve(r)
		if err != nil {
			// Unknown or ambiguous reference: keep the conjunct at the
			// top so the interpreter raises the identical per-row error.
			p.finalFilter = append(p.finalFilter, c)
			return
		}
		involved[ownerNode(ord)] = true
	}
	if len(involved) == 0 {
		// Constant conjunct: evaluate during the base scan (TRUE keeps
		// everything, FALSE/NULL empties the result either way).
		p.base.pushed = append(p.base.pushed, c)
		return
	}
	// The conjunct must run at or after the step where its last table
	// appears; null-extended (LEFT-joined) tables additionally pin it to
	// after their own join.
	at := -1
	single := -1
	for ni := range involved {
		step := nodeStep[ni]
		if step > at {
			at = step
		}
		single = ni
	}
	if len(involved) == 1 && (single == 0 || !p.steps[nodeStep[single]].jc.Left) {
		nodes[single].pushed = append(nodes[single].pushed, c)
		if single != 0 {
			counters.pushed.Add(1)
		}
		return
	}
	if at < 0 {
		// Single-table conjunct on the base table of a LEFT join chain is
		// handled above; at < 0 here means base-only multi-ref — push it.
		p.base.pushed = append(p.base.pushed, c)
		return
	}
	p.steps[at].where = append(p.steps[at].where, c)
}

// chooseAccess picks the scan's access path: one equality conjunct
// `col = literal` routed through a hash index when the column is a
// declared key, already indexed, or the table is large enough that an
// on-demand build pays for itself. The chosen conjunct is removed from the
// pushed list — index probes are exact under Value.Key semantics, so
// re-evaluating it per row would be wasted work.
func (n *scanNode) chooseAccess(t *relational.Table, keyCols map[string]bool) error {
	local := &relation{cols: n.cols}
	best := -1
	bestPK := false
	var bestOrd int
	var bestVal relational.Value
	for ci, c := range n.pushed {
		be, ok := c.(*BinaryExpr)
		if !ok || be.Op != OpEq {
			continue
		}
		ref, lit := be.Left, be.Right
		if _, isRef := ref.(*ColumnRef); !isRef {
			ref, lit = be.Right, be.Left
		}
		cr, okRef := ref.(*ColumnRef)
		l, okLit := lit.(*Literal)
		if !okRef || !okLit || l.Value.IsNull() {
			continue
		}
		ord, err := local.resolve(cr)
		if err != nil {
			continue
		}
		colName := t.Schema.Columns[ord].Name
		indexed := keyCols[strings.ToLower(colName)] || t.HasIndex(colName)
		if !indexed && t.Len() < LazyIndexThreshold {
			continue
		}
		isPK := strings.EqualFold(t.Schema.PrimaryKey, colName)
		if best < 0 || (isPK && !bestPK) {
			best, bestPK, bestOrd, bestVal = ci, isPK, ord, l.Value
		}
	}
	if best < 0 {
		counters.fullScans.Add(1)
		if len(n.pushed) > 0 {
			// Crude selectivity: each residual predicate halves the scan.
			n.est = t.Len() >> uint(min(len(n.pushed), 4))
			if n.est < 1 {
				n.est = 1
			}
		}
		return nil
	}
	colName := t.Schema.Columns[bestOrd].Name
	if !bestPK && !t.HasIndex(colName) {
		counters.lazyBuilds.Add(1)
	}
	ords, err := t.LookupOrdinals(colName, bestVal)
	if err != nil {
		return err
	}
	counters.indexScans.Add(1)
	n.idxOrd = bestOrd
	n.idxCol = colName
	n.idxVal = bestVal
	n.ords = ords
	n.pushed = append(n.pushed[:best:best], n.pushed[best+1:]...)
	n.est = len(ords)
	return nil
}

// describe freezes the plan into its introspectable form.
func (p *plannedQuery) describe() *QueryPlan {
	qp := &QueryPlan{}
	nodes := []*scanNode{p.base}
	for _, st := range p.steps {
		nodes = append(nodes, st.right)
	}
	for _, n := range nodes {
		sp := ScanPlan{
			Table:   n.tr.Table,
			Binding: n.tr.Binding(),
			Access:  AccessFullScan,
			EstRows: n.est,
		}
		if n.idxOrd >= 0 {
			sp.Access = AccessIndexEq
			sp.IndexColumn = n.idxCol
			sp.Lookup = n.idxVal.SQL()
		}
		for _, c := range n.pushed {
			sp.Pushed = append(sp.Pushed, c.SQL())
		}
		qp.Scans = append(qp.Scans, sp)
	}
	lcols := p.base.cols
	for _, st := range p.steps {
		jp := JoinPlan{
			Table:     st.right.tr.Table,
			Binding:   st.right.tr.Binding(),
			Strategy:  StrategyNestedLoop,
			BuildLeft: st.buildLeft,
			Outer:     st.jc.Left,
			EstRows:   st.est,
		}
		if len(st.lk) > 0 {
			jp.Strategy = StrategyHash
			for i := range st.lk {
				jp.Keys = append(jp.Keys, lcols[st.lk[i]].display+" = "+st.right.cols[st.rk[i]].display)
			}
		}
		for _, r := range st.residual {
			jp.Residual = append(jp.Residual, r.SQL())
		}
		for _, w := range st.where {
			jp.Filter = append(jp.Filter, w.SQL())
		}
		qp.Joins = append(qp.Joins, jp)
		lcols = st.outCols
	}
	for _, c := range p.finalFilter {
		qp.Filter = append(qp.Filter, c.SQL())
	}
	return qp
}

// ---- streaming execution ----

// evalConjuncts reports whether every conjunct evaluates to TRUE for the
// row (SQL three-valued semantics: NULL rejects).
func evalConjuncts(rel *relation, row relational.Row, cs []Expr) (bool, error) {
	for _, c := range cs {
		v, err := eval(rel, row, c)
		if err != nil {
			return false, err
		}
		if !v.AsBool() {
			return false, nil
		}
	}
	return true, nil
}

// boundTables are the per-execution table bindings of a plan: entry 0 is
// the base scan's table, entry i+1 the right table of join step i. Cached
// plans store no table pointers, so every run re-binds against the (same)
// database first.
type boundTables []*relational.Table

// bind resolves the plan's table names against db. The plan cache keys on
// the database ID, so a cached plan only ever meets the database it was
// built for; the nil check guards programmer error, not a live code path.
func (p *plannedQuery) bind(db *relational.Database) (boundTables, error) {
	bt := make(boundTables, 0, len(p.steps)+1)
	for _, tr := range append([]TableRef{p.base.tr}, joinRefs(p.steps)...) {
		t := db.Table(tr.Table)
		if t == nil {
			return nil, fmt.Errorf("sql: unknown table %s", tr.Table)
		}
		bt = append(bt, t)
	}
	return bt, nil
}

func joinRefs(steps []*joinStep) []TableRef {
	out := make([]TableRef, len(steps))
	for i, st := range steps {
		out[i] = st.right.tr
	}
	return out
}

// streamScan yields the scan's rows (index probe or full scan) that pass
// its pushed predicates.
func (p *plannedQuery) streamScan(n *scanNode, t *relational.Table, emit func(relational.Row) error) error {
	local := &relation{cols: n.cols}
	yield := func(row relational.Row) error {
		ok, err := evalConjuncts(local, row, n.pushed)
		if err != nil || !ok {
			return err
		}
		return emit(row)
	}
	if n.idxOrd >= 0 {
		for _, o := range n.ords {
			if err := yield(t.Row(o)); err != nil {
				return err
			}
		}
		return nil
	}
	for _, row := range t.Rows() {
		if err := yield(row); err != nil {
			return err
		}
	}
	return nil
}

// stream yields the rows of the relation after join step i (i == -1 is the
// base scan), with that step's placed WHERE conjuncts applied.
func (p *plannedQuery) stream(i int, bt boundTables, emit func(relational.Row) error) error {
	if i < 0 {
		return p.streamScan(p.base, bt[0], emit)
	}
	st := p.steps[i]
	outRel := &relation{cols: st.outCols}
	// filtered applies the step's placed WHERE conjuncts before emitting.
	filtered := func(row relational.Row) error {
		ok, err := evalConjuncts(outRel, row, st.where)
		if err != nil || !ok {
			return err
		}
		return emit(row)
	}
	concat := func(l, r relational.Row) relational.Row {
		row := make(relational.Row, 0, len(l)+len(r))
		row = append(row, l...)
		return append(row, r...)
	}

	if len(st.lk) == 0 {
		counters.nestedLoops.Add(1)
		var rightRows []relational.Row
		if err := p.streamScan(st.right, bt[i+1], func(r relational.Row) error {
			rightRows = append(rightRows, r)
			return nil
		}); err != nil {
			return err
		}
		return p.stream(i-1, bt, func(lrow relational.Row) error {
			matched := false
			for _, rrow := range rightRows {
				cand := concat(lrow, rrow)
				v, err := eval(outRel, cand, st.jc.On)
				if err != nil {
					return err
				}
				if !v.AsBool() {
					continue
				}
				matched = true
				if err := filtered(cand); err != nil {
					return err
				}
			}
			if st.jc.Left && !matched {
				return filtered(concat(lrow, nullRow(len(st.right.cols))))
			}
			return nil
		})
	}

	counters.hashJoins.Add(1)
	if st.buildLeft {
		counters.buildSwaps.Add(1)
		// Materialize the (smaller) accumulated left side, probe with the
		// right scan. Inner joins only, so no match tracking is needed.
		var leftRows []relational.Row
		if err := p.stream(i-1, bt, func(l relational.Row) error {
			leftRows = append(leftRows, l)
			return nil
		}); err != nil {
			return err
		}
		build := make(map[uint64][]int, len(leftRows))
		for li, lrow := range leftRows {
			k, null := joinKey(lrow, st.lk)
			if null {
				continue
			}
			build[k] = append(build[k], li)
		}
		return p.streamScan(st.right, bt[i+1], func(rrow relational.Row) error {
			k, null := joinKey(rrow, st.rk)
			if null {
				return nil
			}
			for _, li := range build[k] {
				if !joinKeysEqual(leftRows[li], st.lk, rrow, st.rk) {
					continue
				}
				cand := concat(leftRows[li], rrow)
				ok, err := evalConjuncts(outRel, cand, st.residual)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
				if err := filtered(cand); err != nil {
					return err
				}
			}
			return nil
		})
	}

	// Default hash join: build on the right scan, probe with the streamed
	// left side (required for LEFT joins, which null-extend unmatched left
	// rows).
	var rightRows []relational.Row
	if err := p.streamScan(st.right, bt[i+1], func(r relational.Row) error {
		rightRows = append(rightRows, r)
		return nil
	}); err != nil {
		return err
	}
	build := make(map[uint64][]int, len(rightRows))
	for ri, rrow := range rightRows {
		k, null := joinKey(rrow, st.rk)
		if null {
			continue
		}
		build[k] = append(build[k], ri)
	}
	return p.stream(i-1, bt, func(lrow relational.Row) error {
		matched := false
		if k, null := joinKey(lrow, st.lk); !null {
			for _, ri := range build[k] {
				if !joinKeysEqual(lrow, st.lk, rightRows[ri], st.rk) {
					continue
				}
				cand := concat(lrow, rightRows[ri])
				ok, err := evalConjuncts(outRel, cand, st.residual)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
				matched = true
				if err := filtered(cand); err != nil {
					return err
				}
			}
		}
		if st.jc.Left && !matched {
			return filtered(concat(lrow, nullRow(len(st.right.cols))))
		}
		return nil
	})
}

// run streams the fully joined and filtered relation to emit. Returning
// errStopIteration from emit stops the pipeline without error.
func (p *plannedQuery) run(db *relational.Database, emit func(relational.Row) error) error {
	bt, err := p.bind(db)
	if err != nil {
		return err
	}
	fullRel := &relation{cols: p.outCols}
	wrapped := func(row relational.Row) error {
		ok, err := evalConjuncts(fullRel, row, p.finalFilter)
		if err != nil || !ok {
			return err
		}
		return emit(row)
	}
	err = p.stream(len(p.steps)-1, bt, wrapped)
	if errors.Is(err, errStopIteration) {
		return nil
	}
	return err
}

// materialize collects at most limit rows (limit < 0 collects everything);
// stopped reports whether the pipeline actually cut off early at the cap.
func (p *plannedQuery) materialize(db *relational.Database, limit int) (rel *relation, stopped bool, err error) {
	rel = &relation{cols: p.outCols}
	err = p.run(db, func(row relational.Row) error {
		rel.rows = append(rel.rows, row)
		if limit >= 0 && len(rel.rows) >= limit {
			stopped = true
			return errStopIteration
		}
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	return rel, stopped, nil
}

// Exists reports whether the statement yields at least one row, stopping
// at the first surviving tuple instead of materializing the result. This
// is the execution mode behind validation queries (core's PruneEmpty):
// their cost stops scaling with result size.
func Exists(db *relational.Database, stmt *SelectStmt) (bool, error) {
	if stmt.Limit == 0 {
		return false, nil
	}
	if len(stmt.GroupBy) > 0 || anyAgg(stmt) || (stmt.Distinct && stmt.Offset > 0) {
		// Aggregation changes the row count (a global aggregate always
		// yields one row) and DISTINCT interacts with OFFSET; both are
		// rare for validation queries, so fall back to full execution.
		res, err := Execute(db, stmt)
		if err != nil {
			return false, err
		}
		return len(res.Rows) > 0, nil
	}
	p, err := planSelect(db, stmt)
	if err != nil {
		return false, err
	}
	counters.existsFast.Add(1)
	need := stmt.Offset + 1
	count := 0
	fullRel := &relation{cols: p.outCols}
	columns := projectionColumns(fullRel, stmt)
	err = p.run(db, func(row relational.Row) error {
		count++
		if count == 1 {
			// Error parity with Execute, which resolves the projection and
			// ORDER BY per row: evaluate them once on the first surviving
			// row so a statement Execute would reject (unknown projection
			// column, bad order key) fails here too instead of silently
			// reporting existence — pruneEmpty relies on that error to
			// mark validations as failed rather than empty.
			proj, err := projectRow(fullRel, row, stmt)
			if err != nil {
				return err
			}
			if _, err := orderKeysRow(fullRel, row, stmt, columns, proj); err != nil {
				return err
			}
		}
		if count >= need {
			return errStopIteration
		}
		return nil
	})
	if err != nil {
		return false, err
	}
	return count >= need, nil
}
