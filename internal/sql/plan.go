package sql

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/fulltext"
	"repro/internal/relational"
)

// LazyIndexThreshold is the table size above which the planner builds an
// on-demand index for a non-key column instead of scanning: below it a
// filtered scan is cheaper than the build, above it the build amortizes
// after a single query. It gates hash, sorted and MATCH-posting builds
// alike. Declared key columns (PK, FK and FK-referenced) always qualify for
// hash/sorted index access regardless of size.
const LazyIndexThreshold = 256

// ReorderMaxRelations caps the bottom-up join-order search: statements
// joining more relations than this keep their written order (the DP visits
// 2^n subsets, and QUEST's generated queries never come close to the cap).
const ReorderMaxRelations = 8

// Access-path labels used in ScanPlan.Access.
const (
	AccessFullScan      = "full-scan"
	AccessIndexEq       = "index-eq"
	AccessIndexRange    = "index-range"
	AccessIndexIn       = "index-in"
	AccessMatchPostings = "match-postings"
)

// Join-strategy labels used in JoinPlan.Strategy.
const (
	StrategyHash       = "hash"
	StrategyNestedLoop = "nested-loop"
)

// ScanPlan describes how one base table is read: its access path, the
// predicates pushed down below the joins, and the planner's cardinality
// estimate. ActualRows is -1 in plans that were not executed (Plan/Explain)
// and the number of rows the scan emitted otherwise — a lower bound when a
// LIMIT short-circuit stopped the pipeline early.
type ScanPlan struct {
	Table   string
	Binding string
	Access  string // one of the Access* labels
	// IndexColumn names the probed column and Lookup renders the probe
	// (index access paths only): "= 7" for an equality probe, the bound
	// conjunction for a range scan, the literal list for IN, the keyword
	// for MATCH postings.
	IndexColumn string
	Lookup      string
	// Pushed holds the SQL text of the single-table WHERE conjuncts
	// evaluated during the scan, below every join.
	Pushed     []string
	EstRows    int
	ActualRows int
	// StatsFreshness labels the statistics the estimate was costed from:
	// relational.StatsFresh, StatsBudgetStale or StatsSampled, or "" when
	// no column statistics were consulted for this table. ExplainAnalyze
	// renders it so estimate drift under write traffic is diagnosable.
	StatsFreshness string
}

// JoinPlan describes one join step over the accumulated left relation.
// ActualRows mirrors ScanPlan.ActualRows for the rows surviving this step.
type JoinPlan struct {
	Table    string
	Binding  string
	Strategy string // StrategyHash or StrategyNestedLoop
	// BuildLeft is set when the hash join builds on the (estimated
	// smaller) accumulated left side and probes with the right table,
	// instead of the default build-right.
	BuildLeft bool
	Outer     bool
	Keys      []string // equi-join key pairs ("l = r")
	Residual  []string // non-equi ON conjuncts re-checked per candidate
	Filter    []string // WHERE conjuncts placed directly after this join
	// On renders the join condition driving a nested-loop step.
	On         string
	EstRows    int
	ActualRows int
}

// QueryPlan is the introspectable execution plan of a SELECT: which access
// path each table uses, how joins run, where each WHERE conjunct was
// placed, and — after execution — the actual cardinality next to each
// estimate. Tests and benchmarks assert against it; Explain renders it.
type QueryPlan struct {
	Scans []ScanPlan
	Joins []JoinPlan
	// Filter holds WHERE conjuncts that could not be placed below or
	// between joins (aggregates, unresolvable references) and run over the
	// final joined relation.
	Filter []string
	// JoinOrder lists the relation bindings in execution order; Reordered
	// reports whether the join-order search moved away from the written
	// order.
	JoinOrder []string
	Reordered bool
}

// PlannerStats is a snapshot of the package-wide planner counters, the
// operator-facing view of what the planning layer is doing (surfaced by
// cmd/queststats).
type PlannerStats struct {
	Plans              uint64 // plans constructed (cache misses included)
	PlanCacheHits      uint64
	PlanCacheMisses    uint64
	IndexScans         uint64 // scans routed through an equality index
	RangeScans         uint64 // scans routed through a sorted-index range
	InScans            uint64 // scans served by unioned IN-list postings
	MatchScans         uint64 // scans served by full-text MATCH postings
	FullScans          uint64
	LazyIndexBuilds    uint64 // index builds the planner itself triggered
	JoinReorders       uint64 // plans whose join order moved off the written order
	HashJoins          uint64
	NestedLoopJoins    uint64
	BuildSideSwaps     uint64 // hash joins that built on the left side
	PushedPredicates   uint64 // WHERE conjuncts pushed below a join
	ExistsFastPaths    uint64 // Exists calls served by the streaming path
	LimitShortCircuits uint64 // Execute calls that stopped at LIMIT early
}

type plannerCounters struct {
	plans, cacheHits, cacheMisses      atomic.Uint64
	indexScans, fullScans, lazyBuilds  atomic.Uint64
	rangeScans, inScans, matchScans    atomic.Uint64
	joinReorders                       atomic.Uint64
	hashJoins, nestedLoops, buildSwaps atomic.Uint64
	pushed, existsFast, limitShort     atomic.Uint64
}

var counters plannerCounters

// Stats returns the current planner counters.
func Stats() PlannerStats {
	return PlannerStats{
		Plans:              counters.plans.Load(),
		PlanCacheHits:      counters.cacheHits.Load(),
		PlanCacheMisses:    counters.cacheMisses.Load(),
		IndexScans:         counters.indexScans.Load(),
		RangeScans:         counters.rangeScans.Load(),
		InScans:            counters.inScans.Load(),
		MatchScans:         counters.matchScans.Load(),
		FullScans:          counters.fullScans.Load(),
		LazyIndexBuilds:    counters.lazyBuilds.Load(),
		JoinReorders:       counters.joinReorders.Load(),
		HashJoins:          counters.hashJoins.Load(),
		NestedLoopJoins:    counters.nestedLoops.Load(),
		BuildSideSwaps:     counters.buildSwaps.Load(),
		PushedPredicates:   counters.pushed.Load(),
		ExistsFastPaths:    counters.existsFast.Load(),
		LimitShortCircuits: counters.limitShort.Load(),
	}
}

// ResetStats zeroes the planner counters (tests and benchmarks).
func ResetStats() { counters = plannerCounters{} }

// joinReorderOff disables the join-order search when set (benchmarks and
// ablations compare against the written-order plan). The flag participates
// in the plan-cache key, so toggling it never serves a plan built under the
// other setting.
var joinReorderOff atomic.Bool

// SetJoinReorder enables or disables the Selinger-style join-order search
// and returns the previous setting. It exists for benchmarks and A/B
// ablations (questbench E10); production traffic leaves it on.
func SetJoinReorder(on bool) (was bool) {
	return !joinReorderOff.Swap(!on)
}

// planCache memoizes plans across Execute/Exists calls. The key embeds the
// database identity, the version of every table the statement references
// (an Insert into a referenced table changes that version, so cached index
// probes can never serve stale ordinals — while inserts into unreferenced
// tables leave the key, and the cached plan, untouched), the reorder
// setting and the canonical SQL text; the engine re-executes cached
// explanations on every search, so plan reuse is the common case.
var planCache = cache.New[string, *plannedQuery](512)

// matchIndexCache memoizes per-attribute full-text indexes built for the
// MATCH access path, keyed on (database ID, table, column ordinal, table
// version): a table mutation changes the version, so stale postings are
// unreachable and age out of the LRU.
var matchIndexCache = cache.New[string, *fulltext.AttributeIndex](128)

// scanNode is the planned read of one base table. It deliberately stores
// no *relational.Table: cached plans must not pin a database's row data
// (the plan cache outlives short-lived databases), so executions re-bind
// tables by name (plannedQuery.bind). The captured probe ordinals are
// plain ints and stay valid for the (database ID, data version) the plan
// was keyed under.
type scanNode struct {
	tr   TableRef
	cols []boundCol // this table's bound columns only
	// pushed predicates are evaluated against cols during the scan.
	pushed []Expr
	// access is the chosen access path; idxCol/lookup describe the probe
	// and ords are its results captured at plan time (shared, read-only).
	access string
	idxCol string
	lookup string
	ords   []int
	est    int
	// vec holds the pushed conjuncts compiled for the selection-vector
	// filter; vecOK reports whether every conjunct compiled (all-or-nothing,
	// so the interpreted and vectorized paths never mix per scan).
	vec   []colPred
	vecOK bool
	// freshness records what kind of statistics (fresh / budget-stale /
	// sampled) est was costed from; "" when none were consulted.
	freshness string
}

// joinStep is one planned join of the accumulated left relation with a
// base-table scan.
type joinStep struct {
	right    *scanNode
	jc       JoinClause
	lk, rk   []int  // equi-key ordinals (accumulated-left / right-local)
	residual []Expr // non-equi ON conjuncts
	where    []Expr // WHERE conjuncts placed right after this join
	// buildLeft materializes the accumulated left side and probes with the
	// right scan (inner hash joins whose left side is estimated smaller).
	buildLeft bool
	outCols   []boundCol // accumulated columns after this join
	est       int
}

// plannedQuery is an executable plan: a base scan, join steps, and the
// residual top-level filter. It is immutable after planning — every
// execution keeps its own state — so one plan can serve concurrent
// Execute/Exists calls (the engine's parallel validation relies on this).
type plannedQuery struct {
	base        *scanNode
	steps       []*joinStep
	outCols     []boundCol
	finalFilter []Expr
	reordered   bool
	plan        *QueryPlan
}

// errStopIteration is the internal sentinel the streaming executor uses to
// unwind once a row limit (LIMIT short-circuit, Exists) is satisfied.
var errStopIteration = errors.New("sql: stop iteration")

// Plan returns the execution plan the executor would use for the
// statement, without running it.
func Plan(db *relational.Database, stmt *SelectStmt) (*QueryPlan, error) {
	p, err := planSelect(db, stmt)
	if err != nil {
		return nil, err
	}
	return p.plan, nil
}

// planSelect builds (or retrieves from the plan cache) the execution plan
// for a statement. The key is the canonical SQL text (re-rendered per call
// — statements carry no cache slot, and the text is what makes the key
// independent of pointer identity and mutation) prefixed with the database
// identity, the per-referenced-table versions and the reorder setting.
func planSelect(db *relational.Database, stmt *SelectStmt) (*plannedQuery, error) {
	// The reorder flag is read exactly once and threaded through the whole
	// build, so a concurrent SetJoinReorder toggle can never cache a plan
	// built under one setting beneath the other setting's key.
	reorder := !joinReorderOff.Load()
	var kb strings.Builder
	kb.WriteString(strconv.FormatUint(db.ID(), 10))
	kb.WriteByte(0)
	// Per-table versions, not the whole-database DataVersion: a write to a
	// table this statement never reads must not evict its plan.
	for _, tr := range stmt.Tables() {
		if t := db.Table(tr.Table); t != nil {
			kb.WriteString(tr.Table)
			kb.WriteByte('=')
			kb.WriteString(strconv.FormatUint(t.Version(), 10))
			kb.WriteByte(';')
		}
	}
	kb.WriteByte(0)
	if reorder {
		kb.WriteByte('r')
	} else {
		kb.WriteByte('w') // written order
	}
	kb.WriteByte(0)
	kb.WriteString(stmt.SQL())
	key := kb.String()
	if p, ok := planCache.Get(key); ok {
		counters.cacheHits.Add(1)
		return p, nil
	}
	counters.cacheMisses.Add(1)
	p, err := buildPlan(db, stmt, reorder)
	if err != nil {
		return nil, err
	}
	planCache.Put(key, p)
	return p, nil
}

func newScanNode(db *relational.Database, tr TableRef) (*scanNode, *relational.Table, error) {
	t := db.Table(tr.Table)
	if t == nil {
		return nil, nil, fmt.Errorf("sql: unknown table %s", tr.Table)
	}
	binding := strings.ToLower(tr.Binding())
	n := &scanNode{tr: tr, access: AccessFullScan, est: t.Len()}
	for _, c := range t.Schema.Columns {
		n.cols = append(n.cols, boundCol{
			binding: binding,
			name:    strings.ToLower(c.Name),
			display: tr.Binding() + "." + c.Name,
		})
	}
	return n, t, nil
}

// collectRefs appends every column reference inside e to out.
func collectRefs(e Expr, out *[]*ColumnRef) {
	switch x := e.(type) {
	case *ColumnRef:
		*out = append(*out, x)
	case *BinaryExpr:
		collectRefs(x.Left, out)
		collectRefs(x.Right, out)
	case *NotExpr:
		collectRefs(x.Inner, out)
	case *IsNullExpr:
		collectRefs(x.Inner, out)
	case *InExpr:
		collectRefs(x.Inner, out)
		for _, i := range x.List {
			collectRefs(i, out)
		}
	case *AggExpr:
		if x.Arg != nil {
			collectRefs(x.Arg, out)
		}
	}
}

func buildPlan(db *relational.Database, stmt *SelectStmt, reorder bool) (*plannedQuery, error) {
	counters.plans.Add(1)
	base, baseTable, err := newScanNode(db, stmt.From)
	if err != nil {
		return nil, err
	}
	nodes := []*scanNode{base}
	tables := []*relational.Table{baseTable}
	p := &plannedQuery{base: base}
	outCols := append([]boundCol{}, base.cols...)
	// nodeStart[i] is the ordinal in outCols where nodes[i]'s columns
	// begin; nodeStep[i] is the join-step index that introduced nodes[i]
	// (-1 for the base table).
	nodeStart := []int{0}
	nodeStep := []int{-1}
	for si, jc := range stmt.Joins {
		right, rightTable, err := newScanNode(db, jc.Table)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, right)
		tables = append(tables, rightTable)
		nodeStart = append(nodeStart, len(outCols))
		nodeStep = append(nodeStep, si)
		outCols = append(outCols, right.cols...)
		p.steps = append(p.steps, &joinStep{right: right, jc: jc})
	}
	p.outCols = outCols
	full := &relation{cols: outCols}

	// ownerNode maps a resolved column ordinal to the scan node owning it.
	ownerNode := func(ord int) int {
		for i := len(nodeStart) - 1; i >= 0; i-- {
			if ord >= nodeStart[i] {
				return i
			}
		}
		return 0
	}

	// Split the WHERE conjunction and place each conjunct as low as
	// legality allows: single-table conjuncts go below the joins into the
	// owning scan (unless that table is null-extended by a LEFT join —
	// pushing below would resurrect rows the predicate must remove),
	// multi-table conjuncts go right after the earliest join that sees all
	// their tables, and everything else (aggregates, references that do
	// not resolve) stays in the final filter so errors surface exactly
	// where the un-planned interpreter would raise them: per joined row.
	if stmt.Where != nil {
		for _, c := range splitAnd(stmt.Where) {
			p.placeConjunct(c, full, ownerNode, nodes, nodeStep)
		}
	}

	// Access-path selection per scan: route equality, IN-list, range and
	// MATCH predicates through the matching index structure, estimate the
	// rest from column statistics.
	for i, n := range nodes {
		if err := n.chooseAccess(db, tables[i], db.Schema.KeyColumns(n.tr.Table)); err != nil {
			return nil, err
		}
	}

	// Join-order search: for all-inner multi-joins the Selinger-style
	// enumerator rebuilds the steps in cost order; everything else keeps
	// the written order.
	if tryReorder(p, stmt, nodes, tables, nodeStart, ownerNode, full, reorder) {
		p.compileVec()
		captureStatsFreshness(nodes, tables)
		p.plan = p.describe()
		return p, nil
	}

	// Written-order join planning: equi-key detection against the
	// accumulated relation, statistics-driven cardinality estimates, then
	// build-side selection.
	accum := &relation{cols: append([]boundCol{}, base.cols...)}
	leftEst := base.est
	for _, st := range p.steps {
		rightRel := &relation{cols: st.right.cols}
		st.lk, st.rk, st.residual = equiJoinKeys(accum, rightRel, st.jc.On)
		accum = &relation{cols: append(append([]boundCol{}, accum.cols...), st.right.cols...)}
		st.outCols = accum.cols

		if len(st.lk) > 0 {
			sel := 1.0
			for i := range st.lk {
				ln := ownerNode(st.lk[i])
				lv := columnDistinct(tables[ln], nodes[ln], st.lk[i]-nodeStart[ln])
				rt := tableFor(tables, nodes, st.right)
				rv := columnDistinct(rt, st.right, st.rk[i])
				sel *= equiSelectivity(lv, rv)
			}
			st.est = clampEst(float64(leftEst) * float64(st.right.est) * sel)
			// Build on the estimated-smaller side. LEFT joins must probe
			// from the left to track unmatched left rows, so they always
			// build right.
			st.buildLeft = !st.jc.Left && leftEst < st.right.est
		} else {
			st.est = clampEst(float64(leftEst) * float64(st.right.est))
		}
		if st.jc.Left && st.est < leftEst {
			st.est = leftEst // outer join preserves every left row
		}
		leftEst = st.est
	}

	p.compileVec()
	captureStatsFreshness(nodes, tables)
	p.plan = p.describe()
	return p, nil
}

// captureStatsFreshness stamps each scan node with the freshness of the
// statistics its table currently caches — the snapshots estimation just
// consulted — so the frozen plan can report what its estimates were built
// from.
func captureStatsFreshness(nodes []*scanNode, tables []*relational.Table) {
	for i, n := range nodes {
		n.freshness = tables[i].StatsFreshnessSummary()
	}
}

// tableFor returns the relational table backing a scan node.
func tableFor(tables []*relational.Table, nodes []*scanNode, n *scanNode) *relational.Table {
	for i, cand := range nodes {
		if cand == n {
			return tables[i]
		}
	}
	return nil
}

// placeConjunct assigns one WHERE conjunct to its lowest legal position.
func (p *plannedQuery) placeConjunct(c Expr, full *relation, ownerNode func(int) int,
	nodes []*scanNode, nodeStep []int) {
	if containsAgg(c) {
		p.finalFilter = append(p.finalFilter, c)
		return
	}
	var refs []*ColumnRef
	collectRefs(c, &refs)
	involved := make(map[int]bool)
	for _, r := range refs {
		ord, err := full.resolve(r)
		if err != nil {
			// Unknown or ambiguous reference: keep the conjunct at the
			// top so the interpreter raises the identical per-row error.
			p.finalFilter = append(p.finalFilter, c)
			return
		}
		involved[ownerNode(ord)] = true
	}
	if len(involved) == 0 {
		// Constant conjunct: evaluate during the base scan (TRUE keeps
		// everything, FALSE/NULL empties the result either way).
		p.base.pushed = append(p.base.pushed, c)
		return
	}
	// The conjunct must run at or after the step where its last table
	// appears; null-extended (LEFT-joined) tables additionally pin it to
	// after their own join.
	at := -1
	single := -1
	for ni := range involved {
		step := nodeStep[ni]
		if step > at {
			at = step
		}
		single = ni
	}
	if len(involved) == 1 && (single == 0 || !p.steps[nodeStep[single]].jc.Left) {
		nodes[single].pushed = append(nodes[single].pushed, c)
		if single != 0 {
			counters.pushed.Add(1)
		}
		return
	}
	if at < 0 {
		// Single-table conjunct on the base table of a LEFT join chain is
		// handled above; at < 0 here means base-only multi-ref — push it.
		p.base.pushed = append(p.base.pushed, c)
		return
	}
	p.steps[at].where = append(p.steps[at].where, c)
}

// localEqLiteral deconstructs `col = literal` (either side order) against
// the node's local relation, rejecting NULL literals (NULL never equals
// anything, and index postings do not record NULLs).
func localEqLiteral(local *relation, c Expr) (ord int, v relational.Value, ok bool) {
	be, isBin := c.(*BinaryExpr)
	if !isBin || be.Op != OpEq {
		return 0, relational.Null(), false
	}
	return localCmpLiteral(local, be)
}

// rangeBound is one direction of a column's range restriction.
type rangeBound struct {
	v         relational.Value
	inclusive bool
	set       bool
}

// tighten replaces b when nv is a stricter bound in direction dir (+1 for
// lower bounds: larger wins; -1 for upper bounds: smaller wins).
func (b *rangeBound) tighten(nv relational.Value, inclusive bool, dir int) {
	if !b.set {
		*b = rangeBound{v: nv, inclusive: inclusive, set: true}
		return
	}
	c := relational.Compare(nv, b.v) * dir
	if c > 0 || (c == 0 && !inclusive) {
		*b = rangeBound{v: nv, inclusive: inclusive, set: true}
	}
}

// chooseAccess picks the scan's access path, in order of preference:
//
//  1. an equality conjunct `col = literal` through a hash index (primary
//     key probes answered from pkIndex),
//  2. an IN-list conjunct through a union of hash-index postings,
//  3. range conjuncts (<, <=, >, >=, BETWEEN) through a sorted-index
//     range scan, combining every bound on the chosen column,
//  4. a `col MATCH 'kw'` conjunct through full-text postings
//     (fulltext.AttributeIndex.Rows), which scans only the rows whose cell
//     contains every keyword token.
//
// Conjuncts served by the probe are removed from the pushed list — probes
// are exact under the engine's comparison semantics, so re-evaluating them
// per row would be wasted work. The remaining pushed conjuncts scale the
// cardinality estimate by their statistics-based selectivity.
func (n *scanNode) chooseAccess(db *relational.Database, t *relational.Table, keyCols map[string]bool) error {
	local := &relation{cols: n.cols}
	indexWorthy := func(ord int) bool {
		colName := t.Schema.Columns[ord].Name
		return keyCols[strings.ToLower(colName)] || t.HasIndex(colName) || t.Len() >= LazyIndexThreshold
	}

	// 1. Equality probe (PK preferred).
	best := -1
	bestPK := false
	var bestOrd int
	var bestVal relational.Value
	for ci, c := range n.pushed {
		ord, v, ok := localEqLiteral(local, c)
		if !ok || !indexWorthy(ord) {
			continue
		}
		isPK := strings.EqualFold(t.Schema.PrimaryKey, t.Schema.Columns[ord].Name)
		if best < 0 || (isPK && !bestPK) {
			best, bestPK, bestOrd, bestVal = ci, isPK, ord, v
		}
	}
	if best >= 0 {
		colName := t.Schema.Columns[bestOrd].Name
		if !bestPK && !t.HasIndex(colName) {
			counters.lazyBuilds.Add(1)
		}
		ords, err := t.LookupOrdinals(colName, bestVal)
		if err != nil {
			return err
		}
		counters.indexScans.Add(1)
		n.access = AccessIndexEq
		n.idxCol = colName
		n.lookup = bestVal.SQL()
		n.ords = ords
		n.pushed = append(n.pushed[:best:best], n.pushed[best+1:]...)
		n.finishEstimate(t, len(ords))
		return nil
	}

	// 2. IN-list probe: union of per-literal postings. NULL literals in the
	// list are skipped — they can only turn FALSE into UNKNOWN, and both
	// reject the row.
	for ci, c := range n.pushed {
		in, ok := c.(*InExpr)
		if !ok {
			continue
		}
		cr, okRef := in.Inner.(*ColumnRef)
		if !okRef {
			continue
		}
		ord, err := local.resolve(cr)
		if err != nil || !indexWorthy(ord) {
			continue
		}
		lits := make([]relational.Value, 0, len(in.List))
		allLits := true
		for _, item := range in.List {
			l, isLit := item.(*Literal)
			if !isLit {
				allLits = false
				break
			}
			if l.Value.IsNull() {
				continue
			}
			lits = append(lits, l.Value)
		}
		if !allLits {
			continue
		}
		colName := t.Schema.Columns[ord].Name
		if !t.HasIndex(colName) && !strings.EqualFold(t.Schema.PrimaryKey, colName) {
			counters.lazyBuilds.Add(1)
		}
		ords, err := unionLookups(t, colName, lits)
		if err != nil {
			return err
		}
		counters.inScans.Add(1)
		n.access = AccessIndexIn
		n.idxCol = colName
		n.lookup = "IN " + literalList(lits)
		n.ords = ords
		n.pushed = append(n.pushed[:ci:ci], n.pushed[ci+1:]...)
		n.finishEstimate(t, len(ords))
		return nil
	}

	// 3. Sorted-index range scan: gather every bound per column, choose the
	// first bounded column in conjunct order, and serve the combined
	// interval from the sorted index.
	type colRange struct {
		ord      int
		lo, hi   rangeBound
		conjunct []int // indexes into n.pushed served by the probe
	}
	var ranges []*colRange
	byOrd := make(map[int]*colRange)
	for ci, c := range n.pushed {
		be, ok := c.(*BinaryExpr)
		if !ok || (be.Op != OpLt && be.Op != OpLe && be.Op != OpGt && be.Op != OpGe) {
			continue
		}
		ord, v, op, okCmp := localRangeLiteral(local, be)
		if !okCmp || !rangeWorthy(t, keyCols, ord) {
			continue
		}
		r := byOrd[ord]
		if r == nil {
			r = &colRange{ord: ord}
			byOrd[ord] = r
			ranges = append(ranges, r)
		}
		switch op {
		case OpGt:
			r.lo.tighten(v, false, 1)
		case OpGe:
			r.lo.tighten(v, true, 1)
		case OpLt:
			r.hi.tighten(v, false, -1)
		case OpLe:
			r.hi.tighten(v, true, -1)
		}
		r.conjunct = append(r.conjunct, ci)
	}
	if len(ranges) > 0 {
		r := ranges[0]
		colName := t.Schema.Columns[r.ord].Name
		if !t.HasSortedIndex(colName) {
			counters.lazyBuilds.Add(1)
		}
		lo, hi := relational.Null(), relational.Null()
		loInc, hiInc := true, true
		if r.lo.set {
			lo, loInc = r.lo.v, r.lo.inclusive
		}
		if r.hi.set {
			hi, hiInc = r.hi.v, r.hi.inclusive
		}
		ords, err := t.RangeOrdinals(colName, lo, hi, loInc, hiInc)
		if err != nil {
			return err
		}
		counters.rangeScans.Add(1)
		n.access = AccessIndexRange
		n.idxCol = colName
		n.lookup = rangeText(r.lo, r.hi)
		n.ords = ords
		served := make(map[int]bool, len(r.conjunct))
		for _, ci := range r.conjunct {
			served[ci] = true
		}
		kept := n.pushed[:0:0]
		for ci, c := range n.pushed {
			if !served[ci] {
				kept = append(kept, c)
			}
		}
		n.pushed = kept
		n.finishEstimate(t, len(ords))
		return nil
	}

	// 4. MATCH postings: `col MATCH 'kw'` scans only the posting rows.
	for ci, c := range n.pushed {
		be, ok := c.(*BinaryExpr)
		if !ok || be.Op != OpMatch {
			continue
		}
		cr, okRef := be.Left.(*ColumnRef)
		l, okLit := be.Right.(*Literal)
		if !okRef || !okLit || l.Value.IsNull() {
			continue
		}
		ord, err := local.resolve(cr)
		if err != nil || t.Len() < LazyIndexThreshold {
			continue
		}
		ai := matchIndexFor(db, t, ord)
		counters.matchScans.Add(1)
		n.access = AccessMatchPostings
		n.idxCol = t.Schema.Columns[ord].Name
		n.lookup = "MATCH " + l.Value.SQL()
		n.ords = ai.Rows(l.Value.AsString())
		n.pushed = append(n.pushed[:ci:ci], n.pushed[ci+1:]...)
		n.finishEstimate(t, len(n.ords))
		return nil
	}

	// Full scan: estimate from column statistics instead of the former
	// halving-per-predicate heuristic.
	counters.fullScans.Add(1)
	n.finishEstimate(t, t.Len())
	return nil
}

// rangeWorthy mirrors the hash-index worthiness rule for sorted indexes.
func rangeWorthy(t *relational.Table, keyCols map[string]bool, ord int) bool {
	colName := t.Schema.Columns[ord].Name
	return keyCols[strings.ToLower(colName)] || t.HasSortedIndex(colName) || t.Len() >= LazyIndexThreshold
}

// finishEstimate sets the scan estimate: the probe result size (exact at
// plan time) scaled by the selectivity of the remaining pushed conjuncts.
func (n *scanNode) finishEstimate(t *relational.Table, base int) {
	est := float64(base)
	local := &relation{cols: n.cols}
	for _, c := range n.pushed {
		est *= predSelectivity(t, local, c)
	}
	n.est = clampEst(est)
}

// unionLookups unions the hash-index postings of several probe values into
// one ascending, deduplicated ordinal list.
func unionLookups(t *relational.Table, column string, vals []relational.Value) ([]int, error) {
	seenVal := make(map[string]bool, len(vals))
	var out []int
	for _, v := range vals {
		k := v.Key()
		if seenVal[k] {
			continue
		}
		seenVal[k] = true
		ords, err := t.LookupOrdinals(column, v)
		if err != nil {
			return nil, err
		}
		out = append(out, ords...)
	}
	if len(out) == 0 {
		return nil, nil
	}
	sortInts(out)
	dedup := out[:1]
	for _, o := range out[1:] {
		if o != dedup[len(dedup)-1] {
			dedup = append(dedup, o)
		}
	}
	return dedup, nil
}

func literalList(vals []relational.Value) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = v.SQL()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func rangeText(lo, hi rangeBound) string {
	var parts []string
	if lo.set {
		op := ">"
		if lo.inclusive {
			op = ">="
		}
		parts = append(parts, op+" "+lo.v.SQL())
	}
	if hi.set {
		op := "<"
		if hi.inclusive {
			op = "<="
		}
		parts = append(parts, op+" "+hi.v.SQL())
	}
	return strings.Join(parts, " AND ")
}

// matchIndexFor returns the cached (or freshly built) single-attribute
// full-text index for the MATCH access path. The cache key embeds the
// table version, so postings built before an Insert are never served.
func matchIndexFor(db *relational.Database, t *relational.Table, ord int) *fulltext.AttributeIndex {
	key := strconv.FormatUint(db.ID(), 10) + "\x00" + strings.ToLower(t.Schema.Name) +
		"\x00" + strconv.Itoa(ord) + "\x00" + strconv.FormatUint(t.Version(), 10)
	if ai, ok := matchIndexCache.Get(key); ok {
		return ai
	}
	counters.lazyBuilds.Add(1)
	ai := fulltext.IndexAttribute(t, ord)
	matchIndexCache.Put(key, ai)
	return ai
}

// describe freezes the plan into its introspectable form.
func (p *plannedQuery) describe() *QueryPlan {
	qp := &QueryPlan{Reordered: p.reordered}
	nodes := []*scanNode{p.base}
	for _, st := range p.steps {
		nodes = append(nodes, st.right)
	}
	for _, n := range nodes {
		sp := ScanPlan{
			Table:          n.tr.Table,
			Binding:        n.tr.Binding(),
			Access:         n.access,
			EstRows:        n.est,
			ActualRows:     -1,
			StatsFreshness: n.freshness,
		}
		if n.access != AccessFullScan {
			sp.IndexColumn = n.idxCol
			sp.Lookup = n.lookup
		}
		for _, c := range n.pushed {
			sp.Pushed = append(sp.Pushed, c.SQL())
		}
		qp.Scans = append(qp.Scans, sp)
		qp.JoinOrder = append(qp.JoinOrder, n.tr.Binding())
	}
	lcols := p.base.cols
	for _, st := range p.steps {
		jp := JoinPlan{
			Table:      st.right.tr.Table,
			Binding:    st.right.tr.Binding(),
			Strategy:   StrategyNestedLoop,
			BuildLeft:  st.buildLeft,
			Outer:      st.jc.Left,
			EstRows:    st.est,
			ActualRows: -1,
		}
		if st.jc.On != nil {
			jp.On = st.jc.On.SQL()
		}
		if len(st.lk) > 0 {
			jp.Strategy = StrategyHash
			for i := range st.lk {
				jp.Keys = append(jp.Keys, lcols[st.lk[i]].display+" = "+st.right.cols[st.rk[i]].display)
			}
		}
		for _, r := range st.residual {
			jp.Residual = append(jp.Residual, r.SQL())
		}
		for _, w := range st.where {
			jp.Filter = append(jp.Filter, w.SQL())
		}
		qp.Joins = append(qp.Joins, jp)
		lcols = st.outCols
	}
	for _, c := range p.finalFilter {
		qp.Filter = append(qp.Filter, c.SQL())
	}
	return qp
}

// describeActual clones the frozen plan and annotates it with the row
// counts one execution observed. When a LIMIT short-circuit stopped the
// pipeline early the counts are lower bounds of the full cardinalities.
func (p *plannedQuery) describeActual(rc *runCounts) *QueryPlan {
	qp := *p.plan
	qp.Scans = append([]ScanPlan(nil), p.plan.Scans...)
	qp.Joins = append([]JoinPlan(nil), p.plan.Joins...)
	for i := range qp.Scans {
		if i < len(rc.scans) {
			qp.Scans[i].ActualRows = rc.scans[i]
		}
	}
	for i := range qp.Joins {
		if i < len(rc.joins) {
			qp.Joins[i].ActualRows = rc.joins[i]
		}
	}
	return &qp
}

// ---- streaming execution ----

// runCounts carries one execution's observed cardinalities: rows emitted by
// each scan (post pushed-predicate filtering) and surviving each join step.
// Each execution owns its runCounts, so shared plans stay immutable.
type runCounts struct {
	scans []int
	joins []int
}

// evalConjuncts reports whether every conjunct evaluates to TRUE for the
// row (SQL three-valued semantics: NULL rejects).
func evalConjuncts(rel *relation, row relational.Row, cs []Expr) (bool, error) {
	for _, c := range cs {
		v, err := eval(rel, row, c)
		if err != nil {
			return false, err
		}
		if !v.AsBool() {
			return false, nil
		}
	}
	return true, nil
}

// boundTables are the per-execution table bindings of a plan: entry 0 is
// the base scan's table, entry i+1 the right table of join step i. Cached
// plans store no table pointers, so every run re-binds against the (same)
// database first.
type boundTables []*relational.Table

// bind resolves the plan's table names against db. The plan cache keys on
// the database ID, so a cached plan only ever meets the database it was
// built for; the nil check guards programmer error, not a live code path.
func (p *plannedQuery) bind(db *relational.Database) (boundTables, error) {
	bt := make(boundTables, 0, len(p.steps)+1)
	for _, tr := range append([]TableRef{p.base.tr}, joinRefs(p.steps)...) {
		t := db.Table(tr.Table)
		if t == nil {
			return nil, fmt.Errorf("sql: unknown table %s", tr.Table)
		}
		bt = append(bt, t)
	}
	return bt, nil
}

func joinRefs(steps []*joinStep) []TableRef {
	out := make([]TableRef, len(steps))
	for i, st := range steps {
		out[i] = st.right.tr
	}
	return out
}

// streamScan yields the scan's rows (index probe or full scan) that pass
// its pushed predicates. idx is the scan's position in the plan, used for
// cardinality accounting when rc is non-nil.
func (p *plannedQuery) streamScan(idx int, n *scanNode, t *relational.Table, rc *runCounts, emit func(relational.Row) error) error {
	if n.vecOK {
		return p.streamScanVec(idx, n, t, rc, emit)
	}
	local := &relation{cols: n.cols}
	yield := func(row relational.Row) error {
		ok, err := evalConjuncts(local, row, n.pushed)
		if err != nil || !ok {
			return err
		}
		if rc != nil {
			rc.scans[idx]++
		}
		return emit(row)
	}
	if n.access != AccessFullScan {
		for _, o := range n.ords {
			if err := yield(t.Row(o)); err != nil {
				return err
			}
		}
		return nil
	}
	for _, row := range t.Rows() {
		if err := yield(row); err != nil {
			return err
		}
	}
	return nil
}

// stream yields the rows of the relation after join step i (i == -1 is the
// base scan), with that step's placed WHERE conjuncts applied.
func (p *plannedQuery) stream(i int, bt boundTables, rc *runCounts, emit func(relational.Row) error) error {
	if i < 0 {
		return p.streamScan(0, p.base, bt[0], rc, emit)
	}
	st := p.steps[i]
	outRel := &relation{cols: st.outCols}
	// filtered applies the step's placed WHERE conjuncts before emitting.
	filtered := func(row relational.Row) error {
		ok, err := evalConjuncts(outRel, row, st.where)
		if err != nil || !ok {
			return err
		}
		if rc != nil {
			rc.joins[i]++
		}
		return emit(row)
	}
	concat := func(l, r relational.Row) relational.Row {
		row := make(relational.Row, 0, len(l)+len(r))
		row = append(row, l...)
		return append(row, r...)
	}

	if len(st.lk) == 0 {
		counters.nestedLoops.Add(1)
		var rightRows []relational.Row
		if err := p.streamScan(i+1, st.right, bt[i+1], rc, func(r relational.Row) error {
			rightRows = append(rightRows, r)
			return nil
		}); err != nil {
			return err
		}
		return p.stream(i-1, bt, rc, func(lrow relational.Row) error {
			matched := false
			for _, rrow := range rightRows {
				cand := concat(lrow, rrow)
				v, err := eval(outRel, cand, st.jc.On)
				if err != nil {
					return err
				}
				if !v.AsBool() {
					continue
				}
				matched = true
				if err := filtered(cand); err != nil {
					return err
				}
			}
			if st.jc.Left && !matched {
				return filtered(concat(lrow, nullRow(len(st.right.cols))))
			}
			return nil
		})
	}

	counters.hashJoins.Add(1)
	if st.buildLeft {
		counters.buildSwaps.Add(1)
		// Materialize the (smaller) accumulated left side, probe with the
		// right scan. Inner joins only, so no match tracking is needed.
		var leftRows []relational.Row
		if err := p.stream(i-1, bt, rc, func(l relational.Row) error {
			leftRows = append(leftRows, l)
			return nil
		}); err != nil {
			return err
		}
		build := make(map[uint64][]int, len(leftRows))
		for li, lrow := range leftRows {
			k, null := joinKey(lrow, st.lk)
			if null {
				continue
			}
			build[k] = append(build[k], li)
		}
		// Probe in blocks: keys for the whole block are hashed first, then
		// the build map is walked with hot caches. Emission order matches
		// the row-at-a-time loop exactly, and a stop sentinel raised
		// mid-block propagates before any later probe row is touched.
		blk := make([]relational.Row, 0, joinProbeBlock)
		keys := make([]uint64, joinProbeBlock)
		nulls := make([]bool, joinProbeBlock)
		flush := func() error {
			for bi, rrow := range blk {
				keys[bi], nulls[bi] = joinKey(rrow, st.rk)
			}
			for bi, rrow := range blk {
				if nulls[bi] {
					continue
				}
				for _, li := range build[keys[bi]] {
					if !joinKeysEqual(leftRows[li], st.lk, rrow, st.rk) {
						continue
					}
					cand := concat(leftRows[li], rrow)
					ok, err := evalConjuncts(outRel, cand, st.residual)
					if err != nil {
						return err
					}
					if !ok {
						continue
					}
					if err := filtered(cand); err != nil {
						return err
					}
				}
			}
			blk = blk[:0]
			return nil
		}
		if err := p.streamScan(i+1, st.right, bt[i+1], rc, func(rrow relational.Row) error {
			blk = append(blk, rrow)
			if len(blk) == joinProbeBlock {
				return flush()
			}
			return nil
		}); err != nil {
			return err
		}
		return flush()
	}

	// Default hash join: build on the right scan, probe with the streamed
	// left side (required for LEFT joins, which null-extend unmatched left
	// rows).
	var rightRows []relational.Row
	if err := p.streamScan(i+1, st.right, bt[i+1], rc, func(r relational.Row) error {
		rightRows = append(rightRows, r)
		return nil
	}); err != nil {
		return err
	}
	build := make(map[uint64][]int, len(rightRows))
	for ri, rrow := range rightRows {
		k, null := joinKey(rrow, st.rk)
		if null {
			continue
		}
		build[k] = append(build[k], ri)
	}
	// Batched probe, mirroring the build-left path; LEFT joins track
	// per-row match state inside the block to null-extend unmatched rows in
	// their original positions.
	blk := make([]relational.Row, 0, joinProbeBlock)
	keys := make([]uint64, joinProbeBlock)
	nulls := make([]bool, joinProbeBlock)
	flush := func() error {
		for bi, lrow := range blk {
			keys[bi], nulls[bi] = joinKey(lrow, st.lk)
		}
		for bi, lrow := range blk {
			matched := false
			if !nulls[bi] {
				for _, ri := range build[keys[bi]] {
					if !joinKeysEqual(lrow, st.lk, rightRows[ri], st.rk) {
						continue
					}
					cand := concat(lrow, rightRows[ri])
					ok, err := evalConjuncts(outRel, cand, st.residual)
					if err != nil {
						return err
					}
					if !ok {
						continue
					}
					matched = true
					if err := filtered(cand); err != nil {
						return err
					}
				}
			}
			if st.jc.Left && !matched {
				if err := filtered(concat(lrow, nullRow(len(st.right.cols)))); err != nil {
					return err
				}
			}
		}
		blk = blk[:0]
		return nil
	}
	if err := p.stream(i-1, bt, rc, func(lrow relational.Row) error {
		blk = append(blk, lrow)
		if len(blk) == joinProbeBlock {
			return flush()
		}
		return nil
	}); err != nil {
		return err
	}
	return flush()
}

// run streams the fully joined and filtered relation to emit, optionally
// recording per-operator cardinalities into rc. Returning errStopIteration
// from emit stops the pipeline without error.
func (p *plannedQuery) run(db *relational.Database, rc *runCounts, emit func(relational.Row) error) error {
	bt, err := p.bind(db)
	if err != nil {
		return err
	}
	fullRel := &relation{cols: p.outCols}
	wrapped := func(row relational.Row) error {
		ok, err := evalConjuncts(fullRel, row, p.finalFilter)
		if err != nil || !ok {
			return err
		}
		return emit(row)
	}
	err = p.stream(len(p.steps)-1, bt, rc, wrapped)
	if errors.Is(err, errStopIteration) {
		return nil
	}
	return err
}

// newRunCounts sizes a cardinality recorder for the plan.
func (p *plannedQuery) newRunCounts() *runCounts {
	return &runCounts{
		scans: make([]int, len(p.steps)+1),
		joins: make([]int, len(p.steps)),
	}
}

// materialize collects at most limit rows (limit < 0 collects everything);
// stopped reports whether the pipeline actually cut off early at the cap.
func (p *plannedQuery) materialize(db *relational.Database, rc *runCounts, limit int) (rel *relation, stopped bool, err error) {
	rel = &relation{cols: p.outCols}
	err = p.run(db, rc, func(row relational.Row) error {
		rel.rows = append(rel.rows, row)
		if limit >= 0 && len(rel.rows) >= limit {
			stopped = true
			return errStopIteration
		}
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	return rel, stopped, nil
}

// Exists reports whether the statement yields at least one row, stopping
// at the first surviving tuple instead of materializing the result. This
// is the execution mode behind validation queries (core's PruneEmpty):
// their cost stops scaling with result size.
func Exists(db *relational.Database, stmt *SelectStmt) (bool, error) {
	if stmt.Limit == 0 {
		return false, nil
	}
	if len(stmt.GroupBy) > 0 || anyAgg(stmt) || (stmt.Distinct && stmt.Offset > 0) {
		// Aggregation changes the row count (a global aggregate always
		// yields one row) and DISTINCT interacts with OFFSET; both are
		// rare for validation queries, so fall back to full execution.
		res, err := Execute(db, stmt)
		if err != nil {
			return false, err
		}
		return len(res.Rows) > 0, nil
	}
	p, err := planSelect(db, stmt)
	if err != nil {
		return false, err
	}
	counters.existsFast.Add(1)
	need := stmt.Offset + 1
	count := 0
	fullRel := &relation{cols: p.outCols}
	columns := projectionColumns(fullRel, stmt)
	err = p.run(db, nil, func(row relational.Row) error {
		count++
		if count == 1 {
			// Error parity with Execute, which resolves the projection and
			// ORDER BY per row: evaluate them once on the first surviving
			// row so a statement Execute would reject (unknown projection
			// column, bad order key) fails here too instead of silently
			// reporting existence — pruneEmpty relies on that error to
			// mark validations as failed rather than empty.
			proj, err := projectRow(fullRel, row, stmt)
			if err != nil {
				return err
			}
			if _, err := orderKeysRow(fullRel, row, stmt, columns, proj); err != nil {
				return err
			}
		}
		if count >= need {
			return errStopIteration
		}
		return nil
	})
	if err != nil {
		return false, err
	}
	return count >= need, nil
}
