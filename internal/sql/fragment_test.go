package sql

import (
	"strings"
	"testing"

	"repro/internal/relational"
)

func TestFragmentsPushdownAndPruning(t *testing.T) {
	db := eqDB(t)
	stmt, err := Parse(`SELECT person.name, movie.title FROM movie
		JOIN cast_info ON cast_info.movie_id = movie.movie_id
		JOIN person ON person.person_id = cast_info.person_id
		WHERE movie.movie_id = 17 AND cast_info.role = 'actor'
			AND movie.year > cast_info.person_id`)
	if err != nil {
		t.Fatal(err)
	}
	frags, err := Fragments(db.Schema, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 3 {
		t.Fatalf("got %d fragments, want 3", len(frags))
	}
	if got := frags[0].SQL(); !strings.Contains(got, "WHERE (movie.movie_id = 17)") {
		t.Errorf("movie fragment did not push the PK equality: %s", got)
	}
	if got := frags[1].SQL(); !strings.Contains(got, "cast_info.role = 'actor'") {
		t.Errorf("cast_info fragment did not push the role equality: %s", got)
	}
	if len(frags[2].Pushed) != 0 {
		t.Errorf("person fragment pushed %v, want none", frags[2].Pushed)
	}
	// The multi-table conjunct must stay with the coordinator.
	for _, f := range frags {
		for _, c := range f.Pushed {
			if strings.Contains(c.SQL(), "person_id") && strings.Contains(c.SQL(), "year") {
				t.Errorf("multi-table conjunct was pushed into %s", f.Ref.Table)
			}
		}
	}
	// Partition pruning: the movie fragment pins the PK to one value.
	if len(frags[0].PKValues) != 1 || frags[0].PKValues[0].AsInt() != 17 {
		t.Errorf("movie fragment PKValues = %v, want [17]", frags[0].PKValues)
	}
	if frags[1].PKValues != nil || frags[2].PKValues != nil {
		t.Errorf("unexpected PK restriction on unpinned fragments: %v %v",
			frags[1].PKValues, frags[2].PKValues)
	}
}

func TestFragmentsPKInListAndNulls(t *testing.T) {
	db := eqDB(t)
	stmt, err := Parse("SELECT title FROM movie WHERE movie_id IN (3, 9, NULL, 3)")
	if err != nil {
		t.Fatal(err)
	}
	frags, err := Fragments(db.Schema, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(frags[0].PKValues); got != 3 {
		t.Fatalf("PKValues = %v, want the 3 non-NULL members", frags[0].PKValues)
	}
	// An IN list of only NULLs can match nothing: empty but non-nil, so the
	// shard layer may skip every partition.
	stmt, err = Parse("SELECT title FROM movie WHERE movie_id IN (NULL)")
	if err != nil {
		t.Fatal(err)
	}
	frags, err = Fragments(db.Schema, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if frags[0].PKValues == nil || len(frags[0].PKValues) != 0 {
		t.Fatalf("PKValues = %#v, want empty non-nil", frags[0].PKValues)
	}
}

func TestFragmentsLeftJoinLegality(t *testing.T) {
	db := eqDB(t)
	stmt, err := Parse(`SELECT movie.title FROM movie
		LEFT JOIN cast_info ON cast_info.movie_id = movie.movie_id
		WHERE cast_info.role = 'actor' AND movie.genre = 'drama'`)
	if err != nil {
		t.Fatal(err)
	}
	frags, err := Fragments(db.Schema, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags[1].Pushed) != 0 {
		t.Errorf("conjunct on the null-extended side was pushed: %v", frags[1].Pushed)
	}
	if len(frags[0].Pushed) != 1 {
		t.Errorf("base-table conjunct was not pushed: %v", frags[0].Pushed)
	}
}

// TestExecuteRowsMatchesReference feeds ExecuteRows the tables' own rows and
// checks it reproduces the reference interpreter byte for byte — the
// coordinator half must be a drop-in finish for gathered fragments.
func TestExecuteRowsMatchesReference(t *testing.T) {
	db := eqDB(t)
	for _, src := range []string{
		"SELECT title FROM movie WHERE year BETWEEN 1975 AND 1990 ORDER BY movie_id",
		`SELECT person.name, cast_info.role FROM person
			JOIN cast_info ON cast_info.person_id = person.person_id
			WHERE cast_info.role = 'director' ORDER BY cast_info.cast_id LIMIT 7 OFFSET 2`,
		`SELECT movie.title, cast_info.role FROM movie
			LEFT JOIN cast_info ON cast_info.movie_id = movie.movie_id
			WHERE cast_info.role IS NULL ORDER BY movie.movie_id`,
		`SELECT cast_info.role, COUNT(*) FROM movie
			JOIN cast_info ON cast_info.movie_id = movie.movie_id
			GROUP BY cast_info.role ORDER BY cast_info.role`,
		"SELECT DISTINCT genre FROM movie ORDER BY genre",
	} {
		stmt, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		var tables [][]relational.Row
		for _, tr := range stmt.Tables() {
			tables = append(tables, db.Table(tr.Table).Rows())
		}
		got, err := ExecuteRows(db.Schema, stmt, tables)
		if err != nil {
			t.Fatalf("ExecuteRows(%q): %v", src, err)
		}
		want, err := ExecuteFullScan(db, stmt)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(got.Columns, ",") != strings.Join(want.Columns, ",") {
			t.Errorf("%q: columns %v vs %v", src, got.Columns, want.Columns)
		}
		g, w := rowMultiset(got), rowMultiset(want)
		if len(g) != len(w) {
			t.Fatalf("%q: %d rows vs %d", src, len(g), len(w))
		}
		for i := range g {
			if g[i] != w[i] {
				t.Errorf("%q: row divergence %s vs %s", src, g[i], w[i])
			}
		}
	}
}
