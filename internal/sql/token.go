// Package sql implements the SQL subset QUEST emits and executes: SELECT
// with joins, predicates, grouping, ordering and limits, over the
// internal/relational engine.
//
// The dialect includes a MATCH operator (`column MATCH 'kw'`) implementing
// case-insensitive token containment, which is how the query builder turns
// value keywords into predicates when the underlying source exposes
// full-text search, mirroring the paper's use of DBMS full-text functions.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer output.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokSymbol // punctuation and operators
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "ident"
	case TokKeyword:
		return "keyword"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokSymbol:
		return "symbol"
	}
	return "?"
}

// Token is one lexical unit. Text preserves the original spelling except for
// keywords, which are upper-cased, and strings, which are unquoted.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset in the input
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "JOIN": true, "INNER": true,
	"LEFT": true, "ON": true, "AND": true, "OR": true, "NOT": true,
	"AS": true, "ORDER": true, "BY": true, "ASC": true, "DESC": true,
	"LIMIT": true, "DISTINCT": true, "LIKE": true, "MATCH": true, "IN": true,
	"IS": true, "NULL": true, "TRUE": true, "FALSE": true, "GROUP": true,
	"HAVING": true, "COUNT": true, "SUM": true, "MIN": true, "MAX": true,
	"AVG": true, "BETWEEN": true, "OFFSET": true,
}

// Lexer turns SQL text into tokens.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Tokenize lexes the whole input.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		up := strings.ToUpper(text)
		if keywords[up] {
			return Token{Kind: TokKeyword, Text: up, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: start}, nil
	case c >= '0' && c <= '9':
		sawDot := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch == '.' && !sawDot {
				sawDot = true
				l.pos++
				continue
			}
			if ch < '0' || ch > '9' {
				break
			}
			l.pos++
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			b.WriteByte(ch)
			l.pos++
		}
		return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
	default:
		// Multi-char operators first.
		for _, op := range []string{"<=", ">=", "<>", "!="} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += len(op)
				return Token{Kind: TokSymbol, Text: op, Pos: start}, nil
			}
		}
		switch c {
		case '(', ')', ',', '.', '*', '=', '<', '>', '+', '-', '/', ';':
			l.pos++
			return Token{Kind: TokSymbol, Text: string(c), Pos: start}, nil
		}
		return Token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, l.pos)
	}
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || c >= 0x80
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || ('0' <= c && c <= '9')
}

// FoldTokens lower-cases and splits s into alphanumeric tokens; shared by the
// MATCH operator and the full-text engine so their notions of "token" agree.
func FoldTokens(s string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return out
}
