// Package sql implements the embedded SQL engine QUEST executes its
// generated queries against: a parser for a SELECT dialect (joins,
// aggregation, DISTINCT, ORDER BY/LIMIT, LIKE and the full-text MATCH
// operator), a statistics-driven cost-based planner, and a streaming
// executor.
//
// # Architecture
//
// Execution is layered:
//
//	Parse → planSelect (planner) → streaming pipeline → finish (projection,
//	aggregation, DISTINCT, ordering, limits)
//
// The planner (plan.go) sits between Execute and the interpreter and makes
// four decisions per statement:
//
//   - Access paths. Each base table becomes a scan node. An equality
//     conjunct `col = literal` is routed through a per-column hash index,
//     an `IN (literals...)` conjunct through the union of the per-literal
//     hash postings, range conjuncts (<, <=, >, >=, BETWEEN — every bound
//     on the chosen column combined into one interval) through a sorted
//     secondary index (relational.Table.RangeOrdinals), and `col MATCH
//     'kw'` through full-text postings (fulltext.AttributeIndex.Rows), so
//     a MATCH scan touches only the rows containing every keyword token.
//     Index structures are used when the column is a declared key —
//     primary key, foreign key, or FK-referenced — or when the table has
//     at least LazyIndexThreshold rows, in which case the planner builds
//     them on demand. Everything else is a full scan.
//   - Predicate pushdown. The WHERE conjunction is split; single-table
//     conjuncts are evaluated inside the owning scan, below every join.
//     Conjuncts on the null-extended side of a LEFT JOIN are pinned above
//     that join (pushing them below would resurrect filtered rows), and
//     multi-table conjuncts run right after the earliest join that sees
//     all their tables. Aggregate or unresolvable conjuncts stay in the
//     final filter so errors surface exactly like the reference
//     interpreter's: per joined row.
//   - Join order. For statements joining three or more relations with
//     inner joins only, a Selinger-style enumerator (reorder.go) searches
//     the left-deep orders bottom-up over subsets of the join graph,
//     treating every ON conjunct and join-level WHERE conjunct as one
//     predicate pool and re-attaching each at the earliest step that sees
//     all its relations. Cost is the sum of estimated intermediate result
//     sizes; cross products are only considered when the join graph is
//     disconnected. Statements past ReorderMaxRelations, LEFT joins
//     (order is semantics there), SELECT * (column order is the written
//     order) and unresolvable ON conjuncts keep the written order, as
//     does everything when SetJoinReorder(false) is in effect.
//   - Join strategy. Equi-join conjuncts drive a hash join; the build
//     side is the side with the smaller cardinality estimate. LEFT joins
//     always build right so unmatched left rows can be null-extended.
//     Non-equi ONs fall back to a nested loop.
//
// # Cardinality estimation
//
// Estimates come from per-column statistics (relational.ColumnStats:
// distinct count, min/max, null fraction, an equi-depth histogram and a
// most-common-values list), collected lazily per table version — a
// snapshot built before an Insert is rebuilt, never served stale. Index
// probes are exact at plan time (the ordinals are captured); the remaining
// pushed conjuncts scale the estimate by statistics-based selectivities
// (estimate.go): equality via MCV-or-uniform, ranges via histogram
// interpolation, IN as the sum of member equalities, IS NULL from the
// null fraction, AND/OR/NOT composed from their operands, and pattern
// operators (LIKE, MATCH) by a fixed default. Equi-join steps use the
// textbook 1/max(V(l), V(r)) over the key columns' distinct counts. The
// estimates drive the join-order search and build-side selection, which
// is what makes them matter on skewed data — the pre-statistics planner
// halved the estimate per predicate and executed joins in written order.
//
// The executor streams rows through the join pipeline with callback
// iterators, which gives two short-circuit modes: Exists stops at the
// first surviving tuple (the engine's PruneEmpty validation path — cost
// independent of result size), and Execute stops at OFFSET+LIMIT rows
// when nothing downstream reorders or merges.
//
// Every Result carries the QueryPlan that produced it — annotated with the
// actual per-operator cardinalities the execution observed, next to the
// planner's estimates — and Plan/Explain expose the same structure without
// executing; ExplainAnalyze executes and renders estimated vs actual rows.
// Tests and questbench assert access paths and join orders against it.
//
// # Plan cache and invalidation
//
// Plans are memoized in a package-level LRU keyed on (database ID, the
// referenced tables' individual versions, reorder setting, canonical
// SQL). The per-table-version contract: the key embeds one
// (table, mutation counter) pair for each table the statement references
// — and only those — so an Insert into one table makes exactly the
// cached plans that read it unreachable, while plans over every other
// table keep serving. Cached index-probe ordinals can therefore never go
// stale: any mutation of a scanned table changes that table's version
// and thus the key. The same contract extends upward — the engine's
// query cache and the serving tier's response cache validate their
// entries against the same per-table counters (wrapper.TableVersioner)
// instead of a global epoch.
//
// Equality indexes are maintained incrementally by Insert; sorted
// indexes, MATCH posting indexes and statistics snapshots are
// version-checked on first use after a mutation and either delta-updated
// within the staleness budget or rebuilt (relational's incremental
// maintenance; the planner tolerates budget-stale histograms — the scan
// annotates its estimate provenance — but never serves stale index
// postings). Planned queries are immutable after construction
// (executions record actual cardinalities into per-run copies), so one
// cached plan serves concurrent Execute/Exists calls.
//
// ExecuteFullScan retains the pre-planner interpreter (full scans, WHERE
// evaluated per joined row) as the reference implementation; the
// equivalence suite in equivalence_test.go continuously checks the two
// paths agree — NULL-key join rows, LEFT JOIN edge cases, reordered
// multi-joins, range and IN probes included.
//
// # Pushdown fragments (distributed execution contract)
//
// Fragments and ExecuteRows split a statement along the coordinator/backend
// seam the sharded execution layer (internal/shard) is built on. The
// contract:
//
//   - What a backend executes. One TableFragment per FROM/JOIN table
//     reference, whose Stmt is `SELECT * FROM <table> [WHERE <pushed>]` —
//     the single-table WHERE conjuncts that are legal below every join
//     (the planner's own pushdown rule: conjuncts on the null-extended
//     side of a LEFT JOIN stay above, as do aggregate, multi-table,
//     constant and unresolvable conjuncts). A backend runs the fragment
//     with whatever local plan it likes — the in-memory shards use their
//     own index access paths — and returns the qualifying rows in schema
//     column order. Fragment SQL()-serializes, so any engine that answers
//     a single-table SELECT can serve it.
//   - What the coordinator merges. ExecuteRows runs joins, the full WHERE
//     (re-evaluating pushed conjuncts is harmless — pushdown is a
//     bandwidth optimization, never the only evaluation), projection,
//     aggregation, DISTINCT, ordering and limits over the gathered rows
//     with the reference interpreter's semantics, so the result is
//     multiset-identical to single-node execution over the union of the
//     partitions. Errors keep their per-row surfacing: a conjunct no
//     backend could check still fails at the coordinator exactly where
//     the interpreter would fail it.
//   - Partition pruning. A fragment whose pushed conjuncts pin the
//     table's primary key to an equality literal or an all-literal IN
//     list carries those values as PKValues; a hash-partitioned
//     deployment needs to consult only the shards they route to (an
//     IN list of NULLs prunes every shard). Values that do not coerce to
//     the key's type must not be pruned on — cross-type comparisons can
//     still match.
//
// The internal/conformance differential suite holds both halves to this
// contract against FullAccessSource at 1, 3 and 7 shards — with the
// backends in-process and behind the wire protocol alike.
//
// # Wire protocol (fragment transport framing)
//
// When a backend lives in another process (internal/transport,
// cmd/questshardd), the fragment contract crosses the network in
// length-prefixed frames:
//
//	uint32 big-endian payload length | 1 frame-type byte | payload
//
// Requests travel as canonical SQL text — a fragment serializes as its
// Stmt.SQL(), so the statement itself is the wire form and any engine
// that parses the dialect can serve a shard. Responses use the binary row
// codec in codec.go:
//
//   - A value is one tag byte (NULL, INT, FLOAT, TEXT, TRUE, FALSE)
//     followed by its payload: varint integers, 8-byte big-endian IEEE
//     754 floats, uvarint-length-prefixed strings. The encoding is exact
//     and type-preserving — Int(3) and Float(3) stay distinct — because
//     the conformance contract compares results byte for byte.
//   - A row is a uvarint cell count followed by its values; a result
//     header is a uvarint column count followed by length-prefixed names.
//   - A query response is one header frame (the columns), any number of
//     row-batch frames (uvarint row count, then that many rows — batches
//     default to 256 rows, cut early at a byte cap, so large results
//     stream and the coordinator can start merging before the shard
//     finishes), and one end frame carrying the total row count as an
//     integrity check. Servers produce batches incrementally through
//     ExecuteStream when the backend supports it, so a shard never holds
//     more than one batch of a result in memory. Existence probes answer
//     with a single bool frame; statistics requests return an encoded
//     relational.ColumnStats (AppendColumnStats/DecodeColumnStats —
//     exported fields only, with derived state rehydrated on decode);
//     relevance requests return an 8-byte float.
//   - Backend rejections arrive as an error frame (kind byte + message)
//     in place of the response: query-level errors are final and are
//     never retried, preserving error-disposition parity with local
//     execution. An error frame after row batches have already been
//     written aborts the stream (the connection is dropped — the header
//     cannot be unsent). Frames that are truncated, over-long or
//     undecodable are typed protocol errors — the transport closes the
//     connection and retries elsewhere rather than hanging.
//
// # Columnar row batches (protocol v2)
//
// Protocol version 2 adds a columnar row-batch frame alongside the plain
// one, negotiated per connection: a client opens with a hello frame naming
// the highest version it speaks, the server clamps to what it implements
// and acknowledges. A connection that never says hello is a v1 connection
// (exactly how pre-hello clients behave), and a pre-hello server answers
// the unknown frame with an in-band error the client takes as "v1" — both
// directions degrade to row frames without breaking.
//
// The columnar payload (columnar.go) is a uvarint row count and column
// count followed by one encoded vector per column, each opening with an
// encoding tag:
//
//   - Plain (0): the column's cells in row order, value codec as above.
//   - Dictionary (1): uvarint dictionary size, the distinct encoded
//     values, then one uvarint index per row — chosen for low-cardinality
//     columns (at most 512 distinct values, and never wider than plain).
//   - Run-length (2): uvarint run count, then (uvarint length, value)
//     pairs that must tile the batch exactly — chosen when sorted or
//     constant columns make runs pay.
//
// The encoder picks per column by measuring: each candidate is built and
// kept only if strictly smaller, with distinct counts from the backend's
// column statistics (sql.EncodingHint) vetoing hopeless dictionary
// attempts up front. Equality is on encoded bytes, so type-preservation
// survives compression (Int(3) and Float(3) never share a dictionary
// slot or a run). Decoding enforces the same caps the encoder obeys
// (rows, columns, total cells, dictionary size); truncated payloads,
// out-of-range indexes, runs that do not tile and trailing bytes are
// typed protocol errors — fuzzed continuously (FuzzColumnarDecode). A v2
// stream may interleave plain row-batch frames (a batch the encoder
// could not improve falls back), so v2 is a superset of v1, and a batch
// whose columnar form would be larger than its row form always ships as
// rows — v2 never costs bytes.
//
// # Replicated writes and fleet control (protocol v3)
//
// Protocol version 3 adds the write-path and fleet-control frames, under
// the same hello negotiation as v2 (a server that clamps below v3
// answers them with an unknown-frame error, which the client surfaces as
// a typed read-only rejection — mixed-version fleets degrade to
// read-only rather than misbehaving). Liveness probing reuses the ping
// frame every version has had: an empty-payload request answered by an
// empty pong, the transport's lowest-cost health check.
//
// The five v3 requests and their responses:
//
//   - insert (0x08): uvarint epoch, then table name and one encoded row.
//     Sent by the coordinator to the shard group's primary. The primary
//     applies the row, synchronously replicates it to its backups, and
//     answers with an insert-ack: uvarint epoch, uvarint op sequence,
//     then a per-backup list of (name, ok byte) — the coordinator pulls
//     any not-ok backup from its read rotation until replay.
//   - replicate (0x09): uvarint epoch, uvarint sequence, table, row.
//     Sent primary → backup (and coordinator → backup during replay). A
//     backup applies sequences strictly in order: seq == lastSeq+1
//     applies, seq <= lastSeq acks idempotently (duplicate delivery
//     after a retry), a gap answers a lagging error that routes the
//     backup into replay.
//   - configure (0x0a): uvarint epoch, role byte (none/primary/backup),
//     then the primary's backup name list. Installs a replica's role and
//     fences the epoch; answers a status response.
//   - status (0x0b): empty; answers uvarint epoch, role byte, uvarint
//     last applied sequence — what probes and failover decisions read.
//   - ops (0x0c): uvarint after-sequence, uvarint max; answers the
//     retained op-log suffix as (uvarint seq, table, row) entries — the
//     replay feed for a rejoining replica.
//
// Writes are epoch-fenced: every insert, replicate and configure carries
// the coordinator's epoch, and a replica that has seen a newer epoch
// rejects older ones with a fenced error (distinct error kinds exist for
// fenced, lagging and read-only, each surfaced as a typed sentinel
// client-side). A failover bumps the epoch, so a deposed primary's
// in-flight writes die at the replicas instead of forking history.
//
// Exchanges are strict request/response per connection (no pipelining);
// clients get concurrency from a connection pool, and resilience from
// retry-with-backoff plus hedged reads (see internal/transport).
package sql
