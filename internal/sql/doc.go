// Package sql implements the embedded SQL engine QUEST executes its
// generated queries against: a parser for a SELECT dialect (joins,
// aggregation, DISTINCT, ORDER BY/LIMIT, LIKE and the full-text MATCH
// operator), a cost-aware planner, and a streaming executor.
//
// # Architecture
//
// Execution is layered:
//
//	Parse → planSelect (planner) → streaming pipeline → finish (projection,
//	aggregation, DISTINCT, ordering, limits)
//
// The planner (plan.go) sits between Execute and the interpreter and makes
// three decisions per statement:
//
//   - Access paths. Each base table becomes a scan node. An equality
//     conjunct `col = literal` is routed through a per-column hash index
//     (relational.Table.EnsureIndex) when the column is a declared key —
//     primary key, foreign key, or FK-referenced — or when the table has
//     at least LazyIndexThreshold rows, in which case the planner builds
//     an on-demand index on first use. Everything else is a full scan.
//   - Predicate pushdown. The WHERE conjunction is split; single-table
//     conjuncts are evaluated inside the owning scan, below every join.
//     Conjuncts on the null-extended side of a LEFT JOIN are pinned above
//     that join (pushing them below would resurrect filtered rows), and
//     multi-table conjuncts run right after the earliest join that sees
//     all their tables. Aggregate or unresolvable conjuncts stay in the
//     final filter so errors surface exactly like the reference
//     interpreter's: per joined row.
//   - Join strategy. Equi-join conjuncts in ON drive a hash join; the
//     build side is the side with the smaller cardinality estimate
//     (index-probe result sizes are exact, filtered scans use a
//     halving-per-predicate heuristic). LEFT joins always build right so
//     unmatched left rows can be null-extended. Non-equi ONs fall back to
//     a nested loop.
//
// The executor streams rows through the join pipeline with callback
// iterators, which gives two short-circuit modes: Exists stops at the
// first surviving tuple (the engine's PruneEmpty validation path — cost
// independent of result size), and Execute stops at OFFSET+LIMIT rows
// when nothing downstream reorders or merges.
//
// Every Result carries the QueryPlan that produced it, and Plan/Explain
// expose the same structure without executing — tests and questbench
// assert access paths against it.
//
// # Plan cache and invalidation
//
// Plans are memoized in a package-level LRU keyed on (database ID, data
// version, canonical SQL). The data version is the fold of every table's
// mutation counter, so any Insert makes previous entries unreachable —
// cached index-probe ordinals can never go stale. Equality indexes
// themselves are maintained incrementally by Insert and therefore never
// invalidate; Table.DropIndexes exists for bulk reloads. Planned queries
// are immutable after construction, so one cached plan serves concurrent
// Execute/Exists calls.
//
// ExecuteFullScan retains the pre-planner interpreter (full scans, WHERE
// evaluated per joined row) as the reference implementation; the
// equivalence suite in equivalence_test.go continuously checks the two
// paths agree, NULL-key join rows and LEFT JOIN edge cases included.
package sql
