package sql

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/relational"
)

// This file is the row codec of the shard wire protocol (see the package
// doc's "Wire protocol" section): a compact, self-describing binary
// encoding for values, rows, result headers and column-statistics
// snapshots. The fragment side of the wire contract is textual — a
// TableFragment ships as its Stmt.SQL() — but result rows move in bulk, so
// they get a binary form: one tag byte per value, varint integers,
// length-prefixed strings. Every Append* function appends to dst and
// returns the extended slice; every Decode* function returns the decoded
// value plus the number of bytes consumed, so frames concatenate without
// per-item framing.
//
// The encoding is exact: a decoded value compares equal (relational.Compare
// and Value.Key alike) to the encoded one, type included — Int(3) and
// Float(3) stay distinct on the wire, which the conformance harness's
// byte-identical comparison depends on.

// Value tag bytes. The tag is the first byte of every encoded value.
const (
	tagNull  byte = 0
	tagInt   byte = 1 // varint
	tagFloat byte = 2 // 8-byte big-endian IEEE 754 bits
	tagStr   byte = 3 // uvarint length + bytes
	tagTrue  byte = 4
	tagFalse byte = 5
)

// AppendValue appends the wire encoding of one value.
func AppendValue(dst []byte, v relational.Value) []byte {
	switch v.Type() {
	case relational.TypeNull:
		return append(dst, tagNull)
	case relational.TypeInt:
		dst = append(dst, tagInt)
		return binary.AppendVarint(dst, v.AsInt())
	case relational.TypeFloat:
		dst = append(dst, tagFloat)
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(v.AsFloat()))
	case relational.TypeString:
		dst = append(dst, tagStr)
		return appendString(dst, v.AsString())
	case relational.TypeBool:
		if v.AsBool() {
			return append(dst, tagTrue)
		}
		return append(dst, tagFalse)
	}
	// Unreachable for values built through the public constructors; encode
	// as NULL rather than panic so a corrupt value cannot take a server down.
	return append(dst, tagNull)
}

// DecodeValue decodes one value and reports how many bytes it consumed.
func DecodeValue(b []byte) (relational.Value, int, error) {
	if len(b) == 0 {
		return relational.Null(), 0, fmt.Errorf("sql: truncated value")
	}
	switch b[0] {
	case tagNull:
		return relational.Null(), 1, nil
	case tagInt:
		n, sz := binary.Varint(b[1:])
		if sz <= 0 {
			return relational.Null(), 0, fmt.Errorf("sql: truncated varint value")
		}
		return relational.Int(n), 1 + sz, nil
	case tagFloat:
		if len(b) < 9 {
			return relational.Null(), 0, fmt.Errorf("sql: truncated float value")
		}
		return relational.Float(math.Float64frombits(binary.BigEndian.Uint64(b[1:9]))), 9, nil
	case tagStr:
		s, sz, err := decodeString(b[1:])
		if err != nil {
			return relational.Null(), 0, err
		}
		return relational.String_(s), 1 + sz, nil
	case tagTrue:
		return relational.Bool(true), 1, nil
	case tagFalse:
		return relational.Bool(false), 1, nil
	}
	return relational.Null(), 0, fmt.Errorf("sql: unknown value tag 0x%02x", b[0])
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func decodeString(b []byte) (string, int, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return "", 0, fmt.Errorf("sql: truncated string length")
	}
	if n > uint64(len(b)-sz) {
		return "", 0, fmt.Errorf("sql: string length %d exceeds remaining %d bytes", n, len(b)-sz)
	}
	return string(b[sz : sz+int(n)]), sz + int(n), nil
}

// AppendRow appends one row: uvarint cell count, then each value.
func AppendRow(dst []byte, r relational.Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r)))
	for _, v := range r {
		dst = AppendValue(dst, v)
	}
	return dst
}

// DecodeRow decodes one row and reports how many bytes it consumed.
func DecodeRow(b []byte) (relational.Row, int, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("sql: truncated row header")
	}
	// A cell takes at least one byte, so the count cannot legitimately
	// exceed the remaining payload — reject before allocating.
	if n > uint64(len(b)-sz) {
		return nil, 0, fmt.Errorf("sql: row cell count %d exceeds remaining %d bytes", n, len(b)-sz)
	}
	off := sz
	row := make(relational.Row, n)
	for i := range row {
		v, vsz, err := DecodeValue(b[off:])
		if err != nil {
			return nil, 0, err
		}
		row[i] = v
		off += vsz
	}
	return row, off, nil
}

// AppendColumns appends a result header: uvarint column count, then each
// name length-prefixed.
func AppendColumns(dst []byte, cols []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(cols)))
	for _, c := range cols {
		dst = appendString(dst, c)
	}
	return dst
}

// DecodeColumns decodes a result header and reports the bytes consumed.
func DecodeColumns(b []byte) ([]string, int, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("sql: truncated column header")
	}
	if n > uint64(len(b)-sz) {
		return nil, 0, fmt.Errorf("sql: column count %d exceeds remaining %d bytes", n, len(b)-sz)
	}
	off := sz
	cols := make([]string, n)
	for i := range cols {
		s, ssz, err := decodeString(b[off:])
		if err != nil {
			return nil, 0, err
		}
		cols[i] = s
		off += ssz
	}
	return cols, off, nil
}

// AppendColumnStats appends a per-column statistics snapshot — the payload
// of the wire protocol's statistics response. Only exported fields travel;
// the decoder rehydrates derived state.
func AppendColumnStats(dst []byte, cs *relational.ColumnStats) []byte {
	dst = appendString(dst, cs.Column)
	dst = binary.AppendUvarint(dst, cs.Version)
	dst = binary.AppendVarint(dst, int64(cs.Rows))
	dst = binary.AppendVarint(dst, int64(cs.NullCount))
	dst = binary.AppendVarint(dst, int64(cs.Distinct))
	dst = AppendValue(dst, cs.Min)
	dst = AppendValue(dst, cs.Max)
	dst = binary.AppendUvarint(dst, uint64(len(cs.MCVs)))
	for _, m := range cs.MCVs {
		dst = AppendValue(dst, m.Value)
		dst = binary.AppendVarint(dst, int64(m.Count))
	}
	dst = binary.AppendUvarint(dst, uint64(len(cs.Buckets)))
	for _, bk := range cs.Buckets {
		dst = AppendValue(dst, bk.Upper)
		dst = binary.AppendVarint(dst, int64(bk.Count))
		dst = binary.AppendVarint(dst, int64(bk.Distinct))
	}
	return dst
}

// DecodeColumnStats decodes a statistics snapshot, rehydrating derived
// fields, and reports the bytes consumed.
func DecodeColumnStats(b []byte) (*relational.ColumnStats, int, error) {
	cs := &relational.ColumnStats{}
	col, off, err := decodeString(b)
	if err != nil {
		return nil, 0, err
	}
	cs.Column = col
	ver, sz := binary.Uvarint(b[off:])
	if sz <= 0 {
		return nil, 0, fmt.Errorf("sql: truncated stats version")
	}
	cs.Version = ver
	off += sz
	ints := [3]*int{&cs.Rows, &cs.NullCount, &cs.Distinct}
	for _, p := range ints {
		n, isz := binary.Varint(b[off:])
		if isz <= 0 {
			return nil, 0, fmt.Errorf("sql: truncated stats counter")
		}
		*p = int(n)
		off += isz
	}
	for _, p := range [2]*relational.Value{&cs.Min, &cs.Max} {
		v, vsz, verr := DecodeValue(b[off:])
		if verr != nil {
			return nil, 0, verr
		}
		*p = v
		off += vsz
	}
	nm, sz := binary.Uvarint(b[off:])
	if sz <= 0 || nm > uint64(len(b)-off-sz) {
		return nil, 0, fmt.Errorf("sql: malformed stats MCV list")
	}
	off += sz
	cs.MCVs = make([]relational.MCV, nm)
	for i := range cs.MCVs {
		v, vsz, verr := DecodeValue(b[off:])
		if verr != nil {
			return nil, 0, verr
		}
		off += vsz
		c, csz := binary.Varint(b[off:])
		if csz <= 0 {
			return nil, 0, fmt.Errorf("sql: truncated MCV count")
		}
		off += csz
		cs.MCVs[i] = relational.MCV{Value: v, Count: int(c)}
	}
	nb, sz := binary.Uvarint(b[off:])
	if sz <= 0 || nb > uint64(len(b)-off-sz) {
		return nil, 0, fmt.Errorf("sql: malformed stats histogram")
	}
	off += sz
	cs.Buckets = make([]relational.Bucket, nb)
	for i := range cs.Buckets {
		v, vsz, verr := DecodeValue(b[off:])
		if verr != nil {
			return nil, 0, verr
		}
		off += vsz
		c, csz := binary.Varint(b[off:])
		if csz <= 0 {
			return nil, 0, fmt.Errorf("sql: truncated bucket count")
		}
		off += csz
		d, dsz := binary.Varint(b[off:])
		if dsz <= 0 {
			return nil, 0, fmt.Errorf("sql: truncated bucket distinct")
		}
		off += dsz
		cs.Buckets[i] = relational.Bucket{Upper: v, Count: int(c), Distinct: int(d)}
	}
	cs.Rehydrate()
	return cs, off, nil
}
