package sql

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/relational"
)

// streamAll collects ExecuteStream's output for parity checks.
func streamAll(t *testing.T, db *relational.Database, src string) ([]string, []relational.Row, error) {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	var cols []string
	var rows []relational.Row
	starts := 0
	err = ExecuteStream(db, stmt,
		func(c []string) error { starts++; cols = c; return nil },
		func(r relational.Row) error { rows = append(rows, r); return nil })
	if err == nil && starts != 1 {
		t.Fatalf("start called %d times for %q", starts, src)
	}
	return cols, rows, err
}

// TestExecuteStreamParity replays a spread of query shapes — streamable
// pipelines, the materialized fallbacks, LIMIT/OFFSET edges, vectorizable
// and non-vectorizable filters — and demands the exact Execute result.
func TestExecuteStreamParity(t *testing.T) {
	db := testDB(t)
	queries := []string{
		"SELECT * FROM movie",
		"SELECT title FROM movie WHERE year > 2000",
		"SELECT title FROM movie WHERE year = NULL",
		"SELECT title FROM movie WHERE year IS NULL",
		"SELECT title FROM movie WHERE year IS NOT NULL AND rating >= 6.5",
		"SELECT title FROM movie WHERE title LIKE '%river%'",
		"SELECT title FROM movie WHERE year IN (1994, 2008, NULL)",
		"SELECT title FROM movie WHERE 2000 < year",
		"SELECT title FROM movie WHERE year + 0 > 2000", // not vectorizable
		"SELECT title FROM movie LIMIT 2",
		"SELECT title FROM movie LIMIT 0",
		"SELECT title FROM movie LIMIT 2 OFFSET 1",
		"SELECT title FROM movie LIMIT 10 OFFSET 3",
		"SELECT title FROM movie ORDER BY year DESC LIMIT 2",
		"SELECT DISTINCT role FROM cast_info",
		"SELECT COUNT(*) FROM cast_info",
		`SELECT person.name, movie.title FROM person
			JOIN cast_info ON cast_info.person_id = person.person_id
			JOIN movie ON movie.movie_id = cast_info.movie_id`,
		`SELECT movie.title, cast_info.role FROM movie
			LEFT JOIN cast_info ON cast_info.movie_id = movie.movie_id
			WHERE movie.year IS NOT NULL`,
		`SELECT person.name FROM person
			JOIN cast_info ON cast_info.person_id = person.person_id
			WHERE cast_info.role = 'actor' LIMIT 1`,
	}
	for _, q := range queries {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		want, werr := Execute(db, stmt)
		cols, rows, gerr := streamAll(t, db, q)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("%q: Execute err=%v, ExecuteStream err=%v", q, werr, gerr)
		}
		if werr != nil {
			continue
		}
		if len(cols) != len(want.Columns) {
			t.Fatalf("%q: columns %v, want %v", q, cols, want.Columns)
		}
		for i := range cols {
			if cols[i] != want.Columns[i] {
				t.Fatalf("%q: columns %v, want %v", q, cols, want.Columns)
			}
		}
		if len(rows) != len(want.Rows) {
			t.Fatalf("%q: %d rows, want %d", q, len(rows), len(want.Rows))
		}
		for i := range rows {
			if !bytes.Equal(AppendRow(nil, rows[i]), AppendRow(nil, want.Rows[i])) {
				t.Fatalf("%q row %d: got %v want %v", q, i, rows[i], want.Rows[i])
			}
		}
	}
}

func TestExecuteStreamSinkErrorAborts(t *testing.T) {
	db := testDB(t)
	stmt, err := Parse("SELECT title FROM movie")
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("sink full")
	emitted := 0
	err = ExecuteStream(db, stmt,
		func([]string) error { return nil },
		func(relational.Row) error {
			emitted++
			if emitted == 2 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want sink error", err)
	}
	if emitted != 2 {
		t.Fatalf("emit called %d times after abort", emitted)
	}

	err = ExecuteStream(db, stmt,
		func([]string) error { return boom },
		func(relational.Row) error { t.Fatal("emit after failed start"); return nil })
	if !errors.Is(err, boom) {
		t.Fatalf("start err = %v, want sink error", err)
	}
}
