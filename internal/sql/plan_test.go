package sql

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/relational"
)

func planFor(t *testing.T, db *relational.Database, src string) *QueryPlan {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	qp, err := Plan(db, stmt)
	if err != nil {
		t.Fatalf("Plan(%q): %v", src, err)
	}
	return qp
}

// TestPlanIndexVsFullScan is the core introspection contract: an equality
// predicate on a declared key column routes through the hash index, while
// an equality predicate on a non-indexed column of a small table falls
// back to a filtered full scan.
func TestPlanIndexVsFullScan(t *testing.T) {
	db := testDB(t)

	qp := planFor(t, db, "SELECT title FROM movie WHERE movie_id = 2")
	if qp.Scans[0].Access != AccessIndexEq {
		t.Fatalf("PK equality access = %q, want %q (plan %+v)", qp.Scans[0].Access, AccessIndexEq, qp)
	}
	if qp.Scans[0].IndexColumn != "movie_id" || qp.Scans[0].EstRows != 1 {
		t.Errorf("index scan = %+v, want movie_id probe with 1 row", qp.Scans[0])
	}
	if len(qp.Scans[0].Pushed) != 0 {
		t.Errorf("index-served predicate must not be re-evaluated: pushed = %v", qp.Scans[0].Pushed)
	}

	qp = planFor(t, db, "SELECT title FROM movie WHERE title = 'dark river'")
	if qp.Scans[0].Access != AccessFullScan {
		t.Fatalf("non-indexed equality access = %q, want %q", qp.Scans[0].Access, AccessFullScan)
	}
	if len(qp.Scans[0].Pushed) != 1 {
		t.Errorf("full scan must keep the predicate: pushed = %v", qp.Scans[0].Pushed)
	}

	// FK columns are index-worthy even on small tables.
	qp = planFor(t, db, "SELECT cast_id FROM cast_info WHERE person_id = 1")
	if qp.Scans[0].Access != AccessIndexEq || qp.Scans[0].IndexColumn != "person_id" {
		t.Errorf("FK equality = %+v, want person_id index probe", qp.Scans[0])
	}
}

// TestPlanPredicatePushdown checks that single-table WHERE conjuncts drop
// below the join into the owning scan, leaving no top-level filter.
func TestPlanPredicatePushdown(t *testing.T) {
	db := testDB(t)
	qp := planFor(t, db, `SELECT person.name FROM person
		JOIN cast_info ON cast_info.person_id = person.person_id
		WHERE cast_info.role = 'actor' AND person.name LIKE 'a%'`)
	if len(qp.Filter) != 0 {
		t.Errorf("top-level filter should be empty after pushdown: %v", qp.Filter)
	}
	if got := strings.Join(qp.Scans[0].Pushed, ";"); !strings.Contains(got, "LIKE") {
		t.Errorf("person scan should carry the LIKE predicate, got %q", got)
	}
	if got := strings.Join(qp.Scans[1].Pushed, ";"); !strings.Contains(got, "role") {
		t.Errorf("cast_info scan should carry the role predicate, got %q", got)
	}
	if qp.Joins[0].Strategy != StrategyHash {
		t.Errorf("join strategy = %q, want hash", qp.Joins[0].Strategy)
	}
}

// TestPlanLeftJoinBlocksPushdown: a WHERE predicate on the null-extended
// side of a LEFT JOIN must stay above the join (pushing it below would
// resurrect rows the predicate filters out).
func TestPlanLeftJoinBlocksPushdown(t *testing.T) {
	db := testDB(t)
	qp := planFor(t, db, `SELECT movie.title FROM movie
		LEFT JOIN cast_info ON cast_info.movie_id = movie.movie_id
		WHERE cast_info.role = 'actor'`)
	if len(qp.Scans[1].Pushed) != 0 || qp.Scans[1].Access != AccessFullScan {
		t.Errorf("predicate was pushed below a LEFT JOIN: %+v", qp.Scans[1])
	}
	if len(qp.Joins[0].Filter) != 1 {
		t.Errorf("predicate should sit right after the join: %+v", qp.Joins[0])
	}
	if !qp.Joins[0].Outer {
		t.Errorf("join not marked outer: %+v", qp.Joins[0])
	}
}

// TestPlanBuildSideSelection: when an index probe makes the left side
// provably smaller, the hash join builds on the left and probes with the
// right table. LEFT joins must never swap (they track unmatched left
// rows).
func TestPlanBuildSideSelection(t *testing.T) {
	db := testDB(t)
	qp := planFor(t, db, `SELECT person.name FROM person
		JOIN cast_info ON cast_info.person_id = person.person_id
		WHERE person.person_id = 1`)
	if qp.Scans[0].Access != AccessIndexEq {
		t.Fatalf("left scan = %+v, want index probe", qp.Scans[0])
	}
	if !qp.Joins[0].BuildLeft {
		t.Errorf("1-row left side should be the build side: %+v", qp.Joins[0])
	}

	qp = planFor(t, db, `SELECT movie.title FROM movie
		LEFT JOIN cast_info ON cast_info.movie_id = movie.movie_id`)
	if qp.Joins[0].BuildLeft {
		t.Errorf("LEFT JOIN must not build on the left: %+v", qp.Joins[0])
	}
}

// TestPlanAggregateStaysOnTop: aggregate conjuncts cannot be pushed; they
// remain in the final filter so the per-row error surfaces exactly like
// the un-planned interpreter.
func TestPlanAggregateStaysOnTop(t *testing.T) {
	db := testDB(t)
	qp := planFor(t, db, "SELECT COUNT(*) FROM movie WHERE COUNT(*) > 1")
	if len(qp.Filter) != 1 {
		t.Errorf("aggregate conjunct should be a final filter: %+v", qp)
	}
	if _, err := Run(db, "SELECT COUNT(*) FROM movie WHERE COUNT(*) > 1"); err == nil {
		t.Error("aggregate in WHERE must still fail at execution")
	}
}

// TestPlanCache: identical statements against unchanged data reuse the
// cached plan; any table mutation changes the database version and makes
// the cached entry unreachable.
func TestPlanCache(t *testing.T) {
	db := testDB(t)
	stmt, err := Parse("SELECT title FROM movie WHERE movie_id = 1")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := planSelect(db, stmt)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := planSelect(db, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("unchanged data: second plan should be the cached pointer")
	}
	if err := db.Insert("movie", relational.Row{
		relational.Int(99), relational.String_("new movie"), relational.Int(2020), relational.Float(5.0),
	}); err != nil {
		t.Fatal(err)
	}
	p3, err := planSelect(db, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("table mutation must invalidate the cached plan")
	}
}

// TestResultCarriesPlan: Execute attaches the plan it ran.
func TestResultCarriesPlan(t *testing.T) {
	db := testDB(t)
	res, err := Run(db, "SELECT title FROM movie WHERE movie_id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || res.Plan.Scans[0].Access != AccessIndexEq {
		t.Errorf("Result.Plan = %+v, want attached index-scan plan", res.Plan)
	}
	full, err := ExecuteFullScan(db, mustParse(t, "SELECT title FROM movie WHERE movie_id = 1"))
	if err != nil {
		t.Fatal(err)
	}
	if full.Plan != nil {
		t.Error("full-scan reference path must not claim a plan")
	}
}

// TestExists covers the existence fast path against materialized truth.
func TestExists(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		src  string
		want bool
	}{
		{"SELECT * FROM movie WHERE movie_id = 1", true},
		{"SELECT * FROM movie WHERE movie_id = 999", false},
		{"SELECT * FROM movie WHERE year IS NULL", true},
		{"SELECT * FROM movie WHERE year = 1800", false},
		{"SELECT * FROM movie LIMIT 0", false},
		{"SELECT * FROM movie ORDER BY title OFFSET 3", true},
		{"SELECT * FROM movie OFFSET 4", false},
		{`SELECT person.name FROM person
			JOIN cast_info ON cast_info.person_id = person.person_id
			WHERE cast_info.role = 'director'`, true},
		{`SELECT person.name FROM person
			JOIN cast_info ON cast_info.person_id = person.person_id
			WHERE cast_info.role = 'producer'`, false},
		// Aggregation fallback: a global aggregate always yields one row.
		{"SELECT COUNT(*) FROM movie WHERE year = 1800", true},
		{"SELECT role, COUNT(*) FROM cast_info GROUP BY role HAVING COUNT(*) > 5", false},
		{"SELECT DISTINCT role FROM cast_info OFFSET 1", true},
		{"SELECT DISTINCT role FROM cast_info OFFSET 2", false},
	}
	for _, c := range cases {
		stmt := mustParse(t, c.src)
		got, err := Exists(db, stmt)
		if err != nil {
			t.Errorf("Exists(%q): %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("Exists(%q) = %v, want %v", c.src, got, c.want)
		}
		// Cross-check against full materialization.
		res, err := ExecuteFullScan(db, stmt)
		if err != nil {
			t.Fatalf("reference Execute(%q): %v", c.src, err)
		}
		if (len(res.Rows) > 0) != c.want {
			t.Errorf("reference disagrees for %q: %d rows", c.src, len(res.Rows))
		}
	}
}

func mustParse(t *testing.T, src string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

// bigDB scales testDB's shape past LazyIndexThreshold with skew: one movie
// year dominates, cast_info is 10x movie, and person is small — the layout
// where written-order joins and halving-based estimates fall over.
func bigDB(t testing.TB) *relational.Database {
	s := relational.NewSchema()
	add := func(ts *relational.TableSchema) {
		if err := s.AddTable(ts); err != nil {
			t.Fatal(err)
		}
	}
	add(&relational.TableSchema{
		Name: "movie",
		Columns: []relational.Column{
			{Name: "movie_id", Type: relational.TypeInt, NotNull: true},
			{Name: "title", Type: relational.TypeString, NotNull: true},
			{Name: "year", Type: relational.TypeInt},
			{Name: "genre", Type: relational.TypeString},
		},
		PrimaryKey: "movie_id",
	})
	add(&relational.TableSchema{
		Name: "person",
		Columns: []relational.Column{
			{Name: "person_id", Type: relational.TypeInt, NotNull: true},
			{Name: "name", Type: relational.TypeString, NotNull: true},
		},
		PrimaryKey: "person_id",
	})
	add(&relational.TableSchema{
		Name: "cast_info",
		Columns: []relational.Column{
			{Name: "cast_id", Type: relational.TypeInt, NotNull: true},
			{Name: "movie_id", Type: relational.TypeInt, NotNull: true},
			{Name: "person_id", Type: relational.TypeInt, NotNull: true},
		},
		PrimaryKey: "cast_id",
		ForeignKeys: []relational.ForeignKey{
			{Column: "movie_id", RefTable: "movie", RefColumn: "movie_id"},
			{Column: "person_id", RefTable: "person", RefColumn: "person_id"},
		},
	})
	db := relational.MustNewDatabase("big", s)
	I, S := relational.Int, relational.String_
	genres := []string{"drama", "drama", "drama", "comedy", "noir"}
	for i := 1; i <= 600; i++ {
		year := 1950 + i%70
		if i%3 != 0 {
			year = 2000 // skew: two thirds of all movies share one year
		}
		db.Insert("movie", relational.Row{
			I(int64(i)), S(fmt.Sprintf("title %d", i)), I(int64(year)), S(genres[i%len(genres)]),
		})
	}
	for i := 1; i <= 40; i++ {
		db.Insert("person", relational.Row{I(int64(i)), S(fmt.Sprintf("person %d", i))})
	}
	for i := 1; i <= 6000; i++ {
		db.Insert("cast_info", relational.Row{I(int64(i)), I(int64(1 + i%600)), I(int64(1 + i%40))})
	}
	return db
}

// TestPlanRangeScan: BETWEEN and bare inequalities route through the
// sorted index, combining every bound on the chosen column, and the probe
// conjuncts are not re-evaluated.
func TestPlanRangeScan(t *testing.T) {
	db := bigDB(t)
	qp := planFor(t, db, "SELECT title FROM movie WHERE year BETWEEN 1960 AND 1965")
	if qp.Scans[0].Access != AccessIndexRange || qp.Scans[0].IndexColumn != "year" {
		t.Fatalf("BETWEEN access = %+v, want range scan on year", qp.Scans[0])
	}
	if len(qp.Scans[0].Pushed) != 0 {
		t.Errorf("range-served conjuncts must leave the pushed list: %v", qp.Scans[0].Pushed)
	}
	res, err := Run(db, "SELECT title FROM movie WHERE year BETWEEN 1960 AND 1965")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ExecuteFullScan(db, mustParse(t, "SELECT title FROM movie WHERE year BETWEEN 1960 AND 1965"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(ref.Rows) || len(res.Rows) == 0 {
		t.Errorf("range scan rows = %d, reference = %d", len(res.Rows), len(ref.Rows))
	}
	// Strict + redundant bounds combine into one probe.
	qp = planFor(t, db, "SELECT title FROM movie WHERE year > 1960 AND year > 1962 AND year <= 1965")
	if qp.Scans[0].Access != AccessIndexRange {
		t.Fatalf("multi-bound access = %+v, want range scan", qp.Scans[0])
	}
	if got := qp.Scans[0].Lookup; got != "> 1962 AND <= 1965" {
		t.Errorf("combined bounds = %q, want the tightest interval", got)
	}
}

// TestPlanInListScan: IN over literals unions hash postings; NULLs in the
// list are ignored (they cannot turn a row TRUE).
func TestPlanInListScan(t *testing.T) {
	db := bigDB(t)
	src := "SELECT title FROM movie WHERE movie_id IN (3, 5, NULL, 5, 999999)"
	qp := planFor(t, db, src)
	if qp.Scans[0].Access != AccessIndexIn || qp.Scans[0].IndexColumn != "movie_id" {
		t.Fatalf("IN access = %+v, want index-in on movie_id", qp.Scans[0])
	}
	if qp.Scans[0].EstRows != 2 {
		t.Errorf("IN est = %d, want 2 (dedup + absent id)", qp.Scans[0].EstRows)
	}
	res, err := Run(db, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("IN rows = %d, want 2", len(res.Rows))
	}
	// Non-literal list members stay on the interpreted path.
	qp = planFor(t, db, "SELECT title FROM movie WHERE movie_id IN (3, movie_id)")
	if qp.Scans[0].Access == AccessIndexIn {
		t.Errorf("non-literal IN list must not probe: %+v", qp.Scans[0])
	}
}

// TestPlanMatchPostings: MATCH on a large table scans only posting rows.
func TestPlanMatchPostings(t *testing.T) {
	db := bigDB(t)
	src := "SELECT title FROM movie WHERE title MATCH '77'"
	qp := planFor(t, db, src)
	if qp.Scans[0].Access != AccessMatchPostings {
		t.Fatalf("MATCH access = %+v, want match-postings", qp.Scans[0])
	}
	res, err := Run(db, src)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ExecuteFullScan(db, mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(ref.Rows) || len(res.Rows) == 0 {
		t.Errorf("match postings rows = %d, reference = %d", len(res.Rows), len(ref.Rows))
	}
	// Small tables keep filtering the scan (index build would not pay off).
	small := testDB(t)
	qp = planFor(t, small, "SELECT title FROM movie WHERE title MATCH 'dark'")
	if qp.Scans[0].Access != AccessFullScan {
		t.Errorf("small-table MATCH = %+v, want full scan", qp.Scans[0])
	}
}

// TestPlanStatsEstimates: the estimator must see skew — the dominant year
// estimates high (MCV hit), a rare year low, and both far from the old
// halving heuristic's len/2.
func TestPlanStatsEstimates(t *testing.T) {
	db := bigDB(t)
	hot := planFor(t, db, "SELECT title FROM movie WHERE year = 2000")
	cold := planFor(t, db, "SELECT title FROM movie WHERE year = 1967")
	if hot.Scans[0].Access != AccessIndexEq {
		t.Fatalf("year equality on a large table should probe, got %+v", hot.Scans[0])
	}
	if hot.Scans[0].EstRows < 300 {
		t.Errorf("hot-year est = %d, want the skewed majority (~400)", hot.Scans[0].EstRows)
	}
	if cold.Scans[0].EstRows > 20 {
		t.Errorf("cold-year est = %d, want a handful", cold.Scans[0].EstRows)
	}
	// Full-scan estimate on a non-indexed-worthy predicate shape: genre MATCH
	// keeps the scan but the estimate comes from the pattern default, and a
	// pushed genre equality consults the MCV list.
	qp := planFor(t, db, "SELECT title FROM movie WHERE genre = 'noir' AND title LIKE '%x%'")
	est := qp.Scans[0].EstRows
	if est == 0 || est > 300 {
		t.Errorf("noir+LIKE est = %d, want a statistics-scaled fraction (noir is 1/5 of rows)", est)
	}
}

// TestPlanJoinReorder: on a skewed 3-way join written fact-table-first, the
// enumerator must start from the selective relation, and the reordered plan
// must return exactly the reference rows.
func TestPlanJoinReorder(t *testing.T) {
	db := bigDB(t)
	src := `SELECT person.name, movie.title FROM cast_info
		JOIN movie ON movie.movie_id = cast_info.movie_id
		JOIN person ON person.person_id = cast_info.person_id
		WHERE person.person_id = 7`
	qp := planFor(t, db, src)
	if !qp.Reordered {
		t.Fatalf("skewed join not reordered: order %v", qp.JoinOrder)
	}
	if qp.JoinOrder[len(qp.JoinOrder)-1] == "person" {
		t.Errorf("selective relation joined last: %v", qp.JoinOrder)
	}
	if err := checkEquivalent(db, src); err != nil {
		t.Error(err)
	}

	// LEFT joins keep the written order: their order is semantics.
	qp = planFor(t, db, `SELECT movie.title FROM movie
		LEFT JOIN cast_info ON cast_info.movie_id = movie.movie_id
		LEFT JOIN person ON person.person_id = cast_info.person_id`)
	if qp.Reordered {
		t.Errorf("LEFT JOIN chain must not reorder: %v", qp.JoinOrder)
	}
	// SELECT * pins the written order (output column order is the contract).
	qp = planFor(t, db, `SELECT * FROM cast_info
		JOIN movie ON movie.movie_id = cast_info.movie_id
		JOIN person ON person.person_id = cast_info.person_id
		WHERE person.person_id = 7`)
	if qp.Reordered {
		t.Errorf("SELECT * must not reorder: %v", qp.JoinOrder)
	}
}

// TestSetJoinReorder: the toggle takes effect immediately (the plan cache
// key embeds it) and restores cleanly.
func TestSetJoinReorder(t *testing.T) {
	db := bigDB(t)
	src := `SELECT person.name FROM cast_info
		JOIN movie ON movie.movie_id = cast_info.movie_id
		JOIN person ON person.person_id = cast_info.person_id
		WHERE person.person_id = 7`
	on := planFor(t, db, src)
	if !on.Reordered {
		t.Fatal("expected reordered plan with the search enabled")
	}
	prev := SetJoinReorder(false)
	if !prev {
		t.Error("default reorder setting should be on")
	}
	defer SetJoinReorder(true)
	off := planFor(t, db, src)
	if off.Reordered {
		t.Error("disabled search still reordered")
	}
	if got := strings.Join(off.JoinOrder, ","); got != "cast_info,movie,person" {
		t.Errorf("written order = %q", got)
	}
	if err := checkEquivalent(db, src); err != nil {
		t.Error(err)
	}
}

// TestPlanActualRows: Execute annotates the plan with observed
// cardinalities; Plan (no execution) reports -1.
func TestPlanActualRows(t *testing.T) {
	db := bigDB(t)
	src := "SELECT title FROM movie WHERE year BETWEEN 1960 AND 1965"
	qp := planFor(t, db, src)
	if qp.Scans[0].ActualRows != -1 {
		t.Errorf("unexecuted plan actual = %d, want -1", qp.Scans[0].ActualRows)
	}
	res, err := Run(db, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Scans[0].ActualRows != len(res.Rows) {
		t.Errorf("actual = %d, want %d emitted rows", res.Plan.Scans[0].ActualRows, len(res.Rows))
	}
	// The shared cached plan must stay unannotated (concurrent executions
	// each get their own copy).
	qp2 := planFor(t, db, src)
	if qp2.Scans[0].ActualRows != -1 {
		t.Error("execution leaked actuals into the shared cached plan")
	}
	// Joins too.
	jres, err := Run(db, `SELECT person.name FROM cast_info
		JOIN person ON person.person_id = cast_info.person_id
		WHERE person.person_id = 7`)
	if err != nil {
		t.Fatal(err)
	}
	last := jres.Plan.Joins[len(jres.Plan.Joins)-1]
	if last.ActualRows != len(jres.Rows) {
		t.Errorf("join actual = %d, want %d", last.ActualRows, len(jres.Rows))
	}
}

// TestPlanReorderStaysFreshAfterInsert: captured probe ordinals and join
// orders key on the data version; inserting rows between plans must
// re-plan with fresh statistics rather than serve stale ordinals.
func TestPlanReorderStaysFreshAfterInsert(t *testing.T) {
	db := bigDB(t)
	src := "SELECT title FROM movie WHERE year BETWEEN 2100 AND 2200"
	res, err := Run(db, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("precondition: no future movies, got %d", len(res.Rows))
	}
	if err := db.Insert("movie", relational.Row{
		relational.Int(100001), relational.String_("future"), relational.Int(2150), relational.String_("scifi"),
	}); err != nil {
		t.Fatal(err)
	}
	res, err = Run(db, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("post-insert range rows = %d, want the new row (stale index served?)", len(res.Rows))
	}
}

// TestReorderForwardOnReferenceErrorParity: an ON conjunct referencing a
// table joined later fails in the written-order executor; the join-order
// search must not silently legalize it — both settings must error.
func TestReorderForwardOnReferenceErrorParity(t *testing.T) {
	db := bigDB(t)
	src := `SELECT person.name FROM movie
		JOIN cast_info ON cast_info.movie_id = person.person_id
		JOIN person ON person.person_id = cast_info.person_id`
	if _, err := Run(db, src); err == nil {
		t.Error("forward ON reference must error with reorder enabled")
	}
	prev := SetJoinReorder(false)
	defer SetJoinReorder(prev)
	if _, err := Run(db, src); err == nil {
		t.Error("forward ON reference must error in written order")
	}
}
