package sql

import (
	"strings"
	"testing"

	"repro/internal/relational"
)

func planFor(t *testing.T, db *relational.Database, src string) *QueryPlan {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	qp, err := Plan(db, stmt)
	if err != nil {
		t.Fatalf("Plan(%q): %v", src, err)
	}
	return qp
}

// TestPlanIndexVsFullScan is the core introspection contract: an equality
// predicate on a declared key column routes through the hash index, while
// an equality predicate on a non-indexed column of a small table falls
// back to a filtered full scan.
func TestPlanIndexVsFullScan(t *testing.T) {
	db := testDB(t)

	qp := planFor(t, db, "SELECT title FROM movie WHERE movie_id = 2")
	if qp.Scans[0].Access != AccessIndexEq {
		t.Fatalf("PK equality access = %q, want %q (plan %+v)", qp.Scans[0].Access, AccessIndexEq, qp)
	}
	if qp.Scans[0].IndexColumn != "movie_id" || qp.Scans[0].EstRows != 1 {
		t.Errorf("index scan = %+v, want movie_id probe with 1 row", qp.Scans[0])
	}
	if len(qp.Scans[0].Pushed) != 0 {
		t.Errorf("index-served predicate must not be re-evaluated: pushed = %v", qp.Scans[0].Pushed)
	}

	qp = planFor(t, db, "SELECT title FROM movie WHERE title = 'dark river'")
	if qp.Scans[0].Access != AccessFullScan {
		t.Fatalf("non-indexed equality access = %q, want %q", qp.Scans[0].Access, AccessFullScan)
	}
	if len(qp.Scans[0].Pushed) != 1 {
		t.Errorf("full scan must keep the predicate: pushed = %v", qp.Scans[0].Pushed)
	}

	// FK columns are index-worthy even on small tables.
	qp = planFor(t, db, "SELECT cast_id FROM cast_info WHERE person_id = 1")
	if qp.Scans[0].Access != AccessIndexEq || qp.Scans[0].IndexColumn != "person_id" {
		t.Errorf("FK equality = %+v, want person_id index probe", qp.Scans[0])
	}
}

// TestPlanPredicatePushdown checks that single-table WHERE conjuncts drop
// below the join into the owning scan, leaving no top-level filter.
func TestPlanPredicatePushdown(t *testing.T) {
	db := testDB(t)
	qp := planFor(t, db, `SELECT person.name FROM person
		JOIN cast_info ON cast_info.person_id = person.person_id
		WHERE cast_info.role = 'actor' AND person.name LIKE 'a%'`)
	if len(qp.Filter) != 0 {
		t.Errorf("top-level filter should be empty after pushdown: %v", qp.Filter)
	}
	if got := strings.Join(qp.Scans[0].Pushed, ";"); !strings.Contains(got, "LIKE") {
		t.Errorf("person scan should carry the LIKE predicate, got %q", got)
	}
	if got := strings.Join(qp.Scans[1].Pushed, ";"); !strings.Contains(got, "role") {
		t.Errorf("cast_info scan should carry the role predicate, got %q", got)
	}
	if qp.Joins[0].Strategy != StrategyHash {
		t.Errorf("join strategy = %q, want hash", qp.Joins[0].Strategy)
	}
}

// TestPlanLeftJoinBlocksPushdown: a WHERE predicate on the null-extended
// side of a LEFT JOIN must stay above the join (pushing it below would
// resurrect rows the predicate filters out).
func TestPlanLeftJoinBlocksPushdown(t *testing.T) {
	db := testDB(t)
	qp := planFor(t, db, `SELECT movie.title FROM movie
		LEFT JOIN cast_info ON cast_info.movie_id = movie.movie_id
		WHERE cast_info.role = 'actor'`)
	if len(qp.Scans[1].Pushed) != 0 || qp.Scans[1].Access != AccessFullScan {
		t.Errorf("predicate was pushed below a LEFT JOIN: %+v", qp.Scans[1])
	}
	if len(qp.Joins[0].Filter) != 1 {
		t.Errorf("predicate should sit right after the join: %+v", qp.Joins[0])
	}
	if !qp.Joins[0].Outer {
		t.Errorf("join not marked outer: %+v", qp.Joins[0])
	}
}

// TestPlanBuildSideSelection: when an index probe makes the left side
// provably smaller, the hash join builds on the left and probes with the
// right table. LEFT joins must never swap (they track unmatched left
// rows).
func TestPlanBuildSideSelection(t *testing.T) {
	db := testDB(t)
	qp := planFor(t, db, `SELECT person.name FROM person
		JOIN cast_info ON cast_info.person_id = person.person_id
		WHERE person.person_id = 1`)
	if qp.Scans[0].Access != AccessIndexEq {
		t.Fatalf("left scan = %+v, want index probe", qp.Scans[0])
	}
	if !qp.Joins[0].BuildLeft {
		t.Errorf("1-row left side should be the build side: %+v", qp.Joins[0])
	}

	qp = planFor(t, db, `SELECT movie.title FROM movie
		LEFT JOIN cast_info ON cast_info.movie_id = movie.movie_id`)
	if qp.Joins[0].BuildLeft {
		t.Errorf("LEFT JOIN must not build on the left: %+v", qp.Joins[0])
	}
}

// TestPlanAggregateStaysOnTop: aggregate conjuncts cannot be pushed; they
// remain in the final filter so the per-row error surfaces exactly like
// the un-planned interpreter.
func TestPlanAggregateStaysOnTop(t *testing.T) {
	db := testDB(t)
	qp := planFor(t, db, "SELECT COUNT(*) FROM movie WHERE COUNT(*) > 1")
	if len(qp.Filter) != 1 {
		t.Errorf("aggregate conjunct should be a final filter: %+v", qp)
	}
	if _, err := Run(db, "SELECT COUNT(*) FROM movie WHERE COUNT(*) > 1"); err == nil {
		t.Error("aggregate in WHERE must still fail at execution")
	}
}

// TestPlanCache: identical statements against unchanged data reuse the
// cached plan; any table mutation changes the database version and makes
// the cached entry unreachable.
func TestPlanCache(t *testing.T) {
	db := testDB(t)
	stmt, err := Parse("SELECT title FROM movie WHERE movie_id = 1")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := planSelect(db, stmt)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := planSelect(db, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("unchanged data: second plan should be the cached pointer")
	}
	if err := db.Insert("movie", relational.Row{
		relational.Int(99), relational.String_("new movie"), relational.Int(2020), relational.Float(5.0),
	}); err != nil {
		t.Fatal(err)
	}
	p3, err := planSelect(db, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("table mutation must invalidate the cached plan")
	}
}

// TestResultCarriesPlan: Execute attaches the plan it ran.
func TestResultCarriesPlan(t *testing.T) {
	db := testDB(t)
	res, err := Run(db, "SELECT title FROM movie WHERE movie_id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || res.Plan.Scans[0].Access != AccessIndexEq {
		t.Errorf("Result.Plan = %+v, want attached index-scan plan", res.Plan)
	}
	full, err := ExecuteFullScan(db, mustParse(t, "SELECT title FROM movie WHERE movie_id = 1"))
	if err != nil {
		t.Fatal(err)
	}
	if full.Plan != nil {
		t.Error("full-scan reference path must not claim a plan")
	}
}

// TestExists covers the existence fast path against materialized truth.
func TestExists(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		src  string
		want bool
	}{
		{"SELECT * FROM movie WHERE movie_id = 1", true},
		{"SELECT * FROM movie WHERE movie_id = 999", false},
		{"SELECT * FROM movie WHERE year IS NULL", true},
		{"SELECT * FROM movie WHERE year = 1800", false},
		{"SELECT * FROM movie LIMIT 0", false},
		{"SELECT * FROM movie ORDER BY title OFFSET 3", true},
		{"SELECT * FROM movie OFFSET 4", false},
		{`SELECT person.name FROM person
			JOIN cast_info ON cast_info.person_id = person.person_id
			WHERE cast_info.role = 'director'`, true},
		{`SELECT person.name FROM person
			JOIN cast_info ON cast_info.person_id = person.person_id
			WHERE cast_info.role = 'producer'`, false},
		// Aggregation fallback: a global aggregate always yields one row.
		{"SELECT COUNT(*) FROM movie WHERE year = 1800", true},
		{"SELECT role, COUNT(*) FROM cast_info GROUP BY role HAVING COUNT(*) > 5", false},
		{"SELECT DISTINCT role FROM cast_info OFFSET 1", true},
		{"SELECT DISTINCT role FROM cast_info OFFSET 2", false},
	}
	for _, c := range cases {
		stmt := mustParse(t, c.src)
		got, err := Exists(db, stmt)
		if err != nil {
			t.Errorf("Exists(%q): %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("Exists(%q) = %v, want %v", c.src, got, c.want)
		}
		// Cross-check against full materialization.
		res, err := ExecuteFullScan(db, stmt)
		if err != nil {
			t.Fatalf("reference Execute(%q): %v", c.src, err)
		}
		if (len(res.Rows) > 0) != c.want {
			t.Errorf("reference disagrees for %q: %d rows", c.src, len(res.Rows))
		}
	}
}

func mustParse(t *testing.T, src string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}
