package sql

import (
	"strings"
	"testing"

	"repro/internal/relational"
)

// testDB builds a small movie database exercised by every executor test.
func testDB(t *testing.T) *relational.Database {
	t.Helper()
	s := relational.NewSchema()
	add := func(ts *relational.TableSchema) {
		t.Helper()
		if err := s.AddTable(ts); err != nil {
			t.Fatal(err)
		}
	}
	add(&relational.TableSchema{
		Name: "movie",
		Columns: []relational.Column{
			{Name: "movie_id", Type: relational.TypeInt, NotNull: true},
			{Name: "title", Type: relational.TypeString, NotNull: true},
			{Name: "year", Type: relational.TypeInt},
			{Name: "rating", Type: relational.TypeFloat},
		},
		PrimaryKey: "movie_id",
	})
	add(&relational.TableSchema{
		Name: "person",
		Columns: []relational.Column{
			{Name: "person_id", Type: relational.TypeInt, NotNull: true},
			{Name: "name", Type: relational.TypeString, NotNull: true},
		},
		PrimaryKey: "person_id",
	})
	add(&relational.TableSchema{
		Name: "cast_info",
		Columns: []relational.Column{
			{Name: "cast_id", Type: relational.TypeInt, NotNull: true},
			{Name: "movie_id", Type: relational.TypeInt, NotNull: true},
			{Name: "person_id", Type: relational.TypeInt, NotNull: true},
			{Name: "role", Type: relational.TypeString},
		},
		PrimaryKey: "cast_id",
		ForeignKeys: []relational.ForeignKey{
			{Column: "movie_id", RefTable: "movie", RefColumn: "movie_id"},
			{Column: "person_id", RefTable: "person", RefColumn: "person_id"},
		},
	})
	db := relational.MustNewDatabase("test", s)
	ins := func(table string, rows ...relational.Row) {
		t.Helper()
		for _, r := range rows {
			if err := db.Insert(table, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	I, F, S := relational.Int, relational.Float, relational.String_
	ins("movie",
		relational.Row{I(1), S("the dark night"), I(2008), F(8.5)},
		relational.Row{I(2), S("silent river"), I(1994), F(7.0)},
		relational.Row{I(3), S("dark river"), I(2001), F(6.5)},
		relational.Row{I(4), S("golden storm"), relational.Null(), F(5.5)},
	)
	ins("person",
		relational.Row{I(1), S("alice smith")},
		relational.Row{I(2), S("bob jones")},
		relational.Row{I(3), S("carol dark")},
	)
	ins("cast_info",
		relational.Row{I(1), I(1), I(1), S("actor")},
		relational.Row{I(2), I(1), I(2), S("director")},
		relational.Row{I(3), I(2), I(1), S("actor")},
		relational.Row{I(4), I(3), I(3), S("actor")},
	)
	return db
}

func runQuery(t *testing.T, db *relational.Database, src string) *Result {
	t.Helper()
	res, err := Run(db, src)
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return res
}

func TestSelectStar(t *testing.T) {
	db := testDB(t)
	res := runQuery(t, db, "SELECT * FROM movie")
	if len(res.Rows) != 4 || len(res.Columns) != 4 {
		t.Fatalf("got %dx%d", len(res.Rows), len(res.Columns))
	}
	if res.Columns[1] != "movie.title" {
		t.Errorf("column name = %q", res.Columns[1])
	}
}

func TestWhereFilter(t *testing.T) {
	db := testDB(t)
	res := runQuery(t, db, "SELECT title FROM movie WHERE year > 2000")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (NULL year must not pass)", len(res.Rows))
	}
}

func TestWhereNullComparison(t *testing.T) {
	db := testDB(t)
	// year = NULL never matches; IS NULL does.
	res := runQuery(t, db, "SELECT title FROM movie WHERE year = NULL")
	if len(res.Rows) != 0 {
		t.Fatalf("= NULL matched %d rows", len(res.Rows))
	}
	res = runQuery(t, db, "SELECT title FROM movie WHERE year IS NULL")
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "golden storm" {
		t.Fatalf("IS NULL gave %v", res.Rows)
	}
	res = runQuery(t, db, "SELECT title FROM movie WHERE year IS NOT NULL")
	if len(res.Rows) != 3 {
		t.Fatalf("IS NOT NULL gave %d rows", len(res.Rows))
	}
}

func TestHashJoin(t *testing.T) {
	db := testDB(t)
	res := runQuery(t, db, `SELECT person.name, movie.title FROM person
		JOIN cast_info ON cast_info.person_id = person.person_id
		JOIN movie ON movie.movie_id = cast_info.movie_id
		ORDER BY person.name, movie.title`)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	if res.Rows[0][0].AsString() != "alice smith" || res.Rows[0][1].AsString() != "silent river" {
		t.Fatalf("first row = %v", res.Rows[0])
	}
}

func TestJoinWithAliases(t *testing.T) {
	db := testDB(t)
	res := runQuery(t, db, `SELECT p.name FROM person p
		JOIN cast_info c ON c.person_id = p.person_id
		WHERE c.role = 'director'`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "bob jones" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestLeftJoin(t *testing.T) {
	db := testDB(t)
	res := runQuery(t, db, `SELECT movie.title, cast_info.role FROM movie
		LEFT JOIN cast_info ON cast_info.movie_id = movie.movie_id
		ORDER BY movie.movie_id`)
	// movie 4 has no cast: must still appear with NULL role.
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	last := res.Rows[len(res.Rows)-1]
	if last[0].AsString() != "golden storm" || !last[1].IsNull() {
		t.Fatalf("left-join row = %v", last)
	}
}

func TestNonEquiJoinFallsBackToNestedLoop(t *testing.T) {
	db := testDB(t)
	res := runQuery(t, db, `SELECT m1.title, m2.title FROM movie m1
		JOIN movie m2 ON m1.year < m2.year`)
	// Pairs with both years non-NULL and strictly increasing:
	// (1994,2001), (1994,2008), (2001,2008) = 3 rows.
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
}

func TestSelfJoinDisambiguation(t *testing.T) {
	db := testDB(t)
	res := runQuery(t, db, `SELECT m1.title FROM movie m1
		JOIN movie m2 ON m1.movie_id = m2.movie_id WHERE m2.year = 1994`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "silent river" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Ambiguous unqualified reference must error.
	if _, err := Run(db, "SELECT title FROM movie m1 JOIN movie m2 ON m1.movie_id = m2.movie_id"); err == nil {
		t.Fatal("ambiguous column must fail")
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	db := testDB(t)
	res := runQuery(t, db, "SELECT title, year FROM movie WHERE year IS NOT NULL ORDER BY year DESC, title ASC")
	years := []int64{2008, 2001, 1994}
	for i, y := range years {
		if res.Rows[i][1].AsInt() != y {
			t.Fatalf("row %d year = %v, want %d", i, res.Rows[i][1], y)
		}
	}
}

func TestLimitOffset(t *testing.T) {
	db := testDB(t)
	res := runQuery(t, db, "SELECT movie_id FROM movie ORDER BY movie_id LIMIT 2 OFFSET 1")
	if len(res.Rows) != 2 || res.Rows[0][0].AsInt() != 2 || res.Rows[1][0].AsInt() != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = runQuery(t, db, "SELECT movie_id FROM movie LIMIT 0")
	if len(res.Rows) != 0 {
		t.Fatalf("LIMIT 0 gave %d rows", len(res.Rows))
	}
	res = runQuery(t, db, "SELECT movie_id FROM movie OFFSET 100")
	if len(res.Rows) != 0 {
		t.Fatalf("big OFFSET gave %d rows", len(res.Rows))
	}
}

func TestDistinct(t *testing.T) {
	db := testDB(t)
	res := runQuery(t, db, "SELECT DISTINCT role FROM cast_info")
	if len(res.Rows) != 2 {
		t.Fatalf("distinct roles = %d, want 2", len(res.Rows))
	}
}

func TestAggregatesGlobal(t *testing.T) {
	db := testDB(t)
	res := runQuery(t, db, "SELECT COUNT(*), COUNT(year), MIN(year), MAX(year), AVG(rating), SUM(year) FROM movie")
	row := res.Rows[0]
	if row[0].AsInt() != 4 {
		t.Errorf("COUNT(*) = %v", row[0])
	}
	if row[1].AsInt() != 3 {
		t.Errorf("COUNT(year) = %v (NULLs must not count)", row[1])
	}
	if row[2].AsInt() != 1994 || row[3].AsInt() != 2008 {
		t.Errorf("MIN/MAX = %v/%v", row[2], row[3])
	}
	wantAvg := (8.5 + 7.0 + 6.5 + 5.5) / 4
	if got := row[4].AsFloat(); got < wantAvg-1e-9 || got > wantAvg+1e-9 {
		t.Errorf("AVG(rating) = %v, want %v", got, wantAvg)
	}
	if row[5].AsInt() != 1994+2001+2008 {
		t.Errorf("SUM(year) = %v", row[5])
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	db := testDB(t)
	res := runQuery(t, db, "SELECT COUNT(*), MIN(year) FROM movie WHERE year = 1800")
	if len(res.Rows) != 1 {
		t.Fatalf("aggregate over empty input must yield one row, got %d", len(res.Rows))
	}
	if res.Rows[0][0].AsInt() != 0 || !res.Rows[0][1].IsNull() {
		t.Fatalf("row = %v, want [0 NULL]", res.Rows[0])
	}
}

func TestGroupByHaving(t *testing.T) {
	db := testDB(t)
	res := runQuery(t, db, `SELECT role, COUNT(*) AS n FROM cast_info
		GROUP BY role HAVING COUNT(*) > 1 ORDER BY n DESC`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].AsString() != "actor" || res.Rows[0][1].AsInt() != 3 {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestGroupByJoin(t *testing.T) {
	db := testDB(t)
	res := runQuery(t, db, `SELECT person.name, COUNT(*) AS movies FROM person
		JOIN cast_info ON cast_info.person_id = person.person_id
		GROUP BY person.name ORDER BY movies DESC, person.name`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].AsString() != "alice smith" || res.Rows[0][1].AsInt() != 2 {
		t.Fatalf("top = %v", res.Rows[0])
	}
}

func TestLikeOperator(t *testing.T) {
	db := testDB(t)
	tests := []struct {
		pattern string
		want    int
	}{
		{"%dark%", 2},
		{"dark%", 1},
		{"%river", 2},
		{"silent river", 1},
		{"s_lent river", 1},
		{"%zzz%", 0},
		{"%", 4},
	}
	for _, tt := range tests {
		res := runQuery(t, db, "SELECT title FROM movie WHERE title LIKE '"+tt.pattern+"'")
		if len(res.Rows) != tt.want {
			t.Errorf("LIKE %q = %d rows, want %d", tt.pattern, len(res.Rows), tt.want)
		}
	}
}

func TestMatchOperator(t *testing.T) {
	db := testDB(t)
	tests := []struct {
		kw   string
		want int
	}{
		{"dark", 2},
		{"river", 2},
		{"dark river", 1},   // both tokens required
		{"RIVER", 2},        // case-insensitive
		{"riv", 0},          // token containment, not substring
		{"the dark", 1},     // stop-wordless conjunctive match
		{"night dark", 1},   // order-independent
		{"golden storm", 1}, //
	}
	for _, tt := range tests {
		res := runQuery(t, db, "SELECT title FROM movie WHERE title MATCH '"+tt.kw+"'")
		if len(res.Rows) != tt.want {
			t.Errorf("MATCH %q = %d rows, want %d", tt.kw, len(res.Rows), tt.want)
		}
	}
}

func TestInAndBetween(t *testing.T) {
	db := testDB(t)
	res := runQuery(t, db, "SELECT title FROM movie WHERE year IN (1994, 2008)")
	if len(res.Rows) != 2 {
		t.Fatalf("IN rows = %d", len(res.Rows))
	}
	res = runQuery(t, db, "SELECT title FROM movie WHERE year NOT IN (1994)")
	if len(res.Rows) != 2 { // NULL year row excluded by NULL semantics
		t.Fatalf("NOT IN rows = %d", len(res.Rows))
	}
	res = runQuery(t, db, "SELECT title FROM movie WHERE year BETWEEN 1994 AND 2001")
	if len(res.Rows) != 2 {
		t.Fatalf("BETWEEN rows = %d", len(res.Rows))
	}
}

func TestArithmeticInProjection(t *testing.T) {
	db := testDB(t)
	res := runQuery(t, db, "SELECT year + 1, rating * 2 FROM movie WHERE movie_id = 1")
	if res.Rows[0][0].AsInt() != 2009 {
		t.Errorf("year+1 = %v", res.Rows[0][0])
	}
	if res.Rows[0][1].AsFloat() != 17.0 {
		t.Errorf("rating*2 = %v", res.Rows[0][1])
	}
	// Division by zero yields NULL, not an error.
	res = runQuery(t, db, "SELECT rating / 0 FROM movie WHERE movie_id = 1")
	if !res.Rows[0][0].IsNull() {
		t.Errorf("x/0 = %v, want NULL", res.Rows[0][0])
	}
}

func TestStringConcatViaPlus(t *testing.T) {
	db := testDB(t)
	res := runQuery(t, db, "SELECT title + '!' FROM movie WHERE movie_id = 2")
	if res.Rows[0][0].AsString() != "silent river!" {
		t.Errorf("concat = %v", res.Rows[0][0])
	}
}

func TestExecErrors(t *testing.T) {
	db := testDB(t)
	for _, src := range []string{
		"SELECT * FROM nope",
		"SELECT nope FROM movie",
		"SELECT m.title FROM movie",                     // unknown binding
		"SELECT title FROM movie ORDER BY nope",         // unknown order key
		"SELECT * FROM movie GROUP BY year",             // * with grouping
		"SELECT COUNT(*) FROM movie WHERE COUNT(*) > 1", // aggregate in WHERE
	} {
		if _, err := Run(db, src); err == nil {
			t.Errorf("Run(%q) should fail", src)
		}
	}
}

func TestResultString(t *testing.T) {
	db := testDB(t)
	res := runQuery(t, db, "SELECT movie_id, title FROM movie WHERE movie_id = 1")
	s := res.String()
	for _, frag := range []string{"movie_id", "title", "the dark night", "1"} {
		if !strings.Contains(s, frag) {
			t.Errorf("result table missing %q:\n%s", frag, s)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	db := testDB(t)
	// NULL OR true = true; NULL AND true = NULL (filtered out).
	res := runQuery(t, db, "SELECT title FROM movie WHERE year > 2000 OR movie_id = 4")
	if len(res.Rows) != 3 {
		t.Fatalf("OR with NULL year: rows = %d, want 3", len(res.Rows))
	}
	res = runQuery(t, db, "SELECT title FROM movie WHERE year > 1000 AND rating > 5")
	if len(res.Rows) != 3 { // NULL year row drops out
		t.Fatalf("AND with NULL year: rows = %d, want 3", len(res.Rows))
	}
	// NOT NULL is NULL -> excluded.
	res = runQuery(t, db, "SELECT title FROM movie WHERE NOT (year > 1000)")
	if len(res.Rows) != 0 {
		t.Fatalf("NOT over NULL: rows = %d, want 0", len(res.Rows))
	}
}

func TestOrderByExpressionNotInProjection(t *testing.T) {
	db := testDB(t)
	res := runQuery(t, db, "SELECT title FROM movie WHERE year IS NOT NULL ORDER BY rating DESC")
	if res.Rows[0][0].AsString() != "the dark night" {
		t.Fatalf("rows = %v", res.Rows)
	}
}
