package sql

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"testing"

	"repro/internal/relational"
)

// transpose flips rows into the per-column vectors the encoder consumes.
func transpose(rows []relational.Row, ncols int) [][]relational.Value {
	cols := make([][]relational.Value, ncols)
	for c := range cols {
		cols[c] = make([]relational.Value, len(rows))
		for i, r := range rows {
			cols[c][i] = r[c]
		}
	}
	return cols
}

func encodeBatch(t *testing.T, rows []relational.Row, ncols int, hints []EncodingHint) []byte {
	t.Helper()
	return AppendColumnarBatch(nil, len(rows), transpose(rows, ncols), hints)
}

// requireRoundTrip encodes, decodes and demands byte-exact row equality
// (the row codec is the arbiter of exactness, as in the conformance suite).
func requireRoundTrip(t *testing.T, rows []relational.Row, ncols int, hints []EncodingHint) []byte {
	t.Helper()
	payload := encodeBatch(t, rows, ncols, hints)
	got, err := DecodeColumnarRows(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(rows) {
		t.Fatalf("decoded %d rows, want %d", len(got), len(rows))
	}
	for i := range rows {
		if !bytes.Equal(AppendRow(nil, got[i]), AppendRow(nil, rows[i])) {
			t.Fatalf("row %d mismatch: got %v want %v", i, got[i], rows[i])
		}
	}
	return payload
}

// columnEncoding walks the payload and returns the encoding byte chosen
// for column c.
func columnEncoding(t *testing.T, payload []byte, c int) byte {
	t.Helper()
	rows, err := DecodeColumnarRows(payload)
	if err != nil {
		t.Fatalf("decode for inspection: %v", err)
	}
	_, sz1 := binary.Uvarint(payload)
	_, sz2 := binary.Uvarint(payload[sz1:])
	off := sz1 + sz2
	for ci := 0; ; ci++ {
		enc := payload[off]
		if ci == c {
			return enc
		}
		// Re-encode just this column to skip it.
		var sc columnScratch
		vals := make([]relational.Value, len(rows))
		for i, r := range rows {
			vals[i] = r[ci]
		}
		one := appendColumn(nil, vals, EncodingHint{}, &sc)
		off += len(one)
	}
}

func TestColumnarRoundTripMixedTypes(t *testing.T) {
	rows := []relational.Row{
		{relational.Int(1), relational.Float(1.5), relational.String_("a"), relational.Bool(true), relational.Null()},
		{relational.Int(-7), relational.Float(3), relational.String_(""), relational.Bool(false), relational.Int(0)},
		{relational.Null(), relational.Float(-2.25), relational.String_("göteborg"), relational.Null(), relational.String_("x")},
	}
	requireRoundTrip(t, rows, 5, nil)
}

func TestColumnarIntFloatStayDistinct(t *testing.T) {
	// Compare-equal but type-distinct values must never collapse through a
	// dictionary or run: the wire is byte-exact.
	rows := make([]relational.Row, 40)
	for i := range rows {
		if i%2 == 0 {
			rows[i] = relational.Row{relational.Int(3)}
		} else {
			rows[i] = relational.Row{relational.Float(3)}
		}
	}
	payload := requireRoundTrip(t, rows, 1, nil)
	got, _ := DecodeColumnarRows(payload)
	for i, r := range got {
		want := relational.TypeInt
		if i%2 == 1 {
			want = relational.TypeFloat
		}
		if r[0].Type() != want {
			t.Fatalf("row %d: type %v, want %v", i, r[0].Type(), want)
		}
	}
}

func TestColumnarEncodingSelection(t *testing.T) {
	n := 256
	rows := make([]relational.Row, n)
	genres := []string{"noir", "drama", "comedy", "thriller"}
	long := strings.Repeat("x", 24)
	for i := range rows {
		rows[i] = relational.Row{
			relational.String_(long + fmt.Sprint(i)),  // unique: plain
			relational.String_(genres[i%len(genres)]), // low-cardinality: dict
			relational.Int(int64(i / 64)),             // sorted runs: RLE
			relational.String_("constant"),            // constant: RLE
		}
	}
	payload := requireRoundTrip(t, rows, 4, nil)
	if enc := columnEncoding(t, payload, 0); enc != ColEncPlain {
		t.Errorf("unique column: encoding %d, want plain", enc)
	}
	if enc := columnEncoding(t, payload, 1); enc != ColEncDict {
		t.Errorf("low-cardinality column: encoding %d, want dict", enc)
	}
	if enc := columnEncoding(t, payload, 2); enc != ColEncRLE {
		t.Errorf("sorted column: encoding %d, want RLE", enc)
	}
	if enc := columnEncoding(t, payload, 3); enc != ColEncRLE {
		t.Errorf("constant column: encoding %d, want RLE", enc)
	}

	// The whole point: the columnar form undercuts the row codec.
	var rowForm []byte
	for _, r := range rows {
		rowForm = AppendRow(rowForm, r)
	}
	if len(payload) >= len(rowForm) {
		t.Errorf("columnar %d bytes, row form %d: expected compression", len(payload), len(rowForm))
	}
}

func TestColumnarStatsHintSkipsDictionary(t *testing.T) {
	// A high-distinct hint must veto the dictionary even though the data
	// would fit one — the vector here is low-cardinality, but the hint says
	// the column (globally) is not, so the encoder trusts the statistics.
	n := 64
	rows := make([]relational.Row, n)
	for i := range rows {
		rows[i] = relational.Row{relational.String_([]string{"aaaaaaaa", "bbbbbbbb"}[i%2])}
	}
	hinted := encodeBatch(t, rows, 1, []EncodingHint{{Distinct: DictMaxCardinality + 1, HasStats: true}})
	if enc := columnEncoding(t, hinted, 0); enc == ColEncDict {
		t.Errorf("hinted high-cardinality column still dictionary-encoded")
	}
	// Decode still round-trips regardless of the encoding chosen.
	if _, err := DecodeColumnarRows(hinted); err != nil {
		t.Fatalf("decode hinted batch: %v", err)
	}
}

func TestColumnarHighCardinalityAbandonsDictionary(t *testing.T) {
	n := DictMaxCardinality + 64
	rows := make([]relational.Row, n)
	for i := range rows {
		rows[i] = relational.Row{relational.Int(int64(i))}
	}
	requireRoundTrip(t, rows, 1, nil)
}

func TestColumnarEmptyBatch(t *testing.T) {
	payload := AppendColumnarBatch(nil, 0, [][]relational.Value{{}, {}}, nil)
	rows, err := DecodeColumnarRows(payload)
	if err != nil {
		t.Fatalf("decode empty batch: %v", err)
	}
	if len(rows) != 0 {
		t.Fatalf("decoded %d rows from empty batch", len(rows))
	}
}

func TestColumnarDecodeRejectsMalformed(t *testing.T) {
	valid := encodeBatch(t, []relational.Row{
		{relational.String_("noir"), relational.Int(1)},
		{relational.String_("noir"), relational.Int(2)},
		{relational.String_("drama"), relational.Int(3)},
	}, 2, nil)

	cases := map[string][]byte{
		"empty":               {},
		"truncated header":    {0x80},
		"row cap":             binary.AppendUvarint(binary.AppendUvarint(nil, MaxColumnarRows+1), 1),
		"col cap":             binary.AppendUvarint(binary.AppendUvarint(nil, 1), MaxColumnarCols+1),
		"cell cap":            binary.AppendUvarint(binary.AppendUvarint(nil, MaxColumnarRows), MaxColumnarCols),
		"missing encoding":    binary.AppendUvarint(binary.AppendUvarint(nil, 1), 1),
		"unknown encoding":    append(binary.AppendUvarint(binary.AppendUvarint(nil, 1), 1), 0x7f),
		"plain truncated":     append(binary.AppendUvarint(binary.AppendUvarint(nil, 2), 1), ColEncPlain, tagInt),
		"dict size overflow":  append(binary.AppendUvarint(binary.AppendUvarint(nil, 1), 1), ColEncDict, 0xff, 0xff, 0x03),
		"dict index range":    append(binary.AppendUvarint(binary.AppendUvarint(nil, 1), 1), ColEncDict, 1, tagNull, 5),
		"rle run count":       append(binary.AppendUvarint(binary.AppendUvarint(nil, 1), 1), ColEncRLE, 9),
		"rle empty run":       append(binary.AppendUvarint(binary.AppendUvarint(nil, 1), 1), ColEncRLE, 1, 0, tagNull),
		"rle run overflow":    append(binary.AppendUvarint(binary.AppendUvarint(nil, 2), 1), ColEncRLE, 1, 3, tagNull),
		"rle under-tiled":     append(binary.AppendUvarint(binary.AppendUvarint(nil, 3), 1), ColEncRLE, 1, 2, tagNull),
		"trailing bytes":      append(append([]byte{}, valid...), 0x00),
		"truncated mid-batch": valid[:len(valid)-1],
	}
	for name, payload := range cases {
		if _, err := DecodeColumnarRows(payload); err == nil {
			t.Errorf("%s: decode accepted malformed payload", name)
		}
	}
}

func TestEncodedRowSizeMatchesCodec(t *testing.T) {
	rows := []relational.Row{
		{},
		{relational.Null()},
		{relational.Int(0), relational.Int(-1), relational.Int(1 << 40)},
		{relational.Float(3.14), relational.Bool(true), relational.Bool(false)},
		{relational.String_(""), relational.String_(strings.Repeat("y", 200))},
	}
	for i, r := range rows {
		if got, want := EncodedRowSize(r), len(AppendRow(nil, r)); got != want {
			t.Errorf("row %d: EncodedRowSize %d, AppendRow %d", i, got, want)
		}
	}
}
