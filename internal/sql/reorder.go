package sql

import "repro/internal/relational"

// Selinger-style join-order search. For statements joining only inner
// joins, the written FROM/JOIN order is just one left-deep order among
// many; on skewed data the difference between starting from a selective
// scan and starting from the fact table is orders of magnitude of
// intermediate rows. tryReorder treats every ON conjunct and every
// join-level WHERE conjunct as one predicate pool, searches the left-deep
// orders bottom-up over subsets of the join graph with statistics-driven
// cardinality estimates, and rebuilds the plan's join steps in the
// cheapest order, re-attaching each pool predicate at the earliest step
// that sees all its relations (legal for inner joins, which is the only
// shape the search accepts).

// nonEquiSelectivity is charged for pool predicates that join relations
// without being hash-able equality pairs.
const nonEquiSelectivity = 0.5

// poolPred is one predicate in the reorder pool.
type poolPred struct {
	expr Expr
	mask uint32 // relations referenced (bit i = nodes[i])
	// Equality joins `a.x = b.y` record both sides for hash-key and
	// selectivity use; eqA/eqB are node indexes, eqAOrd/eqBOrd local
	// column ordinals. eqA < 0 for non-equi predicates.
	eqA, eqB       int
	eqAOrd, eqBOrd int
	fromOn         bool // ON-origin (vs WHERE-origin)
}

// tryReorder attempts the join-order search, rebuilding p.steps (and
// p.outCols) on success. It returns false — leaving the plan untouched —
// whenever the statement is outside the search's remit: LEFT joins (their
// order is semantics, not cost), SELECT * (output column order must follow
// the written order), more relations than ReorderMaxRelations, or ON
// predicates the full relation cannot resolve (kept on their written step
// so errors surface exactly like the reference interpreter's).
func tryReorder(p *plannedQuery, stmt *SelectStmt, nodes []*scanNode, tables []*relational.Table,
	nodeStart []int, ownerNode func(int) int, full *relation, reorder bool) bool {
	n := len(nodes)
	if !reorder || n < 3 || n > ReorderMaxRelations {
		return false
	}
	for _, st := range p.steps {
		if st.jc.Left {
			return false
		}
	}
	for _, it := range stmt.Items {
		if it.Star {
			return false
		}
	}

	// Gather the predicate pool: every ON conjunct plus every WHERE
	// conjunct placeConjunct parked on a join step. Scan-pushed conjuncts
	// stay where they are — they are order-independent. ON conjuncts
	// resolve against the relation visible at their own written step (the
	// prefix the reference interpreter sees), not the full relation: a
	// forward reference to a table joined later must keep the written
	// order so it fails exactly like the interpreter, never be silently
	// legalized by the reorder.
	var pool []poolPred
	collect := func(e Expr, visible *relation, fromOn bool) bool {
		if containsAgg(e) {
			return false
		}
		var refs []*ColumnRef
		collectRefs(e, &refs)
		pp := poolPred{expr: e, eqA: -1, fromOn: fromOn}
		for _, r := range refs {
			ord, err := visible.resolve(r)
			if err != nil {
				return false
			}
			pp.mask |= 1 << uint(ownerNode(ord))
		}
		if be, ok := e.(*BinaryExpr); ok && be.Op == OpEq {
			lr, lok := be.Left.(*ColumnRef)
			rr, rok := be.Right.(*ColumnRef)
			if lok && rok {
				lo, lerr := visible.resolve(lr)
				ro, rerr := visible.resolve(rr)
				if lerr == nil && rerr == nil {
					a, b := ownerNode(lo), ownerNode(ro)
					if a != b {
						pp.eqA, pp.eqAOrd = a, lo-nodeStart[a]
						pp.eqB, pp.eqBOrd = b, ro-nodeStart[b]
					}
				}
			}
		}
		pool = append(pool, pp)
		return true
	}
	for si, st := range p.steps {
		// Columns visible at written step si: the base table plus the
		// right tables of steps 0..si. Prefix ordinals agree with the full
		// relation's, so ownerNode applies unchanged.
		visible := &relation{cols: full.cols[:nodeStart[si+1]+len(nodes[si+1].cols)]}
		for _, c := range splitAnd(st.jc.On) {
			if !collect(c, visible, true) {
				return false
			}
		}
		for _, c := range st.where {
			if !collect(c, full, false) {
				return false
			}
		}
	}

	// Effective per-relation rows: the scan estimate scaled by the pool
	// predicates confined to that relation (they will be pushed into the
	// scan during the rebuild). Constant predicates (mask 0) end up on the
	// base scan and do not influence order choice.
	effRows := make([]float64, n)
	for i, node := range nodes {
		effRows[i] = float64(node.est)
		local := &relation{cols: node.cols}
		for _, pp := range pool {
			if pp.mask != 0 && pp.mask&^(1<<uint(i)) == 0 {
				effRows[i] *= predSelectivity(tables[i], local, pp.expr)
			}
		}
	}

	distinctOf := func(rel, localOrd int) int {
		return columnDistinct(tables[rel], nodes[rel], localOrd)
	}
	// stepSelectivity returns the combined selectivity of the pool
	// predicates that become placeable when relation j joins mask (their
	// last relation is j), excluding single-relation predicates already
	// folded into effRows.
	stepSelectivity := func(mask uint32, j int) float64 {
		bit := uint32(1) << uint(j)
		sel := 1.0
		for _, pp := range pool {
			if pp.mask&bit == 0 || pp.mask&^bit == 0 || pp.mask&^(mask|bit) != 0 {
				continue
			}
			if pp.eqA >= 0 {
				sel *= equiSelectivity(distinctOf(pp.eqA, pp.eqAOrd), distinctOf(pp.eqB, pp.eqBOrd))
			} else {
				sel *= nonEquiSelectivity
			}
		}
		return sel
	}
	connects := func(mask uint32, j int) bool {
		bit := uint32(1) << uint(j)
		for _, pp := range pool {
			if pp.mask&bit != 0 && pp.mask&^bit != 0 && pp.mask&mask != 0 {
				return true
			}
		}
		return false
	}

	// Bottom-up DP over left-deep orders: cost is the sum of intermediate
	// result sizes. Cross products are only considered when no connected
	// extension exists (disconnected join graphs must still complete).
	type dpEntry struct {
		rows  float64
		cost  float64
		order []int
		ok    bool
	}
	best := make([]dpEntry, 1<<uint(n))
	for i := 0; i < n; i++ {
		best[1<<uint(i)] = dpEntry{rows: effRows[i], order: []int{i}, ok: true}
	}
	fullMask := uint32(1<<uint(n)) - 1
	for mask := uint32(1); mask <= fullMask; mask++ {
		e := best[mask]
		if !e.ok || mask == fullMask {
			continue
		}
		anyConnected := false
		for j := 0; j < n; j++ {
			if mask&(1<<uint(j)) == 0 && connects(mask, j) {
				anyConnected = true
				break
			}
		}
		for j := 0; j < n; j++ {
			bit := uint32(1) << uint(j)
			if mask&bit != 0 {
				continue
			}
			if anyConnected && !connects(mask, j) {
				continue
			}
			rows := e.rows * effRows[j] * stepSelectivity(mask, j)
			cost := e.cost + rows
			nm := mask | bit
			if !best[nm].ok || cost < best[nm].cost {
				order := make([]int, len(e.order)+1)
				copy(order, e.order)
				order[len(e.order)] = j
				best[nm] = dpEntry{rows: rows, cost: cost, order: order, ok: true}
			}
		}
	}
	final := best[fullMask]
	if !final.ok {
		return false
	}
	order := final.order
	identity := true
	for i, r := range order {
		if r != i {
			identity = false
			break
		}
	}
	if !identity {
		counters.joinReorders.Add(1)
		p.reordered = true
	}

	// Rebuild the plan in the chosen order, attaching every pool predicate
	// at the earliest step that sees all its relations.
	p.base = nodes[order[0]]
	placed := make([]bool, len(pool))
	for pi, pp := range pool {
		if pp.mask&^(1<<uint(order[0])) == 0 { // base-only or constant
			p.base.pushed = append(p.base.pushed, pp.expr)
			placed[pi] = true
		}
	}
	p.base.finishEstimate(tables[order[0]], p.base.probeSize(tables[order[0]]))

	// offsets[rel] is where rel's columns start in the rebuilt accumulated
	// relation (-1 = not yet joined).
	offsets := make([]int, n)
	for i := range offsets {
		offsets[i] = -1
	}
	offsets[order[0]] = 0
	accum := append([]boundCol{}, p.base.cols...)
	placedMask := uint32(1) << uint(order[0])
	leftRows := float64(p.base.est)
	leftEst := p.base.est

	steps := make([]*joinStep, 0, n-1)
	for _, r := range order[1:] {
		node := nodes[r]
		bit := uint32(1) << uint(r)
		newMask := placedMask | bit
		st := &joinStep{right: node}
		// First pass: claim every predicate placeable at this step and sort
		// it into equi keys vs other join predicates.
		var equis, others []poolPred
		stepSel := 1.0
		for pi, pp := range pool {
			if placed[pi] || pp.mask&^newMask != 0 {
				continue
			}
			placed[pi] = true
			if pp.mask&^bit == 0 {
				// Confined to the incoming relation: evaluate during its
				// scan (inner joins make the pushdown legal).
				node.pushed = append(node.pushed, pp.expr)
				continue
			}
			if pp.eqA >= 0 && (pp.eqA == r || pp.eqB == r) {
				equis = append(equis, pp)
				stepSel *= equiSelectivity(distinctOf(pp.eqA, pp.eqAOrd), distinctOf(pp.eqB, pp.eqBOrd))
				continue
			}
			others = append(others, pp)
			stepSel *= nonEquiSelectivity
		}
		// Second pass: route each predicate to exactly one evaluation
		// point. With equi keys the step hash-joins — keys drive the build,
		// the rest re-checks as residual (ON-origin) or post-join filter
		// (WHERE-origin). Without keys the step is a nested loop, which
		// evaluates only the ON conjunction, so everything goes there.
		if len(equis) > 0 {
			var onParts []Expr
			for _, pp := range equis {
				la, lo, ra := pp.eqA, pp.eqAOrd, pp.eqBOrd
				if pp.eqA == r {
					la, lo, ra = pp.eqB, pp.eqBOrd, pp.eqAOrd
				}
				st.lk = append(st.lk, offsets[la]+lo)
				st.rk = append(st.rk, ra)
				onParts = append(onParts, pp.expr)
			}
			for _, pp := range others {
				onParts = append(onParts, pp.expr)
				if pp.fromOn {
					st.residual = append(st.residual, pp.expr)
				} else {
					st.where = append(st.where, pp.expr)
				}
			}
			// On records the step's full join condition for introspection;
			// the hash path never evaluates it.
			st.jc = JoinClause{Table: node.tr, On: andAll(onParts)}
		} else {
			onParts := make([]Expr, 0, len(others))
			for _, pp := range others {
				onParts = append(onParts, pp.expr)
			}
			st.jc = JoinClause{Table: node.tr, On: andAll(onParts)}
		}
		node.finishEstimate(tables[r], node.probeSize(tables[r]))
		offsets[r] = len(accum)
		accum = append(append([]boundCol{}, accum...), node.cols...)
		st.outCols = accum
		leftRows = leftRows * float64(node.est) * stepSel
		st.est = clampEst(leftRows)
		st.buildLeft = leftEst < node.est
		leftEst = st.est
		placedMask = newMask
		steps = append(steps, st)
	}
	p.steps = steps
	p.outCols = accum
	return true
}

// probeSize is the scan's pre-filter row count: the captured probe result
// for index access paths, the whole table otherwise.
func (n *scanNode) probeSize(t *relational.Table) int {
	if n.access != AccessFullScan {
		return len(n.ords)
	}
	return t.Len()
}

// andAll folds expressions into one conjunction; the empty conjunction is
// TRUE (a pure cross-product step accepts every candidate).
func andAll(exprs []Expr) Expr {
	if len(exprs) == 0 {
		return &Literal{Value: relational.Bool(true)}
	}
	e := exprs[0]
	for _, x := range exprs[1:] {
		e = &BinaryExpr{Op: OpAnd, Left: e, Right: x}
	}
	return e
}
