package sql

import (
	"sort"

	"repro/internal/relational"
)

// Cardinality estimation from relational.ColumnStats. This replaces the
// pre-statistics planner's halving-per-predicate heuristic: equality,
// range, IN-list and nullity conjuncts are estimated from per-column
// distinct counts, MCV lists and histograms, so filtered-scan and join
// estimates track skewed data instead of assuming every predicate keeps
// half the rows.

// Default selectivities for predicate shapes the statistics cannot see
// through: pattern operators inspect text content and everything else
// (arithmetic comparisons between columns, OR over unestimable branches)
// gets the classic one-third guess.
const (
	defaultPatternSelectivity = 0.1
	defaultSelectivity        = 1.0 / 3
)

// maxEstRows caps cardinality estimates; the float math is clamped here
// before the int conversion so products over many relations cannot
// overflow.
const maxEstRows = 1 << 40

// clampEst converts a float estimate to a non-negative, overflow-safe int.
func clampEst(f float64) int {
	if f < 0 {
		return 0
	}
	if f > maxEstRows {
		return maxEstRows
	}
	return int(f)
}

// clampSel bounds a selectivity to [0, 1].
func clampSel(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// statsFor fetches the statistics snapshot for a local column ordinal,
// returning nil when the column cannot be resolved (the conjunct then gets
// a default selectivity).
func statsFor(t *relational.Table, ord int) *relational.ColumnStats {
	if t == nil || ord < 0 || ord >= len(t.Schema.Columns) {
		return nil
	}
	cs, err := t.Stats(t.Schema.Columns[ord].Name)
	if err != nil {
		return nil
	}
	return cs
}

// predSelectivity estimates the fraction of the table's rows a single-table
// conjunct keeps, using column statistics where the shape allows and
// conservative defaults elsewhere.
func predSelectivity(t *relational.Table, local *relation, c Expr) float64 {
	rows := float64(t.Len())
	if rows == 0 {
		return 1
	}
	switch x := c.(type) {
	case *BinaryExpr:
		switch x.Op {
		case OpAnd:
			return clampSel(predSelectivity(t, local, x.Left) * predSelectivity(t, local, x.Right))
		case OpOr:
			l := predSelectivity(t, local, x.Left)
			r := predSelectivity(t, local, x.Right)
			return clampSel(l + r - l*r)
		case OpEq, OpNe:
			ord, v, ok := localCmpLiteral(local, x)
			if !ok {
				return defaultSelectivity
			}
			cs := statsFor(t, ord)
			if cs == nil {
				return defaultSelectivity
			}
			eq := float64(cs.EstimateEq(v)) / rows
			if x.Op == OpNe {
				return clampSel(1 - cs.NullFraction() - eq)
			}
			return clampSel(eq)
		case OpLt, OpLe, OpGt, OpGe:
			ord, v, op, ok := localRangeLiteral(local, x)
			if !ok {
				return defaultSelectivity
			}
			cs := statsFor(t, ord)
			if cs == nil {
				return defaultSelectivity
			}
			var est int
			switch op {
			case OpLt:
				est = cs.EstimateRange(relational.Null(), v, true, false)
			case OpLe:
				est = cs.EstimateRange(relational.Null(), v, true, true)
			case OpGt:
				est = cs.EstimateRange(v, relational.Null(), false, true)
			case OpGe:
				est = cs.EstimateRange(v, relational.Null(), true, true)
			}
			return clampSel(float64(est) / rows)
		case OpLike, OpMatch:
			return defaultPatternSelectivity
		}
		return defaultSelectivity
	case *InExpr:
		cr, okRef := x.Inner.(*ColumnRef)
		if !okRef {
			return defaultSelectivity
		}
		ord, err := local.resolve(cr)
		if err != nil {
			return defaultSelectivity
		}
		cs := statsFor(t, ord)
		if cs == nil {
			return defaultSelectivity
		}
		sum := 0.0
		for _, item := range x.List {
			l, isLit := item.(*Literal)
			if !isLit {
				return defaultSelectivity
			}
			if l.Value.IsNull() {
				continue
			}
			sum += float64(cs.EstimateEq(l.Value))
		}
		return clampSel(sum / rows)
	case *IsNullExpr:
		var refs []*ColumnRef
		collectRefs(x.Inner, &refs)
		if len(refs) != 1 {
			return defaultSelectivity
		}
		ord, err := local.resolve(refs[0])
		if err != nil {
			return defaultSelectivity
		}
		cs := statsFor(t, ord)
		if cs == nil {
			return defaultSelectivity
		}
		if x.Negate {
			return clampSel(1 - cs.NullFraction())
		}
		return clampSel(cs.NullFraction())
	case *NotExpr:
		return clampSel(1 - predSelectivity(t, local, x.Inner))
	}
	return defaultSelectivity
}

// localCmpLiteral deconstructs any `col op literal` comparison (either side
// order) against the local relation.
func localCmpLiteral(local *relation, be *BinaryExpr) (ord int, v relational.Value, ok bool) {
	ref, lit := be.Left, be.Right
	if _, isRef := ref.(*ColumnRef); !isRef {
		ref, lit = be.Right, be.Left
	}
	cr, okRef := ref.(*ColumnRef)
	l, okLit := lit.(*Literal)
	if !okRef || !okLit || l.Value.IsNull() {
		return 0, relational.Null(), false
	}
	ord, err := local.resolve(cr)
	if err != nil {
		return 0, relational.Null(), false
	}
	return ord, l.Value, true
}

// localRangeLiteral deconstructs `col op literal` for the ordering
// operators, flipping the operator when the literal is written first.
func localRangeLiteral(local *relation, be *BinaryExpr) (ord int, v relational.Value, op BinaryOp, ok bool) {
	op = be.Op
	ref, lit := be.Left, be.Right
	if _, isRef := ref.(*ColumnRef); !isRef {
		ref, lit = be.Right, be.Left
		switch op {
		case OpLt:
			op = OpGt
		case OpLe:
			op = OpGe
		case OpGt:
			op = OpLt
		case OpGe:
			op = OpLe
		}
	}
	cr, okRef := ref.(*ColumnRef)
	l, okLit := lit.(*Literal)
	if !okRef || !okLit || l.Value.IsNull() {
		return 0, relational.Null(), op, false
	}
	o, err := local.resolve(cr)
	if err != nil {
		return 0, relational.Null(), op, false
	}
	return o, l.Value, op, true
}

// columnDistinct returns the distinct count of a scan node's local column,
// falling back to the scan estimate when statistics are unavailable. It
// feeds the equi-join selectivity 1/max(V(l), V(r)).
func columnDistinct(t *relational.Table, n *scanNode, localOrd int) int {
	cs := statsFor(t, localOrd)
	if cs == nil || cs.Distinct == 0 {
		if n.est > 0 {
			return n.est
		}
		return 1
	}
	return cs.Distinct
}

// equiSelectivity is the textbook equi-join selectivity for key columns
// with lv and rv distinct values.
func equiSelectivity(lv, rv int) float64 {
	v := lv
	if rv > v {
		v = rv
	}
	if v < 1 {
		v = 1
	}
	return 1 / float64(v)
}

// sortInts sorts ordinals ascending (tiny wrapper so plan.go needs no sort
// import of its own).
func sortInts(xs []int) { sort.Ints(xs) }
