package sql

import (
	"fmt"
	"strings"

	"repro/internal/relational"
)

// TableFragment is the per-table unit of distributed execution: the part of
// a statement a remote backend can run entirely on its own rows. The
// coordinator ships Stmt — `SELECT * FROM <table> [WHERE <pushed
// conjuncts>]` — to every backend holding a partition of the table, gathers
// the (already filtered) rows, and finishes joins, residual predicates,
// projection, ordering and limits itself (ExecuteRows). Stmt.SQL() is the
// fragment's wire form; any engine that can answer a single-table SELECT
// can serve it.
type TableFragment struct {
	// Ref is the FROM/JOIN table reference the fragment covers, alias
	// included so pushed conjuncts resolve on the backend exactly as they
	// did in the original statement.
	Ref TableRef
	// Stmt is the executable fragment: SELECT * over Ref with the pushed
	// conjuncts as its WHERE. It is freshly built per Fragments call and
	// owned by the caller.
	Stmt *SelectStmt
	// Pushed lists the WHERE conjuncts the fragment evaluates remotely.
	// Conjuncts not claimed by any fragment (multi-table, aggregate,
	// unresolvable, constant) remain the coordinator's responsibility.
	Pushed []Expr
	// PKValues is the partition-pruning hint: when the pushed conjuncts pin
	// the table's primary key to an equality literal or an IN list, these
	// are the only PK values any qualifying row can carry, so a
	// hash-partitioned deployment needs to consult only the shards those
	// values route to. nil means no restriction (consult every shard); an
	// empty non-nil slice means no row can qualify at all (an IN list of
	// NULLs) and every shard may be skipped.
	PKValues []relational.Value
}

// SQL renders the fragment's executable statement (the serialized form the
// coordinator ships to a backend).
func (f *TableFragment) SQL() string { return f.Stmt.SQL() }

// ColumnRefs returns every column reference inside an expression, in
// traversal order. Exported for coordinators (internal/shard) that must
// apply the same resolution rules as the planner — one walker, not a
// drifting copy per consumer.
func ColumnRefs(e Expr) []*ColumnRef {
	var out []*ColumnRef
	collectRefs(e, &out)
	return out
}

// ContainsAggregate reports whether the expression contains an aggregate
// call (exported for the same reason as ColumnRefs).
func ContainsAggregate(e Expr) bool { return containsAgg(e) }

// fragmentRelation builds the resolver relation for one table reference
// from schema metadata alone (no row access — Fragments must work on a
// coordinator that holds no data).
func fragmentRelation(schema *relational.Schema, tr TableRef) (*relation, error) {
	ts := schema.Table(tr.Table)
	if ts == nil {
		return nil, fmt.Errorf("sql: unknown table %s", tr.Table)
	}
	binding := strings.ToLower(tr.Binding())
	rel := &relation{}
	for _, c := range ts.Columns {
		rel.cols = append(rel.cols, boundCol{
			binding: binding,
			name:    strings.ToLower(c.Name),
			display: tr.Binding() + "." + c.Name,
		})
	}
	return rel, nil
}

// Fragments splits a statement into its per-table pushdown fragments under
// the same legality rules the single-node planner applies: a WHERE conjunct
// is pushed into the fragment of the one table it references unless that
// table is null-extended by a LEFT join (evaluating the conjunct below the
// join would resurrect rows it must remove); aggregate, multi-table,
// constant and unresolvable conjuncts are left for the coordinator, which
// re-checks the full WHERE over the joined rows anyway — a pushed conjunct
// is a bandwidth optimization, never the only evaluation.
//
// Fragments come back in clause order (FROM first, then each JOIN), one per
// table reference, so the result aligns with stmt.Tables() and with the
// tables argument of ExecuteRows.
func Fragments(schema *relational.Schema, stmt *SelectStmt) ([]TableFragment, error) {
	refs := stmt.Tables()
	frags := make([]TableFragment, len(refs))
	locals := make([]*relation, len(refs))
	full := &relation{}
	// nodeStart[i] is the ordinal in full.cols where table i's columns
	// begin; table i>0 was introduced by join i-1.
	nodeStart := make([]int, len(refs))
	for i, tr := range refs {
		local, err := fragmentRelation(schema, tr)
		if err != nil {
			return nil, err
		}
		locals[i] = local
		nodeStart[i] = len(full.cols)
		full.cols = append(full.cols, local.cols...)
		frags[i] = TableFragment{Ref: tr}
	}
	ownerNode := func(ord int) int {
		for i := len(nodeStart) - 1; i >= 0; i-- {
			if ord >= nodeStart[i] {
				return i
			}
		}
		return 0
	}

	if stmt.Where != nil {
		for _, c := range splitAnd(stmt.Where) {
			if containsAgg(c) {
				continue
			}
			var crefs []*ColumnRef
			collectRefs(c, &crefs)
			involved := map[int]bool{}
			resolvable := true
			for _, r := range crefs {
				ord, err := full.resolve(r)
				if err != nil {
					resolvable = false
					break
				}
				involved[ownerNode(ord)] = true
			}
			if !resolvable || len(involved) != 1 {
				continue
			}
			var single int
			for ni := range involved {
				single = ni
			}
			// LEFT-join legality: conjuncts on a null-extended table must
			// run above its join, i.e. at the coordinator.
			if single > 0 && stmt.Joins[single-1].Left {
				continue
			}
			frags[single].Pushed = append(frags[single].Pushed, c)
		}
	}

	for i := range frags {
		var where Expr
		if len(frags[i].Pushed) > 0 {
			where = andAll(frags[i].Pushed)
		}
		frags[i].Stmt = &SelectStmt{
			Items: []SelectItem{{Star: true}},
			From:  frags[i].Ref,
			Where: where,
			Limit: -1,
		}
		frags[i].PKValues = pkRestriction(schema, locals[i], &frags[i])
	}
	return frags, nil
}

// pkRestriction inspects a fragment's pushed conjuncts for an equality or
// IN-list restriction on the table's primary key and returns the admissible
// PK values (see TableFragment.PKValues). The restriction is sound because
// pushed conjuncts are ANDed: any qualifying row satisfies all of them.
func pkRestriction(schema *relational.Schema, local *relation, f *TableFragment) []relational.Value {
	ts := schema.Table(f.Ref.Table)
	if ts == nil || ts.PrimaryKey == "" {
		return nil
	}
	pkOrd := ts.ColumnIndex(ts.PrimaryKey)
	for _, c := range f.Pushed {
		if ord, v, ok := localEqLiteral(local, c); ok && ord == pkOrd {
			return []relational.Value{v}
		}
		in, ok := c.(*InExpr)
		if !ok {
			continue
		}
		cr, ok := in.Inner.(*ColumnRef)
		if !ok {
			continue
		}
		if ord, err := local.resolve(cr); err != nil || ord != pkOrd {
			continue
		}
		vals := make([]relational.Value, 0, len(in.List))
		allLits := true
		for _, item := range in.List {
			l, isLit := item.(*Literal)
			if !isLit {
				allLits = false
				break
			}
			if l.Value.IsNull() {
				continue // NULL never equals the PK; contributes no shard
			}
			vals = append(vals, l.Value)
		}
		if allLits {
			return vals
		}
	}
	return nil
}

// ExecuteRows runs a statement over externally supplied base-table row
// sets — the coordinator half of distributed execution. tables[i] holds the
// rows standing in for stmt.Tables()[i] (positionally aligned with that
// table's schema columns, exactly what the matching TableFragment ships
// back); joins, the full WHERE, projection, aggregation, DISTINCT, ordering
// and limits all run here with the reference interpreter's semantics, so
// re-evaluating already-pushed conjuncts is redundant but harmless and the
// result is multiset-identical to single-node execution over the union of
// the partitions.
func ExecuteRows(schema *relational.Schema, stmt *SelectStmt, tables [][]relational.Row) (*Result, error) {
	refs := stmt.Tables()
	if len(tables) != len(refs) {
		return nil, fmt.Errorf("sql: ExecuteRows got %d row sets for %d tables", len(tables), len(refs))
	}
	rel, err := fragmentRelation(schema, refs[0])
	if err != nil {
		return nil, err
	}
	rel.rows = tables[0]
	for i, j := range stmt.Joins {
		right, err := fragmentRelation(schema, j.Table)
		if err != nil {
			return nil, err
		}
		right.rows = tables[i+1]
		rel, err = join(rel, right, j)
		if err != nil {
			return nil, err
		}
	}
	if stmt.Where != nil {
		rel, err = filter(rel, stmt.Where)
		if err != nil {
			return nil, err
		}
	}
	return finish(rel, stmt)
}
