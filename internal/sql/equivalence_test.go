package sql

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/relational"
)

// eqDB builds a database sized to exercise every planner path: movie is
// past LazyIndexThreshold (on-demand index builds on non-key columns),
// person is small, and cast_info carries NULL foreign keys — the rows that
// must never match an equi-join but must survive LEFT JOIN null-extension.
func eqDB(t testing.TB) *relational.Database {
	t.Helper()
	s := relational.NewSchema()
	add := func(ts *relational.TableSchema) {
		if err := s.AddTable(ts); err != nil {
			t.Fatal(err)
		}
	}
	add(&relational.TableSchema{
		Name: "movie",
		Columns: []relational.Column{
			{Name: "movie_id", Type: relational.TypeInt, NotNull: true},
			{Name: "title", Type: relational.TypeString, NotNull: true},
			{Name: "year", Type: relational.TypeInt},
			{Name: "rating", Type: relational.TypeFloat},
			{Name: "genre", Type: relational.TypeString},
		},
		PrimaryKey: "movie_id",
	})
	add(&relational.TableSchema{
		Name: "person",
		Columns: []relational.Column{
			{Name: "person_id", Type: relational.TypeInt, NotNull: true},
			{Name: "name", Type: relational.TypeString, NotNull: true},
		},
		PrimaryKey: "person_id",
	})
	add(&relational.TableSchema{
		Name: "cast_info",
		Columns: []relational.Column{
			{Name: "cast_id", Type: relational.TypeInt, NotNull: true},
			{Name: "movie_id", Type: relational.TypeInt}, // nullable FK
			{Name: "person_id", Type: relational.TypeInt},
			{Name: "role", Type: relational.TypeString},
		},
		PrimaryKey: "cast_id",
		ForeignKeys: []relational.ForeignKey{
			{Column: "movie_id", RefTable: "movie", RefColumn: "movie_id"},
			{Column: "person_id", RefTable: "person", RefColumn: "person_id"},
		},
	})
	db := relational.MustNewDatabase("equiv", s)
	rng := rand.New(rand.NewSource(11))
	genres := []string{"drama", "comedy", "thriller", "noir"}
	words := []string{"dark", "river", "storm", "night", "golden", "silent", "iron", "last"}
	I, F, S, N := relational.Int, relational.Float, relational.String_, relational.Null
	for i := 1; i <= 350; i++ {
		title := words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
		year := relational.Value(I(int64(1960 + rng.Intn(60))))
		if rng.Intn(10) == 0 {
			year = N()
		}
		db.Insert("movie", relational.Row{
			I(int64(i)), S(title), year, F(float64(rng.Intn(100)) / 10), S(genres[rng.Intn(len(genres))]),
		})
	}
	for i := 1; i <= 120; i++ {
		db.Insert("person", relational.Row{I(int64(i)), S(fmt.Sprintf("p%d %s", i, words[rng.Intn(len(words))]))})
	}
	roles := []string{"actor", "director", "writer"}
	for i := 1; i <= 800; i++ {
		mid := relational.Value(I(int64(1 + rng.Intn(350))))
		pid := relational.Value(I(int64(1 + rng.Intn(120))))
		role := relational.Value(S(roles[rng.Intn(len(roles))]))
		// NULL-key rows: must not match any equi-join.
		if rng.Intn(8) == 0 {
			mid = N()
		}
		if rng.Intn(8) == 0 {
			pid = N()
		}
		if rng.Intn(10) == 0 {
			role = N()
		}
		db.Insert("cast_info", relational.Row{I(int64(i)), mid, pid, role})
	}
	return db
}

// rowMultiset renders a result as a sorted multiset of value keys, the
// order-insensitive comparison both execution paths must agree on (the
// planner may legally reorder rows of un-ORDERed results via build-side
// swaps).
func rowMultiset(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		var b strings.Builder
		for _, v := range r {
			b.WriteString(v.Key())
			b.WriteByte('|')
		}
		out[i] = b.String()
	}
	sort.Strings(out)
	return out
}

// checkEquivalent runs src through the planned executor and the full-scan
// reference and reports any divergence. Queries with LIMIT/OFFSET but no
// total order compare row counts only (which rows are kept is legitimately
// order-dependent). It is goroutine-safe so the generated suite can fan
// out.
func checkEquivalent(db *relational.Database, src string) error {
	stmt, err := Parse(src)
	if err != nil {
		return fmt.Errorf("Parse(%q): %v", src, err)
	}
	planned, perr := Execute(db, stmt)
	reference, rerr := ExecuteFullScan(db, stmt)
	if (perr != nil) != (rerr != nil) {
		return fmt.Errorf("error divergence for %q: planned=%v reference=%v", src, perr, rerr)
	}
	if perr != nil {
		return nil
	}
	if strings.Join(planned.Columns, ",") != strings.Join(reference.Columns, ",") {
		return fmt.Errorf("column divergence for %q: %v vs %v", src, planned.Columns, reference.Columns)
	}
	if len(planned.Rows) != len(reference.Rows) {
		return fmt.Errorf("row-count divergence for %q: planned=%d reference=%d", src, len(planned.Rows), len(reference.Rows))
	}
	if stmt.Limit >= 0 || stmt.Offset > 0 {
		return nil
	}
	p, r := rowMultiset(planned), rowMultiset(reference)
	for i := range p {
		if p[i] != r[i] {
			return fmt.Errorf("row divergence for %q:\n  planned   %s\n  reference %s", src, p[i], r[i])
		}
	}

	// The existence mode must agree with materialized emptiness.
	exists, err := Exists(db, stmt)
	if err != nil {
		return fmt.Errorf("Exists(%q): %v", src, err)
	}
	if exists != (len(reference.Rows) > 0) {
		return fmt.Errorf("Exists divergence for %q: %v vs %d rows", src, exists, len(reference.Rows))
	}
	return nil
}

// TestPlannerEquivalenceTableDriven pins the cases that motivated the
// planner rules, NULL-key join rows and LEFT JOIN pushdown legality above
// all.
func TestPlannerEquivalenceTableDriven(t *testing.T) {
	db := eqDB(t)
	for _, src := range []string{
		"SELECT * FROM movie",
		"SELECT * FROM movie WHERE movie_id = 17",
		"SELECT * FROM movie WHERE movie_id = -5",
		"SELECT title FROM movie WHERE genre = 'noir'",
		"SELECT title FROM movie WHERE title = 'dark river'",
		"SELECT title FROM movie WHERE year IS NULL",
		"SELECT title FROM movie WHERE year IS NOT NULL AND genre = 'drama'",
		"SELECT title FROM movie WHERE year = NULL",
		"SELECT title FROM movie WHERE year IN (1970, 1980, 1990)",
		"SELECT title FROM movie WHERE NOT (year > 1980)",
		"SELECT title FROM movie WHERE year > 1980 OR rating > 8",
		"SELECT title FROM movie WHERE title MATCH 'dark'",
		"SELECT title FROM movie WHERE title LIKE '%storm%'",
		// NULL-key rows must not join.
		`SELECT movie.title, cast_info.role FROM movie
			JOIN cast_info ON cast_info.movie_id = movie.movie_id`,
		`SELECT person.name, movie.title FROM person
			JOIN cast_info ON cast_info.person_id = person.person_id
			JOIN movie ON movie.movie_id = cast_info.movie_id
			WHERE cast_info.role = 'director'`,
		// LEFT JOIN: null-extension must survive pushdown decisions.
		`SELECT movie.title, cast_info.role FROM movie
			LEFT JOIN cast_info ON cast_info.movie_id = movie.movie_id`,
		`SELECT movie.title, cast_info.role FROM movie
			LEFT JOIN cast_info ON cast_info.movie_id = movie.movie_id
			WHERE cast_info.role = 'actor'`,
		`SELECT movie.title FROM movie
			LEFT JOIN cast_info ON cast_info.movie_id = movie.movie_id
			WHERE cast_info.role IS NULL`,
		// Build-side swap territory: tiny filtered left side.
		`SELECT person.name, cast_info.role FROM person
			JOIN cast_info ON cast_info.person_id = person.person_id
			WHERE person.person_id = 3`,
		// Range predicates through the sorted index (and NULL years
		// which must never qualify).
		"SELECT title FROM movie WHERE year BETWEEN 1970 AND 1980",
		"SELECT title FROM movie WHERE year > 1990 AND year <= 2005 AND rating > 5",
		"SELECT title FROM movie WHERE 1985 <= year",
		"SELECT title FROM movie WHERE year BETWEEN 1990 AND 1970",
		// IN lists through unioned postings (duplicates, NULLs, misses).
		"SELECT title FROM movie WHERE movie_id IN (3, 3, 700, NULL, 42)",
		"SELECT title FROM movie WHERE genre IN ('noir', 'comedy')",
		"SELECT cast_id FROM cast_info WHERE person_id IN (1, 2, 3)",
		// Reordered 3-table join with a selective tail predicate: the
		// written order is the worst order.
		`SELECT movie.title, person.name FROM cast_info
			JOIN movie ON movie.movie_id = cast_info.movie_id
			JOIN person ON person.person_id = cast_info.person_id
			WHERE person.person_id = 11`,
		// 4-relation join (self-join on movie) exercising the enumerator
		// with range + IN predicates in the pool.
		`SELECT person.name, m2.title FROM person
			JOIN cast_info ON cast_info.person_id = person.person_id
			JOIN movie ON movie.movie_id = cast_info.movie_id
			JOIN movie m2 ON m2.movie_id = cast_info.movie_id
			WHERE movie.year BETWEEN 1980 AND 1995 AND person.person_id IN (5, 9, 13)`,
		// Residual ON conjunct plus pushdown.
		`SELECT person.name FROM person
			JOIN cast_info ON cast_info.person_id = person.person_id AND cast_info.cast_id > 100
			WHERE person.name LIKE 'p1%'`,
		// Multi-table WHERE conjunct placed after its covering join.
		`SELECT movie.title FROM movie
			JOIN cast_info ON cast_info.movie_id = movie.movie_id
			WHERE movie.movie_id + 1 > cast_info.person_id AND movie.genre = 'drama'`,
		// Non-equi join: nested loop with pushdown.
		`SELECT m1.title FROM movie m1
			JOIN movie m2 ON m1.year < m2.year
			WHERE m1.movie_id = 9 AND m2.genre = 'comedy'`,
		// Aggregation over planned joins.
		`SELECT cast_info.role, COUNT(*) FROM movie
			JOIN cast_info ON cast_info.movie_id = movie.movie_id
			WHERE movie.genre = 'drama' GROUP BY cast_info.role`,
		"SELECT COUNT(*), MIN(year), MAX(year) FROM movie WHERE genre = 'noir'",
		"SELECT DISTINCT genre FROM movie WHERE year > 1990",
		"SELECT title FROM movie WHERE genre = 'drama' ORDER BY movie_id LIMIT 5",
		"SELECT title FROM movie ORDER BY year DESC, title, movie_id",
	} {
		if err := checkEquivalent(db, src); err != nil {
			t.Error(err)
		}
	}
}

// TestPlannerEquivalenceGenerated is the lightweight fuzz layer: seeded
// random SELECTs over every FROM shape and predicate kind, executed
// concurrently so the plan cache and lazy index builds also run under the
// race detector (make race).
func TestPlannerEquivalenceGenerated(t *testing.T) {
	db := eqDB(t)
	fromShapes := []string{
		"FROM movie",
		"FROM movie JOIN cast_info ON cast_info.movie_id = movie.movie_id",
		"FROM movie LEFT JOIN cast_info ON cast_info.movie_id = movie.movie_id",
		`FROM person JOIN cast_info ON cast_info.person_id = person.person_id
			JOIN movie ON movie.movie_id = cast_info.movie_id`,
		`FROM person LEFT JOIN cast_info ON cast_info.person_id = person.person_id
			LEFT JOIN movie ON movie.movie_id = cast_info.movie_id`,
		// ≥3-table inner shapes written in join-enumerator-hostile order
		// (fact table first) so reordered plans are continuously pinned
		// against the reference.
		`FROM cast_info JOIN movie ON movie.movie_id = cast_info.movie_id
			JOIN person ON person.person_id = cast_info.person_id`,
		`FROM cast_info JOIN person ON person.person_id = cast_info.person_id
			JOIN movie ON movie.movie_id = cast_info.movie_id
			JOIN movie m2 ON m2.movie_id = cast_info.movie_id`,
	}
	moviePreds := []string{
		"movie.movie_id = %d",
		"movie.genre = 'drama'",
		"movie.genre = 'noir'",
		"movie.year > %d",
		"movie.year IS NULL",
		"movie.year IS NOT NULL",
		"movie.title MATCH 'river'",
		"movie.title LIKE '%%storm%%'",
		"movie.year IN (1971, 1984, 2002)",
		"(movie.year > %d OR movie.rating > 5)",
		// Range shapes: BETWEEN, combined bounds, literal-first spelling,
		// empty and inverted intervals.
		"movie.year BETWEEN 1975 AND 1995",
		"movie.year BETWEEN %d AND 2005",
		"movie.year > %d",
		"movie.year >= 1980 AND movie.year < 1990",
		"1990 <= movie.year",
		"movie.rating > 7.5",
		"movie.year BETWEEN 2002 AND 1999",
		// IN shapes: strings, duplicates, NULL members, misses.
		"movie.genre IN ('drama', 'noir')",
		"movie.movie_id IN (%d, %d, NULL)",
		"movie.year IN (1981, 1981, 1993)",
	}
	castPreds := []string{
		"cast_info.role = 'actor'",
		"cast_info.role IS NULL",
		"cast_info.cast_id = %d",
		"cast_info.person_id = %d",
		"movie.movie_id = cast_info.person_id",
		"cast_info.cast_id BETWEEN %d AND 600",
		"cast_info.person_id IN (%d, %d)",
		"cast_info.role IN ('actor', 'writer', NULL)",
	}
	rng := rand.New(rand.NewSource(23))
	queries := make([]string, 0, 240)
	for i := 0; i < 240; i++ {
		shape := fromShapes[rng.Intn(len(fromShapes))]
		var preds []string
		for n := rng.Intn(4); n > 0; n-- {
			pool := moviePreds
			if strings.Contains(shape, "cast_info") && rng.Intn(2) == 0 {
				pool = castPreds
			}
			if !strings.Contains(shape, "FROM movie") && !strings.Contains(shape, "JOIN movie") && pool[0][:5] == "movie" {
				continue
			}
			p := pool[rng.Intn(len(pool))]
			if n := strings.Count(p, "%d"); n > 0 {
				args := make([]interface{}, n)
				for ai := range args {
					args[ai] = rng.Intn(420)
				}
				p = fmt.Sprintf(p, args...)
			}
			preds = append(preds, p)
		}
		sel := "SELECT movie.title, movie.year"
		if strings.Contains(shape, "cast_info") {
			sel += ", cast_info.role"
		}
		if !strings.Contains(shape, "movie") {
			sel = "SELECT person.name"
		}
		q := sel + " " + shape
		if len(preds) > 0 {
			q += " WHERE " + strings.Join(preds, " AND ")
		}
		switch rng.Intn(5) {
		case 0:
			q += " ORDER BY movie.movie_id"
		case 1:
			q = strings.Replace(q, "SELECT ", "SELECT DISTINCT ", 1)
		}
		queries = append(queries, q)
	}

	var wg sync.WaitGroup
	const workers = 4
	errc := make(chan error, len(queries))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(queries); i += workers {
				if err := checkEquivalent(db, queries[i]); err != nil {
					errc <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
