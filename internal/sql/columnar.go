package sql

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/relational"
)

// This file is the columnar batch codec of the shard wire protocol: a row
// batch transposed into per-column vectors, each vector carrying its own
// lightweight encoding. Shipped results are dominated by a few repetitive
// columns — low-cardinality attributes (genres, roles), sorted merge keys,
// constant predicate echoes — and a per-column encoding choice captures
// that redundancy without a general-purpose compressor:
//
//   - ColEncPlain: the row codec's values back to back, one per row.
//   - ColEncDict:  distinct values once (first-appearance order) followed
//     by one uvarint dictionary index per row. Wins on low-cardinality
//     columns.
//   - ColEncRLE:   runs of byte-identical adjacent values as (uvarint run
//     length, value) pairs. Wins on sorted and constant columns.
//
// The encoder picks, per column, whichever encoding yields the fewest
// bytes, so a columnar batch is never larger than its plain transposition
// plus one encoding byte per column. Values reuse AppendValue/DecodeValue,
// so the encoding stays exact: a decoded batch is byte-for-byte the rows
// that went in, types included — Int(3) and Float(3) never share a
// dictionary slot because dictionary and run equality compare encoded
// bytes, not Compare order.
//
// Decoding is strict: every count is bounds-checked before allocation,
// dictionary indexes must address the dictionary, run lengths must tile
// the row count exactly, and trailing bytes are an error. Because RLE
// legitimately expands (a 4-byte run can decode to thousands of rows), the
// row count cannot be bounded by the payload length the way DecodeRow
// bounds cell counts; fixed caps bound the decoder's allocation instead.

// Column encodings. The encoding byte leads each encoded column.
const (
	// ColEncPlain is one row-codec value per row, in row order.
	ColEncPlain byte = 0
	// ColEncDict is a uvarint dictionary size, the dictionary's values in
	// first-appearance order, then one uvarint dictionary index per row.
	ColEncDict byte = 1
	// ColEncRLE is a uvarint run count, then (uvarint run length, value)
	// pairs whose lengths sum exactly to the batch's row count.
	ColEncRLE byte = 2
)

// Decoder allocation caps. A well-formed server batch is far smaller (the
// transport cuts batches at hundreds of rows); the caps exist so a corrupt
// or hostile payload whose counts RLE-expand far beyond its byte length
// cannot force a huge allocation.
const (
	// MaxColumnarRows caps the row count of one columnar batch.
	MaxColumnarRows = 1 << 16
	// MaxColumnarCols caps the column count of one columnar batch.
	MaxColumnarCols = 1 << 12
	// maxColumnarCells caps rows × columns, bounding total Value storage.
	maxColumnarCells = 1 << 21
)

// DictMaxCardinality is the most distinct values a dictionary encoding will
// hold. Columns whose statistics report more distinct values skip the
// dictionary attempt entirely — the stats hint saves the map build that
// would only discover the same thing row by row.
const DictMaxCardinality = 512

// EncodingHint carries per-column statistics evidence into the encoder's
// encoding selection. The zero value means "unknown": the encoder still
// tries every encoding, abandoning the dictionary once it sees more than
// DictMaxCardinality distinct values.
type EncodingHint struct {
	// Distinct is the column's distinct non-null count from table
	// statistics (relational.ColumnStats.Distinct).
	Distinct int
	// HasStats reports whether Distinct is real evidence; false leaves the
	// encoder adaptive.
	HasStats bool
}

// AppendColumnarBatch appends the columnar wire encoding of a batch:
// uvarint row count, uvarint column count, then each column as one
// encoding byte plus its payload. cols holds the batch transposed — one
// vector of nrows values per result column. hints may be nil or shorter
// than cols; missing entries mean no statistics evidence.
func AppendColumnarBatch(dst []byte, nrows int, cols [][]relational.Value, hints []EncodingHint) []byte {
	dst = binary.AppendUvarint(dst, uint64(nrows))
	dst = binary.AppendUvarint(dst, uint64(len(cols)))
	var sc columnScratch
	for ci, vals := range cols {
		var hint EncodingHint
		if ci < len(hints) {
			hint = hints[ci]
		}
		dst = appendColumn(dst, vals, hint, &sc)
	}
	return dst
}

// columnScratch holds buffers reused across a batch's columns.
type columnScratch struct {
	buf  []byte // every value of the current column, encoded back to back
	offs []int  // offs[i]..offs[i+1] bounds value i inside buf
	idx  []int  // dictionary index per row
}

// appendColumn encodes one column vector, choosing the smallest encoding.
func appendColumn(dst []byte, vals []relational.Value, hint EncodingHint, sc *columnScratch) []byte {
	n := len(vals)
	buf, offs := sc.buf[:0], sc.offs[:0]
	offs = append(offs, 0)
	for _, v := range vals {
		buf = AppendValue(buf, v)
		offs = append(offs, len(buf))
	}
	sc.buf, sc.offs = buf, offs
	plainSize := len(buf)
	valBytes := func(i int) []byte { return buf[offs[i]:offs[i+1]] }

	// Run-length size: runs break wherever the encoded bytes change.
	runs, rleSize, runStart := 0, 0, 0
	for i := 1; i <= n; i++ {
		if i < n && bytes.Equal(valBytes(i), valBytes(runStart)) {
			continue
		}
		runs++
		rleSize += uvarintLen(uint64(i-runStart)) + len(valBytes(runStart))
		runStart = i
	}
	rleTotal := uvarintLen(uint64(runs)) + rleSize

	// Dictionary size: skipped outright when statistics already say the
	// column's cardinality is beyond what a dictionary can hold.
	dictTotal := -1
	var dictFirst []int // first-occurrence row per dictionary entry
	idx := sc.idx[:0]
	if n > 0 && !(hint.HasStats && hint.Distinct > DictMaxCardinality) {
		m := make(map[string]int, 16)
		dictBytes, idxBytes := 0, 0
		fits := true
		for i := 0; i < n; i++ {
			k := valBytes(i)
			id, ok := m[string(k)]
			if !ok {
				if len(m) >= DictMaxCardinality {
					fits = false
					break
				}
				id = len(m)
				m[string(k)] = id
				dictFirst = append(dictFirst, i)
				dictBytes += len(k)
			}
			idx = append(idx, id)
			idxBytes += uvarintLen(uint64(id))
		}
		if fits {
			dictTotal = uvarintLen(uint64(len(dictFirst))) + dictBytes + idxBytes
		}
	}
	sc.idx = idx

	switch {
	case dictTotal >= 0 && dictTotal < plainSize && dictTotal <= rleTotal:
		dst = append(dst, ColEncDict)
		dst = binary.AppendUvarint(dst, uint64(len(dictFirst)))
		for _, fi := range dictFirst {
			dst = append(dst, valBytes(fi)...)
		}
		for _, id := range idx {
			dst = binary.AppendUvarint(dst, uint64(id))
		}
	case rleTotal < plainSize:
		dst = append(dst, ColEncRLE)
		dst = binary.AppendUvarint(dst, uint64(runs))
		runStart = 0
		for i := 1; i <= n; i++ {
			if i < n && bytes.Equal(valBytes(i), valBytes(runStart)) {
				continue
			}
			dst = binary.AppendUvarint(dst, uint64(i-runStart))
			dst = append(dst, valBytes(runStart)...)
			runStart = i
		}
	default:
		dst = append(dst, ColEncPlain)
		dst = append(dst, buf...)
	}
	return dst
}

// DecodeColumnarRows decodes one columnar batch payload back into rows.
// The payload must be exactly one batch: trailing bytes are an error, as
// is any count that fails its bounds check — truncated vectors, dictionary
// indexes past the dictionary, runs that under- or over-tile the row count.
func DecodeColumnarRows(b []byte) ([]relational.Row, error) {
	nrows64, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, fmt.Errorf("sql: truncated columnar row count")
	}
	off := sz
	ncols64, sz := binary.Uvarint(b[off:])
	if sz <= 0 {
		return nil, fmt.Errorf("sql: truncated columnar column count")
	}
	off += sz
	if nrows64 > MaxColumnarRows {
		return nil, fmt.Errorf("sql: columnar row count %d exceeds cap %d", nrows64, MaxColumnarRows)
	}
	if ncols64 > MaxColumnarCols {
		return nil, fmt.Errorf("sql: columnar column count %d exceeds cap %d", ncols64, MaxColumnarCols)
	}
	nrows, ncols := int(nrows64), int(ncols64)
	if nrows*ncols > maxColumnarCells {
		return nil, fmt.Errorf("sql: columnar batch %d×%d exceeds %d cells", nrows, ncols, maxColumnarCells)
	}
	rows := make([]relational.Row, nrows)
	cells := make(relational.Row, nrows*ncols)
	for i := range rows {
		rows[i] = cells[i*ncols : (i+1)*ncols : (i+1)*ncols]
	}
	for c := 0; c < ncols; c++ {
		if off >= len(b) {
			return nil, fmt.Errorf("sql: truncated column %d encoding byte", c)
		}
		enc := b[off]
		off++
		switch enc {
		case ColEncPlain:
			for i := 0; i < nrows; i++ {
				v, vsz, err := DecodeValue(b[off:])
				if err != nil {
					return nil, err
				}
				rows[i][c] = v
				off += vsz
			}
		case ColEncDict:
			dn, dsz := binary.Uvarint(b[off:])
			if dsz <= 0 {
				return nil, fmt.Errorf("sql: truncated dictionary size")
			}
			off += dsz
			// Every dictionary value takes at least one byte, so the size
			// cannot legitimately exceed the remaining payload.
			if dn > uint64(len(b)-off) {
				return nil, fmt.Errorf("sql: dictionary size %d exceeds remaining %d bytes", dn, len(b)-off)
			}
			dict := make([]relational.Value, dn)
			for i := range dict {
				v, vsz, err := DecodeValue(b[off:])
				if err != nil {
					return nil, err
				}
				dict[i] = v
				off += vsz
			}
			for i := 0; i < nrows; i++ {
				id, isz := binary.Uvarint(b[off:])
				if isz <= 0 {
					return nil, fmt.Errorf("sql: truncated dictionary index")
				}
				if id >= dn {
					return nil, fmt.Errorf("sql: dictionary index %d out of range %d", id, dn)
				}
				rows[i][c] = dict[id]
				off += isz
			}
		case ColEncRLE:
			rn, rsz := binary.Uvarint(b[off:])
			if rsz <= 0 {
				return nil, fmt.Errorf("sql: truncated run count")
			}
			off += rsz
			if rn > uint64(nrows) {
				return nil, fmt.Errorf("sql: run count %d exceeds %d rows", rn, nrows)
			}
			filled := 0
			for r := uint64(0); r < rn; r++ {
				rl, lsz := binary.Uvarint(b[off:])
				if lsz <= 0 {
					return nil, fmt.Errorf("sql: truncated run length")
				}
				off += lsz
				if rl == 0 {
					return nil, fmt.Errorf("sql: empty run")
				}
				if rl > uint64(nrows-filled) {
					return nil, fmt.Errorf("sql: run of %d overflows %d remaining rows", rl, nrows-filled)
				}
				v, vsz, err := DecodeValue(b[off:])
				if err != nil {
					return nil, err
				}
				off += vsz
				for k := 0; k < int(rl); k++ {
					rows[filled+k][c] = v
				}
				filled += int(rl)
			}
			if filled != nrows {
				return nil, fmt.Errorf("sql: runs cover %d of %d rows", filled, nrows)
			}
		default:
			return nil, fmt.Errorf("sql: unknown column encoding 0x%02x", enc)
		}
	}
	if off != len(b) {
		return nil, fmt.Errorf("sql: %d trailing bytes after columnar batch", len(b)-off)
	}
	return rows, nil
}

// EncodedRowSize returns the row-codec wire size of a row without encoding
// it — how the transport server sizes its batch cuts while accumulating
// column vectors that are only encoded at flush time.
func EncodedRowSize(r relational.Row) int {
	n := uvarintLen(uint64(len(r)))
	for _, v := range r {
		n += encodedValueSize(v)
	}
	return n
}

func encodedValueSize(v relational.Value) int {
	switch v.Type() {
	case relational.TypeInt:
		x := v.AsInt()
		return 1 + uvarintLen(uint64(x)<<1^uint64(x>>63)) // zigzag, as AppendVarint
	case relational.TypeFloat:
		return 9
	case relational.TypeString:
		s := v.AsString()
		return 1 + uvarintLen(uint64(len(s))) + len(s)
	default: // NULL and booleans are a lone tag byte
		return 1
	}
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}
