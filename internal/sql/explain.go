package sql

import (
	"fmt"
	"strings"

	"repro/internal/relational"
)

// Explain renders a textual execution plan for the statement against the
// database: access paths, join strategies (hash vs nested loop) with build
// sides and key columns, filters, aggregation, ordering and limits. The
// executor and Explain share the equi-join detection logic, so the plan
// reflects what Execute actually does.
func Explain(db *relational.Database, stmt *SelectStmt) (string, error) {
	var b strings.Builder
	indent := 0
	line := func(format string, args ...interface{}) {
		b.WriteString(strings.Repeat("  ", indent))
		fmt.Fprintf(&b, format, args...)
		b.WriteString("\n")
	}

	if stmt.Limit >= 0 || stmt.Offset > 0 {
		line("LIMIT %s OFFSET %d", limitText(stmt.Limit), stmt.Offset)
		indent++
	}
	if len(stmt.OrderBy) > 0 {
		keys := make([]string, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			dir := "ASC"
			if o.Desc {
				dir = "DESC"
			}
			keys[i] = o.Expr.SQL() + " " + dir
		}
		line("SORT BY %s", strings.Join(keys, ", "))
		indent++
	}
	if stmt.Distinct {
		line("DISTINCT")
		indent++
	}

	hasAgg := len(stmt.GroupBy) > 0
	for _, it := range stmt.Items {
		if !it.Star && containsAgg(it.Expr) {
			hasAgg = true
		}
	}
	if hasAgg {
		if len(stmt.GroupBy) > 0 {
			keys := make([]string, len(stmt.GroupBy))
			for i, g := range stmt.GroupBy {
				keys[i] = g.SQL()
			}
			line("AGGREGATE GROUP BY %s", strings.Join(keys, ", "))
		} else {
			line("AGGREGATE (single group)")
		}
		if stmt.Having != nil {
			indent++
			line("HAVING %s", stmt.Having.SQL())
			indent--
		}
		indent++
	}

	line("PROJECT %s", projectText(stmt))
	indent++
	if stmt.Where != nil {
		line("FILTER %s", stmt.Where.SQL())
		indent++
	}

	// Join tree, mirroring buildFrom's left-deep order and strategy choice.
	rel, err := baseRelation(db, stmt.From)
	if err != nil {
		return "", err
	}
	joinLines := []string{
		fmt.Sprintf("SCAN %s (%d rows)", scanText(stmt.From), db.Table(stmt.From.Table).Len()),
	}
	for _, j := range stmt.Joins {
		right, err := baseRelation(db, j.Table)
		if err != nil {
			return "", err
		}
		lk, rk, residual := equiJoinKeys(rel, right, j.On)
		kind := "NESTED LOOP JOIN"
		detail := "on " + j.On.SQL()
		if len(lk) > 0 {
			kind = "HASH JOIN"
			keys := make([]string, len(lk))
			for i := range lk {
				keys[i] = rel.cols[lk[i]].display + " = " + right.cols[rk[i]].display
			}
			detail = "build right on " + strings.Join(keys, ", ")
			if len(residual) > 0 {
				parts := make([]string, len(residual))
				for i, r := range residual {
					parts[i] = r.SQL()
				}
				detail += " residual " + strings.Join(parts, " AND ")
			}
		}
		if j.Left {
			kind = "LEFT " + kind
		}
		joinLines = append(joinLines, fmt.Sprintf("%s %s (%d rows) %s",
			kind, scanText(j.Table), db.Table(j.Table.Table).Len(), detail))
		// Extend the bound columns the way the executor would, so later
		// joins resolve against the accumulated relation.
		rel = &relation{cols: append(append([]boundCol{}, rel.cols...), right.cols...)}
	}
	for i := len(joinLines) - 1; i >= 0; i-- {
		line("%s", joinLines[i])
		indent++
	}
	return b.String(), nil
}

// ExplainQuery parses and explains in one step.
func ExplainQuery(db *relational.Database, src string) (string, error) {
	stmt, err := Parse(src)
	if err != nil {
		return "", err
	}
	return Explain(db, stmt)
}

func limitText(n int) string {
	if n < 0 {
		return "ALL"
	}
	return fmt.Sprint(n)
}

func projectText(stmt *SelectStmt) string {
	parts := make([]string, 0, len(stmt.Items))
	for _, it := range stmt.Items {
		if it.Star {
			parts = append(parts, "*")
			continue
		}
		s := it.Expr.SQL()
		if it.Alias != "" {
			s += " AS " + it.Alias
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ", ")
}

func scanText(tr TableRef) string {
	if tr.Alias != "" {
		return tr.Table + " AS " + tr.Alias
	}
	return tr.Table
}
