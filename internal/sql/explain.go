package sql

import (
	"fmt"
	"strings"

	"repro/internal/relational"
)

// Explain renders a textual execution plan for the statement against the
// database: access paths (equality, range, IN-list or MATCH-posting index
// probes vs full scans), pushed-down predicates, the chosen join order,
// join strategies (hash vs nested loop) with build sides and key columns,
// filters, aggregation, ordering and limits. The rendering is produced
// from the same QueryPlan the executor runs, so the plan reflects what
// Execute actually does.
func Explain(db *relational.Database, stmt *SelectStmt) (string, error) {
	qp, err := Plan(db, stmt)
	if err != nil {
		return "", err
	}
	return renderPlan(db, stmt, qp), nil
}

// ExplainAnalyze executes the statement and renders its plan with the
// observed cardinality next to each estimate, the estimated-vs-actual view
// that shows where the statistics were wrong.
func ExplainAnalyze(db *relational.Database, stmt *SelectStmt) (string, error) {
	res, err := Execute(db, stmt)
	if err != nil {
		return "", err
	}
	return renderPlan(db, stmt, res.Plan), nil
}

func renderPlan(db *relational.Database, stmt *SelectStmt, qp *QueryPlan) string {
	var b strings.Builder
	indent := 0
	line := func(format string, args ...interface{}) {
		b.WriteString(strings.Repeat("  ", indent))
		fmt.Fprintf(&b, format, args...)
		b.WriteString("\n")
	}

	if qp.Reordered {
		line("JOIN ORDER %s (reordered)", strings.Join(qp.JoinOrder, ", "))
	}
	if stmt.Limit >= 0 || stmt.Offset > 0 {
		line("LIMIT %s OFFSET %d", limitText(stmt.Limit), stmt.Offset)
		indent++
	}
	if len(stmt.OrderBy) > 0 {
		keys := make([]string, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			dir := "ASC"
			if o.Desc {
				dir = "DESC"
			}
			keys[i] = o.Expr.SQL() + " " + dir
		}
		line("SORT BY %s", strings.Join(keys, ", "))
		indent++
	}
	if stmt.Distinct {
		line("DISTINCT")
		indent++
	}

	if len(stmt.GroupBy) > 0 || anyAgg(stmt) {
		if len(stmt.GroupBy) > 0 {
			keys := make([]string, len(stmt.GroupBy))
			for i, g := range stmt.GroupBy {
				keys[i] = g.SQL()
			}
			line("AGGREGATE GROUP BY %s", strings.Join(keys, ", "))
		} else {
			line("AGGREGATE (single group)")
		}
		if stmt.Having != nil {
			indent++
			line("HAVING %s", stmt.Having.SQL())
			indent--
		}
		indent++
	}

	line("PROJECT %s", projectText(stmt))
	indent++
	if len(qp.Filter) > 0 {
		line("FILTER %s", strings.Join(qp.Filter, " AND "))
		indent++
	}

	// Join tree, innermost (base scan) last; each join step names its
	// strategy, build side, keys and the predicates placed at that level.
	joinLines := []string{scanLine(db, qp.Scans[0])}
	for i, jp := range qp.Joins {
		kind := "NESTED LOOP JOIN"
		detail := "on " + jp.On
		if jp.Strategy == StrategyHash {
			kind = "HASH JOIN"
			side := "right"
			if jp.BuildLeft {
				side = "left"
			}
			detail = "build " + side + " on " + strings.Join(jp.Keys, ", ")
			if len(jp.Residual) > 0 {
				detail += " residual " + strings.Join(jp.Residual, " AND ")
			}
		}
		if jp.Outer {
			kind = "LEFT " + kind
		}
		entry := fmt.Sprintf("%s %s %s", kind, scanText(refOf(jp.Table, jp.Binding)), detail)
		if len(jp.Filter) > 0 {
			entry += " filter " + strings.Join(jp.Filter, " AND ")
		}
		entry += rowsText("~", jp.EstRows, jp.ActualRows)
		joinLines = append(joinLines, entry, scanLine(db, qp.Scans[i+1]))
	}
	for i := 0; i < len(joinLines); i++ {
		line("%s", joinLines[len(joinLines)-1-i])
		indent++
	}
	return b.String()
}

// rowsText renders the estimated (and, after execution, actual) row count
// of one plan operator.
func rowsText(prefix string, est, actual int) string {
	if actual >= 0 {
		return fmt.Sprintf(" (%s%d est, %d actual rows)", prefix, est, actual)
	}
	return ""
}

func refOf(table, binding string) TableRef {
	tr := TableRef{Table: table}
	if binding != table {
		tr.Alias = binding
	}
	return tr
}

// scanLine renders one base-table access: full scans report the real table
// size, index probes the probe description with the matched-row estimate;
// pushed-down predicates are shown as a scan-level FILTER. After execution
// the actual emitted row count follows the estimate, and when the
// estimate was costed from column statistics their freshness is annotated
// ([stats: fresh|budget-stale|sampled]) so estimate drift under write
// traffic is diagnosable.
func scanLine(db *relational.Database, sp ScanPlan) string {
	tr := refOf(sp.Table, sp.Binding)
	var s string
	switch sp.Access {
	case AccessIndexEq:
		s = fmt.Sprintf("INDEX SCAN %s (%s = %s, ~%d rows)", scanText(tr), sp.IndexColumn, sp.Lookup, sp.EstRows)
	case AccessIndexRange:
		s = fmt.Sprintf("RANGE SCAN %s (%s %s, ~%d rows)", scanText(tr), sp.IndexColumn, sp.Lookup, sp.EstRows)
	case AccessIndexIn:
		s = fmt.Sprintf("IN SCAN %s (%s %s, ~%d rows)", scanText(tr), sp.IndexColumn, sp.Lookup, sp.EstRows)
	case AccessMatchPostings:
		s = fmt.Sprintf("MATCH SCAN %s (%s %s, ~%d rows)", scanText(tr), sp.IndexColumn, sp.Lookup, sp.EstRows)
	default:
		s = fmt.Sprintf("SCAN %s (%d rows)", scanText(tr), db.Table(sp.Table).Len())
	}
	if len(sp.Pushed) > 0 {
		s += " FILTER " + strings.Join(sp.Pushed, " AND ")
	}
	if sp.ActualRows >= 0 {
		s += fmt.Sprintf(" (%d actual rows)", sp.ActualRows)
	}
	if sp.StatsFreshness != "" {
		s += " [stats: " + sp.StatsFreshness + "]"
	}
	return s
}

// ExplainQuery parses and explains in one step.
func ExplainQuery(db *relational.Database, src string) (string, error) {
	stmt, err := Parse(src)
	if err != nil {
		return "", err
	}
	return Explain(db, stmt)
}

func limitText(n int) string {
	if n < 0 {
		return "ALL"
	}
	return fmt.Sprint(n)
}

func projectText(stmt *SelectStmt) string {
	parts := make([]string, 0, len(stmt.Items))
	for _, it := range stmt.Items {
		if it.Star {
			parts = append(parts, "*")
			continue
		}
		s := it.Expr.SQL()
		if it.Alias != "" {
			s += " AS " + it.Alias
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ", ")
}

func scanText(tr TableRef) string {
	if tr.Alias != "" {
		return tr.Table + " AS " + tr.Alias
	}
	return tr.Table
}
