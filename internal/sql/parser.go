package sql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/relational"
)

// Parser is a recursive-descent parser for the SELECT dialect.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a single SELECT statement (an optional trailing semicolon is
// accepted).
func Parse(src string) (*SelectStmt, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == TokSymbol && p.peek().Text == ";" {
		p.pos++
	}
	if p.peek().Kind != TokEOF {
		return nil, fmt.Errorf("sql: trailing input at offset %d: %q", p.peek().Pos, p.peek().Text)
	}
	return stmt, nil
}

func (p *Parser) peek() Token { return p.toks[p.pos] }

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) acceptKeyword(kw string) bool {
	if p.peek().Kind == TokKeyword && p.peek().Text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sql: expected %s, got %q at offset %d", kw, p.peek().Text, p.peek().Pos)
	}
	return nil
}

func (p *Parser) acceptSymbol(sym string) bool {
	if p.peek().Kind == TokSymbol && p.peek().Text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return fmt.Errorf("sql: expected %q, got %q at offset %d", sym, p.peek().Text, p.peek().Pos)
	}
	return nil
}

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.acceptKeyword("DISTINCT")

	for {
		if p.acceptSymbol("*") {
			stmt.Items = append(stmt.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				t := p.next()
				if t.Kind != TokIdent {
					return nil, fmt.Errorf("sql: expected alias after AS, got %q", t.Text)
				}
				item.Alias = t.Text
			} else if p.peek().Kind == TokIdent {
				item.Alias = p.next().Text
			}
			stmt.Items = append(stmt.Items, item)
		}
		if !p.acceptSymbol(",") {
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = from

	for {
		left := false
		if p.acceptKeyword("LEFT") {
			left = true
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if p.acceptKeyword("INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.acceptKeyword("JOIN") {
			break
		}
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Left: left, Table: tr, On: on})
	}

	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, g)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		stmt.Limit = n
	}
	if p.acceptKeyword("OFFSET") {
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		stmt.Offset = n
	}
	return stmt, nil
}

func (p *Parser) parseInt() (int, error) {
	t := p.next()
	if t.Kind != TokNumber {
		return 0, fmt.Errorf("sql: expected number, got %q at offset %d", t.Text, t.Pos)
	}
	n, err := strconv.Atoi(t.Text)
	if err != nil {
		return 0, fmt.Errorf("sql: bad integer %q", t.Text)
	}
	return n, nil
}

func (p *Parser) parseTableRef() (TableRef, error) {
	t := p.next()
	if t.Kind != TokIdent {
		return TableRef{}, fmt.Errorf("sql: expected table name, got %q at offset %d", t.Text, t.Pos)
	}
	tr := TableRef{Table: t.Text}
	if p.acceptKeyword("AS") {
		a := p.next()
		if a.Kind != TokIdent {
			return TableRef{}, fmt.Errorf("sql: expected alias, got %q", a.Text)
		}
		tr.Alias = a.Text
	} else if p.peek().Kind == TokIdent {
		tr.Alias = p.next().Text
	}
	return tr, nil
}

// Expression grammar (precedence climbing):
//
//	expr     := orExpr
//	orExpr   := andExpr (OR andExpr)*
//	andExpr  := notExpr (AND notExpr)*
//	notExpr  := NOT notExpr | cmpExpr
//	cmpExpr  := addExpr ((=|<>|<|<=|>|>=|LIKE|MATCH) addExpr
//	            | IS [NOT] NULL | [NOT] IN (list) | BETWEEN addExpr AND addExpr)?
//	addExpr  := mulExpr ((+|-) mulExpr)*
//	mulExpr  := primary ((*|/) primary)*
//	primary  := literal | aggregate | columnRef | ( expr )
func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Inner: inner}, nil
	}
	return p.parseCmp()
}

func (p *Parser) parseCmp() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == TokSymbol {
		var op BinaryOp
		matched := true
		switch p.peek().Text {
		case "=":
			op = OpEq
		case "<>", "!=":
			op = OpNe
		case "<":
			op = OpLt
		case "<=":
			op = OpLe
		case ">":
			op = OpGt
		case ">=":
			op = OpGe
		default:
			matched = false
		}
		if matched {
			p.next()
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	if p.acceptKeyword("LIKE") {
		right, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: OpLike, Left: left, Right: right}, nil
	}
	if p.acceptKeyword("MATCH") {
		right, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: OpMatch, Left: left, Right: right}, nil
	}
	if p.acceptKeyword("IS") {
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Inner: left, Negate: neg}, nil
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{
			Op:    OpAnd,
			Left:  &BinaryExpr{Op: OpGe, Left: left, Right: lo},
			Right: &BinaryExpr{Op: OpLe, Left: left, Right: hi},
		}, nil
	}
	negIn := false
	if p.peek().Kind == TokKeyword && p.peek().Text == "NOT" {
		// Lookahead for NOT IN.
		save := p.pos
		p.next()
		if p.peek().Kind == TokKeyword && p.peek().Text == "IN" {
			negIn = true
		} else {
			p.pos = save
		}
	}
	if p.acceptKeyword("IN") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		var in Expr = &InExpr{Inner: left, List: list}
		if negIn {
			in = &NotExpr{Inner: in}
		}
		return in, nil
	}
	return left, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokSymbol && (p.peek().Text == "+" || p.peek().Text == "-") {
		op := OpAdd
		if p.next().Text == "-" {
			op = OpSub
		}
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseMul() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokSymbol && (p.peek().Text == "*" || p.peek().Text == "/") {
		op := OpMul
		if p.next().Text == "/" {
			op = OpDiv
		}
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

var aggKeywords = map[string]AggFunc{
	"COUNT": AggCount, "SUM": AggSum, "MIN": AggMin, "MAX": AggMax, "AVG": AggAvg,
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q", t.Text)
			}
			return &Literal{Value: relational.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", t.Text)
		}
		return &Literal{Value: relational.Int(n)}, nil
	case TokString:
		p.next()
		return &Literal{Value: relational.String_(t.Text)}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &Literal{Value: relational.Null()}, nil
		case "TRUE":
			p.next()
			return &Literal{Value: relational.Bool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Value: relational.Bool(false)}, nil
		}
		if fn, ok := aggKeywords[t.Text]; ok {
			p.next()
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			if p.acceptSymbol("*") {
				if fn != AggCount {
					return nil, fmt.Errorf("sql: %s(*) is only valid for COUNT", aggText[fn])
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &AggExpr{Func: fn, Star: true}, nil
			}
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &AggExpr{Func: fn, Arg: arg}, nil
		}
		return nil, fmt.Errorf("sql: unexpected keyword %s at offset %d", t.Text, t.Pos)
	case TokIdent:
		p.next()
		if p.acceptSymbol(".") {
			c := p.next()
			if c.Kind != TokIdent {
				return nil, fmt.Errorf("sql: expected column after %q.", t.Text)
			}
			return &ColumnRef{Table: t.Text, Column: c.Text}, nil
		}
		return &ColumnRef{Column: t.Text}, nil
	case TokSymbol:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.Text == "-" {
			p.next()
			inner, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: OpSub, Left: &Literal{Value: relational.Int(0)}, Right: inner}, nil
		}
	}
	return nil, fmt.Errorf("sql: unexpected token %q at offset %d", t.Text, t.Pos)
}
