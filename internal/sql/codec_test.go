package sql

import (
	"math"
	"testing"

	"repro/internal/relational"
)

func TestValueCodecRoundTrip(t *testing.T) {
	vals := []relational.Value{
		relational.Null(),
		relational.Int(0),
		relational.Int(-1),
		relational.Int(math.MaxInt64),
		relational.Int(math.MinInt64),
		relational.Float(0),
		relational.Float(3.5),
		relational.Float(-1e300),
		relational.Float(math.Inf(1)),
		relational.String_(""),
		relational.String_("dark river"),
		relational.String_("quote ' and \x00 byte"),
		relational.Bool(true),
		relational.Bool(false),
	}
	var buf []byte
	for _, v := range vals {
		buf = AppendValue(buf, v)
	}
	off := 0
	for i, want := range vals {
		got, n, err := DecodeValue(buf[off:])
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		off += n
		if got.Type() != want.Type() || got.Key() != want.Key() {
			t.Errorf("value %d: got %v (%v), want %v (%v)", i, got, got.Type(), want, want.Type())
		}
	}
	if off != len(buf) {
		t.Errorf("decoded %d of %d bytes", off, len(buf))
	}
	// Int(3) and Float(3) must stay distinct types on the wire even though
	// their comparison keys coincide.
	b := AppendValue(nil, relational.Float(3))
	v, _, err := DecodeValue(b)
	if err != nil || v.Type() != relational.TypeFloat {
		t.Errorf("Float(3) round-tripped to %v (%v), err=%v", v, v.Type(), err)
	}
}

func TestRowAndColumnsCodecRoundTrip(t *testing.T) {
	row := relational.Row{
		relational.Int(7), relational.Null(), relational.String_("x"), relational.Float(1.25),
	}
	buf := AppendRow(nil, row)
	got, n, err := DecodeRow(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("DecodeRow: n=%d err=%v", n, err)
	}
	if len(got) != len(row) {
		t.Fatalf("row length %d, want %d", len(got), len(row))
	}
	for i := range row {
		if got[i].Key() != row[i].Key() || got[i].Type() != row[i].Type() {
			t.Errorf("cell %d: got %v, want %v", i, got[i], row[i])
		}
	}

	cols := []string{"movie.title", "c", ""}
	cb := AppendColumns(nil, cols)
	gcols, cn, err := DecodeColumns(cb)
	if err != nil || cn != len(cb) {
		t.Fatalf("DecodeColumns: n=%d err=%v", cn, err)
	}
	for i := range cols {
		if gcols[i] != cols[i] {
			t.Errorf("column %d: got %q, want %q", i, gcols[i], cols[i])
		}
	}
}

// TestCodecMalformed pins the decoder's behavior on truncated or
// corrupted input: a typed error, never a panic or oversized allocation.
func TestCodecMalformed(t *testing.T) {
	cases := [][]byte{
		{},
		{tagInt},           // varint missing
		{tagFloat, 1, 2},   // float truncated
		{tagStr, 0xff, 10}, // string length exceeds payload
		{0x7f},             // unknown tag
	}
	for i, b := range cases {
		if _, _, err := DecodeValue(b); err == nil {
			t.Errorf("case %d: malformed value accepted", i)
		}
	}
	// Row claiming 2^30 cells in a 3-byte payload must be rejected up front.
	rowHdr := []byte{0x80, 0x80, 0x80, 0x80, 0x04}
	if _, _, err := DecodeRow(rowHdr); err == nil {
		t.Error("oversized row cell count accepted")
	}
	if _, _, err := DecodeColumns(rowHdr); err == nil {
		t.Error("oversized column count accepted")
	}
	if _, _, err := DecodeColumnStats([]byte{0x02, 'a'}); err == nil {
		t.Error("truncated stats accepted")
	}
}

func TestColumnStatsCodecRoundTrip(t *testing.T) {
	s := relational.NewSchema()
	if err := s.AddTable(&relational.TableSchema{
		Name: "t",
		Columns: []relational.Column{
			{Name: "id", Type: relational.TypeInt, NotNull: true},
			{Name: "v", Type: relational.TypeInt},
		},
		PrimaryKey: "id",
	}); err != nil {
		t.Fatal(err)
	}
	db := relational.MustNewDatabase("codec", s)
	for i := 0; i < 200; i++ {
		v := relational.Value(relational.Int(int64(i % 7)))
		if i%11 == 0 {
			v = relational.Null()
		}
		if err := db.Insert("t", relational.Row{relational.Int(int64(i)), v}); err != nil {
			t.Fatal(err)
		}
	}
	want, err := db.Table("t").Stats("v")
	if err != nil {
		t.Fatal(err)
	}
	buf := AppendColumnStats(nil, want)
	got, n, err := DecodeColumnStats(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("DecodeColumnStats: n=%d err=%v", n, err)
	}
	if got.Column != want.Column || got.Version != want.Version ||
		got.Rows != want.Rows || got.NullCount != want.NullCount || got.Distinct != want.Distinct {
		t.Errorf("scalar fields diverge: got %+v want %+v", got, want)
	}
	if got.Min.Key() != want.Min.Key() || got.Max.Key() != want.Max.Key() {
		t.Errorf("min/max diverge")
	}
	if len(got.MCVs) != len(want.MCVs) || len(got.Buckets) != len(want.Buckets) {
		t.Fatalf("MCV/bucket counts diverge: %d/%d vs %d/%d",
			len(got.MCVs), len(got.Buckets), len(want.MCVs), len(want.Buckets))
	}
	// Rehydrate must restore the derived MCV total: the estimator's answer
	// for a non-MCV equality must match the original snapshot's exactly.
	if ge, we := got.EstimateEq(relational.Int(5)), want.EstimateEq(relational.Int(5)); ge != we {
		t.Errorf("EstimateEq after decode: got %d, want %d", ge, we)
	}
}
