package sql

import (
	"repro/internal/relational"
)

// This file vectorizes the scan's pushed-predicate filter. Pushed
// conjuncts of simple single-column shapes (column vs literal comparison,
// LIKE/MATCH against a literal, IS [NOT] NULL, IN over a literal list)
// compile at plan time into closures over one column ordinal; execution
// then evaluates them column-wise over blocks of rows with a selection
// vector, instead of walking the expression tree per row. Compilation is
// all-or-nothing per scan: one conjunct outside the compilable shapes and
// the scan keeps the interpreted row-at-a-time loop, so semantics (and
// error behaviour — compiled shapes cannot raise) never fork.
//
// The compiled closures replicate eval's three-valued logic exactly: a
// NULL operand makes a comparison UNKNOWN and an UNKNOWN conjunct rejects
// the row, so every closure returns "is TRUE", never "is not FALSE".

// vecBlock is how many rows a vectorized scan filters per selection-vector
// pass. A satisfied LIMIT still stops mid-block: survivors are emitted in
// order and the stop sentinel propagates immediately.
const vecBlock = 1024

// joinProbeBlock is how many probe-side rows a hash join hashes before
// walking the build map; see the flush closures in plannedQuery.stream.
const joinProbeBlock = 256

// colPred is one compiled pushed conjunct: fn reports whether the conjunct
// is TRUE for a value of column ord.
type colPred struct {
	ord int
	fn  func(relational.Value) bool
}

// compileVecPreds compiles every pushed conjunct of a scan, or reports
// failure when any conjunct falls outside the vectorizable shapes.
func compileVecPreds(local *relation, preds []Expr) ([]colPred, bool) {
	out := make([]colPred, 0, len(preds))
	for _, c := range preds {
		p, ok := compileVecPred(local, c)
		if !ok {
			return nil, false
		}
		out = append(out, p)
	}
	return out, true
}

func compileVecPred(local *relation, c Expr) (colPred, bool) {
	switch x := c.(type) {
	case *IsNullExpr:
		cr, ok := x.Inner.(*ColumnRef)
		if !ok {
			return colPred{}, false
		}
		ord, err := local.resolve(cr)
		if err != nil {
			return colPred{}, false
		}
		negate := x.Negate
		return colPred{ord: ord, fn: func(v relational.Value) bool {
			return v.IsNull() != negate
		}}, true
	case *InExpr:
		cr, ok := x.Inner.(*ColumnRef)
		if !ok {
			return colPred{}, false
		}
		ord, err := local.resolve(cr)
		if err != nil {
			return colPred{}, false
		}
		// Only literal lists compile. NULL list items can turn FALSE into
		// UNKNOWN, but both reject, so they drop out of the compiled form.
		lits := make([]relational.Value, 0, len(x.List))
		for _, item := range x.List {
			l, isLit := item.(*Literal)
			if !isLit {
				return colPred{}, false
			}
			if l.Value.IsNull() {
				continue
			}
			lits = append(lits, l.Value)
		}
		return colPred{ord: ord, fn: func(v relational.Value) bool {
			if v.IsNull() {
				return false
			}
			for _, lit := range lits {
				if relational.Equal(v, lit) {
					return true
				}
			}
			return false
		}}, true
	case *BinaryExpr:
		return compileVecBinary(local, x)
	}
	return colPred{}, false
}

// compileVecBinary compiles `col op literal` (either operand order) for
// the comparison operators plus LIKE and MATCH.
func compileVecBinary(local *relation, x *BinaryExpr) (colPred, bool) {
	cr, colLeft := x.Left.(*ColumnRef)
	lit, litRight := x.Right.(*Literal)
	if !colLeft || !litRight {
		cr2, colRight := x.Right.(*ColumnRef)
		lit2, litLeft := x.Left.(*Literal)
		if !colRight || !litLeft {
			return colPred{}, false
		}
		cr, lit = cr2, lit2
		colLeft = false
	}
	ord, err := local.resolve(cr)
	if err != nil {
		return colPred{}, false
	}
	litv := lit.Value
	if litv.IsNull() {
		// NULL operand: the comparison is UNKNOWN for every row, LIKE and
		// MATCH likewise — nothing passes.
		switch x.Op {
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpLike, OpMatch:
			return colPred{ord: ord, fn: func(relational.Value) bool { return false }}, true
		}
		return colPred{}, false
	}
	op := x.Op
	if !colLeft {
		// Normalize `lit op col` to `col op' lit`: Eq/Ne are symmetric,
		// order comparisons flip direction.
		switch op {
		case OpLt:
			op = OpGt
		case OpLe:
			op = OpGe
		case OpGt:
			op = OpLt
		case OpGe:
			op = OpLe
		case OpEq, OpNe:
		default:
			// LIKE/MATCH are not symmetric; compile only the column-left
			// orientation below.
			return colPred{}, false
		}
	}
	switch op {
	case OpEq:
		return colPred{ord: ord, fn: func(v relational.Value) bool {
			return !v.IsNull() && relational.Compare(v, litv) == 0
		}}, true
	case OpNe:
		return colPred{ord: ord, fn: func(v relational.Value) bool {
			return !v.IsNull() && relational.Compare(v, litv) != 0
		}}, true
	case OpLt:
		return colPred{ord: ord, fn: func(v relational.Value) bool {
			return !v.IsNull() && relational.Compare(v, litv) < 0
		}}, true
	case OpLe:
		return colPred{ord: ord, fn: func(v relational.Value) bool {
			return !v.IsNull() && relational.Compare(v, litv) <= 0
		}}, true
	case OpGt:
		return colPred{ord: ord, fn: func(v relational.Value) bool {
			return !v.IsNull() && relational.Compare(v, litv) > 0
		}}, true
	case OpGe:
		return colPred{ord: ord, fn: func(v relational.Value) bool {
			return !v.IsNull() && relational.Compare(v, litv) >= 0
		}}, true
	case OpLike:
		pat := litv.AsString()
		return colPred{ord: ord, fn: func(v relational.Value) bool {
			return !v.IsNull() && likeMatch(v.AsString(), pat)
		}}, true
	case OpMatch:
		// Fold the query tokens once at compile time; MatchText re-folds
		// them per row.
		qt := FoldTokens(litv.AsString())
		if len(qt) == 0 {
			return colPred{ord: ord, fn: func(relational.Value) bool { return false }}, true
		}
		return colPred{ord: ord, fn: func(v relational.Value) bool {
			if v.IsNull() {
				return false
			}
			set := make(map[string]bool)
			for _, t := range FoldTokens(v.AsString()) {
				set[t] = true
			}
			for _, q := range qt {
				if !set[q] {
					return false
				}
			}
			return true
		}}, true
	}
	return colPred{}, false
}

// compileVec compiles the vectorized filter of every scan in the plan.
// Called once at the end of planning; the compiled closures are stateless,
// so the shared plan stays safe for concurrent executions.
func (p *plannedQuery) compileVec() {
	nodes := []*scanNode{p.base}
	for _, st := range p.steps {
		nodes = append(nodes, st.right)
	}
	for _, n := range nodes {
		if preds, ok := compileVecPreds(&relation{cols: n.cols}, n.pushed); ok {
			n.vec, n.vecOK = preds, true
		}
	}
}

// streamScanVec is streamScan's vectorized body: rows are filtered in
// blocks, each compiled conjunct sweeping the survivors of the previous
// one through a selection vector, and survivors are emitted in row order.
func (p *plannedQuery) streamScanVec(idx int, n *scanNode, t *relational.Table, rc *runCounts, emit func(relational.Row) error) error {
	sel := make([]int, 0, vecBlock)
	process := func(rows []relational.Row) error {
		sel = sel[:0]
		if len(n.vec) == 0 {
			for i := range rows {
				sel = append(sel, i)
			}
		} else {
			first := n.vec[0]
			for i, row := range rows {
				if first.fn(row[first.ord]) {
					sel = append(sel, i)
				}
			}
			for _, pr := range n.vec[1:] {
				kept := sel[:0]
				for _, i := range sel {
					if pr.fn(rows[i][pr.ord]) {
						kept = append(kept, i)
					}
				}
				sel = kept
			}
		}
		for _, i := range sel {
			if rc != nil {
				rc.scans[idx]++
			}
			if err := emit(rows[i]); err != nil {
				return err
			}
		}
		return nil
	}
	if n.access != AccessFullScan {
		block := make([]relational.Row, 0, min(vecBlock, len(n.ords)))
		for _, o := range n.ords {
			block = append(block, t.Row(o))
			if len(block) == vecBlock {
				if err := process(block); err != nil {
					return err
				}
				block = block[:0]
			}
		}
		return process(block)
	}
	rows := t.Rows()
	for len(rows) > 0 {
		end := min(vecBlock, len(rows))
		if err := process(rows[:end]); err != nil {
			return err
		}
		rows = rows[end:]
	}
	return nil
}
