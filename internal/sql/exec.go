package sql

import (
	"encoding/binary"
	"fmt"
	"hash/maphash"
	"math"
	"sort"
	"strings"

	"repro/internal/relational"
)

// Result is a materialized query result. Plan records the execution plan
// the planner chose (access paths, join strategies, predicate placement)
// annotated with the cardinalities this execution actually observed next
// to the planner's estimates; it is nil for results produced by
// ExecuteFullScan.
type Result struct {
	Columns []string
	Rows    []relational.Row
	Plan    *QueryPlan
}

// String renders the result as an aligned text table (CLI output).
func (r *Result) String() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range r.Columns {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteString("\n")
	for i, w := range widths {
		if i > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteString("\n")
	for _, row := range cells {
		for i, s := range row {
			if i > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], s)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// boundCol identifies one column of the working relation by its binding
// (table alias) and column name, both lower-cased.
type boundCol struct {
	binding string
	name    string
	display string
}

// relation is the executor's working set: bound columns plus rows.
type relation struct {
	cols []boundCol
	rows []relational.Row
}

func (r *relation) resolve(ref *ColumnRef) (int, error) {
	tbl := strings.ToLower(ref.Table)
	col := strings.ToLower(ref.Column)
	found := -1
	for i, c := range r.cols {
		if c.name != col {
			continue
		}
		if tbl != "" && c.binding != tbl {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sql: ambiguous column reference %s", ref.SQL())
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("sql: unknown column %s", ref.SQL())
	}
	return found, nil
}

// Execute runs a parsed SELECT against the database and materializes the
// result. It is the single entry point the wrapper module uses. The FROM/
// WHERE part runs through the cost-aware planner (secondary-index access,
// predicate pushdown, build-side selection); projection, aggregation,
// ordering and limits run over the planned relation.
func Execute(db *relational.Database, stmt *SelectStmt) (*Result, error) {
	p, err := planSelect(db, stmt)
	if err != nil {
		return nil, err
	}
	limit := -1
	if stmt.Limit >= 0 && len(stmt.OrderBy) == 0 && len(stmt.GroupBy) == 0 && !anyAgg(stmt) &&
		(!stmt.Distinct || (stmt.Limit <= 1 && stmt.Offset == 0)) {
		// Nothing downstream reorders or merges rows, so the pipeline can
		// stop as soon as OFFSET+LIMIT rows survive. DISTINCT normally
		// needs every row, but its first output row is always the first
		// input row, so LIMIT 1 OFFSET 0 still short-circuits — the shape
		// of every endpoint existence probe (wrapper.ExecuteExists).
		limit = stmt.Offset + stmt.Limit
	}
	rc := p.newRunCounts()
	rel, stopped, err := p.materialize(db, rc, limit)
	if err != nil {
		return nil, err
	}
	if stopped {
		counters.limitShort.Add(1)
	}
	res, err := finish(rel, stmt)
	if err != nil {
		return nil, err
	}
	res.Plan = p.describeActual(rc)
	return res, nil
}

// ExecuteFullScan runs the statement through the pre-planner interpreter:
// full scans, WHERE evaluated per joined row, build-right hash joins. It
// is retained as the reference implementation — the planner/interpreter
// equivalence suite and the benchmarks compare against it.
func ExecuteFullScan(db *relational.Database, stmt *SelectStmt) (*Result, error) {
	rel, err := buildFrom(db, stmt)
	if err != nil {
		return nil, err
	}
	if stmt.Where != nil {
		rel, err = filter(rel, stmt.Where)
		if err != nil {
			return nil, err
		}
	}
	return finish(rel, stmt)
}

// anyAgg reports whether any projection item aggregates.
func anyAgg(stmt *SelectStmt) bool {
	for _, it := range stmt.Items {
		if !it.Star && containsAgg(it.Expr) {
			return true
		}
	}
	return false
}

// finish applies projection, aggregation, DISTINCT, ordering and limits to
// the joined-and-filtered working relation.
func finish(rel *relation, stmt *SelectStmt) (*Result, error) {
	hasAgg := len(stmt.GroupBy) > 0 || anyAgg(stmt)

	type outRow struct {
		proj relational.Row
		keys []relational.Value // order-by keys
	}
	var out []outRow
	var columns []string

	if hasAgg {
		groups, err := groupRows(rel, stmt.GroupBy)
		if err != nil {
			return nil, err
		}
		columns = projectionColumns(rel, stmt)
		for _, g := range groups {
			if stmt.Having != nil {
				hv, err := evalAggregate(rel, g, stmt.Having)
				if err != nil {
					return nil, err
				}
				if !hv.AsBool() {
					continue
				}
			}
			proj, err := projectGroup(rel, g, stmt)
			if err != nil {
				return nil, err
			}
			keys, err := orderKeysGroup(rel, g, stmt, columns, proj)
			if err != nil {
				return nil, err
			}
			out = append(out, outRow{proj: proj, keys: keys})
		}
	} else {
		columns = projectionColumns(rel, stmt)
		for _, row := range rel.rows {
			proj, err := projectRow(rel, row, stmt)
			if err != nil {
				return nil, err
			}
			keys, err := orderKeysRow(rel, row, stmt, columns, proj)
			if err != nil {
				return nil, err
			}
			out = append(out, outRow{proj: proj, keys: keys})
		}
	}

	if stmt.Distinct {
		// Hash-keyed dedup: bucket by uint64 hash, verify with value
		// comparison on collision.
		seen := make(map[uint64][]relational.Row, len(out))
		dedup := out[:0]
		for _, o := range out {
			k := hashValues(o.proj)
			dup := false
			for _, prev := range seen[k] {
				if valuesEqual(prev, o.proj) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			seen[k] = append(seen[k], o.proj)
			dedup = append(dedup, o)
		}
		out = dedup
	}

	if len(stmt.OrderBy) > 0 {
		sort.SliceStable(out, func(i, j int) bool {
			for k, ob := range stmt.OrderBy {
				c := relational.Compare(out[i].keys[k], out[j].keys[k])
				if c == 0 {
					continue
				}
				if ob.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}

	if stmt.Offset > 0 {
		if stmt.Offset >= len(out) {
			out = nil
		} else {
			out = out[stmt.Offset:]
		}
	}
	if stmt.Limit >= 0 && stmt.Limit < len(out) {
		out = out[:stmt.Limit]
	}

	res := &Result{Columns: columns, Rows: make([]relational.Row, len(out))}
	for i, o := range out {
		res.Rows[i] = o.proj
	}
	return res, nil
}

// Run parses and executes src in one step.
func Run(db *relational.Database, src string) (*Result, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Execute(db, stmt)
}

// keySeed is the process-wide seed for the executor's hash keys (join
// build sides, GROUP BY buckets, DISTINCT sets). A single seed keeps hashes
// comparable across relations within one process.
var keySeed = maphash.MakeSeed()

// hashValue folds one value into h using an encoding aligned with
// Value.Key() equality: integral floats hash like ints (3 joins 3.0),
// NULLs collapse to one tag, and a type tag keeps 1, "1" and true distinct.
func hashValue(h *maphash.Hash, v relational.Value) {
	var buf [9]byte
	switch v.Type() {
	case relational.TypeNull:
		h.WriteByte(0)
	case relational.TypeInt:
		buf[0] = 'i'
		binary.LittleEndian.PutUint64(buf[1:], uint64(v.AsInt()))
		h.Write(buf[:])
	case relational.TypeFloat:
		f := v.AsFloat()
		if f == float64(int64(f)) {
			buf[0] = 'i'
			binary.LittleEndian.PutUint64(buf[1:], uint64(int64(f)))
		} else {
			buf[0] = 'f'
			binary.LittleEndian.PutUint64(buf[1:], math.Float64bits(f))
		}
		h.Write(buf[:])
	case relational.TypeString:
		h.WriteByte('s')
		h.WriteString(v.AsString())
	case relational.TypeBool:
		if v.AsBool() {
			h.WriteByte(2)
		} else {
			h.WriteByte(3)
		}
	}
	h.WriteByte(0x1f)
}

// hashValues returns the combined hash of a value sequence.
func hashValues(vs []relational.Value) uint64 {
	var h maphash.Hash
	h.SetSeed(keySeed)
	for _, v := range vs {
		hashValue(&h, v)
	}
	return h.Sum64()
}

// valuesEqual reports key equality of two value sequences under the same
// semantics the old string keys encoded: NULLs compare equal to each other
// (GROUP BY / DISTINCT semantics) and numerics compare by magnitude. It is
// the collision fallback behind every uint64 hash key.
func valuesEqual(a, b []relational.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if relational.Compare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

func buildFrom(db *relational.Database, stmt *SelectStmt) (*relation, error) {
	rel, err := baseRelation(db, stmt.From)
	if err != nil {
		return nil, err
	}
	for _, j := range stmt.Joins {
		right, err := baseRelation(db, j.Table)
		if err != nil {
			return nil, err
		}
		rel, err = join(rel, right, j)
		if err != nil {
			return nil, err
		}
	}
	return rel, nil
}

func baseRelation(db *relational.Database, tr TableRef) (*relation, error) {
	t := db.Table(tr.Table)
	if t == nil {
		return nil, fmt.Errorf("sql: unknown table %s", tr.Table)
	}
	binding := strings.ToLower(tr.Binding())
	rel := &relation{}
	for _, c := range t.Schema.Columns {
		rel.cols = append(rel.cols, boundCol{
			binding: binding,
			name:    strings.ToLower(c.Name),
			display: tr.Binding() + "." + c.Name,
		})
	}
	rel.rows = t.Rows()
	return rel, nil
}

// equiJoinKeys inspects an ON expression for `left.col = right.col`
// conjuncts usable by a hash join; remaining conjuncts become a residual
// filter.
func equiJoinKeys(left, right *relation, on Expr) (lk, rk []int, residual []Expr) {
	conjuncts := splitAnd(on)
	for _, c := range conjuncts {
		be, ok := c.(*BinaryExpr)
		if !ok || be.Op != OpEq {
			residual = append(residual, c)
			continue
		}
		lref, lok := be.Left.(*ColumnRef)
		rref, rok := be.Right.(*ColumnRef)
		if !lok || !rok {
			residual = append(residual, c)
			continue
		}
		li, lerr := left.resolve(lref)
		ri, rerr := right.resolve(rref)
		if lerr == nil && rerr == nil {
			lk = append(lk, li)
			rk = append(rk, ri)
			continue
		}
		// Maybe written right-to-left.
		li2, lerr2 := left.resolve(rref)
		ri2, rerr2 := right.resolve(lref)
		if lerr2 == nil && rerr2 == nil {
			lk = append(lk, li2)
			rk = append(rk, ri2)
			continue
		}
		residual = append(residual, c)
	}
	return lk, rk, residual
}

func splitAnd(e Expr) []Expr {
	if be, ok := e.(*BinaryExpr); ok && be.Op == OpAnd {
		return append(splitAnd(be.Left), splitAnd(be.Right)...)
	}
	return []Expr{e}
}

func join(left, right *relation, jc JoinClause) (*relation, error) {
	out := &relation{cols: append(append([]boundCol{}, left.cols...), right.cols...)}
	lk, rk, residual := equiJoinKeys(left, right, jc.On)

	evalResidual := func(row relational.Row) (bool, error) {
		for _, r := range residual {
			v, err := eval(out, row, r)
			if err != nil {
				return false, err
			}
			if !v.AsBool() {
				return false, nil
			}
		}
		return true, nil
	}

	appendJoined := func(lrow, rrow relational.Row) {
		row := make(relational.Row, 0, len(lrow)+len(rrow))
		row = append(row, lrow...)
		row = append(row, rrow...)
		out.rows = append(out.rows, row)
	}

	if len(lk) > 0 {
		// Hash join: build on the right side with uint64 keys; equality of
		// the key columns is re-verified per candidate, so hash collisions
		// cannot produce spurious matches.
		build := make(map[uint64][]int, len(right.rows))
		for i, rrow := range right.rows {
			k, null := joinKey(rrow, rk)
			if null {
				continue
			}
			build[k] = append(build[k], i)
		}
		for _, lrow := range left.rows {
			k, null := joinKey(lrow, lk)
			matched := false
			if !null {
				for _, ri := range build[k] {
					if !joinKeysEqual(lrow, lk, right.rows[ri], rk) {
						continue
					}
					cand := make(relational.Row, 0, len(lrow)+len(right.rows[ri]))
					cand = append(cand, lrow...)
					cand = append(cand, right.rows[ri]...)
					ok, err := evalResidual(cand)
					if err != nil {
						return nil, err
					}
					if ok {
						out.rows = append(out.rows, cand)
						matched = true
					}
				}
			}
			if jc.Left && !matched {
				appendJoined(lrow, nullRow(len(right.cols)))
			}
		}
		return out, nil
	}

	// Nested loop with full ON evaluation.
	for _, lrow := range left.rows {
		matched := false
		for _, rrow := range right.rows {
			cand := make(relational.Row, 0, len(lrow)+len(rrow))
			cand = append(cand, lrow...)
			cand = append(cand, rrow...)
			v, err := eval(out, cand, jc.On)
			if err != nil {
				return nil, err
			}
			if v.AsBool() {
				out.rows = append(out.rows, cand)
				matched = true
			}
		}
		if jc.Left && !matched {
			appendJoined(lrow, nullRow(len(right.cols)))
		}
	}
	return out, nil
}

// joinKey hashes the join-key columns of a row; the bool reports a NULL key
// (NULL never joins).
func joinKey(row relational.Row, ords []int) (uint64, bool) {
	var h maphash.Hash
	h.SetSeed(keySeed)
	for _, o := range ords {
		if row[o].IsNull() {
			return 0, true
		}
		hashValue(&h, row[o])
	}
	return h.Sum64(), false
}

// joinKeysEqual verifies that the key columns of a probe row and a build row
// really are equal (collision fallback for the uint64 join keys).
func joinKeysEqual(lrow relational.Row, lk []int, rrow relational.Row, rk []int) bool {
	for i := range lk {
		if relational.Compare(lrow[lk[i]], rrow[rk[i]]) != 0 {
			return false
		}
	}
	return true
}

func nullRow(n int) relational.Row {
	r := make(relational.Row, n)
	return r
}

func filter(rel *relation, where Expr) (*relation, error) {
	out := &relation{cols: rel.cols}
	for _, row := range rel.rows {
		v, err := eval(rel, row, where)
		if err != nil {
			return nil, err
		}
		if v.AsBool() {
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

func containsAgg(e Expr) bool {
	switch x := e.(type) {
	case *AggExpr:
		return true
	case *BinaryExpr:
		return containsAgg(x.Left) || containsAgg(x.Right)
	case *NotExpr:
		return containsAgg(x.Inner)
	case *IsNullExpr:
		return containsAgg(x.Inner)
	case *InExpr:
		if containsAgg(x.Inner) {
			return true
		}
		for _, i := range x.List {
			if containsAgg(i) {
				return true
			}
		}
	}
	return false
}

type group struct {
	rows []relational.Row
}

func groupRows(rel *relation, by []Expr) ([]*group, error) {
	if len(by) == 0 {
		// Single global group (possibly empty, which still yields one group
		// so COUNT(*) over an empty input returns 0).
		return []*group{{rows: rel.rows}}, nil
	}
	// Hash-keyed grouping: buckets hold the evaluated key values alongside
	// the group, so a collision degrades to a short equality scan instead of
	// a wrong merge. First-appearance order is preserved.
	type slot struct {
		keys []relational.Value
		g    *group
	}
	idx := make(map[uint64][]*slot)
	var order []*group
	keyVals := make([]relational.Value, len(by))
	for _, row := range rel.rows {
		for i, e := range by {
			v, err := eval(rel, row, e)
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
		}
		k := hashValues(keyVals)
		var g *group
		for _, s := range idx[k] {
			if valuesEqual(s.keys, keyVals) {
				g = s.g
				break
			}
		}
		if g == nil {
			g = &group{}
			idx[k] = append(idx[k], &slot{keys: append([]relational.Value(nil), keyVals...), g: g})
			order = append(order, g)
		}
		g.rows = append(g.rows, row)
	}
	return order, nil
}

// ItemColumnName renders a non-star projection item's output column name
// — explicit alias, a column reference's written form, or the positional
// "colN" fallback. Exported so distributed coordinators (internal/shard's
// aggregate merge) name their synthesized results with exactly the
// reference interpreter's rule instead of a drifting copy.
func ItemColumnName(it SelectItem, i int) string {
	if it.Alias != "" {
		return it.Alias
	}
	if cr, ok := it.Expr.(*ColumnRef); ok {
		return cr.SQL()
	}
	return fmt.Sprintf("col%d", i+1)
}

func projectionColumns(rel *relation, stmt *SelectStmt) []string {
	var out []string
	for i, it := range stmt.Items {
		if it.Star {
			for _, c := range rel.cols {
				out = append(out, c.display)
			}
			continue
		}
		out = append(out, ItemColumnName(it, i))
	}
	return out
}

func projectRow(rel *relation, row relational.Row, stmt *SelectStmt) (relational.Row, error) {
	var out relational.Row
	for _, it := range stmt.Items {
		if it.Star {
			out = append(out, row...)
			continue
		}
		v, err := eval(rel, row, it.Expr)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func projectGroup(rel *relation, g *group, stmt *SelectStmt) (relational.Row, error) {
	var out relational.Row
	for _, it := range stmt.Items {
		if it.Star {
			return nil, fmt.Errorf("sql: SELECT * is not valid with aggregation")
		}
		v, err := evalAggregate(rel, g, it.Expr)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func orderKeysRow(rel *relation, row relational.Row, stmt *SelectStmt, columns []string, proj relational.Row) ([]relational.Value, error) {
	keys := make([]relational.Value, len(stmt.OrderBy))
	for i, ob := range stmt.OrderBy {
		v, err := eval(rel, row, ob.Expr)
		if err != nil {
			// Fall back to output aliases.
			av, aerr := aliasValue(columns, proj, ob.Expr)
			if aerr != nil {
				return nil, err
			}
			v = av
		}
		keys[i] = v
	}
	return keys, nil
}

func orderKeysGroup(rel *relation, g *group, stmt *SelectStmt, columns []string, proj relational.Row) ([]relational.Value, error) {
	keys := make([]relational.Value, len(stmt.OrderBy))
	for i, ob := range stmt.OrderBy {
		v, err := evalAggregate(rel, g, ob.Expr)
		if err != nil {
			av, aerr := aliasValue(columns, proj, ob.Expr)
			if aerr != nil {
				return nil, err
			}
			v = av
		}
		keys[i] = v
	}
	return keys, nil
}

func aliasValue(columns []string, proj relational.Row, e Expr) (relational.Value, error) {
	cr, ok := e.(*ColumnRef)
	if !ok || cr.Table != "" {
		return relational.Null(), fmt.Errorf("sql: cannot order by %s", e.SQL())
	}
	for i, c := range columns {
		if strings.EqualFold(c, cr.Column) {
			return proj[i], nil
		}
	}
	return relational.Null(), fmt.Errorf("sql: unknown order key %s", cr.Column)
}
