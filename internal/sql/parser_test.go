package sql

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("SELECT a, b FROM t WHERE x = 'it''s' AND y >= 2.5;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
		texts = append(texts, tk.Text)
	}
	wantTexts := []string{"SELECT", "a", ",", "b", "FROM", "t", "WHERE", "x", "=", "it's", "AND", "y", ">=", "2.5", ";", ""}
	if len(texts) != len(wantTexts) {
		t.Fatalf("got %d tokens %v, want %d", len(texts), texts, len(wantTexts))
	}
	for i := range wantTexts {
		if texts[i] != wantTexts[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], wantTexts[i])
		}
	}
	if kinds[0] != TokKeyword || kinds[1] != TokIdent || kinds[9] != TokString || kinds[13] != TokNumber {
		t.Errorf("unexpected kinds: %v", kinds)
	}
}

func TestTokenizeErrors(t *testing.T) {
	if _, err := Tokenize("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string must fail")
	}
	if _, err := Tokenize("SELECT @"); err == nil {
		t.Error("unexpected character must fail")
	}
}

func TestTokenKindString(t *testing.T) {
	for k, want := range map[TokenKind]string{
		TokEOF: "EOF", TokIdent: "ident", TokKeyword: "keyword",
		TokNumber: "number", TokString: "string", TokSymbol: "symbol",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestParseSimpleSelect(t *testing.T) {
	stmt, err := Parse("SELECT title FROM movie WHERE year = 1994")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Items) != 1 || stmt.Items[0].Star {
		t.Fatalf("items = %+v", stmt.Items)
	}
	cr, ok := stmt.Items[0].Expr.(*ColumnRef)
	if !ok || cr.Column != "title" {
		t.Fatalf("item 0 = %+v", stmt.Items[0].Expr)
	}
	if stmt.From.Table != "movie" {
		t.Fatalf("from = %+v", stmt.From)
	}
	be, ok := stmt.Where.(*BinaryExpr)
	if !ok || be.Op != OpEq {
		t.Fatalf("where = %+v", stmt.Where)
	}
}

func TestParseJoinChain(t *testing.T) {
	stmt, err := Parse(`SELECT p.name, m.title FROM person p
		JOIN cast_info c ON c.person_id = p.person_id
		JOIN movie m ON m.movie_id = c.movie_id
		WHERE m.genre MATCH 'drama' ORDER BY m.title DESC LIMIT 5 OFFSET 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Joins) != 2 {
		t.Fatalf("joins = %d, want 2", len(stmt.Joins))
	}
	if stmt.From.Alias != "p" || stmt.Joins[0].Table.Alias != "c" {
		t.Fatalf("aliases not parsed: %+v", stmt)
	}
	if stmt.Limit != 5 || stmt.Offset != 2 {
		t.Fatalf("limit/offset = %d/%d", stmt.Limit, stmt.Offset)
	}
	if len(stmt.OrderBy) != 1 || !stmt.OrderBy[0].Desc {
		t.Fatalf("orderby = %+v", stmt.OrderBy)
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	// Must parse as a=1 OR (b=2 AND c=3).
	or, ok := stmt.Where.(*BinaryExpr)
	if !ok || or.Op != OpOr {
		t.Fatalf("top op = %+v, want OR", stmt.Where)
	}
	and, ok := or.Right.(*BinaryExpr)
	if !ok || and.Op != OpAnd {
		t.Fatalf("right = %+v, want AND", or.Right)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	stmt, err := Parse("SELECT a + b * c FROM t")
	if err != nil {
		t.Fatal(err)
	}
	add, ok := stmt.Items[0].Expr.(*BinaryExpr)
	if !ok || add.Op != OpAdd {
		t.Fatalf("top = %+v, want +", stmt.Items[0].Expr)
	}
	if mul, ok := add.Right.(*BinaryExpr); !ok || mul.Op != OpMul {
		t.Fatalf("right = %+v, want *", add.Right)
	}
}

func TestParseConstructs(t *testing.T) {
	good := []string{
		"SELECT * FROM t",
		"SELECT DISTINCT a FROM t",
		"SELECT a AS x FROM t",
		"SELECT a x FROM t",
		"SELECT COUNT(*) FROM t",
		"SELECT COUNT(a), SUM(b), MIN(c), MAX(d), AVG(e) FROM t GROUP BY f",
		"SELECT a FROM t WHERE b IS NULL",
		"SELECT a FROM t WHERE b IS NOT NULL",
		"SELECT a FROM t WHERE b IN (1, 2, 3)",
		"SELECT a FROM t WHERE b NOT IN (1, 2)",
		"SELECT a FROM t WHERE b BETWEEN 1 AND 10",
		"SELECT a FROM t WHERE b LIKE '%x%'",
		"SELECT a FROM t WHERE b MATCH 'kw'",
		"SELECT a FROM t WHERE NOT (b = 1)",
		"SELECT a FROM t LEFT JOIN u ON t.id = u.id",
		"SELECT a FROM t INNER JOIN u ON t.id = u.id",
		"SELECT a FROM t WHERE -b < 3",
		"SELECT a FROM t GROUP BY a HAVING COUNT(*) > 2",
		"SELECT a FROM t WHERE b = TRUE OR c = FALSE OR d IS NULL",
		"SELECT a FROM t;",
	}
	for _, src := range good {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q) failed: %v", src, err)
		}
	}
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t JOIN u",           // missing ON
		"SELECT * FROM t LIMIT x",          // non-numeric limit
		"SELECT SUM(*) FROM t",             // * only for COUNT
		"SELECT * FROM t WHERE a IN ()",    // empty IN list
		"SELECT * FROM t trailing garbage", // alias then garbage
		"UPDATE t SET a = 1",               // unsupported verb
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestSQLRoundTripFixpoint(t *testing.T) {
	// Parse → SQL() → Parse → SQL() must be a fixpoint.
	sources := []string{
		"SELECT a, b AS x FROM t u JOIN v ON v.id = u.id WHERE (a = 1 AND b LIKE 'x%') ORDER BY a LIMIT 3",
		"SELECT DISTINCT t.a FROM t WHERE t.b MATCH 'kw one' OR t.c IN (1, 2)",
		"SELECT COUNT(*), MAX(y) FROM t GROUP BY z HAVING COUNT(*) > 1",
		"SELECT * FROM t WHERE a BETWEEN 1 AND 5",
		"SELECT a FROM t WHERE b IS NOT NULL OFFSET 4",
	}
	for _, src := range sources {
		s1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		text1 := s1.SQL()
		s2, err := Parse(text1)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v\n(from %q)", text1, err, src)
		}
		text2 := s2.SQL()
		if text1 != text2 {
			t.Errorf("not a fixpoint:\n%s\n%s", text1, text2)
		}
	}
}

func TestFoldTokens(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"the-dark_night 2008", []string{"the", "dark", "night", "2008"}},
		{"", nil},
		{"...", nil},
		{"L'étranger", []string{"l", "étranger"}},
	}
	for _, tt := range tests {
		got := FoldTokens(tt.in)
		if len(got) != len(tt.want) {
			t.Errorf("FoldTokens(%q) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("FoldTokens(%q)[%d] = %q, want %q", tt.in, i, got[i], tt.want[i])
			}
		}
	}
}

func TestFoldTokensIdempotentOnJoin(t *testing.T) {
	f := func(s string) bool {
		once := FoldTokens(s)
		twice := FoldTokens(strings.Join(once, " "))
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
