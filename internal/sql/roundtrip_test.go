package sql

import (
	"math/rand"
	"testing"

	"repro/internal/relational"
)

// randExpr generates a random boolean-ish expression over columns a, b, c
// of table t, with bounded depth.
func randExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return &ColumnRef{Table: "t", Column: "a"}
		case 1:
			return &ColumnRef{Column: "b"}
		case 2:
			return &Literal{Value: relational.Int(int64(r.Intn(100)))}
		default:
			return &Literal{Value: relational.String_("s" + string(rune('a'+r.Intn(26))))}
		}
	}
	switch r.Intn(8) {
	case 0:
		return &BinaryExpr{Op: OpAnd, Left: randExpr(r, depth-1), Right: randExpr(r, depth-1)}
	case 1:
		return &BinaryExpr{Op: OpOr, Left: randExpr(r, depth-1), Right: randExpr(r, depth-1)}
	case 2:
		ops := []BinaryOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		return &BinaryExpr{Op: ops[r.Intn(len(ops))], Left: randExpr(r, 0), Right: randExpr(r, 0)}
	case 3:
		return &NotExpr{Inner: randExpr(r, depth-1)}
	case 4:
		return &IsNullExpr{Inner: randExpr(r, 0), Negate: r.Intn(2) == 0}
	case 5:
		n := 1 + r.Intn(3)
		list := make([]Expr, n)
		for i := range list {
			list[i] = &Literal{Value: relational.Int(int64(r.Intn(10)))}
		}
		return &InExpr{Inner: randExpr(r, 0), List: list}
	case 6:
		op := OpLike
		if r.Intn(2) == 0 {
			op = OpMatch
		}
		return &BinaryExpr{Op: op, Left: &ColumnRef{Column: "c"},
			Right: &Literal{Value: relational.String_("%pat%")}}
	default:
		ops := []BinaryOp{OpAdd, OpSub, OpMul, OpDiv}
		return &BinaryExpr{Op: ops[r.Intn(len(ops))], Left: randExpr(r, 0), Right: randExpr(r, 0)}
	}
}

// randStmt generates a random SELECT over a two-table join.
func randStmt(r *rand.Rand) *SelectStmt {
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = r.Intn(2) == 0
	nItems := 1 + r.Intn(3)
	for i := 0; i < nItems; i++ {
		item := SelectItem{Expr: randExpr(r, 1)}
		if r.Intn(3) == 0 {
			item.Alias = "x" + string(rune('a'+i))
		}
		stmt.Items = append(stmt.Items, item)
	}
	stmt.From = TableRef{Table: "t"}
	if r.Intn(2) == 0 {
		stmt.From.Alias = "t1"
	}
	if r.Intn(2) == 0 {
		stmt.Joins = append(stmt.Joins, JoinClause{
			Left:  r.Intn(3) == 0,
			Table: TableRef{Table: "u"},
			On: &BinaryExpr{Op: OpEq,
				Left:  &ColumnRef{Table: "u", Column: "id"},
				Right: &ColumnRef{Table: "t", Column: "a"}},
		})
	}
	if r.Intn(2) == 0 {
		stmt.Where = randExpr(r, 2)
	}
	if r.Intn(3) == 0 {
		stmt.OrderBy = append(stmt.OrderBy, OrderItem{
			Expr: &ColumnRef{Column: "b"}, Desc: r.Intn(2) == 0})
	}
	if r.Intn(3) == 0 {
		stmt.Limit = r.Intn(50)
	}
	if r.Intn(4) == 0 {
		stmt.Offset = r.Intn(10)
	}
	return stmt
}

// TestRandomASTPrintParseFixpoint: for random ASTs, SQL() must parse, and
// the reparsed statement must print identically (print∘parse is a fixpoint
// on printer output).
func TestRandomASTPrintParseFixpoint(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 300; trial++ {
		stmt := randStmt(r)
		text := stmt.SQL()
		reparsed, err := Parse(text)
		if err != nil {
			t.Fatalf("trial %d: generated SQL does not parse: %v\n%s", trial, err, text)
		}
		text2 := reparsed.SQL()
		if text != text2 {
			t.Fatalf("trial %d: print/parse not a fixpoint:\n%s\n%s", trial, text, text2)
		}
	}
}

// TestRandomWherePredicatesExecute: random predicates over a real table
// must either evaluate on every row or fail to resolve a column — never
// panic, never corrupt results.
func TestRandomWherePredicatesExecute(t *testing.T) {
	s := relational.NewSchema()
	if err := s.AddTable(&relational.TableSchema{
		Name: "t",
		Columns: []relational.Column{
			{Name: "a", Type: relational.TypeInt},
			{Name: "b", Type: relational.TypeInt},
			{Name: "c", Type: relational.TypeString},
		},
	}); err != nil {
		t.Fatal(err)
	}
	db := relational.MustNewDatabase("rt", s)
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 40; i++ {
		var cv relational.Value
		if r.Intn(5) > 0 {
			cv = relational.String_("pat " + string(rune('a'+r.Intn(4))))
		}
		db.Table("t").MustInsert(relational.Row{
			relational.Int(int64(r.Intn(20))),
			relational.Int(int64(r.Intn(20))),
			cv,
		})
	}
	for trial := 0; trial < 200; trial++ {
		stmt := &SelectStmt{
			Limit: -1,
			Items: []SelectItem{{Star: true}},
			From:  TableRef{Table: "t"},
			Where: randExpr(r, 2),
		}
		res, err := Execute(db, stmt)
		if err != nil {
			// Only acceptable failure: the random expression referenced
			// the aliased form t.a while unaliased, etc. — resolution
			// errors are fine; anything else would have panicked.
			continue
		}
		if len(res.Rows) > db.Table("t").Len() {
			t.Fatalf("trial %d: filter grew the relation", trial)
		}
	}
}
