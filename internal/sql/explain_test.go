package sql

import (
	"strings"
	"testing"

	"repro/internal/relational"
)

func TestExplainHashJoin(t *testing.T) {
	db := testDB(t)
	plan, err := ExplainQuery(db, `SELECT person.name FROM person
		JOIN cast_info ON cast_info.person_id = person.person_id
		WHERE cast_info.role = 'actor' ORDER BY person.name LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"LIMIT 5",
		"SORT BY person.name ASC",
		"PROJECT person.name",
		"FILTER",
		"HASH JOIN cast_info",
		"SCAN person",
	} {
		if !strings.Contains(plan, frag) {
			t.Errorf("plan missing %q:\n%s", frag, plan)
		}
	}
}

func TestExplainNestedLoop(t *testing.T) {
	db := testDB(t)
	plan, err := ExplainQuery(db, `SELECT m1.title FROM movie m1 JOIN movie m2 ON m1.year < m2.year`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "NESTED LOOP JOIN movie AS m2") {
		t.Errorf("plan missing nested loop:\n%s", plan)
	}
}

func TestExplainLeftJoin(t *testing.T) {
	db := testDB(t)
	plan, err := ExplainQuery(db, `SELECT movie.title FROM movie
		LEFT JOIN cast_info ON cast_info.movie_id = movie.movie_id`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "LEFT HASH JOIN cast_info") {
		t.Errorf("plan missing left hash join:\n%s", plan)
	}
}

func TestExplainAggregate(t *testing.T) {
	db := testDB(t)
	plan, err := ExplainQuery(db, `SELECT role, COUNT(*) FROM cast_info
		GROUP BY role HAVING COUNT(*) > 1`)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"AGGREGATE GROUP BY role", "HAVING"} {
		if !strings.Contains(plan, frag) {
			t.Errorf("plan missing %q:\n%s", frag, plan)
		}
	}
	// Global aggregate.
	plan, err = ExplainQuery(db, "SELECT COUNT(*) FROM movie")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "AGGREGATE (single group)") {
		t.Errorf("plan missing global aggregate:\n%s", plan)
	}
}

func TestExplainResidualPredicate(t *testing.T) {
	db := testDB(t)
	plan, err := ExplainQuery(db, `SELECT person.name FROM person
		JOIN cast_info ON cast_info.person_id = person.person_id AND cast_info.role = 'actor'`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "residual") {
		t.Errorf("plan missing residual predicate:\n%s", plan)
	}
}

func TestExplainErrors(t *testing.T) {
	db := testDB(t)
	if _, err := ExplainQuery(db, "SELECT * FROM nope"); err == nil {
		t.Fatal("unknown table must error")
	}
	if _, err := ExplainQuery(db, "not sql at all"); err == nil {
		t.Fatal("parse error must propagate")
	}
}

func TestExplainRowCounts(t *testing.T) {
	db := testDB(t)
	plan, err := ExplainQuery(db, "SELECT * FROM movie")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "SCAN movie (4 rows)") {
		t.Errorf("plan missing row count:\n%s", plan)
	}
}

// TestExplainAnalyzeStatsFreshness pins the estimate-provenance rendering:
// a scan costed from freshly built statistics is annotated fresh, a scan
// costed after an in-budget insert is annotated budget-stale (the delta
// path served the estimate), and a scan over a sampled rebuild says so.
func TestExplainAnalyzeStatsFreshness(t *testing.T) {
	defer relational.SetIncrementalMaintenance(relational.SetIncrementalMaintenance(true))
	db := testDB(t)
	stmt, err := Parse("SELECT title FROM movie WHERE year > 1990")
	if err != nil {
		t.Fatal(err)
	}
	analyze := func() string {
		t.Helper()
		plan, err := ExplainAnalyze(db, stmt)
		if err != nil {
			t.Fatal(err)
		}
		return plan
	}

	if plan := analyze(); !strings.Contains(plan, "[stats: fresh]") {
		t.Errorf("first analyze should cost from fresh statistics:\n%s", plan)
	}

	// One in-budget insert: the next plan re-consults statistics (the
	// table version moved), the delta path serves them, and the scan
	// reports the estimate as budget-stale.
	I, F, S := relational.Int, relational.Float, relational.String_
	if err := db.Insert("movie", relational.Row{I(99), S("delta movie"), I(2020), F(6.0)}); err != nil {
		t.Fatal(err)
	}
	if plan := analyze(); !strings.Contains(plan, "[stats: budget-stale]") {
		t.Errorf("post-insert analyze should report budget-stale statistics:\n%s", plan)
	}

	// Force the sampled path: lower the sampling threshold so the rebuild
	// triggered by dropping the cached state is a sampled one.
	defer func(rows, size int) {
		relational.StatsSampleRows, relational.StatsSampleSize = rows, size
	}(relational.StatsSampleRows, relational.StatsSampleSize)
	relational.StatsSampleRows, relational.StatsSampleSize = 1, 3
	db.Table("movie").DropIndexes()
	if plan := analyze(); !strings.Contains(plan, "[stats: sampled]") {
		t.Errorf("analyze over a sampled rebuild should say so:\n%s", plan)
	}
}
