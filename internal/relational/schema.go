package relational

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Column describes one attribute of a table.
//
// Annotations and Pattern carry the "enriched schema" the paper's wrapper
// builds for hidden sources: free-text labels (synonyms, descriptions) and a
// regular expression of admissible values used by the metadata-only source
// to guess which attribute a keyword may belong to.
type Column struct {
	Name        string
	Type        Type
	NotNull     bool
	Annotations []string // semantic labels, e.g. synonyms of the attribute name
	Pattern     string   // regexp of admissible values ("" = unconstrained)

	pattern *regexp.Regexp
}

// MatchesPattern reports whether s is an admissible value for the column
// according to its Pattern annotation. Columns without a pattern accept
// everything.
func (c *Column) MatchesPattern(s string) bool {
	if c.Pattern == "" {
		return true
	}
	if c.pattern == nil {
		p, err := regexp.Compile("^(?:" + c.Pattern + ")$")
		if err != nil {
			return true
		}
		c.pattern = p
	}
	return c.pattern.MatchString(s)
}

// ForeignKey declares that Column of the owning table references
// RefTable.RefColumn.
type ForeignKey struct {
	Column    string
	RefTable  string
	RefColumn string
}

// TableSchema is the static description of a table.
type TableSchema struct {
	Name        string
	Columns     []Column
	PrimaryKey  string // name of the PK column ("" = none)
	ForeignKeys []ForeignKey
	Annotations []string // semantic labels for the table itself
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (s *TableSchema) ColumnIndex(name string) int {
	for i := range s.Columns {
		if strings.EqualFold(s.Columns[i].Name, name) {
			return i
		}
	}
	return -1
}

// Column returns the named column, or nil.
func (s *TableSchema) Column(name string) *Column {
	if i := s.ColumnIndex(name); i >= 0 {
		return &s.Columns[i]
	}
	return nil
}

// Validate checks internal consistency of the schema definition.
func (s *TableSchema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("relational: table with empty name")
	}
	seen := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		lc := strings.ToLower(c.Name)
		if c.Name == "" {
			return fmt.Errorf("relational: table %s has a column with empty name", s.Name)
		}
		if seen[lc] {
			return fmt.Errorf("relational: table %s has duplicate column %s", s.Name, c.Name)
		}
		seen[lc] = true
	}
	if s.PrimaryKey != "" && s.ColumnIndex(s.PrimaryKey) < 0 {
		return fmt.Errorf("relational: table %s: primary key %s is not a column", s.Name, s.PrimaryKey)
	}
	for _, fk := range s.ForeignKeys {
		if s.ColumnIndex(fk.Column) < 0 {
			return fmt.Errorf("relational: table %s: foreign key column %s is not a column", s.Name, fk.Column)
		}
	}
	return nil
}

// Schema is a full database schema: a set of table schemas with resolvable
// foreign keys. It is the primary artifact the QUEST forward and backward
// modules operate on.
type Schema struct {
	tables map[string]*TableSchema
	order  []string // insertion order, for deterministic iteration
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{tables: make(map[string]*TableSchema)}
}

// AddTable registers a table schema. It fails on duplicates or invalid
// definitions.
func (s *Schema) AddTable(t *TableSchema) error {
	if err := t.Validate(); err != nil {
		return err
	}
	key := strings.ToLower(t.Name)
	if _, dup := s.tables[key]; dup {
		return fmt.Errorf("relational: duplicate table %s", t.Name)
	}
	s.tables[key] = t
	s.order = append(s.order, key)
	return nil
}

// Table returns the named table schema, or nil.
func (s *Schema) Table(name string) *TableSchema {
	return s.tables[strings.ToLower(name)]
}

// Tables returns all table schemas in insertion order.
func (s *Schema) Tables() []*TableSchema {
	out := make([]*TableSchema, 0, len(s.order))
	for _, k := range s.order {
		out = append(out, s.tables[k])
	}
	return out
}

// CompilePatterns eagerly compiles every column's value-pattern regexp.
// MatchesPattern compiles lazily on first use, which would be a data race
// once relevance queries run concurrently; sources that serve concurrent
// traffic call this once during setup so later calls only read.
func (s *Schema) CompilePatterns() {
	for _, t := range s.Tables() {
		for i := range t.Columns {
			t.Columns[i].MatchesPattern("")
		}
	}
}

// KeyColumns returns the lower-cased names of a table's declared key
// columns: its primary key, its foreign-key columns, and the columns of
// this table that other tables' foreign keys reference. These are the
// columns the SQL planner treats as index-worthy regardless of table size,
// because PK/FK equality predicates and joins are where hash indexes pay
// off.
func (s *Schema) KeyColumns(table string) map[string]bool {
	t := s.Table(table)
	if t == nil {
		return nil
	}
	out := make(map[string]bool)
	if t.PrimaryKey != "" {
		out[strings.ToLower(t.PrimaryKey)] = true
	}
	for _, fk := range t.ForeignKeys {
		out[strings.ToLower(fk.Column)] = true
	}
	for _, k := range s.order {
		for _, fk := range s.tables[k].ForeignKeys {
			if strings.EqualFold(fk.RefTable, t.Name) {
				out[strings.ToLower(fk.RefColumn)] = true
			}
		}
	}
	return out
}

// TableNames returns the table names in insertion order.
func (s *Schema) TableNames() []string {
	out := make([]string, 0, len(s.order))
	for _, k := range s.order {
		out = append(out, s.tables[k].Name)
	}
	return out
}

// Validate cross-checks all foreign keys against their referenced tables.
func (s *Schema) Validate() error {
	for _, k := range s.order {
		t := s.tables[k]
		for _, fk := range t.ForeignKeys {
			ref := s.Table(fk.RefTable)
			if ref == nil {
				return fmt.Errorf("relational: table %s: foreign key references unknown table %s", t.Name, fk.RefTable)
			}
			if ref.ColumnIndex(fk.RefColumn) < 0 {
				return fmt.Errorf("relational: table %s: foreign key references unknown column %s.%s",
					t.Name, fk.RefTable, fk.RefColumn)
			}
			fc := t.Column(fk.Column)
			rc := ref.Column(fk.RefColumn)
			if fc.Type != rc.Type {
				return fmt.Errorf("relational: foreign key %s.%s (%s) -> %s.%s (%s): type mismatch",
					t.Name, fk.Column, fc.Type, fk.RefTable, fk.RefColumn, rc.Type)
			}
		}
	}
	return nil
}

// JoinEdge is an undirected PK/FK connection between two table attributes,
// as exposed to the backward module's schema graph.
type JoinEdge struct {
	FromTable  string
	FromColumn string
	ToTable    string
	ToColumn   string
}

// JoinEdges enumerates every PK/FK edge in the schema in deterministic
// order (by owning table, then column).
func (s *Schema) JoinEdges() []JoinEdge {
	var out []JoinEdge
	for _, k := range s.order {
		t := s.tables[k]
		fks := append([]ForeignKey(nil), t.ForeignKeys...)
		sort.Slice(fks, func(i, j int) bool {
			if fks[i].Column != fks[j].Column {
				return fks[i].Column < fks[j].Column
			}
			return fks[i].RefTable < fks[j].RefTable
		})
		for _, fk := range fks {
			out = append(out, JoinEdge{
				FromTable:  t.Name,
				FromColumn: fk.Column,
				ToTable:    fk.RefTable,
				ToColumn:   fk.RefColumn,
			})
		}
	}
	return out
}

// DDL renders the schema as CREATE TABLE statements (documentation aid and
// golden-test anchor; the engine itself is populated programmatically).
func (s *Schema) DDL() string {
	var b strings.Builder
	for _, k := range s.order {
		t := s.tables[k]
		fmt.Fprintf(&b, "CREATE TABLE %s (\n", t.Name)
		for i, c := range t.Columns {
			fmt.Fprintf(&b, "  %s %s", c.Name, c.Type)
			if c.NotNull {
				b.WriteString(" NOT NULL")
			}
			if t.PrimaryKey == c.Name {
				b.WriteString(" PRIMARY KEY")
			}
			if i < len(t.Columns)-1 || len(t.ForeignKeys) > 0 {
				b.WriteString(",")
			}
			b.WriteString("\n")
		}
		for i, fk := range t.ForeignKeys {
			fmt.Fprintf(&b, "  FOREIGN KEY (%s) REFERENCES %s(%s)", fk.Column, fk.RefTable, fk.RefColumn)
			if i < len(t.ForeignKeys)-1 {
				b.WriteString(",")
			}
			b.WriteString("\n")
		}
		b.WriteString(");\n")
	}
	return b.String()
}
