package relational

import "sort"

// MergeColumnStats combines per-partition statistics snapshots of one
// column into a single summary describing the union of the partitions —
// the coordinator-side half of statistics pushdown: shards ship their
// ColumnStats (a few dozen values) instead of rows, and the planner's
// cardinality estimator keeps working over the merged view.
//
// Exact fields: Rows, NullCount, Min and Max are lossless (sums and
// extrema commute with partitioning). Approximate fields: Distinct is the
// summed per-partition count clamped to its information-theoretic bounds —
// at least the largest partition's count, at most the total non-NULL
// rows — because values shared between partitions cannot be seen from the
// summaries; MCV counts are the sums of the per-partition counts (lower
// bounds, since a value may fall below a partition's MCV cutoff there);
// the histogram is the union of the partition buckets re-cut to the
// standard bucket budget, so bucket boundaries remain real column values
// but per-bucket distinct counts may double-count values spanning
// partitions.
//
// The merged Version is the sum of the partition versions: any partition
// mutation changes it, so coordinators can cache merged snapshots against
// it the same way single-table consumers cache against Table.Version.
//
// Freshness propagates pessimistically: the merged snapshot carries the
// worst label among the partitions (sampled > budget-stale > fresh), so a
// coordinator plan built over one budget-stale shard reports as
// budget-stale. Partitions that crossed the wire carry "" and read as
// fresh. Incremental per-shard maintenance thus flows straight through
// the scatter-gather merge: shards fold their deltas locally and the
// coordinator never forces an N-shard full rebuild.
func MergeColumnStats(parts []*ColumnStats) *ColumnStats {
	if len(parts) == 0 {
		return nil
	}
	if len(parts) == 1 {
		return parts[0]
	}
	out := &ColumnStats{Column: parts[0].Column}
	rank, labeled := 0, false
	for _, p := range parts {
		if p.Freshness != "" {
			labeled = true
		}
		if r := freshnessRank(p.Freshness); r > rank {
			rank = r
		}
	}
	if labeled {
		out.Freshness = freshnessRankName(rank)
	}
	maxDistinct := 0
	sumDistinct := 0
	for _, p := range parts {
		out.Version += p.Version
		out.Rows += p.Rows
		out.NullCount += p.NullCount
		sumDistinct += p.Distinct
		if p.Distinct > maxDistinct {
			maxDistinct = p.Distinct
		}
		if p.Rows-p.NullCount == 0 {
			continue // empty partition carries no Min/Max
		}
		if out.Min.IsNull() || Compare(p.Min, out.Min) < 0 {
			out.Min = p.Min
		}
		if out.Max.IsNull() || Compare(p.Max, out.Max) > 0 {
			out.Max = p.Max
		}
	}
	nonNull := out.Rows - out.NullCount
	out.Distinct = sumDistinct
	if out.Distinct > nonNull {
		out.Distinct = nonNull
	}
	if out.Distinct < maxDistinct {
		out.Distinct = maxDistinct
	}

	out.MCVs = mergeMCVs(parts)
	for _, m := range out.MCVs {
		out.mcvTotal += m.Count
	}
	out.Buckets = mergeBuckets(parts, nonNull)
	return out
}

// mergeMCVs sums per-partition most-common-value counts by value and keeps
// the heaviest StatsMaxMCVs, ordered by descending count with the value key
// as a deterministic tie-break.
func mergeMCVs(parts []*ColumnStats) []MCV {
	byKey := map[string]*MCV{}
	var order []string
	for _, p := range parts {
		for _, m := range p.MCVs {
			k := m.Value.Key()
			if e, ok := byKey[k]; ok {
				e.Count += m.Count
				continue
			}
			byKey[k] = &MCV{Value: m.Value, Count: m.Count}
			order = append(order, k)
		}
	}
	if len(order) == 0 {
		return nil
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := byKey[order[i]], byKey[order[j]]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return order[i] < order[j]
	})
	if len(order) > StatsMaxMCVs {
		order = order[:StatsMaxMCVs]
	}
	out := make([]MCV, len(order))
	for i, k := range order {
		out[i] = *byKey[k]
	}
	return out
}

// mergeBuckets unions the partition histograms: every partition bucket
// keeps its (Upper, Count, Distinct) weight, the union is sorted by upper
// bound (equal bounds coalesce), and adjacent buckets are re-cut to the
// StatsHistogramBuckets budget by accumulated depth. Bucket uppers stay
// real column values, so EstimateRange's interpolation walk remains valid.
func mergeBuckets(parts []*ColumnStats, nonNull int) []Bucket {
	var all []Bucket
	for _, p := range parts {
		all = append(all, p.Buckets...)
	}
	if len(all) == 0 {
		return nil
	}
	sort.SliceStable(all, func(i, j int) bool { return Compare(all[i].Upper, all[j].Upper) < 0 })
	coalesced := all[:1:1]
	for _, b := range all[1:] {
		last := &coalesced[len(coalesced)-1]
		if Compare(b.Upper, last.Upper) == 0 {
			last.Count += b.Count
			if b.Distinct > last.Distinct {
				last.Distinct = b.Distinct // same upper value is shared, not added
			}
			continue
		}
		coalesced = append(coalesced, b)
	}
	if len(coalesced) <= StatsHistogramBuckets {
		return coalesced
	}
	target := (nonNull + StatsHistogramBuckets - 1) / StatsHistogramBuckets
	var out []Bucket
	acc := Bucket{}
	for _, b := range coalesced {
		acc.Count += b.Count
		acc.Distinct += b.Distinct
		acc.Upper = b.Upper
		if acc.Count >= target {
			out = append(out, acc)
			acc = Bucket{}
		}
	}
	if acc.Count > 0 {
		out = append(out, acc)
	}
	return out
}
