package relational

import (
	"strings"
	"testing"
)

func moviesSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	if err := s.AddTable(&TableSchema{
		Name: "movie",
		Columns: []Column{
			{Name: "movie_id", Type: TypeInt, NotNull: true},
			{Name: "title", Type: TypeString, NotNull: true},
			{Name: "year", Type: TypeInt, Pattern: `(19|20)\d\d`},
		},
		PrimaryKey: "movie_id",
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTable(&TableSchema{
		Name: "cast_info",
		Columns: []Column{
			{Name: "cast_id", Type: TypeInt, NotNull: true},
			{Name: "movie_id", Type: TypeInt, NotNull: true},
			{Name: "person", Type: TypeString},
		},
		PrimaryKey: "cast_id",
		ForeignKeys: []ForeignKey{
			{Column: "movie_id", RefTable: "movie", RefColumn: "movie_id"},
		},
	}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaAddAndLookup(t *testing.T) {
	s := moviesSchema(t)
	if s.Table("movie") == nil {
		t.Fatal("Table(movie) = nil")
	}
	if s.Table("MOVIE") == nil {
		t.Fatal("table lookup must be case-insensitive")
	}
	if s.Table("nope") != nil {
		t.Fatal("Table(nope) should be nil")
	}
	if got := len(s.Tables()); got != 2 {
		t.Fatalf("len(Tables()) = %d, want 2", got)
	}
	names := s.TableNames()
	if names[0] != "movie" || names[1] != "cast_info" {
		t.Fatalf("TableNames() = %v, want insertion order", names)
	}
}

func TestSchemaDuplicateTable(t *testing.T) {
	s := moviesSchema(t)
	err := s.AddTable(&TableSchema{
		Name:    "Movie",
		Columns: []Column{{Name: "x", Type: TypeInt}},
	})
	if err == nil {
		t.Fatal("adding duplicate table (case-insensitive) should fail")
	}
}

func TestTableSchemaValidate(t *testing.T) {
	tests := []struct {
		name    string
		ts      *TableSchema
		wantErr string
	}{
		{"empty name", &TableSchema{}, "empty name"},
		{
			"duplicate column",
			&TableSchema{Name: "t", Columns: []Column{{Name: "a", Type: TypeInt}, {Name: "A", Type: TypeInt}}},
			"duplicate column",
		},
		{
			"bad pk",
			&TableSchema{Name: "t", Columns: []Column{{Name: "a", Type: TypeInt}}, PrimaryKey: "b"},
			"primary key",
		},
		{
			"bad fk column",
			&TableSchema{
				Name:        "t",
				Columns:     []Column{{Name: "a", Type: TypeInt}},
				ForeignKeys: []ForeignKey{{Column: "x", RefTable: "t", RefColumn: "a"}},
			},
			"foreign key column",
		},
		{
			"empty column name",
			&TableSchema{Name: "t", Columns: []Column{{Name: "", Type: TypeInt}}},
			"empty name",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.ts.Validate()
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestSchemaValidateForeignKeys(t *testing.T) {
	s := NewSchema()
	if err := s.AddTable(&TableSchema{
		Name:        "a",
		Columns:     []Column{{Name: "id", Type: TypeInt}, {Name: "bid", Type: TypeInt}},
		PrimaryKey:  "id",
		ForeignKeys: []ForeignKey{{Column: "bid", RefTable: "b", RefColumn: "id"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err == nil {
		t.Fatal("dangling FK table reference must fail validation")
	}
	if err := s.AddTable(&TableSchema{
		Name:       "b",
		Columns:    []Column{{Name: "id", Type: TypeString}},
		PrimaryKey: "id",
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "type mismatch") {
		t.Fatalf("FK type mismatch must fail, got %v", err)
	}
}

func TestColumnMatchesPattern(t *testing.T) {
	c := &Column{Name: "year", Type: TypeInt, Pattern: `(19|20)\d\d`}
	if !c.MatchesPattern("1994") {
		t.Error("1994 should match the year pattern")
	}
	if c.MatchesPattern("94") {
		t.Error("94 should not match (full anchor)")
	}
	if c.MatchesPattern("19940") {
		t.Error("19940 should not match (full anchor)")
	}
	free := &Column{Name: "title", Type: TypeString}
	if !free.MatchesPattern("anything at all") {
		t.Error("pattern-less column accepts everything")
	}
	bad := &Column{Name: "x", Pattern: `([`}
	if !bad.MatchesPattern("whatever") {
		t.Error("invalid pattern must fail open (accept)")
	}
}

func TestJoinEdgesDeterministic(t *testing.T) {
	s := moviesSchema(t)
	e1 := s.JoinEdges()
	e2 := s.JoinEdges()
	if len(e1) != 1 {
		t.Fatalf("JoinEdges() = %d edges, want 1", len(e1))
	}
	if e1[0] != e2[0] {
		t.Fatal("JoinEdges must be deterministic")
	}
	want := JoinEdge{FromTable: "cast_info", FromColumn: "movie_id", ToTable: "movie", ToColumn: "movie_id"}
	if e1[0] != want {
		t.Fatalf("JoinEdges()[0] = %+v, want %+v", e1[0], want)
	}
}

func TestSchemaDDL(t *testing.T) {
	ddl := moviesSchema(t).DDL()
	for _, frag := range []string{
		"CREATE TABLE movie", "movie_id INT NOT NULL PRIMARY KEY",
		"title TEXT NOT NULL", "FOREIGN KEY (movie_id) REFERENCES movie(movie_id)",
	} {
		if !strings.Contains(ddl, frag) {
			t.Errorf("DDL missing %q:\n%s", frag, ddl)
		}
	}
}

func TestColumnIndexCaseInsensitive(t *testing.T) {
	ts := moviesSchema(t).Table("movie")
	if ts.ColumnIndex("TITLE") != 1 {
		t.Error("ColumnIndex must be case-insensitive")
	}
	if ts.ColumnIndex("nope") != -1 {
		t.Error("missing column must be -1")
	}
	if ts.Column("Year") == nil {
		t.Error("Column lookup must be case-insensitive")
	}
}
