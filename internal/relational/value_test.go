package relational

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		typ  Type
		str  string
	}{
		{"null", Null(), TypeNull, "NULL"},
		{"int", Int(42), TypeInt, "42"},
		{"negative int", Int(-7), TypeInt, "-7"},
		{"float", Float(2.5), TypeFloat, "2.5"},
		{"string", String_("hello"), TypeString, "hello"},
		{"bool true", Bool(true), TypeBool, "true"},
		{"bool false", Bool(false), TypeBool, "false"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Type(); got != tt.typ {
				t.Errorf("Type() = %v, want %v", got, tt.typ)
			}
			if got := tt.v.String(); got != tt.str {
				t.Errorf("String() = %q, want %q", got, tt.str)
			}
		})
	}
}

func TestValueIsNull(t *testing.T) {
	if !Null().IsNull() {
		t.Error("Null().IsNull() = false")
	}
	if Int(0).IsNull() {
		t.Error("Int(0).IsNull() = true")
	}
	if String_("").IsNull() {
		t.Error("String_(\"\").IsNull() = true")
	}
}

func TestValueNumericAccessors(t *testing.T) {
	if got := Int(7).AsFloat(); got != 7.0 {
		t.Errorf("Int(7).AsFloat() = %v", got)
	}
	if got := Float(7.9).AsInt(); got != 7 {
		t.Errorf("Float(7.9).AsInt() = %v", got)
	}
	if got := Bool(true).AsInt(); got != 1 {
		t.Errorf("Bool(true).AsInt() = %v", got)
	}
	if got := Int(3).AsBool(); !got {
		t.Errorf("Int(3).AsBool() = false")
	}
	if got := Int(0).AsBool(); got {
		t.Errorf("Int(0).AsBool() = true")
	}
}

func TestCompareOrdering(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Float(1.5), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{Int(3), Float(3.0), 0},
		{String_("a"), String_("b"), -1},
		{String_("b"), String_("b"), 0},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Null(), Null(), 0},
	}
	for _, tt := range tests {
		if got := Compare(tt.a, tt.b); got != tt.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareStringAntisymmetry(t *testing.T) {
	f := func(a, b string) bool {
		return Compare(String_(a), String_(b)) == -Compare(String_(b), String_(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if Equal(Null(), Null()) {
		t.Error("NULL = NULL must be false (SQL semantics)")
	}
	if Equal(Null(), Int(1)) {
		t.Error("NULL = 1 must be false")
	}
	if !Equal(Int(3), Float(3)) {
		t.Error("3 = 3.0 must be true")
	}
}

func TestKeyDistinguishesTypes(t *testing.T) {
	// Int/Float with the same magnitude share a key (join compatibility)…
	if Int(3).Key() != Float(3).Key() {
		t.Error("Int(3) and Float(3.0) must share a key")
	}
	// …but a string "3" does not join with the number 3.
	if Int(3).Key() == String_("3").Key() {
		t.Error("Int(3) and String(\"3\") must not share a key")
	}
	if Bool(true).Key() == Int(1).Key() {
		t.Error("Bool(true) and Int(1) must not share a key")
	}
	if Null().Key() != Null().Key() {
		t.Error("NULL keys must agree")
	}
}

func TestKeyConsistentWithEqual(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Int(a), Int(b)
		return (x.Key() == y.Key()) == Equal(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueSQLQuoting(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Int(5), "5"},
		{String_("abc"), "'abc'"},
		{String_("o'neil"), "'o''neil'"},
		{Null(), "NULL"},
		{Bool(true), "true"},
	}
	for _, tt := range tests {
		if got := tt.v.SQL(); got != tt.want {
			t.Errorf("%v.SQL() = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestCoerce(t *testing.T) {
	tests := []struct {
		name    string
		v       Value
		to      Type
		want    Value
		wantErr bool
	}{
		{"int to float", Int(3), TypeFloat, Float(3), false},
		{"float to int truncates", Float(3.7), TypeInt, Int(3), false},
		{"string to int", String_(" 42 "), TypeInt, Int(42), false},
		{"string to float", String_("2.5"), TypeFloat, Float(2.5), false},
		{"bad string to int", String_("abc"), TypeInt, Value{}, true},
		{"int to string", Int(7), TypeString, String_("7"), false},
		{"string true to bool", String_("yes"), TypeBool, Bool(true), false},
		{"string f to bool", String_("f"), TypeBool, Bool(false), false},
		{"bad string to bool", String_("maybe"), TypeBool, Value{}, true},
		{"null passes through", Null(), TypeInt, Null(), false},
		{"same type", Int(1), TypeInt, Int(1), false},
		{"bool to int", Bool(true), TypeInt, Int(1), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Coerce(tt.v, tt.to)
			if (err != nil) != tt.wantErr {
				t.Fatalf("Coerce(%v, %v) error = %v, wantErr %v", tt.v, tt.to, err, tt.wantErr)
			}
			if err == nil && Compare(got, tt.want) != 0 && !(got.IsNull() && tt.want.IsNull()) {
				t.Errorf("Coerce(%v, %v) = %v, want %v", tt.v, tt.to, got, tt.want)
			}
		})
	}
}

func TestCoerceFloatRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		v, err := Coerce(Float(x), TypeString)
		if err != nil {
			return false
		}
		back, err := Coerce(v, TypeFloat)
		if err != nil {
			return false
		}
		return back.AsFloat() == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTypeString(t *testing.T) {
	for typ, want := range map[Type]string{
		TypeNull: "NULL", TypeInt: "INT", TypeFloat: "FLOAT",
		TypeString: "TEXT", TypeBool: "BOOL",
	} {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}
