package relational

import (
	"bytes"
	"strings"
	"testing"
)

func TestLoadCSVBasic(t *testing.T) {
	db := MustNewDatabase("t", moviesSchemaForDB(t))
	data := "movie_id,title,year\n1,the dark night,2008\n2,silent river,1994\n"
	n, err := db.LoadCSV("movie", strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("loaded %d, want 2", n)
	}
	row, ok := db.Table("movie").LookupPK(Int(1))
	if !ok || row[1].AsString() != "the dark night" || row[2].AsInt() != 2008 {
		t.Fatalf("row = %v", row)
	}
	// Types must be coerced, not left as strings.
	if row[0].Type() != TypeInt || row[2].Type() != TypeInt {
		t.Fatalf("types = %v, %v", row[0].Type(), row[2].Type())
	}
}

func TestLoadCSVHeaderSubsetAndOrder(t *testing.T) {
	db := MustNewDatabase("t", moviesSchemaForDB(t))
	// Reordered header, year omitted -> NULL.
	data := "title,movie_id\nsilent river,7\n"
	if _, err := db.LoadCSV("movie", strings.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	row, ok := db.Table("movie").LookupPK(Int(7))
	if !ok || !row[2].IsNull() {
		t.Fatalf("row = %v, want NULL year", row)
	}
}

func TestLoadCSVEmptyFieldIsNull(t *testing.T) {
	db := MustNewDatabase("t", moviesSchemaForDB(t))
	data := "movie_id,title,year\n1,x,\n"
	if _, err := db.LoadCSV("movie", strings.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	row, _ := db.Table("movie").LookupPK(Int(1))
	if !row[2].IsNull() {
		t.Fatalf("year = %v, want NULL", row[2])
	}
}

func TestLoadCSVErrors(t *testing.T) {
	db := MustNewDatabase("t", moviesSchemaForDB(t))
	tests := []struct {
		name string
		data string
	}{
		{"unknown column", "movie_id,nope\n1,x\n"},
		{"repeated column", "movie_id,movie_id\n1,2\n"},
		{"bad type", "movie_id,title,year\n1,x,not-a-year\n"},
		{"not null violated", "movie_id,year\n1,2000\n"}, // title NOT NULL missing
		{"duplicate pk", "movie_id,title\n1,a\n1,b\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			fresh := MustNewDatabase("t", moviesSchemaForDB(t))
			if _, err := fresh.LoadCSV("movie", strings.NewReader(tt.data)); err == nil {
				t.Fatalf("LoadCSV(%q) should fail", tt.data)
			}
		})
	}
	if _, err := db.LoadCSV("nope", strings.NewReader("x\n1\n")); err == nil {
		t.Fatal("unknown table must fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := populatedDB(t)
	var buf bytes.Buffer
	if err := db.DumpCSV("cast_info", &buf); err != nil {
		t.Fatal(err)
	}
	fresh := MustNewDatabase("t", moviesSchemaForDB(t))
	n, err := fresh.LoadCSV("cast_info", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	orig := db.Table("cast_info")
	if n != orig.Len() {
		t.Fatalf("round trip loaded %d, want %d", n, orig.Len())
	}
	got := fresh.Table("cast_info")
	for i := 0; i < orig.Len(); i++ {
		a, b := orig.Row(i), got.Row(i)
		for c := range a {
			if a[c].IsNull() != b[c].IsNull() || (!a[c].IsNull() && Compare(a[c], b[c]) != 0) {
				t.Fatalf("row %d col %d: %v vs %v", i, c, a[c], b[c])
			}
		}
	}
}

func TestDumpCSVUnknownTable(t *testing.T) {
	db := populatedDB(t)
	if err := db.DumpCSV("nope", &bytes.Buffer{}); err == nil {
		t.Fatal("unknown table must fail")
	}
}

func TestDumpCSVQuoting(t *testing.T) {
	db := MustNewDatabase("t", moviesSchemaForDB(t))
	db.Table("movie").MustInsert(Row{Int(1), String_(`comma, "quoted"`), Int(2000)})
	var buf bytes.Buffer
	if err := db.DumpCSV("movie", &buf); err != nil {
		t.Fatal(err)
	}
	fresh := MustNewDatabase("t", moviesSchemaForDB(t))
	if _, err := fresh.LoadCSV("movie", bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	row, _ := fresh.Table("movie").LookupPK(Int(1))
	if row[1].AsString() != `comma, "quoted"` {
		t.Fatalf("quoting broke: %q", row[1].AsString())
	}
}
