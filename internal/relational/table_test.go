package relational

import (
	"strings"
	"testing"
)

func populatedDB(t *testing.T) *Database {
	t.Helper()
	db, err := NewDatabase("test", moviesSchemaForDB(t))
	if err != nil {
		t.Fatal(err)
	}
	rows := []Row{
		{Int(1), String_("the dark night"), Int(2008)},
		{Int(2), String_("silent river"), Int(1994)},
		{Int(3), String_("dark river"), Int(2001)},
	}
	for _, r := range rows {
		if err := db.Insert("movie", r); err != nil {
			t.Fatal(err)
		}
	}
	casts := []Row{
		{Int(1), Int(1), String_("alice smith")},
		{Int(2), Int(1), String_("bob jones")},
		{Int(3), Int(2), String_("alice smith")},
	}
	for _, r := range casts {
		if err := db.Insert("cast_info", r); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func moviesSchemaForDB(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	for _, ts := range []*TableSchema{
		{
			Name: "movie",
			Columns: []Column{
				{Name: "movie_id", Type: TypeInt, NotNull: true},
				{Name: "title", Type: TypeString, NotNull: true},
				{Name: "year", Type: TypeInt},
			},
			PrimaryKey: "movie_id",
		},
		{
			Name: "cast_info",
			Columns: []Column{
				{Name: "cast_id", Type: TypeInt, NotNull: true},
				{Name: "movie_id", Type: TypeInt, NotNull: true},
				{Name: "person", Type: TypeString},
			},
			PrimaryKey: "cast_id",
			ForeignKeys: []ForeignKey{
				{Column: "movie_id", RefTable: "movie", RefColumn: "movie_id"},
			},
		},
	} {
		if err := s.AddTable(ts); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestInsertAndLen(t *testing.T) {
	db := populatedDB(t)
	if got := db.Table("movie").Len(); got != 3 {
		t.Fatalf("movie.Len() = %d, want 3", got)
	}
	if got := db.TotalRows(); got != 6 {
		t.Fatalf("TotalRows() = %d, want 6", got)
	}
}

func TestInsertArityMismatch(t *testing.T) {
	db := populatedDB(t)
	err := db.Insert("movie", Row{Int(9)})
	if err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("arity error expected, got %v", err)
	}
}

func TestInsertNotNullViolation(t *testing.T) {
	db := populatedDB(t)
	err := db.Insert("movie", Row{Int(9), Null(), Int(2000)})
	if err == nil || !strings.Contains(err.Error(), "NOT NULL") {
		t.Fatalf("NOT NULL error expected, got %v", err)
	}
}

func TestInsertDuplicatePK(t *testing.T) {
	db := populatedDB(t)
	err := db.Insert("movie", Row{Int(1), String_("dup"), Int(2000)})
	if err == nil || !strings.Contains(err.Error(), "duplicate primary key") {
		t.Fatalf("duplicate PK error expected, got %v", err)
	}
}

func TestInsertCoercesTypes(t *testing.T) {
	db := populatedDB(t)
	// Year arrives as string; engine must coerce to INT.
	if err := db.Insert("movie", Row{Int(10), String_("x"), String_("1999")}); err != nil {
		t.Fatal(err)
	}
	row, ok := db.Table("movie").LookupPK(Int(10))
	if !ok {
		t.Fatal("LookupPK(10) failed")
	}
	if row[2].Type() != TypeInt || row[2].AsInt() != 1999 {
		t.Fatalf("year = %v (%v), want INT 1999", row[2], row[2].Type())
	}
}

func TestInsertUncoercibleFails(t *testing.T) {
	db := populatedDB(t)
	err := db.Insert("movie", Row{Int(11), String_("x"), String_("not-a-year")})
	if err == nil {
		t.Fatal("uncoercible insert should fail")
	}
}

func TestInsertUnknownTable(t *testing.T) {
	db := populatedDB(t)
	if err := db.Insert("nope", Row{}); err == nil {
		t.Fatal("insert into unknown table should fail")
	}
}

func TestLookupPK(t *testing.T) {
	db := populatedDB(t)
	row, ok := db.Table("movie").LookupPK(Int(2))
	if !ok {
		t.Fatal("LookupPK(2) not found")
	}
	if row[1].AsString() != "silent river" {
		t.Fatalf("row = %v", row)
	}
	if _, ok := db.Table("movie").LookupPK(Int(99)); ok {
		t.Fatal("LookupPK(99) should miss")
	}
}

func TestLookupSecondaryIndex(t *testing.T) {
	db := populatedDB(t)
	rows, err := db.Table("cast_info").Lookup("movie_id", Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("Lookup(movie_id=1) = %d rows, want 2", len(rows))
	}
	rows, err = db.Table("cast_info").Lookup("movie_id", Int(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("Lookup(movie_id=3) = %d rows, want 0", len(rows))
	}
	if _, err := db.Table("cast_info").Lookup("nope", Int(1)); err == nil {
		t.Fatal("Lookup on unknown column should fail")
	}
}

func TestIndexMaintainedAcrossInserts(t *testing.T) {
	db := populatedDB(t)
	ci := db.Table("cast_info")
	if _, err := ci.EnsureIndex("person"); err != nil {
		t.Fatal(err)
	}
	// Insert after index creation: index must pick up the new row.
	if err := db.Insert("cast_info", Row{Int(4), Int(3), String_("carol white")}); err != nil {
		t.Fatal(err)
	}
	rows, err := ci.Lookup("person", String_("carol white"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("index missed post-creation insert: %d rows", len(rows))
	}
}

func TestDistinctCount(t *testing.T) {
	db := populatedDB(t)
	n, err := db.Table("cast_info").DistinctCount("person")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("DistinctCount(person) = %d, want 2", n)
	}
}

func TestCheckForeignKeys(t *testing.T) {
	db := populatedDB(t)
	if err := db.CheckForeignKeys(); err != nil {
		t.Fatalf("valid FKs reported: %v", err)
	}
	// NULL FKs are allowed.
	s := NewSchema()
	if err := s.AddTable(&TableSchema{
		Name:       "a",
		Columns:    []Column{{Name: "id", Type: TypeInt}},
		PrimaryKey: "id",
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTable(&TableSchema{
		Name:        "b",
		Columns:     []Column{{Name: "id", Type: TypeInt}, {Name: "aid", Type: TypeInt}},
		PrimaryKey:  "id",
		ForeignKeys: []ForeignKey{{Column: "aid", RefTable: "a", RefColumn: "id"}},
	}); err != nil {
		t.Fatal(err)
	}
	db2 := MustNewDatabase("t2", s)
	db2.Table("a").MustInsert(Row{Int(1)})
	db2.Table("b").MustInsert(Row{Int(1), Null()})
	if err := db2.CheckForeignKeys(); err != nil {
		t.Fatalf("NULL FK should be fine: %v", err)
	}
	db2.Table("b").MustInsert(Row{Int(2), Int(99)})
	if err := db2.CheckForeignKeys(); err == nil {
		t.Fatal("dangling FK must be reported")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{Int(1), String_("x")}
	c := r.Clone()
	c[0] = Int(2)
	if r[0].AsInt() != 1 {
		t.Fatal("Clone must not share backing array")
	}
}

func TestNullPrimaryKeyRejected(t *testing.T) {
	db := populatedDB(t)
	err := db.Insert("movie", Row{Null(), String_("x"), Int(2000)})
	if err == nil {
		t.Fatal("NULL PK must be rejected")
	}
}
