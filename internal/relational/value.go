// Package relational implements the in-memory relational engine substrate
// used by QUEST: a typed value system, schema catalog and row storage with
// primary/foreign key indexes.
//
// The engine is deliberately self-contained (stdlib only) and deterministic:
// QUEST treats it the way the paper treats a commercial DBMS — as the system
// under the wrapper that stores tuples, enforces keys and answers SQL.
package relational

import (
	"fmt"
	"strconv"
	"strings"
)

// Type enumerates the column data types supported by the engine.
type Type int

const (
	// TypeNull is the type of the NULL literal before coercion.
	TypeNull Type = iota
	// TypeInt is a 64-bit signed integer column.
	TypeInt
	// TypeFloat is a 64-bit IEEE float column.
	TypeFloat
	// TypeString is a variable-length text column.
	TypeString
	// TypeBool is a boolean column.
	TypeBool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeString:
		return "TEXT"
	case TypeBool:
		return "BOOL"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// Value is a single typed cell. The zero Value is NULL.
type Value struct {
	typ Type
	i   int64
	f   float64
	s   string
	b   bool
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{typ: TypeInt, i: v} }

// Float returns a float value.
func Float(v float64) Value { return Value{typ: TypeFloat, f: v} }

// String_ returns a string value. The trailing underscore avoids clashing
// with the fmt.Stringer method on Value.
func String_(v string) Value { return Value{typ: TypeString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{typ: TypeBool, b: v} }

// Type reports the value's type; NULL values report TypeNull.
func (v Value) Type() Type { return v.typ }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.typ == TypeNull }

// AsInt returns the integer content. It is the caller's responsibility to
// check the type first; floats are truncated.
func (v Value) AsInt() int64 {
	switch v.typ {
	case TypeInt:
		return v.i
	case TypeFloat:
		return int64(v.f)
	case TypeBool:
		if v.b {
			return 1
		}
		return 0
	}
	return 0
}

// AsFloat returns the numeric content widened to float64.
func (v Value) AsFloat() float64 {
	switch v.typ {
	case TypeInt:
		return float64(v.i)
	case TypeFloat:
		return v.f
	}
	return 0
}

// AsString returns the textual content of a string value, or the rendered
// form of any other value.
func (v Value) AsString() string {
	if v.typ == TypeString {
		return v.s
	}
	return v.String()
}

// AsBool returns the boolean content.
func (v Value) AsBool() bool {
	switch v.typ {
	case TypeBool:
		return v.b
	case TypeInt:
		return v.i != 0
	}
	return false
}

// String renders the value the way the CLI prints result cells.
func (v Value) String() string {
	switch v.typ {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return strconv.FormatInt(v.i, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TypeString:
		return v.s
	case TypeBool:
		if v.b {
			return "true"
		}
		return "false"
	}
	return "?"
}

// SQL renders the value as a SQL literal.
func (v Value) SQL() string {
	if v.typ == TypeString {
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	}
	return v.String()
}

// Key returns a canonical comparable representation usable as a map key.
// NULLs all collapse to the same key; numeric values of equal magnitude but
// different types stay distinct, matching Compare's type coercion rules only
// for exact matches (hash-join probes re-check with Equal).
func (v Value) Key() string {
	switch v.typ {
	case TypeNull:
		return "\x00"
	case TypeInt:
		return "i" + strconv.FormatInt(v.i, 10)
	case TypeFloat:
		if v.f == float64(int64(v.f)) {
			// Keep 3 and 3.0 join-compatible.
			return "i" + strconv.FormatInt(int64(v.f), 10)
		}
		return "f" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case TypeString:
		return "s" + v.s
	case TypeBool:
		if v.b {
			return "b1"
		}
		return "b0"
	}
	return "?"
}

// Compare orders two values. NULL sorts before everything. Numeric types
// compare by magnitude; strings lexicographically; cross-kind comparisons
// order by type id so sorting is total.
func Compare(a, b Value) int {
	if a.typ == TypeNull || b.typ == TypeNull {
		switch {
		case a.typ == TypeNull && b.typ == TypeNull:
			return 0
		case a.typ == TypeNull:
			return -1
		default:
			return 1
		}
	}
	if numeric(a.typ) && numeric(b.typ) {
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.typ != b.typ {
		if a.typ < b.typ {
			return -1
		}
		return 1
	}
	switch a.typ {
	case TypeString:
		return strings.Compare(a.s, b.s)
	case TypeBool:
		switch {
		case a.b == b.b:
			return 0
		case !a.b:
			return -1
		default:
			return 1
		}
	}
	return 0
}

// Equal reports SQL equality. NULL never equals anything, including NULL.
func Equal(a, b Value) bool {
	if a.typ == TypeNull || b.typ == TypeNull {
		return false
	}
	return Compare(a, b) == 0
}

func numeric(t Type) bool { return t == TypeInt || t == TypeFloat }

// Coerce converts v to the column type t where a lossless or standard SQL
// conversion exists, otherwise returns an error.
func Coerce(v Value, t Type) (Value, error) {
	if v.typ == TypeNull || v.typ == t {
		return v, nil
	}
	switch t {
	case TypeInt:
		switch v.typ {
		case TypeFloat:
			return Int(int64(v.f)), nil
		case TypeString:
			n, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
			if err != nil {
				return Value{}, fmt.Errorf("relational: cannot coerce %q to INT", v.s)
			}
			return Int(n), nil
		case TypeBool:
			return Int(v.AsInt()), nil
		}
	case TypeFloat:
		switch v.typ {
		case TypeInt:
			return Float(float64(v.i)), nil
		case TypeString:
			f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
			if err != nil {
				return Value{}, fmt.Errorf("relational: cannot coerce %q to FLOAT", v.s)
			}
			return Float(f), nil
		}
	case TypeString:
		return String_(v.String()), nil
	case TypeBool:
		switch v.typ {
		case TypeInt:
			return Bool(v.i != 0), nil
		case TypeString:
			switch strings.ToLower(strings.TrimSpace(v.s)) {
			case "true", "t", "1", "yes":
				return Bool(true), nil
			case "false", "f", "0", "no":
				return Bool(false), nil
			}
		}
	}
	return Value{}, fmt.Errorf("relational: cannot coerce %s to %s", v.typ, t)
}
