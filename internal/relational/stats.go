package relational

import "sort"

// Statistics sizing. StatsHistogramBuckets caps the equi-depth histogram;
// columns with fewer distinct values get one exact bucket per value.
// StatsMaxMCVs caps the most-common-values list; values that occur only
// once never enter it (a unique column has no "common" values and the
// uniform estimate already covers it).
const (
	StatsHistogramBuckets = 32
	StatsMaxMCVs          = 8
)

// MCV is one most-common-value entry: an exact (value, occurrence count)
// pair for a frequent value, the part of the distribution a histogram
// smears out on skewed data.
type MCV struct {
	Value Value
	Count int
}

// Bucket is one equi-depth histogram bucket: Count rows whose values lie in
// (previous bucket's Upper, Upper], with Distinct distinct values among
// them. The first bucket's implicit lower bound is the column minimum.
type Bucket struct {
	Upper    Value
	Count    int
	Distinct int
}

// ColumnStats summarizes one column's value distribution at a fixed table
// version. All fields describe non-NULL cells except Rows (total) and
// NullCount. Consumers (the SQL planner's cardinality estimator) must
// obtain it through Table.Stats, which rebuilds stale snapshots — a stats
// object is immutable and safe to share, but only valid for Version.
type ColumnStats struct {
	Column  string
	Version uint64 // Table.Version the snapshot was built at

	Rows      int // total rows, NULLs included
	NullCount int
	Distinct  int // distinct non-NULL values
	Min, Max  Value

	MCVs     []MCV    // most common values, by descending count
	Buckets  []Bucket // equi-depth histogram over all non-NULL rows
	mcvTotal int      // sum of MCV counts

	// Freshness labels how the snapshot was produced: StatsFresh (full
	// rebuild), StatsBudgetStale (delta folded into an older base; exact
	// rows/nulls/min/max, stale histogram) or StatsSampled (stride-sampled
	// rebuild). Process-local diagnostics only — the wire codec does not
	// ship it, so decoded snapshots read "" (treated as fresh).
	Freshness string
}

// Rehydrate recomputes the derived unexported state (the MCV count total)
// from the exported fields. It is the last step of decoding a ColumnStats
// that crossed a process boundary — the wire codec (internal/sql) ships
// only the exported fields, and an un-rehydrated snapshot would
// over-estimate the non-MCV remainder in EstimateEq.
func (cs *ColumnStats) Rehydrate() {
	cs.mcvTotal = 0
	for _, m := range cs.MCVs {
		cs.mcvTotal += m.Count
	}
}

// NullFraction returns the fraction of rows that are NULL.
func (cs *ColumnStats) NullFraction() float64 {
	if cs.Rows == 0 {
		return 0
	}
	return float64(cs.NullCount) / float64(cs.Rows)
}

// EstimateEq estimates how many rows equal v: exact for values in the MCV
// list, uniform over the remaining distinct values otherwise, and zero
// outside the observed [Min, Max] range. NULL never equals anything.
func (cs *ColumnStats) EstimateEq(v Value) int {
	if v.IsNull() {
		return 0
	}
	nonNull := cs.Rows - cs.NullCount
	if nonNull == 0 {
		return 0
	}
	for _, m := range cs.MCVs {
		if Compare(m.Value, v) == 0 {
			return m.Count
		}
	}
	if Compare(v, cs.Min) < 0 || Compare(v, cs.Max) > 0 {
		return 0
	}
	rest := nonNull - cs.mcvTotal
	restDistinct := cs.Distinct - len(cs.MCVs)
	if rest <= 0 || restDistinct <= 0 {
		return 0
	}
	est := rest / restDistinct
	if est < 1 {
		est = 1
	}
	return est
}

// EstimateRange estimates how many rows v satisfy lo ≤/< v ≤/< hi under the
// engine's Compare ordering. A NULL bound is unbounded on that side. The
// estimate walks the histogram, linearly interpolating inside the bucket a
// bound falls into (numeric columns interpolate by magnitude, others take
// half the straddled bucket).
func (cs *ColumnStats) EstimateRange(lo, hi Value, loInc, hiInc bool) int {
	nonNull := cs.Rows - cs.NullCount
	if nonNull == 0 || len(cs.Buckets) == 0 {
		return 0
	}
	below := func(x Value, inclusive bool) float64 {
		// Rows with value < x (or ≤ x when inclusive).
		if x.IsNull() {
			return 0
		}
		acc := 0.0
		lower := cs.Min
		for _, b := range cs.Buckets {
			c := Compare(x, b.Upper)
			if c > 0 || (c == 0 && inclusive) {
				acc += float64(b.Count)
				lower = b.Upper
				continue
			}
			acc += interpolate(lower, b.Upper, x) * float64(b.Count)
			return acc
		}
		return acc
	}
	var lower, upper float64
	if lo.IsNull() {
		lower = 0
	} else {
		lower = below(lo, !loInc)
	}
	if hi.IsNull() {
		upper = float64(nonNull)
	} else {
		upper = below(hi, hiInc)
	}
	est := int(upper - lower)
	if est < 0 {
		est = 0
	}
	if est > nonNull {
		est = nonNull
	}
	return est
}

// interpolate returns the fraction of the way x sits through (lo, hi]:
// by magnitude for numeric values, 0.5 for anything the engine cannot
// meaningfully subdivide (strings, cross-type bounds).
func interpolate(lo, hi, x Value) float64 {
	if Compare(x, lo) <= 0 {
		return 0
	}
	if Compare(x, hi) >= 0 {
		return 1
	}
	if numeric(lo.Type()) && numeric(hi.Type()) && numeric(x.Type()) {
		l, h, v := lo.AsFloat(), hi.AsFloat(), x.AsFloat()
		if h > l {
			f := (v - l) / (h - l)
			if f < 0 {
				return 0
			}
			if f > 1 {
				return 1
			}
			return f
		}
	}
	return 0.5
}

// buildColumnStats computes the statistics snapshot for one column in a
// single pass over the rows plus one sort: the sorted non-NULL values give
// distinct count (run boundaries), min/max (ends), the MCV list (longest
// runs) and the equi-depth histogram (quantile cuts) without any hashing.
func buildColumnStats(t *Table, ord int) *ColumnStats {
	cs := &ColumnStats{
		Column:    t.Schema.Columns[ord].Name,
		Version:   t.version.Load(),
		Rows:      len(t.rows),
		Freshness: StatsFresh,
	}
	vals := make([]Value, 0, len(t.rows))
	for _, r := range t.rows {
		if r[ord].IsNull() {
			cs.NullCount++
			continue
		}
		vals = append(vals, r[ord])
	}
	if len(vals) == 0 {
		return cs
	}
	sort.SliceStable(vals, func(i, j int) bool { return Compare(vals[i], vals[j]) < 0 })
	cs.Min, cs.Max = vals[0], vals[len(vals)-1]

	// Walk the runs of equal values once, collecting distinct count and the
	// candidate MCVs (runs of length ≥ 2).
	type run struct {
		v     Value
		count int
	}
	var runs []run
	start := 0
	for i := 1; i <= len(vals); i++ {
		if i < len(vals) && Compare(vals[i], vals[start]) == 0 {
			continue
		}
		runs = append(runs, run{v: vals[start], count: i - start})
		start = i
	}
	cs.Distinct = len(runs)

	mcvRuns := make([]run, 0, len(runs))
	for _, r := range runs {
		if r.count >= 2 {
			mcvRuns = append(mcvRuns, r)
		}
	}
	sort.SliceStable(mcvRuns, func(i, j int) bool { return mcvRuns[i].count > mcvRuns[j].count })
	if len(mcvRuns) > StatsMaxMCVs {
		mcvRuns = mcvRuns[:StatsMaxMCVs]
	}
	for _, r := range mcvRuns {
		cs.MCVs = append(cs.MCVs, MCV{Value: r.v, Count: r.count})
		cs.mcvTotal += r.count
	}

	// Histogram: exact (one bucket per value) when the vocabulary is small,
	// equi-depth quantile cuts otherwise. Buckets always end on a value
	// boundary so a bucket's Upper is a real column value.
	if cs.Distinct <= StatsHistogramBuckets {
		for _, r := range runs {
			cs.Buckets = append(cs.Buckets, Bucket{Upper: r.v, Count: r.count, Distinct: 1})
		}
		return cs
	}
	target := (len(vals) + StatsHistogramBuckets - 1) / StatsHistogramBuckets
	b := Bucket{}
	for _, r := range runs {
		b.Count += r.count
		b.Distinct++
		b.Upper = r.v
		if b.Count >= target {
			cs.Buckets = append(cs.Buckets, b)
			b = Bucket{}
		}
	}
	if b.Count > 0 {
		cs.Buckets = append(cs.Buckets, b)
	}
	return cs
}

// Stats returns the statistics snapshot for the named column, building it
// on first use and refreshing it whenever the table has been mutated since
// the cached snapshot was taken: a snapshot whose Version trails the
// table's current Version is never served. With incremental maintenance on
// (the default) a refresh within the staleness budget folds the per-column
// insert delta into the last full snapshot instead of rebuilding —
// rows/nulls/min/max stay exact, the histogram rides along budget-stale —
// and budget-exceeding refreshes of large tables rebuild by sampling; see
// maintain.go. Safe for concurrent use, including concurrently with
// Insert; the returned object is immutable.
func (t *Table) Stats(column string) (*ColumnStats, error) {
	ord := t.Schema.ColumnIndex(column)
	if ord < 0 {
		return nil, columnError(t, column)
	}
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	version := t.version.Load()
	if cs, ok := t.colStats[ord]; ok && cs.Version == version {
		return cs, nil
	}
	incremental := IncrementalMaintenance()
	if incremental {
		if m, ok := t.statsMaint[ord]; ok && m.withinBudget() {
			cs := t.applyDeltaLocked(ord, m)
			t.colStats[ord] = cs
			t.statsIncremental++
			return cs, nil
		}
	}
	var cs *ColumnStats
	if incremental && len(t.rows) >= StatsSampleRows {
		cs = sampleColumnStats(t, ord)
		t.statsSampled++
	} else {
		cs = buildColumnStats(t, ord)
	}
	if t.colStats == nil {
		t.colStats = make(map[int]*ColumnStats)
	}
	t.colStats[ord] = cs
	t.statsBuilds++
	if incremental {
		if t.statsMaint == nil {
			t.statsMaint = make(map[int]*colMaint)
		}
		t.statsMaint[ord] = &colMaint{base: cs}
	} else {
		delete(t.statsMaint, ord)
	}
	return cs, nil
}

// StatsFreshnessSummary returns the worst freshness label among the
// table's currently cached, current-version statistics snapshots — the
// ones the planner just consulted — or "" when none are cached.
// ExplainAnalyze uses it to report what kind of estimates a scan was
// costed from.
func (t *Table) StatsFreshnessSummary() string {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	version := t.version.Load()
	out := ""
	for _, cs := range t.colStats {
		if cs.Version != version {
			continue
		}
		f := cs.Freshness
		if f == "" {
			f = StatsFresh
		}
		if out == "" {
			out = f
		} else {
			out = worseFreshness(out, f)
		}
	}
	return out
}

// StatsBuildCount returns how many column-statistics snapshots this table
// has computed (first builds and stale-version rebuilds alike).
func (t *Table) StatsBuildCount() int {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	return t.statsBuilds
}
