package relational

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Row is one tuple; cells are positionally aligned with the table schema.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Table is a populated relation: schema plus rows plus maintained indexes.
//
// Bulk population (loaders, generators) remains a distinct phase that must
// not run concurrently with reads. After population, all read paths are
// safe to share between goroutines, and the index/statistics read paths
// (EnsureIndex, Lookup, RangeOrdinals, Stats, DistinctCount) additionally
// tolerate concurrent Inserts: Insert performs every shared-structure
// mutation — row append, version bump, index and statistics maintenance —
// under idxMu, the same lock those readers take. Unlocked row access
// (Rows, Row, LookupPK, executor scans) is still reads-only territory;
// callers that interleave scans with writes serialize at a higher layer
// (wrapper.FullAccessSource holds an RWMutex around Execute/Insert).
//
// Index invalidation rules: an equality index built by EnsureIndex is
// maintained incrementally by Insert (the new ordinal is appended to its
// posting), so indexes built mid-population stay correct. Sorted indexes
// and statistics snapshots are version-checked; with incremental
// maintenance on (the default, see maintain.go) Insert keeps sorted
// indexes current through a sorted side-run and accrues per-column
// statistics deltas, so reads after writes avoid full rebuilds. Every
// Insert also bumps the table's Version; consumers that cache derived
// state outside the table (the SQL planner's plan cache, the serving
// tier's response cache) key it on the version and so observe mutations
// as cache misses rather than stale reads.
type Table struct {
	Schema *TableSchema

	rows []Row

	// version counts mutations (Inserts); external caches key on it.
	// Atomic so cache-key reads (Version, DataVersion) never race Insert.
	version atomic.Uint64

	// pkIndex maps PK value key -> row ordinal (unique).
	pkIndex map[string]int
	// idxMu guards every lazily written structure below and the
	// shared-state mutations Insert performs.
	idxMu sync.Mutex
	// colIndexes maps column ordinal -> (value key -> row ordinals);
	// maintained lazily for FK columns and on demand.
	colIndexes map[int]map[string][]int
	// indexBuilds counts how many times EnsureIndex actually built an
	// index (operator-facing statistic; rebuilds after DropIndexes count
	// again).
	indexBuilds int
	// sortedIndexes maps column ordinal -> row ordinals sorted by value
	// (range-scan support). Each entry records the version it reflects;
	// with incremental maintenance Insert keeps current entries current by
	// absorbing rows into a sorted side-run, otherwise a stale entry is
	// rebuilt on next access.
	sortedIndexes map[int]*sortedIndex
	sortedBuilds  int
	sortedMerges  int // read-time main+side merges (see RangeOrdinals)
	sideInserts   int // inserts absorbed into side-runs
	// colStats caches per-column statistics snapshots, version-checked the
	// same way (see Stats in stats.go); statsMaint holds the incremental
	// maintenance state per column (see maintain.go).
	colStats         map[int]*ColumnStats
	statsBuilds      int
	statsSampled     int
	statsIncremental int
	statsMaint       map[int]*colMaint
}

// sortedIndex holds a column's non-NULL row ordinals ordered by
// (value ascending under Compare, ordinal ascending). The version pins the
// Table.Version it reflects; a mismatch means the table mutated without
// maintenance and the index must be rebuilt before use. Under incremental
// maintenance, inserts land in side — also (value, ordinal)-ordered, and
// ordinal-disjoint above ords — which range reads merge on the fly until
// it exceeds SortedSideRunThreshold and is collapsed into ords.
type sortedIndex struct {
	version uint64
	ords    []int
	side    []int
}

func columnError(t *Table, column string) error {
	return fmt.Errorf("relational: table %s has no column %s", t.Schema.Name, column)
}

// NewTable returns an empty table for the given schema.
func NewTable(schema *TableSchema) *Table {
	t := &Table{
		Schema:     schema,
		colIndexes: make(map[int]map[string][]int),
	}
	if schema.PrimaryKey != "" {
		t.pkIndex = make(map[string]int)
	}
	return t
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Row returns row i (shared, not copied).
func (t *Table) Row(i int) Row { return t.rows[i] }

// Rows returns the backing row slice (shared; callers must not mutate).
func (t *Table) Rows() []Row { return t.rows }

// Insert validates, coerces and appends a tuple, maintaining indexes.
func (t *Table) Insert(row Row) error {
	if len(row) != len(t.Schema.Columns) {
		return fmt.Errorf("relational: table %s: insert arity %d, want %d",
			t.Schema.Name, len(row), len(t.Schema.Columns))
	}
	coerced := make(Row, len(row))
	for i, v := range row {
		col := &t.Schema.Columns[i]
		if v.IsNull() {
			if col.NotNull {
				return fmt.Errorf("relational: table %s: NULL in NOT NULL column %s",
					t.Schema.Name, col.Name)
			}
			coerced[i] = v
			continue
		}
		cv, err := Coerce(v, col.Type)
		if err != nil {
			return fmt.Errorf("relational: table %s column %s: %w", t.Schema.Name, col.Name, err)
		}
		coerced[i] = cv
	}
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	if t.pkIndex != nil {
		pkOrd := t.Schema.ColumnIndex(t.Schema.PrimaryKey)
		key := coerced[pkOrd].Key()
		if coerced[pkOrd].IsNull() {
			return fmt.Errorf("relational: table %s: NULL primary key", t.Schema.Name)
		}
		if _, dup := t.pkIndex[key]; dup {
			return fmt.Errorf("relational: table %s: duplicate primary key %s",
				t.Schema.Name, coerced[pkOrd])
		}
		t.pkIndex[key] = len(t.rows)
	}
	ord := len(t.rows)
	t.rows = append(t.rows, coerced)
	oldVersion := t.version.Load()
	newVersion := t.version.Add(1)
	for colOrd, idx := range t.colIndexes {
		if coerced[colOrd].IsNull() {
			continue
		}
		k := coerced[colOrd].Key()
		idx[k] = append(idx[k], ord)
	}
	if IncrementalMaintenance() {
		t.maintainInsertLocked(coerced, ord, oldVersion, newVersion)
	} else if len(t.statsMaint) > 0 {
		// Maintenance was toggled off mid-stream: deltas would silently
		// miss this insert, so drop them and fall back to full rebuilds.
		t.statsMaint = nil
	}
	return nil
}

// maintainInsertLocked absorbs one inserted row into the incremental
// maintenance structures: each current sorted index takes the row into its
// side-run (collapsing when the run outgrows SortedSideRunThreshold), and
// each column with built statistics accrues the new cell in its delta.
// Caller holds idxMu.
func (t *Table) maintainInsertLocked(row Row, ord int, oldVersion, newVersion uint64) {
	for colOrd, si := range t.sortedIndexes {
		if si.version != oldVersion {
			continue // already stale; next read rebuilds it wholesale
		}
		si.version = newVersion
		v := row[colOrd]
		if v.IsNull() {
			continue // NULL cells are absent from sorted indexes
		}
		pos := sort.Search(len(si.side), func(i int) bool {
			return Compare(t.rows[si.side[i]][colOrd], v) > 0
		})
		si.side = append(si.side, 0)
		copy(si.side[pos+1:], si.side[pos:])
		si.side[pos] = ord
		t.sideInserts++
		if len(si.side) > SortedSideRunThreshold {
			t.collapseSideLocked(colOrd, si)
		}
	}
	for colOrd, m := range t.statsMaint {
		m.delta.note(row[colOrd])
	}
}

// collapseSideLocked folds an overgrown side-run back into the main sorted
// run with one linear merge (side ordinals all postdate main ordinals, so
// ties keep main first and (value, ordinal) order holds). It replaces the
// main run, so it counts as a rebuild. Caller holds idxMu.
func (t *Table) collapseSideLocked(colOrd int, si *sortedIndex) {
	merged := make([]int, 0, len(si.ords)+len(si.side))
	i, j := 0, 0
	for i < len(si.ords) && j < len(si.side) {
		if Compare(t.rows[si.ords[i]][colOrd], t.rows[si.side[j]][colOrd]) <= 0 {
			merged = append(merged, si.ords[i])
			i++
		} else {
			merged = append(merged, si.side[j])
			j++
		}
	}
	merged = append(merged, si.ords[i:]...)
	merged = append(merged, si.side[j:]...)
	si.ords = merged
	si.side = nil
	t.sortedBuilds++
}

// Version returns the table's mutation counter. It changes on every Insert,
// so any state derived from the rows can be cached against it.
func (t *Table) Version() uint64 { return t.version.Load() }

// MustInsert inserts and panics on error; used by generators and tests where
// schema correctness is established by construction.
func (t *Table) MustInsert(row Row) {
	if err := t.Insert(row); err != nil {
		panic(err)
	}
}

// LookupPK returns the row with the given primary key value, if any.
func (t *Table) LookupPK(v Value) (Row, bool) {
	if t.pkIndex == nil {
		return nil, false
	}
	if i, ok := t.pkIndex[v.Key()]; ok {
		return t.rows[i], true
	}
	return nil, false
}

// EnsureIndex builds (if needed) and returns the equality index for the
// named column: value key -> row ordinals. Safe for concurrent use with
// other readers after population; callers must treat the returned map as
// read-only.
func (t *Table) EnsureIndex(column string) (map[string][]int, error) {
	ord := t.Schema.ColumnIndex(column)
	if ord < 0 {
		return nil, columnError(t, column)
	}
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	if idx, ok := t.colIndexes[ord]; ok {
		return idx, nil
	}
	t.indexBuilds++
	idx := make(map[string][]int)
	for i, r := range t.rows {
		if r[ord].IsNull() {
			continue
		}
		k := r[ord].Key()
		idx[k] = append(idx[k], i)
	}
	t.colIndexes[ord] = idx
	return idx, nil
}

// Lookup returns the rows whose column equals v, using (and building) the
// equality index.
func (t *Table) Lookup(column string, v Value) ([]Row, error) {
	idx, err := t.EnsureIndex(column)
	if err != nil {
		return nil, err
	}
	ords := idx[v.Key()]
	out := make([]Row, len(ords))
	for i, o := range ords {
		out[i] = t.rows[o]
	}
	return out, nil
}

// LookupOrdinals returns the ordinals of the rows whose column equals v,
// using (and building) the equality index. The returned slice is shared
// with the index; callers must treat it as read-only. Primary-key probes
// are answered straight from pkIndex — no duplicate index build for the
// most common planner access path.
func (t *Table) LookupOrdinals(column string, v Value) ([]int, error) {
	if v.IsNull() {
		// NULL never equals anything; indexes do not record NULL cells.
		return nil, nil
	}
	ord := t.Schema.ColumnIndex(column)
	if ord < 0 {
		return nil, columnError(t, column)
	}
	if t.pkIndex != nil && ord == t.Schema.ColumnIndex(t.Schema.PrimaryKey) {
		if i, ok := t.pkIndex[v.Key()]; ok {
			return []int{i}, nil
		}
		return nil, nil
	}
	idx, err := t.EnsureIndex(column)
	if err != nil {
		return nil, err
	}
	return idx[v.Key()], nil
}

// DistinctCount returns the number of distinct non-NULL values in a column.
func (t *Table) DistinctCount(column string) (int, error) {
	idx, err := t.EnsureIndex(column)
	if err != nil {
		return 0, err
	}
	return len(idx), nil
}

// ensureSortedLocked returns the up-to-date sorted index for the column
// ordinal, building or rebuilding it when missing or stale. Caller holds
// idxMu.
func (t *Table) ensureSortedLocked(ord int) *sortedIndex {
	if si, ok := t.sortedIndexes[ord]; ok && si.version == t.version.Load() {
		return si
	}
	ords := make([]int, 0, len(t.rows))
	for i, r := range t.rows {
		if r[ord].IsNull() {
			continue
		}
		ords = append(ords, i)
	}
	sort.SliceStable(ords, func(a, b int) bool {
		return Compare(t.rows[ords[a]][ord], t.rows[ords[b]][ord]) < 0
	})
	si := &sortedIndex{version: t.version.Load(), ords: ords}
	if t.sortedIndexes == nil {
		t.sortedIndexes = make(map[int]*sortedIndex)
	}
	t.sortedIndexes[ord] = si
	t.sortedBuilds++
	return si
}

// RangeOrdinals returns the ordinals of the rows whose column value lies in
// the [lo, hi] interval under Compare ordering, with per-bound strictness
// (loInc/hiInc select ≥/≤ over >/<). A NULL bound is unbounded on that
// side; NULL cells never qualify (they are absent from the sorted index,
// matching SQL comparison semantics). The result is ordered by value;
// unless the sorted side-run contributes rows (in which case a fresh merged
// slice is allocated) it is a sub-slice of the shared index — callers must
// treat it as read-only either way. A sorted index is built on first use
// and rebuilt whenever the table version moved without maintenance, so a
// stale index is never consulted: range scans always see every row.
func (t *Table) RangeOrdinals(column string, lo, hi Value, loInc, hiInc bool) ([]int, error) {
	ord := t.Schema.ColumnIndex(column)
	if ord < 0 {
		return nil, columnError(t, column)
	}
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	si := t.ensureSortedLocked(ord)
	cut := func(ords []int) (int, int) {
		val := func(i int) Value { return t.rows[ords[i]][ord] }
		start := 0
		if !lo.IsNull() {
			start = sort.Search(len(ords), func(i int) bool {
				c := Compare(val(i), lo)
				if loInc {
					return c >= 0
				}
				return c > 0
			})
		}
		end := len(ords)
		if !hi.IsNull() {
			end = sort.Search(len(ords), func(i int) bool {
				c := Compare(val(i), hi)
				if hiInc {
					return c > 0
				}
				return c >= 0
			})
		}
		return start, end
	}
	start, end := cut(si.ords)
	if len(si.side) == 0 {
		if start >= end {
			return nil, nil
		}
		return si.ords[start:end], nil
	}
	s2, e2 := cut(si.side)
	switch {
	case s2 >= e2 && start >= end:
		return nil, nil
	case s2 >= e2:
		return si.ords[start:end], nil
	case start >= end:
		return si.side[s2:e2], nil
	}
	// Both runs contribute: merge the two value-ordered slices. Side
	// ordinals postdate main ordinals, so ties keep main first and the
	// (value, ordinal) contract holds.
	main, side := si.ords[start:end], si.side[s2:e2]
	merged := make([]int, 0, len(main)+len(side))
	i, j := 0, 0
	for i < len(main) && j < len(side) {
		if Compare(t.rows[main[i]][ord], t.rows[side[j]][ord]) <= 0 {
			merged = append(merged, main[i])
			i++
		} else {
			merged = append(merged, side[j])
			j++
		}
	}
	merged = append(merged, main[i:]...)
	merged = append(merged, side[j:]...)
	t.sortedMerges++
	return merged, nil
}

// HasSortedIndex reports whether an up-to-date sorted index exists for the
// column (it does not trigger a build).
func (t *Table) HasSortedIndex(column string) bool {
	ord := t.Schema.ColumnIndex(column)
	if ord < 0 {
		return false
	}
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	si, ok := t.sortedIndexes[ord]
	return ok && si.version == t.version.Load()
}

// SortedIndexedColumns returns the names of the columns with an up-to-date
// sorted index, in schema order (operator-facing statistic).
func (t *Table) SortedIndexedColumns() []string {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	var out []string
	for i := range t.Schema.Columns {
		if si, ok := t.sortedIndexes[i]; ok && si.version == t.version.Load() {
			out = append(out, t.Schema.Columns[i].Name)
		}
	}
	return out
}

// SortedIndexBuildCount returns how many sorted-index builds this table has
// performed (first builds and stale-version rebuilds alike).
func (t *Table) SortedIndexBuildCount() int {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	return t.sortedBuilds
}

// HasIndex reports whether an equality index is already built for the
// column (it does not trigger a build).
func (t *Table) HasIndex(column string) bool {
	ord := t.Schema.ColumnIndex(column)
	if ord < 0 {
		return false
	}
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	_, ok := t.colIndexes[ord]
	return ok
}

// IndexedColumns returns the names of the columns with a built equality
// index, in schema order (operator-facing statistic).
func (t *Table) IndexedColumns() []string {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	var out []string
	for i := range t.Schema.Columns {
		if _, ok := t.colIndexes[i]; ok {
			out = append(out, t.Schema.Columns[i].Name)
		}
	}
	return out
}

// IndexBuildCount returns how many equality-index builds this table has
// performed (lazy builds triggered by EnsureIndex, Lookup, LookupOrdinals,
// DistinctCount or the SQL planner).
func (t *Table) IndexBuildCount() int {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	return t.indexBuilds
}

// DropIndexes discards every lazily built equality index, sorted index and
// statistics snapshot (the primary-key index is schema-declared and kept).
// Like Insert it belongs to the population phase: call it after bulk row
// replacement, never concurrently with readers.
func (t *Table) DropIndexes() {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	t.colIndexes = make(map[int]map[string][]int)
	t.sortedIndexes = nil
	t.colStats = nil
	t.statsMaint = nil
	t.version.Add(1)
}

// Database is a named collection of populated tables sharing one Schema.
type Database struct {
	Name   string
	Schema *Schema

	id     uint64
	tables map[string]*Table
}

// dbIDs hands every Database a process-unique identity (see ID).
var dbIDs atomic.Uint64

// ID returns a process-unique identifier for this database instance.
// External caches (the SQL planner's plan cache) key on it instead of the
// pointer, which the garbage collector could reuse for a later instance.
func (db *Database) ID() uint64 { return db.id }

// NewDatabase creates a database with empty tables for every table in the
// schema. The schema must validate.
func NewDatabase(name string, schema *Schema) (*Database, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	db := &Database{Name: name, Schema: schema, id: dbIDs.Add(1), tables: make(map[string]*Table)}
	for _, ts := range schema.Tables() {
		db.tables[lower(ts.Name)] = NewTable(ts)
	}
	return db, nil
}

// MustNewDatabase is NewDatabase panicking on error.
func MustNewDatabase(name string, schema *Schema) *Database {
	db, err := NewDatabase(name, schema)
	if err != nil {
		panic(err)
	}
	return db
}

// Table returns the populated table with the given name, or nil.
func (db *Database) Table(name string) *Table {
	return db.tables[lower(name)]
}

// Tables returns the populated tables in schema order.
func (db *Database) Tables() []*Table {
	out := make([]*Table, 0, len(db.tables))
	for _, ts := range db.Schema.Tables() {
		out = append(out, db.tables[lower(ts.Name)])
	}
	return out
}

// DataVersion folds every table's mutation counter into one value: it
// changes whenever any row of any table changes, so cross-table derived
// state (query plans, statistics) can be cached against it. Versions only
// grow, so the allocation-free sum over the table map is itself strictly
// increasing (and iteration-order independent). Called on every planner
// cache probe — keep it cheap.
func (db *Database) DataVersion() uint64 {
	var v uint64
	for _, t := range db.tables {
		v += t.Version()
	}
	return v
}

// TotalRows returns the number of tuples across all tables.
func (db *Database) TotalRows() int {
	n := 0
	for _, t := range db.tables {
		n += t.Len()
	}
	return n
}

// Insert adds a row to the named table.
func (db *Database) Insert(table string, row Row) error {
	t := db.Table(table)
	if t == nil {
		return fmt.Errorf("relational: unknown table %s", table)
	}
	return t.Insert(row)
}

// CheckForeignKeys verifies that every non-NULL FK value resolves to an
// existing referenced row. Generators call it once after population.
func (db *Database) CheckForeignKeys() error {
	for _, ts := range db.Schema.Tables() {
		t := db.Table(ts.Name)
		for _, fk := range ts.ForeignKeys {
			ord := ts.ColumnIndex(fk.Column)
			ref := db.Table(fk.RefTable)
			refIdx, err := ref.EnsureIndex(fk.RefColumn)
			if err != nil {
				return err
			}
			for i, r := range t.rows {
				v := r[ord]
				if v.IsNull() {
					continue
				}
				if len(refIdx[v.Key()]) == 0 {
					return fmt.Errorf("relational: %s row %d: dangling FK %s=%s -> %s.%s",
						ts.Name, i, fk.Column, v, fk.RefTable, fk.RefColumn)
				}
			}
		}
	}
	return nil
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
