package relational

import (
	"sort"
	"sync/atomic"
)

// Incremental maintenance keeps the read side cheap under mixed
// insert/query traffic. Without it, one Insert bumps the table version and
// the next query pays a whole-column statistics rebuild and a full
// sorted-index rebuild. With it:
//
//   - Column statistics are delta-maintained: Insert records each new cell
//     in a per-column delta (row/null counts, min/max extension, new value
//     keys), and Stats folds the delta into the last full snapshot in
//     place of a rebuild — exact for rows/nulls/min/max, bounded-error for
//     distinct, with the histogram carried budget-stale. Once the delta
//     outgrows the staleness budget (StatsStalenessInserts inserts or
//     StatsStalenessFraction growth, whichever is larger) the next Stats
//     call rebuilds from scratch — by full sort below StatsSampleRows
//     rows, by stride sampling above it.
//   - Sorted secondary indexes absorb inserts into a sorted side-run that
//     range scans merge on read; only when the side-run exceeds
//     SortedSideRunThreshold is it collapsed back into the main run (a
//     linear merge, counted as a rebuild).
//
// Each ColumnStats carries a Freshness label (fresh / budget-stale /
// sampled) so the planner and ExplainAnalyze can report which kind of
// estimate a plan was built from. MaintenanceStats exposes the counters
// that make rebuild-avoidance observable.
//
// SetIncrementalMaintenance toggles the whole mechanism process-wide
// (benchmarks use it to pin the rebuild-per-write baseline); it defaults
// to on.

// Tunables for the mixed read/write hot path. They are variables, not
// constants, so operators (and benchmarks) can trade estimate staleness
// against rebuild cost; see the README "mixed read/write tuning" section.
// Mutate them only while no table is being queried.
var (
	// StatsStalenessInserts is the flat part of the staleness budget: a
	// column's delta-maintained statistics may absorb this many inserts
	// before a histogram/MCV rebuild is forced.
	StatsStalenessInserts = 64
	// StatsStalenessFraction is the proportional part of the budget:
	// deltas may grow to this fraction of the base snapshot's row count.
	// The effective budget is max(StatsStalenessInserts, fraction*rows).
	StatsStalenessFraction = 0.10
	// SortedSideRunThreshold bounds the sorted side-run; one more insert
	// collapses it into the main run (linear merge, counted as a rebuild).
	SortedSideRunThreshold = 256
	// StatsSampleRows is the table size above which a forced statistics
	// rebuild samples rather than sorts every value.
	StatsSampleRows = 65536
	// StatsSampleSize is how many values the sampled rebuild examines.
	StatsSampleSize = 16384
)

// Freshness labels carried by ColumnStats.Freshness. The empty string
// (statistics that predate the label, or that crossed the wire) reads as
// fresh. worseFreshness orders them.
const (
	StatsFresh       = "fresh"
	StatsBudgetStale = "budget-stale"
	StatsSampled     = "sampled"
)

// statsDeltaKeyCap bounds the per-column delta key map; a delta that
// overflows it forces a rebuild instead of an in-place fold.
const statsDeltaKeyCap = 4096

// incrementalOff flips the process-wide maintenance switch; zero value
// means maintenance is ON.
var incrementalOff atomic.Bool

// SetIncrementalMaintenance turns incremental statistics and sorted-index
// maintenance on or off process-wide and returns the previous setting.
// Off restores the rebuild-per-write behavior (every Insert invalidates
// statistics snapshots and sorted indexes wholesale); benchmarks use it to
// measure the baseline. Toggling is safe at any time: tables self-correct
// by falling back to full rebuilds for state maintained under the other
// setting.
func SetIncrementalMaintenance(on bool) bool {
	return !incrementalOff.Swap(!on)
}

// IncrementalMaintenance reports whether incremental maintenance is on.
func IncrementalMaintenance() bool { return !incrementalOff.Load() }

// statsDelta accumulates what Insert has appended to one column since its
// base statistics snapshot was built.
type statsDelta struct {
	rows   int // total inserts, NULLs included
	nulls  int
	hasVal bool  // min/max hold at least one non-NULL value
	min    Value // of the inserted non-NULL values
	max    Value
	// newKeys counts inserted occurrences per value key. It both bumps
	// matching MCV counts and bounds the distinct estimate; overflow past
	// statsDeltaKeyCap disables the in-place fold.
	newKeys  map[string]int
	overflow bool
}

func (d *statsDelta) note(v Value) {
	d.rows++
	if v.IsNull() {
		d.nulls++
		return
	}
	if !d.hasVal {
		d.min, d.max, d.hasVal = v, v, true
	} else {
		if Compare(v, d.min) < 0 {
			d.min = v
		}
		if Compare(v, d.max) > 0 {
			d.max = v
		}
	}
	if d.overflow {
		return
	}
	if d.newKeys == nil {
		d.newKeys = make(map[string]int)
	}
	k := v.Key()
	if _, ok := d.newKeys[k]; !ok && len(d.newKeys) >= statsDeltaKeyCap {
		d.overflow = true
		return
	}
	d.newKeys[k]++
}

// colMaint is the maintenance state for one column: the last fully built
// snapshot plus everything inserted since.
type colMaint struct {
	base  *ColumnStats
	delta statsDelta
}

// withinBudget reports whether the delta is still small enough to fold
// into the base instead of rebuilding.
func (m *colMaint) withinBudget() bool {
	if m.delta.overflow {
		return false
	}
	budget := StatsStalenessInserts
	if f := int(StatsStalenessFraction * float64(m.base.Rows)); f > budget {
		budget = f
	}
	return m.delta.rows <= budget
}

// applyDeltaLocked folds the accumulated delta into the base snapshot,
// producing a new budget-stale ColumnStats at the current table version.
// Rows, NullCount and Min/Max are exact; MCV counts are exact for values
// the base already tracked; Distinct is exact when a hash index exists and
// otherwise an over-estimate bounded by the delta size; the histogram is
// carried from the base unchanged. Caller holds idxMu.
func (t *Table) applyDeltaLocked(ord int, m *colMaint) *ColumnStats {
	b, d := m.base, &m.delta
	cs := &ColumnStats{
		Column:    b.Column,
		Version:   t.version.Load(),
		Rows:      b.Rows + d.rows,
		NullCount: b.NullCount + d.nulls,
		Min:       b.Min,
		Max:       b.Max,
		Buckets:   b.Buckets,
		Freshness: StatsBudgetStale,
	}
	if b.Rows-b.NullCount == 0 {
		cs.Min, cs.Max = d.min, d.max
	} else if d.hasVal {
		if Compare(d.min, cs.Min) < 0 {
			cs.Min = d.min
		}
		if Compare(d.max, cs.Max) > 0 {
			cs.Max = d.max
		}
	}
	if len(b.MCVs) > 0 {
		cs.MCVs = make([]MCV, len(b.MCVs))
		copy(cs.MCVs, b.MCVs)
		for i := range cs.MCVs {
			if n := d.newKeys[cs.MCVs[i].Value.Key()]; n > 0 {
				cs.MCVs[i].Count += n
			}
		}
	}
	cs.Rehydrate()
	if idx, ok := t.colIndexes[ord]; ok {
		// The hash index is insert-maintained, so its key count is the
		// exact distinct count.
		cs.Distinct = len(idx)
	} else {
		extra := 0
		for k := range d.newKeys {
			if !mcvHasKey(b, k) {
				extra++
			}
		}
		cs.Distinct = b.Distinct + extra
	}
	if nonNull := cs.Rows - cs.NullCount; cs.Distinct > nonNull {
		cs.Distinct = nonNull
	}
	return cs
}

func mcvHasKey(cs *ColumnStats, key string) bool {
	for _, m := range cs.MCVs {
		if m.Value.Key() == key {
			return true
		}
	}
	return false
}

// sampleColumnStats rebuilds statistics for a large column by stride
// sampling: one full pass still yields exact Rows/NullCount/Min/Max, but
// the sort that feeds the histogram, MCVs and distinct estimate only sees
// ~StatsSampleSize values, with counts scaled back up. Caller holds idxMu.
func sampleColumnStats(t *Table, ord int) *ColumnStats {
	cs := &ColumnStats{
		Column:    t.Schema.Columns[ord].Name,
		Version:   t.version.Load(),
		Rows:      len(t.rows),
		Freshness: StatsSampled,
	}
	vals := make([]Value, 0, len(t.rows))
	for _, r := range t.rows {
		if r[ord].IsNull() {
			cs.NullCount++
			continue
		}
		v := r[ord]
		if len(vals) == 0 {
			cs.Min, cs.Max = v, v
		} else {
			if Compare(v, cs.Min) < 0 {
				cs.Min = v
			}
			if Compare(v, cs.Max) > 0 {
				cs.Max = v
			}
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		return cs
	}
	stride := (len(vals) + StatsSampleSize - 1) / StatsSampleSize
	if stride < 1 {
		stride = 1
	}
	sample := make([]Value, 0, len(vals)/stride+1)
	for i := 0; i < len(vals); i += stride {
		sample = append(sample, vals[i])
	}
	sort.SliceStable(sample, func(i, j int) bool { return Compare(sample[i], sample[j]) < 0 })

	type run struct {
		v     Value
		count int
	}
	var runs []run
	start := 0
	for i := 1; i <= len(sample); i++ {
		if i < len(sample) && Compare(sample[i], sample[start]) == 0 {
			continue
		}
		runs = append(runs, run{v: sample[start], count: i - start})
		start = i
	}
	ratio := float64(len(vals)) / float64(len(sample))
	scale := func(n int) int {
		s := int(float64(n) * ratio)
		if s < n {
			s = n
		}
		return s
	}
	if idx, ok := t.colIndexes[ord]; ok {
		cs.Distinct = len(idx)
	} else {
		cs.Distinct = scale(len(runs))
	}
	if cs.Distinct > len(vals) {
		cs.Distinct = len(vals)
	}

	mcvRuns := make([]run, 0, len(runs))
	for _, r := range runs {
		if r.count >= 2 {
			mcvRuns = append(mcvRuns, r)
		}
	}
	sort.SliceStable(mcvRuns, func(i, j int) bool { return mcvRuns[i].count > mcvRuns[j].count })
	if len(mcvRuns) > StatsMaxMCVs {
		mcvRuns = mcvRuns[:StatsMaxMCVs]
	}
	for _, r := range mcvRuns {
		c := scale(r.count)
		cs.MCVs = append(cs.MCVs, MCV{Value: r.v, Count: c})
		cs.mcvTotal += c
	}

	// Equi-depth buckets over the sample, counts scaled to the full
	// column. Ends are pinned to the exact Min/Max from the full pass.
	if cs.Distinct <= StatsHistogramBuckets && len(runs) <= StatsHistogramBuckets {
		for _, r := range runs {
			cs.Buckets = append(cs.Buckets, Bucket{Upper: r.v, Count: scale(r.count), Distinct: 1})
		}
	} else {
		target := (len(sample) + StatsHistogramBuckets - 1) / StatsHistogramBuckets
		b := Bucket{}
		for _, r := range runs {
			b.Count += r.count
			b.Distinct++
			b.Upper = r.v
			if b.Count >= target {
				b.Count = scale(b.Count)
				cs.Buckets = append(cs.Buckets, b)
				b = Bucket{}
			}
		}
		if b.Count > 0 {
			b.Count = scale(b.Count)
			cs.Buckets = append(cs.Buckets, b)
		}
	}
	if n := len(cs.Buckets); n > 0 && Compare(cs.Buckets[n-1].Upper, cs.Max) < 0 {
		cs.Buckets[n-1].Upper = cs.Max
	}
	return cs
}

// worseFreshness returns the staler of two freshness labels; "" reads as
// fresh (pre-label or wire-decoded statistics).
func worseFreshness(a, b string) string {
	return freshnessRankName(maxInt(freshnessRank(a), freshnessRank(b)))
}

func freshnessRank(f string) int {
	switch f {
	case StatsBudgetStale:
		return 1
	case StatsSampled:
		return 2
	default:
		return 0
	}
}

func freshnessRankName(r int) string {
	switch r {
	case 1:
		return StatsBudgetStale
	case 2:
		return StatsSampled
	default:
		return StatsFresh
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MaintenanceStats are the incremental-maintenance counters for one table
// (or, via Database.MaintenanceStats, summed over a database): how often
// statistics were folded forward instead of rebuilt, how rebuilds split
// between full and sampled, and how the sorted side-run amortized index
// rebuilds into read-time merges.
type MaintenanceStats struct {
	StatsIncrementalUpdates int // Stats served by folding the delta into the base
	StatsFullRebuilds       int // full sort-everything rebuilds
	StatsSampledRebuilds    int // stride-sampled rebuilds (large tables)
	SortedIndexSideInserts  int // inserts absorbed by a sorted side-run
	SortedIndexMerges       int // read-time main+side range merges
	SortedIndexRebuilds     int // full sorted-index builds + side-run collapses
}

func (m MaintenanceStats) add(o MaintenanceStats) MaintenanceStats {
	m.StatsIncrementalUpdates += o.StatsIncrementalUpdates
	m.StatsFullRebuilds += o.StatsFullRebuilds
	m.StatsSampledRebuilds += o.StatsSampledRebuilds
	m.SortedIndexSideInserts += o.SortedIndexSideInserts
	m.SortedIndexMerges += o.SortedIndexMerges
	m.SortedIndexRebuilds += o.SortedIndexRebuilds
	return m
}

// MaintenanceStats returns this table's incremental-maintenance counters.
func (t *Table) MaintenanceStats() MaintenanceStats {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	return MaintenanceStats{
		StatsIncrementalUpdates: t.statsIncremental,
		StatsFullRebuilds:       t.statsBuilds - t.statsSampled,
		StatsSampledRebuilds:    t.statsSampled,
		SortedIndexSideInserts:  t.sideInserts,
		SortedIndexMerges:       t.sortedMerges,
		SortedIndexRebuilds:     t.sortedBuilds,
	}
}

// MaintenanceStats sums the incremental-maintenance counters over every
// table in the database.
func (db *Database) MaintenanceStats() MaintenanceStats {
	var m MaintenanceStats
	for _, t := range db.tables {
		m = m.add(t.MaintenanceStats())
	}
	return m
}
