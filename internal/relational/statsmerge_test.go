package relational

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"
)

// buildStatsFixture returns the full table and per-shard partitions of the
// same rows, hash-routed on the PK like the shard layer routes.
func buildStatsFixture(t *testing.T, typ Type, n, shards int, gen func(rng *rand.Rand) Value) (*Table, []*Table) {
	t.Helper()
	mk := func(name string) *Table {
		return NewTable(&TableSchema{
			Name: name,
			Columns: []Column{
				{Name: "id", Type: TypeInt, NotNull: true},
				{Name: "v", Type: typ},
			},
			PrimaryKey: "id",
		})
	}
	full := mk("t")
	parts := make([]*Table, shards)
	for i := range parts {
		parts[i] = mk(fmt.Sprintf("t%d", i))
	}
	rng := rand.New(rand.NewSource(int64(7*n + shards)))
	for i := 0; i < n; i++ {
		id := Int(int64(i))
		v := gen(rng)
		row := Row{id, v}
		if err := full.Insert(row.Clone()); err != nil {
			t.Fatal(err)
		}
		h := fnv.New32a()
		h.Write([]byte(id.Key()))
		if err := parts[int(h.Sum32())%shards].Insert(row.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	return full, parts
}

// TestMergeColumnStatsProperties is the cross-shard statistics property
// suite: for randomized value distributions (skewed ints, sparse strings,
// NULL-heavy columns) and shard counts, the merged ColumnStats must agree
// exactly with the unpartitioned table on row counts, NULL fraction and
// min/max, and its distinct estimate must stay inside
// [max(shard distinct), sum(shard distinct)] — which always brackets the
// true distinct count.
func TestMergeColumnStatsProperties(t *testing.T) {
	gens := map[string]struct {
		typ Type
		gen func(rng *rand.Rand) Value
	}{
		"skewed-int": {TypeInt, func(rng *rand.Rand) Value {
			if rng.Intn(10) == 0 {
				return Null()
			}
			if rng.Intn(3) == 0 {
				return Int(7) // heavy hitter shared by every shard
			}
			return Int(int64(rng.Intn(200)))
		}},
		"uniform-float": {TypeFloat, func(rng *rand.Rand) Value {
			return Float(float64(rng.Intn(5000)) / 7)
		}},
		"sparse-string": {TypeString, func(rng *rand.Rand) Value {
			if rng.Intn(4) == 0 {
				return Null()
			}
			return String_(fmt.Sprintf("w%03d", rng.Intn(60)))
		}},
		"all-null": {TypeInt, func(rng *rand.Rand) Value { return Null() }},
	}
	for name, g := range gens {
		for _, shards := range []int{1, 3, 7} {
			for _, n := range []int{0, 13, 400} {
				full, parts := buildStatsFixture(t, g.typ, n, shards, g.gen)
				want, err := full.Stats("v")
				if err != nil {
					t.Fatal(err)
				}
				partStats := make([]*ColumnStats, len(parts))
				sumDistinct, maxDistinct := 0, 0
				for i, p := range parts {
					if partStats[i], err = p.Stats("v"); err != nil {
						t.Fatal(err)
					}
					sumDistinct += partStats[i].Distinct
					if partStats[i].Distinct > maxDistinct {
						maxDistinct = partStats[i].Distinct
					}
				}
				got := MergeColumnStats(partStats)
				label := fmt.Sprintf("%s n=%d shards=%d", name, n, shards)
				if got.Rows != want.Rows || got.NullCount != want.NullCount {
					t.Errorf("%s: rows/nulls %d/%d, want %d/%d", label,
						got.Rows, got.NullCount, want.Rows, want.NullCount)
				}
				if got.NullFraction() != want.NullFraction() {
					t.Errorf("%s: null fraction %v, want %v", label, got.NullFraction(), want.NullFraction())
				}
				if Compare(got.Min, want.Min) != 0 || Compare(got.Max, want.Max) != 0 {
					t.Errorf("%s: min/max %v..%v, want %v..%v", label, got.Min, got.Max, want.Min, want.Max)
				}
				if got.Distinct < maxDistinct || got.Distinct > sumDistinct {
					t.Errorf("%s: distinct %d outside [%d, %d]", label, got.Distinct, maxDistinct, sumDistinct)
				}
				// The bracket must also contain the true distinct count, and
				// the merged estimate may never exceed the non-NULL rows.
				if want.Distinct < maxDistinct || want.Distinct > sumDistinct {
					t.Errorf("%s: true distinct %d outside partition bracket [%d, %d]",
						label, want.Distinct, maxDistinct, sumDistinct)
				}
				if got.Distinct > got.Rows-got.NullCount {
					t.Errorf("%s: distinct %d exceeds non-NULL rows %d", label,
						got.Distinct, got.Rows-got.NullCount)
				}
				// Histogram mass and MCV counts must stay consistent.
				bucketMass := 0
				for _, b := range got.Buckets {
					bucketMass += b.Count
				}
				if bucketMass != want.Rows-want.NullCount {
					t.Errorf("%s: histogram mass %d, want %d", label, bucketMass, want.Rows-want.NullCount)
				}
				for _, m := range got.MCVs {
					trueCount := 0
					for _, r := range full.Rows() {
						if !r[1].IsNull() && Compare(r[1], m.Value) == 0 {
							trueCount++
						}
					}
					if m.Count > trueCount {
						t.Errorf("%s: merged MCV %v count %d exceeds true count %d",
							label, m.Value, m.Count, trueCount)
					}
				}
			}
		}
	}
}

// TestMergeColumnStatsSingle pins the single-partition fast path: one part
// merges to itself unchanged.
func TestMergeColumnStatsSingle(t *testing.T) {
	full, _ := buildStatsFixture(t, TypeInt, 50, 1, func(rng *rand.Rand) Value {
		return Int(int64(rng.Intn(9)))
	})
	cs, err := full.Stats("v")
	if err != nil {
		t.Fatal(err)
	}
	if got := MergeColumnStats([]*ColumnStats{cs}); got != cs {
		t.Fatalf("single-part merge returned a new snapshot %p, want the part %p", got, cs)
	}
	if MergeColumnStats(nil) != nil {
		t.Fatal("empty merge should return nil")
	}
}
