package relational

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// LoadCSV bulk-loads rows into the named table from CSV data. The first
// record must be a header naming columns of the table (any order, subset
// allowed — missing columns become NULL). Empty fields load as NULL.
// Values are coerced to the column types; the first coercion error aborts
// the load and reports the offending line.
//
// This is the ingestion path for users bringing their own data into the
// engine (the synthetic generators populate programmatically instead).
func (db *Database) LoadCSV(table string, r io.Reader) (int, error) {
	t := db.Table(table)
	if t == nil {
		return 0, fmt.Errorf("relational: unknown table %s", table)
	}
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true

	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("relational: reading CSV header: %w", err)
	}
	cols := make([]int, len(header))
	seen := make(map[int]bool, len(header))
	for i, name := range header {
		ord := t.Schema.ColumnIndex(strings.TrimSpace(name))
		if ord < 0 {
			return 0, fmt.Errorf("relational: CSV header %q is not a column of %s", name, table)
		}
		if seen[ord] {
			return 0, fmt.Errorf("relational: CSV header repeats column %q", name)
		}
		seen[ord] = true
		cols[i] = ord
	}

	loaded := 0
	for line := 2; ; line++ {
		record, err := cr.Read()
		if err == io.EOF {
			return loaded, nil
		}
		if err != nil {
			return loaded, fmt.Errorf("relational: CSV line %d: %w", line, err)
		}
		if len(record) != len(header) {
			return loaded, fmt.Errorf("relational: CSV line %d: %d fields, header has %d",
				line, len(record), len(header))
		}
		row := make(Row, len(t.Schema.Columns))
		for i, field := range record {
			if field == "" {
				continue // NULL
			}
			row[cols[i]] = String_(field)
		}
		if err := t.Insert(row); err != nil {
			return loaded, fmt.Errorf("relational: CSV line %d: %w", line, err)
		}
		loaded++
	}
}

// DumpCSV writes the table's contents as CSV with a full header row. NULLs
// dump as empty fields, so DumpCSV → LoadCSV round-trips.
func (db *Database) DumpCSV(table string, w io.Writer) error {
	t := db.Table(table)
	if t == nil {
		return fmt.Errorf("relational: unknown table %s", table)
	}
	cw := csv.NewWriter(w)
	header := make([]string, len(t.Schema.Columns))
	for i, c := range t.Schema.Columns {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	record := make([]string, len(header))
	for _, row := range t.Rows() {
		for i, v := range row {
			if v.IsNull() {
				record[i] = ""
			} else {
				record[i] = v.String()
			}
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
