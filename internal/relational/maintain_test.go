package relational

import (
	"fmt"
	"math/rand"
	"testing"
)

// propSchema builds the property-test table shape: an int PK, a nullable
// int column whose range grows under inserts, and a low-cardinality
// string column that stresses MCV bumping.
func propSchema(t *testing.T) *TableSchema {
	t.Helper()
	ts := &TableSchema{
		Name: "p",
		Columns: []Column{
			{Name: "id", Type: TypeInt, NotNull: true},
			{Name: "v", Type: TypeInt},
			{Name: "tag", Type: TypeString},
		},
		PrimaryKey: "id",
	}
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	return ts
}

// propRow draws one random row: v is NULL one time in six, otherwise from
// a range that keeps extending past the current extrema; tag cycles a
// small vocabulary so most inserts repeat existing values.
func propRow(rng *rand.Rand, id int64) Row {
	v := Value(Null())
	if rng.Intn(6) > 0 {
		v = Int(int64(rng.Intn(2000)) - 1000 + id/4) // drifting range: new extrema keep appearing
	}
	return Row{Int(id), v, String_(fmt.Sprintf("tag-%d", rng.Intn(12)))}
}

// TestPropertyDeltaStatsTolerance is the maintenance correctness
// property: over randomized interleaved inserts, the delta-maintained
// statistics (merged across 1, 3 and 7 partitions via MergeColumnStats)
// must equal a from-scratch rebuild exactly on Rows, NullCount, Min and
// Max, and stay within bounded error on Distinct and the histogram mass.
func TestPropertyDeltaStatsTolerance(t *testing.T) {
	defer SetIncrementalMaintenance(SetIncrementalMaintenance(true))
	for _, shards := range []int{1, 3, 7} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + shards)))
			ts := propSchema(t)
			parts := make([]*Table, shards)
			for i := range parts {
				parts[i] = NewTable(ts)
			}
			var all []Row // ground truth: every row inserted anywhere
			insert := func(row Row) {
				t.Helper()
				if err := parts[len(all)%shards].Insert(row); err != nil {
					t.Fatal(err)
				}
				all = append(all, row)
			}

			nextID := int64(1)
			for i := 0; i < 600; i++ {
				insert(propRow(rng, nextID))
				nextID++
			}
			// Warm every partition's statistics so the rounds below run the
			// delta path from an established base snapshot.
			for _, col := range []string{"v", "tag"} {
				for _, p := range parts {
					if _, err := p.Stats(col); err != nil {
						t.Fatal(err)
					}
				}
			}

			inserted := 0
			for round := 0; round < 12; round++ {
				batch := 1 + rng.Intn(40)
				for i := 0; i < batch; i++ {
					insert(propRow(rng, nextID))
					nextID++
				}
				inserted += batch

				for _, col := range []string{"v", "tag"} {
					snaps := make([]*ColumnStats, shards)
					for i, p := range parts {
						cs, err := p.Stats(col)
						if err != nil {
							t.Fatal(err)
						}
						snaps[i] = cs
					}
					got := MergeColumnStats(snaps)

					// From-scratch control: a fresh table holding the same
					// rows, statistics built with maintenance off.
					want := rebuildControl(t, ts, all, col)

					if got.Rows != want.Rows || got.NullCount != want.NullCount {
						t.Fatalf("round %d %s: rows/nulls = %d/%d, want exact %d/%d",
							round, col, got.Rows, got.NullCount, want.Rows, want.NullCount)
					}
					if Compare(got.Min, want.Min) != 0 || Compare(got.Max, want.Max) != 0 {
						t.Fatalf("round %d %s: min/max = %v/%v, want exact %v/%v",
							round, col, got.Min, got.Max, want.Min, want.Max)
					}
					// Distinct: one partition's delta path may over-count by
					// at most its inserts since the last full build, so the
					// single-shard bound is exact+inserted. Across
					// partitions the merge additionally double-counts
					// values shared between them, which only the
					// information-theoretic clamp (non-NULL rows) bounds;
					// the merge clamps below at the biggest partition's
					// count, which is at least exact/shards.
					nonNull := want.Rows - want.NullCount
					lo, hi := want.Distinct/shards, nonNull
					if shards == 1 && want.Distinct+inserted < hi {
						hi = want.Distinct + inserted
					}
					if got.Distinct < lo || got.Distinct > hi {
						t.Fatalf("round %d %s: distinct = %d, want within [%d, %d] (exact %d, inserted %d)",
							round, col, got.Distinct, lo, hi, want.Distinct, inserted)
					}
					// Histogram mass: a budget-stale snapshot carries the
					// base histogram, so the bucket mass may lag the true
					// non-NULL count by at most the inserts since the base,
					// and never exceeds it (merging re-cuts, never invents
					// rows beyond the partition totals).
					mass := 0
					for _, b := range got.Buckets {
						mass += b.Count
					}
					if len(got.Buckets) > 0 && (mass > nonNull || mass < nonNull-inserted) {
						t.Fatalf("round %d %s: histogram mass = %d, want within [%d, %d]",
							round, col, mass, nonNull-inserted, nonNull)
					}
				}
			}
		})
	}
}

// rebuildControl computes the from-scratch reference: the same rows in a
// fresh table, statistics built with incremental maintenance off.
func rebuildControl(t *testing.T, ts *TableSchema, rows []Row, col string) *ColumnStats {
	t.Helper()
	defer SetIncrementalMaintenance(SetIncrementalMaintenance(false))
	ctl := NewTable(ts)
	for _, row := range rows {
		if err := ctl.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	cs, err := ctl.Stats(col)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}
